package telemetry

import (
	"math"
	"strings"
	"testing"
)

// TestCounterGauge pins the scalar metric semantics: counters are
// monotone (negative adds ignored), gauges move both ways.
func TestCounterGauge(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("hhh_test_total", "test counter")
	c.Inc()
	c.Add(4)
	c.Add(-7)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	g := r.Gauge("hhh_test_gauge", "test gauge")
	g.Set(2.5)
	g.Add(-1)
	if got := g.Value(); got != 1.5 {
		t.Fatalf("gauge = %v, want 1.5", got)
	}
	if again := r.Counter("hhh_test_total", "test counter"); again != c {
		t.Fatal("re-registration returned a different counter")
	}
}

// TestHistogramBuckets checks observations land in the right cumulative
// buckets and sum/count track exactly.
func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("hhh_test_seconds", "test histogram", []float64{0.1, 1, 10})
	for _, v := range []float64{0.05, 0.5, 0.5, 5, 50} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("count = %d, want 5", h.Count())
	}
	if got := h.Sum(); math.Abs(got-56.05) > 1e-9 {
		t.Fatalf("sum = %v, want 56.05", got)
	}
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		`hhh_test_seconds_bucket{le="0.1"} 1`,
		`hhh_test_seconds_bucket{le="1"} 3`,
		`hhh_test_seconds_bucket{le="10"} 4`,
		`hhh_test_seconds_bucket{le="+Inf"} 5`,
		`hhh_test_seconds_count 5`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

// TestVecChildren checks labeled families: distinct label tuples get
// distinct children, same tuple returns the same child.
func TestVecChildren(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("hhh_test_labeled_total", "labeled", "shard", "kind")
	v.With("0", "a").Add(1)
	v.With("1", "b").Add(2)
	v.With("0", "a").Add(1)
	if got := v.With("0", "a").Value(); got != 2 {
		t.Fatalf("child(0,a) = %d, want 2", got)
	}
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, `hhh_test_labeled_total{shard="0",kind="a"} 2`) ||
		!strings.Contains(out, `hhh_test_labeled_total{shard="1",kind="b"} 2`) {
		t.Fatalf("labeled exposition wrong:\n%s", out)
	}
}

// TestFuncBacked checks function-backed metrics read at scrape time.
func TestFuncBacked(t *testing.T) {
	r := NewRegistry()
	n := int64(0)
	r.CounterFunc("hhh_test_fn_total", "fn counter", func() int64 { return n })
	r.GaugeFunc("hhh_test_fn_gauge", "fn gauge", func() float64 { return float64(n) / 2 })
	n = 7
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "hhh_test_fn_total 7") || !strings.Contains(out, "hhh_test_fn_gauge 3.5") {
		t.Fatalf("func-backed exposition wrong:\n%s", out)
	}
}

// TestConflictingRegistrationPanics pins the family-shape invariants: a
// second registration with a different type or label set is a wiring bug
// and must panic rather than corrupt the exposition.
func TestConflictingRegistrationPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("hhh_test_total", "help")
	for name, fn := range map[string]func(){
		"type":   func() { r.Gauge("hhh_test_total", "help") },
		"help":   func() { r.Counter("hhh_test_total", "other help") },
		"labels": func() { r.CounterVec("hhh_test_total", "help", "shard") },
		"name":   func() { r.Counter("bad name", "help") },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("conflicting %s registration did not panic", name)
				}
			}()
			fn()
		}()
	}
}

// TestLabelEscaping checks quotes, backslashes and newlines in label
// values round-trip through exposition and the validator.
func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	r.CounterVec("hhh_test_esc_total", "escapes", "v").With(`a"b\c` + "\nd").Inc()
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, `v="a\"b\\c\nd"`) {
		t.Fatalf("escaping wrong:\n%s", out)
	}
	if _, err := ValidateExposition(out); err != nil {
		t.Fatalf("validator rejected escaped exposition: %v\n%s", err, out)
	}
}

// TestValidateExpositionAccepts runs the validator over a registry
// exercising every metric kind.
func TestValidateExpositionAccepts(t *testing.T) {
	r := NewRegistry()
	r.Counter("hhh_a_total", "a").Add(3)
	r.Gauge("hhh_b", "b").Set(1.25)
	r.Histogram("hhh_c_seconds", "c", LatencyBuckets).Observe(0.002)
	r.CounterVec("hhh_d_total", "d", "shard").With("0").Inc()
	r.HistogramVec("hhh_e_seconds", "e", []float64{1, 2}, "mode").With("sliding").Observe(1.5)
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	n, err := ValidateExposition(b.String())
	if err != nil {
		t.Fatalf("validator rejected registry output: %v\n%s", err, b.String())
	}
	// 1 counter + 1 gauge + (19 buckets + inf + sum + count) + 1 labeled
	// counter + (2 buckets + inf + sum + count) histogram child.
	if want := 1 + 1 + (len(LatencyBuckets) + 3) + 1 + 5; n != want {
		t.Fatalf("validated %d samples, want %d", n, want)
	}
}

// TestValidateExpositionRejects feeds the validator known-bad documents.
func TestValidateExpositionRejects(t *testing.T) {
	cases := map[string]string{
		"no TYPE":        "hhh_x_total 1\n",
		"no HELP":        "# TYPE hhh_x_total counter\nhhh_x_total 1\n",
		"dup family":     "# HELP hhh_x_total x\n# TYPE hhh_x_total counter\n# TYPE hhh_x_total counter\nhhh_x_total 1\n",
		"dup sample":     "# HELP hhh_x_total x\n# TYPE hhh_x_total counter\nhhh_x_total 1\nhhh_x_total 2\n",
		"bad name":       "# HELP 0bad x\n# TYPE 0bad counter\n0bad 1\n",
		"bad value":      "# HELP hhh_x_total x\n# TYPE hhh_x_total counter\nhhh_x_total one\n",
		"unquoted label": "# HELP hhh_x_total x\n# TYPE hhh_x_total counter\nhhh_x_total{a=b} 1\n",
		"negative counter": "# HELP hhh_x_total x\n# TYPE hhh_x_total counter\n" +
			"hhh_x_total -1\n",
		"hist no inf": "# HELP hhh_h h\n# TYPE hhh_h histogram\n" +
			`hhh_h_bucket{le="1"} 1` + "\nhhh_h_sum 1\nhhh_h_count 1\n",
		"hist not cumulative": "# HELP hhh_h h\n# TYPE hhh_h histogram\n" +
			`hhh_h_bucket{le="1"} 2` + "\n" + `hhh_h_bucket{le="+Inf"} 1` + "\nhhh_h_sum 1\nhhh_h_count 1\n",
		"hist count mismatch": "# HELP hhh_h h\n# TYPE hhh_h histogram\n" +
			`hhh_h_bucket{le="1"} 1` + "\n" + `hhh_h_bucket{le="+Inf"} 2` + "\nhhh_h_sum 1\nhhh_h_count 3\n",
		"hist missing sum": "# HELP hhh_h h\n# TYPE hhh_h histogram\n" +
			`hhh_h_bucket{le="+Inf"} 1` + "\nhhh_h_count 1\n",
	}
	for name, doc := range cases {
		if _, err := ValidateExposition(doc); err == nil {
			t.Errorf("%s: validator accepted:\n%s", name, doc)
		}
	}
}

// TestHistogramVecSharesBuckets checks children of one histogram family
// share the family ladder and expose coherent series per label tuple.
func TestHistogramVecSharesBuckets(t *testing.T) {
	r := NewRegistry()
	v := r.HistogramVec("hhh_test_lat_seconds", "latency", []float64{0.5, 1}, "route")
	v.With("/hhh").Observe(0.2)
	v.With("/stats").Observe(2)
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if _, err := ValidateExposition(b.String()); err != nil {
		t.Fatalf("validator rejected: %v\n%s", err, b.String())
	}
	out := b.String()
	if !strings.Contains(out, `hhh_test_lat_seconds_bucket{route="/hhh",le="0.5"} 1`) {
		t.Fatalf("per-route bucket missing:\n%s", out)
	}
	if !strings.Contains(out, `hhh_test_lat_seconds_bucket{route="/stats",le="1"} 0`) {
		t.Fatalf("out-of-range observation leaked into finite bucket:\n%s", out)
	}
}
