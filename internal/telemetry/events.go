package telemetry

import (
	"fmt"
	"sync"

	"hiddenhhh/internal/addr"
	"hiddenhhh/internal/hhh"
)

// EventType discriminates attack lifecycle events.
type EventType string

// Attack lifecycle event types: an onset opens an attack episode, the
// matching offset closes it.
const (
	EventOnset  EventType = "onset"
	EventOffset EventType = "offset"
)

// Event is one structured attack lifecycle event: a prefix's conditioned
// share of the window mass crossed the watcher threshold (onset) or fell
// back below it for long enough (offset). Events are JSON-shaped for the
// /events endpoint and rendered by String for log lines.
type Event struct {
	// Seq is the monotone event sequence number (1-based, shared across
	// onsets and offsets), establishing total order.
	Seq int64 `json:"seq"`
	// Type is "onset" or "offset".
	Type EventType `json:"type"`
	// Prefix is the attacking prefix in display form.
	Prefix string `json:"prefix"`
	// Level is the family-relative prefix length in bits (0 = the root of
	// its family's hierarchy).
	Level int `json:"level"`
	// TraceTimeNs is the trace timestamp of the window that triggered the
	// transition.
	TraceTimeNs int64 `json:"trace_time_ns"`
	// Share is the prefix's conditioned share of the window mass at the
	// triggering window (for offsets: the last window it was observed
	// above threshold).
	Share float64 `json:"share"`
	// Bytes is the conditioned byte volume behind Share.
	Bytes int64 `json:"bytes"`
	// DurationNs is, on offsets, the trace time from onset to offset;
	// zero on onsets.
	DurationNs int64 `json:"duration_ns,omitempty"`
}

// String renders the event as a one-line structured log record.
func (e Event) String() string {
	if e.Type == EventOffset {
		return fmt.Sprintf("event=attack_offset seq=%d prefix=%s level=%d trace_ns=%d share=%.4f bytes=%d duration_ns=%d",
			e.Seq, e.Prefix, e.Level, e.TraceTimeNs, e.Share, e.Bytes, e.DurationNs)
	}
	return fmt.Sprintf("event=attack_onset seq=%d prefix=%s level=%d trace_ns=%d share=%.4f bytes=%d",
		e.Seq, e.Prefix, e.Level, e.TraceTimeNs, e.Share, e.Bytes)
}

// WatcherConfig parameterises attack onset/offset detection. The zero
// value picks the documented defaults.
type WatcherConfig struct {
	// Threshold is the conditioned share of window mass a prefix must
	// reach to count as attacking. Default 0.25 — above the steady-state
	// share of any single prefix in the repository's Zipf-tailed base
	// mixes, below the pulse shares the hit-and-run scenarios inject.
	Threshold float64
	// MinBytes additionally requires that many conditioned bytes, so
	// near-empty windows (trace edges, idle links) cannot alarm on noise
	// mass. Default 0 (disabled).
	MinBytes int64
	// MinLevel is the minimum family-relative prefix length (bits) a
	// candidate must have. The hierarchy root (level 0) absorbs every
	// byte the detector could not attribute below it — on the repository's
	// traces that residual runs 35–50% of window mass in every scenario —
	// so level 0 is never attack evidence. Default 1 (exclude only the
	// root); raise it to ignore coarse aggregates like /8s. Negative
	// disables the guard entirely.
	MinLevel int
	// HoldOn is how many consecutive observed windows a prefix must hold
	// Threshold before the onset fires. Default 1 (alarm on first
	// crossing — hit-and-run pulses can be shorter than two windows).
	HoldOn int
	// HoldOff is how many consecutive observed windows below Threshold
	// end an attack. Default 2, so a pulse briefly dipping across one
	// window boundary does not emit an offset/onset flap.
	HoldOff int
	// Capacity bounds the event ring buffer; once full, the oldest events
	// are overwritten. Default 256.
	Capacity int
	// OnEvent, when set, is called synchronously for every emitted event
	// (the server hooks structured log lines here).
	OnEvent func(Event)
}

// withDefaults resolves zero fields to the documented defaults.
func (c WatcherConfig) withDefaults() WatcherConfig {
	if c.Threshold <= 0 {
		c.Threshold = 0.25
	}
	if c.MinLevel == 0 {
		c.MinLevel = 1
	}
	if c.HoldOn <= 0 {
		c.HoldOn = 1
	}
	if c.HoldOff <= 0 {
		c.HoldOff = 2
	}
	if c.Capacity <= 0 {
		c.Capacity = 256
	}
	return c
}

// attackState tracks one prefix's hysteresis across windows.
type attackState struct {
	above     int // consecutive observed windows at/above threshold
	below     int // consecutive observed windows under threshold
	active    bool
	onsetTs   int64
	lastShare float64
	lastBytes int64
}

// Watcher turns per-window HHH sets into attack onset/offset events with
// hysteresis. Feed it one ObserveWindow call per sampled window (the
// server samples once per closed window; tests replay scenario traces);
// it emits an onset when a prefix's conditioned share holds the
// threshold for HoldOn windows and the matching offset after the share
// stays below for HoldOff windows. Events land in a fixed-capacity ring
// (newest win) and, optionally, a synchronous OnEvent callback.
//
// Watcher is safe for concurrent use, though the intended shape is a
// single sampling goroutine with concurrent readers (Events, Active,
// scrapes of the registered gauges).
type Watcher struct {
	cfg WatcherConfig

	mu     sync.Mutex
	states map[addr.Prefix]*attackState
	seq    int64
	ring   []Event
	next   int   // ring slot the next event lands in
	total  int64 // events ever emitted
	onsets int64
	offs   int64
}

// NewWatcher builds a watcher; zero-value config fields pick defaults.
func NewWatcher(cfg WatcherConfig) *Watcher {
	cfg = cfg.withDefaults()
	return &Watcher{
		cfg:    cfg,
		states: make(map[addr.Prefix]*attackState),
		ring:   make([]Event, 0, cfg.Capacity),
	}
}

// ObserveWindow feeds one window's HHH set. endTs is the window's trace
// timestamp; windowBytes is the window's total byte mass (the share
// denominator) — when it is not positive, the summed conditioned volume
// of the set is used instead, so the watcher degrades gracefully when
// the caller has no mass accounting.
func (w *Watcher) ObserveWindow(endTs int64, set hhh.Set, windowBytes int64) {
	if windowBytes <= 0 {
		for _, it := range set {
			windowBytes += it.Conditioned
		}
		if windowBytes <= 0 {
			windowBytes = 1
		}
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	for p, it := range set {
		if int(p.FamilyBits()) < w.cfg.MinLevel {
			continue
		}
		share := float64(it.Conditioned) / float64(windowBytes)
		if share < w.cfg.Threshold || it.Conditioned < w.cfg.MinBytes {
			continue
		}
		st := w.states[p]
		if st == nil {
			st = &attackState{}
			w.states[p] = st
		}
		st.above++
		st.below = 0
		st.lastShare = share
		st.lastBytes = it.Conditioned
		if !st.active && st.above >= w.cfg.HoldOn {
			st.active = true
			st.onsetTs = endTs
			w.emit(Event{
				Type: EventOnset, Prefix: p.String(), Level: int(p.FamilyBits()),
				TraceTimeNs: endTs, Share: share, Bytes: it.Conditioned,
			})
		}
	}
	// Every tracked prefix that did not hold the threshold this window
	// cools down; cold inactive entries are dropped so the state map stays
	// bounded by the number of concurrently hot prefixes.
	for p, st := range w.states {
		if above, ok := aboveThisWindow(set, p, windowBytes, w.cfg); ok && above {
			continue
		}
		st.above = 0
		st.below++
		if st.active && st.below >= w.cfg.HoldOff {
			st.active = false
			w.emit(Event{
				Type: EventOffset, Prefix: p.String(), Level: int(p.FamilyBits()),
				TraceTimeNs: endTs, Share: st.lastShare, Bytes: st.lastBytes,
				DurationNs: endTs - st.onsetTs,
			})
		}
		if !st.active && st.below >= w.cfg.HoldOff {
			delete(w.states, p)
		}
	}
}

// aboveThisWindow reports whether p held the threshold in this window's
// set (and whether it was present at all — the bool pair keeps the caller
// loop readable).
func aboveThisWindow(set hhh.Set, p addr.Prefix, windowBytes int64, cfg WatcherConfig) (above, ok bool) {
	it, ok := set[p]
	if !ok || int(p.FamilyBits()) < cfg.MinLevel {
		return false, ok
	}
	share := float64(it.Conditioned) / float64(windowBytes)
	return share >= cfg.Threshold && it.Conditioned >= cfg.MinBytes, true
}

// emit appends to the ring and fires the callback. Caller holds w.mu.
func (w *Watcher) emit(e Event) {
	w.seq++
	e.Seq = w.seq
	if len(w.ring) < w.cfg.Capacity {
		w.ring = append(w.ring, e)
	} else {
		w.ring[w.next] = e
	}
	w.next = (w.next + 1) % w.cfg.Capacity
	w.total++
	if e.Type == EventOnset {
		w.onsets++
	} else {
		w.offs++
	}
	if w.cfg.OnEvent != nil {
		w.cfg.OnEvent(e)
	}
}

// Events returns the retained events oldest-first (at most Capacity; the
// ring overwrites the oldest once full).
func (w *Watcher) Events() []Event {
	w.mu.Lock()
	defer w.mu.Unlock()
	if len(w.ring) < w.cfg.Capacity {
		// Ring not yet full: the slice itself is oldest-first.
		return append([]Event(nil), w.ring...)
	}
	out := make([]Event, 0, len(w.ring))
	out = append(out, w.ring[w.next:]...)
	return append(out, w.ring[:w.next]...)
}

// Active returns the number of currently active attack episodes.
func (w *Watcher) Active() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	n := 0
	for _, st := range w.states {
		if st.active {
			n++
		}
	}
	return n
}

// Counts returns cumulative (onsets, offsets) emitted.
func (w *Watcher) Counts() (onsets, offsets int64) {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.onsets, w.offs
}

// Register exposes the watcher on r: hhh_attacks_active,
// hhh_attack_onsets_total, hhh_attack_offsets_total and
// hhh_attack_events_total, all function-backed reads of watcher state.
func (w *Watcher) Register(r *Registry) {
	r.GaugeFunc("hhh_attacks_active",
		"Attack episodes currently between onset and offset.",
		func() float64 { return float64(w.Active()) })
	r.CounterFunc("hhh_attack_onsets_total",
		"Attack onset events emitted by the onset/offset watcher.",
		func() int64 { o, _ := w.Counts(); return o })
	r.CounterFunc("hhh_attack_offsets_total",
		"Attack offset events emitted by the onset/offset watcher.",
		func() int64 { _, f := w.Counts(); return f })
	r.CounterFunc("hhh_attack_events_total",
		"Total attack lifecycle events emitted (onsets plus offsets).",
		func() int64 { o, f := w.Counts(); return o + f })
}
