package telemetry

import (
	"strings"
	"testing"

	"hiddenhhh/internal/addr"
	"hiddenhhh/internal/hhh"
)

func pfx(s string) addr.Prefix { return addr.MustParsePrefix(s) }

// window builds an hhh.Set from prefix→conditioned-bytes pairs.
func window(items map[string]int64) hhh.Set {
	set := hhh.Set{}
	for s, c := range items {
		p := pfx(s)
		set[p] = hhh.Item{Prefix: p, Count: c, Conditioned: c}
	}
	return set
}

// TestWatcherOnsetOffset walks one prefix through a full episode:
// onset on first crossing (HoldOn 1), offset after HoldOff quiet
// windows, with duration measured onset→offset.
func TestWatcherOnsetOffset(t *testing.T) {
	w := NewWatcher(WatcherConfig{Threshold: 0.3, HoldOff: 2})
	quiet := window(map[string]int64{"10.0.0.0/8": 10})
	hot := window(map[string]int64{"10.0.0.0/8": 60, "20.0.0.0/8": 10})

	w.ObserveWindow(1e9, quiet, 100)
	if got := len(w.Events()); got != 0 {
		t.Fatalf("quiet window emitted %d events", got)
	}
	w.ObserveWindow(2e9, hot, 100) // share 0.6 → onset
	w.ObserveWindow(3e9, hot, 100) // still hot
	w.ObserveWindow(4e9, quiet, 100)
	w.ObserveWindow(5e9, quiet, 100) // second quiet window → offset

	evs := w.Events()
	if len(evs) != 2 {
		t.Fatalf("got %d events, want onset+offset: %v", len(evs), evs)
	}
	on, off := evs[0], evs[1]
	if on.Type != EventOnset || off.Type != EventOffset {
		t.Fatalf("event types %v, %v", on.Type, off.Type)
	}
	if on.Prefix != "10.0.0.0/8" || off.Prefix != "10.0.0.0/8" {
		t.Fatalf("prefixes %q, %q", on.Prefix, off.Prefix)
	}
	if on.Seq >= off.Seq {
		t.Fatalf("onset seq %d not before offset seq %d", on.Seq, off.Seq)
	}
	if on.TraceTimeNs != 2e9 || off.TraceTimeNs != 5e9 {
		t.Fatalf("timestamps %d, %d", on.TraceTimeNs, off.TraceTimeNs)
	}
	if off.DurationNs != 3e9 {
		t.Fatalf("offset duration %d, want 3e9", off.DurationNs)
	}
	if on.Share != 0.6 || on.Bytes != 60 {
		t.Fatalf("onset share=%v bytes=%d", on.Share, on.Bytes)
	}
	if on.Level != 8 {
		t.Fatalf("onset level %d, want 8", on.Level)
	}
	if onsets, offs := w.Counts(); onsets != 1 || offs != 1 {
		t.Fatalf("counts onsets=%d offsets=%d", onsets, offs)
	}
	if w.Active() != 0 {
		t.Fatalf("active after offset: %d", w.Active())
	}
}

// TestWatcherHoldOnHysteresis: with HoldOn 2 a single hot window does
// not alarm, and a one-window dip does not end an episode (HoldOff 2).
func TestWatcherHoldOnHysteresis(t *testing.T) {
	w := NewWatcher(WatcherConfig{Threshold: 0.3, HoldOn: 2, HoldOff: 2})
	quiet := window(map[string]int64{"10.0.0.0/8": 10})
	hot := window(map[string]int64{"10.0.0.0/8": 60})

	w.ObserveWindow(1e9, hot, 100)
	w.ObserveWindow(2e9, quiet, 100) // streak broken before HoldOn
	w.ObserveWindow(3e9, quiet, 100)
	if got := len(w.Events()); got != 0 {
		t.Fatalf("sub-HoldOn blip emitted %d events", got)
	}
	w.ObserveWindow(4e9, hot, 100)
	w.ObserveWindow(5e9, hot, 100) // second consecutive → onset
	w.ObserveWindow(6e9, quiet, 100)
	w.ObserveWindow(7e9, hot, 100) // dip shorter than HoldOff: still active
	if w.Active() != 1 {
		t.Fatalf("active=%d after one-window dip, want 1", w.Active())
	}
	evs := w.Events()
	if len(evs) != 1 || evs[0].Type != EventOnset || evs[0].TraceTimeNs != 5e9 {
		t.Fatalf("events after dip: %v", evs)
	}
}

// TestWatcherMinLevel: the hierarchy root carries the unattributed
// residual of every window (35–50% of mass on the repository's traces)
// and must never alarm at the default MinLevel.
func TestWatcherMinLevel(t *testing.T) {
	w := NewWatcher(WatcherConfig{Threshold: 0.25})
	root := window(map[string]int64{"0.0.0.0/0": 45, "10.0.0.0/8": 10})
	for ts := int64(1e9); ts <= 5e9; ts += 1e9 {
		w.ObserveWindow(ts, root, 100)
	}
	if got := len(w.Events()); got != 0 {
		t.Fatalf("root prefix alarmed through MinLevel guard: %v", w.Events())
	}
	// Disabling the guard (MinLevel < 0) makes the same stream alarm.
	w = NewWatcher(WatcherConfig{Threshold: 0.25, MinLevel: -1})
	w.ObserveWindow(1e9, root, 100)
	evs := w.Events()
	if len(evs) != 1 || evs[0].Prefix != "0.0.0.0/0" || evs[0].Level != 0 {
		t.Fatalf("MinLevel=-1 did not alarm on the root: %v", evs)
	}
}

// TestWatcherMinBytes: near-empty windows cannot alarm on share alone.
func TestWatcherMinBytes(t *testing.T) {
	w := NewWatcher(WatcherConfig{Threshold: 0.3, MinBytes: 1000})
	w.ObserveWindow(1e9, window(map[string]int64{"10.0.0.0/8": 60}), 100)
	if got := len(w.Events()); got != 0 {
		t.Fatalf("sub-MinBytes window emitted %d events", got)
	}
	w.ObserveWindow(2e9, window(map[string]int64{"10.0.0.0/8": 6000}), 10000)
	if got := len(w.Events()); got != 1 {
		t.Fatalf("above-MinBytes window emitted %d events, want 1", got)
	}
}

// TestWatcherMassFallback: with no mass denominator the watcher uses
// the summed conditioned volume of the set.
func TestWatcherMassFallback(t *testing.T) {
	w := NewWatcher(WatcherConfig{Threshold: 0.5})
	set := window(map[string]int64{"10.0.0.0/8": 60, "20.0.0.0/8": 40})
	w.ObserveWindow(1e9, set, 0)
	evs := w.Events()
	if len(evs) != 1 || evs[0].Prefix != "10.0.0.0/8" {
		t.Fatalf("fallback mass events: %v", evs)
	}
	if evs[0].Share != 0.6 {
		t.Fatalf("fallback share %v, want 0.6", evs[0].Share)
	}
}

// TestWatcherRingWrap: the ring keeps the newest Capacity events,
// oldest-first, with monotone sequence numbers.
func TestWatcherRingWrap(t *testing.T) {
	w := NewWatcher(WatcherConfig{Threshold: 0.3, HoldOff: 1, Capacity: 4})
	hot := window(map[string]int64{"10.0.0.0/8": 60})
	quiet := window(map[string]int64{"10.0.0.0/8": 10})
	ts := int64(1e9)
	for i := 0; i < 5; i++ { // 5 onset/offset pairs = 10 events
		w.ObserveWindow(ts, hot, 100)
		ts += 1e9
		w.ObserveWindow(ts, quiet, 100)
		ts += 1e9
	}
	evs := w.Events()
	if len(evs) != 4 {
		t.Fatalf("ring holds %d events, want capacity 4", len(evs))
	}
	for i, e := range evs {
		if want := int64(7 + i); e.Seq != want {
			t.Fatalf("ring[%d].Seq = %d, want %d (oldest-first newest tail)", i, e.Seq, want)
		}
	}
	if onsets, offs := w.Counts(); onsets != 5 || offs != 5 {
		t.Fatalf("counts survived wrap wrong: %d/%d", onsets, offs)
	}
}

// TestWatcherCallbackAndString: OnEvent fires synchronously per event
// and String renders grep-able structured log lines.
func TestWatcherCallbackAndString(t *testing.T) {
	var lines []string
	w := NewWatcher(WatcherConfig{Threshold: 0.3, HoldOff: 1,
		OnEvent: func(e Event) { lines = append(lines, e.String()) }})
	w.ObserveWindow(1e9, window(map[string]int64{"10.0.0.0/8": 60}), 100)
	w.ObserveWindow(2e9, window(map[string]int64{"10.0.0.0/8": 10}), 100)
	if len(lines) != 2 {
		t.Fatalf("callback fired %d times, want 2", len(lines))
	}
	if !strings.Contains(lines[0], "event=attack_onset") ||
		!strings.Contains(lines[0], "prefix=10.0.0.0/8") {
		t.Fatalf("onset line %q", lines[0])
	}
	if !strings.Contains(lines[1], "event=attack_offset") ||
		!strings.Contains(lines[1], "duration_ns=1000000000") {
		t.Fatalf("offset line %q", lines[1])
	}
}

// TestWatcherRegister: the registered families expose live watcher
// state and the exposition stays conformant.
func TestWatcherRegister(t *testing.T) {
	r := NewRegistry()
	w := NewWatcher(WatcherConfig{Threshold: 0.3})
	w.Register(r)
	w.ObserveWindow(1e9, window(map[string]int64{"10.0.0.0/8": 60}), 100)

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	text := sb.String()
	if _, err := ValidateExposition(text); err != nil {
		t.Fatalf("watcher exposition invalid: %v\n%s", err, text)
	}
	for _, want := range []string{
		"hhh_attacks_active 1",
		"hhh_attack_onsets_total 1",
		"hhh_attack_offsets_total 0",
		"hhh_attack_events_total 1",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q:\n%s", want, text)
		}
	}
}
