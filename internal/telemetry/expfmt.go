package telemetry

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
)

// ValidateExposition parses a Prometheus text-format exposition and
// checks it against the subset of the format this repository emits:
//
//   - every line is a HELP line, a TYPE line, or a sample matching the
//     name{label="value",...} value grammar;
//   - metric and label names are well-formed, label values properly
//     quoted and escaped;
//   - every sample belongs to a TYPE-declared family, HELP/TYPE precede
//     the family's samples, and no family is declared twice;
//   - no sample line (name plus exact label set) repeats;
//   - histograms are coherent: le buckets ascending and cumulative, a
//     +Inf bucket present and equal to _count, _sum and _count present,
//     and a non-negative _sum whenever observations exist.
//
// It returns the number of sample lines validated. Tests use it as the
// conformance oracle for everything /metrics serves.
func ValidateExposition(text string) (samples int, err error) {
	type famInfo struct {
		kind     string
		hasHelp  bool
		declared int // line number of TYPE
	}
	families := map[string]*famInfo{}
	seenSamples := map[string]int{}
	type histSeries struct {
		buckets []bucketSample
		sum     float64
		hasSum  bool
		count   int64
		hasCnt  bool
	}
	hists := map[string]*histSeries{}

	lines := strings.Split(text, "\n")
	for ln, line := range lines {
		n := ln + 1
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# HELP ") {
			rest := strings.TrimPrefix(line, "# HELP ")
			name, _, ok := strings.Cut(rest, " ")
			if !ok || !validMetricName(name) {
				return samples, fmt.Errorf("line %d: malformed HELP line %q", n, line)
			}
			f := families[name]
			if f == nil {
				f = &famInfo{}
				families[name] = f
			}
			if f.hasHelp {
				return samples, fmt.Errorf("line %d: duplicate HELP for family %s", n, name)
			}
			f.hasHelp = true
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			rest := strings.TrimPrefix(line, "# TYPE ")
			name, kind, ok := strings.Cut(rest, " ")
			if !ok || !validMetricName(name) {
				return samples, fmt.Errorf("line %d: malformed TYPE line %q", n, line)
			}
			switch kind {
			case "counter", "gauge", "histogram", "summary", "untyped":
			default:
				return samples, fmt.Errorf("line %d: unknown metric type %q", n, kind)
			}
			f := families[name]
			if f == nil {
				f = &famInfo{}
				families[name] = f
			}
			if f.kind != "" {
				return samples, fmt.Errorf("line %d: duplicate TYPE for family %s", n, name)
			}
			f.kind = kind
			f.declared = n
			continue
		}
		if strings.HasPrefix(line, "#") {
			// Plain comments are legal in the format; the registry never
			// emits them, but tolerate them like a scraper would.
			continue
		}

		name, labels, value, perr := parseSampleLine(line)
		if perr != nil {
			return samples, fmt.Errorf("line %d: %v", n, perr)
		}
		samples++

		famName := name
		suffix := ""
		for _, s := range []string{"_bucket", "_sum", "_count"} {
			base := strings.TrimSuffix(name, s)
			if base != name {
				if f, ok := families[base]; ok && f.kind == "histogram" {
					famName, suffix = base, s
				}
				break
			}
		}
		f, ok := families[famName]
		if !ok || f.kind == "" {
			return samples, fmt.Errorf("line %d: sample %s has no preceding TYPE declaration", n, name)
		}
		if !f.hasHelp {
			return samples, fmt.Errorf("line %d: family %s has TYPE but no HELP", n, famName)
		}
		if f.kind == "histogram" && suffix == "" {
			return samples, fmt.Errorf("line %d: bare sample %s inside histogram family", n, name)
		}

		key := sampleKey(name, labels)
		if prev, dup := seenSamples[key]; dup {
			return samples, fmt.Errorf("line %d: duplicate sample %s (first at line %d)", n, key, prev)
		}
		seenSamples[key] = n

		if f.kind == "histogram" {
			le, others := splitLE(labels)
			skey := sampleKey(famName, others)
			h := hists[skey]
			if h == nil {
				h = &histSeries{}
				hists[skey] = h
			}
			switch suffix {
			case "_bucket":
				if le == "" {
					return samples, fmt.Errorf("line %d: histogram bucket without le label", n)
				}
				bound, berr := parseLE(le)
				if berr != nil {
					return samples, fmt.Errorf("line %d: %v", n, berr)
				}
				cum, cerr := strconv.ParseInt(value, 10, 64)
				if cerr != nil {
					return samples, fmt.Errorf("line %d: bucket count %q not an integer", n, value)
				}
				h.buckets = append(h.buckets, bucketSample{bound, cum})
			case "_sum":
				v, verr := parseValue(value)
				if verr != nil {
					return samples, fmt.Errorf("line %d: %v", n, verr)
				}
				h.sum, h.hasSum = v, true
			case "_count":
				c, cerr := strconv.ParseInt(value, 10, 64)
				if cerr != nil {
					return samples, fmt.Errorf("line %d: count %q not an integer", n, value)
				}
				h.count, h.hasCnt = c, true
			}
			continue
		}
		if _, verr := parseValue(value); verr != nil {
			return samples, fmt.Errorf("line %d: %v", n, verr)
		}
		if f.kind == "counter" {
			v, _ := parseValue(value)
			if v < 0 {
				return samples, fmt.Errorf("line %d: counter %s is negative (%s)", n, name, value)
			}
		}
	}

	// Histogram coherence across the whole exposition.
	keys := make([]string, 0, len(hists))
	for k := range hists {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		h := hists[k]
		if !h.hasSum || !h.hasCnt {
			return samples, fmt.Errorf("histogram %s: missing _sum or _count", k)
		}
		if len(h.buckets) == 0 {
			return samples, fmt.Errorf("histogram %s: no buckets", k)
		}
		last := h.buckets[len(h.buckets)-1]
		if !math.IsInf(last.bound, 1) {
			return samples, fmt.Errorf("histogram %s: last bucket le=%v is not +Inf", k, last.bound)
		}
		for i := 1; i < len(h.buckets); i++ {
			if h.buckets[i].bound <= h.buckets[i-1].bound {
				return samples, fmt.Errorf("histogram %s: le bounds not ascending", k)
			}
			if h.buckets[i].cum < h.buckets[i-1].cum {
				return samples, fmt.Errorf("histogram %s: bucket counts not cumulative", k)
			}
		}
		if last.cum != h.count {
			return samples, fmt.Errorf("histogram %s: +Inf bucket %d != _count %d", k, last.cum, h.count)
		}
		if h.count > 0 && h.sum < 0 {
			return samples, fmt.Errorf("histogram %s: negative _sum %v with %d observations", k, h.sum, h.count)
		}
	}
	return samples, nil
}

// bucketSample is one parsed le bucket.
type bucketSample struct {
	bound float64
	cum   int64
}

// labelPair is one parsed label.
type labelPair struct{ k, v string }

// parseSampleLine parses `name{k="v",...} value` (labels optional).
func parseSampleLine(line string) (name string, labels []labelPair, value string, err error) {
	i := strings.IndexAny(line, "{ ")
	if i < 0 {
		return "", nil, "", fmt.Errorf("malformed sample %q", line)
	}
	name = line[:i]
	if !validMetricName(name) {
		return "", nil, "", fmt.Errorf("invalid metric name %q", name)
	}
	rest := line[i:]
	if rest[0] == '{' {
		rest = rest[1:]
		for {
			if rest == "" {
				return "", nil, "", fmt.Errorf("unterminated label set in %q", line)
			}
			if rest[0] == '}' {
				rest = rest[1:]
				break
			}
			eq := strings.Index(rest, "=")
			if eq < 0 {
				return "", nil, "", fmt.Errorf("malformed label in %q", line)
			}
			k := rest[:eq]
			if !validLabelName(k) {
				return "", nil, "", fmt.Errorf("invalid label name %q", k)
			}
			rest = rest[eq+1:]
			if rest == "" || rest[0] != '"' {
				return "", nil, "", fmt.Errorf("unquoted label value in %q", line)
			}
			v, remaining, verr := scanQuoted(rest)
			if verr != nil {
				return "", nil, "", verr
			}
			labels = append(labels, labelPair{k, v})
			rest = remaining
			if rest != "" && rest[0] == ',' {
				rest = rest[1:]
			}
		}
	}
	if rest == "" || rest[0] != ' ' {
		return "", nil, "", fmt.Errorf("missing value separator in %q", line)
	}
	value = strings.TrimPrefix(rest, " ")
	// The format allows a trailing timestamp; the registry never writes
	// one, so reject extra fields to keep the oracle strict.
	if value == "" || strings.ContainsAny(value, " \t") {
		return "", nil, "", fmt.Errorf("malformed value field %q", value)
	}
	for i := range labels {
		for j := i + 1; j < len(labels); j++ {
			if labels[i].k == labels[j].k {
				return "", nil, "", fmt.Errorf("repeated label %q", labels[i].k)
			}
		}
	}
	return name, labels, value, nil
}

// scanQuoted consumes a double-quoted, backslash-escaped string at the
// start of s and returns its unescaped value plus the remainder.
func scanQuoted(s string) (val, rest string, err error) {
	var b strings.Builder
	for i := 1; i < len(s); i++ {
		switch s[i] {
		case '\\':
			if i+1 >= len(s) {
				return "", "", fmt.Errorf("dangling escape in %q", s)
			}
			i++
			switch s[i] {
			case '\\':
				b.WriteByte('\\')
			case '"':
				b.WriteByte('"')
			case 'n':
				b.WriteByte('\n')
			default:
				return "", "", fmt.Errorf("invalid escape \\%c", s[i])
			}
		case '"':
			return b.String(), s[i+1:], nil
		default:
			b.WriteByte(s[i])
		}
	}
	return "", "", fmt.Errorf("unterminated quoted string in %q", s)
}

// splitLE separates the le label from the rest.
func splitLE(labels []labelPair) (le string, others []labelPair) {
	for _, l := range labels {
		if l.k == "le" {
			le = l.v
			continue
		}
		others = append(others, l)
	}
	return le, others
}

// parseLE parses a bucket bound ("0.005", "+Inf").
func parseLE(s string) (float64, error) {
	if s == "+Inf" {
		return math.Inf(1), nil
	}
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, fmt.Errorf("bad le bound %q", s)
	}
	return v, nil
}

// parseValue parses a sample value ("1", "0.05", "+Inf", "NaN").
func parseValue(s string) (float64, error) {
	switch s {
	case "+Inf":
		return math.Inf(1), nil
	case "-Inf":
		return math.Inf(-1), nil
	case "NaN":
		return math.NaN(), nil
	}
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, fmt.Errorf("bad sample value %q", s)
	}
	return v, nil
}

// sampleKey canonicalises a sample identity: name plus sorted labels.
func sampleKey(name string, labels []labelPair) string {
	ls := append([]labelPair(nil), labels...)
	sort.Slice(ls, func(i, j int) bool { return ls[i].k < ls[j].k })
	var b strings.Builder
	b.WriteString(name)
	for _, l := range ls {
		b.WriteByte('{')
		b.WriteString(l.k)
		b.WriteByte('=')
		b.WriteString(l.v)
		b.WriteByte('}')
	}
	return b.String()
}
