// Package telemetry is the runtime metrics core behind the pipeline,
// detector and server instrumentation: atomic counters, gauges and
// fixed-bucket histograms, optionally grouped into labeled families, all
// collected in a Registry that writes Prometheus text-format exposition.
//
// The package is zero-dependency by design (the container bakes in no
// metrics client), and the instrumentation contract is "provably cheap on
// the ingest path": counters and gauges are single atomic operations,
// function-backed metrics (CounterFunc, GaugeFunc) cost nothing until a
// scrape reads them — the pipeline exposes its existing atomic counters
// through them without adding a single instruction to ingest — and
// histograms are reserved for event-frequency paths (batch hand-offs,
// barrier merges, snapshots), never per-packet ones.
//
// Concurrency: every metric type is safe for concurrent use. Registering
// metrics is also safe concurrently, but the intended shape is
// registration at construction time and mutation from the hot paths.
//
// Naming follows the Prometheus conventions the repository documents in
// ARCHITECTURE.md: every family is prefixed "hhh_", subsystem second
// (pipeline, detector, attack, http, eval), base units are seconds and
// bytes, and cumulative families end in "_total". Label cardinality is
// bounded by construction: label values are shard indexes, engine/mode
// names, route names and event types — never addresses or prefixes.
package telemetry

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing cumulative metric. The zero
// value is ready to use.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n; negative n is ignored (counters are
// monotone).
func (c *Counter) Add(n int64) {
	if n > 0 {
		c.v.Add(n)
	}
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a metric that can go up and down. The zero value is ready to
// use.
type Gauge struct {
	bits atomic.Uint64 // float64 bits
}

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adds d to the gauge (atomically, via compare-and-swap).
func (g *Gauge) Add(d float64) {
	for {
		old := g.bits.Load()
		if g.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+d)) {
			return
		}
	}
}

// Value returns the current gauge value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram counts observations into fixed cumulative buckets, tracking
// the observation sum and count alongside. Buckets are set at
// construction and exposed with the Prometheus "le" convention (a +Inf
// bucket is implicit). Observe is a few atomic adds — cheap, but meant
// for event-frequency paths (hand-offs, merges, snapshots), not
// per-packet ones.
type Histogram struct {
	bounds []float64      // ascending upper bounds; +Inf implicit
	counts []atomic.Int64 // len(bounds)+1; last is the +Inf bucket
	sum    atomic.Uint64  // float64 bits
	count  atomic.Int64
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	h.counts[sort.SearchFloat64s(h.bounds, v)].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		if h.sum.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// LatencyBuckets is the default bucket ladder for the *_seconds latency
// histograms: 10µs to 10s in roughly 1-2.5-5 steps, covering everything
// from a batch hand-off on an idle ring to a barrier stalled at its
// deadline.
var LatencyBuckets = []float64{
	10e-6, 25e-6, 50e-6, 100e-6, 250e-6, 500e-6,
	1e-3, 2.5e-3, 5e-3, 10e-3, 25e-3, 50e-3, 100e-3,
	250e-3, 500e-3, 1, 2.5, 5, 10,
}

// metricKind is the exposition TYPE of a family.
type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
)

func (k metricKind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	default:
		return "histogram"
	}
}

// child is one time series of a family: a concrete metric or a
// function-backed sample read at scrape time.
type child struct {
	values  []string
	counter *Counter
	gauge   *Gauge
	cfn     func() int64   // function-backed counter
	gfn     func() float64 // function-backed gauge
	hist    *Histogram
}

// family is one named metric family: type, help, label names, and its
// children keyed by label values.
type family struct {
	name    string
	help    string
	kind    metricKind
	labels  []string
	buckets []float64 // histogram families only

	mu       sync.Mutex
	children map[string]*child
}

// Registry collects metric families and writes them as Prometheus text
// exposition. Use NewRegistry; the zero value is not valid.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// family returns the named family, creating it on first use. Registering
// the same name with a different type, help, label set or bucket ladder
// panics: family shapes are fixed at first registration, and a mismatch
// is a programming error that would corrupt the exposition.
func (r *Registry) family(name, help string, kind metricKind, labels []string, buckets []float64) *family {
	mustValidName(name)
	for _, l := range labels {
		mustValidLabel(l)
	}
	if kind == kindHistogram {
		if len(buckets) == 0 {
			panic("telemetry: histogram " + name + " needs at least one bucket")
		}
		for i := 1; i < len(buckets); i++ {
			if buckets[i] <= buckets[i-1] {
				panic("telemetry: histogram " + name + " buckets must be strictly ascending")
			}
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.families[name]; ok {
		if f.kind != kind || f.help != help || !equalStrings(f.labels, labels) || !equalFloats(f.buckets, buckets) {
			panic("telemetry: conflicting registration of metric family " + name)
		}
		return f
	}
	f := &family{
		name: name, help: help, kind: kind,
		labels:   append([]string(nil), labels...),
		buckets:  append([]float64(nil), buckets...),
		children: make(map[string]*child),
	}
	r.families[name] = f
	return f
}

// child returns the family's child for the label values, creating it via
// mk on first use. A WithFunc registration against an existing child (or
// vice versa) panics: two writers for one time series is a wiring bug.
func (f *family) child(values []string, mk func() *child) *child {
	if len(values) != len(f.labels) {
		panic(fmt.Sprintf("telemetry: metric %s wants %d label values, got %d",
			f.name, len(f.labels), len(values)))
	}
	key := strings.Join(values, "\x00")
	f.mu.Lock()
	defer f.mu.Unlock()
	if c, ok := f.children[key]; ok {
		if mk == nil {
			return c
		}
		panic("telemetry: duplicate function-backed series for " + f.name)
	}
	var c *child
	if mk != nil {
		c = mk()
	} else {
		c = &child{}
		switch f.kind {
		case kindCounter:
			c.counter = &Counter{}
		case kindGauge:
			c.gauge = &Gauge{}
		default:
			c.hist = &Histogram{
				bounds: f.buckets,
				counts: make([]atomic.Int64, len(f.buckets)+1),
			}
		}
	}
	c.values = append([]string(nil), values...)
	f.children[key] = c
	return c
}

// Counter registers (or returns) an unlabeled counter.
func (r *Registry) Counter(name, help string) *Counter {
	return r.family(name, help, kindCounter, nil, nil).child(nil, nil).counter
}

// CounterFunc registers a function-backed counter: fn is read at scrape
// time and must be monotonically non-decreasing (typically an existing
// atomic counter loaded in place, costing the hot path nothing).
func (r *Registry) CounterFunc(name, help string, fn func() int64) {
	r.family(name, help, kindCounter, nil, nil).child(nil, func() *child { return &child{cfn: fn} })
}

// Gauge registers (or returns) an unlabeled gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	return r.family(name, help, kindGauge, nil, nil).child(nil, nil).gauge
}

// GaugeFunc registers a function-backed gauge read at scrape time.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	r.family(name, help, kindGauge, nil, nil).child(nil, func() *child { return &child{gfn: fn} })
}

// Histogram registers (or returns) an unlabeled histogram with the given
// bucket upper bounds (ascending; +Inf is implicit).
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	return r.family(name, help, kindHistogram, nil, buckets).child(nil, nil).hist
}

// CounterVec is a counter family with labels; With returns the child for
// a label-value tuple.
type CounterVec struct{ f *family }

// CounterVec registers (or returns) a labeled counter family.
func (r *Registry) CounterVec(name, help string, labels ...string) *CounterVec {
	return &CounterVec{r.family(name, help, kindCounter, labels, nil)}
}

// With returns the counter for the label values, creating it on first
// use. Callers on hot paths should cache the returned handle.
func (v *CounterVec) With(values ...string) *Counter {
	return v.f.child(values, nil).counter
}

// WithFunc registers a function-backed child for the label values.
func (v *CounterVec) WithFunc(fn func() int64, values ...string) {
	v.f.child(values, func() *child { return &child{cfn: fn} })
}

// GaugeVec is a gauge family with labels.
type GaugeVec struct{ f *family }

// GaugeVec registers (or returns) a labeled gauge family.
func (r *Registry) GaugeVec(name, help string, labels ...string) *GaugeVec {
	return &GaugeVec{r.family(name, help, kindGauge, labels, nil)}
}

// With returns the gauge for the label values, creating it on first use.
func (v *GaugeVec) With(values ...string) *Gauge {
	return v.f.child(values, nil).gauge
}

// WithFunc registers a function-backed child for the label values.
func (v *GaugeVec) WithFunc(fn func() float64, values ...string) {
	v.f.child(values, func() *child { return &child{gfn: fn} })
}

// HistogramVec is a histogram family with labels; every child shares the
// family's bucket ladder.
type HistogramVec struct{ f *family }

// HistogramVec registers (or returns) a labeled histogram family.
func (r *Registry) HistogramVec(name, help string, buckets []float64, labels ...string) *HistogramVec {
	return &HistogramVec{r.family(name, help, kindHistogram, labels, buckets)}
}

// With returns the histogram for the label values, creating it on first
// use. Callers should cache the returned handle.
func (v *HistogramVec) With(values ...string) *Histogram {
	return v.f.child(values, nil).hist
}

// WritePrometheus writes every registered family in Prometheus text
// exposition format (version 0.0.4): families sorted by name, children
// by label values, histograms expanded into cumulative le buckets plus
// _sum and _count.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	fams := make([]*family, 0, len(r.families))
	for _, f := range r.families {
		fams = append(fams, f)
	}
	r.mu.Unlock()
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })
	var b strings.Builder
	for _, f := range fams {
		f.write(&b)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// write renders one family.
func (f *family) write(b *strings.Builder) {
	f.mu.Lock()
	kids := make([]*child, 0, len(f.children))
	for _, c := range f.children {
		kids = append(kids, c)
	}
	f.mu.Unlock()
	sort.Slice(kids, func(i, j int) bool {
		return strings.Join(kids[i].values, "\x00") < strings.Join(kids[j].values, "\x00")
	})
	b.WriteString("# HELP ")
	b.WriteString(f.name)
	b.WriteByte(' ')
	b.WriteString(escapeHelp(f.help))
	b.WriteString("\n# TYPE ")
	b.WriteString(f.name)
	b.WriteByte(' ')
	b.WriteString(f.kind.String())
	b.WriteByte('\n')
	for _, c := range kids {
		switch f.kind {
		case kindHistogram:
			f.writeHistogram(b, c)
		case kindCounter:
			v := c.cfn
			if v == nil {
				cc := c.counter
				v = cc.Value
			}
			writeSample(b, f.name, f.labels, c.values, "", "", strconv.FormatInt(v(), 10))
		default:
			var val float64
			if c.gfn != nil {
				val = c.gfn()
			} else {
				val = c.gauge.Value()
			}
			writeSample(b, f.name, f.labels, c.values, "", "", formatFloat(val))
		}
	}
}

// writeHistogram renders one histogram child: cumulative buckets, sum,
// count.
func (f *family) writeHistogram(b *strings.Builder, c *child) {
	var cum int64
	for i, bound := range f.buckets {
		cum += c.hist.counts[i].Load()
		writeSample(b, f.name+"_bucket", f.labels, c.values, "le", formatFloat(bound),
			strconv.FormatInt(cum, 10))
	}
	cum += c.hist.counts[len(f.buckets)].Load()
	writeSample(b, f.name+"_bucket", f.labels, c.values, "le", "+Inf",
		strconv.FormatInt(cum, 10))
	writeSample(b, f.name+"_sum", f.labels, c.values, "", "", formatFloat(c.hist.Sum()))
	writeSample(b, f.name+"_count", f.labels, c.values, "", "", strconv.FormatInt(c.hist.Count(), 10))
}

// writeSample renders one sample line, appending the extra label (le)
// when given.
func writeSample(b *strings.Builder, name string, labels, values []string, extraK, extraV, val string) {
	b.WriteString(name)
	if len(labels) > 0 || extraK != "" {
		b.WriteByte('{')
		for i, l := range labels {
			if i > 0 {
				b.WriteByte(',')
			}
			b.WriteString(l)
			b.WriteString(`="`)
			b.WriteString(escapeLabel(values[i]))
			b.WriteByte('"')
		}
		if extraK != "" {
			if len(labels) > 0 {
				b.WriteByte(',')
			}
			b.WriteString(extraK)
			b.WriteString(`="`)
			b.WriteString(escapeLabel(extraV))
			b.WriteByte('"')
		}
		b.WriteByte('}')
	}
	b.WriteByte(' ')
	b.WriteString(val)
	b.WriteByte('\n')
}

// formatFloat renders a float sample value ("1", "0.05", "+Inf").
func formatFloat(v float64) string {
	if math.IsInf(v, 1) {
		return "+Inf"
	}
	if math.IsInf(v, -1) {
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// escapeHelp escapes backslashes and newlines in HELP text.
func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// escapeLabel escapes backslashes, quotes and newlines in label values.
func escapeLabel(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, `"`, `\"`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// mustValidName panics unless name is a valid Prometheus metric name.
func mustValidName(name string) {
	if !validMetricName(name) {
		panic("telemetry: invalid metric name " + strconv.Quote(name))
	}
}

// mustValidLabel panics unless l is a valid Prometheus label name.
func mustValidLabel(l string) {
	if !validLabelName(l) || strings.HasPrefix(l, "__") {
		panic("telemetry: invalid label name " + strconv.Quote(l))
	}
}

// validMetricName reports whether s matches [a-zA-Z_:][a-zA-Z0-9_:]*.
func validMetricName(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		ok := r == '_' || r == ':' || (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') ||
			(i > 0 && r >= '0' && r <= '9')
		if !ok {
			return false
		}
	}
	return true
}

// validLabelName reports whether s matches [a-zA-Z_][a-zA-Z0-9_]*.
func validLabelName(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		ok := r == '_' || (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') ||
			(i > 0 && r >= '0' && r <= '9')
		if !ok {
			return false
		}
	}
	return true
}

// equalStrings reports element-wise equality.
func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// equalFloats reports element-wise equality.
func equalFloats(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
