// Serialization seams for the sliding engines: read-only state views and
// validated restore constructors, the basis of the internal/wire codec.
// Restores rebuild the exact internal layout (frame clocks, dense entry
// tables, key indexes), so a restored summary is merge- and
// query-equivalent to the one that was serialized; unlike the
// constructors and Merge they validate instead of panicking, because
// their inputs ultimately come off the network.

package swhh

import (
	"fmt"

	"hiddenhhh/internal/addr"
	"hiddenhhh/internal/hhh"
	"hiddenhhh/internal/sketch"
)

// FrameUninit is the exported sentinel for a frame clock that has never
// advanced (see frameUninit); wire codecs transport it verbatim.
const FrameUninit = frameUninit

// SlidingState is the serializable state of a flat Sliding summary: the
// global index of the frame currently filling plus the ring of per-frame
// summaries and exact totals (Frames+1 slots, slot = frame mod ring).
// The slices returned by State view live storage — treat as read-only.
type SlidingState struct {
	CurFrame int64
	Frames   []*sketch.SpaceSaving
	Totals   []int64
}

// Config returns the summary's configuration (defaults applied).
func (s *Sliding) Config() Config { return s.cfg }

// State returns a read-only view of the summary's serializable state.
func (s *Sliding) State() SlidingState {
	return SlidingState{CurFrame: s.curFrame, Frames: s.frames, Totals: s.totals}
}

// RestoreSliding rebuilds a flat Sliding summary from cfg and serialized
// state. The frame summaries are adopted (typically from
// sketch.RestoreSpaceSaving); ring length and per-frame capacities must
// match cfg, and an uninitialised frame clock requires an empty ring.
func RestoreSliding(cfg Config, st SlidingState) (*Sliding, error) {
	s, err := NewSliding(cfg)
	if err != nil {
		return nil, err
	}
	if len(st.Frames) != len(s.frames) || len(st.Totals) != len(s.totals) {
		return nil, fmt.Errorf("swhh: restore: ring %d/%d does not match config ring %d",
			len(st.Frames), len(st.Totals), len(s.frames))
	}
	for i, f := range st.Frames {
		if f == nil {
			return nil, fmt.Errorf("swhh: restore: nil frame summary at slot %d", i)
		}
		if f.Capacity() != s.cfg.Counters {
			return nil, fmt.Errorf("swhh: restore: frame %d capacity %d != configured %d",
				i, f.Capacity(), s.cfg.Counters)
		}
		if st.Totals[i] < 0 {
			return nil, fmt.Errorf("swhh: restore: negative frame total at slot %d", i)
		}
		if st.CurFrame == frameUninit && (f.Len() != 0 || st.Totals[i] != 0) {
			return nil, fmt.Errorf("swhh: restore: uninitialised frame clock with non-empty slot %d", i)
		}
	}
	s.curFrame = st.CurFrame
	copy(s.totals, st.Totals)
	copy(s.frames, st.Frames)
	return s, nil
}

// Hierarchy returns the configured hierarchy.
func (d *SlidingHHH) Hierarchy() addr.Hierarchy { return d.h }

// Config returns the per-level summary configuration (defaults applied).
func (d *SlidingHHH) Config() Config { return d.levels[0].cfg }

// LevelSummary returns level l's flat summary for serialization. The
// returned summary is the live one — callers must treat it as read-only.
func (d *SlidingHHH) LevelSummary(l int) *Sliding { return d.levels[l] }

// RestoreSlidingHHH rebuilds a per-level sliding HHH detector from the
// hierarchy and one restored flat summary per level. All levels must
// share the same frame geometry.
func RestoreSlidingHHH(h addr.Hierarchy, levels []*Sliding) (*SlidingHHH, error) {
	if len(levels) != h.Levels() {
		return nil, fmt.Errorf("swhh: restore: %d level summaries for %d-level hierarchy %v",
			len(levels), h.Levels(), h)
	}
	d := &SlidingHHH{
		h:      h,
		levels: make([]*Sliding, len(levels)),
		masks:  make([]uint64, len(levels)),
		high:   h.KeyFromHigh(),
		seen:   make(map[uint64]struct{}, 64),
		qs:     hhh.NewQueryScratch(),
	}
	for l, lv := range levels {
		if lv == nil {
			return nil, fmt.Errorf("swhh: restore: nil summary at level %d", l)
		}
		if lv.frameNs != levels[0].frameNs || len(lv.frames) != len(levels[0].frames) {
			return nil, fmt.Errorf("swhh: restore: level %d frame geometry differs from level 0", l)
		}
		d.levels[l] = lv
		d.masks[l] = h.KeyMask(l)
	}
	return d, nil
}

// MementoState is the serializable state of a flat Memento summary: the
// frame clock and eviction cursor plus the dense entry table (the first
// len(Keys) entries, with the flattened entry-major frame-cell matrix)
// and the exact per-frame totals ring. The slices returned by State view
// live storage — treat as read-only.
type MementoState struct {
	CurFrame int64
	Cursor   int
	Keys     []uint64
	Counts   []int64
	Errs     []int64
	Cells    []int64 // entry-major, len(Keys) × ring
	Totals   []int64 // ring (Frames+1 slots)
}

// Config returns the summary's configuration (defaults applied).
func (m *Memento) Config() Config { return m.cfg }

// State returns a read-only view of the summary's serializable state.
func (m *Memento) State() MementoState {
	return MementoState{
		CurFrame: m.curFrame,
		Cursor:   m.cursor,
		Keys:     m.keys[:m.n],
		Counts:   m.counts[:m.n],
		Errs:     m.errs[:m.n],
		Cells:    m.cells[:int64(m.n)*m.ring],
		Totals:   m.totals,
	}
}

// RestoreMemento rebuilds a flat Memento summary from cfg and serialized
// state, reconstructing the key index. Entry invariants are enforced:
// each windowed count must be positive and equal the sum of its frame
// cells, error slop must lie in [0, count], keys must be unique, and an
// uninitialised frame clock requires an empty table.
func RestoreMemento(cfg Config, st MementoState) (*Memento, error) {
	m, err := NewMemento(cfg)
	if err != nil {
		return nil, err
	}
	n := len(st.Keys)
	if n > len(m.keys) {
		return nil, fmt.Errorf("swhh: restore: %d entries exceed capacity %d", n, len(m.keys))
	}
	if len(st.Counts) != n || len(st.Errs) != n || len(st.Cells) != int(int64(n)*m.ring) {
		return nil, fmt.Errorf("swhh: restore: entry column lengths disagree (%d keys, %d counts, %d errs, %d cells)",
			n, len(st.Counts), len(st.Errs), len(st.Cells))
	}
	if len(st.Totals) != len(m.totals) {
		return nil, fmt.Errorf("swhh: restore: totals ring %d != configured ring %d", len(st.Totals), len(m.totals))
	}
	if st.Cursor < 0 || st.Cursor > len(m.keys) {
		return nil, fmt.Errorf("swhh: restore: cursor %d out of range", st.Cursor)
	}
	for i, t := range st.Totals {
		if t < 0 {
			return nil, fmt.Errorf("swhh: restore: negative frame total at slot %d", i)
		}
		if st.CurFrame == frameUninit && t != 0 {
			return nil, fmt.Errorf("swhh: restore: uninitialised frame clock with non-empty slot %d", i)
		}
	}
	if st.CurFrame == frameUninit && n != 0 {
		return nil, fmt.Errorf("swhh: restore: uninitialised frame clock with %d entries", n)
	}
	for e := 0; e < n; e++ {
		var sum int64
		for s := int64(0); s < m.ring; s++ {
			c := st.Cells[int64(e)*m.ring+s]
			if c < 0 {
				return nil, fmt.Errorf("swhh: restore: negative cell for entry %d slot %d", e, s)
			}
			sum += c
		}
		if st.Counts[e] <= 0 || st.Counts[e] != sum {
			return nil, fmt.Errorf("swhh: restore: entry %d count %d does not match cell sum %d", e, st.Counts[e], sum)
		}
		if st.Errs[e] < 0 || st.Errs[e] > st.Counts[e] {
			return nil, fmt.Errorf("swhh: restore: entry %d error slop %d out of [0, %d]", e, st.Errs[e], st.Counts[e])
		}
		if m.find(st.Keys[e]) >= 0 {
			return nil, fmt.Errorf("swhh: restore: duplicate key %#x", st.Keys[e])
		}
		m.keys[e] = st.Keys[e]
		m.counts[e] = st.Counts[e]
		m.errs[e] = st.Errs[e]
		m.idxInsert(st.Keys[e], e)
		m.n = e + 1
	}
	copy(m.cells, st.Cells)
	copy(m.totals, st.Totals)
	m.cursor = st.Cursor
	m.curFrame = st.CurFrame
	return m, nil
}

// MementoHHHState is the serializable state of the hierarchical wrapper:
// the level-sampling splitmix64 state, the wrapper's exact totals ring
// with its frame clock, and the per-level tables. The slices returned by
// State view live storage — treat as read-only.
type MementoHHHState struct {
	Sampler  uint64
	CurFrame int64
	Totals   []int64
	Levels   []*Memento
}

// Hierarchy returns the configured hierarchy.
func (d *MementoHHH) Hierarchy() addr.Hierarchy { return d.h }

// Config returns the per-level summary configuration (defaults applied).
func (d *MementoHHH) Config() Config { return d.levels[0].cfg }

// State returns a read-only view of the detector's serializable state.
func (d *MementoHHH) State() MementoHHHState {
	return MementoHHHState{Sampler: d.rng, CurFrame: d.curFrame, Totals: d.totals, Levels: d.levels}
}

// RestoreMementoHHH rebuilds a level-sampled Memento HHH detector from
// the hierarchy, the shared Config, and serialized state. Per-level
// tables are adopted (typically from RestoreMemento) and must share the
// configured frame geometry.
func RestoreMementoHHH(h addr.Hierarchy, cfg Config, st MementoHHHState) (*MementoHHH, error) {
	d, err := NewMementoHHH(h, cfg, 0)
	if err != nil {
		return nil, err
	}
	if len(st.Levels) != len(d.levels) {
		return nil, fmt.Errorf("swhh: restore: %d level tables for %d-level hierarchy %v",
			len(st.Levels), len(d.levels), h)
	}
	if len(st.Totals) != len(d.totals) {
		return nil, fmt.Errorf("swhh: restore: totals ring %d != configured ring %d", len(st.Totals), len(d.totals))
	}
	for i, t := range st.Totals {
		if t < 0 {
			return nil, fmt.Errorf("swhh: restore: negative frame total at slot %d", i)
		}
		if st.CurFrame == frameUninit && t != 0 {
			return nil, fmt.Errorf("swhh: restore: uninitialised frame clock with non-empty slot %d", i)
		}
	}
	capN := len(d.levels[0].keys)
	for l, lv := range st.Levels {
		if lv == nil {
			return nil, fmt.Errorf("swhh: restore: nil table at level %d", l)
		}
		if lv.frameNs != d.frameNs || lv.ring != d.ring || len(lv.keys) != capN {
			return nil, fmt.Errorf("swhh: restore: level %d geometry differs from config", l)
		}
		d.levels[l] = lv
	}
	d.rng = st.Sampler
	d.curFrame = st.CurFrame
	copy(d.totals, st.Totals)
	return d, nil
}
