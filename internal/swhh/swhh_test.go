package swhh

import (
	"math/rand"
	"testing"
	"time"

	"hiddenhhh/internal/hhh"
	"hiddenhhh/internal/ipv4"
	"hiddenhhh/internal/sketch"
)

const sec = int64(time.Second)

func TestConfigValidation(t *testing.T) {
	if _, err := NewSliding(Config{Window: 0}); err == nil {
		t.Error("zero window should fail")
	}
	s, err := NewSliding(Config{Window: time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if s.cfg.Frames != 8 || s.cfg.Counters != 256 {
		t.Errorf("defaults not applied: %+v", s.cfg)
	}
}

func TestRecentKeyIsCounted(t *testing.T) {
	s, err := NewSliding(Config{Window: time.Second, Frames: 4, Counters: 64})
	if err != nil {
		t.Fatal(err)
	}
	s.Update(7, 100, 0)
	s.Update(7, 50, sec/2)
	if got := s.Estimate(7, sec/2); got != 150 {
		t.Errorf("estimate = %d, want 150", got)
	}
	if got := s.WindowTotal(sec / 2); got != 150 {
		t.Errorf("total = %d", got)
	}
}

func TestOldTrafficExpires(t *testing.T) {
	s, err := NewSliding(Config{Window: time.Second, Frames: 4, Counters: 64})
	if err != nil {
		t.Fatal(err)
	}
	s.Update(7, 1000, 0)
	// After W(1+1/k) = 1.25 s the entry must be fully expired.
	if got := s.Estimate(7, sec+sec/4+1); got != 0 {
		t.Errorf("stale estimate = %d, want 0", got)
	}
	if got := s.WindowTotal(2 * sec); got != 0 {
		t.Errorf("stale total = %d", got)
	}
}

func TestCoverageBounds(t *testing.T) {
	// A steady 1-unit-per-ms flow: the windowed total must land between
	// W and W(1+1/k) worth of traffic.
	s, err := NewSliding(Config{Window: time.Second, Frames: 8, Counters: 64})
	if err != nil {
		t.Fatal(err)
	}
	now := int64(0)
	for i := 0; i < 5000; i++ {
		now += int64(time.Millisecond)
		s.Update(1, 1, now)
	}
	got := s.WindowTotal(now)
	if got < 1000 || got > 1125+1 {
		t.Errorf("window total %d outside [1000, 1126]", got)
	}
}

func TestHeavyKeysFindsHeavy(t *testing.T) {
	s, err := NewSliding(Config{Window: time.Second, Frames: 8, Counters: 128})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	now := int64(0)
	for i := 0; i < 20000; i++ {
		now += int64(50 * time.Microsecond)
		if i%4 == 0 {
			s.Update(42, 1000, now) // 25% of packets, heavier bytes
		} else {
			s.Update(uint64(rng.Intn(5000))+100, 100, now)
		}
	}
	hk := s.HeavyKeys(0.2, now)
	found := false
	for _, kv := range hk {
		if kv.Key == 42 {
			found = true
		}
	}
	if !found {
		t.Fatalf("heavy key missing from %v", hk)
	}
	// And a burst that ended long ago must not be reported.
	if hk2 := s.HeavyKeys(0.2, now+10*sec); len(hk2) != 0 {
		t.Errorf("stale heavy keys: %v", hk2)
	}
}

func TestHeavyKeysEmptyWindow(t *testing.T) {
	s, err := NewSliding(Config{Window: time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if hk := s.HeavyKeys(0.01, 0); hk != nil {
		t.Errorf("empty window returned %v", hk)
	}
}

func TestResetAndSize(t *testing.T) {
	s, err := NewSliding(Config{Window: time.Second, Frames: 4, Counters: 32})
	if err != nil {
		t.Fatal(err)
	}
	s.Update(1, 10, 0)
	s.Reset()
	if s.Estimate(1, 0) != 0 || s.WindowTotal(0) != 0 {
		t.Error("Reset incomplete")
	}
	// Exact accounting: frames+1 summaries, as the summary reports it.
	if want := 5 * sketch.NewSpaceSaving(32).SizeBytes(); s.SizeBytes() != want {
		t.Errorf("SizeBytes = %d, want %d", s.SizeBytes(), want)
	}
}

func TestSlidingHHHDetectsBoundaryBurst(t *testing.T) {
	// The motivating scenario: a burst across what would be a disjoint
	// window boundary is visible to the sliding detector at all times.
	h := ipv4.NewHierarchy(ipv4.Byte)
	d, err := NewSlidingHHH(h, Config{Window: 2 * time.Second, Frames: 8, Counters: 128})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	attacker := ipv4.MustParseAddr("203.0.113.7")
	now := int64(0)
	var atBoundary hhh.Set
	for i := 0; i < 40000; i++ { // 20 s at 2000 pps
		now += sec / 2000
		d.Update(ipv4.Addr(rng.Uint32()), 500, now)
		if now > 9500*int64(time.Millisecond) && now < 10500*int64(time.Millisecond) {
			d.Update(attacker, 1000, now)
		}
		// Query exactly when crossing the would-be window boundary at
		// 10 s: the burst is mid-flight, split across disjoint windows.
		if atBoundary == nil && now >= 10*sec {
			atBoundary = d.Query(0.05, now)
		}
	}
	if !atBoundary.Contains(ipv4.Host(attacker)) {
		t.Fatalf("sliding HHH missed mid-burst attacker: %v", atBoundary)
	}
	// Long after the burst, the attacker must have expired.
	if final := d.Query(0.05, now); final.Contains(ipv4.Host(attacker)) {
		t.Fatalf("attacker still reported 10 s after burst: %v", final)
	}
	if d.SizeBytes() <= 0 {
		t.Error("SizeBytes")
	}
}

func TestSlidingHHHConditioning(t *testing.T) {
	// One host dominating its /24: the host should be reported, the /24
	// conditioned away.
	h := ipv4.NewHierarchy(ipv4.Byte)
	d, err := NewSlidingHHH(h, Config{Window: time.Second, Frames: 4, Counters: 128})
	if err != nil {
		t.Fatal(err)
	}
	heavy := ipv4.MustParseAddr("10.1.2.3")
	rng := rand.New(rand.NewSource(3))
	now := int64(0)
	for i := 0; i < 10000; i++ {
		now += int64(100 * time.Microsecond)
		if i%3 == 0 {
			d.Update(heavy, 1000, now)
		} else {
			d.Update(ipv4.Addr(rng.Uint32()), 500, now)
		}
	}
	set := d.Query(0.1, now)
	if !set.Contains(ipv4.Host(heavy)) {
		t.Fatalf("heavy host missing: %v", set)
	}
	if set.Contains(ipv4.MustParsePrefix("10.1.2.0/24")) {
		t.Fatalf("/24 not conditioned away: %v", set)
	}
}

func BenchmarkSlidingUpdate(b *testing.B) {
	s, err := NewSliding(Config{Window: time.Second, Frames: 8, Counters: 512})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.Update(uint64(i)&1023, 1000, int64(i)*1000)
	}
}

func BenchmarkSlidingHHHUpdate(b *testing.B) {
	h := ipv4.NewHierarchy(ipv4.Byte)
	d, err := NewSlidingHHH(h, Config{Window: time.Second, Frames: 8, Counters: 512})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		d.Update(ipv4.Addr(uint32(i)*2654435761), 1000, int64(i)*1000)
	}
}
