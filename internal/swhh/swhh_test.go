package swhh

import (
	"math/rand"
	"testing"
	"time"

	"hiddenhhh/internal/addr"
	"hiddenhhh/internal/hhh"
	"hiddenhhh/internal/sketch"
	"hiddenhhh/internal/trace"
)

const sec = int64(time.Second)

func TestConfigValidation(t *testing.T) {
	if _, err := NewSliding(Config{Window: 0}); err == nil {
		t.Error("zero window should fail")
	}
	s, err := NewSliding(Config{Window: time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if s.cfg.Frames != 8 || s.cfg.Counters != 256 {
		t.Errorf("defaults not applied: %+v", s.cfg)
	}
}

// TestEpochTimestampFirstPacket is the frame-advance spin regression: the
// first packet of a real trace carries an epoch-nanosecond timestamp
// (~1.7e18), and advance used to loop once per elapsed frame from
// curFrame 0 — ~10^10 iterations before the packet landed. The clamp must
// jump in one step; the deadline is generous only to keep slow CI from
// flaking, the jump itself is microseconds.
func TestEpochTimestampFirstPacket(t *testing.T) {
	s, err := NewSliding(Config{Window: time.Second, Frames: 8, Counters: 64})
	if err != nil {
		t.Fatal(err)
	}
	epoch := int64(1_700_000_000_000_000_000) // 2023-11-14 in ns
	start := time.Now()
	s.Update(7, 100, epoch)
	if el := time.Since(start); el > time.Second {
		t.Fatalf("first epoch-timestamp update took %v", el)
	}
	if got := s.Estimate(7, epoch); got != 100 {
		t.Errorf("estimate = %d, want 100", got)
	}
	if got := s.WindowTotal(epoch); got != 100 {
		t.Errorf("total = %d, want 100", got)
	}
	// And the hierarchical wrapper must survive the same first packet
	// through both ingest paths.
	h := addr.NewIPv4Hierarchy(addr.Byte)
	d, err := NewSlidingHHH(h, Config{Window: time.Second, Frames: 8, Counters: 64})
	if err != nil {
		t.Fatal(err)
	}
	start = time.Now()
	d.Update(addr.MustParseAddr("10.1.2.3"), 100, epoch)
	d.UpdateBatch([]trace.Packet{{Ts: epoch + 1, Src: addr.MustParseAddr("10.1.2.4"), Size: 50}})
	if el := time.Since(start); el > time.Second {
		t.Fatalf("SlidingHHH epoch ingest took %v", el)
	}
	if got := d.WindowTotal(epoch + 1); got != 150 {
		t.Errorf("SlidingHHH total = %d, want 150", got)
	}
}

// TestIdleGapAdvances pins the other face of the same bug: an idle gap of
// one hour over 1 ms frames is 3.6e6 elapsed frames, which must collapse
// into one wholesale reset, not a per-frame loop.
func TestIdleGapAdvances(t *testing.T) {
	s, err := NewSliding(Config{Window: 8 * time.Millisecond, Frames: 8, Counters: 64})
	if err != nil {
		t.Fatal(err)
	}
	if s.frameNs != int64(time.Millisecond) {
		t.Fatalf("frameNs = %d, want 1ms", s.frameNs)
	}
	s.Update(7, 100, 0)
	start := time.Now()
	s.Update(9, 50, int64(time.Hour)) // 3.6e6 frames later
	if el := time.Since(start); el > time.Second {
		t.Fatalf("1h-gap update took %v", el)
	}
	if got := s.Estimate(7, int64(time.Hour)); got != 0 {
		t.Errorf("pre-gap key not expired: %d", got)
	}
	if got := s.WindowTotal(int64(time.Hour)); got != 50 {
		t.Errorf("post-gap total = %d, want 50", got)
	}
}

// TestSubFrameWindow pins the frameNs divide-by-zero fix: a window
// shorter than Frames nanoseconds used to yield frameNs == 0 and panic in
// advance; it must instead floor the frame length at 1 ns and work.
func TestSubFrameWindow(t *testing.T) {
	s, err := NewSliding(Config{Window: 3, Frames: 8, Counters: 16}) // 3 ns window
	if err != nil {
		t.Fatal(err)
	}
	if s.frameNs != 1 {
		t.Fatalf("frameNs = %d, want 1", s.frameNs)
	}
	s.Update(7, 10, 5)
	if got := s.Estimate(7, 5); got != 10 {
		t.Errorf("estimate = %d, want 10", got)
	}
	// 9 ns later every 1-ns frame has expired.
	if got := s.Estimate(7, 14); got != 0 {
		t.Errorf("estimate after expiry = %d, want 0", got)
	}
}

func TestRecentKeyIsCounted(t *testing.T) {
	s, err := NewSliding(Config{Window: time.Second, Frames: 4, Counters: 64})
	if err != nil {
		t.Fatal(err)
	}
	s.Update(7, 100, 0)
	s.Update(7, 50, sec/2)
	if got := s.Estimate(7, sec/2); got != 150 {
		t.Errorf("estimate = %d, want 150", got)
	}
	if got := s.WindowTotal(sec / 2); got != 150 {
		t.Errorf("total = %d", got)
	}
}

func TestOldTrafficExpires(t *testing.T) {
	s, err := NewSliding(Config{Window: time.Second, Frames: 4, Counters: 64})
	if err != nil {
		t.Fatal(err)
	}
	s.Update(7, 1000, 0)
	// After W(1+1/k) = 1.25 s the entry must be fully expired.
	if got := s.Estimate(7, sec+sec/4+1); got != 0 {
		t.Errorf("stale estimate = %d, want 0", got)
	}
	if got := s.WindowTotal(2 * sec); got != 0 {
		t.Errorf("stale total = %d", got)
	}
}

func TestCoverageBounds(t *testing.T) {
	// A steady 1-unit-per-ms flow: the windowed total must land between
	// W and W(1+1/k) worth of traffic.
	s, err := NewSliding(Config{Window: time.Second, Frames: 8, Counters: 64})
	if err != nil {
		t.Fatal(err)
	}
	now := int64(0)
	for i := 0; i < 5000; i++ {
		now += int64(time.Millisecond)
		s.Update(1, 1, now)
	}
	got := s.WindowTotal(now)
	if got < 1000 || got > 1125+1 {
		t.Errorf("window total %d outside [1000, 1126]", got)
	}
}

func TestHeavyKeysFindsHeavy(t *testing.T) {
	s, err := NewSliding(Config{Window: time.Second, Frames: 8, Counters: 128})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	now := int64(0)
	for i := 0; i < 20000; i++ {
		now += int64(50 * time.Microsecond)
		if i%4 == 0 {
			s.Update(42, 1000, now) // 25% of packets, heavier bytes
		} else {
			s.Update(uint64(rng.Intn(5000))+100, 100, now)
		}
	}
	hk := s.HeavyKeys(0.2, now)
	found := false
	for _, kv := range hk {
		if kv.Key == 42 {
			found = true
		}
	}
	if !found {
		t.Fatalf("heavy key missing from %v", hk)
	}
	// And a burst that ended long ago must not be reported.
	if hk2 := s.HeavyKeys(0.2, now+10*sec); len(hk2) != 0 {
		t.Errorf("stale heavy keys: %v", hk2)
	}
}

func TestHeavyKeysEmptyWindow(t *testing.T) {
	s, err := NewSliding(Config{Window: time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if hk := s.HeavyKeys(0.01, 0); hk != nil {
		t.Errorf("empty window returned %v", hk)
	}
}

func TestResetAndSize(t *testing.T) {
	s, err := NewSliding(Config{Window: time.Second, Frames: 4, Counters: 32})
	if err != nil {
		t.Fatal(err)
	}
	s.Update(1, 10, 0)
	s.Reset()
	if s.Estimate(1, 0) != 0 || s.WindowTotal(0) != 0 {
		t.Error("Reset incomplete")
	}
	// Exact accounting: frames+1 summaries, as the summary reports it.
	if want := 5 * sketch.NewSpaceSaving(32).SizeBytes(); s.SizeBytes() != want {
		t.Errorf("SizeBytes = %d, want %d", s.SizeBytes(), want)
	}
}

func TestSlidingHHHDetectsBoundaryBurst(t *testing.T) {
	// The motivating scenario: a burst across what would be a disjoint
	// window boundary is visible to the sliding detector at all times.
	h := addr.NewIPv4Hierarchy(addr.Byte)
	d, err := NewSlidingHHH(h, Config{Window: 2 * time.Second, Frames: 8, Counters: 128})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	attacker := addr.MustParseAddr("203.0.113.7")
	now := int64(0)
	var atBoundary hhh.Set
	for i := 0; i < 40000; i++ { // 20 s at 2000 pps
		now += sec / 2000
		d.Update(addr.From4Uint32(rng.Uint32()), 500, now)
		if now > 9500*int64(time.Millisecond) && now < 10500*int64(time.Millisecond) {
			d.Update(attacker, 1000, now)
		}
		// Query exactly when crossing the would-be window boundary at
		// 10 s: the burst is mid-flight, split across disjoint windows.
		if atBoundary == nil && now >= 10*sec {
			atBoundary = d.Query(0.05, now)
		}
	}
	if !atBoundary.Contains(addr.Host(attacker)) {
		t.Fatalf("sliding HHH missed mid-burst attacker: %v", atBoundary)
	}
	// Long after the burst, the attacker must have expired.
	if final := d.Query(0.05, now); final.Contains(addr.Host(attacker)) {
		t.Fatalf("attacker still reported 10 s after burst: %v", final)
	}
	if d.SizeBytes() <= 0 {
		t.Error("SizeBytes")
	}
}

func TestSlidingHHHConditioning(t *testing.T) {
	// One host dominating its /24: the host should be reported, the /24
	// conditioned away.
	h := addr.NewIPv4Hierarchy(addr.Byte)
	d, err := NewSlidingHHH(h, Config{Window: time.Second, Frames: 4, Counters: 128})
	if err != nil {
		t.Fatal(err)
	}
	heavy := addr.MustParseAddr("10.1.2.3")
	rng := rand.New(rand.NewSource(3))
	now := int64(0)
	for i := 0; i < 10000; i++ {
		now += int64(100 * time.Microsecond)
		if i%3 == 0 {
			d.Update(heavy, 1000, now)
		} else {
			d.Update(addr.From4Uint32(rng.Uint32()), 500, now)
		}
	}
	set := d.Query(0.1, now)
	if !set.Contains(addr.Host(heavy)) {
		t.Fatalf("heavy host missing: %v", set)
	}
	if set.Contains(addr.MustParsePrefix("10.1.2.0/24")) {
		t.Fatalf("/24 not conditioned away: %v", set)
	}
}

// TestSlidingMergeDisjointExact: merging summaries of disjoint key
// streams with ample capacity reproduces the union stream's estimates and
// totals exactly, frame for frame.
func TestSlidingMergeDisjointExact(t *testing.T) {
	cfg := Config{Window: time.Second, Frames: 4, Counters: 64}
	mk := func() *Sliding {
		s, err := NewSliding(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	a, b, whole := mk(), mk(), mk()
	now := int64(0)
	for i := 0; i < 2000; i++ {
		now += int64(time.Millisecond)
		keyA, keyB := uint64(i%7), uint64(100+i%5)
		a.Update(keyA, 10, now)
		whole.Update(keyA, 10, now)
		b.Update(keyB, 3, now)
		whole.Update(keyB, 3, now)
	}
	a.Advance(now)
	b.Advance(now)
	merged := mk()
	merged.Merge(a)
	merged.Merge(b)
	if got, want := merged.WindowTotal(now), whole.WindowTotal(now); got != want {
		t.Errorf("merged total %d != whole %d", got, want)
	}
	for _, key := range []uint64{0, 3, 6, 100, 104} {
		if got, want := merged.Estimate(key, now), whole.Estimate(key, now); got != want {
			t.Errorf("key %d: merged %d != whole %d", key, got, want)
		}
	}
}

// TestSlidingMergeAlignsFrames: merging a summary that is several frames
// ahead first expires the receiver's stale frames, so mass the live
// stream would have dropped does not resurface.
func TestSlidingMergeAlignsFrames(t *testing.T) {
	cfg := Config{Window: time.Second, Frames: 4, Counters: 64}
	old, err := NewSliding(cfg)
	if err != nil {
		t.Fatal(err)
	}
	old.Update(7, 100, 0) // frame 0 only
	fresh, err := NewSliding(cfg)
	if err != nil {
		t.Fatal(err)
	}
	later := 3 * int64(time.Second) // frame 12: all of old's frames expired
	fresh.Update(9, 50, later)
	fresh.Merge(old)
	if got := fresh.Estimate(7, later); got != 0 {
		t.Errorf("expired key resurfaced with %d", got)
	}
	if got := fresh.WindowTotal(later); got != 50 {
		t.Errorf("total = %d, want 50", got)
	}
	// Reverse direction: merging a fresher summary advances the stale
	// receiver past its own frames.
	old2, err := NewSliding(cfg)
	if err != nil {
		t.Fatal(err)
	}
	old2.Update(7, 100, 0)
	old2.Merge(fresh)
	if got := old2.Estimate(7, later); got != 0 {
		t.Errorf("receiver kept expired mass: %d", got)
	}
	if got := old2.Estimate(9, later); got != 50 {
		t.Errorf("merged-in key = %d, want 50", got)
	}
}

// TestSlidingMergeConfigMismatch pins the panic on incompatible shapes.
func TestSlidingMergeConfigMismatch(t *testing.T) {
	a, _ := NewSliding(Config{Window: time.Second, Frames: 4})
	b, _ := NewSliding(Config{Window: time.Second, Frames: 8})
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on frame-count mismatch")
		}
	}()
	a.Merge(b)
}

// TestSlidingHHHMergeIdentity: merging one detector into an empty one and
// querying reproduces the original's HHH set exactly (the K=1 sharded
// case).
func TestSlidingHHHMergeIdentity(t *testing.T) {
	h := addr.NewIPv4Hierarchy(addr.Byte)
	cfg := Config{Window: time.Second, Frames: 4, Counters: 128}
	src, err := NewSlidingHHH(h, cfg)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(4))
	now := int64(0)
	for i := 0; i < 20000; i++ {
		now += int64(50 * time.Microsecond)
		if i%3 == 0 {
			src.Update(addr.MustParseAddr("10.1.2.3"), 900, now)
		} else {
			src.Update(addr.From4Uint32(rng.Uint32()), 400, now)
		}
	}
	src.Advance(now)
	dst, err := NewSlidingHHH(h, cfg)
	if err != nil {
		t.Fatal(err)
	}
	dst.Merge(src)
	want, got := src.Query(0.05, now), dst.Query(0.05, now)
	if !got.Equal(want) {
		t.Fatalf("merged copy differs:\n got %v\nwant %v", got, want)
	}
	for p, it := range want {
		if got[p].Count != it.Count || got[p].Conditioned != it.Conditioned {
			t.Errorf("%v: merged %+v != original %+v", p, got[p], it)
		}
	}
}

func BenchmarkSlidingUpdate(b *testing.B) {
	s, err := NewSliding(Config{Window: time.Second, Frames: 8, Counters: 512})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.Update(uint64(i)&1023, 1000, int64(i)*1000)
	}
}

func BenchmarkSlidingHHHUpdate(b *testing.B) {
	h := addr.NewIPv4Hierarchy(addr.Byte)
	d, err := NewSlidingHHH(h, Config{Window: time.Second, Frames: 8, Counters: 512})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		d.Update(addr.From4Uint32(uint32(i)*2654435761), 1000, int64(i)*1000)
	}
}
