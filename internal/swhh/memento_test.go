package swhh

import (
	"math/rand"
	"testing"
	"time"

	"hiddenhhh/internal/addr"
	"hiddenhhh/internal/hhh"
	"hiddenhhh/internal/trace"
)

func TestMementoConfigValidation(t *testing.T) {
	if _, err := NewMemento(Config{Window: 0}); err == nil {
		t.Error("zero window should fail")
	}
	m, err := NewMemento(Config{Window: time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if m.cfg.Frames != 8 || m.cfg.Counters != 256 {
		t.Errorf("defaults not applied: %+v", m.cfg)
	}
	if len(m.idx) < 4*256 || len(m.idx)&(len(m.idx)-1) != 0 {
		t.Errorf("index size %d not a power of two >= 4x capacity", len(m.idx))
	}
}

// TestMementoEpochTimestampFirstPacket mirrors the WCSS frame-advance
// spin regression: the first packet of an epoch-nanosecond trace must
// land via one wholesale jump, for the flat table and for both ingest
// paths of the level-sampled wrapper.
func TestMementoEpochTimestampFirstPacket(t *testing.T) {
	m, err := NewMemento(Config{Window: time.Second, Frames: 8, Counters: 64})
	if err != nil {
		t.Fatal(err)
	}
	epoch := int64(1_700_000_000_000_000_000)
	start := time.Now()
	m.Update(7, 100, epoch)
	if el := time.Since(start); el > time.Second {
		t.Fatalf("first epoch-timestamp update took %v", el)
	}
	if got := m.Estimate(7, epoch); got != 100 {
		t.Errorf("estimate = %d, want 100", got)
	}
	if got := m.WindowTotal(epoch); got != 100 {
		t.Errorf("total = %d, want 100", got)
	}
	h := addr.NewIPv4Hierarchy(addr.Byte)
	d, err := NewMementoHHH(h, Config{Window: time.Second, Frames: 8, Counters: 64}, 1)
	if err != nil {
		t.Fatal(err)
	}
	start = time.Now()
	d.Update(addr.MustParseAddr("10.1.2.3"), 100, epoch)
	d.UpdateBatch([]trace.Packet{{Ts: epoch + 1, Src: addr.MustParseAddr("10.1.2.4"), Size: 50}})
	if el := time.Since(start); el > time.Second {
		t.Fatalf("MementoHHH epoch ingest took %v", el)
	}
	if got := d.WindowTotal(epoch + 1); got != 150 {
		t.Errorf("MementoHHH total = %d, want 150", got)
	}
}

func TestMementoIdleGapAdvances(t *testing.T) {
	m, err := NewMemento(Config{Window: 8 * time.Millisecond, Frames: 8, Counters: 64})
	if err != nil {
		t.Fatal(err)
	}
	m.Update(7, 100, 0)
	start := time.Now()
	m.Update(9, 50, int64(time.Hour))
	if el := time.Since(start); el > time.Second {
		t.Fatalf("1h-gap update took %v", el)
	}
	if got := m.Estimate(7, int64(time.Hour)); got != 0 {
		t.Errorf("pre-gap key not expired: %d", got)
	}
	if got := m.WindowTotal(int64(time.Hour)); got != 50 {
		t.Errorf("post-gap total = %d, want 50", got)
	}
}

func TestMementoWindowMechanics(t *testing.T) {
	m, err := NewMemento(Config{Window: time.Second, Frames: 4, Counters: 64})
	if err != nil {
		t.Fatal(err)
	}
	m.Update(7, 100, 0)
	m.Update(7, 50, sec/2)
	if got := m.Estimate(7, sec/2); got != 150 {
		t.Errorf("estimate = %d, want 150", got)
	}
	// After W(1+1/k) = 1.25 s the frame-0 mass must be fully expired.
	if got := m.Estimate(7, sec+sec/4+1); got != 50 {
		t.Errorf("estimate after partial expiry = %d, want 50", got)
	}
	if got := m.Estimate(7, 2*sec); got != 0 {
		t.Errorf("estimate after full expiry = %d, want 0", got)
	}
	if got := m.WindowTotal(2 * sec); got != 0 {
		t.Errorf("stale total = %d", got)
	}
	if m.n != 0 {
		t.Errorf("expired entries not compacted: n = %d", m.n)
	}
}

func TestMementoCoverageBounds(t *testing.T) {
	// A steady 1-unit-per-ms flow: the windowed total must land between W
	// and W(1+1/k) worth of traffic — identical geometry to the WCSS ring.
	m, err := NewMemento(Config{Window: time.Second, Frames: 8, Counters: 64})
	if err != nil {
		t.Fatal(err)
	}
	now := int64(0)
	for i := 0; i < 5000; i++ {
		now += int64(time.Millisecond)
		m.Update(1, 1, now)
	}
	got := m.WindowTotal(now)
	if got < 1000 || got > 1125+1 {
		t.Errorf("window total %d outside [1000, 1126]", got)
	}
	if est := m.Estimate(1, now); est != got {
		t.Errorf("single-key estimate %d != total %d", est, got)
	}
}

func TestMementoHeavyKeysFindsHeavy(t *testing.T) {
	m, err := NewMemento(Config{Window: time.Second, Frames: 8, Counters: 128})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	now := int64(0)
	for i := 0; i < 20000; i++ {
		now += int64(50 * time.Microsecond)
		if i%4 == 0 {
			m.Update(42, 1000, now)
		} else {
			m.Update(uint64(rng.Intn(5000))+100, 100, now)
		}
	}
	found := false
	for _, kv := range m.HeavyKeys(0.2, now) {
		if kv.Key == 42 {
			found = true
		}
	}
	if !found {
		t.Fatal("heavy key missing")
	}
	if hk := m.HeavyKeys(0.2, now+10*sec); len(hk) != 0 {
		t.Errorf("stale heavy keys: %v", hk)
	}
}

func TestMementoHeavyKeysEmptyWindow(t *testing.T) {
	m, err := NewMemento(Config{Window: time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if hk := m.HeavyKeys(0.01, 0); hk != nil {
		t.Errorf("empty window returned %v", hk)
	}
}

// TestMementoEvictionOverflow drives far more distinct keys than the
// table holds: the persistent heavy key must survive eviction pressure
// with an estimate that upper-bounds its true mass, and the tracked error
// slop must never exceed the count.
func TestMementoEvictionOverflow(t *testing.T) {
	m, err := NewMemento(Config{Window: time.Second, Frames: 4, Counters: 32})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	now := int64(0)
	var heavyTrue int64
	for i := 0; i < 50000; i++ {
		now += int64(10 * time.Microsecond)
		if i%5 == 0 {
			m.Update(42, 500, now)
			heavyTrue += 500
		} else {
			m.Update(uint64(rng.Intn(100000))+100, 100, now)
		}
	}
	// The whole run fits inside one window (0.5 s span), so nothing has
	// expired: the heavy key's estimate must be an upper bound on its
	// true mass.
	if est := m.Estimate(42, now); est < heavyTrue {
		t.Errorf("estimate %d undercuts true mass %d", est, heavyTrue)
	}
	for e := 0; e < m.n; e++ {
		if m.errs[e] > m.counts[e] || m.errs[e] < 0 {
			t.Fatalf("entry %d: err %d outside [0, count %d]", e, m.errs[e], m.counts[e])
		}
		var sum int64
		for s := int64(0); s < m.ring; s++ {
			sum += m.cells[int64(e)*m.ring+s]
		}
		if sum != m.counts[e] {
			t.Fatalf("entry %d: cells sum %d != count %d", e, sum, m.counts[e])
		}
	}
}

// TestMementoMatchesSlidingExactRegime: with ample capacity (no
// evictions) and no level sampling, the flat Memento and the WCSS
// Sliding are both exact and must agree key for key, frame for frame.
func TestMementoMatchesSlidingExactRegime(t *testing.T) {
	cfg := Config{Window: time.Second, Frames: 4, Counters: 256}
	m, err := NewMemento(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewSliding(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(9))
	now := int64(0)
	for i := 0; i < 30000; i++ {
		now += int64(100 * time.Microsecond)
		key, w := uint64(rng.Intn(100)), int64(rng.Intn(1500)+40)
		m.Update(key, w, now)
		s.Update(key, w, now)
	}
	if mt, st := m.WindowTotal(now), s.WindowTotal(now); mt != st {
		t.Fatalf("totals diverge: memento %d, wcss %d", mt, st)
	}
	for key := uint64(0); key < 100; key++ {
		if me, se := m.Estimate(key, now), s.Estimate(key, now); me != se {
			t.Errorf("key %d: memento %d != wcss %d", key, me, se)
		}
	}
}

func TestMementoMergeDisjointExact(t *testing.T) {
	cfg := Config{Window: time.Second, Frames: 4, Counters: 64}
	mk := func() *Memento {
		m, err := NewMemento(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	a, b, whole := mk(), mk(), mk()
	now := int64(0)
	for i := 0; i < 2000; i++ {
		now += int64(time.Millisecond)
		keyA, keyB := uint64(i%7), uint64(100+i%5)
		a.Update(keyA, 10, now)
		whole.Update(keyA, 10, now)
		b.Update(keyB, 3, now)
		whole.Update(keyB, 3, now)
	}
	a.Advance(now)
	b.Advance(now)
	merged := mk()
	merged.Merge(a)
	merged.Merge(b)
	if got, want := merged.WindowTotal(now), whole.WindowTotal(now); got != want {
		t.Errorf("merged total %d != whole %d", got, want)
	}
	for _, key := range []uint64{0, 3, 6, 100, 104} {
		if got, want := merged.Estimate(key, now), whole.Estimate(key, now); got != want {
			t.Errorf("key %d: merged %d != whole %d", key, got, want)
		}
	}
}

func TestMementoMergeAlignsFrames(t *testing.T) {
	cfg := Config{Window: time.Second, Frames: 4, Counters: 64}
	old, err := NewMemento(cfg)
	if err != nil {
		t.Fatal(err)
	}
	old.Update(7, 100, 0)
	fresh, err := NewMemento(cfg)
	if err != nil {
		t.Fatal(err)
	}
	later := 3 * int64(time.Second)
	fresh.Update(9, 50, later)
	fresh.Merge(old)
	if got := fresh.Estimate(7, later); got != 0 {
		t.Errorf("expired key resurfaced with %d", got)
	}
	if got := fresh.WindowTotal(later); got != 50 {
		t.Errorf("total = %d, want 50", got)
	}
	old2, err := NewMemento(cfg)
	if err != nil {
		t.Fatal(err)
	}
	old2.Update(7, 100, 0)
	old2.Merge(fresh)
	if got := old2.Estimate(7, later); got != 0 {
		t.Errorf("receiver kept expired mass: %d", got)
	}
	if got := old2.Estimate(9, later); got != 50 {
		t.Errorf("merged-in key = %d, want 50", got)
	}
}

func TestMementoMergeConfigMismatch(t *testing.T) {
	a, _ := NewMemento(Config{Window: time.Second, Frames: 4})
	b, _ := NewMemento(Config{Window: time.Second, Frames: 8})
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on frame-count mismatch")
		}
	}()
	a.Merge(b)
}

// TestMementoHHHMergeIdentity: merging one detector into an empty one
// reproduces the original's HHH set exactly (the K=1 sharded case).
func TestMementoHHHMergeIdentity(t *testing.T) {
	h := addr.NewIPv4Hierarchy(addr.Byte)
	cfg := Config{Window: time.Second, Frames: 4, Counters: 128}
	src, err := NewMementoHHH(h, cfg, 11)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(4))
	now := int64(0)
	for i := 0; i < 20000; i++ {
		now += int64(50 * time.Microsecond)
		if i%3 == 0 {
			src.Update(addr.MustParseAddr("10.1.2.3"), 900, now)
		} else {
			src.Update(addr.From4Uint32(rng.Uint32()), 400, now)
		}
	}
	src.Advance(now)
	dst, err := NewMementoHHH(h, cfg, 11)
	if err != nil {
		t.Fatal(err)
	}
	dst.Merge(src)
	want, got := src.Query(0.05, now), dst.Query(0.05, now)
	if !got.Equal(want) {
		t.Fatalf("merged copy differs:\n got %v\nwant %v", got, want)
	}
	for p, it := range want {
		if got[p].Count != it.Count || got[p].Conditioned != it.Conditioned {
			t.Errorf("%v: merged %+v != original %+v", p, got[p], it)
		}
	}
	if got, want := dst.WindowTotal(now), src.WindowTotal(now); got != want {
		t.Errorf("merged total %d != original %d", got, want)
	}
}

// TestMementoHHHDetectsBoundaryBurst mirrors the motivating WCSS
// scenario on the sampled engine: a burst split across a would-be
// disjoint window boundary stays visible, and expires afterwards.
func TestMementoHHHDetectsBoundaryBurst(t *testing.T) {
	h := addr.NewIPv4Hierarchy(addr.Byte)
	d, err := NewMementoHHH(h, Config{Window: 2 * time.Second, Frames: 8, Counters: 128}, 5)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	attacker := addr.MustParseAddr("203.0.113.7")
	now := int64(0)
	var atBoundary hhh.Set
	for i := 0; i < 40000; i++ {
		now += sec / 2000
		d.Update(addr.From4Uint32(rng.Uint32()), 500, now)
		if now > 9500*int64(time.Millisecond) && now < 10500*int64(time.Millisecond) {
			d.Update(attacker, 1000, now)
		}
		if atBoundary == nil && now >= 10*sec {
			atBoundary = d.Query(0.05, now)
		}
	}
	if !atBoundary.Contains(addr.Host(attacker)) {
		t.Fatalf("memento HHH missed mid-burst attacker: %v", atBoundary)
	}
	if final := d.Query(0.05, now); final.Contains(addr.Host(attacker)) {
		t.Fatalf("attacker still reported 10 s after burst: %v", final)
	}
	if d.SizeBytes() <= 0 {
		t.Error("SizeBytes")
	}
}

// TestMementoKeyBatchMatchesUpdate pins the columnar fast path to
// per-packet Update calls under the same seed: the level-sampling
// sequence advances in stream order either way, so frame rotation,
// totals, and the reported set must be identical for every chunking.
func TestMementoKeyBatchMatchesUpdate(t *testing.T) {
	pkts := dualStackStream(11, 24000)
	last := pkts[len(pkts)-1].Ts
	cfg := Config{Window: 4 * time.Second, Frames: 8, Counters: 64}
	for name, h := range map[string]addr.Hierarchy{
		"ipv4-byte":   addr.NewIPv4Hierarchy(addr.Byte),
		"ipv6-hextet": addr.NewIPv6Hierarchy(addr.Hextet),
	} {
		t.Run(name, func(t *testing.T) {
			ref, err := NewMementoHHH(h, cfg, 21)
			if err != nil {
				t.Fatal(err)
			}
			for i := range pkts {
				ref.Update(pkts[i].Src, int64(pkts[i].Size), pkts[i].Ts)
			}
			want := ref.Query(0.02, last)
			wantTotal := ref.WindowTotal(last)
			for _, bs := range []int{1, 7, 97, len(pkts)} {
				got, err := NewMementoHHH(h, cfg, 21)
				if err != nil {
					t.Fatal(err)
				}
				for off := 0; off < len(pkts); off += bs {
					end := min(off+bs, len(pkts))
					got.UpdateBatch(pkts[off:end])
				}
				if gt := got.WindowTotal(last); gt != wantTotal {
					t.Fatalf("chunk %d: window total %d != per-packet %d", bs, gt, wantTotal)
				}
				if gs := got.Query(0.02, last); !gs.Equal(want) {
					t.Fatalf("chunk %d: query diverged:\nbatch: %v\nref:   %v", bs, gs, want)
				}
			}
		})
	}
}

// TestResetPreservesFrameClock is the Reset regression test for both
// sliding engines: Reset must keep the frame clock so a summary that is
// cleared and reused (the barrier accumulator, a quarantine replacement)
// keeps addressing the same global frames. Pre-epoch timestamps expose
// the old rewind-to-0 behaviour observably: with the clock rewound to
// frame 0, post-reset updates at negative timestamps would land
// "in the future" and never expire.
func TestResetPreservesFrameClock(t *testing.T) {
	cfg := Config{Window: time.Second, Frames: 4, Counters: 64}
	t0 := -100 * sec // pre-epoch stream
	check := func(t *testing.T, est func(key uint64, now int64) int64,
		update func(key uint64, w, now int64), reset func()) {
		update(1, 10, t0)
		reset()
		update(7, 50, t0+sec/4)
		if got := est(7, t0+sec/4); got != 50 {
			t.Fatalf("post-reset estimate = %d, want 50", got)
		}
		// Two windows later — still pre-epoch — the post-reset mass must
		// have expired. A rewound clock would have filed it under frame 0
		// (the epoch), where no pre-epoch advance could ever expire it.
		if got := est(7, t0+2*sec); got != 0 {
			t.Fatalf("post-reset mass never expired: %d", got)
		}
	}
	t.Run("wcss", func(t *testing.T) {
		s, err := NewSliding(cfg)
		if err != nil {
			t.Fatal(err)
		}
		check(t, s.Estimate, func(k uint64, w, now int64) { s.Update(k, w, now) }, s.Reset)
	})
	t.Run("memento", func(t *testing.T) {
		m, err := NewMemento(cfg)
		if err != nil {
			t.Fatal(err)
		}
		check(t, m.Estimate, func(k uint64, w, now int64) { m.Update(k, w, now) }, m.Reset)
	})
}

// TestNegativeTimestamps pins floored frame assignment for pre-epoch
// streams on both engines: coverage, expiry and merge behave exactly as
// they do for positive timestamps, and CoveredSince agrees with the
// frame the mass actually lands in.
func TestNegativeTimestamps(t *testing.T) {
	cfg := Config{Window: time.Second, Frames: 4, Counters: 64}
	type engine interface {
		Estimate(key uint64, now int64) int64
		WindowTotal(now int64) int64
	}
	run := func(t *testing.T, e engine, update func(key uint64, w, now int64)) {
		t0 := -10 * sec
		update(7, 100, t0)
		update(7, 50, t0+sec/2)
		if got := e.Estimate(7, t0+sec/2); got != 150 {
			t.Errorf("estimate = %d, want 150", got)
		}
		if got := e.WindowTotal(t0 + sec/2); got != 150 {
			t.Errorf("total = %d, want 150", got)
		}
		// W(1+1/k) past t0: the first update's frame has expired.
		if got := e.Estimate(7, t0+sec+sec/4+1); got != 50 {
			t.Errorf("estimate after partial expiry = %d, want 50", got)
		}
		if got := e.Estimate(7, t0+2*sec); got != 0 {
			t.Errorf("estimate after full expiry = %d, want 0", got)
		}
		// CoveredSince stays below the times whose mass is still counted.
		if cs := cfg.CoveredSince(t0 + sec/2); cs > t0 {
			t.Errorf("CoveredSince(%d) = %d, after first update %d", t0+sec/2, cs, t0)
		}
	}
	t.Run("wcss", func(t *testing.T) {
		s, err := NewSliding(cfg)
		if err != nil {
			t.Fatal(err)
		}
		run(t, s, func(k uint64, w, now int64) { s.Update(k, w, now) })
	})
	t.Run("memento", func(t *testing.T) {
		m, err := NewMemento(cfg)
		if err != nil {
			t.Fatal(err)
		}
		run(t, m, func(k uint64, w, now int64) { m.Update(k, w, now) })
	})
	t.Run("merge-across-epoch", func(t *testing.T) {
		// A pre-epoch summary merged into one that has crossed the epoch:
		// global frame indexing must line the negative frames up.
		a, err := NewSliding(cfg)
		if err != nil {
			t.Fatal(err)
		}
		b, err := NewSliding(cfg)
		if err != nil {
			t.Fatal(err)
		}
		a.Update(7, 100, -sec/4) // frame -1
		b.Update(9, 50, sec/8)   // frame 0
		b.Merge(a)
		if got := b.Estimate(7, sec/8); got != 100 {
			t.Errorf("pre-epoch mass lost in merge: %d, want 100", got)
		}
		if got := b.WindowTotal(sec / 8); got != 150 {
			t.Errorf("total = %d, want 150", got)
		}
	})
}

func BenchmarkMementoUpdate(b *testing.B) {
	m, err := NewMemento(Config{Window: time.Second, Frames: 8, Counters: 512})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m.Update(uint64(i)&1023, 1000, int64(i)*1000)
	}
}

func BenchmarkMementoHHHUpdate(b *testing.B) {
	h := addr.NewIPv4Hierarchy(addr.Byte)
	d, err := NewMementoHHH(h, Config{Window: time.Second, Frames: 8, Counters: 512}, 1)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		d.Update(addr.From4Uint32(uint32(i)*2654435761), 1000, int64(i)*1000)
	}
}
