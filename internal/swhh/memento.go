// Memento-class sliding-window engine: a single aged counter table per
// hierarchy level instead of WCSS's ring of per-frame Space-Saving
// instances.
//
// The WCSS Sliding summary pays k-frame mechanics on both sides of the
// stream: every Update touches one of k+1 Space-Saving instances, and
// every Query rescans all k+1 frames per candidate to sum the windowed
// estimate. Memento (Ben-Basat, Einziger, Friedman, Luizelli, Waisbard —
// see PAPERS.md) shows a sliding-window heavy-hitter structure can cost
// nearly the same as a plain one by keeping a single counter table whose
// entries age out amortized as the window slides. This file ports that
// idea onto the repository's time-framed window model and composes it
// with RHHH-style level sampling (one hierarchy level updated per packet)
// for the hierarchical wrapper, the H-Memento composition.
//
// Layout. Each Memento keeps its tracked keys in dense parallel arrays
// (keys/counts/errs) plus a flattened per-entry × per-frame matrix of
// frame cells, so an entry's windowed count is maintained incrementally:
// Update adds to one count and one cell; crossing a frame boundary
// subtracts the expiring cell from every entry and compacts out entries
// that reach zero. Update is O(1) amortized, and Query iterates the n ≤
// Counters live entries once — no per-frame rescan and no candidate
// dedup.
//
// Eviction. When the table is full, the classical Space-Saving rule
// (evict the global minimum, new key inherits its count as error) would
// need an ordering structure that aging invalidates wholesale at every
// frame boundary. Instead the victim is the minimum of a fixed-width
// probe window swept deterministically across the table (mementoProbe
// entries per eviction, rotating cursor). The probed minimum is an upper
// bound on the true minimum, so per-key estimates remain upper bounds
// with tracked error (errs), but the deterministic ε = 1/Counters bound
// of Space-Saving is weakened to an empirical envelope — the oracle
// differential matrix documents and enforces it (see
// TestOracleDifferentialSlidingMemento and cmd/hhheval's sliding-memento
// row). Determinism is deliberate: shard merges must be reproducible, and
// the K=1 sharded pipeline must stay byte-identical to a single engine.
//
// Merge. Frame cells are addressed by global frame index exactly like the
// WCSS ring, so two Mementos built from the same Config merge frame by
// frame: the receiver advances to the other's frame, then folds every
// overlapping frame's cells (and the exact per-frame totals) entry by
// entry, inserting or evicting on the receiver as capacity demands.
// Merging into an empty summary reproduces the source exactly.
package swhh

import (
	"hiddenhhh/internal/addr"
	"hiddenhhh/internal/hashx"
	"hiddenhhh/internal/hhh"
	"hiddenhhh/internal/sketch"
	"hiddenhhh/internal/trace"
)

// mementoProbe is the eviction probe width: a full Memento evicts the
// minimum-count entry among this many consecutive entries starting at a
// rotating cursor. Wider probes approach true-minimum eviction (smaller
// error) at more work per eviction; 16 keeps evictions cheap while the
// probed minimum stays close to the true minimum on skewed traffic.
const mementoProbe = 16

// Memento is a flat sliding-window heavy-hitter summary with a single
// aged counter table: the Memento-class alternative to the WCSS Sliding.
// It covers the same time-framed window geometry (between W and W(1+1/k)
// of history, identical CoveredSince), keeps exact per-frame stream
// totals, and merges frame by frame like Sliding. Not safe for concurrent
// use. Timestamps must be non-decreasing.
type Memento struct {
	cfg     Config
	frameNs int64
	ring    int64 // frame cells per entry: k full frames + 1 filling
	probe   int   // eviction probe width (mementoProbe clamped to capacity)

	n      int      // live entries, dense in [0, n)
	keys   []uint64 // entry key
	counts []int64  // windowed count = sum of the entry's live cells
	errs   []int64  // overestimation slop inherited through evictions
	cells  []int64  // per-frame counts, entry-major: entry e, slot s at e*ring+s
	totals []int64  // exact per-frame stream totals (every update, tracked or not)
	cursor int      // next eviction probe start

	curFrame int64 // global index of the frame currently filling

	idx     []int32 // open-addressed key index: entry+1, 0 = empty
	idxMask uint64
}

// NewMemento builds a flat Memento summary from cfg. The Config is shared
// with the WCSS engine: Window and Frames fix the same frame geometry,
// and Counters is the table capacity (where WCSS holds Counters entries
// per frame, Memento holds Counters entries total — the windowed count
// lives in one entry, not spread across frames).
func NewMemento(cfg Config) (*Memento, error) {
	cfg.setDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	frameNs := int64(cfg.Window) / int64(cfg.Frames)
	if frameNs < 1 {
		frameNs = 1 // sub-frame window: 1 ns frames, same floor as NewSliding
	}
	ring := int64(cfg.Frames + 1)
	probe := mementoProbe
	if probe > cfg.Counters {
		probe = cfg.Counters
	}
	// Index sized to a power of two at least 4× capacity: a ≤25% load
	// factor keeps linear probe chains short even right before eviction.
	idxSize := 1
	for idxSize < 4*cfg.Counters {
		idxSize <<= 1
	}
	return &Memento{
		cfg:      cfg,
		frameNs:  frameNs,
		ring:     ring,
		probe:    probe,
		keys:     make([]uint64, cfg.Counters),
		counts:   make([]int64, cfg.Counters),
		errs:     make([]int64, cfg.Counters),
		cells:    make([]int64, int64(cfg.Counters)*ring),
		totals:   make([]int64, ring),
		curFrame: frameUninit,
		idx:      make([]int32, idxSize),
		idxMask:  uint64(idxSize - 1),
	}, nil
}

// find returns the dense entry index of key, or -1.
func (m *Memento) find(key uint64) int {
	p := hashx.Mix64(key) & m.idxMask
	for {
		v := m.idx[p]
		if v == 0 {
			return -1
		}
		if e := int(v - 1); m.keys[e] == key {
			return e
		}
		p = (p + 1) & m.idxMask
	}
}

// idxInsert records entry e under key; the key must not be present.
func (m *Memento) idxInsert(key uint64, e int) {
	p := hashx.Mix64(key) & m.idxMask
	for m.idx[p] != 0 {
		p = (p + 1) & m.idxMask
	}
	m.idx[p] = int32(e + 1)
}

// idxDelete removes key from the index with backward-shift deletion, so
// linear probe chains stay unbroken without tombstones.
func (m *Memento) idxDelete(key uint64) {
	p := hashx.Mix64(key) & m.idxMask
	for {
		v := m.idx[p]
		if v == 0 {
			return
		}
		if m.keys[v-1] == key {
			break
		}
		p = (p + 1) & m.idxMask
	}
	hole := p
	q := (p + 1) & m.idxMask
	for {
		v := m.idx[q]
		if v == 0 {
			break
		}
		home := hashx.Mix64(m.keys[v-1]) & m.idxMask
		// The entry at q may fill the hole only if its home slot does not
		// lie cyclically strictly between the hole and q — otherwise it
		// would become unreachable from its own probe chain.
		if (q-home)&m.idxMask >= (q-hole)&m.idxMask {
			m.idx[hole] = v
			hole = q
		}
		q = (q + 1) & m.idxMask
	}
	m.idx[hole] = 0
}

// rebuildIndex rewrites the whole index from the dense arrays; used after
// compaction renumbers entries.
func (m *Memento) rebuildIndex() {
	clear(m.idx)
	for e := 0; e < m.n; e++ {
		m.idxInsert(m.keys[e], e)
	}
}

// advance ages the table so that the frame containing now is current.
func (m *Memento) advance(now int64) {
	m.advanceTo(floorDiv(now, m.frameNs))
}

// advanceTo ages the table up to global frame target. A jump of at least
// the ring length (or the very first advance) expires everything in one
// wholesale reset; otherwise each elapsed frame boundary subtracts the
// expiring frame's cells from every entry and compacts out entries whose
// windowed count reaches zero — the amortized aging that replaces WCSS's
// per-frame summary rotation.
func (m *Memento) advanceTo(target int64) {
	if target <= m.curFrame {
		return
	}
	// Sentinel check before the subtraction: target-frameUninit overflows.
	if m.curFrame == frameUninit || target-m.curFrame >= m.ring {
		m.n = 0
		m.cursor = 0
		clear(m.idx)
		for i := range m.totals {
			m.totals[i] = 0
		}
		m.curFrame = target
		return
	}
	for m.curFrame < target {
		m.curFrame++
		m.expireSlot(floorMod(m.curFrame, m.ring))
	}
}

// expireSlot subtracts frame cell slot from every entry, clamps the error
// slop to the remaining count, and drops entries that reach zero.
func (m *Memento) expireSlot(slot int64) {
	removed := false
	for e := 0; e < m.n; e++ {
		off := int64(e)*m.ring + slot
		if c := m.cells[off]; c != 0 {
			m.cells[off] = 0
			m.counts[e] -= c
			if m.counts[e] <= 0 {
				removed = true
			} else if m.errs[e] > m.counts[e] {
				m.errs[e] = m.counts[e]
			}
		}
	}
	if removed {
		m.compact()
	}
	m.totals[slot] = 0
}

// compact squeezes zero-count entries out of the dense arrays and rebuilds
// the index over the surviving entries.
func (m *Memento) compact() {
	w := 0
	for e := 0; e < m.n; e++ {
		if m.counts[e] <= 0 {
			continue
		}
		if w != e {
			m.keys[w] = m.keys[e]
			m.counts[w] = m.counts[e]
			m.errs[w] = m.errs[e]
			copy(m.cells[int64(w)*m.ring:(int64(w)+1)*m.ring],
				m.cells[int64(e)*m.ring:(int64(e)+1)*m.ring])
		}
		w++
	}
	m.n = w
	if m.cursor >= m.n {
		m.cursor = 0
	}
	m.rebuildIndex()
}

// alloc returns an entry for key, which must not be present: a fresh slot
// while there is room, otherwise the probed-minimum victim with its count
// inherited as the new key's error (the Space-Saving rule, with the
// victim's frame cells kept so the inherited mass retains its time
// attribution).
func (m *Memento) alloc(key uint64) int {
	if m.n < len(m.keys) {
		e := m.n
		m.n++
		m.keys[e] = key
		m.counts[e] = 0
		m.errs[e] = 0
		row := m.cells[int64(e)*m.ring : (int64(e)+1)*m.ring]
		for i := range row {
			row[i] = 0
		}
		m.idxInsert(key, e)
		return e
	}
	victim := m.probeMin()
	m.idxDelete(m.keys[victim])
	m.keys[victim] = key
	m.errs[victim] = m.counts[victim]
	m.idxInsert(key, victim)
	return victim
}

// probeMin picks the eviction victim: the minimum-count entry among probe
// consecutive entries starting at the rotating cursor (ties to the lowest
// index). Deterministic by construction — merges and the K=1 sharded
// identity depend on reproducible evictions.
func (m *Memento) probeMin() int {
	e := m.cursor
	if e >= m.n {
		e = 0
	}
	victim, min := e, m.counts[e]
	for i := 1; i < m.probe; i++ {
		e++
		if e >= m.n {
			e = 0
		}
		if m.counts[e] < min {
			victim, min = e, m.counts[e]
		}
	}
	m.cursor++
	if m.cursor >= m.n {
		m.cursor = 0
	}
	return victim
}

// bump adds weight w for key into frame cell slot; the caller has already
// advanced the table so slot is the current frame's.
func (m *Memento) bump(key uint64, w int64, slot int64) {
	e := m.find(key)
	if e < 0 {
		e = m.alloc(key)
	}
	m.counts[e] += w
	m.cells[int64(e)*m.ring+slot] += w
}

// Update records weight w for key at time now (ns).
func (m *Memento) Update(key uint64, w int64, now int64) {
	m.advance(now)
	slot := floorMod(m.curFrame, m.ring)
	m.totals[slot] += w
	m.bump(key, w, slot)
}

// Estimate returns the upper-bound estimate of key's weight over the
// covered window at time now — one table lookup, against the WCSS
// engine's k+1 per-frame lookups.
func (m *Memento) Estimate(key uint64, now int64) int64 {
	m.advance(now)
	if e := m.find(key); e >= 0 {
		return m.counts[e]
	}
	return 0
}

// Advance ages the table up to time now without recording anything. The
// sharded pipeline advances all shard summaries to the query timestamp
// before merging so their frame clocks align.
func (m *Memento) Advance(now int64) {
	m.advance(now)
}

// WindowTotal returns the exact total weight currently covered.
func (m *Memento) WindowTotal(now int64) int64 {
	m.advance(now)
	var sum int64
	for _, t := range m.totals {
		sum += t
	}
	return sum
}

// HeavyKeys returns the keys whose windowed estimate reaches the fraction
// phi of the covered total at time now. One pass over the live entries —
// no per-frame candidate collection or dedup.
func (m *Memento) HeavyKeys(phi float64, now int64) []sketch.KV {
	m.advance(now)
	var total int64
	for _, t := range m.totals {
		total += t
	}
	if total == 0 {
		return nil
	}
	threshold := hhh.Threshold(total, phi)
	var out []sketch.KV
	for e := 0; e < m.n; e++ {
		if m.counts[e] >= threshold {
			out = append(out, sketch.KV{Key: m.keys[e], Count: m.counts[e]})
		}
	}
	return out
}

// Merge folds summary o into m frame by frame; o is not modified. Both
// summaries must come from the same Config. m is first advanced to o's
// frame (expiring what a live summary would have expired); then every
// entry of o has its surviving frame cells added into m's table —
// inserting, or evicting by the deterministic probe rule, as capacity
// demands — and the exact per-frame totals are added for every frame both
// rings still cover. Merging into a never-updated summary reproduces o
// exactly.
func (m *Memento) Merge(o *Memento) {
	if o == nil {
		return
	}
	if m.frameNs != o.frameNs || m.ring != o.ring || len(m.keys) != len(o.keys) {
		panic("swhh: Memento.Merge config mismatch")
	}
	if o.curFrame == frameUninit {
		return // o never advanced: its table is empty
	}
	m.advanceTo(o.curFrame)
	// After advanceTo, m.curFrame >= o.curFrame: the receiver's ring start
	// bounds the overlap, and every frame in [lo, o.curFrame] is inside
	// o's ring as well.
	lo := m.curFrame - m.ring + 1
	for g := lo; g <= o.curFrame; g++ {
		slot := floorMod(g, m.ring)
		m.totals[slot] += o.totals[slot]
	}
	for e := 0; e < o.n; e++ {
		row := o.cells[int64(e)*o.ring : (int64(e)+1)*o.ring]
		var add int64
		for g := lo; g <= o.curFrame; g++ {
			add += row[floorMod(g, m.ring)]
		}
		if add <= 0 {
			continue // entry's mass is entirely in frames m already expired
		}
		t := m.find(o.keys[e])
		if t < 0 {
			t = m.alloc(o.keys[e])
		}
		m.counts[t] += add
		m.errs[t] += o.errs[e]
		for g := lo; g <= o.curFrame; g++ {
			slot := floorMod(g, m.ring)
			m.cells[int64(t)*m.ring+slot] += row[slot]
		}
	}
}

// Reset clears the table and totals but preserves the frame clock, for
// the same reason Sliding.Reset does: Merge addresses frames by global
// index, and the sharded barrier's accumulator is reset before every
// merge round.
func (m *Memento) Reset() {
	m.n = 0
	m.cursor = 0
	clear(m.idx)
	for i := range m.totals {
		m.totals[i] = 0
	}
}

// SizeBytes reports the summary footprint: the dense entry arrays, the
// frame-cell matrix, the totals ring, and the key index.
func (m *Memento) SizeBytes() int {
	return 8*(len(m.keys)+len(m.counts)+len(m.errs)+len(m.cells)+len(m.totals)) +
		4*len(m.idx)
}

// MementoHHH lifts the flat Memento to hierarchical heavy hitters with
// RHHH-style level sampling (the H-Memento composition): each packet
// draws one hierarchy level from a deterministic splitmix64 sequence and
// updates only that level's table, so ingest touches O(1) counters
// regardless of hierarchy depth. Query scales per-level counts by the
// level count, the unbiased estimator RHHH uses. Stream accounting stays
// exact: the wrapper keeps its own per-frame totals ring counting every
// matching packet, so WindowTotal and the covered span carry no sampling
// noise — only per-key estimates do. Not safe for concurrent use.
type MementoHHH struct {
	h      addr.Hierarchy
	levels []*Memento
	masks  []uint64 // per-level key masks, hoisted out of the hot path
	high   bool     // which address half keys come from, ditto
	nlev   uint64
	rng    uint64 // splitmix64 level-sampling state

	// Exact stream accounting, independent of level sampling: same frame
	// geometry as the per-level tables, every matching packet counted.
	frameNs  int64
	ring     int64
	totals   []int64
	curFrame int64

	qs *hhh.QueryScratch
	kb trace.KeyBatch // scratch for the UpdateBatch packing shim
}

// NewMementoHHH builds a level-sampled Memento HHH detector. The seed
// fixes the level-sampling sequence; the sharded pipeline derives a
// distinct seed per shard so shards sample independently, and a fixed
// seed makes runs bit-reproducible.
func NewMementoHHH(h addr.Hierarchy, cfg Config, seed uint64) (*MementoHHH, error) {
	cfg.setDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	d := &MementoHHH{
		h:      h,
		levels: make([]*Memento, h.Levels()),
		masks:  make([]uint64, h.Levels()),
		high:   h.KeyFromHigh(),
		nlev:   uint64(h.Levels()),
		rng:    hashx.Mix64(seed ^ 0x5851f42d4c957f2d),
	}
	for l := range d.levels {
		m, err := NewMemento(cfg)
		if err != nil {
			return nil, err
		}
		d.levels[l] = m
		d.masks[l] = h.KeyMask(l)
	}
	d.frameNs = d.levels[0].frameNs
	d.ring = d.levels[0].ring
	d.totals = make([]int64, d.ring)
	d.curFrame = frameUninit
	d.qs = hhh.NewQueryScratch()
	return d, nil
}

// advanceTotals ages the wrapper's exact totals ring to global frame
// target — the same clock discipline as Memento.advanceTo.
func (d *MementoHHH) advanceTotals(target int64) {
	if target <= d.curFrame {
		return
	}
	if d.curFrame == frameUninit || target-d.curFrame >= d.ring {
		for i := range d.totals {
			d.totals[i] = 0
		}
		d.curFrame = target
		return
	}
	for d.curFrame < target {
		d.curFrame++
		d.totals[floorMod(d.curFrame, d.ring)] = 0
	}
}

// Update feeds one packet's source and byte size at time now. Packets
// outside the hierarchy's address family are dropped (see
// addr.Hierarchy.Match). Exactly one hierarchy level is sampled per
// packet; the exact totals ring counts every matching packet.
func (d *MementoHHH) Update(src addr.Addr, bytes int64, now int64) {
	if !d.h.Match(src) {
		return
	}
	half := src.Lo()
	if d.high {
		half = src.Hi()
	}
	d.advanceTotals(floorDiv(now, d.frameNs))
	slot := floorMod(d.curFrame, d.ring)
	d.totals[slot] += bytes
	d.rng += 0x9e3779b97f4a7c15
	l := int((hashx.Mix64(d.rng) >> 32) * d.nlev >> 32)
	lv := d.levels[l]
	lv.advanceTo(d.curFrame)
	lv.bump(half&d.masks[l], bytes, slot)
}

// UpdateBatch feeds a run of time-ordered packets, skipping packets
// outside the hierarchy's address family. Like SlidingHHH.UpdateBatch it
// is a thin packing shim over UpdateKeys, so the final state matches
// per-packet Update calls (the level-sampling draws happen in the same
// stream order either way).
func (d *MementoHHH) UpdateBatch(pkts []trace.Packet) {
	d.kb.Reset()
	d.kb.AppendPackets(d.h, pkts)
	d.UpdateKeys(&d.kb)
}

// UpdateKeys feeds a columnar batch of pre-packed, time-ordered leaf
// keys. Packets are chunked by frame so each chunk ages every table once,
// then per-packet level draws route each key — masked down to the drawn
// level — into that level's current frame cell. The splitmix64 state
// advances once per packet in stream order, so batch and per-packet
// ingest produce identical state under the same seed.
func (d *MementoHHH) UpdateKeys(b *trace.KeyBatch) {
	n := b.Len()
	rng := d.rng
	for i := 0; i < n; {
		fi := floorDiv(b.Ts[i], d.frameNs)
		j := i + 1
		for j < n && floorDiv(b.Ts[j], d.frameNs) == fi {
			j++
		}
		d.advanceTotals(fi)
		slot := floorMod(d.curFrame, d.ring)
		for _, lv := range d.levels {
			lv.advanceTo(d.curFrame)
		}
		var bytes int64
		for c := i; c < j; c++ {
			w := int64(b.Sizes[c])
			bytes += w
			rng += 0x9e3779b97f4a7c15
			l := int((hashx.Mix64(rng) >> 32) * d.nlev >> 32)
			d.levels[l].bump(b.Keys[c]&d.masks[l], w, slot)
		}
		d.totals[slot] += bytes
		i = j
	}
	d.rng = rng
}

// Query returns the HHH set at fraction phi of the exact covered window
// total, scaling each level's sampled counts by the level count and
// running the shared bottom-up conditioned pass. Each level contributes
// its live entries directly — one table, no per-frame candidate rescan or
// dedup.
func (d *MementoHHH) Query(phi float64, now int64) hhh.Set {
	d.advanceTotals(floorDiv(now, d.frameNs))
	for _, lv := range d.levels {
		lv.advanceTo(d.curFrame)
	}
	var total int64
	for _, t := range d.totals {
		total += t
	}
	threshold := hhh.Threshold(total, phi)
	scale := int64(d.nlev)
	return hhh.ConditionedLevels(d.h, threshold, d.qs,
		func(l int, emit func(key uint64, est int64)) {
			lv := d.levels[l]
			for e := 0; e < lv.n; e++ {
				emit(lv.keys[e], lv.counts[e]*scale)
			}
		})
}

// Advance ages every level and the totals ring up to time now without
// recording anything. The sharded pipeline advances all shards to the
// query timestamp before merging so their frame clocks align.
func (d *MementoHHH) Advance(now int64) {
	d.advanceTotals(floorDiv(now, d.frameNs))
	for _, lv := range d.levels {
		lv.advanceTo(d.curFrame)
	}
}

// WindowTotal returns the exact total byte weight currently covered.
func (d *MementoHHH) WindowTotal(now int64) int64 {
	d.advanceTotals(floorDiv(now, d.frameNs))
	var sum int64
	for _, t := range d.totals {
		sum += t
	}
	return sum
}

// Merge folds detector o into d level by level (see Memento.Merge for the
// frame alignment) and adds o's exact totals for every frame both rings
// cover. o is not modified; both detectors must share hierarchy and
// Config. The receiver keeps its own level-sampling state — merged
// summaries are read, not updated, in the sharded barrier.
func (d *MementoHHH) Merge(o *MementoHHH) {
	if d.h != o.h || d.frameNs != o.frameNs || d.ring != o.ring {
		panic("swhh: MementoHHH.Merge config mismatch")
	}
	for l := range d.levels {
		d.levels[l].Merge(o.levels[l])
	}
	if o.curFrame == frameUninit {
		return
	}
	d.advanceTotals(o.curFrame)
	for g := d.curFrame - d.ring + 1; g <= o.curFrame; g++ {
		slot := floorMod(g, d.ring)
		d.totals[slot] += o.totals[slot]
	}
}

// Reset clears every level's table and the totals ring, preserving the
// frame clocks (see Memento.Reset) and the level-sampling state (the
// sequence keeps rolling, as RHHH's does, so consecutive windows stay
// decorrelated).
func (d *MementoHHH) Reset() {
	for _, lv := range d.levels {
		lv.Reset()
	}
	for i := range d.totals {
		d.totals[i] = 0
	}
}

// SizeBytes sums the per-level footprints and the exact totals ring.
func (d *MementoHHH) SizeBytes() int {
	n := 8 * len(d.totals)
	for _, lv := range d.levels {
		n += lv.SizeBytes()
	}
	return n
}
