package swhh

import (
	"math/rand"
	"testing"
	"time"

	"hiddenhhh/internal/addr"
	"hiddenhhh/internal/trace"
)

// dualStackStream synthesises a time-ordered mixed-family stream whose
// span crosses many frame boundaries, so the batch path's frame chunking
// and the family filter interact: wrong-family packets must neither
// update frames nor advance them.
func dualStackStream(seed int64, n int) []trace.Packet {
	rng := rand.New(rand.NewSource(seed))
	out := make([]trace.Packet, n)
	step := int64(12 * time.Second / time.Duration(n))
	for i := range out {
		var src addr.Addr
		if rng.Intn(4) == 0 {
			src = addr.FromParts(0x2001_0db8_0000_0000|uint64(rng.Intn(7))<<16, uint64(i))
		} else {
			src = addr.From4(10, byte(rng.Intn(4)), byte(rng.Intn(8)), byte(rng.Intn(40)))
		}
		out[i] = trace.Packet{Ts: int64(i) * step, Src: src, Size: uint32(40 + rng.Intn(1460))}
	}
	return out
}

// TestSlidingKeyBatchMatchesUpdate pins the columnar fast path of the
// sliding-window engine to per-packet Update calls: same frame rotation,
// same per-frame totals, same reported set — for both families' key
// packings and awkward batch boundaries (including batches that straddle
// frame edges).
func TestSlidingKeyBatchMatchesUpdate(t *testing.T) {
	pkts := dualStackStream(11, 24000)
	last := pkts[len(pkts)-1].Ts
	cfg := Config{Window: 4 * time.Second, Frames: 8, Counters: 64}
	for name, h := range map[string]addr.Hierarchy{
		"ipv4-byte":   addr.NewIPv4Hierarchy(addr.Byte),
		"ipv6-hextet": addr.NewIPv6Hierarchy(addr.Hextet),
	} {
		t.Run(name, func(t *testing.T) {
			ref, err := NewSlidingHHH(h, cfg)
			if err != nil {
				t.Fatal(err)
			}
			for i := range pkts {
				ref.Update(pkts[i].Src, int64(pkts[i].Size), pkts[i].Ts)
			}
			want := ref.Query(0.02, last)
			wantTotal := ref.WindowTotal(last)
			for _, bs := range []int{1, 7, 97, len(pkts)} {
				got, err := NewSlidingHHH(h, cfg)
				if err != nil {
					t.Fatal(err)
				}
				for off := 0; off < len(pkts); off += bs {
					end := min(off+bs, len(pkts))
					got.UpdateBatch(pkts[off:end])
				}
				if gt := got.WindowTotal(last); gt != wantTotal {
					t.Fatalf("chunk %d: window total %d != per-packet %d", bs, gt, wantTotal)
				}
				if gs := got.Query(0.02, last); !gs.Equal(want) {
					t.Fatalf("chunk %d: query diverged:\nbatch: %v\nref:   %v", bs, gs, want)
				}
			}
		})
	}
}
