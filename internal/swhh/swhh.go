// Package swhh implements sliding-window heavy-hitter detection after
// Ben-Basat, Einziger, Friedman and Kassner, "Heavy Hitters in Streams and
// Sliding Windows" (INFOCOM 2016) — the paper's reference [1] and the work
// it cites as recognising the need to move beyond disjoint windows.
//
// The detector follows the frame structure of WCSS (Window Compact Space
// Saving): the window is split into k frames, each summarised by a
// Space-Saving instance; the newest frame absorbs updates and the oldest
// expires wholesale, so the summaries always cover between W and W(1+1/k)
// of history. Where the original defines frames over a count-based window
// of N items, this implementation defines them over time — the window
// model the poster's experiments use — keeping the identical summary
// mechanics; this doc comment is the authoritative note on the
// deviation.
//
// A per-level wrapper (SlidingHHH) lifts the flat detector to hierarchical
// heavy hitters, giving a streaming counterpart to the exact sliding-window
// analysis.
//
// # Merge semantics
//
// Sliding summaries are mergeable: the per-frame Space-Saving summaries
// are mergeable (Agarwal et al., "Mergeable Summaries"), and the frame
// ring is addressed by *global* frame index, so two summaries built from
// the same Config can be combined frame by frame. Merge first advances
// the receiver to the other summary's frame (expiring what a live summary
// would have expired), then folds each overlapping frame's summary and
// total. The merged per-frame error bound is the sum of the inputs'
// bounds; for hash-partitioned substreams of one stream (the sharded
// pipeline) the per-shard terms telescope back to the single-summary
// bound per frame. Summaries being merged should be advanced to a common
// timestamp first — the sharded pipeline aligns every shard at the query
// barrier — so that no side's recent frames fall outside the other's
// ring.
package swhh

import (
	"fmt"
	"math"
	"time"

	"hiddenhhh/internal/addr"
	"hiddenhhh/internal/hhh"
	"hiddenhhh/internal/sketch"
	"hiddenhhh/internal/trace"
)

// frameUninit marks a frame clock that has never advanced. A fresh summary
// has no frame position yet — its first advance jumps the clock straight
// to the target frame (the ring is empty, so there is nothing to expire).
// Using a sentinel instead of 0 makes pre-epoch (negative) timestamps
// work: with curFrame starting at 0, a first packet in a negative frame
// would appear to be in the past and land in frame 0.
const frameUninit = math.MinInt64

// floorDiv is the floored quotient a/b for b > 0. Frame indices must use
// floored division so that pre-epoch (negative) timestamps map to
// monotonically increasing frames and agree with CoveredSince's geometry;
// Go's native division truncates toward zero, which would fold the two
// nanosecond ranges (-frameNs, 0) and [0, frameNs) into one frame.
func floorDiv(a, b int64) int64 {
	q := a / b
	if a%b != 0 && (a < 0) != (b < 0) {
		q--
	}
	return q
}

// floorMod is the non-negative ring slot of global frame g in a ring of
// b slots (b > 0). Go's % takes the dividend's sign, so negative global
// frame indices need the wrap-around.
func floorMod(a, b int64) int64 {
	r := a % b
	if r < 0 {
		r += b
	}
	return r
}

// Config configures a sliding heavy-hitter summary.
type Config struct {
	// Window is the time span queries should cover.
	Window time.Duration
	// Frames is k, the number of sub-window summaries. More frames mean
	// finer expiry granularity (coverage overshoot W/k) at k× the space.
	// Default 8.
	Frames int
	// Counters is the Space-Saving capacity per frame. Default 256.
	Counters int
}

func (c *Config) setDefaults() {
	if c.Frames <= 0 {
		c.Frames = 8
	}
	if c.Counters <= 0 {
		c.Counters = 256
	}
}

func (c *Config) validate() error {
	if c.Window <= 0 {
		return fmt.Errorf("swhh: window %v must be positive", c.Window)
	}
	return nil
}

// CoveredSince returns the inclusive start of the span a summary built
// from c covers at query time now: the ring holds the Frames most recent
// full frames plus the one filling, so coverage reaches back to the start
// of frame floor(now/frameNs)-Frames. The result can precede the first
// observed packet (coverage is a property of the ring geometry, not of
// the traffic).
func (c Config) CoveredSince(now int64) int64 {
	c.setDefaults()
	frameNs := int64(c.Window) / int64(c.Frames)
	if frameNs < 1 {
		frameNs = 1
	}
	return (floorDiv(now, frameNs) - int64(c.Frames)) * frameNs
}

// Sliding is a time-framed WCSS-style sliding-window heavy-hitter summary.
// Not safe for concurrent use. Timestamps must be non-decreasing.
type Sliding struct {
	cfg      Config
	frameNs  int64
	frames   []*sketch.SpaceSaving // ring: k full frames + 1 filling
	totals   []int64
	curFrame int64               // global index of the frame currently filling
	seen     map[uint64]struct{} // HeavyKeys candidate-dedup scratch, reused across queries
}

// NewSliding builds a summary from cfg.
func NewSliding(cfg Config) (*Sliding, error) {
	cfg.setDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	frameNs := int64(cfg.Window) / int64(cfg.Frames)
	if frameNs < 1 {
		// Window < Frames nanoseconds: floor the frame length at 1 ns
		// rather than dividing by zero in advance. Every frame then covers
		// a single nanosecond, the finest granularity timestamps carry.
		frameNs = 1
	}
	s := &Sliding{
		cfg:      cfg,
		frameNs:  frameNs,
		frames:   make([]*sketch.SpaceSaving, cfg.Frames+1),
		totals:   make([]int64, cfg.Frames+1),
		curFrame: frameUninit,
	}
	for i := range s.frames {
		s.frames[i] = sketch.NewSpaceSaving(cfg.Counters)
	}
	return s, nil
}

// advance rotates frames so that the frame containing now is current.
func (s *Sliding) advance(now int64) {
	s.advanceTo(floorDiv(now, s.frameNs))
}

// advanceTo rotates frames up to the global frame index target. A jump of
// at least the ring length expires every frame, so it is taken in one
// wholesale reset instead of one iteration per elapsed frame — the
// per-frame loop would spin ~10^10 iterations on the first packet of an
// epoch-nanosecond trace (curFrame starts at 0), or once per elapsed
// frame across any idle gap.
func (s *Sliding) advanceTo(target int64) {
	if target <= s.curFrame {
		return
	}
	// The sentinel check must come before the subtraction: target minus
	// math.MinInt64 overflows for any non-negative target.
	if s.curFrame == frameUninit || target-s.curFrame >= int64(len(s.frames)) {
		for i := range s.frames {
			s.frames[i].Reset()
			s.totals[i] = 0
		}
		s.curFrame = target
		return
	}
	for s.curFrame < target {
		s.curFrame++
		slot := int(floorMod(s.curFrame, int64(len(s.frames))))
		s.frames[slot].Reset() // expire the oldest frame wholesale
		s.totals[slot] = 0
	}
}

// Update records weight w for key at time now (ns).
func (s *Sliding) Update(key uint64, w int64, now int64) {
	s.advance(now)
	slot := int(floorMod(s.curFrame, int64(len(s.frames))))
	s.frames[slot].Update(key, w)
	s.totals[slot] += w
}

// estimate sums the per-frame estimates for key without advancing; the
// caller must have advanced to the query time already.
func (s *Sliding) estimate(key uint64) int64 {
	var sum int64
	for _, f := range s.frames {
		sum += f.Estimate(key)
	}
	return sum
}

// Estimate returns the upper-bound estimate of key's weight over the
// covered window at time now.
func (s *Sliding) Estimate(key uint64, now int64) int64 {
	s.advance(now)
	return s.estimate(key)
}

// Advance expires frames up to time now without recording anything: the
// explicit form of the rotation every Update/Estimate performs. The
// sharded pipeline advances all shard summaries to the query timestamp
// before merging so their frame rings align.
func (s *Sliding) Advance(now int64) {
	s.advance(now)
}

// Merge folds summary o into s frame by frame; o is not modified. Both
// summaries must come from the same Config (frame length and ring size).
// s is first advanced to o's current frame, expiring whatever a live
// summary would have expired; then every global frame index covered by
// both rings has o's Space-Saving summary merged into s's (bounded-error
// mergeable-summaries combination, see sketch.SpaceSaving.Merge) and its
// total added. Frames only o's ring still covers but s's no longer does
// are already expired from s's perspective and are dropped, exactly as
// live updates would have dropped them.
func (s *Sliding) Merge(o *Sliding) {
	if o == nil {
		return
	}
	if s.frameNs != o.frameNs || len(s.frames) != len(o.frames) {
		panic("swhh: Sliding.Merge config mismatch")
	}
	if o.curFrame == frameUninit {
		return // o never advanced: its ring is empty
	}
	s.advanceTo(o.curFrame)
	// After advanceTo, s.curFrame >= o.curFrame, so the receiver's ring
	// start bounds the overlap. Frames below it were never written by o
	// (o's ring reaches at most k-1 frames back from o.curFrame), so the
	// loop only ever folds slots both rings cover.
	k := int64(len(s.frames))
	for g := s.curFrame - k + 1; g <= o.curFrame; g++ {
		slot := int(floorMod(g, k))
		s.frames[slot].Merge(o.frames[slot])
		s.totals[slot] += o.totals[slot]
	}
}

// WindowTotal returns the total weight currently covered.
func (s *Sliding) WindowTotal(now int64) int64 {
	s.advance(now)
	var sum int64
	for _, t := range s.totals {
		sum += t
	}
	return sum
}

// HeavyKeys returns the keys whose windowed estimate reaches the fraction
// phi of the covered total at time now.
func (s *Sliding) HeavyKeys(phi float64, now int64) []sketch.KV {
	// One advance covers the whole query: summing totals directly instead
	// of calling WindowTotal avoids rotating the ring a second time.
	s.advance(now)
	var total int64
	for _, t := range s.totals {
		total += t
	}
	if total == 0 {
		return nil
	}
	threshold := hhh.Threshold(total, phi)
	// Candidates: keys tracked in any frame; estimates summed over all.
	// The dedup set is query scratch, reused across calls.
	if s.seen == nil {
		s.seen = make(map[uint64]struct{}, 64)
	}
	clear(s.seen)
	var out []sketch.KV
	for _, f := range s.frames {
		for _, kv := range f.Tracked() {
			if _, dup := s.seen[kv.Key]; dup {
				continue
			}
			s.seen[kv.Key] = struct{}{}
			est := s.estimate(kv.Key)
			if est >= threshold {
				out = append(out, sketch.KV{Key: kv.Key, Count: est})
			}
		}
	}
	return out
}

// SizeBytes reports the summary footprint: the exact per-frame sizes.
func (s *Sliding) SizeBytes() int {
	n := 0
	for _, f := range s.frames {
		n += f.SizeBytes()
	}
	return n
}

// Reset clears all frames and totals but preserves the frame clock.
// Merge addresses frames by global index, so a reset summary that is
// merged with a live peer (the sharded barrier's accumulator does exactly
// this every snapshot) must keep addressing the same global frames;
// rewinding to frame 0 would only work by accident of the wholesale-reset
// jump in advanceTo. A never-advanced summary stays unadvanced.
func (s *Sliding) Reset() {
	for i := range s.frames {
		s.frames[i].Reset()
		s.totals[i] = 0
	}
}

// SlidingHHH runs one Sliding summary per hierarchy level, yielding
// streaming sliding-window hierarchical heavy hitters with the usual
// conditioned-query semantics.
type SlidingHHH struct {
	h      addr.Hierarchy
	levels []*Sliding
	masks  []uint64 // per-level key masks, hoisted out of the hot path
	high   bool     // which address half keys come from, ditto
	// Reusable query scratch: per-level candidate dedup plus the shared
	// conditioned pass's discount tables, cleared in place per query.
	seen map[uint64]struct{}
	qs   *hhh.QueryScratch
	kb   trace.KeyBatch // scratch for the UpdateBatch packing shim
}

// NewSlidingHHH builds a per-level sliding HHH detector.
func NewSlidingHHH(h addr.Hierarchy, cfg Config) (*SlidingHHH, error) {
	d := &SlidingHHH{
		h:      h,
		levels: make([]*Sliding, h.Levels()),
		masks:  make([]uint64, h.Levels()),
		high:   h.KeyFromHigh(),
		seen:   make(map[uint64]struct{}, 64),
		qs:     hhh.NewQueryScratch(),
	}
	for l := range d.levels {
		s, err := NewSliding(cfg)
		if err != nil {
			return nil, err
		}
		d.levels[l] = s
		d.masks[l] = h.KeyMask(l)
	}
	return d, nil
}

// Update feeds one packet's source and byte size at time now. Packets
// outside the hierarchy's address family are dropped (see
// addr.Hierarchy.Match), so the detector can sit on a dual-stack stream.
func (d *SlidingHHH) Update(src addr.Addr, bytes int64, now int64) {
	if !d.h.Match(src) {
		return
	}
	half := src.Lo()
	if d.high {
		half = src.Hi()
	}
	for l, m := range d.masks {
		d.levels[l].Update(half&m, bytes, now)
	}
}

// UpdateBatch feeds a run of time-ordered packets, skipping packets
// outside the hierarchy's address family. It is a thin packing shim:
// matching packets are packed once into a reusable scratch KeyBatch and
// handed to UpdateKeys, so the final state matches per-packet Update
// calls (the family filter runs before any frame advances, exactly as
// Update orders it).
func (d *SlidingHHH) UpdateBatch(pkts []trace.Packet) {
	d.kb.Reset()
	d.kb.AppendPackets(d.h, pkts)
	d.UpdateKeys(&d.kb)
}

// UpdateKeys feeds a columnar batch of pre-packed, time-ordered leaf
// keys. Packets are chunked by frame (on the Ts column) so each chunk
// advances the frame ring once per level and then applies its updates
// level-major into the current frame, with per-level keys derived by
// masking the leaf key — the same final state as per-packet Update
// calls, at a fraction of the call overhead.
func (d *SlidingHHH) UpdateKeys(b *trace.KeyBatch) {
	frameNs := d.levels[0].frameNs
	n := b.Len()
	for i := 0; i < n; {
		fi := floorDiv(b.Ts[i], frameNs)
		j := i + 1
		for j < n && floorDiv(b.Ts[j], frameNs) == fi {
			j++
		}
		var bytes int64
		for c := i; c < j; c++ {
			bytes += int64(b.Sizes[c])
		}
		for l, lv := range d.levels {
			lv.advance(b.Ts[i])
			slot := int(floorMod(lv.curFrame, int64(len(lv.frames))))
			f := lv.frames[slot]
			m := d.masks[l]
			for c := i; c < j; c++ {
				f.Update(b.Keys[c]&m, int64(b.Sizes[c]))
			}
			lv.totals[slot] += bytes
		}
		i = j
	}
}

// Query returns the HHH set at fraction phi of the covered window total,
// using the shared bottom-up conditioned pass over the per-level heavy
// keys. The candidate and discount tables are reused across queries, so
// the pass allocates only the returned Set.
func (d *SlidingHHH) Query(phi float64, now int64) hhh.Set {
	for _, lv := range d.levels {
		lv.advance(now)
	}
	total := d.levels[0].WindowTotal(now)
	threshold := hhh.Threshold(total, phi)
	return hhh.ConditionedLevels(d.h, threshold, d.qs,
		func(l int, emit func(key uint64, est int64)) {
			lv := d.levels[l]
			clear(d.seen)
			// Candidates: every key any frame tracks at this level, each
			// estimated once across all frames.
			for _, f := range lv.frames {
				f.ForEachTracked(func(key uint64, _, _ int64) {
					if _, dup := d.seen[key]; dup {
						return
					}
					d.seen[key] = struct{}{}
					emit(key, lv.estimate(key))
				})
			}
		})
}

// Advance expires frames up to time now on every level. The sharded
// pipeline advances all shards to the query timestamp before merging.
func (d *SlidingHHH) Advance(now int64) {
	for _, lv := range d.levels {
		lv.advance(now)
	}
}

// WindowTotal returns the total byte weight currently covered (level 0
// sees every packet once, so any level's total is the stream's).
func (d *SlidingHHH) WindowTotal(now int64) int64 {
	return d.levels[0].WindowTotal(now)
}

// Merge folds detector o into d level by level (see Sliding.Merge for the
// frame alignment and bound arithmetic). o is not modified; both
// detectors must share hierarchy and Config.
func (d *SlidingHHH) Merge(o *SlidingHHH) {
	if d.h != o.h || len(d.levels) != len(o.levels) {
		panic("swhh: SlidingHHH.Merge hierarchy mismatch")
	}
	for l := range d.levels {
		d.levels[l].Merge(o.levels[l])
	}
}

// Reset clears every level's frames.
func (d *SlidingHHH) Reset() {
	for _, lv := range d.levels {
		lv.Reset()
	}
}

// SizeBytes sums the per-level footprints.
func (d *SlidingHHH) SizeBytes() int {
	n := 0
	for _, s := range d.levels {
		n += s.SizeBytes()
	}
	return n
}
