// Package swhh implements sliding-window heavy-hitter detection after
// Ben-Basat, Einziger, Friedman and Kassner, "Heavy Hitters in Streams and
// Sliding Windows" (INFOCOM 2016) — the paper's reference [1] and the work
// it cites as recognising the need to move beyond disjoint windows.
//
// The detector follows the frame structure of WCSS (Window Compact Space
// Saving): the window is split into k frames, each summarised by a
// Space-Saving instance; the newest frame absorbs updates and the oldest
// expires wholesale, so the summaries always cover between W and W(1+1/k)
// of history. Where the original defines frames over a count-based window
// of N items, this implementation defines them over time — the window
// model the poster's experiments use — keeping the identical summary
// mechanics; the deviation is documented here and in DESIGN.md.
//
// A per-level wrapper (SlidingHHH) lifts the flat detector to hierarchical
// heavy hitters, giving a streaming counterpart to the exact sliding-window
// analysis.
package swhh

import (
	"fmt"
	"time"

	"hiddenhhh/internal/hhh"
	"hiddenhhh/internal/ipv4"
	"hiddenhhh/internal/sketch"
)

// Config configures a sliding heavy-hitter summary.
type Config struct {
	// Window is the time span queries should cover.
	Window time.Duration
	// Frames is k, the number of sub-window summaries. More frames mean
	// finer expiry granularity (coverage overshoot W/k) at k× the space.
	// Default 8.
	Frames int
	// Counters is the Space-Saving capacity per frame. Default 256.
	Counters int
}

func (c *Config) setDefaults() {
	if c.Frames <= 0 {
		c.Frames = 8
	}
	if c.Counters <= 0 {
		c.Counters = 256
	}
}

func (c *Config) validate() error {
	if c.Window <= 0 {
		return fmt.Errorf("swhh: window %v must be positive", c.Window)
	}
	return nil
}

// Sliding is a time-framed WCSS-style sliding-window heavy-hitter summary.
// Not safe for concurrent use. Timestamps must be non-decreasing.
type Sliding struct {
	cfg      Config
	frameNs  int64
	frames   []*sketch.SpaceSaving // ring: k full frames + 1 filling
	totals   []int64
	curFrame int64 // global index of the frame currently filling
}

// NewSliding builds a summary from cfg.
func NewSliding(cfg Config) (*Sliding, error) {
	cfg.setDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	s := &Sliding{
		cfg:     cfg,
		frameNs: int64(cfg.Window) / int64(cfg.Frames),
		frames:  make([]*sketch.SpaceSaving, cfg.Frames+1),
		totals:  make([]int64, cfg.Frames+1),
	}
	for i := range s.frames {
		s.frames[i] = sketch.NewSpaceSaving(cfg.Counters)
	}
	return s, nil
}

// advance rotates frames so that the frame containing now is current.
func (s *Sliding) advance(now int64) {
	target := now / s.frameNs
	for s.curFrame < target {
		s.curFrame++
		slot := int(s.curFrame % int64(len(s.frames)))
		s.frames[slot].Reset() // expire the oldest frame wholesale
		s.totals[slot] = 0
	}
}

// Update records weight w for key at time now (ns).
func (s *Sliding) Update(key uint64, w int64, now int64) {
	s.advance(now)
	slot := int(s.curFrame % int64(len(s.frames)))
	s.frames[slot].Update(key, w)
	s.totals[slot] += w
}

// Estimate returns the upper-bound estimate of key's weight over the
// covered window at time now.
func (s *Sliding) Estimate(key uint64, now int64) int64 {
	s.advance(now)
	var sum int64
	for _, f := range s.frames {
		sum += f.Estimate(key)
	}
	return sum
}

// WindowTotal returns the total weight currently covered.
func (s *Sliding) WindowTotal(now int64) int64 {
	s.advance(now)
	var sum int64
	for _, t := range s.totals {
		sum += t
	}
	return sum
}

// HeavyKeys returns the keys whose windowed estimate reaches the fraction
// phi of the covered total at time now.
func (s *Sliding) HeavyKeys(phi float64, now int64) []sketch.KV {
	s.advance(now)
	total := s.WindowTotal(now)
	if total == 0 {
		return nil
	}
	threshold := int64(phi * float64(total))
	if threshold < 1 {
		threshold = 1
	}
	// Candidates: keys tracked in any frame; estimates summed over all.
	seen := map[uint64]bool{}
	var out []sketch.KV
	for _, f := range s.frames {
		for _, kv := range f.Tracked() {
			if seen[kv.Key] {
				continue
			}
			seen[kv.Key] = true
			est := s.Estimate(kv.Key, now)
			if est >= threshold {
				out = append(out, sketch.KV{Key: kv.Key, Count: est})
			}
		}
	}
	return out
}

// SizeBytes estimates the summary footprint (48 B per Space-Saving entry).
func (s *Sliding) SizeBytes() int {
	return len(s.frames) * s.cfg.Counters * 48
}

// Reset clears all frames.
func (s *Sliding) Reset() {
	for i := range s.frames {
		s.frames[i].Reset()
		s.totals[i] = 0
	}
	s.curFrame = 0
}

// SlidingHHH runs one Sliding summary per hierarchy level, yielding
// streaming sliding-window hierarchical heavy hitters with the usual
// conditioned-query semantics.
type SlidingHHH struct {
	h      ipv4.Hierarchy
	levels []*Sliding
	anc    []ipv4.Prefix
}

// NewSlidingHHH builds a per-level sliding HHH detector.
func NewSlidingHHH(h ipv4.Hierarchy, cfg Config) (*SlidingHHH, error) {
	d := &SlidingHHH{h: h, levels: make([]*Sliding, h.Levels())}
	for l := range d.levels {
		s, err := NewSliding(cfg)
		if err != nil {
			return nil, err
		}
		d.levels[l] = s
	}
	d.anc = make([]ipv4.Prefix, 0, h.Levels())
	return d, nil
}

// Update feeds one packet's source and byte size at time now.
func (d *SlidingHHH) Update(src ipv4.Addr, bytes int64, now int64) {
	d.anc = d.h.Ancestors(src, d.anc[:0])
	for l, pre := range d.anc {
		d.levels[l].Update(uint64(pre.Addr), bytes, now)
	}
}

// Query returns the HHH set at fraction phi of the covered window total,
// using bottom-up conditioning over the per-level heavy keys.
func (d *SlidingHHH) Query(phi float64, now int64) hhh.Set {
	total := d.levels[0].WindowTotal(now)
	threshold := int64(phi * float64(total))
	if threshold < 1 {
		threshold = 1
	}
	out := hhh.Set{}
	discount := map[ipv4.Addr]int64{}
	for l := 0; l < d.h.Levels(); l++ {
		last := l+1 >= d.h.Levels()
		var parentBits uint8
		if !last {
			parentBits = d.h.Bits(l + 1)
		}
		next := map[ipv4.Addr]int64{}
		// Candidates: every key any frame tracks at this level.
		seen := map[uint64]bool{}
		for _, f := range d.levels[l].frames {
			for _, kv := range f.Tracked() {
				if seen[kv.Key] {
					continue
				}
				seen[kv.Key] = true
				addr := ipv4.Addr(kv.Key)
				est := d.levels[l].Estimate(kv.Key, now)
				dsc := discount[addr]
				delete(discount, addr)
				cond := est - dsc
				claimed := dsc
				if cond >= threshold {
					out.Add(hhh.Item{
						Prefix:      ipv4.Prefix{Addr: addr, Bits: d.h.Bits(l)},
						Count:       est,
						Conditioned: cond,
					})
					claimed = est
				}
				if !last && claimed > 0 {
					next[ipv4.Addr(uint32(addr)&ipv4.Mask(parentBits))] += claimed
				}
			}
		}
		if !last {
			for addr, dsc := range discount {
				if dsc > 0 {
					next[ipv4.Addr(uint32(addr)&ipv4.Mask(parentBits))] += dsc
				}
			}
		}
		discount = next
	}
	return out
}

// SizeBytes sums the per-level footprints.
func (d *SlidingHHH) SizeBytes() int {
	n := 0
	for _, s := range d.levels {
		n += s.SizeBytes()
	}
	return n
}
