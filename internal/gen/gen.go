package gen

import (
	"container/heap"
	"io"
	"math"
	"math/rand"

	"hiddenhhh/internal/addr"
	"hiddenhhh/internal/trace"
)

// Generator streams one synthetic trace in timestamp order. It implements
// trace.Source; construct a fresh Generator (same Config) to replay the
// identical trace.
type Generator struct {
	cfg   Config
	rng   *rand.Rand
	space *addrSpace
	flows eventHeap
	durNs int64
	done  bool

	emitted int64
}

// New validates cfg and builds a generator positioned at the start of the
// trace.
func New(cfg Config) (*Generator, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	g := &Generator{
		cfg:   cfg,
		rng:   rand.New(rand.NewSource(cfg.Seed)),
		durNs: int64(cfg.Duration),
	}
	g.space = newAddrSpace(&cfg, g.rng)
	g.seedFlows()
	g.seedPulses()
	heap.Init(&g.flows)
	return g, nil
}

// Packets generates the whole trace into memory. Prefer the streaming
// interface for long traces.
func Packets(cfg Config) ([]trace.Packet, error) {
	g, err := New(cfg)
	if err != nil {
		return nil, err
	}
	hint := int(cfg.MeanPacketRate * cfg.Duration.Seconds())
	return trace.Collect(g, hint)
}

// flow is one scheduled traffic source (long-lived or pulse).
type flow struct {
	next       int64 // next event time (ns); heap key
	src        addr.Addr
	baseRate   float64 // long-run average pps (rank share of the aggregate)
	onRate     float64 // pps while on (baseRate corrected for duty cycle)
	onMean     float64 // mean on-period (ns); 0 means always on
	offMean    float64 // mean off-period (ns)
	on         bool
	stateUntil int64 // next on/off toggle (long-lived only)
	death      int64 // respawn (long-lived) or end (pulse) time
	pulse      bool
}

type eventHeap []*flow

func (h eventHeap) Len() int           { return len(h) }
func (h eventHeap) Less(i, j int) bool { return h[i].next < h[j].next }
func (h eventHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)        { *h = append(*h, x.(*flow)) }
func (h *eventHeap) Pop() any          { old := *h; n := len(old); f := old[n-1]; *h = old[:n-1]; return f }

// expNs draws an exponential duration with the given mean (ns).
func (g *Generator) expNs(mean float64) int64 {
	d := int64(g.rng.ExpFloat64() * mean)
	if d < 1 {
		d = 1
	}
	return d
}

// rateOfRank gives the long-run average packet rate for popularity rank r
// (0-based): Zipf weights normalised to the configured aggregate rate.
func (g *Generator) rateOfRank(r int) float64 {
	skew := g.cfg.RateSkew
	var norm float64
	for i := 1; i <= g.cfg.Flows; i++ {
		norm += 1 / math.Pow(float64(i), skew)
	}
	w := 1 / math.Pow(float64(r+1), skew) / norm
	return g.cfg.MeanPacketRate * w
}

func (g *Generator) seedFlows() {
	g.flows = make(eventHeap, 0, g.cfg.Flows+16)
	for i := 0; i < g.cfg.Flows; i++ {
		f := &flow{
			src:      g.space.sampleSource(g.rng),
			baseRate: g.rateOfRank(i),
		}
		g.assignClass(f)
		g.resetLifecycle(f, 0)
		// Random initial phase so the population does not start in sync.
		f.next = g.expNs(1e9 / f.onRate)
		heap.Push(&g.flows, f)
	}
}

// assignClass draws the flow's burst class: a MicroburstFraction share of
// sources burst at sub-second scale, the rest at the BurstOn/BurstOff
// scale. The on-rate is amplified by the inverse duty cycle so every
// flow's long-run average stays at its rank share of the aggregate.
func (g *Generator) assignClass(f *flow) {
	switch {
	case g.cfg.MicroburstFraction > 0 && g.rng.Float64() < g.cfg.MicroburstFraction:
		f.onMean = float64(g.cfg.MicroOn)
		f.offMean = float64(g.cfg.MicroOff)
	case g.cfg.BurstOn > 0:
		f.onMean = float64(g.cfg.BurstOn)
		f.offMean = float64(g.cfg.BurstOff)
	default:
		f.onMean, f.offMean = 0, 0
	}
	if f.onMean > 0 {
		duty := f.onMean / (f.onMean + f.offMean)
		f.onRate = f.baseRate / duty
	} else {
		f.onRate = f.baseRate
	}
}

// resetLifecycle (re)draws a flow's on/off phase and death time from t.
func (g *Generator) resetLifecycle(f *flow, t int64) {
	if f.onMean > 0 {
		// Start in a random state biased by the duty cycle.
		duty := f.onMean / (f.onMean + f.offMean)
		f.on = g.rng.Float64() < duty
		if f.on {
			f.stateUntil = t + g.expNs(f.onMean)
		} else {
			f.stateUntil = t + g.expNs(f.offMean)
		}
	} else {
		f.on = true
		f.stateUntil = math.MaxInt64
	}
	if g.cfg.MeanFlowLifetime > 0 {
		f.death = t + g.expNs(float64(g.cfg.MeanFlowLifetime))
	} else {
		f.death = math.MaxInt64
	}
}

// seedPulses schedules Poisson pulse arrivals across the trace.
func (g *Generator) seedPulses() {
	if g.cfg.PulsesPerMinute <= 0 {
		return
	}
	meanGapNs := 60e9 / g.cfg.PulsesPerMinute
	for t := g.expNs(meanGapNs); t < g.durNs; t += g.expNs(meanGapNs) {
		durRange := float64(g.cfg.PulseDurationMax - g.cfg.PulseDurationMin)
		dur := int64(g.cfg.PulseDurationMin) + int64(g.rng.Float64()*durRange)
		share := g.cfg.PulseShareMin +
			g.rng.Float64()*(g.cfg.PulseShareMax-g.cfg.PulseShareMin)
		f := &flow{
			next:       t,
			src:        g.space.samplePulseSource(g.rng),
			onRate:     share * g.cfg.MeanPacketRate,
			on:         true,
			stateUntil: math.MaxInt64,
			death:      t + dur,
			pulse:      true,
		}
		g.flows = append(g.flows, f)
	}
}

// Next implements trace.Source.
func (g *Generator) Next(p *trace.Packet) error {
	for !g.done {
		if len(g.flows) == 0 {
			g.done = true
			break
		}
		f := g.flows[0]
		t := f.next
		if t >= g.durNs {
			// Heap min is beyond the trace end; everything else is too.
			g.done = true
			break
		}
		switch {
		case t >= f.death:
			if f.pulse {
				heap.Pop(&g.flows) // pulses end, they do not respawn
				continue
			}
			// Churn: the source dies and a fresh one takes its rank slot.
			f.src = g.space.sampleSource(g.rng)
			g.assignClass(f)
			g.resetLifecycle(f, t)
			f.next = t + g.expNs(1e9/f.onRate)
			heap.Fix(&g.flows, 0)
			continue
		case t >= f.stateUntil:
			if f.on {
				f.on = false
				f.stateUntil = t + g.expNs(f.offMean)
				// Sleep through the off period.
				f.next = f.stateUntil
			} else {
				f.on = true
				f.stateUntil = t + g.expNs(f.onMean)
				f.next = t + g.expNs(1e9/f.onRate)
			}
			heap.Fix(&g.flows, 0)
			continue
		case !f.on:
			// Scheduled during an off period (initial phase): skip ahead.
			f.next = f.stateUntil
			heap.Fix(&g.flows, 0)
			continue
		}
		// Emit a packet for f at t.
		g.fillPacket(p, f, t)
		f.next = t + g.expNs(1e9/f.onRate)
		heap.Fix(&g.flows, 0)
		g.emitted++
		return nil
	}
	return io.EOF
}

// Emitted returns the number of packets produced so far.
func (g *Generator) Emitted() int64 { return g.emitted }

// fillPacket draws the per-packet header fields.
func (g *Generator) fillPacket(p *trace.Packet, f *flow, t int64) {
	p.Ts = t
	p.Src = f.src
	p.Dst = g.space.sampleServer(g.rng, !f.src.Is4())
	p.Size = g.sampleSize(f.pulse)
	switch r := g.rng.Float64(); {
	case f.pulse || r < 0.10:
		p.Proto = trace.ProtoUDP
		p.SrcPort = uint16(1024 + g.rng.Intn(64000))
		p.DstPort = uint16([]int{53, 123, 443, 4789}[g.rng.Intn(4)])
	case r < 0.998:
		p.Proto = trace.ProtoTCP
		p.SrcPort = uint16(1024 + g.rng.Intn(64000))
		p.DstPort = uint16([]int{80, 443, 443, 443, 22, 25}[g.rng.Intn(6)])
	default:
		p.Proto = trace.ProtoICMP
		if !f.src.Is4() {
			p.Proto = trace.ProtoICMPv6
		}
		p.SrcPort, p.DstPort = 0, 0
	}
}

// sampleSize draws from the trimodal Internet packet-size mixture; pulses
// skew small (typical of floods).
func (g *Generator) sampleSize(pulse bool) uint32 {
	r := g.rng.Float64()
	if pulse {
		// Floods: mostly minimum-size packets.
		if r < 0.85 {
			return uint32(40 + g.rng.Intn(24))
		}
		return uint32(1400 + g.rng.Intn(100))
	}
	switch {
	case r < 0.45:
		return uint32(40 + g.rng.Intn(40)) // ACKs, SYNs
	case r < 0.60:
		return uint32(400 + g.rng.Intn(400)) // DNS and mid-size
	default:
		return uint32(1400 + g.rng.Intn(100)) // MTU-limited bulk
	}
}
