// Package gen synthesises Tier-1-ISP-like packet traces: the substitute
// for the proprietary CAIDA equinix-chicago captures the paper analyses.
//
// The generator is flow-based and event-driven. A population of
// long-lived sources with Zipf-distributed rates is drawn from a
// hierarchically structured dual-stack address space — IPv4
// organisations /8 → subnets /16 → networks /24 → hosts, mirrored on the
// IPv6 side one hextet per tier down to /64 subnets (Config.V6Fraction
// sets the family mix) — each source modulated by an on/off burst
// process and subject to lifetime churn. On top of that base load,
// short-lived high-rate pulses — flash events and attack-like bursts —
// fire at Poisson times with uniformly random phase relative to any
// window grid, which is exactly the traffic feature that produces hidden
// HHHs at disjoint-window boundaries.
//
// Everything is driven by a single seed: the same Config yields the same
// byte-identical trace, which keeps every experiment reproducible.
package gen

import (
	"errors"
	"fmt"
	"time"
)

// Config parameterises a synthetic trace. The zero value is not valid;
// start from DefaultConfig or a preset.
type Config struct {
	// Duration of the trace.
	Duration time.Duration
	// Seed drives all randomness.
	Seed int64

	// Flows is the number of concurrently live long-lived sources.
	Flows int
	// RateSkew is the Zipf exponent across source ranks (rate of rank i
	// proportional to 1/i^RateSkew). Around 1.0 matches the heavy-tailed
	// source distributions of backbone traces.
	RateSkew float64
	// MeanPacketRate is the target aggregate packet rate (pps) of the
	// long-lived population.
	MeanPacketRate float64

	// MeanFlowLifetime is the expected source lifetime before it dies and
	// is replaced by a fresh source (exponentially distributed). Zero
	// disables churn.
	MeanFlowLifetime time.Duration

	// BurstOn/BurstOff are the mean durations of a source's on and off
	// periods (exponentially distributed). Zero for either disables
	// modulation (sources always on).
	BurstOn  time.Duration
	BurstOff time.Duration

	// MicroburstFraction is the share of sources that burst at
	// sub-second scale instead of the BurstOn/BurstOff scale —
	// reproducing the short-timescale self-similarity of backbone
	// traffic. Those sources use MicroOn/MicroOff as their on/off means
	// and concentrate their volume into brief flights, the temporal
	// texture that makes window-edge effects (Figures 2 and 3) appear.
	MicroburstFraction float64
	MicroOn            time.Duration
	MicroOff           time.Duration

	// PulsesPerMinute is the expected rate of short heavy pulses (Poisson
	// arrivals, uniform phase). Zero disables pulses.
	PulsesPerMinute float64
	// PulseDuration bounds the uniform pulse length.
	PulseDurationMin, PulseDurationMax time.Duration
	// PulseShare bounds the uniform pulse intensity as a fraction of
	// MeanPacketRate (e.g. 0.1 = the pulse alone sends 10% of the base
	// aggregate rate while active).
	PulseShareMin, PulseShareMax float64

	// Address-space structure: Orgs top-level /8 organisations, each with
	// SubnetsPerOrg /16s, each with NetsPerSubnet /24s, each with
	// HostsPerNet addressable hosts. Popularity within each layer is
	// Zipf(AddrSkew) over a seeded random permutation, concentrating
	// traffic in a few subtrees like real backbone mixes.
	Orgs          int
	SubnetsPerOrg int
	NetsPerSubnet int
	HostsPerNet   int
	AddrSkew      float64

	// Servers is the size of the destination pool (per family).
	Servers int

	// V6Fraction is the share of sources (long-lived flows and pulses
	// alike) drawn from the IPv6 side of the address universe: 0 keeps
	// the trace IPv4-only, 1 makes it IPv6-only, anything between yields
	// a dual-stack mix with family-consistent destinations.
	V6Fraction float64
}

// DefaultConfig returns the base scenario used throughout the tests and
// experiments: a scaled-down Tier-1 mix that exhibits the paper's
// phenomena at laptop-friendly packet rates.
func DefaultConfig() Config {
	return Config{
		Duration:           time.Minute,
		Seed:               1,
		Flows:              1500,
		RateSkew:           1.05,
		MeanPacketRate:     5000,
		MeanFlowLifetime:   45 * time.Second,
		BurstOn:            4 * time.Second,
		BurstOff:           2 * time.Second,
		MicroburstFraction: 0.5,
		MicroOn:            100 * time.Millisecond,
		MicroOff:           600 * time.Millisecond,
		PulsesPerMinute:    10,
		PulseDurationMin:   150 * time.Millisecond,
		PulseDurationMax:   3 * time.Second,
		PulseShareMin:      0.05,
		PulseShareMax:      0.35,
		Orgs:               48,
		SubnetsPerOrg:      24,
		NetsPerSubnet:      24,
		HostsPerNet:        64,
		AddrSkew:           0.9,
		Servers:            512,
	}
}

// Tier1Day returns the scenario standing in for one of the paper's four
// one-hour CAIDA trace days: same structural parameters, different seed,
// with mild day-to-day variation in burstiness and pulse activity so the
// four "days" are not statistical clones.
func Tier1Day(day int, duration time.Duration) Config {
	c := DefaultConfig()
	c.Duration = duration
	c.Seed = int64(1000 + 77*day)
	switch day % 4 {
	case 1:
		c.BurstOn, c.BurstOff = 3*time.Second, 3*time.Second
		c.PulsesPerMinute = 8
	case 2:
		c.PulsesPerMinute = 4
		c.PulseShareMax = 0.18
	case 3:
		c.RateSkew = 1.15
		c.BurstOff = 1500 * time.Millisecond
	}
	return c
}

// DDoSScenario returns a base mix with a single scripted high-rate pulse
// (the examples use it to show a boundary-straddling attack).
func DDoSScenario(duration time.Duration, seed int64) Config {
	c := DefaultConfig()
	c.Duration = duration
	c.Seed = seed
	c.PulsesPerMinute = 2
	c.PulseShareMin, c.PulseShareMax = 0.15, 0.3
	c.PulseDurationMin, c.PulseDurationMax = time.Second, 3*time.Second
	return c
}

// ErrConfig reports an invalid generator configuration.
var ErrConfig = errors.New("gen: invalid configuration")

// Validate checks the configuration.
func (c *Config) Validate() error {
	switch {
	case c.Duration <= 0:
		return fmt.Errorf("%w: duration %v", ErrConfig, c.Duration)
	case c.Flows <= 0:
		return fmt.Errorf("%w: flows %d", ErrConfig, c.Flows)
	case c.MeanPacketRate <= 0:
		return fmt.Errorf("%w: mean packet rate %v", ErrConfig, c.MeanPacketRate)
	case c.RateSkew < 0:
		return fmt.Errorf("%w: rate skew %v", ErrConfig, c.RateSkew)
	case (c.BurstOn == 0) != (c.BurstOff == 0):
		return fmt.Errorf("%w: BurstOn and BurstOff must both be set or both zero", ErrConfig)
	case c.BurstOn < 0 || c.BurstOff < 0:
		return fmt.Errorf("%w: negative burst durations", ErrConfig)
	case c.MicroburstFraction < 0 || c.MicroburstFraction > 1:
		return fmt.Errorf("%w: microburst fraction %v out of [0,1]", ErrConfig, c.MicroburstFraction)
	case c.MicroburstFraction > 0 && (c.MicroOn <= 0 || c.MicroOff <= 0):
		return fmt.Errorf("%w: microburst means must be positive", ErrConfig)
	case c.PulsesPerMinute < 0:
		return fmt.Errorf("%w: negative pulse rate", ErrConfig)
	case c.PulsesPerMinute > 0 && (c.PulseDurationMin <= 0 || c.PulseDurationMax < c.PulseDurationMin):
		return fmt.Errorf("%w: pulse durations [%v,%v]", ErrConfig, c.PulseDurationMin, c.PulseDurationMax)
	case c.PulsesPerMinute > 0 && (c.PulseShareMin <= 0 || c.PulseShareMax < c.PulseShareMin):
		return fmt.Errorf("%w: pulse shares [%v,%v]", ErrConfig, c.PulseShareMin, c.PulseShareMax)
	case c.Orgs <= 0 || c.SubnetsPerOrg <= 0 || c.NetsPerSubnet <= 0 || c.HostsPerNet <= 0:
		return fmt.Errorf("%w: address-space dimensions must be positive", ErrConfig)
	case c.Orgs > 190:
		return fmt.Errorf("%w: orgs %d exceeds available /8 space", ErrConfig, c.Orgs)
	case c.SubnetsPerOrg > 256 || c.NetsPerSubnet > 256 || c.HostsPerNet > 254:
		return fmt.Errorf("%w: per-layer sizes exceed octet space", ErrConfig)
	case c.Servers <= 0:
		return fmt.Errorf("%w: servers %d", ErrConfig, c.Servers)
	case c.AddrSkew < 0:
		return fmt.Errorf("%w: addr skew %v", ErrConfig, c.AddrSkew)
	case c.V6Fraction < 0 || c.V6Fraction > 1:
		return fmt.Errorf("%w: v6 fraction %v out of [0,1]", ErrConfig, c.V6Fraction)
	}
	return nil
}
