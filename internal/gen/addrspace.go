package gen

import (
	"math"
	"math/rand"

	"hiddenhhh/internal/addr"
)

// addrSpace is the hierarchical address universe sources are drawn from.
// It spans both families: a fixed set of organisations, subnets and
// networks whose popularity is Zipf-distributed over seeded random
// permutations, so a handful of subtrees concentrate most traffic — the
// structure that makes interior prefixes (not just hosts) become HHHs.
//
// The IPv4 side nests organisations /8 → subnets /16 → networks /24 →
// hosts /32; the IPv6 side mirrors it one hextet per tier inside global
// unicast space, organisations /16 → /32 → /48 → subnets /64 (the leaf
// granularity of the IPv6 hierarchies; interface identifiers below /64
// are random and carry no routing structure). Config.V6Fraction sets the
// share of flows drawn from the IPv6 side.
type addrSpace struct {
	orgs   []byte    // the /8 octet values, popularity-ranked
	orgCum []float64 // cumulative Zipf weights
	subCum []float64 // shared cumulative weights for subnet ranks
	netCum []float64

	// subnetPerm[o] permutes subnet indices inside org o so that the
	// popular rank lands on different octets per org; likewise netPerm
	// keyed by (org, subnet).
	subnetPerm [][]byte
	netPerm    map[uint16][]byte

	// IPv6 mirror: per-tier hextet values share the v4 permutations'
	// structure but draw their own seeded randomness, so the two families
	// are not statistical clones of each other.
	orgs6       []uint16 // /16 top hextets, popularity-ranked
	subnetPerm6 [][]uint16
	netPerm6    map[uint16][]uint16

	servers  []addr.Addr // v4 destination pool
	servers6 []addr.Addr // v6 destination pool

	cfg *Config
	// pulse sources get hosts drawn from the same structured space so
	// bursts hit real subtrees.
}

// cumZipf returns the normalised cumulative Zipf(skew) weights of ranks
// 1..n.
func cumZipf(n int, skew float64) []float64 {
	cum := make([]float64, n)
	var tot float64
	for i := 0; i < n; i++ {
		tot += 1 / math.Pow(float64(i+1), skew)
		cum[i] = tot
	}
	for i := range cum {
		cum[i] /= tot
	}
	return cum
}

// pickCum draws the rank whose cumulative weight first reaches r.
func pickCum(cum []float64, r float64) int {
	// Binary search over the cumulative weights.
	lo, hi := 0, len(cum)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if cum[mid] < r {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

func newAddrSpace(cfg *Config, rng *rand.Rand) *addrSpace {
	s := &addrSpace{
		cfg:      cfg,
		netPerm:  map[uint16][]byte{},
		netPerm6: map[uint16][]uint16{},
	}
	// Distinct public-ish /8 octets.
	perm := rng.Perm(190)
	s.orgs = make([]byte, cfg.Orgs)
	for i := range s.orgs {
		s.orgs[i] = byte(10 + perm[i]) // 10..199, deterministic under seed
	}
	s.orgCum = cumZipf(cfg.Orgs, cfg.AddrSkew)
	s.subCum = cumZipf(cfg.SubnetsPerOrg, cfg.AddrSkew)
	s.netCum = cumZipf(cfg.NetsPerSubnet, cfg.AddrSkew)
	s.subnetPerm = make([][]byte, cfg.Orgs)
	for o := range s.subnetPerm {
		p := rng.Perm(256)
		s.subnetPerm[o] = make([]byte, cfg.SubnetsPerOrg)
		for i := range s.subnetPerm[o] {
			s.subnetPerm[o][i] = byte(p[i])
		}
	}
	// IPv6 organisations: distinct top hextets inside 2000::/3 global
	// unicast space (0x2000 | 10..199, mirroring the v4 octet draw).
	perm6 := rng.Perm(190)
	s.orgs6 = make([]uint16, cfg.Orgs)
	for i := range s.orgs6 {
		s.orgs6[i] = 0x2000 | uint16(10+perm6[i])
	}
	s.subnetPerm6 = make([][]uint16, cfg.Orgs)
	for o := range s.subnetPerm6 {
		p := rng.Perm(256)
		s.subnetPerm6[o] = make([]uint16, cfg.SubnetsPerOrg)
		for i := range s.subnetPerm6[o] {
			// Spread subnet hextets over the full 16-bit space so v6
			// prefixes do not all share low-byte structure.
			s.subnetPerm6[o][i] = uint16(p[i])<<8 | uint16(p[(i+7)%256])
		}
	}
	s.servers = make([]addr.Addr, cfg.Servers)
	for i := range s.servers {
		s.servers[i] = addr.From4(byte(200+rng.Intn(20)), byte(rng.Intn(256)), byte(rng.Intn(256)), byte(1+rng.Intn(254)))
	}
	s.servers6 = make([]addr.Addr, cfg.Servers)
	for i := range s.servers6 {
		hi := uint64(0x2600|rng.Intn(32))<<48 | uint64(rng.Intn(1<<16))<<32 |
			uint64(rng.Intn(1<<16))<<16 | uint64(rng.Intn(1<<16))
		s.servers6[i] = addr.FromParts(hi, uint64(1+rng.Intn(1<<16)))
	}
	return s
}

// netOctets lazily permutes /24 octets within (org, subnet).
func (s *addrSpace) netOctets(rng *rand.Rand, org, sub int) []byte {
	key := uint16(org)<<8 | uint16(sub)
	if p, ok := s.netPerm[key]; ok {
		return p
	}
	perm := rng.Perm(256)
	p := make([]byte, s.cfg.NetsPerSubnet)
	for i := range p {
		p[i] = byte(perm[i])
	}
	s.netPerm[key] = p
	return p
}

// netHextets is the IPv6 analogue of netOctets: lazily permuted /48
// hextets within (org, subnet).
func (s *addrSpace) netHextets(rng *rand.Rand, org, sub int) []uint16 {
	key := uint16(org)<<8 | uint16(sub)
	if p, ok := s.netPerm6[key]; ok {
		return p
	}
	perm := rng.Perm(256)
	p := make([]uint16, s.cfg.NetsPerSubnet)
	for i := range p {
		p[i] = uint16(perm[i])<<8 | uint16(perm[(i+3)%256])
	}
	s.netPerm6[key] = p
	return p
}

// v6 reports whether the next sampled source should come from the IPv6
// side of the universe.
func (s *addrSpace) v6(rng *rand.Rand) bool {
	return s.cfg.V6Fraction > 0 && rng.Float64() < s.cfg.V6Fraction
}

// sampleSource draws a host address by Zipf descent through the
// hierarchy of the drawn family.
func (s *addrSpace) sampleSource(rng *rand.Rand) addr.Addr {
	org := pickCum(s.orgCum, rng.Float64())
	sub := pickCum(s.subCum, rng.Float64())
	net := pickCum(s.netCum, rng.Float64())
	if s.v6(rng) {
		// Leaf /64 hextet in the regular host range; random interface id.
		host := uint16(1 + rng.Intn(s.cfg.HostsPerNet))
		return s.v6Addr(rng, org, sub, net, host)
	}
	host := 1 + rng.Intn(s.cfg.HostsPerNet)
	return addr.From4(
		s.orgs[org],
		s.subnetPerm[org][sub],
		s.netOctets(rng, org, sub)[net],
		byte(host),
	)
}

// samplePulseSource draws the source for a pulse: a fresh host inside a
// popular subtree (so the burst lights up interior prefixes too).
func (s *addrSpace) samplePulseSource(rng *rand.Rand) addr.Addr {
	org := pickCum(s.orgCum, rng.Float64())
	sub := pickCum(s.subCum, rng.Float64())
	net := pickCum(s.netCum, rng.Float64())
	if s.v6(rng) {
		// Subnets above the regular range: fresh /64s that only pulses use.
		host := uint16(s.cfg.HostsPerNet + 1 + rng.Intn(1<<14))
		return s.v6Addr(rng, org, sub, net, host)
	}
	// Hosts above the regular range: new /32s that only pulses use.
	host := s.cfg.HostsPerNet + 1 + rng.Intn(255-s.cfg.HostsPerNet)
	if host > 254 {
		host = 254
	}
	return addr.From4(
		s.orgs[org],
		s.subnetPerm[org][sub],
		s.netOctets(rng, org, sub)[net],
		byte(host),
	)
}

// v6Addr assembles the IPv6 address of (org, sub, net, leaf hextet) with
// a random interface identifier.
func (s *addrSpace) v6Addr(rng *rand.Rand, org, sub, net int, host uint16) addr.Addr {
	hi := uint64(s.orgs6[org])<<48 |
		uint64(s.subnetPerm6[org][sub])<<32 |
		uint64(s.netHextets(rng, org, sub)[net])<<16 |
		uint64(host)
	return addr.FromParts(hi, rng.Uint64())
}

// sampleServer draws a destination of the given family, so synthesised
// conversations stay family-consistent like real dual-stack traffic.
func (s *addrSpace) sampleServer(rng *rand.Rand, v6 bool) addr.Addr {
	if v6 {
		return s.servers6[rng.Intn(len(s.servers6))]
	}
	return s.servers[rng.Intn(len(s.servers))]
}
