package gen

import (
	"math"
	"math/rand"

	"hiddenhhh/internal/ipv4"
)

// addrSpace is the hierarchical address universe sources are drawn from:
// a fixed set of organisations (/8), subnets (/16) and networks (/24)
// whose popularity is Zipf-distributed over seeded random permutations, so
// a handful of subtrees concentrate most traffic — the structure that
// makes interior prefixes (not just hosts) become HHHs.
type addrSpace struct {
	orgs    []byte    // second .. the /8 octet values, popularity-ranked
	orgCum  []float64 // cumulative Zipf weights
	subCum  []float64 // shared cumulative weights for subnet ranks
	netCum  []float64
	servers []ipv4.Addr

	// subnetPerm[o] permutes subnet indices inside org o so that the
	// popular rank lands on different octets per org; likewise netPerm
	// keyed by (org, subnet).
	subnetPerm [][]byte
	netPerm    map[uint16][]byte

	cfg *Config
	// pulse sources get hosts drawn from the same structured space so
	// bursts hit real subtrees.
}

func cumZipf(n int, skew float64) []float64 {
	cum := make([]float64, n)
	var tot float64
	for i := 0; i < n; i++ {
		tot += 1 / math.Pow(float64(i+1), skew)
		cum[i] = tot
	}
	for i := range cum {
		cum[i] /= tot
	}
	return cum
}

func pickCum(cum []float64, r float64) int {
	// Binary search over the cumulative weights.
	lo, hi := 0, len(cum)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if cum[mid] < r {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

func newAddrSpace(cfg *Config, rng *rand.Rand) *addrSpace {
	s := &addrSpace{cfg: cfg, netPerm: map[uint16][]byte{}}
	// Distinct public-ish /8 octets.
	perm := rng.Perm(190)
	s.orgs = make([]byte, cfg.Orgs)
	for i := range s.orgs {
		s.orgs[i] = byte(10 + perm[i]) // 10..199, deterministic under seed
	}
	s.orgCum = cumZipf(cfg.Orgs, cfg.AddrSkew)
	s.subCum = cumZipf(cfg.SubnetsPerOrg, cfg.AddrSkew)
	s.netCum = cumZipf(cfg.NetsPerSubnet, cfg.AddrSkew)
	s.subnetPerm = make([][]byte, cfg.Orgs)
	for o := range s.subnetPerm {
		p := rng.Perm(256)
		s.subnetPerm[o] = make([]byte, cfg.SubnetsPerOrg)
		for i := range s.subnetPerm[o] {
			s.subnetPerm[o][i] = byte(p[i])
		}
	}
	s.servers = make([]ipv4.Addr, cfg.Servers)
	for i := range s.servers {
		s.servers[i] = ipv4.AddrFrom4(byte(200+rng.Intn(20)), byte(rng.Intn(256)), byte(rng.Intn(256)), byte(1+rng.Intn(254)))
	}
	return s
}

// netOctets lazily permutes /24 octets within (org, subnet).
func (s *addrSpace) netOctets(rng *rand.Rand, org, sub int) []byte {
	key := uint16(org)<<8 | uint16(sub)
	if p, ok := s.netPerm[key]; ok {
		return p
	}
	perm := rng.Perm(256)
	p := make([]byte, s.cfg.NetsPerSubnet)
	for i := range p {
		p[i] = byte(perm[i])
	}
	s.netPerm[key] = p
	return p
}

// sampleSource draws a host address by Zipf descent through the
// hierarchy.
func (s *addrSpace) sampleSource(rng *rand.Rand) ipv4.Addr {
	org := pickCum(s.orgCum, rng.Float64())
	sub := pickCum(s.subCum, rng.Float64())
	net := pickCum(s.netCum, rng.Float64())
	host := 1 + rng.Intn(s.cfg.HostsPerNet)
	return ipv4.AddrFrom4(
		s.orgs[org],
		s.subnetPerm[org][sub],
		s.netOctets(rng, org, sub)[net],
		byte(host),
	)
}

// samplePulseSource draws the source for a pulse: a fresh host inside a
// popular subtree (so the burst lights up interior prefixes too).
func (s *addrSpace) samplePulseSource(rng *rand.Rand) ipv4.Addr {
	org := pickCum(s.orgCum, rng.Float64())
	sub := pickCum(s.subCum, rng.Float64())
	net := pickCum(s.netCum, rng.Float64())
	// Hosts above the regular range: new /32s that only pulses use.
	host := s.cfg.HostsPerNet + 1 + rng.Intn(255-s.cfg.HostsPerNet)
	if host > 254 {
		host = 254
	}
	return ipv4.AddrFrom4(
		s.orgs[org],
		s.subnetPerm[org][sub],
		s.netOctets(rng, org, sub)[net],
		byte(host),
	)
}

// sampleServer draws a destination.
func (s *addrSpace) sampleServer(rng *rand.Rand) ipv4.Addr {
	return s.servers[rng.Intn(len(s.servers))]
}
