package gen

import (
	"time"

	"hiddenhhh/internal/addr"
)

// Scenario couples a named traffic shape with its generator Config and
// the prefix hierarchy it should be evaluated on: the accuracy-evaluation
// suite (internal/oracle, cmd/hhheval) runs every detector over each of
// these and scores it against the exact oracle. The shapes cover the
// regimes the paper's analyses stress: stationary heavy-tailed load,
// boundary-straddling attack pulses (the hidden-HHH generator), sustained
// flash surges, scan-like floods of minimum-size packets, the
// burst-modulated Tier-1 mix standing in for the CAIDA trace days, and
// the IPv6 and dual-stack mixes that exercise the taller lattices.
type Scenario struct {
	// Name is the stable scenario identifier used in reports.
	Name string
	// Description is the one-line regime summary shown in reports.
	Description string
	// Config parameterises the generator.
	Config Config
	// Hierarchy is the prefix lattice detectors and oracle use for this
	// scenario (the IPv4 byte ladder for the v4 scenarios, an IPv6
	// lattice for the v6 and dual-stack ones).
	Hierarchy addr.Hierarchy
}

// Scenarios returns the seven-scenario accuracy suite at the given trace
// duration and base seed: the five IPv4 regimes plus an IPv6-only
// hit-and-run DDoS (five-level hextet ladder) and a dual-stack mix
// evaluated on the 17-level nibble lattice. Each scenario derives its
// own deterministic seed from base, so the suite is reproducible end to
// end.
func Scenarios(duration time.Duration, base int64) []Scenario {
	v4 := addr.NewIPv4Hierarchy(addr.Byte)
	return []Scenario{
		{
			Name: "zipf-steady",
			Description: "stationary Zipf-rate population: no churn, no bursts, " +
				"no pulses — the regime where windowed and sliding reports agree",
			Config:    ZipfSteadyScenario(duration, base+1),
			Hierarchy: v4,
		},
		{
			Name: "hit-and-run-ddos",
			Description: "frequent short high-rate pulses with uniform phase: " +
				"boundary-straddling attacks, the paper's hidden-HHH generator",
			Config:    HitAndRunScenario(duration, base+2),
			Hierarchy: v4,
		},
		{
			Name: "flash-crowd",
			Description: "sustained multi-second surges over a concentrated " +
				"address space: interior-prefix HHHs that build and persist",
			Config:    FlashCrowdScenario(duration, base+3),
			Hierarchy: v4,
		},
		{
			Name: "port-sweep",
			Description: "scan-like floods: a quiet base mix with overlapping " +
				"minimum-size-packet pulses, high packet rate at low byte share",
			Config:    PortSweepScenario(duration, base+4),
			Hierarchy: v4,
		},
		{
			Name: "diurnal-tier1",
			Description: "the burst-modulated Tier-1 day mix standing in for " +
				"the paper's CAIDA captures (microbursts, churn, pulses)",
			Config:    diurnalScenario(duration, base),
			Hierarchy: v4,
		},
		{
			Name: "ipv6-hit-and-run-ddos",
			Description: "the hidden-HHH generator moved to IPv6: " +
				"boundary-straddling pulses over /64-leaf subtrees on the " +
				"five-level hextet ladder",
			Config:    IPv6HitAndRunScenario(duration, base+6),
			Hierarchy: addr.NewIPv6Hierarchy(addr.Hextet),
		},
		{
			Name: "dual-stack-mix",
			Description: "half IPv4, half IPv6 sources with pulses, evaluated " +
				"on the 17-level IPv6 nibble lattice: the family filter plus " +
				"tall-hierarchy stress case",
			Config:    DualStackScenario(duration, base+7),
			Hierarchy: addr.NewIPv6Hierarchy(addr.Nibble),
		},
	}
}

// diurnalScenario picks the Tier1Day parameter variation by base but —
// unlike Tier1Day itself, whose seed depends only on the day index —
// derives the trace seed from base like every other suite member, so
// different base values give different diurnal traces and no suite seed
// can collide with another scenario's base+1..base+4 range.
func diurnalScenario(duration time.Duration, base int64) Config {
	c := Tier1Day(int(base%4), duration)
	c.Seed = base + 5
	return c
}

// ZipfSteadyScenario is a stationary heavy-tailed population: every
// source always on at its Zipf rank share, no lifetime churn, no pulses.
// The cleanest setting for sketch error bounds — all deviation from the
// oracle is summary error, none is traffic dynamics.
func ZipfSteadyScenario(duration time.Duration, seed int64) Config {
	c := DefaultConfig()
	c.Duration = duration
	c.Seed = seed
	c.MeanFlowLifetime = 0
	c.BurstOn, c.BurstOff = 0, 0
	c.MicroburstFraction = 0
	c.PulsesPerMinute = 0
	return c
}

// HitAndRunScenario saturates the trace with short intense pulses whose
// phase is uniform relative to any window grid — the traffic feature the
// paper shows disjoint windows hide: a pulse split across a boundary can
// fall below threshold in both halves while a sliding or continuous view
// sees it whole.
func HitAndRunScenario(duration time.Duration, seed int64) Config {
	c := DefaultConfig()
	c.Duration = duration
	c.Seed = seed
	c.PulsesPerMinute = 24
	c.PulseDurationMin = 200 * time.Millisecond
	c.PulseDurationMax = 1500 * time.Millisecond
	c.PulseShareMin, c.PulseShareMax = 0.2, 0.5
	return c
}

// FlashCrowdScenario models sustained surges: few but long high-share
// pulses over a tightly concentrated address space, producing interior
// prefixes (/8, /16) that cross the threshold and stay there.
func FlashCrowdScenario(duration time.Duration, seed int64) Config {
	c := DefaultConfig()
	c.Duration = duration
	c.Seed = seed
	c.Orgs = 12
	c.AddrSkew = 1.3
	c.PulsesPerMinute = 3
	c.PulseDurationMin = 5 * time.Second
	c.PulseDurationMax = 15 * time.Second
	c.PulseShareMin, c.PulseShareMax = 0.25, 0.5
	return c
}

// PortSweepScenario approximates scan/sweep floods in the suite's
// source-keyed, byte-weighted setting: a quiet base mix overlaid with
// many concurrent pulses — single sources emitting mostly minimum-size
// packets (the generator's pulse size law) at high packet rates, so the
// sweepers dominate packet counts while holding modest byte shares. The
// regime stresses RHHH hardest: per-packet level sampling sees many
// packets carrying few bytes.
func PortSweepScenario(duration time.Duration, seed int64) Config {
	c := DefaultConfig()
	c.Duration = duration
	c.Seed = seed
	c.MeanPacketRate = 2500
	c.PulsesPerMinute = 16
	c.PulseDurationMin = 500 * time.Millisecond
	c.PulseDurationMax = 4 * time.Second
	c.PulseShareMin, c.PulseShareMax = 0.3, 0.8
	return c
}

// IPv6HitAndRunScenario is HitAndRunScenario with every source drawn
// from the IPv6 side of the universe: the same boundary-straddling
// attack pulses, now lighting up /64-leaf subtrees — the workload the
// IPv6 hierarchies exist for.
func IPv6HitAndRunScenario(duration time.Duration, seed int64) Config {
	c := HitAndRunScenario(duration, seed)
	c.V6Fraction = 1
	return c
}

// DualStackScenario is a half-and-half family mix over the default
// pulsed Tier-1 shape: detectors on either family's hierarchy must
// threshold against their own family's bytes only, which is what the
// ingest-side family filter provides.
func DualStackScenario(duration time.Duration, seed int64) Config {
	c := DefaultConfig()
	c.Duration = duration
	c.Seed = seed
	c.V6Fraction = 0.5
	return c
}
