package gen

import (
	"errors"
	"sort"
	"testing"
	"time"

	"hiddenhhh/internal/addr"
	"hiddenhhh/internal/trace"
)

func smallCfg(seed int64) Config {
	c := DefaultConfig()
	c.Duration = 10 * time.Second
	c.Seed = seed
	c.Flows = 400
	c.MeanPacketRate = 2000
	return c
}

func TestValidation(t *testing.T) {
	good := DefaultConfig()
	if err := good.Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	mutations := []func(*Config){
		func(c *Config) { c.Duration = 0 },
		func(c *Config) { c.Flows = 0 },
		func(c *Config) { c.MeanPacketRate = 0 },
		func(c *Config) { c.RateSkew = -1 },
		func(c *Config) { c.BurstOn = 0 }, // off still set
		func(c *Config) { c.BurstOn = -time.Second },
		func(c *Config) { c.PulsesPerMinute = -1 },
		func(c *Config) { c.PulseDurationMin = 0 },
		func(c *Config) { c.PulseDurationMax = time.Millisecond },
		func(c *Config) { c.PulseShareMin = 0 },
		func(c *Config) { c.PulseShareMax = 0.001 },
		func(c *Config) { c.Orgs = 0 },
		func(c *Config) { c.Orgs = 500 },
		func(c *Config) { c.SubnetsPerOrg = 300 },
		func(c *Config) { c.HostsPerNet = 255 },
		func(c *Config) { c.Servers = 0 },
		func(c *Config) { c.AddrSkew = -0.1 },
	}
	for i, mut := range mutations {
		c := DefaultConfig()
		mut(&c)
		if err := c.Validate(); !errors.Is(err, ErrConfig) {
			t.Errorf("mutation %d: err = %v, want ErrConfig", i, err)
		}
		if _, err := New(c); !errors.Is(err, ErrConfig) {
			t.Errorf("mutation %d: New err = %v, want ErrConfig", i, err)
		}
	}
}

func TestDeterminism(t *testing.T) {
	a, err := Packets(smallCfg(7))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Packets(smallCfg(7))
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("packet %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
	c, err := Packets(smallCfg(8))
	if err != nil {
		t.Fatal(err)
	}
	if len(c) == len(a) {
		same := true
		for i := range a {
			if a[i] != c[i] {
				same = false
				break
			}
		}
		if same {
			t.Fatal("different seeds produced identical traces")
		}
	}
}

func TestTimeSortedAndInRange(t *testing.T) {
	pkts, err := Packets(smallCfg(1))
	if err != nil {
		t.Fatal(err)
	}
	if !trace.IsSorted(pkts) {
		t.Fatal("generator output not time-sorted")
	}
	for i := range pkts {
		if pkts[i].Ts < 0 || pkts[i].Ts >= int64(10*time.Second) {
			t.Fatalf("packet %d timestamp %d outside trace", i, pkts[i].Ts)
		}
		if pkts[i].Size < 40 || pkts[i].Size > 1514 {
			t.Fatalf("packet %d size %d out of range", i, pkts[i].Size)
		}
	}
}

func TestAggregateRate(t *testing.T) {
	cfg := smallCfg(2)
	pkts, err := Packets(cfg)
	if err != nil {
		t.Fatal(err)
	}
	got := float64(len(pkts)) / cfg.Duration.Seconds()
	want := cfg.MeanPacketRate
	// Pulses add extra load; allow the band to reflect that.
	if got < want*0.7 || got > want*1.8 {
		t.Errorf("aggregate rate %.0f pps, want within [%.0f, %.0f]",
			got, want*0.7, want*1.8)
	}
}

func TestSourceRateSkew(t *testing.T) {
	cfg := smallCfg(3)
	cfg.PulsesPerMinute = 0 // isolate the long-lived population
	pkts, err := Packets(cfg)
	if err != nil {
		t.Fatal(err)
	}
	bySrc := map[addr.Addr]int{}
	for i := range pkts {
		bySrc[pkts[i].Src]++
	}
	counts := make([]int, 0, len(bySrc))
	for _, c := range bySrc {
		counts = append(counts, c)
	}
	sort.Sort(sort.Reverse(sort.IntSlice(counts)))
	if len(counts) < 100 {
		t.Fatalf("only %d distinct sources", len(counts))
	}
	// Heavy tail: top source well above the median.
	median := counts[len(counts)/2]
	if counts[0] < 20*median {
		t.Errorf("top source %d vs median %d: tail not heavy enough", counts[0], median)
	}
	// And the top source should be a meaningful share but not everything.
	share := float64(counts[0]) / float64(len(pkts))
	if share < 0.01 || share > 0.6 {
		t.Errorf("top source share %.3f outside plausible band", share)
	}
}

func TestHierarchicalConcentration(t *testing.T) {
	// Aggregating by /8 must concentrate traffic: the top org should
	// carry several times the uniform share.
	cfg := smallCfg(4)
	pkts, err := Packets(cfg)
	if err != nil {
		t.Fatal(err)
	}
	byOrg := map[byte]int{}
	for i := range pkts {
		byOrg[pkts[i].Src.As4()[0]]++
	}
	max := 0
	for _, c := range byOrg {
		if c > max {
			max = c
		}
	}
	uniform := len(pkts) / cfg.Orgs
	if max < 3*uniform {
		t.Errorf("top /8 carries %d packets vs uniform %d: no concentration", max, uniform)
	}
}

func TestPulsesCreateTransientSources(t *testing.T) {
	cfg := smallCfg(5)
	cfg.PulsesPerMinute = 30 // ~5 pulses in 10 s
	cfg.PulseShareMin, cfg.PulseShareMax = 0.2, 0.3
	pkts, err := Packets(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Pulse sources use host octets above HostsPerNet.
	pulsePkts := 0
	pulseSrcs := map[addr.Addr]bool{}
	for i := range pkts {
		if int(pkts[i].Src.As4()[3]) > cfg.HostsPerNet {
			pulsePkts++
			pulseSrcs[pkts[i].Src] = true
		}
	}
	if len(pulseSrcs) == 0 {
		t.Fatal("no pulse sources found")
	}
	if pulsePkts < len(pkts)/50 {
		t.Errorf("pulse traffic only %d/%d packets", pulsePkts, len(pkts))
	}
}

func TestNoPulsesWhenDisabled(t *testing.T) {
	cfg := smallCfg(6)
	cfg.PulsesPerMinute = 0
	pkts, err := Packets(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range pkts {
		if int(pkts[i].Src.As4()[3]) > cfg.HostsPerNet {
			t.Fatalf("pulse-range source %v present with pulses disabled", pkts[i].Src)
		}
	}
}

func TestStreamingMatchesCollected(t *testing.T) {
	cfg := smallCfg(9)
	g, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	streamed, err := trace.Collect(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	batch, err := Packets(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(streamed) != len(batch) {
		t.Fatalf("streamed %d vs batch %d", len(streamed), len(batch))
	}
	if g.Emitted() != int64(len(streamed)) {
		t.Errorf("Emitted = %d", g.Emitted())
	}
}

func TestProtocolMix(t *testing.T) {
	pkts, err := Packets(smallCfg(10))
	if err != nil {
		t.Fatal(err)
	}
	protos := map[uint8]int{}
	for i := range pkts {
		protos[pkts[i].Proto]++
	}
	if protos[trace.ProtoTCP] == 0 || protos[trace.ProtoUDP] == 0 {
		t.Errorf("protocol mix missing TCP or UDP: %v", protos)
	}
	if protos[trace.ProtoTCP] < protos[trace.ProtoUDP] {
		t.Errorf("TCP should dominate: %v", protos)
	}
}

func TestPresetsAreValid(t *testing.T) {
	for day := 0; day < 4; day++ {
		c := Tier1Day(day, 30*time.Second)
		if err := c.Validate(); err != nil {
			t.Errorf("Tier1Day(%d) invalid: %v", day, err)
		}
	}
	ddos := DDoSScenario(time.Minute, 3)
	if err := ddos.Validate(); err != nil {
		t.Errorf("DDoSScenario invalid: %v", err)
	}
	// Days must differ from each other (different seeds at least).
	a, _ := Packets(Tier1Day(0, 2*time.Second))
	b, _ := Packets(Tier1Day(1, 2*time.Second))
	if len(a) == len(b) {
		same := true
		for i := range a {
			if a[i] != b[i] {
				same = false
				break
			}
		}
		if same {
			t.Error("two days produced identical traces")
		}
	}
}

func TestChurnReplacesSources(t *testing.T) {
	cfg := smallCfg(11)
	cfg.MeanFlowLifetime = time.Second // aggressive churn
	pkts, err := Packets(cfg)
	if err != nil {
		t.Fatal(err)
	}
	firstHalf := map[addr.Addr]bool{}
	secondHalf := map[addr.Addr]bool{}
	mid := int64(5 * time.Second)
	for i := range pkts {
		if pkts[i].Ts < mid {
			firstHalf[pkts[i].Src] = true
		} else {
			secondHalf[pkts[i].Src] = true
		}
	}
	fresh := 0
	for s := range secondHalf {
		if !firstHalf[s] {
			fresh++
		}
	}
	if fresh < len(secondHalf)/10 {
		t.Errorf("only %d/%d second-half sources are new; churn ineffective", fresh, len(secondHalf))
	}
}

func BenchmarkGenerate(b *testing.B) {
	cfg := smallCfg(12)
	var p trace.Packet
	b.ReportAllocs()
	b.ResetTimer()
	n := 0
	for n < b.N {
		g, err := New(cfg)
		if err != nil {
			b.Fatal(err)
		}
		for n < b.N {
			if err := g.Next(&p); err != nil {
				break
			}
			n++
		}
	}
}

// TestScenarioSuite pins the accuracy-evaluation scenario presets: every
// scenario validates, generates a non-empty time-ordered trace, and the
// suite members are pairwise distinct traffic shapes (different seeds at
// minimum, so no scenario is a clone of another).
func TestScenarioSuite(t *testing.T) {
	scenarios := Scenarios(2*time.Second, 1)
	if len(scenarios) != 7 {
		t.Fatalf("suite has %d scenarios, want 7", len(scenarios))
	}
	names := map[string]bool{}
	seeds := map[int64]bool{}
	for _, sc := range scenarios {
		if sc.Name == "" || sc.Description == "" {
			t.Fatalf("scenario %+v missing name/description", sc)
		}
		if names[sc.Name] {
			t.Fatalf("duplicate scenario name %q", sc.Name)
		}
		names[sc.Name] = true
		if seeds[sc.Config.Seed] {
			t.Errorf("scenario %q reuses seed %d", sc.Name, sc.Config.Seed)
		}
		seeds[sc.Config.Seed] = true
		if err := sc.Config.Validate(); err != nil {
			t.Fatalf("scenario %q: %v", sc.Name, err)
		}
		pkts, err := Packets(sc.Config)
		if err != nil {
			t.Fatalf("scenario %q: %v", sc.Name, err)
		}
		if len(pkts) == 0 {
			t.Fatalf("scenario %q generated no packets", sc.Name)
		}
		if !trace.IsSorted(pkts) {
			t.Fatalf("scenario %q trace not time-ordered", sc.Name)
		}
		if sc.Hierarchy == (addr.Hierarchy{}) {
			t.Fatalf("scenario %q missing hierarchy", sc.Name)
		}
		// Family mix must match the configured fraction's extremes.
		v4, v6 := 0, 0
		for i := range pkts {
			if pkts[i].Src.Is4() {
				v4++
			} else {
				v6++
			}
		}
		switch sc.Config.V6Fraction {
		case 0:
			if v6 != 0 {
				t.Fatalf("scenario %q: %d v6 packets in a v4-only config", sc.Name, v6)
			}
		case 1:
			if v4 != 0 {
				t.Fatalf("scenario %q: %d v4 packets in a v6-only config", sc.Name, v4)
			}
		default:
			if v4 == 0 || v6 == 0 {
				t.Fatalf("scenario %q: family mix v4=%d v6=%d not mixed", sc.Name, v4, v6)
			}
		}
	}
}

// TestDualStackStructure pins the IPv6 side of the address universe:
// destinations stay family-consistent with sources, v6 sources sit in
// global-unicast space, and aggregating by top hextet concentrates
// traffic just like the v4 /8 tiers.
func TestDualStackStructure(t *testing.T) {
	cfg := smallCfg(13)
	cfg.V6Fraction = 0.5
	pkts, err := Packets(cfg)
	if err != nil {
		t.Fatal(err)
	}
	byOrg6 := map[uint16]int{}
	v6pkts := 0
	for i := range pkts {
		if pkts[i].Src.Is4() != pkts[i].Dst.Is4() {
			t.Fatalf("packet %d mixes families: %v -> %v", i, pkts[i].Src, pkts[i].Dst)
		}
		if pkts[i].Src.Is4() {
			continue
		}
		v6pkts++
		top := uint16(pkts[i].Src.Hi() >> 48)
		if top>>13 != 0b001 {
			t.Fatalf("v6 source %v outside global unicast 2000::/3", pkts[i].Src)
		}
		byOrg6[top]++
	}
	if v6pkts < len(pkts)/10 || v6pkts > len(pkts)*9/10 {
		t.Fatalf("v6 share %d/%d implausible for fraction 0.5", v6pkts, len(pkts))
	}
	max := 0
	for _, c := range byOrg6 {
		if c > max {
			max = c
		}
	}
	if uniform := v6pkts / cfg.Orgs; max < 3*uniform {
		t.Errorf("top v6 /16 carries %d packets vs uniform %d: no concentration", max, uniform)
	}
}
