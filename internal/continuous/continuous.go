// Package continuous implements the windowless hierarchical-heavy-hitter
// detector the paper's Section 3 calls for: continuous-time detection built
// on time-decaying Bloom filters instead of resettable window counters.
//
// The detector keeps one time-decaying Bloom filter per hierarchy level and
// a decayed tracker of total traffic mass. Every packet updates the filters
// along its source address's generalisation chain and then performs an
// inline admission check: a prefix whose *conditioned* decayed mass — its
// own estimate minus the estimates claimed by currently active descendant
// HHHs — reaches phi of the total decayed mass becomes active. Active
// prefixes are re-validated lazily (on the packets that touch them and on
// Query) and exit below a configurable hysteresis fraction of the
// threshold, so reports do not flap around the boundary.
//
// Because decay is continuous there are no window edges: a burst that would
// straddle a disjoint-window boundary — precisely the traffic the paper
// shows is "hidden" — accumulates mass regardless of when it starts. The
// trade-off, quantified by the continuous-comparison experiment, is that
// detection is thresholded against an exponentially weighted past rather
// than a sharp interval.
package continuous

import (
	"fmt"
	"time"

	"hiddenhhh/internal/addr"
	"hiddenhhh/internal/hashx"
	"hiddenhhh/internal/hhh"
	"hiddenhhh/internal/tdbf"
	"hiddenhhh/internal/trace"
)

// Config configures a Detector.
type Config struct {
	// Hierarchy of source prefixes; required (use addr.NewIPv4Hierarchy
	// or addr.NewIPv6Hierarchy).
	Hierarchy addr.Hierarchy
	// Phi is the HHH threshold as a fraction of total decayed traffic
	// mass, matching the windowed experiments' phi of window bytes.
	// Required, in (0,1].
	Phi float64
	// Filter configures the per-level time-decaying Bloom filters,
	// including the decay law. Filter.Decay is required; the decay
	// horizon plays the role the window length plays for windowed
	// detectors.
	Filter tdbf.Config
	// ExitRatio is the hysteresis: an active prefix exits when its
	// conditioned mass falls below ExitRatio*Phi*total. Default 0.9;
	// 1.0 disables hysteresis.
	ExitRatio float64
	// Warmup suppresses admissions until this much trace time has
	// passed after the first observed packet, letting the decayed total
	// reach steady state. Default is the decay horizon (zero for laws
	// without one). Anchoring at the first packet rather than at
	// timestamp zero keeps detection invariant under time translation:
	// a trace stamped in epoch nanoseconds warms up exactly like the
	// same trace stamped from zero.
	Warmup time.Duration
	// Sampled, when true, updates a single uniformly drawn level per
	// packet (RHHH-style) and scales estimates by the level count,
	// trading accuracy for an O(1) update. Seed drives the sampling.
	Sampled bool
	Seed    uint64
	// OnEnter/OnExit, when set, observe detection transitions with the
	// packet timestamp that triggered them.
	OnEnter func(p addr.Prefix, at int64)
	OnExit  func(p addr.Prefix, at int64)
}

// Detector is a continuous HHH detector. Not safe for concurrent use.
type Detector struct {
	cfg     Config
	levels  int
	filters []*tdbf.Filter
	total   *tdbf.MassTracker
	active  map[addr.Prefix]int64 // prefix -> activation timestamp
	anc     []addr.Prefix
	masks   []uint64 // per-level key masks, hoisted for the key fast path
	rng     uint64
	started bool  // first packet seen; warmEnd is anchored
	warmEnd int64 // first packet timestamp + Warmup
	pkts    int64
}

// NewDetector validates cfg and builds a detector.
func NewDetector(cfg Config) (*Detector, error) {
	if cfg.Phi <= 0 || cfg.Phi > 1 {
		return nil, fmt.Errorf("continuous: Phi %v out of (0,1]", cfg.Phi)
	}
	if cfg.Filter.Decay == nil {
		return nil, fmt.Errorf("continuous: Filter.Decay is required")
	}
	if cfg.ExitRatio == 0 {
		cfg.ExitRatio = 0.9
	}
	if cfg.ExitRatio < 0 || cfg.ExitRatio > 1 {
		return nil, fmt.Errorf("continuous: ExitRatio %v out of (0,1]", cfg.ExitRatio)
	}
	if cfg.Warmup == 0 {
		cfg.Warmup = cfg.Filter.Decay.Horizon()
	}
	d := &Detector{
		cfg:    cfg,
		levels: cfg.Hierarchy.Levels(),
		total:  tdbf.NewMassTracker(cfg.Filter.Decay),
		active: make(map[addr.Prefix]int64),
		rng:    hashx.Mix64(cfg.Seed ^ 0x6a09e667f3bcc909),
	}
	d.filters = make([]*tdbf.Filter, d.levels)
	for l := range d.filters {
		fc := cfg.Filter
		fc.Seed = hashx.Mix64(cfg.Seed + uint64(l) + 1)
		d.filters[l] = tdbf.New(fc)
	}
	d.anc = make([]addr.Prefix, 0, d.levels)
	d.masks = make([]uint64, d.levels)
	for l := range d.masks {
		d.masks[l] = cfg.Hierarchy.KeyMask(l)
	}
	return d, nil
}

// scale is the estimate multiplier: level count under sampling, 1 otherwise.
func (d *Detector) scale() float64 {
	if d.cfg.Sampled {
		return float64(d.levels)
	}
	return 1
}

// estimate returns the scaled decayed-mass estimate of p at now.
func (d *Detector) estimate(p addr.Prefix, now int64) float64 {
	l := d.cfg.Hierarchy.Level(p.Bits)
	return d.filters[l].Estimate(d.cfg.Hierarchy.KeyOfPrefix(p), now) * d.scale()
}

// claimedUnder sums the estimates of maximal active strict descendants of
// p: the mass already claimed by more specific HHHs, to be discounted from
// p's own estimate. The active set is small (bounded by ~1/phi·levels), so
// the quadratic scan is cheap and only runs for prefixes that already
// passed the raw-mass pre-check.
func (d *Detector) claimedUnder(p addr.Prefix, now int64) float64 {
	var claimed float64
	for h := range d.active {
		if h == p || !p.Covers(h) {
			continue
		}
		// h is maximal under p when no other active prefix sits strictly
		// between p and h.
		maximal := true
		for m := range d.active {
			if m != h && m != p && p.Covers(m) && m.Covers(h) {
				maximal = false
				break
			}
		}
		if maximal {
			claimed += d.estimate(h, now)
		}
	}
	return claimed
}

// Observe feeds one packet: src's generalisation chain is folded into the
// filters at timestamp now (ns, non-decreasing), and the chain's prefixes
// are checked for admission or exit. Packets outside the hierarchy's
// address family are dropped without touching the mass tracker, so a
// dual-stack stream thresholds against its own family's mass only.
func (d *Detector) Observe(src addr.Addr, bytes int64, now int64) {
	if !d.cfg.Hierarchy.Match(src) {
		return
	}
	d.anc = d.cfg.Hierarchy.Ancestors(src, d.anc[:0])
	d.observeChain(bytes, now)
}

// observeChain is the shared per-packet body of Observe/ObserveKeys: it
// assumes d.anc already holds the packet's generalisation chain (leaf
// first) and applies the mass update, filter folds and admission pass.
func (d *Detector) observeChain(bytes int64, now int64) {
	if !d.started {
		d.started = true
		d.warmEnd = now + int64(d.cfg.Warmup)
	}
	d.pkts++
	w := float64(bytes)
	d.total.Add(w, now)
	if d.cfg.Sampled {
		d.rng += 0x9e3779b97f4a7c15
		l := int((hashx.Mix64(d.rng) >> 32) * uint64(d.levels) >> 32)
		d.filters[l].Add(d.cfg.Hierarchy.KeyOfPrefix(d.anc[l]), w, now)
	} else {
		for l, pre := range d.anc {
			d.filters[l].Add(d.cfg.Hierarchy.KeyOfPrefix(pre), w, now)
		}
	}
	if now < d.warmEnd {
		return
	}
	enterT := d.cfg.Phi * d.total.Value(now)
	exitT := enterT * d.cfg.ExitRatio
	// Bottom-up along the packet's own chain: children admit before
	// parents so the parent's conditioned mass sees the fresh claim.
	for _, p := range d.anc {
		raw := d.estimate(p, now)
		if _, isActive := d.active[p]; isActive {
			if raw < exitT || raw-d.claimedUnder(p, now) < exitT {
				d.deactivate(p, now)
			}
			continue
		}
		if raw < enterT {
			continue // cheap pre-check: conditioning only shrinks mass
		}
		if raw-d.claimedUnder(p, now) >= enterT {
			d.active[p] = now
			if d.cfg.OnEnter != nil {
				d.cfg.OnEnter(p, now)
			}
		}
	}
}

// ObserveBatch feeds a run of time-ordered packets. Admission checks are
// inherently per packet (each arrival can change the active set), so the
// batch form's gain is amortising the ingest spine's per-packet dispatch,
// not reordering work.
func (d *Detector) ObserveBatch(pkts []trace.Packet) {
	for i := range pkts {
		d.Observe(pkts[i].Src, int64(pkts[i].Size), pkts[i].Ts)
	}
}

// ObserveKeys feeds a columnar batch of pre-packed, time-ordered leaf
// keys. The generalisation chain is rebuilt from the leaf key by masking
// with the hierarchy's nested per-level masks (PrefixOfKey inverts the
// packing losslessly, so the chain is identical to Ancestors on the
// original address); everything after that is the shared per-packet
// admission body, so the final state is byte-identical to Observe calls
// on the matching substream.
func (d *Detector) ObserveKeys(b *trace.KeyBatch) {
	h := d.cfg.Hierarchy
	for i, key := range b.Keys {
		d.anc = d.anc[:0]
		for l, m := range d.masks {
			d.anc = append(d.anc, h.PrefixOfKey(key&m, l))
		}
		d.observeChain(int64(b.Sizes[i]), b.Ts[i])
	}
}

func (d *Detector) deactivate(p addr.Prefix, now int64) {
	delete(d.active, p)
	if d.cfg.OnExit != nil {
		d.cfg.OnExit(p, now)
	}
}

// Query re-validates the whole active set at time now and returns the
// current HHH set with decayed-mass estimates. Prefixes whose conditioned
// mass fell below the exit threshold are deactivated (with OnExit fired).
func (d *Detector) Query(now int64) hhh.Set {
	out := hhh.Set{}
	if len(d.active) == 0 {
		return out
	}
	exitT := d.cfg.Phi * d.total.Value(now) * d.cfg.ExitRatio

	// Process most-specific first so claims propagate upward exactly as
	// in the exact algorithm's bottom-up pass.
	prefixes := make([]addr.Prefix, 0, len(d.active))
	for p := range d.active {
		prefixes = append(prefixes, p)
	}
	// Sort by descending Bits (then address for determinism).
	for i := 1; i < len(prefixes); i++ {
		for j := i; j > 0 && less(prefixes[j], prefixes[j-1]); j-- {
			prefixes[j], prefixes[j-1] = prefixes[j-1], prefixes[j]
		}
	}

	type verdict struct {
		est     float64
		claim   float64 // mass this subtree passes to its nearest ancestor
		keep    bool
		cond    float64
		claimed float64 // accumulated claims from descendants
	}
	verdicts := make(map[addr.Prefix]*verdict, len(prefixes))
	for _, p := range prefixes {
		verdicts[p] = &verdict{est: d.estimate(p, now)}
	}
	for _, p := range prefixes {
		v := verdicts[p]
		v.cond = v.est - v.claimed
		if v.cond >= exitT {
			v.keep = true
			v.claim = v.est
		} else {
			v.claim = v.claimed // pass through descendants' claims
		}
		// Attribute the claim to the nearest remaining candidate ancestor.
		if v.claim > 0 {
			var best *verdict
			bestBits := -1
			for _, q := range prefixes {
				if q == p || !q.Covers(p) {
					continue
				}
				if int(q.Bits) > bestBits {
					bestBits = int(q.Bits)
					best = verdicts[q]
				}
			}
			if best != nil {
				best.claimed += v.claim
			}
		}
	}
	for _, p := range prefixes {
		v := verdicts[p]
		if !v.keep {
			d.deactivate(p, now)
			continue
		}
		out.Add(hhh.Item{
			Prefix:      p,
			Count:       int64(v.est),
			Conditioned: int64(v.cond),
		})
	}
	return out
}

// less orders prefixes most-specific-first, then by address.
func less(a, b addr.Prefix) bool {
	if a.Bits != b.Bits {
		return a.Bits > b.Bits
	}
	return a.Addr.Less(b.Addr)
}

// Merge folds detector o into d; o is not modified. Both detectors must
// be built from the same Config (hierarchy, filter shape, seed and decay
// law), so their per-level filters merge cell-wise (see tdbf.Filter.Merge
// — decay-to-common-time plus add, preserving the conservative
// overestimate) and the total mass trackers likewise. The active sets are
// unioned, keeping the earlier activation timestamp.
//
// In the sharded pipeline every shard admits against its *own* decayed
// mass — a fraction ~1/K of the global mass under hash partitioning — so
// the shard-local thresholds are proportionally lower and the union of
// shard active sets is a superset of the globally admissible candidates.
// A Query on the merged detector re-validates every candidate against
// the merged (global) mass and deactivates the over-admissions, so
// merged reports match a single detector's up to filter collision noise
// and partitioning variance on interior prefixes.
func (d *Detector) Merge(o *Detector) {
	if o == nil {
		return
	}
	if d.levels != o.levels || d.cfg.Hierarchy != o.cfg.Hierarchy {
		panic("continuous: Merge hierarchy mismatch")
	}
	for l := range d.filters {
		d.filters[l].Merge(o.filters[l])
	}
	d.total.Merge(o.total)
	for p, at := range o.active {
		if cur, ok := d.active[p]; !ok || at < cur {
			d.active[p] = at
		}
	}
	if o.started && (!d.started || o.warmEnd > d.warmEnd) {
		d.started = true
		d.warmEnd = o.warmEnd
	}
	d.pkts += o.pkts
}

// ActiveLen returns the size of the active set without revalidation.
func (d *Detector) ActiveLen() int { return len(d.active) }

// TotalMass returns the decayed total traffic mass at now.
func (d *Detector) TotalMass(now int64) float64 { return d.total.Value(now) }

// Packets returns the number of packets observed.
func (d *Detector) Packets() int64 { return d.pkts }

// SizeBytes returns the state footprint: the per-level filters plus the
// (bounded) active set.
func (d *Detector) SizeBytes() int {
	n := 0
	for _, f := range d.filters {
		n += f.SizeBytes()
	}
	return n + len(d.active)*24
}

// Reset returns the detector to its initial state (the RNG continues).
func (d *Detector) Reset() {
	for _, f := range d.filters {
		f.Reset()
	}
	d.total.Reset()
	d.active = make(map[addr.Prefix]int64)
	d.started = false
	d.warmEnd = 0
	d.pkts = 0
}
