package continuous

import (
	"math"
	"math/rand"
	"testing"
	"time"

	"hiddenhhh/internal/addr"
	"hiddenhhh/internal/tdbf"
)

const sec = int64(time.Second)

func byteH() addr.Hierarchy { return addr.NewIPv4Hierarchy(addr.Byte) }

func defaultCfg(phi float64, tau time.Duration) Config {
	return Config{
		Hierarchy: byteH(),
		Phi:       phi,
		Filter: tdbf.Config{
			Cells:  1 << 14,
			Hashes: 4,
			Decay:  tdbf.Exponential{Tau: tau},
		},
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := NewDetector(Config{Hierarchy: byteH(), Phi: 0}); err == nil {
		t.Error("zero phi should fail")
	}
	if _, err := NewDetector(Config{Hierarchy: byteH(), Phi: 2}); err == nil {
		t.Error("phi > 1 should fail")
	}
	if _, err := NewDetector(Config{Hierarchy: byteH(), Phi: 0.1}); err == nil {
		t.Error("missing decay should fail")
	}
	cfg := defaultCfg(0.1, time.Second)
	cfg.ExitRatio = 1.5
	if _, err := NewDetector(cfg); err == nil {
		t.Error("ExitRatio > 1 should fail")
	}
	if _, err := NewDetector(defaultCfg(0.1, time.Second)); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
}

// drive sends a steady background plus an optional heavy host.
func drive(d *Detector, seconds int, heavy addr.Addr, heavyShare float64, seed int64) int64 {
	rng := rand.New(rand.NewSource(seed))
	now := int64(0)
	const pps = 1000
	step := sec / pps
	for i := 0; i < seconds*pps; i++ {
		now += step
		if heavyShare > 0 && rng.Float64() < heavyShare {
			d.Observe(heavy, 1000, now)
		} else {
			// Diffuse background across the whole space.
			d.Observe(addr.From4Uint32(rng.Uint32()), 1000, now)
		}
	}
	return now
}

func TestDetectsSteadyHeavyHitter(t *testing.T) {
	d, err := NewDetector(defaultCfg(0.1, time.Second))
	if err != nil {
		t.Fatal(err)
	}
	heavy := addr.MustParseAddr("10.1.2.3")
	now := drive(d, 10, heavy, 0.4, 1) // 40% of bytes from one host
	set := d.Query(now)
	if !set.Contains(addr.Host(heavy)) {
		t.Fatalf("steady 40%% host not detected: %v", set)
	}
	it := set[addr.Host(heavy)]
	// Steady state mass ~ 0.4 * totalRate * tau = 0.4 * 1e6 B/s * 1s.
	want := 0.4 * 1000 * 1000.0
	rel := math.Abs(float64(it.Count)-want) / want
	if rel > 0.25 {
		t.Errorf("estimate %d vs expected ~%.0f (rel %.2f)", it.Count, want, rel)
	}
}

func TestNoDetectionsOnDiffuseTraffic(t *testing.T) {
	// All sources tiny: only the root aggregates enough mass.
	d, err := NewDetector(defaultCfg(0.1, time.Second))
	if err != nil {
		t.Fatal(err)
	}
	now := drive(d, 5, addr.Addr{}, 0, 2)
	set := d.Query(now)
	for p := range set {
		if p != addr.V4Root {
			t.Fatalf("unexpected non-root detection %v in diffuse traffic", p)
		}
	}
}

func TestDetectionExpiresAfterFlowStops(t *testing.T) {
	d, err := NewDetector(defaultCfg(0.1, time.Second))
	if err != nil {
		t.Fatal(err)
	}
	heavy := addr.MustParseAddr("10.1.2.3")
	now := drive(d, 10, heavy, 0.5, 3)
	if !d.Query(now).Contains(addr.Host(heavy)) {
		t.Fatal("precondition: heavy host detected")
	}
	// Flow stops; background continues for 10 tau.
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 10000; i++ {
		now += sec / 1000
		d.Observe(addr.From4Uint32(rng.Uint32()), 1000, now)
	}
	if d.Query(now).Contains(addr.Host(heavy)) {
		t.Fatal("stopped flow still reported after 10 tau")
	}
}

func TestBoundaryStraddlingBurstIsSeen(t *testing.T) {
	// The paper's motivating case: a burst centred on what would be a
	// disjoint-window boundary. The continuous detector must report it.
	cfg := defaultCfg(0.05, 2*time.Second)
	var entered []addr.Prefix
	cfg.OnEnter = func(p addr.Prefix, at int64) { entered = append(entered, p) }
	d, err := NewDetector(cfg)
	if err != nil {
		t.Fatal(err)
	}
	attacker := addr.MustParseAddr("203.0.113.66")
	rng := rand.New(rand.NewSource(5))
	now := int64(0)
	for i := 0; i < 20000; i++ { // 20 s of 1000 pps background
		now += sec / 1000
		d.Observe(addr.From4Uint32(rng.Uint32()), 1000, now)
		// Burst: 9.5 s - 10.5 s, attacker sends hard (10 extra pkts/ms).
		if now > 9500*int64(time.Millisecond) && now < 10500*int64(time.Millisecond) {
			for j := 0; j < 10; j++ {
				d.Observe(attacker, 1000, now)
			}
		}
	}
	seen := false
	for _, p := range entered {
		if p == addr.Host(attacker) {
			seen = true
		}
	}
	if !seen {
		t.Fatalf("boundary burst never entered the active set; events: %v", entered)
	}
	// And after the burst has decayed away it must not linger.
	if d.Query(now).Contains(addr.Host(attacker)) {
		t.Error("burst still active 10 s after it ended")
	}
}

func TestWarmupSuppressesEarlyDetections(t *testing.T) {
	cfg := defaultCfg(0.1, time.Second)
	cfg.Warmup = 5 * time.Second
	var enterTimes []int64
	cfg.OnEnter = func(_ addr.Prefix, at int64) { enterTimes = append(enterTimes, at) }
	d, err := NewDetector(cfg)
	if err != nil {
		t.Fatal(err)
	}
	drive(d, 10, addr.MustParseAddr("10.0.0.1"), 0.5, 6)
	for _, at := range enterTimes {
		if at < int64(5*time.Second) {
			t.Fatalf("detection at %v during warmup", time.Duration(at))
		}
	}
	if len(enterTimes) == 0 {
		t.Fatal("no detections after warmup")
	}
}

func TestConditioningSuppressesParent(t *testing.T) {
	// One heavy host inside an otherwise quiet /24: the host is an HHH;
	// the /24 (whose mass is entirely the host's) must be conditioned
	// away, not double-reported.
	d, err := NewDetector(defaultCfg(0.1, time.Second))
	if err != nil {
		t.Fatal(err)
	}
	heavy := addr.MustParseAddr("10.1.2.3")
	now := drive(d, 10, heavy, 0.4, 7)
	set := d.Query(now)
	if !set.Contains(addr.Host(heavy)) {
		t.Fatalf("host missing: %v", set)
	}
	if set.Contains(addr.MustParsePrefix("10.1.2.0/24")) {
		t.Fatalf("parent /24 reported despite conditioning: %v", set)
	}
}

func TestHierarchicalAggregationDetectsSubnet(t *testing.T) {
	// Many sources inside one /24, each individually light: only the /24
	// (and possibly coarser) should fire — the hierarchical case.
	d, err := NewDetector(defaultCfg(0.1, time.Second))
	if err != nil {
		t.Fatal(err)
	}
	subnet := addr.MustParseAddr("192.0.2.0")
	rng := rand.New(rand.NewSource(8))
	now := int64(0)
	for i := 0; i < 20000; i++ {
		now += sec / 2000
		if i%2 == 0 {
			d.Observe(addr.From4Uint32(subnet.V4()|uint32(rng.Intn(256))), 1000, now) // 50% share spread over /24
		} else {
			d.Observe(addr.From4Uint32(rng.Uint32()), 1000, now)
		}
	}
	set := d.Query(now)
	if !set.Contains(addr.MustParsePrefix("192.0.2.0/24")) {
		t.Fatalf("aggregated /24 not detected: %v", set)
	}
	for p := range set {
		if p.Bits == 32 && p.Contains(subnet) {
			t.Fatalf("individual host %v wrongly detected", p)
		}
	}
}

func TestSampledVariantDetects(t *testing.T) {
	cfg := defaultCfg(0.1, time.Second)
	cfg.Sampled = true
	cfg.Seed = 42
	d, err := NewDetector(cfg)
	if err != nil {
		t.Fatal(err)
	}
	heavy := addr.MustParseAddr("10.9.8.7")
	now := drive(d, 15, heavy, 0.5, 9)
	set := d.Query(now)
	found := false
	for p := range set {
		if p.Contains(heavy) && p.Bits > 0 {
			found = true
		}
	}
	if !found {
		t.Fatalf("sampled detector missed 50%% host: %v", set)
	}
}

func TestExitEventsFire(t *testing.T) {
	cfg := defaultCfg(0.1, time.Second)
	exits := 0
	cfg.OnExit = func(addr.Prefix, int64) { exits++ }
	d, err := NewDetector(cfg)
	if err != nil {
		t.Fatal(err)
	}
	heavy := addr.MustParseAddr("10.0.0.1")
	now := drive(d, 5, heavy, 0.5, 10)
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 10000; i++ {
		now += sec / 1000
		d.Observe(addr.From4Uint32(rng.Uint32()), 1000, now)
	}
	d.Query(now)
	if exits == 0 {
		t.Error("no exit events after flow stopped")
	}
}

func TestAccessors(t *testing.T) {
	d, err := NewDetector(defaultCfg(0.1, time.Second))
	if err != nil {
		t.Fatal(err)
	}
	d.Observe(addr.From4Uint32(1), 100, 1)
	if d.Packets() != 1 {
		t.Error("Packets")
	}
	if d.TotalMass(1) != 100 {
		t.Errorf("TotalMass = %v", d.TotalMass(1))
	}
	if d.SizeBytes() <= 0 {
		t.Error("SizeBytes")
	}
	if d.ActiveLen() != 0 {
		t.Error("ActiveLen")
	}
	d.Reset()
	if d.Packets() != 0 || d.TotalMass(2) != 0 {
		t.Error("Reset incomplete")
	}
}

func TestQueryEmptyDetector(t *testing.T) {
	d, err := NewDetector(defaultCfg(0.1, time.Second))
	if err != nil {
		t.Fatal(err)
	}
	if set := d.Query(0); set.Len() != 0 {
		t.Errorf("fresh detector reported %v", set)
	}
}

func BenchmarkObserve(b *testing.B) {
	d, err := NewDetector(defaultCfg(0.05, time.Second))
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		d.Observe(addr.From4Uint32(uint32(i)*2654435761), 1000, int64(i)*1000)
	}
}

func BenchmarkObserveSampled(b *testing.B) {
	cfg := defaultCfg(0.05, time.Second)
	cfg.Sampled = true
	d, err := NewDetector(cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		d.Observe(addr.From4Uint32(uint32(i)*2654435761), 1000, int64(i)*1000)
	}
}

// TestMergeIdentity: merging one detector into a fresh one of the same
// config and querying reproduces the original's report exactly (the K=1
// sharded case).
func TestMergeIdentity(t *testing.T) {
	cfg := defaultCfg(0.05, time.Second)
	src, err := NewDetector(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(11))
	now := int64(0)
	for i := 0; i < 30000; i++ {
		now += int64(100 * time.Microsecond)
		if i%3 == 0 {
			src.Observe(addr.MustParseAddr("10.1.2.3"), 1000, now)
		} else {
			src.Observe(addr.From4Uint32(rng.Uint32()), 400, now)
		}
	}
	dst, err := NewDetector(cfg)
	if err != nil {
		t.Fatal(err)
	}
	dst.Merge(src)
	if got, want := dst.TotalMass(now), src.TotalMass(now); got != want {
		t.Errorf("merged mass %g != %g", got, want)
	}
	want, got := src.Query(now), dst.Query(now)
	if !got.Equal(want) {
		t.Fatalf("merged copy differs:\n got %v\nwant %v", got, want)
	}
	if !want.Contains(addr.MustParsePrefix("10.1.2.3/32")) {
		t.Fatalf("heavy host missing from %v", want)
	}
}

// TestMergePartitionedShards: splitting a stream by source hash across
// two detectors and merging approximates the single-detector view — the
// heavy host (whose packets all land in one shard) must be reported with
// its full mass, and the merged total must equal the union's.
func TestMergePartitionedShards(t *testing.T) {
	cfg := defaultCfg(0.05, time.Second)
	mk := func() *Detector {
		d, err := NewDetector(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return d
	}
	shards := []*Detector{mk(), mk()}
	whole := mk()
	rng := rand.New(rand.NewSource(12))
	heavy := addr.MustParseAddr("10.1.2.3")
	now := int64(0)
	for i := 0; i < 30000; i++ {
		now += int64(100 * time.Microsecond)
		src, w := addr.From4Uint32(rng.Uint32()), int64(400)
		if i%3 == 0 {
			src, w = heavy, 1000
		}
		shards[src.V4()&1].Observe(src, w, now)
		whole.Observe(src, w, now)
	}
	merged := mk()
	merged.Merge(shards[0])
	merged.Merge(shards[1])
	gotMass, wantMass := merged.TotalMass(now), whole.TotalMass(now)
	if diff := gotMass - wantMass; diff > 1e-6*wantMass || diff < -1e-6*wantMass {
		t.Errorf("merged mass %g != union %g", gotMass, wantMass)
	}
	set := merged.Query(now)
	if !set.Contains(addr.MustParsePrefix("10.1.2.3/32")) {
		t.Fatalf("heavy host missing from merged report %v", set)
	}
	// Shard-local admission uses shard-local mass, so candidates are a
	// superset; after re-validation nothing below the global threshold
	// may survive.
	exitT := cfg.Phi * merged.TotalMass(now) * 0.9
	for p, it := range set {
		if float64(it.Conditioned) < exitT-1 {
			t.Errorf("%v survived with conditioned %d below exit threshold %g", p, it.Conditioned, exitT)
		}
	}
}

// TestMergeHierarchyMismatchPanics pins the guard.
func TestMergeHierarchyMismatchPanics(t *testing.T) {
	a, err := NewDetector(defaultCfg(0.1, time.Second))
	if err != nil {
		t.Fatal(err)
	}
	cfg := defaultCfg(0.1, time.Second)
	cfg.Hierarchy = addr.NewIPv4Hierarchy(addr.Nibble)
	b, err := NewDetector(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on hierarchy mismatch")
		}
	}()
	a.Merge(b)
}

// TestWarmupAnchorsAtFirstPacket: warmup is measured from the first
// observed packet, not from timestamp zero, so an epoch-stamped trace
// warms up identically to a zero-based one.
func TestWarmupAnchorsAtFirstPacket(t *testing.T) {
	epoch := int64(1_700_000_000_000_000_000)
	cfg := defaultCfg(0.1, time.Second)
	cfg.Warmup = 5 * time.Second
	var enterTimes []int64
	cfg.OnEnter = func(_ addr.Prefix, at int64) { enterTimes = append(enterTimes, at) }
	d, err := NewDetector(cfg)
	if err != nil {
		t.Fatal(err)
	}
	now := epoch
	for i := 0; i < 12000; i++ { // 12 s at 1000 pps, heavy throughout
		now += int64(time.Millisecond)
		d.Observe(addr.MustParseAddr("10.0.0.1"), 1000, now)
	}
	if len(enterTimes) == 0 {
		t.Fatal("no detections after warmup")
	}
	for _, at := range enterTimes {
		if at < epoch+int64(5*time.Second) {
			t.Fatalf("detection %v into the trace, during warmup", time.Duration(at-epoch))
		}
	}
}
