package continuous

import (
	"math/rand"
	"testing"
	"time"

	"hiddenhhh/internal/addr"
	"hiddenhhh/internal/tdbf"
	"hiddenhhh/internal/trace"
)

// dualStackStream synthesises a time-ordered mixed-family stream so the
// ObserveBatch family filter and the key-path chain reconstruction both
// get exercised against per-packet Observe.
func dualStackStream(seed int64, n int) []trace.Packet {
	rng := rand.New(rand.NewSource(seed))
	out := make([]trace.Packet, n)
	step := int64(10 * time.Second / time.Duration(n))
	for i := range out {
		var src addr.Addr
		if rng.Intn(4) == 0 {
			src = addr.FromParts(0x2001_0db8_0000_0000|uint64(rng.Intn(6))<<16, uint64(i))
		} else {
			src = addr.From4(10, byte(rng.Intn(4)), byte(rng.Intn(8)), byte(rng.Intn(40)))
		}
		out[i] = trace.Packet{Ts: int64(i) * step, Src: src, Size: uint32(40 + rng.Intn(1460))}
	}
	return out
}

// TestContinuousKeyBatchMatchesObserve pins the key-path ingest to the
// per-packet path: ObserveKeys (fed producer-packed KeyBatches, so each
// packet's generalisation chain is rebuilt from the leaf key by masking)
// must leave the detector in a byte-identical state to Observe calls —
// same admissions, same exits, same filter folds — for both families,
// with and without level sampling, across awkward batch boundaries.
func TestContinuousKeyBatchMatchesObserve(t *testing.T) {
	pkts := dualStackStream(17, 16000)
	last := pkts[len(pkts)-1].Ts
	for name, h := range map[string]addr.Hierarchy{
		"ipv4-byte":   addr.NewIPv4Hierarchy(addr.Byte),
		"ipv6-hextet": addr.NewIPv6Hierarchy(addr.Hextet),
	} {
		for _, sampled := range []bool{false, true} {
			name := name
			if sampled {
				name += "-sampled"
			}
			t.Run(name, func(t *testing.T) {
				mk := func() *Detector {
					d, err := NewDetector(Config{
						Hierarchy: h,
						Phi:       0.05,
						Filter: tdbf.Config{
							Cells:  1 << 12,
							Hashes: 4,
							Decay:  tdbf.Exponential{Tau: 2 * time.Second},
						},
						Sampled: sampled,
						Seed:    7,
					})
					if err != nil {
						t.Fatal(err)
					}
					return d
				}
				ref := mk()
				for i := range pkts {
					ref.Observe(pkts[i].Src, int64(pkts[i].Size), pkts[i].Ts)
				}
				want := ref.Query(last)
				for _, bs := range []int{1, 7, 97, len(pkts)} {
					got := mk()
					kb := trace.NewKeyBatch(bs)
					for off := 0; off < len(pkts); off += bs {
						end := min(off+bs, len(pkts))
						kb.Reset()
						kb.AppendPackets(h, pkts[off:end])
						got.ObserveKeys(kb)
					}
					if got.Packets() != ref.Packets() {
						t.Fatalf("chunk %d: packets %d != per-packet %d", bs, got.Packets(), ref.Packets())
					}
					if got.TotalMass(last) != ref.TotalMass(last) {
						t.Fatalf("chunk %d: mass %v != per-packet %v", bs, got.TotalMass(last), ref.TotalMass(last))
					}
					if got.ActiveLen() != ref.ActiveLen() {
						t.Fatalf("chunk %d: active %d != per-packet %d", bs, got.ActiveLen(), ref.ActiveLen())
					}
					if gs := got.Query(last); !gs.Equal(want) {
						t.Fatalf("chunk %d: query diverged:\nbatch: %v\nref:   %v", bs, gs, want)
					}
				}
			})
		}
	}
}
