// Serialization seam for the continuous detector: a read-only state
// view and a validated restore constructor used by the internal/wire
// codec. A restored detector is merge- and query-equivalent to the one
// that was serialized; unlike Merge it validates instead of panicking,
// because its inputs ultimately come off the network.

package continuous

import (
	"fmt"

	"hiddenhhh/internal/addr"
	"hiddenhhh/internal/tdbf"
)

// ActiveEntry is one currently active HHH prefix with its activation
// timestamp, the serializable form of the detector's active set.
type ActiveEntry struct {
	Prefix addr.Prefix
	At     int64
}

// State is the serializable state of a Detector: the warmup anchor, the
// packet count, the decayed total-mass tracker, the active set, and the
// per-level filters. The filter pointers returned by State view live
// storage — treat as read-only.
type State struct {
	Started bool
	WarmEnd int64
	Packets int64
	Total   tdbf.MassState
	Active  []ActiveEntry
	Filters []*tdbf.Filter
}

// Config returns the detector's configuration (defaults applied). Note
// it carries the OnEnter/OnExit callbacks, which do not serialize.
func (d *Detector) Config() Config { return d.cfg }

// Sampler returns the splitmix64 level-sampling state (meaningful only
// when Config.Sampled is set).
func (d *Detector) Sampler() uint64 { return d.rng }

// State returns a view of the detector's serializable state. The active
// set is copied in unspecified order; the filters are the live ones.
func (d *Detector) State() State {
	st := State{
		Started: d.started,
		WarmEnd: d.warmEnd,
		Packets: d.pkts,
		Total:   d.total.State(),
		Active:  make([]ActiveEntry, 0, len(d.active)),
		Filters: d.filters,
	}
	for p, at := range d.active {
		st.Active = append(st.Active, ActiveEntry{Prefix: p, At: at})
	}
	return st
}

// Restore rebuilds a detector from cfg, the sampler state, and
// serialized state. Per-level filters are adopted (typically from
// tdbf.RestoreFilter) and must have the shape, per-level derived seed
// and decay law NewDetector would have built from cfg; active prefixes
// must lie on the hierarchy's lattice.
func Restore(cfg Config, sampler uint64, st State) (*Detector, error) {
	d, err := NewDetector(cfg)
	if err != nil {
		return nil, err
	}
	if len(st.Filters) != d.levels {
		return nil, fmt.Errorf("continuous: restore: %d filters for %d-level hierarchy", len(st.Filters), d.levels)
	}
	for l, f := range st.Filters {
		if f == nil {
			return nil, fmt.Errorf("continuous: restore: nil filter at level %d", l)
		}
		want := d.filters[l]
		if f.Cells() != want.Cells() || f.Hashes() != want.Hashes() || f.Seed() != want.Seed() ||
			f.Decay().String() != want.Decay().String() {
			return nil, fmt.Errorf("continuous: restore: level %d filter shape/seed/decay differs from config", l)
		}
		d.filters[l] = f
	}
	total, err := tdbf.RestoreMassTracker(cfg.Filter.Decay, st.Total)
	if err != nil {
		return nil, err
	}
	d.total = total
	for _, e := range st.Active {
		if !cfg.Hierarchy.OnLattice(e.Prefix) {
			return nil, fmt.Errorf("continuous: restore: active prefix %v off the hierarchy lattice", e.Prefix)
		}
		if cur, ok := d.active[e.Prefix]; ok && cur <= e.At {
			continue
		}
		d.active[e.Prefix] = e.At
	}
	if st.Packets < 0 {
		return nil, fmt.Errorf("continuous: restore: negative packet count %d", st.Packets)
	}
	d.started = st.Started
	d.warmEnd = st.WarmEnd
	d.pkts = st.Packets
	d.rng = sampler
	return d, nil
}
