package pcap

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"math/rand"
	"testing"

	"hiddenhhh/internal/trace"
)

// TestReaderNeverPanicsOnGarbage feeds the reader random byte streams and
// randomly corrupted valid captures: it must always return an error or
// EOF, never panic and never loop forever.
func TestReaderNeverPanicsOnGarbage(t *testing.T) {
	rng := rand.New(rand.NewSource(1))

	drain := func(data []byte) {
		defer func() {
			if r := recover(); r != nil {
				t.Fatalf("reader panicked on input of %d bytes: %v", len(data), r)
			}
		}()
		r, err := NewReader(bytes.NewReader(data))
		if err != nil {
			return // rejecting the header is fine
		}
		var p trace.Packet
		for i := 0; i < 1e6; i++ {
			if err := r.Next(&p); err != nil {
				if !errors.Is(err, io.EOF) && !errors.Is(err, ErrBadCapture) {
					t.Fatalf("unexpected error type: %v", err)
				}
				return
			}
		}
		t.Fatal("reader did not terminate")
	}

	// Pure garbage of assorted sizes.
	for i := 0; i < 200; i++ {
		data := make([]byte, rng.Intn(512))
		rng.Read(data)
		drain(data)
	}

	// Valid captures with random single-byte corruptions.
	pkts := mkPackets(20, 2)
	var buf bytes.Buffer
	w, _ := NewWriter(&buf)
	for i := range pkts {
		w.Write(&pkts[i])
	}
	w.Close()
	valid := buf.Bytes()
	for i := 0; i < 300; i++ {
		data := append([]byte(nil), valid...)
		for j := 0; j < 1+rng.Intn(4); j++ {
			data[rng.Intn(len(data))] ^= byte(1 + rng.Intn(255))
		}
		drain(data)
	}

	// Truncations at every prefix length of a small capture.
	for n := 0; n < len(valid); n += 7 {
		drain(valid[:n])
	}
}

// TestReaderRejectsAbsurdCaplen guards the allocation path: a record
// header claiming a giant capture length must error out, not allocate.
func TestReaderRejectsAbsurdCaplen(t *testing.T) {
	var buf bytes.Buffer
	var hdr [24]byte
	binary.LittleEndian.PutUint32(hdr[0:4], magicNsecBE)
	binary.LittleEndian.PutUint16(hdr[4:6], 2)
	binary.LittleEndian.PutUint32(hdr[16:20], 65535) // snaplen
	binary.LittleEndian.PutUint32(hdr[20:24], LinkEthernet)
	buf.Write(hdr[:])
	var rec [16]byte
	binary.LittleEndian.PutUint32(rec[8:12], 1<<30) // absurd caplen
	buf.Write(rec[:])

	r, err := NewReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	var p trace.Packet
	if err := r.Next(&p); !errors.Is(err, ErrBadCapture) {
		t.Fatalf("expected ErrBadCapture, got %v", err)
	}
}
