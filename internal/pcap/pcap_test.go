package pcap

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"math/rand"
	"path/filepath"
	"testing"

	"hiddenhhh/internal/addr"
	"hiddenhhh/internal/trace"
)

// mkPackets synthesises a deterministic dual-stack packet mix (roughly
// half IPv4 frames, half IPv6) with family-appropriate protocols.
func mkPackets(n int, seed int64) []trace.Packet {
	rng := rand.New(rand.NewSource(seed))
	pkts := make([]trace.Packet, n)
	ts := int64(0)
	for i := range pkts {
		ts += rng.Int63n(1e7)
		v6 := rng.Intn(2) == 1
		proto := []uint8{trace.ProtoTCP, trace.ProtoUDP, trace.ProtoICMP}[rng.Intn(3)]
		src, dst := addr.From4Uint32(rng.Uint32()), addr.From4Uint32(rng.Uint32())
		minSize := 60
		if v6 {
			src = addr.FromParts(0x2001_0db8_0000_0000|rng.Uint64()&0xffff_ffff, rng.Uint64())
			dst = addr.FromParts(0x2400_cb00_0000_0000|rng.Uint64()&0xffff_ffff, rng.Uint64())
			if proto == trace.ProtoICMP {
				proto = trace.ProtoICMPv6
			}
			// The synthesised v6 frame headers reach 74 bytes (TCP); sizes
			// below that are floored on write and would not round-trip.
			minSize = 74
		}
		pkts[i] = trace.Packet{
			Ts:      ts,
			Src:     src,
			Dst:     dst,
			SrcPort: uint16(rng.Intn(65536)),
			DstPort: uint16(rng.Intn(65536)),
			Proto:   proto,
			Size:    uint32(minSize + rng.Intn(1400)),
		}
		if proto == trace.ProtoICMP || proto == trace.ProtoICMPv6 {
			pkts[i].SrcPort, pkts[i].DstPort = 0, 0
		}
	}
	return pkts
}

// mkPackets4 is mkPackets restricted to IPv4, for the v4-specific frame
// layout tests.
func mkPackets4(n int, seed int64) []trace.Packet {
	pkts := mkPackets(2*n+16, seed)
	out := pkts[:0]
	for i := range pkts {
		if pkts[i].Src.Is4() && len(out) < n {
			out = append(out, pkts[i])
		}
	}
	return out[:n]
}

func TestRoundTrip(t *testing.T) {
	pkts := mkPackets(500, 1)
	var buf bytes.Buffer
	w, err := NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for i := range pkts {
		if err := w.Write(&pkts[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if w.Count() != 500 {
		t.Errorf("Count = %d", w.Count())
	}

	r, err := NewReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if r.LinkType() != LinkEthernet {
		t.Errorf("link type %d", r.LinkType())
	}
	got, err := trace.Collect(r, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(pkts) {
		t.Fatalf("read %d packets, want %d", len(got), len(pkts))
	}
	for i := range pkts {
		if got[i] != pkts[i] {
			t.Fatalf("packet %d: got %+v want %+v", i, got[i], pkts[i])
		}
	}
	if r.Skipped() != 0 {
		t.Errorf("skipped %d", r.Skipped())
	}
}

func TestRoundTripFile(t *testing.T) {
	pkts := mkPackets(100, 2)
	path := filepath.Join(t.TempDir(), "x.pcap")
	if err := WriteFile(path, pkts); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(pkts) {
		t.Fatalf("read %d, want %d", len(got), len(pkts))
	}
}

func TestChecksumValid(t *testing.T) {
	// The checksum must make the 16-bit ones-complement sum of the
	// header equal 0xffff.
	pkts := mkPackets4(1, 3)
	var buf bytes.Buffer
	w, _ := NewWriter(&buf)
	w.Write(&pkts[0])
	w.Close()
	raw := buf.Bytes()
	ip := raw[24+16+14 : 24+16+14+20]
	var sum uint32
	for i := 0; i < 20; i += 2 {
		sum += uint32(binary.BigEndian.Uint16(ip[i : i+2]))
	}
	for sum>>16 != 0 {
		sum = sum&0xffff + sum>>16
	}
	if sum != 0xffff {
		t.Errorf("header checksum invalid: folded sum %04x", sum)
	}
}

func TestSkipsNonIP(t *testing.T) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf)
	pkts := mkPackets(2, 4)
	w.Write(&pkts[0])
	w.Close()
	raw := buf.Bytes()

	// Append a hand-built ARP frame record.
	var rec [16]byte
	binary.LittleEndian.PutUint32(rec[8:12], 60)  // caplen
	binary.LittleEndian.PutUint32(rec[12:16], 60) // wirelen
	frame := make([]byte, 60)
	binary.BigEndian.PutUint16(frame[12:14], 0x0806) // ARP
	raw = append(raw, rec[:]...)
	raw = append(raw, frame...)
	// And the second real packet.
	var buf2 bytes.Buffer
	w2, _ := NewWriter(&buf2)
	w2.Write(&pkts[1])
	w2.Close()
	raw = append(raw, buf2.Bytes()[24:]...)

	r, err := NewReader(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	got, err := trace.Collect(r, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("decoded %d packets, want 2", len(got))
	}
	if r.Skipped() != 1 {
		t.Errorf("skipped = %d, want 1", r.Skipped())
	}
}

func TestRawLinkType(t *testing.T) {
	// Build a LINKTYPE_RAW capture by hand: IPv4 header directly.
	var buf bytes.Buffer
	var hdr [24]byte
	binary.LittleEndian.PutUint32(hdr[0:4], magicNsecBE)
	binary.LittleEndian.PutUint16(hdr[4:6], 2)
	binary.LittleEndian.PutUint16(hdr[6:8], 4)
	binary.LittleEndian.PutUint32(hdr[16:20], 65535)
	binary.LittleEndian.PutUint32(hdr[20:24], LinkRaw)
	buf.Write(hdr[:])

	ip := make([]byte, 28)
	ip[0] = 0x45
	ip[9] = trace.ProtoUDP
	binary.BigEndian.PutUint32(ip[12:16], 0x0a000001)
	binary.BigEndian.PutUint32(ip[16:20], 0x0a000002)
	binary.BigEndian.PutUint16(ip[20:22], 1234)
	binary.BigEndian.PutUint16(ip[22:24], 53)
	var rec [16]byte
	binary.LittleEndian.PutUint32(rec[0:4], 1)
	binary.LittleEndian.PutUint32(rec[4:8], 500)
	binary.LittleEndian.PutUint32(rec[8:12], uint32(len(ip)))
	binary.LittleEndian.PutUint32(rec[12:16], 100)
	buf.Write(rec[:])
	buf.Write(ip)

	r, err := NewReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	var p trace.Packet
	if err := r.Next(&p); err != nil {
		t.Fatal(err)
	}
	if p.Src != addr.From4Uint32(0x0a000001) || p.Dst != addr.From4Uint32(0x0a000002) || p.SrcPort != 1234 || p.DstPort != 53 {
		t.Errorf("decoded %+v", p)
	}
	if p.Ts != 1e9+500 || p.Size != 100 {
		t.Errorf("ts=%d size=%d", p.Ts, p.Size)
	}
	if err := r.Next(&p); !errors.Is(err, io.EOF) {
		t.Errorf("expected EOF, got %v", err)
	}
}

func TestBadCaptures(t *testing.T) {
	// Bad magic.
	if _, err := NewReader(bytes.NewReader(make([]byte, 24))); !errors.Is(err, ErrBadCapture) {
		t.Errorf("zero magic: %v", err)
	}
	// Short header.
	if _, err := NewReader(bytes.NewReader([]byte{1, 2, 3})); !errors.Is(err, ErrBadCapture) {
		t.Errorf("short header: %v", err)
	}
	// Unsupported link type.
	var hdr [24]byte
	binary.LittleEndian.PutUint32(hdr[0:4], magicUsecBE)
	binary.LittleEndian.PutUint16(hdr[4:6], 2)
	binary.LittleEndian.PutUint32(hdr[20:24], 228) // LINKTYPE_IPV4? unsupported here
	if _, err := NewReader(bytes.NewReader(hdr[:])); !errors.Is(err, ErrBadCapture) {
		t.Errorf("unsupported link: %v", err)
	}
	// Truncated packet data.
	var buf bytes.Buffer
	w, _ := NewWriter(&buf)
	pkts := mkPackets4(1, 5)
	w.Write(&pkts[0])
	w.Close()
	trunc := buf.Bytes()[:len(buf.Bytes())-10]
	r, err := NewReader(bytes.NewReader(trunc))
	if err != nil {
		t.Fatal(err)
	}
	var p trace.Packet
	if err := r.Next(&p); !errors.Is(err, ErrBadCapture) {
		t.Errorf("truncated: %v", err)
	}
}

func TestGeneratorToPcap(t *testing.T) {
	// End-to-end: synthetic trace -> pcap -> back, preserving the fields
	// the analyses use.
	pkts := mkPackets(1000, 6)
	var buf bytes.Buffer
	w, _ := NewWriter(&buf)
	for i := range pkts {
		w.Write(&pkts[i])
	}
	w.Close()
	r, err := NewReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	got, err := trace.Collect(r, 0)
	if err != nil {
		t.Fatal(err)
	}
	var wantBytes, gotBytes int64
	for i := range pkts {
		wantBytes += int64(pkts[i].Size)
		gotBytes += int64(got[i].Size)
	}
	if wantBytes != gotBytes {
		t.Errorf("byte volume changed: %d -> %d", wantBytes, gotBytes)
	}
}

func BenchmarkWrite(b *testing.B) {
	pkts := mkPackets(1, 7)
	w, _ := NewWriter(io.Discard)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := w.Write(&pkts[0]); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRead(b *testing.B) {
	pkts := mkPackets(10000, 8)
	var buf bytes.Buffer
	w, _ := NewWriter(&buf)
	for i := range pkts {
		w.Write(&pkts[i])
	}
	w.Close()
	data := buf.Bytes()
	b.ReportAllocs()
	b.ResetTimer()
	var p trace.Packet
	for i := 0; i < b.N; {
		r, _ := NewReader(bytes.NewReader(data))
		for ; i < b.N; i++ {
			if err := r.Next(&p); err != nil {
				break
			}
		}
	}
}

func TestMixedFamilyRoundTrip(t *testing.T) {
	// A v4 source talking to a v6 destination (and vice versa) cannot be
	// expressed in an IPv4 frame, but an IPv6 frame carries IPv4-mapped
	// addresses losslessly — both directions must round-trip exactly.
	pkts := []trace.Packet{
		{Ts: 1, Src: addr.From4(10, 0, 0, 1), Dst: addr.MustParseAddr("2001:db8::7"), SrcPort: 1, DstPort: 2, Proto: trace.ProtoTCP, Size: 200},
		{Ts: 2, Src: addr.MustParseAddr("2001:db8::7"), Dst: addr.From4(10, 0, 0, 1), SrcPort: 3, DstPort: 4, Proto: trace.ProtoUDP, Size: 200},
	}
	var buf bytes.Buffer
	w, _ := NewWriter(&buf)
	for i := range pkts {
		if err := w.Write(&pkts[i]); err != nil {
			t.Fatal(err)
		}
	}
	w.Close()
	r, err := NewReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	got, err := trace.Collect(r, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0] != pkts[0] || got[1] != pkts[1] {
		t.Fatalf("mixed-family round trip:\n got %+v\nwant %+v", got, pkts)
	}
}
