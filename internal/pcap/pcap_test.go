package pcap

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"math/rand"
	"path/filepath"
	"testing"

	"hiddenhhh/internal/ipv4"
	"hiddenhhh/internal/trace"
)

func mkPackets(n int, seed int64) []trace.Packet {
	rng := rand.New(rand.NewSource(seed))
	pkts := make([]trace.Packet, n)
	ts := int64(0)
	for i := range pkts {
		ts += rng.Int63n(1e7)
		proto := []uint8{trace.ProtoTCP, trace.ProtoUDP, trace.ProtoICMP}[rng.Intn(3)]
		pkts[i] = trace.Packet{
			Ts:      ts,
			Src:     ipv4.Addr(rng.Uint32()),
			Dst:     ipv4.Addr(rng.Uint32()),
			SrcPort: uint16(rng.Intn(65536)),
			DstPort: uint16(rng.Intn(65536)),
			Proto:   proto,
			Size:    uint32(60 + rng.Intn(1400)),
		}
		if proto == trace.ProtoICMP {
			pkts[i].SrcPort, pkts[i].DstPort = 0, 0
		}
	}
	return pkts
}

func TestRoundTrip(t *testing.T) {
	pkts := mkPackets(500, 1)
	var buf bytes.Buffer
	w, err := NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for i := range pkts {
		if err := w.Write(&pkts[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if w.Count() != 500 {
		t.Errorf("Count = %d", w.Count())
	}

	r, err := NewReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if r.LinkType() != LinkEthernet {
		t.Errorf("link type %d", r.LinkType())
	}
	got, err := trace.Collect(r, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(pkts) {
		t.Fatalf("read %d packets, want %d", len(got), len(pkts))
	}
	for i := range pkts {
		if got[i] != pkts[i] {
			t.Fatalf("packet %d: got %+v want %+v", i, got[i], pkts[i])
		}
	}
	if r.Skipped() != 0 {
		t.Errorf("skipped %d", r.Skipped())
	}
}

func TestRoundTripFile(t *testing.T) {
	pkts := mkPackets(100, 2)
	path := filepath.Join(t.TempDir(), "x.pcap")
	if err := WriteFile(path, pkts); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(pkts) {
		t.Fatalf("read %d, want %d", len(got), len(pkts))
	}
}

func TestChecksumValid(t *testing.T) {
	// The checksum must make the 16-bit ones-complement sum of the
	// header equal 0xffff.
	pkts := mkPackets(1, 3)
	var buf bytes.Buffer
	w, _ := NewWriter(&buf)
	w.Write(&pkts[0])
	w.Close()
	raw := buf.Bytes()
	ip := raw[24+16+14 : 24+16+14+20]
	var sum uint32
	for i := 0; i < 20; i += 2 {
		sum += uint32(binary.BigEndian.Uint16(ip[i : i+2]))
	}
	for sum>>16 != 0 {
		sum = sum&0xffff + sum>>16
	}
	if sum != 0xffff {
		t.Errorf("header checksum invalid: folded sum %04x", sum)
	}
}

func TestSkipsNonIPv4(t *testing.T) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf)
	pkts := mkPackets(2, 4)
	w.Write(&pkts[0])
	w.Close()
	raw := buf.Bytes()

	// Append a hand-built ARP frame record.
	var rec [16]byte
	binary.LittleEndian.PutUint32(rec[8:12], 60)  // caplen
	binary.LittleEndian.PutUint32(rec[12:16], 60) // wirelen
	frame := make([]byte, 60)
	binary.BigEndian.PutUint16(frame[12:14], 0x0806) // ARP
	raw = append(raw, rec[:]...)
	raw = append(raw, frame...)
	// And the second real packet.
	var buf2 bytes.Buffer
	w2, _ := NewWriter(&buf2)
	w2.Write(&pkts[1])
	w2.Close()
	raw = append(raw, buf2.Bytes()[24:]...)

	r, err := NewReader(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	got, err := trace.Collect(r, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("decoded %d packets, want 2", len(got))
	}
	if r.Skipped() != 1 {
		t.Errorf("skipped = %d, want 1", r.Skipped())
	}
}

func TestRawLinkType(t *testing.T) {
	// Build a LINKTYPE_RAW capture by hand: IPv4 header directly.
	var buf bytes.Buffer
	var hdr [24]byte
	binary.LittleEndian.PutUint32(hdr[0:4], magicNsecBE)
	binary.LittleEndian.PutUint16(hdr[4:6], 2)
	binary.LittleEndian.PutUint16(hdr[6:8], 4)
	binary.LittleEndian.PutUint32(hdr[16:20], 65535)
	binary.LittleEndian.PutUint32(hdr[20:24], LinkRaw)
	buf.Write(hdr[:])

	ip := make([]byte, 28)
	ip[0] = 0x45
	ip[9] = trace.ProtoUDP
	binary.BigEndian.PutUint32(ip[12:16], 0x0a000001)
	binary.BigEndian.PutUint32(ip[16:20], 0x0a000002)
	binary.BigEndian.PutUint16(ip[20:22], 1234)
	binary.BigEndian.PutUint16(ip[22:24], 53)
	var rec [16]byte
	binary.LittleEndian.PutUint32(rec[0:4], 1)
	binary.LittleEndian.PutUint32(rec[4:8], 500)
	binary.LittleEndian.PutUint32(rec[8:12], uint32(len(ip)))
	binary.LittleEndian.PutUint32(rec[12:16], 100)
	buf.Write(rec[:])
	buf.Write(ip)

	r, err := NewReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	var p trace.Packet
	if err := r.Next(&p); err != nil {
		t.Fatal(err)
	}
	if p.Src != 0x0a000001 || p.Dst != 0x0a000002 || p.SrcPort != 1234 || p.DstPort != 53 {
		t.Errorf("decoded %+v", p)
	}
	if p.Ts != 1e9+500 || p.Size != 100 {
		t.Errorf("ts=%d size=%d", p.Ts, p.Size)
	}
	if err := r.Next(&p); !errors.Is(err, io.EOF) {
		t.Errorf("expected EOF, got %v", err)
	}
}

func TestBadCaptures(t *testing.T) {
	// Bad magic.
	if _, err := NewReader(bytes.NewReader(make([]byte, 24))); !errors.Is(err, ErrBadCapture) {
		t.Errorf("zero magic: %v", err)
	}
	// Short header.
	if _, err := NewReader(bytes.NewReader([]byte{1, 2, 3})); !errors.Is(err, ErrBadCapture) {
		t.Errorf("short header: %v", err)
	}
	// Unsupported link type.
	var hdr [24]byte
	binary.LittleEndian.PutUint32(hdr[0:4], magicUsecBE)
	binary.LittleEndian.PutUint16(hdr[4:6], 2)
	binary.LittleEndian.PutUint32(hdr[20:24], 228) // LINKTYPE_IPV4? unsupported here
	if _, err := NewReader(bytes.NewReader(hdr[:])); !errors.Is(err, ErrBadCapture) {
		t.Errorf("unsupported link: %v", err)
	}
	// Truncated packet data.
	var buf bytes.Buffer
	w, _ := NewWriter(&buf)
	pkts := mkPackets(1, 5)
	w.Write(&pkts[0])
	w.Close()
	trunc := buf.Bytes()[:len(buf.Bytes())-10]
	r, err := NewReader(bytes.NewReader(trunc))
	if err != nil {
		t.Fatal(err)
	}
	var p trace.Packet
	if err := r.Next(&p); !errors.Is(err, ErrBadCapture) {
		t.Errorf("truncated: %v", err)
	}
}

func TestGeneratorToPcap(t *testing.T) {
	// End-to-end: synthetic trace -> pcap -> back, preserving the fields
	// the analyses use.
	pkts := mkPackets(1000, 6)
	var buf bytes.Buffer
	w, _ := NewWriter(&buf)
	for i := range pkts {
		w.Write(&pkts[i])
	}
	w.Close()
	r, err := NewReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	got, err := trace.Collect(r, 0)
	if err != nil {
		t.Fatal(err)
	}
	var wantBytes, gotBytes int64
	for i := range pkts {
		wantBytes += int64(pkts[i].Size)
		gotBytes += int64(got[i].Size)
	}
	if wantBytes != gotBytes {
		t.Errorf("byte volume changed: %d -> %d", wantBytes, gotBytes)
	}
}

func BenchmarkWrite(b *testing.B) {
	pkts := mkPackets(1, 7)
	w, _ := NewWriter(io.Discard)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := w.Write(&pkts[0]); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRead(b *testing.B) {
	pkts := mkPackets(10000, 8)
	var buf bytes.Buffer
	w, _ := NewWriter(&buf)
	for i := range pkts {
		w.Write(&pkts[i])
	}
	w.Close()
	data := buf.Bytes()
	b.ReportAllocs()
	b.ResetTimer()
	var p trace.Packet
	for i := 0; i < b.N; {
		r, _ := NewReader(bytes.NewReader(data))
		for ; i < b.N; i++ {
			if err := r.Next(&p); err != nil {
				break
			}
		}
	}
}
