package pcap

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"testing"

	"hiddenhhh/internal/ipv4"
	"hiddenhhh/internal/trace"
)

// validCaptureBytes serialises pkts through the production Writer.
func validCaptureBytes(t testing.TB, pkts []trace.Packet) []byte {
	t.Helper()
	var buf bytes.Buffer
	pw, err := NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for i := range pkts {
		if err := pw.Write(&pkts[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := pw.Close(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// FuzzPcapReader feeds arbitrary bytes to the pcap parser: it must
// reject or decode, never panic, and never let a header-declared snaplen
// or record caplen size an unbounded allocation.
func FuzzPcapReader(f *testing.F) {
	valid := validCaptureBytes(f, []trace.Packet{
		{Ts: 1e9, Src: 0x0a000001, Dst: 0x0a000002, SrcPort: 1234, DstPort: 443, Proto: trace.ProtoTCP, Size: 1500},
		{Ts: 2e9, Src: 0x0a000003, Dst: 0x0a000004, SrcPort: 53, DstPort: 53, Proto: trace.ProtoUDP, Size: 80},
		{Ts: 3e9, Src: 0xc0a80001, Dst: 0xc0a80002, Proto: trace.ProtoICMP, Size: 64},
	})
	f.Add(valid)
	f.Add(valid[:24])             // header only
	f.Add(valid[:30])             // truncated record header
	f.Add(valid[:len(valid)-7])   // truncated packet data
	truncIP := bytes.Clone(valid) // caplen says more than the IPv4 header holds
	truncIP[24+8] = 15            // shrink first record's caplen below ethernet+ip
	f.Add(truncIP)
	hugeSnap := bytes.Clone(valid)
	binary.LittleEndian.PutUint32(hugeSnap[16:20], 0xffffffff) // hostile snaplen
	f.Add(hugeSnap)
	hugeCap := bytes.Clone(valid)
	binary.LittleEndian.PutUint32(hugeCap[16:20], 0xfffffff0) // huge snaplen
	binary.LittleEndian.PutUint32(hugeCap[24+8:24+12], 1<<30) // 1 GiB caplen
	f.Add(hugeCap)
	// Big-endian microsecond variant of the global header.
	be := bytes.Clone(valid)
	binary.BigEndian.PutUint32(be[0:4], magicUsecBE)
	f.Add(be)
	// Raw-IP link type.
	raw := bytes.Clone(valid)
	binary.LittleEndian.PutUint32(raw[20:24], LinkRaw)
	f.Add(raw)

	f.Fuzz(func(t *testing.T, data []byte) {
		pr, err := NewReader(bytes.NewReader(data))
		if err != nil {
			if !errors.Is(err, ErrBadCapture) {
				t.Fatalf("NewReader error outside ErrBadCapture: %v", err)
			}
			return
		}
		var p trace.Packet
		for {
			err := pr.Next(&p)
			if errors.Is(err, io.EOF) {
				return
			}
			if err != nil {
				if !errors.Is(err, ErrBadCapture) {
					t.Fatalf("Next error outside ErrBadCapture/EOF: %v", err)
				}
				return
			}
		}
	})
}

// FuzzPcapRoundTrip drives the writer/reader pair with arbitrary header
// fields. The pcap encoding is lossy by design — timestamps clamp to
// uint32 seconds, the wire length is floored at the synthesised header
// size — so the fuzz asserts the documented round-trip contract on the
// fields that must survive, over the domain the writer supports.
func FuzzPcapRoundTrip(f *testing.F) {
	f.Add(int64(0), uint32(0), uint32(0), uint16(0), uint16(0), uint8(trace.ProtoTCP), uint32(0))
	f.Add(int64(3e18), uint32(0xffffffff), uint32(1), uint16(65535), uint16(53), uint8(trace.ProtoUDP), uint32(70000))
	f.Add(int64(12345), uint32(7), uint32(9), uint16(1), uint16(2), uint8(trace.ProtoICMP), uint32(1500))
	f.Add(int64(5e9), uint32(8), uint32(10), uint16(3), uint16(4), uint8(99), uint32(40))
	f.Fuzz(func(t *testing.T, ts int64, src, dst uint32, sport, dport uint16, proto uint8, size uint32) {
		if ts < 0 || ts >= (1<<32)*int64(1e9) {
			return // outside the uint32-seconds domain the format stores
		}
		in := trace.Packet{
			Ts: ts, Src: ipv4.Addr(src), Dst: ipv4.Addr(dst),
			SrcPort: sport, DstPort: dport, Proto: proto, Size: size,
		}
		data := validCaptureBytes(t, []trace.Packet{in})
		pr, err := NewReader(bytes.NewReader(data))
		if err != nil {
			t.Fatal(err)
		}
		var out trace.Packet
		if err := pr.Next(&out); err != nil {
			t.Fatalf("decoding synthesised capture: %v", err)
		}
		if out.Ts != in.Ts || out.Src != in.Src || out.Dst != in.Dst || out.Proto != in.Proto {
			t.Fatalf("round trip: got %+v, want %+v", out, in)
		}
		// Ports survive only for protocols with synthesised L4 headers.
		if proto == trace.ProtoTCP || proto == trace.ProtoUDP {
			if out.SrcPort != in.SrcPort || out.DstPort != in.DstPort {
				t.Fatalf("ports: got %d/%d, want %d/%d", out.SrcPort, out.DstPort, in.SrcPort, in.DstPort)
			}
		}
		// Wire length is preserved unless below the synthesised headers.
		if int(size) >= 14+20+20 && out.Size != in.Size {
			t.Fatalf("size: got %d, want %d", out.Size, in.Size)
		}
		if err := pr.Next(&out); !errors.Is(err, io.EOF) {
			t.Fatalf("expected EOF after 1 record, got %v", err)
		}
	})
}
