package pcap

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"testing"

	"hiddenhhh/internal/addr"
	"hiddenhhh/internal/trace"
)

// validCaptureBytes serialises pkts through the production Writer.
func validCaptureBytes(t testing.TB, pkts []trace.Packet) []byte {
	t.Helper()
	var buf bytes.Buffer
	pw, err := NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for i := range pkts {
		if err := pw.Write(&pkts[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := pw.Close(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// FuzzPcapReader feeds arbitrary bytes to the pcap parser: it must
// reject or decode, never panic, and never let a header-declared snaplen
// or record caplen size an unbounded allocation — on either IP family,
// including hostile IPv6 extension-header chains.
func FuzzPcapReader(f *testing.F) {
	valid := validCaptureBytes(f, []trace.Packet{
		{Ts: 1e9, Src: addr.From4Uint32(0x0a000001), Dst: addr.From4Uint32(0x0a000002), SrcPort: 1234, DstPort: 443, Proto: trace.ProtoTCP, Size: 1500},
		{Ts: 2e9, Src: addr.MustParseAddr("2001:db8::1"), Dst: addr.MustParseAddr("2400:cb00::2"), SrcPort: 53, DstPort: 53, Proto: trace.ProtoUDP, Size: 80},
		{Ts: 3e9, Src: addr.MustParseAddr("fe80::1"), Dst: addr.MustParseAddr("ff02::1"), Proto: trace.ProtoICMPv6, Size: 64},
		{Ts: 4e9, Src: addr.From4Uint32(0xc0a80001), Dst: addr.From4Uint32(0xc0a80002), Proto: trace.ProtoICMP, Size: 64},
	})
	f.Add(valid)
	f.Add(valid[:24])             // header only
	f.Add(valid[:30])             // truncated record header
	f.Add(valid[:len(valid)-7])   // truncated packet data
	truncIP := bytes.Clone(valid) // caplen says more than the IPv4 header holds
	truncIP[24+8] = 15            // shrink first record's caplen below ethernet+ip
	f.Add(truncIP)
	hugeSnap := bytes.Clone(valid)
	binary.LittleEndian.PutUint32(hugeSnap[16:20], 0xffffffff) // hostile snaplen
	f.Add(hugeSnap)
	hugeCap := bytes.Clone(valid)
	binary.LittleEndian.PutUint32(hugeCap[16:20], 0xfffffff0) // huge snaplen
	binary.LittleEndian.PutUint32(hugeCap[24+8:24+12], 1<<30) // 1 GiB caplen
	f.Add(hugeCap)
	// Big-endian microsecond variant of the global header.
	be := bytes.Clone(valid)
	binary.BigEndian.PutUint32(be[0:4], magicUsecBE)
	f.Add(be)
	// Raw-IP link type.
	raw := bytes.Clone(valid)
	binary.LittleEndian.PutUint32(raw[20:24], LinkRaw)
	f.Add(raw)
	// An IPv6 frame whose transport sits behind a hop-by-hop +
	// destination-options extension chain, and one with a self-looping
	// chain (every extension pointing at another extension) that must
	// trip the walk bound, not hang.
	f.Add(v6ExtensionChainCapture([]byte{0, 60}, trace.ProtoUDP))
	f.Add(v6ExtensionChainCapture([]byte{0, 0, 0, 0, 0, 0, 0, 0, 0, 0}, 0))
	// A fragment extension marking a non-first fragment.
	f.Add(v6ExtensionChainCapture([]byte{44}, trace.ProtoTCP))

	f.Fuzz(func(t *testing.T, data []byte) {
		pr, err := NewReader(bytes.NewReader(data))
		if err != nil {
			if !errors.Is(err, ErrBadCapture) {
				t.Fatalf("NewReader error outside ErrBadCapture: %v", err)
			}
			return
		}
		var p trace.Packet
		for {
			err := pr.Next(&p)
			if errors.Is(err, io.EOF) {
				return
			}
			if err != nil {
				if !errors.Is(err, ErrBadCapture) {
					t.Fatalf("Next error outside ErrBadCapture/EOF: %v", err)
				}
				return
			}
		}
	})
}

// v6ExtensionChainCapture hand-builds a one-record Ethernet capture whose
// IPv6 header chains the given extension headers before finalProto.
func v6ExtensionChainCapture(exts []byte, finalProto uint8) []byte {
	payload := make([]byte, 0, 8*len(exts)+8)
	for i := range exts {
		next := finalProto
		if i+1 < len(exts) {
			next = exts[i+1]
		}
		ext := make([]byte, 8)
		ext[0] = next
		ext[1] = 0 // 8-byte header
		payload = append(payload, ext...)
	}
	payload = append(payload, []byte{0x04, 0xd2, 0x00, 0x35, 0, 0, 0, 0}...) // ports 1234->53

	frame := make([]byte, 14+40+len(payload))
	writeEthernet(frame, etherTypeIPv6)
	ip := frame[14:]
	ip[0] = 0x60
	binary.BigEndian.PutUint16(ip[4:6], uint16(len(payload)))
	first := finalProto
	if len(exts) > 0 {
		first = exts[0]
	}
	ip[6] = first
	ip[7] = 64
	src, dst := addr.MustParseAddr("2001:db8::1").As16(), addr.MustParseAddr("2001:db8::2").As16()
	copy(ip[8:24], src[:])
	copy(ip[24:40], dst[:])

	var buf bytes.Buffer
	var hdr [24]byte
	binary.LittleEndian.PutUint32(hdr[0:4], magicNsecBE)
	binary.LittleEndian.PutUint16(hdr[4:6], 2)
	binary.LittleEndian.PutUint32(hdr[16:20], 65535)
	binary.LittleEndian.PutUint32(hdr[20:24], LinkEthernet)
	buf.Write(hdr[:])
	var rec [16]byte
	binary.LittleEndian.PutUint32(rec[8:12], uint32(len(frame)))
	binary.LittleEndian.PutUint32(rec[12:16], uint32(len(frame)))
	buf.Write(rec[:])
	buf.Write(frame)
	return buf.Bytes()
}

// FuzzPcapRoundTrip drives the writer/reader pair with arbitrary header
// fields in both families. The pcap encoding is lossy by design —
// timestamps clamp to uint32 seconds, the wire length is floored at the
// synthesised header size, and the frame family follows the source — so
// the fuzz asserts the documented round-trip contract on the fields that
// must survive, over the domain the writer supports.
func FuzzPcapRoundTrip(f *testing.F) {
	f.Add(int64(0), false, uint64(0), uint64(0), uint64(0), uint16(0), uint16(0), uint8(trace.ProtoTCP), uint32(0))
	f.Add(int64(3e18), false, uint64(0), uint64(0xffffffff), uint64(1), uint16(65535), uint16(53), uint8(trace.ProtoUDP), uint32(70000))
	f.Add(int64(12345), true, uint64(0x20010db800000000), uint64(9), uint64(7), uint16(1), uint16(2), uint8(trace.ProtoICMPv6), uint32(1500))
	f.Add(int64(5e9), true, uint64(0xfe80000000000000), uint64(10), uint64(8), uint16(3), uint16(4), uint8(99), uint32(40))
	f.Fuzz(func(t *testing.T, ts int64, v6 bool, hiBits, srcLo, dstLo uint64, sport, dport uint16, proto uint8, size uint32) {
		if ts < 0 || ts >= (1<<32)*int64(1e9) {
			return // outside the uint32-seconds domain the format stores
		}
		var src, dst addr.Addr
		minCap := 14 + 20 + 20
		if v6 {
			// Force both addresses out of the mapped range so the frame
			// family is unambiguous.
			src = addr.FromParts(hiBits|1<<63, srcLo)
			dst = addr.FromParts(hiBits|1<<62|1, dstLo)
			minCap = 14 + 40 + 20
			switch proto {
			case 0, 43, 44, 60:
				// Extension-header numbers as the transport protocol make
				// the decoder legitimately walk into synthesised payload;
				// the round-trip contract does not cover them.
				return
			}
		} else {
			src = addr.From4Uint32(uint32(srcLo))
			dst = addr.From4Uint32(uint32(dstLo))
		}
		in := trace.Packet{
			Ts: ts, Src: src, Dst: dst,
			SrcPort: sport, DstPort: dport, Proto: proto, Size: size,
		}
		data := validCaptureBytes(t, []trace.Packet{in})
		pr, err := NewReader(bytes.NewReader(data))
		if err != nil {
			t.Fatal(err)
		}
		var out trace.Packet
		if err := pr.Next(&out); err != nil {
			t.Fatalf("decoding synthesised capture: %v", err)
		}
		if out.Ts != in.Ts || out.Src != in.Src || out.Dst != in.Dst || out.Proto != in.Proto {
			t.Fatalf("round trip: got %+v, want %+v", out, in)
		}
		// Ports survive only for protocols with synthesised L4 headers.
		if proto == trace.ProtoTCP || proto == trace.ProtoUDP {
			if out.SrcPort != in.SrcPort || out.DstPort != in.DstPort {
				t.Fatalf("ports: got %d/%d, want %d/%d", out.SrcPort, out.DstPort, in.SrcPort, in.DstPort)
			}
		}
		// Wire length is preserved unless below the synthesised headers.
		if int(size) >= minCap && out.Size != in.Size {
			t.Fatalf("size: got %d, want %d", out.Size, in.Size)
		}
		if err := pr.Next(&out); !errors.Is(err, io.EOF) {
			t.Fatalf("expected EOF after 1 record, got %v", err)
		}
	})
}
