// Package pcap reads and writes libpcap capture files well enough to
// exchange traces with standard tools (tcpdump, Wireshark, CAIDA-style
// captures). It decodes Ethernet/IPv4|IPv6/TCP|UDP|ICMP headers into the
// repository's trace.Packet records and can synthesise minimal but valid
// captures from them.
//
// Supported on read: both byte orders, microsecond and nanosecond
// timestamp variants, LINKTYPE_ETHERNET (1) and LINKTYPE_RAW (101), and
// both IP families — EtherType 0x0800 (IPv4) and 0x86DD (IPv6), with a
// bounded IPv6 extension-header walk to find the transport protocol.
// Packets that are neither (ARP, MPLS, ...) are skipped and counted.
package pcap

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"

	"hiddenhhh/internal/addr"
	"hiddenhhh/internal/trace"
)

// Link types supported.
const (
	// LinkEthernet is LINKTYPE_ETHERNET (Ethernet II frames).
	LinkEthernet = 1
	// LinkRaw is LINKTYPE_RAW (bare IP packets, either family).
	LinkRaw = 101
)

const (
	magicUsecBE = 0xa1b2c3d4
	magicUsecLE = 0xd4c3b2a1
	magicNsecBE = 0xa1b23c4d
	magicNsecLE = 0x4d3cb2a1
)

// EtherTypes decoded from Ethernet frames.
const (
	etherTypeIPv4 = 0x0800
	etherTypeIPv6 = 0x86dd
)

// maxCapLen is the hard per-record captured-length ceiling, past any
// snaplen the header declares: comfortably above the largest snaplen
// real capture tools write (tcpdump's default is 262144) while keeping
// the per-record allocation bounded on corrupt input.
const maxCapLen = 1 << 19

// ErrBadCapture reports a malformed pcap stream.
var ErrBadCapture = errors.New("pcap: bad capture")

// Reader streams trace.Packets from a pcap capture. It implements
// trace.Source.
type Reader struct {
	r       *bufio.Reader
	order   binary.ByteOrder
	nano    bool
	link    uint32
	snaplen uint32
	skipped int64
	buf     []byte
}

// NewReader parses the global header of a pcap stream.
func NewReader(r io.Reader) (*Reader, error) {
	pr := &Reader{r: bufio.NewReaderSize(r, 1<<16)}
	var hdr [24]byte
	if _, err := io.ReadFull(pr.r, hdr[:]); err != nil {
		return nil, fmt.Errorf("%w: short global header: %v", ErrBadCapture, err)
	}
	magic := binary.BigEndian.Uint32(hdr[0:4])
	switch magic {
	case magicUsecBE:
		pr.order, pr.nano = binary.BigEndian, false
	case magicNsecBE:
		pr.order, pr.nano = binary.BigEndian, true
	case magicUsecLE:
		pr.order, pr.nano = binary.LittleEndian, false
	case magicNsecLE:
		pr.order, pr.nano = binary.LittleEndian, true
	default:
		return nil, fmt.Errorf("%w: unknown magic %08x", ErrBadCapture, magic)
	}
	major := pr.order.Uint16(hdr[4:6])
	if major != 2 {
		return nil, fmt.Errorf("%w: unsupported version %d", ErrBadCapture, major)
	}
	pr.snaplen = pr.order.Uint32(hdr[16:20])
	pr.link = pr.order.Uint32(hdr[20:24])
	if pr.link != LinkEthernet && pr.link != LinkRaw {
		return nil, fmt.Errorf("%w: unsupported link type %d", ErrBadCapture, pr.link)
	}
	pr.buf = make([]byte, 0, 2048)
	return pr, nil
}

// LinkType returns the capture's link-layer type.
func (pr *Reader) LinkType() uint32 { return pr.link }

// Skipped returns how many records were skipped as neither IPv4 nor
// IPv6 (or as undecodable).
func (pr *Reader) Skipped() int64 { return pr.skipped }

// Next implements trace.Source, decoding the next IP packet of either
// family.
func (pr *Reader) Next(p *trace.Packet) error {
	var rec [16]byte
	for {
		if _, err := io.ReadFull(pr.r, rec[:]); err != nil {
			if errors.Is(err, io.EOF) {
				return io.EOF
			}
			return fmt.Errorf("%w: short record header: %v", ErrBadCapture, err)
		}
		sec := pr.order.Uint32(rec[0:4])
		sub := pr.order.Uint32(rec[4:8])
		caplen := pr.order.Uint32(rec[8:12])
		wirelen := pr.order.Uint32(rec[12:16])
		// Two bounds: a sanity check against the declared snaplen (in
		// uint64 so a hostile snaplen near 2^32 cannot wrap the sum), and
		// a hard ceiling independent of the header — caplen sizes an
		// allocation, and a corrupt file must not turn one record header
		// into a multi-gigabyte buffer.
		if uint64(caplen) > uint64(pr.snaplen)+65535 || caplen > maxCapLen {
			return fmt.Errorf("%w: caplen %d implausible", ErrBadCapture, caplen)
		}
		if cap(pr.buf) < int(caplen) {
			pr.buf = make([]byte, caplen)
		}
		data := pr.buf[:caplen]
		if _, err := io.ReadFull(pr.r, data); err != nil {
			return fmt.Errorf("%w: truncated packet data: %v", ErrBadCapture, err)
		}
		ts := int64(sec) * int64(1e9)
		if pr.nano {
			ts += int64(sub)
		} else {
			ts += int64(sub) * 1000
		}
		ip := data
		isV6 := false
		if pr.link == LinkEthernet {
			if len(data) < 14 {
				pr.skipped++
				continue
			}
			switch binary.BigEndian.Uint16(data[12:14]) {
			case etherTypeIPv4:
			case etherTypeIPv6:
				isV6 = true
			default: // ARP, MPLS, ...
				pr.skipped++
				continue
			}
			ip = data[14:]
		} else if len(ip) > 0 && ip[0]>>4 == 6 {
			// LINKTYPE_RAW carries bare IP; the version nibble decides.
			isV6 = true
		}
		ok := false
		if isV6 {
			ok = decodeIPv6(ip, p)
		} else {
			ok = decodeIPv4(ip, p)
		}
		if !ok {
			pr.skipped++
			continue
		}
		p.Ts = ts
		p.Size = wirelen
		return nil
	}
}

// decodeIPv4 fills p's address/port/proto fields from an IPv4 header.
func decodeIPv4(b []byte, p *trace.Packet) bool {
	if len(b) < 20 || b[0]>>4 != 4 {
		return false
	}
	ihl := int(b[0]&0x0f) * 4
	if ihl < 20 || len(b) < ihl {
		return false
	}
	p.Proto = b[9]
	p.Src = addr.From4Uint32(binary.BigEndian.Uint32(b[12:16]))
	p.Dst = addr.From4Uint32(binary.BigEndian.Uint32(b[16:20]))
	p.SrcPort, p.DstPort = 0, 0
	if p.Proto == trace.ProtoTCP || p.Proto == trace.ProtoUDP {
		if len(b) >= ihl+4 {
			p.SrcPort = binary.BigEndian.Uint16(b[ihl : ihl+2])
			p.DstPort = binary.BigEndian.Uint16(b[ihl+2 : ihl+4])
		}
	}
	return true
}

// maxExtHeaders bounds the IPv6 extension-header walk: real stacks chain
// at most a handful, and a hostile capture must not send the decoder on
// a long crafted chain.
const maxExtHeaders = 8

// decodeIPv6 fills p's address/port/proto fields from an IPv6 header,
// walking the common extension headers (hop-by-hop, routing,
// destination options, fragment) to the transport protocol.
func decodeIPv6(b []byte, p *trace.Packet) bool {
	if len(b) < 40 || b[0]>>4 != 6 {
		return false
	}
	next := b[6]
	p.Src = addr.From16([16]byte(b[8:24]))
	p.Dst = addr.From16([16]byte(b[24:40]))
	p.SrcPort, p.DstPort = 0, 0
	rest := b[40:]
	for hop := 0; hop < maxExtHeaders; hop++ {
		switch next {
		case 0, 43, 60: // hop-by-hop, routing, destination options
			if len(rest) < 8 {
				p.Proto = next
				return true // truncated capture: keep the addresses
			}
			l := 8 + int(rest[1])*8
			if len(rest) < l {
				p.Proto = next
				return true
			}
			next = rest[0]
			rest = rest[l:]
		case 44: // fragment: fixed 8 bytes; ports only in the first fragment
			if len(rest) < 8 {
				p.Proto = next
				return true
			}
			frag := rest
			next = frag[0]
			if binary.BigEndian.Uint16(frag[2:4])&0xfff8 != 0 {
				// Non-first fragment: no transport header follows.
				p.Proto = next
				return true
			}
			rest = rest[8:]
		default:
			p.Proto = next
			if next == trace.ProtoTCP || next == trace.ProtoUDP {
				if len(rest) >= 4 {
					p.SrcPort = binary.BigEndian.Uint16(rest[0:2])
					p.DstPort = binary.BigEndian.Uint16(rest[2:4])
				}
			}
			return true
		}
	}
	p.Proto = next
	return true
}

// Writer emits trace.Packets as a little-endian, nanosecond-resolution
// Ethernet pcap capture with synthesised headers. A packet whose
// addresses are both IPv4-mapped produces an EtherType 0x0800 frame;
// anything else produces a 0x86DD frame — IPv4-mapped addresses are
// exactly representable in an IPv6 header (they decode back to their
// mapped form), so even mixed-family records round-trip losslessly.
type Writer struct {
	w     *bufio.Writer
	count int64
}

// NewWriter writes the global header.
func NewWriter(w io.Writer) (*Writer, error) {
	pw := &Writer{w: bufio.NewWriterSize(w, 1<<16)}
	var hdr [24]byte
	binary.LittleEndian.PutUint32(hdr[0:4], magicNsecBE) // LE stream: reads back as nsec LE
	binary.LittleEndian.PutUint16(hdr[4:6], 2)
	binary.LittleEndian.PutUint16(hdr[6:8], 4)
	binary.LittleEndian.PutUint32(hdr[16:20], 65535)
	binary.LittleEndian.PutUint32(hdr[20:24], LinkEthernet)
	if _, err := pw.w.Write(hdr[:]); err != nil {
		return nil, fmt.Errorf("pcap: writing header: %w", err)
	}
	return pw, nil
}

// l4Size returns the synthesised transport-header length for a protocol.
func l4Size(proto uint8) int {
	switch proto {
	case trace.ProtoTCP:
		return 20
	case trace.ProtoUDP, trace.ProtoICMP, trace.ProtoICMPv6:
		return 8
	}
	return 0
}

// Write implements trace.Sink: it synthesises Ethernet+IP(+L4) headers
// for the packet (frame family per the Writer doc). The captured length
// covers headers only (plus enough payload bytes to honour tiny sizes);
// the wire length preserves p.Size.
func (pw *Writer) Write(p *trace.Packet) error {
	if p.Src.Is4() && p.Dst.Is4() {
		return pw.writeV4(p)
	}
	return pw.writeV6(p)
}

// writeRecordHeader emits the per-record pcap header for a frame of
// capLen captured bytes and at least capLen wire bytes.
func (pw *Writer) writeRecordHeader(p *trace.Packet, capLen int) (wire int, err error) {
	wire = int(p.Size)
	if wire < capLen {
		wire = capLen
	}
	var rec [16]byte
	sec := p.Ts / 1e9
	nsec := p.Ts % 1e9
	binary.LittleEndian.PutUint32(rec[0:4], uint32(sec))
	binary.LittleEndian.PutUint32(rec[4:8], uint32(nsec))
	binary.LittleEndian.PutUint32(rec[8:12], uint32(capLen))
	binary.LittleEndian.PutUint32(rec[12:16], uint32(wire))
	if _, err := pw.w.Write(rec[:]); err != nil {
		return 0, fmt.Errorf("pcap: record header: %w", err)
	}
	return wire, nil
}

// writeEthernet fills the synthetic Ethernet header into frame.
func writeEthernet(frame []byte, etherType uint16) {
	copy(frame[0:6], []byte{0x02, 0, 0, 0, 0, 2})
	copy(frame[6:12], []byte{0x02, 0, 0, 0, 0, 1})
	binary.BigEndian.PutUint16(frame[12:14], etherType)
}

// writeL4 fills the synthetic transport header into l4b.
func writeL4(l4b []byte, p *trace.Packet, payloadLen int) {
	switch p.Proto {
	case trace.ProtoTCP:
		binary.BigEndian.PutUint16(l4b[0:2], p.SrcPort)
		binary.BigEndian.PutUint16(l4b[2:4], p.DstPort)
		l4b[12] = 5 << 4 // data offset
	case trace.ProtoUDP:
		binary.BigEndian.PutUint16(l4b[0:2], p.SrcPort)
		binary.BigEndian.PutUint16(l4b[2:4], p.DstPort)
		if payloadLen > 65535 {
			payloadLen = 65535
		}
		binary.BigEndian.PutUint16(l4b[4:6], uint16(payloadLen))
	case trace.ProtoICMP:
		l4b[0] = 8 // echo request
	case trace.ProtoICMPv6:
		l4b[0] = 128 // echo request
	}
}

// writeV4 synthesises an Ethernet+IPv4(+L4) frame.
func (pw *Writer) writeV4(p *trace.Packet) error {
	l4 := l4Size(p.Proto)
	capLen := 14 + 20 + l4
	wire, err := pw.writeRecordHeader(p, capLen)
	if err != nil {
		return err
	}
	var frame [14 + 20 + 20]byte
	writeEthernet(frame[:], etherTypeIPv4)
	// IPv4 header.
	ip := frame[14:]
	ip[0] = 0x45
	totalLen := wire - 14
	if totalLen > 65535 {
		totalLen = 65535
	}
	binary.BigEndian.PutUint16(ip[2:4], uint16(totalLen))
	ip[8] = 64
	ip[9] = p.Proto
	binary.BigEndian.PutUint32(ip[12:16], p.Src.V4())
	binary.BigEndian.PutUint32(ip[16:20], p.Dst.V4())
	binary.BigEndian.PutUint16(ip[10:12], ipChecksum(ip[:20]))
	writeL4(ip[20:], p, totalLen-20)
	if _, err := pw.w.Write(frame[:capLen]); err != nil {
		return fmt.Errorf("pcap: frame: %w", err)
	}
	pw.count++
	return nil
}

// writeV6 synthesises an Ethernet+IPv6(+L4) frame.
func (pw *Writer) writeV6(p *trace.Packet) error {
	l4 := l4Size(p.Proto)
	capLen := 14 + 40 + l4
	wire, err := pw.writeRecordHeader(p, capLen)
	if err != nil {
		return err
	}
	var frame [14 + 40 + 20]byte
	writeEthernet(frame[:], etherTypeIPv6)
	// IPv6 header: version/class/flow, payload length, next header, hops.
	ip := frame[14:]
	ip[0] = 0x60
	payload := wire - 14 - 40
	if payload > 65535 {
		payload = 65535
	}
	binary.BigEndian.PutUint16(ip[4:6], uint16(payload))
	ip[6] = p.Proto
	ip[7] = 64
	src, dst := p.Src.As16(), p.Dst.As16()
	copy(ip[8:24], src[:])
	copy(ip[24:40], dst[:])
	writeL4(ip[40:], p, payload)
	if _, err := pw.w.Write(frame[:capLen]); err != nil {
		return fmt.Errorf("pcap: frame: %w", err)
	}
	pw.count++
	return nil
}

// Count returns the number of packets written.
func (pw *Writer) Count() int64 { return pw.count }

// Close flushes buffered output.
func (pw *Writer) Close() error { return pw.w.Flush() }

// ipChecksum computes the IPv4 header checksum with the checksum field
// zeroed.
func ipChecksum(h []byte) uint16 {
	var sum uint32
	for i := 0; i+1 < len(h); i += 2 {
		if i == 10 {
			continue // checksum field treated as zero
		}
		sum += uint32(binary.BigEndian.Uint16(h[i : i+2]))
	}
	for sum>>16 != 0 {
		sum = sum&0xffff + sum>>16
	}
	return ^uint16(sum)
}

// WriteFile stores pkts at path as a pcap capture.
func WriteFile(path string, pkts []trace.Packet) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("pcap: %w", err)
	}
	pw, err := NewWriter(f)
	if err != nil {
		f.Close()
		return err
	}
	for i := range pkts {
		if err := pw.Write(&pkts[i]); err != nil {
			f.Close()
			return err
		}
	}
	if err := pw.Close(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ReadFile loads every IP packet (either family) of the capture at path.
func ReadFile(path string) ([]trace.Packet, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("pcap: %w", err)
	}
	defer f.Close()
	pr, err := NewReader(f)
	if err != nil {
		return nil, err
	}
	return trace.Collect(pr, 0)
}
