// Degradation layer: bounded-loss behaviour for the sharded pipeline
// when it is overloaded or a shard misbehaves.
//
// The design goal is "degrade coverage measurably instead of wedging or
// lying": every path that gives up on traffic — a shed batch, a
// quarantined substream, a straggler's unmerged window slice — accounts
// the exact packets and bytes it dropped, and every merge published
// without a full shard quorum is marked degraded. Reports therefore stay
// honest relative to their *declared* observed mass (ReportMass), which
// is what the oracle-differential harness verifies the paper-family
// bounds against.
//
// Three mechanisms compose:
//
//   - Overload shedding (Config.Overload = OverloadShed): a batch push
//     onto a full shard ring waits at most ShedWait, then drops that
//     shard's slice of the batch into its shed counters. The other
//     shards' substreams are untouched.
//   - Stall-tolerant barriers (Config.BarrierTimeout > 0): a barrier
//     that has not seen every shard within the deadline completes with
//     the shards that arrived; the merged set is published marked
//     degraded. A straggler that later reaches the sealed token rejoins
//     at the next barrier — for window closes its unmerged slice is
//     shed and accounted, so one window's mass can never leak into the
//     next.
//   - Panic isolation (always on): a shard worker recovers engine
//     panics, rebuilds a fresh empty summary so barrier merges stay
//     safe, and quarantines the shard — its substream is shed and
//     accounted from then on, but it keeps answering barriers so its
//     peers never deadlock.
//
// With the defaults (OverloadBlock, BarrierTimeout 0, no faults) none of
// these paths engage and the pipeline is byte-identical to its
// pre-degradation behaviour.
package pipeline

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"hiddenhhh/internal/trace"
)

// ErrStalled reports a Close that gave up waiting for stuck shard
// workers (BarrierTimeout configured). The abandoned workers only touch
// their own shard state if they ever revive; the detector's read surface
// remains safe.
var ErrStalled = errors.New("pipeline: stalled shard workers did not drain before the close deadline")

// Overload selects the ingest behaviour when a shard's ring stays full.
type Overload int

// Supported overload policies.
const (
	// OverloadBlock parks the ingest goroutine until the ring drains:
	// lossless, the default.
	OverloadBlock Overload = iota
	// OverloadShed bounds the full-ring wait at Config.ShedWait, then
	// drops that shard's slice of the batch and accounts every dropped
	// packet and byte (Stats.DroppedPackets/DroppedBytes, Degradation).
	OverloadShed
)

// String names the overload policy ("block", "shed").
func (o Overload) String() string {
	switch o {
	case OverloadBlock:
		return "block"
	case OverloadShed:
		return "shed"
	default:
		return fmt.Sprintf("overload(%d)", int(o))
	}
}

// Breaker is the fault-injection surface Config.Chaos accepts: the shard
// workers call it before absorbing a batch and before registering at a
// barrier, and it may sleep, block, or panic to simulate a slow, stuck,
// or crashing shard (see internal/chaos for the concrete plan). A panic
// thrown from either hook flows through the worker's panic isolation
// exactly like an engine panic.
type Breaker interface {
	// BeforeBatch runs on the shard's worker before a batch is absorbed.
	BeforeBatch(shard int)
	// BeforeBarrier runs on the shard's worker before it registers at a
	// barrier.
	BeforeBarrier(shard int)
}

// Degradation declares everything the pipeline observed but excluded
// from published reports, plus the fault state behind it. All counters
// are cumulative since New. Safe to call concurrently with ingest.
type Degradation struct {
	// DroppedPackets and DroppedBytes total the shed mass across all
	// shards: ring-full drops, quarantined substreams, and straggler
	// window slices that missed their merge.
	DroppedPackets int64 `json:"dropped_packets"`
	DroppedBytes   int64 `json:"dropped_bytes"`
	// ShardDroppedPackets and ShardDroppedBytes break the totals down
	// by shard.
	ShardDroppedPackets []int64 `json:"shard_dropped_packets"`
	ShardDroppedBytes   []int64 `json:"shard_dropped_bytes"`
	// DegradedMerges counts merges published without every shard.
	DegradedMerges int64 `json:"degraded_merges"`
	// Quarantined lists shards whose engine panicked; their substreams
	// are being shed.
	Quarantined []int `json:"quarantined_shards,omitempty"`
	// Panics counts recovered engine panics; LastPanic records the most
	// recent panic value.
	Panics    int64  `json:"panics"`
	LastPanic string `json:"last_panic,omitempty"`
}

// Degradation reports the pipeline's cumulative degradation state. Safe
// to call concurrently with ingest; hhhserve surfaces it on /healthz.
func (d *Sharded) Degradation() Degradation {
	deg := Degradation{
		ShardDroppedPackets: make([]int64, len(d.shards)),
		ShardDroppedBytes:   make([]int64, len(d.shards)),
	}
	for i, s := range d.shards {
		deg.ShardDroppedPackets[i] = s.droppedPackets.Load()
		deg.ShardDroppedBytes[i] = s.droppedBytes.Load()
		deg.DroppedPackets += deg.ShardDroppedPackets[i]
		deg.DroppedBytes += deg.ShardDroppedBytes[i]
		if s.quarantined.Load() {
			deg.Quarantined = append(deg.Quarantined, i)
		}
	}
	deg.DegradedMerges = d.degradedMerges.Load()
	d.mu.Lock()
	deg.Panics = d.panicked
	deg.LastPanic = d.lastPanic
	d.mu.Unlock()
	return deg
}

// DroppedMass reports the cumulative packets and bytes shed across all
// shards. Together with DegradedMerges it implements the oracle
// harness's Degraded surface: bound checks run relative to the mass the
// detector declares observed.
func (d *Sharded) DroppedMass() (packets, bytes int64) {
	for _, s := range d.shards {
		packets += s.droppedPackets.Load()
		bytes += s.droppedBytes.Load()
	}
	return packets, bytes
}

// DegradedMerges reports how many merges were published without every
// shard (the other half of the oracle harness's Degraded surface).
func (d *Sharded) DegradedMerges() int64 {
	return d.degradedMerges.Load()
}

// accountDropped charges p packets and b bytes of shed traffic to s.
func accountDropped(s *shard, p, b int64) {
	if p == 0 && b == 0 {
		return
	}
	s.droppedPackets.Add(p)
	s.droppedBytes.Add(b)
}

// shedBatch accounts a key-batch the shard will not absorb (quarantined
// or resyncing) and recycles it.
func (d *Sharded) shedBatch(s *shard, kb *trace.KeyBatch) {
	accountDropped(s, int64(kb.Len()), kb.Bytes())
	d.recycle(s, kb)
}

// shedSummary drops the shard's absorbed-but-unmerged summary state:
// the absorbed mass is accounted as shed and the engine reset. Used when
// a straggler rejoins after its window merged without it, and when a
// resyncing shard reaches its next token.
func (d *Sharded) shedSummary(s *shard) {
	accountDropped(s, s.absorbedPackets, s.absorbedBytes)
	s.absorbedPackets, s.absorbedBytes = 0, 0
	func() {
		defer func() {
			if r := recover(); r != nil {
				d.quarantine(s, r, nil)
			}
		}()
		s.eng.Reset()
	}()
	s.size.Store(int64(s.eng.SizeBytes()))
}

// quarantine handles an engine panic on s's worker: the suspect summary
// state and the in-flight batch are accounted as shed, the engine is
// replaced with a fresh empty one (so barrier merges stay safe), and the
// shard is flagged quarantined — from here on its substream is shed with
// exact accounting, but it keeps draining its ring and answering
// barriers so its peers never deadlock.
func (d *Sharded) quarantine(s *shard, cause any, kb *trace.KeyBatch) {
	var packets, bytes int64
	if kb != nil {
		packets, bytes = int64(kb.Len()), kb.Bytes()
	}
	accountDropped(s, s.absorbedPackets+packets, s.absorbedBytes+bytes)
	s.absorbedPackets, s.absorbedBytes = 0, 0
	if fresh, err := newSummary(&d.cfg, s.idx); err == nil {
		s.eng = fresh
		s.size.Store(int64(fresh.SizeBytes()))
	}
	s.quarantined.Store(true)
	d.mu.Lock()
	d.panicked++
	d.lastPanic = fmt.Sprint(cause)
	d.mu.Unlock()
}

// barrier synchronises one merge point across the shards: a window close
// (reset true) or a snapshot-time query (reset false). Shards register
// as they reach the token; the one whose registration meets the quorum
// seals the barrier and runs the merge. With BarrierTimeout configured,
// a waiter whose deadline expires seals and merges with whoever has
// arrived instead — the degraded path — and shards reaching a sealed
// token rejoin late.
type barrier struct {
	seq        int64
	start, end int64 // window span (ModeWindowed) — end doubles as query time
	at         int64 // query/alignment timestamp
	reset      bool  // shards reset after the merged set is published

	mu     sync.Mutex
	need   int    // quorum: shards the token reached (shrinks via skipShard)
	count  int    // shards registered so far
	joined []bool // registration by shard index — merges iterate in index order
	sealed bool   // merge started; late registrants are excluded
	done   chan struct{}
}

// newBarrier builds a barrier expecting every shard of d.
func newBarrier(d *Sharded, start, end, at int64, reset bool) *barrier {
	return &barrier{
		start:  start,
		end:    end,
		at:     at,
		reset:  reset,
		need:   len(d.shards),
		joined: make([]bool, len(d.shards)),
		done:   make(chan struct{}),
	}
}

// skipShard removes one shard from b's quorum after its token could not
// be delivered (ring saturated past the bounded wait). Runs on the
// coordinator; if the remaining quorum has already registered, the
// coordinator completes the merge itself.
func (d *Sharded) skipShard(b *barrier) {
	b.mu.Lock()
	if b.sealed {
		b.mu.Unlock()
		return
	}
	b.need--
	if b.count >= b.need {
		d.sealAndComplete(b)
		return
	}
	b.mu.Unlock()
}

// register records s's arrival at b. It returns late=true when the
// barrier was already sealed — s's summary was not part of the merge.
// Otherwise it returns after the merged set is published, having run the
// merge itself if s's registration met the quorum.
func (d *Sharded) register(b *barrier, s *shard) (late bool) {
	b.mu.Lock()
	if b.sealed {
		b.mu.Unlock()
		return true
	}
	b.joined[s.idx] = true
	b.count++
	if b.count >= b.need {
		d.sealAndComplete(b)
		return false
	}
	b.mu.Unlock()
	d.waitBarrier(b)
	return false
}

// sealAndComplete marks b sealed and runs its merge with the registered
// shards. Called with b.mu held; unlocks it.
func (d *Sharded) sealAndComplete(b *barrier) {
	b.sealed = true
	joined := append([]bool(nil), b.joined...)
	count := b.count
	b.mu.Unlock()
	d.completeBarrier(b, joined, count)
}

// waitBarrier waits for b's merge to be published. With BarrierTimeout
// configured the wait is bounded: on expiry the caller seals the barrier
// and completes a degraded merge with whoever has arrived — this is what
// keeps Snapshot, window closes, and parked workers from hanging on a
// stuck shard (including the no-waiter case where every worker is stuck
// and only the coordinator is left to run the merge).
func (d *Sharded) waitBarrier(b *barrier) {
	if d.cfg.BarrierTimeout <= 0 {
		<-b.done
		return
	}
	timer := time.NewTimer(d.cfg.BarrierTimeout)
	defer timer.Stop()
	select {
	case <-b.done:
		return
	case <-timer.C:
	}
	b.mu.Lock()
	if b.sealed {
		b.mu.Unlock()
		<-b.done
		return
	}
	d.sealAndComplete(b)
}

// arrive is the shard side of a barrier token. A resyncing shard first
// sheds its unpublishable summary (it missed the previous reset). The
// shard then advances its summary to the barrier timestamp — aligning
// sliding frame rings so the merge is frame-for-frame — and registers.
// On-time shards return once the merged set is published and, for window
// closes, reset; a late shard's summary missed the merge, so for window
// closes it is shed and accounted instead of silently leaking into the
// next window.
func (d *Sharded) arrive(b *barrier, s *shard) {
	if s.resync.Swap(false) {
		d.shedSummary(s)
	}
	func() {
		defer func() {
			if r := recover(); r != nil {
				d.quarantine(s, r, nil)
			}
		}()
		if d.cfg.Chaos != nil {
			d.cfg.Chaos.BeforeBarrier(s.idx)
		}
		if !s.quarantined.Load() {
			s.eng.Advance(b.at)
		}
	}()
	late := d.register(b, s)
	s.lastBarrier.Store(b.seq)
	if !b.reset {
		return
	}
	if late {
		d.shedSummary(s)
		return
	}
	s.eng.Reset()
	s.absorbedPackets, s.absorbedBytes = 0, 0
	s.size.Store(int64(s.eng.SizeBytes()))
}

// completeBarrier merges the registered shards' summaries in shard-index
// order (deterministic regardless of arrival order), queries the merged
// summary at the barrier timestamp, and publishes the result — marked
// degraded when any shard is missing. It runs on whichever goroutine
// sealed the barrier (the quorum-meeting worker, a deadline-expired
// waiter, or the coordinator) while every registered shard is parked at
// the barrier, so it has exclusive access to their summaries; mergeMu
// serialises it against a concurrent completion of a neighbouring
// barrier. A panic during the merge (engine or OnWindow callback) is
// recovered so b.done always closes and the pipeline keeps running; the
// affected window keeps the previously published set.
func (d *Sharded) completeBarrier(b *barrier, joined []bool, count int) {
	defer close(b.done)
	d.mergeMu.Lock()
	defer d.mergeMu.Unlock()
	defer func() {
		if r := recover(); r != nil {
			d.mu.Lock()
			d.panicked++
			d.lastPanic = fmt.Sprint(r)
			d.mu.Unlock()
		}
	}()
	if d.tel != nil {
		t0 := time.Now()
		defer func() { d.tel.merge.Observe(time.Since(t0).Seconds()) }()
	}
	d.merged.Reset()
	for i, s := range d.shards {
		if joined[i] {
			d.merged.Merge(s.eng)
		}
	}
	set, total := d.merged.Query(b.at)
	d.mergedSize.Store(int64(d.merged.SizeBytes()))
	degraded := count < len(d.shards)
	// Publish the whole result in one atomic pointer store: readers
	// (Snapshot, LastWindow, ReportMass, Stats, telemetry closures) get
	// an immutable, mutually consistent report without any lock shared
	// with this merge path. The deferred close(b.done) — declared first,
	// so it runs last — orders the store before any waitBarrier return.
	d.pub.Store(&WindowReport{Set: set, End: b.at, Bytes: total, Degraded: degraded, Shards: count})
	d.merges.Add(1)
	if degraded {
		d.degradedMerges.Add(1)
	}
	if d.cfg.OnWindow != nil {
		d.cfg.OnWindow(b.start, b.end, set)
	}
	if d.seal != nil {
		// Query barriers (sliding/continuous Snapshot) carry no window
		// span of their own; the seal covers the trailing width ending
		// at the barrier timestamp.
		start, end := b.start, b.end
		if !b.reset {
			start, end = b.at-d.width, b.at
		}
		frame, err := encodeSummary(d.merged)
		if err == nil {
			d.emitSeal(frame, start, end, total, count, degraded)
		}
	}
}
