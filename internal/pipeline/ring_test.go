package pipeline

import (
	"fmt"
	"testing"

	"hiddenhhh/internal/trace"
)

// TestRingOrderAndBackpressure pushes far more batches than the ring
// holds and checks FIFO delivery with the producer blocking on a slow
// consumer.
func TestRingOrderAndBackpressure(t *testing.T) {
	r := newRing(4)
	const n = 10000
	done := make(chan error, 1)
	go func() {
		seq := int64(0)
		for {
			m, ok := r.pop()
			if !ok {
				if seq != n {
					done <- errFmt("consumer saw %d messages, want %d", seq, n)
					return
				}
				done <- nil
				return
			}
			if got := m.kb.Ts[0]; got != seq {
				done <- errFmt("out of order: got %d want %d", got, seq)
				return
			}
			seq++
		}
	}()
	for i := int64(0); i < n; i++ {
		r.push(message{kb: &trace.KeyBatch{Ts: []int64{i}}})
	}
	r.close()
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}

// TestRingCloseDrains ensures messages pushed before close are all
// delivered before pop reports closed.
func TestRingCloseDrains(t *testing.T) {
	r := newRing(16)
	for i := int64(0); i < 10; i++ {
		r.push(message{kb: &trace.KeyBatch{Ts: []int64{i}}})
	}
	r.close()
	for i := int64(0); i < 10; i++ {
		m, ok := r.pop()
		if !ok {
			t.Fatalf("ring reported closed with %d messages undelivered", 10-i)
		}
		if m.kb.Ts[0] != i {
			t.Fatalf("message %d out of order: %d", i, m.kb.Ts[0])
		}
	}
	if _, ok := r.pop(); ok {
		t.Fatal("pop returned a message after the ring drained")
	}
}

// TestRingCapacityRounding pins the power-of-two sizing.
func TestRingCapacityRounding(t *testing.T) {
	for _, tc := range []struct{ in, want int }{{1, 1}, {3, 4}, {4, 4}, {64, 64}, {65, 128}} {
		if got := len(newRing(tc.in).buf); got != tc.want {
			t.Errorf("newRing(%d): capacity %d, want %d", tc.in, got, tc.want)
		}
	}
}

func errFmt(format string, args ...any) error {
	return fmt.Errorf(format, args...)
}
