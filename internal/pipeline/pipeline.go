// Package pipeline implements the sharded concurrent ingest pipeline: N
// worker shards, each owning an independent mergeable summary fed through
// a bounded SPSC ring of packet batches, with packets hash-partitioned by
// source address.
//
// The pipeline is generic over the paper's three window models, selected
// by Config.Mode. Each shard holds a Summary — a mergeable digest of its
// substream — and all coordination happens through barrier tokens pushed
// into every shard's ring. Ring FIFO order guarantees a shard reaches a
// token only after absorbing every batch staged before it; the last shard
// to arrive has exclusive access to every shard's summary, merges them
// all into one accumulator, queries it, publishes the result and releases
// the barrier.
//
//   - ModeWindowed (disjoint windows): the coordinator (the caller's
//     goroutine) sees the global time-ordered stream, so it alone decides
//     window boundaries; at each boundary it broadcasts a closing barrier.
//     After the merged set is published the shards reset and continue with
//     the next window's batches, which the coordinator has been queueing
//     behind the token — ingest never stops for a merge.
//   - ModeSliding (WCSS frame ring per level) and ModeContinuous
//     (time-decaying Bloom filters per level): there are no boundaries, so
//     barriers are query-driven. Snapshot(now) broadcasts a query barrier
//     carrying now; each shard first advances its summary to now (aligning
//     sliding frame rings; a no-op for the lazily-decaying filters), the
//     merged accumulator absorbs all shards *without resetting them*, and
//     the merged set at now is published. Shards keep their state and
//     continue — the merge reads, never consumes.
//
// Correctness rests on the summaries being mergeable with bounded error
// (Agarwal et al., "Mergeable Summaries"): Space-Saving summaries merge
// with summed bounds (Mitzenmacher, Steinke & Thaler) — which covers the
// windowed engines and the sliding detector's per-frame summaries
// (Ben-Basat et al., INFOCOM 2016) — and time-decaying Bloom filters
// merge cell-wise by decay-to-common-time plus add, preserving the
// conservative overestimate. RHHH's per-packet level sampling is
// order-insensitive (Ben Basat et al.), so hash-partitioned substreams
// recombine exactly. Because the shards partition the stream, the merged
// error bound telescopes: K shards with k counters each over a stream of
// N bytes still bound overestimation by N/k, the single-engine bound.
package pipeline

import (
	"errors"
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"hiddenhhh/internal/addr"
	"hiddenhhh/internal/continuous"
	"hiddenhhh/internal/hashx"
	"hiddenhhh/internal/hhh"
	"hiddenhhh/internal/sketch"
	"hiddenhhh/internal/swhh"
	"hiddenhhh/internal/tdbf"
	"hiddenhhh/internal/telemetry"
	"hiddenhhh/internal/trace"
)

// ErrClosed reports an ingest or query call on a detector whose Close
// has already run. The Detector-shaped methods (Observe, ObserveBatch,
// Snapshot) cannot return it, so they degrade to defined no-ops instead
// — use TryObserve / TryObserveBatch where the error matters.
var ErrClosed = errors.New("pipeline: detector closed")

// Mode selects the window model the pipeline shards. Values mirror the
// public hiddenhhh.Mode constants.
type Mode int

// Supported window models.
const (
	// ModeWindowed is the disjoint-window model: summaries reset at every
	// boundary and Snapshot reports the most recently completed window.
	ModeWindowed Mode = iota
	// ModeSliding shards the WCSS-style sliding-window detector; Snapshot
	// merges the live shard summaries at the query timestamp.
	ModeSliding
	// ModeContinuous shards the time-decaying Bloom filter detector;
	// Snapshot merges filters cell-wise at the query timestamp.
	ModeContinuous
)

// String names the mode ("windowed", "sliding", "continuous").
func (m Mode) String() string {
	switch m {
	case ModeWindowed:
		return "windowed"
	case ModeSliding:
		return "sliding"
	case ModeContinuous:
		return "continuous"
	default:
		return fmt.Sprintf("mode(%d)", int(m))
	}
}

// Kind selects the per-shard summary engine. Values mirror the public
// Engine constants (Exact=0, PerLevel=1, RHHH=2, WCSS=3, Memento=4):
// the first three are ModeWindowed engines, the last two ModeSliding
// ones.
type Kind int

// Supported engines. KindExact..KindRHHH select the windowed summary;
// KindWCSS and KindMemento select the sliding summary (ModeSliding
// treats the windowed kinds as KindWCSS, its historical default, so
// pre-existing configurations keep working).
const (
	KindExact Kind = iota
	KindPerLevel
	KindRHHH
	KindWCSS
	KindMemento
)

// String names the engine kind ("exact", "perlevel", "rhhh", "wcss",
// "memento").
func (k Kind) String() string {
	switch k {
	case KindExact:
		return "exact"
	case KindPerLevel:
		return "perlevel"
	case KindRHHH:
		return "rhhh"
	case KindWCSS:
		return "wcss"
	case KindMemento:
		return "memento"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// Summary is the pluggable per-shard digest: any mergeable summary of a
// packet substream can sit behind the pipeline's rings and barriers. All
// methods are called from a single goroutine at a time (the shard's
// worker, or — between barriers — the merging worker).
type Summary interface {
	// UpdateKeys absorbs a time-ordered columnar batch of pre-packed,
	// family-filtered leaf keys (see trace.KeyBatch). The producer packs
	// each key exactly once; summaries derive per-level keys by masking.
	UpdateKeys(b *trace.KeyBatch)
	// Advance aligns time-dependent state to now (expiring sliding
	// frames) so that equally-advanced summaries merge frame-for-frame.
	// Summaries without eager time state treat it as a no-op.
	Advance(now int64)
	// Merge folds o — a summary built from the same Config — into the
	// receiver without modifying o.
	Merge(o Summary)
	// Query returns the HHH set at time now together with the total mass
	// (the threshold denominator: window bytes, covered sliding bytes, or
	// decayed mass).
	Query(now int64) (hhh.Set, int64)
	// Reset returns the summary to its empty state.
	Reset()
	// SizeBytes reports the summary's state footprint.
	SizeBytes() int
}

// Config parameterises New.
type Config struct {
	// Mode selects the window model. Default ModeWindowed.
	Mode Mode
	// Shards is the worker count. Default GOMAXPROCS.
	Shards int
	// Window is the disjoint window length (ModeWindowed), the sliding
	// span (ModeSliding), or the decay horizon tau (ModeContinuous).
	// Required.
	Window time.Duration
	// Phi is the threshold fraction of the mode's total mass. Required.
	Phi float64
	// Engine selects the per-shard summary. ModeWindowed takes KindExact
	// (the default), KindPerLevel or KindRHHH; ModeSliding takes KindWCSS
	// (the frame-ring default — any windowed kind is accepted and treated
	// as KindWCSS) or KindMemento (single aged table per level with
	// RHHH-style level sampling, seeded per shard from Seed). Ignored by
	// ModeContinuous.
	Engine Kind
	// Counters per level for sketch engines (per frame and level for
	// ModeSliding). Default 512.
	Counters int
	// Frames is the sliding ring's expiry granularity. Default 8
	// (ModeSliding only).
	Frames int
	// Cells and Hashes size the per-level time-decaying Bloom filters
	// (ModeContinuous only). Defaults 1<<16 and 4.
	Cells  int
	Hashes int
	// ExitRatio is the continuous detector's hysteresis fraction
	// (ModeContinuous only). Default 0.9.
	ExitRatio float64
	// Sampled updates one random level per packet (ModeContinuous only).
	Sampled bool
	// Hierarchy is the prefix lattice every shard detects over
	// (family, step, depth — see internal/addr). Defaults to the IPv4
	// byte ladder.
	Hierarchy addr.Hierarchy
	// Seed drives KindRHHH sampling — shard i derives its own stream
	// from it (shard 0 uses Seed itself, so a 1-shard pipeline reproduces
	// the single-detector sequence exactly) — and the continuous mode's
	// filter hashes, where every shard shares it verbatim: cell-wise
	// filter merging requires identical hash seeds.
	Seed uint64
	// Batch is the packets staged per shard before a ring push.
	// Default 256.
	Batch int
	// RingDepth is the per-shard ring capacity in batches (rounded up to
	// a power of two). Default 64.
	RingDepth int
	// Overload selects the ingest behaviour when a shard's ring stays
	// full: OverloadBlock (default) parks the ingest goroutine until the
	// ring drains, OverloadShed bounds the wait at ShedWait and then
	// drops that shard's slice of the batch, accounting it in Stats and
	// Degradation.
	Overload Overload
	// ShedWait is OverloadShed's bounded wait for ring space before a
	// batch is dropped. Default 1ms (OverloadShed only).
	ShedWait time.Duration
	// BarrierTimeout bounds every barrier wait. 0 (the default) keeps
	// the lossless pre-degradation behaviour: barriers wait for every
	// shard, and a stuck shard wedges merges process-wide. When
	// positive, a barrier that has not seen every shard within the
	// deadline completes with the shards that arrived — the window is
	// published degraded, the straggler's unmerged slice is shed and
	// accounted when it rejoins, and Snapshot and Close return within
	// the deadline instead of hanging.
	BarrierTimeout time.Duration
	// Chaos, when set, receives fault-injection callbacks from the shard
	// workers (see internal/chaos). Test-only; nil in production.
	Chaos Breaker
	// Metrics, when set, registers the pipeline on the registry: ingest
	// and degradation counters function-backed (zero ingest-path cost,
	// read at scrape time and exactly equal to Stats/Degradation), plus
	// hand-off, barrier-merge and snapshot latency histograms observed at
	// batch/barrier frequency (see telemetry.go). Nil disables all
	// instrumentation.
	Metrics *telemetry.Registry
	// OnWindow, when set, receives every completed window's merged HHH
	// set, in window order (ModeWindowed only). For windows with traffic
	// it runs on a worker goroutine while the other shards wait at the
	// barrier; for empty windows it runs on the ingest goroutine. It must
	// not call back into the detector and must not block: a stalled
	// callback stalls the merge it is published from.
	OnWindow func(start, end int64, set hhh.Set)
	// OnSeal, when set, receives every completed merge additionally
	// sealed into a versioned internal/wire frame (see seal.go): each
	// closed window in ModeWindowed, and each Snapshot barrier in the
	// sliding and continuous modes. This is the ingest-node export seam
	// of cluster mode — the callback typically queues the frame for
	// delivery to an aggregator process. Like OnWindow it runs on the
	// merging goroutine (the coordinator for empty windows) and must not
	// block or call back into the detector.
	OnSeal func(Sealed)
}

func (c *Config) setDefaults() error {
	if c.Mode < ModeWindowed || c.Mode > ModeContinuous {
		return fmt.Errorf("pipeline: unknown mode %v", c.Mode)
	}
	if c.Window <= 0 {
		return fmt.Errorf("pipeline: window must be positive")
	}
	if c.Phi <= 0 || c.Phi > 1 {
		return fmt.Errorf("pipeline: phi %v out of (0,1]", c.Phi)
	}
	if c.Engine < KindExact || c.Engine > KindMemento {
		return fmt.Errorf("pipeline: unknown engine %v", c.Engine)
	}
	if c.Engine > KindRHHH && c.Mode != ModeSliding {
		return fmt.Errorf("pipeline: engine %v requires ModeSliding", c.Engine)
	}
	if c.OnWindow != nil && c.Mode != ModeWindowed {
		return fmt.Errorf("pipeline: OnWindow requires ModeWindowed (mode %v has no window closes)", c.Mode)
	}
	if c.Shards <= 0 {
		c.Shards = runtime.GOMAXPROCS(0)
	}
	if c.Counters <= 0 {
		c.Counters = 512
	}
	if c.Hierarchy == (addr.Hierarchy{}) {
		c.Hierarchy = addr.NewIPv4Hierarchy(addr.Byte)
	}
	if c.Batch <= 0 {
		c.Batch = 256
	}
	if c.RingDepth <= 0 {
		c.RingDepth = 64
	}
	if c.Overload < OverloadBlock || c.Overload > OverloadShed {
		return fmt.Errorf("pipeline: unknown overload policy %v", c.Overload)
	}
	if c.Overload == OverloadShed && c.ShedWait <= 0 {
		c.ShedWait = time.Millisecond
	}
	return nil
}

// tokenWait is the bounded wait for pushing a barrier token into a full
// ring: the barrier deadline when one is configured, the shed wait when
// shedding, and 0 (block forever, the lossless default) otherwise.
func (c *Config) tokenWait() time.Duration {
	if c.BarrierTimeout > 0 {
		return c.BarrierTimeout
	}
	if c.Overload == OverloadShed {
		return c.ShedWait
	}
	return 0
}

// label is the engine string Stats reports.
func (c *Config) label() string {
	switch c.Mode {
	case ModeSliding:
		if c.Engine == KindMemento {
			return "memento"
		}
		return "wcss"
	case ModeContinuous:
		return "tdbf"
	default:
		return c.Engine.String()
	}
}

// slidingConfig is the single source of the sliding summary geometry:
// newSummary builds shard engines from it and CoveredSpan derives the
// covered span from it, so detector frames and accounting cannot drift
// apart (swhh applies the frame-length floor inside both paths).
func (c *Config) slidingConfig() swhh.Config {
	return swhh.Config{
		Window:   c.Window,
		Frames:   c.Frames,
		Counters: c.Counters,
	}
}

// newSummary builds one shard's summary for cfg.
func newSummary(cfg *Config, shard int) (Summary, error) {
	switch cfg.Mode {
	case ModeSliding:
		if cfg.Engine == KindMemento {
			// Same per-shard seed derivation as KindRHHH below: shard 0
			// keeps cfg.Seed so a 1-shard pipeline reproduces the
			// single-detector level-sampling sequence exactly.
			d, err := swhh.NewMementoHHH(cfg.Hierarchy, cfg.slidingConfig(),
				cfg.Seed^(uint64(shard)*0x9e3779b97f4a7c15))
			if err != nil {
				return nil, err
			}
			return &mementoSummary{d: d, phi: cfg.Phi}, nil
		}
		d, err := swhh.NewSlidingHHH(cfg.Hierarchy, cfg.slidingConfig())
		if err != nil {
			return nil, err
		}
		return &slidingSummary{d: d, phi: cfg.Phi}, nil
	case ModeContinuous:
		d, err := continuous.NewDetector(continuous.Config{
			Hierarchy: cfg.Hierarchy,
			Phi:       cfg.Phi,
			Filter: tdbf.Config{
				Cells:  cfg.Cells,
				Hashes: cfg.Hashes,
				Decay:  tdbf.Exponential{Tau: cfg.Window},
			},
			ExitRatio: cfg.ExitRatio,
			Sampled:   cfg.Sampled,
			Seed:      cfg.Seed,
		})
		if err != nil {
			return nil, err
		}
		return &continuousSummary{d: d}, nil
	default:
		e := &windowedSummary{h: cfg.Hierarchy, phi: cfg.Phi}
		switch cfg.Engine {
		case KindPerLevel:
			e.pl = hhh.NewPerLevel(cfg.Hierarchy, cfg.Counters)
		case KindRHHH:
			// splitmix64 increments decorrelate the per-shard sampling
			// streams; shard 0 keeps cfg.Seed for 1-shard reproducibility.
			e.rh = hhh.NewRHHH(cfg.Hierarchy, cfg.Counters, cfg.Seed^(uint64(shard)*0x9e3779b97f4a7c15))
		default:
			e.ex = sketch.NewExact(1024)
		}
		return e, nil
	}
}

// windowedSummary is one disjoint-window shard summary — exactly one of
// the three engine fields is active, mirroring the windowed detector's
// engine dispatch. It carries no time state: Advance is a no-op and Query
// ignores now, thresholding against the accumulated window volume.
type windowedSummary struct {
	h   addr.Hierarchy
	phi float64
	pl  *hhh.PerLevel
	rh  *hhh.RHHH
	ex  *sketch.Exact
}

func (e *windowedSummary) UpdateKeys(b *trace.KeyBatch) {
	switch {
	case e.pl != nil:
		e.pl.UpdateKeys(b)
	case e.rh != nil:
		e.rh.UpdateKeys(b)
	default:
		// Exact counts live at the leaf level only, so the packed key is
		// the counter key verbatim — no masking, no Addr math.
		for i, k := range b.Keys {
			e.ex.Update(k, int64(b.Sizes[i]))
		}
	}
}

func (e *windowedSummary) Advance(int64) {}

// Merge folds o into e. Summaries are built from one Config, so kinds and
// shapes always match.
func (e *windowedSummary) Merge(s Summary) {
	o := s.(*windowedSummary)
	switch {
	case e.pl != nil:
		e.pl.Merge(o.pl)
	case e.rh != nil:
		e.rh.Merge(o.rh)
	default:
		e.ex.AddAll(o.ex)
	}
}

func (e *windowedSummary) total() int64 {
	switch {
	case e.pl != nil:
		return e.pl.Total()
	case e.rh != nil:
		return e.rh.Total()
	default:
		return e.ex.Total()
	}
}

func (e *windowedSummary) Query(int64) (hhh.Set, int64) {
	total := e.total()
	T := hhh.Threshold(total, e.phi)
	switch {
	case e.pl != nil:
		return e.pl.Query(T), total
	case e.rh != nil:
		return e.rh.Query(T), total
	default:
		return hhh.Exact(e.ex, e.h, T), total
	}
}

func (e *windowedSummary) Reset() {
	switch {
	case e.pl != nil:
		e.pl.Reset()
	case e.rh != nil:
		e.rh.Reset()
	default:
		e.ex.Reset()
	}
}

func (e *windowedSummary) SizeBytes() int {
	switch {
	case e.pl != nil:
		return e.pl.SizeBytes()
	case e.rh != nil:
		return e.rh.SizeBytes()
	default:
		return e.ex.Len() * 16
	}
}

// slidingSummary adapts the per-level WCSS sliding detector. Advance
// aligns the frame rings at the query barrier so Merge is frame-by-frame.
type slidingSummary struct {
	d   *swhh.SlidingHHH
	phi float64
}

func (e *slidingSummary) UpdateKeys(b *trace.KeyBatch) { e.d.UpdateKeys(b) }
func (e *slidingSummary) Advance(now int64)            { e.d.Advance(now) }
func (e *slidingSummary) Merge(s Summary)              { e.d.Merge(s.(*slidingSummary).d) }
func (e *slidingSummary) Reset()                       { e.d.Reset() }
func (e *slidingSummary) SizeBytes() int               { return e.d.SizeBytes() }

func (e *slidingSummary) Query(now int64) (hhh.Set, int64) {
	return e.d.Query(e.phi, now), e.d.WindowTotal(now)
}

// mementoSummary adapts the level-sampled Memento sliding detector. Like
// slidingSummary, Advance aligns the frame clocks at the query barrier so
// Merge is frame-by-frame; the reported mass comes from the wrapper's
// exact totals ring, so accounting carries no sampling noise.
type mementoSummary struct {
	d   *swhh.MementoHHH
	phi float64
}

func (e *mementoSummary) UpdateKeys(b *trace.KeyBatch) { e.d.UpdateKeys(b) }
func (e *mementoSummary) Advance(now int64)            { e.d.Advance(now) }
func (e *mementoSummary) Merge(s Summary)              { e.d.Merge(s.(*mementoSummary).d) }
func (e *mementoSummary) Reset()                       { e.d.Reset() }
func (e *mementoSummary) SizeBytes() int               { return e.d.SizeBytes() }

func (e *mementoSummary) Query(now int64) (hhh.Set, int64) {
	return e.d.Query(e.phi, now), e.d.WindowTotal(now)
}

// continuousSummary adapts the time-decaying Bloom filter detector. The
// filters decay lazily, so Advance has nothing to do; Merge decays cell
// pairs to a common time as it adds them.
type continuousSummary struct {
	d *continuous.Detector
}

func (e *continuousSummary) UpdateKeys(b *trace.KeyBatch) { e.d.ObserveKeys(b) }
func (e *continuousSummary) Advance(int64)                {}
func (e *continuousSummary) Merge(s Summary)              { e.d.Merge(s.(*continuousSummary).d) }
func (e *continuousSummary) Reset()                       { e.d.Reset() }
func (e *continuousSummary) SizeBytes() int               { return e.d.SizeBytes() }

func (e *continuousSummary) Query(now int64) (hhh.Set, int64) {
	return e.d.Query(now), int64(e.d.TotalMass(now))
}

// shard is one worker: a ring, a summary, and a key-batch freelist, plus
// the per-shard degradation state (see degrade.go).
//
// The fields are grouped by writer and separated by cache-line pads
// (audited for false sharing — shards are allocated independently, but
// the groups within one shard are hammered by different goroutines: the
// worker bumps its absorption counters per batch while the ingest
// goroutine updates the producer-side high-water mark, and the stats/
// telemetry readers poll both). The alignlint:group directives are
// checked by cmd/alignlint in CI: fields of different groups must never
// share a 64-byte line.
//
//alignlint:struct
type shard struct {
	// Read-mostly identity: set at construction, read everywhere.
	idx  int
	ring *spscRing
	eng  Summary // worker-owned between barriers; merger-owned inside them
	free chan *trace.KeyBatch

	_ [64]byte //alignlint:group=worker
	// Worker-written hot state: bumped once per absorbed batch.
	packets atomic.Int64
	size    atomic.Int64 // last published summary footprint
	// absorbed* track mass folded into eng since its last reset —
	// worker-owned plain fields, read only on the worker itself when a
	// quarantine or late barrier rejoin sheds the unmerged summary.
	absorbedPackets int64
	absorbedBytes   int64
	// lastBarrier is the sequence number of the last barrier this shard
	// passed; Stats derives per-shard lag from it.
	lastBarrier atomic.Int64

	_ [64]byte //alignlint:group=producer
	// Producer-written state: the ingest goroutine updates it once per
	// batch hand-off, concurrently with the worker group above.
	// highWater is the deepest ring occupancy seen at a batch hand-off
	// (telemetry only).
	highWater atomic.Int64

	_ [64]byte //alignlint:group=degrade
	// Degradation accounting: mass this shard's substream lost to
	// overload shedding, quarantine, or missed merges. Written on the
	// ingest goroutine (ring-full sheds) and the worker (everything
	// else); read by Stats/Degradation. Cold unless the pipeline is
	// degrading, so sharing a line among themselves is fine — the pads
	// only keep them off the hot groups.
	droppedPackets atomic.Int64
	droppedBytes   atomic.Int64
	// resync is set by the coordinator when a reset-barrier token could
	// not be pushed into this shard's saturated ring: the worker sheds
	// (and accounts) batches until the next token it does receive, so a
	// missed window close cannot leak one window's mass into the next.
	resync atomic.Bool
	// quarantined is set when this shard's engine panicked: the worker
	// keeps draining its ring and answering barriers with a fresh empty
	// summary, shedding and accounting its substream.
	quarantined atomic.Bool
}

// WindowReport is one published merge: the HHH set of the most recently
// completed window (or query barrier), together with the metadata the
// read surfaces report about it. Reports are immutable once published —
// readers receive a shared pointer and must not mutate the Set — which
// is what makes the wait-free LastWindow/Snapshot read path safe.
type WindowReport struct {
	// Set is the merged HHH set.
	Set hhh.Set
	// End is the publication timestamp: the window end in windowed mode,
	// the query timestamp otherwise.
	End int64
	// Bytes is the total mass of the merge — the HHH threshold
	// denominator (window bytes, covered sliding bytes, or decayed mass).
	Bytes int64
	// Degraded marks a merge that completed without every shard;
	// Shards is how many contributed.
	Degraded bool
	// Shards is the number of shard summaries merged into Set.
	Shards int
}

// Sharded is the concurrent HHH detector over any of the three window
// models. The ingest surface (Observe, ObserveBatch, Snapshot) follows
// the Detector contract — one goroutine at a time — while Stats,
// SizeBytes, LastWindow, ReportMass and CoveredSpan may be called
// concurrently with ingest (hhhserve reads them from HTTP handlers).
//
// Published results live behind a single atomic pointer (pub): every
// merge builds an immutable WindowReport and stores it in one step, so
// the read surfaces never take a lock the merge path holds — queries
// cannot stall ingest, and ingest cannot stall queries.
//
//alignlint:struct
type Sharded struct {
	// Read-mostly identity: set at construction.
	cfg    Config
	width  int64
	shards []*shard
	merged Summary
	// tel holds the actively-observed metric handles; nil when
	// Config.Metrics is unset (every observation site nil-guards).
	tel *pipeTelemetry
	// seal carries the OnSeal callback plus the seal sequence and the
	// cached empty-window frame; nil when Config.OnSeal is unset
	// (emission sites nil-guard).
	seal *sealState

	// Coordinator state: owned by the ingest goroutine.
	started       bool
	curEnd        int64
	staging       []*trace.KeyBatch
	lastBarrier   *barrier
	windowHasData bool

	// Lifecycle: closed flips exactly once; lifeMu serialises Close
	// against the barrier-broadcasting paths (Snapshot, and Close itself)
	// so a Snapshot racing a Close either completes its merge before the
	// rings shut or observes closed and returns the last published set.
	closed atomic.Bool
	lifeMu sync.Mutex

	// mergeMu serialises barrier completions. Without degradation the
	// barrier protocol alone orders merges (no shard passes barrier N
	// before its merge finishes, so no shard can trigger barrier N+1's
	// merge); with deadlines a straggler rejoining barrier N can race a
	// timed-out completion of barrier N+1, and the mutex keeps the
	// shared merge accumulator single-writer and publications ordered.
	mergeMu sync.Mutex

	// barrierSeq numbers broadcast barriers; per-shard lag in Stats is
	// barrierSeq minus the shard's lastBarrier.
	barrierSeq atomic.Int64

	// mu guards only the recorded panic state now; every other shared
	// field is an atomic or lives inside the published WindowReport.
	mu        sync.Mutex
	panicked  int64 // engine panics recovered (see quarantine)
	lastPanic string

	// Publication state, written by whichever goroutine completes a
	// barrier (or the coordinator's empty-window fast path).
	pub            atomic.Pointer[WindowReport]
	merges         atomic.Int64
	degradedMerges atomic.Int64 // merges published without every shard
	mergedSize     atomic.Int64

	_ [64]byte //alignlint:group=ingest
	// Ingest totals: bumped by the producer once per staged packet,
	// padded off the merge-side publication fields above.
	packets atomic.Int64
	bytes   atomic.Int64

	_  [64]byte //alignlint:group=tail
	wg sync.WaitGroup
}

// New builds and starts a sharded pipeline. The caller must Close it to
// release the worker goroutines.
func New(cfg Config) (*Sharded, error) {
	if err := cfg.setDefaults(); err != nil {
		return nil, err
	}
	merged, err := newSummary(&cfg, 0)
	if err != nil {
		return nil, err
	}
	d := &Sharded{
		cfg:     cfg,
		width:   int64(cfg.Window),
		shards:  make([]*shard, cfg.Shards),
		merged:  merged,
		staging: make([]*trace.KeyBatch, cfg.Shards),
	}
	d.pub.Store(&WindowReport{Set: hhh.NewSet()})
	d.mergedSize.Store(int64(d.merged.SizeBytes()))
	if cfg.OnSeal != nil {
		d.seal = &sealState{fn: cfg.OnSeal}
	}
	for i := range d.shards {
		eng, err := newSummary(&cfg, i)
		if err != nil {
			return nil, err
		}
		s := &shard{
			idx:  i,
			ring: newRing(cfg.RingDepth),
			eng:  eng,
			free: make(chan *trace.KeyBatch, cfg.RingDepth+2),
		}
		s.size.Store(int64(s.eng.SizeBytes()))
		d.shards[i] = s
		d.staging[i] = trace.NewKeyBatch(cfg.Batch)
	}
	if cfg.Metrics != nil {
		d.tel = d.registerMetrics(cfg.Metrics)
	}
	for _, s := range d.shards {
		d.wg.Add(1)
		go d.worker(s)
	}
	return d, nil
}

// worker drains one shard's ring until the ring is closed. Batches are
// absorbed through the panic-isolating absorb path; a shard that has
// been quarantined (engine panic) or flagged for resync (missed reset
// token) sheds its batches with exact accounting instead.
func (d *Sharded) worker(s *shard) {
	defer d.wg.Done()
	for {
		m, ok := s.ring.pop()
		if !ok {
			return
		}
		if m.bar != nil {
			d.arrive(m.bar, s)
			continue
		}
		if s.quarantined.Load() || s.resync.Load() {
			d.shedBatch(s, m.kb)
			continue
		}
		d.absorb(s, m.kb)
	}
}

// absorb folds one key-batch into the shard's summary, isolating engine
// panics: a panic quarantines the shard (substream shed and accounted)
// instead of killing the worker and deadlocking its barrier peers.
func (d *Sharded) absorb(s *shard, kb *trace.KeyBatch) {
	defer func() {
		if r := recover(); r != nil {
			d.quarantine(s, r, kb)
		}
	}()
	if d.cfg.Chaos != nil {
		d.cfg.Chaos.BeforeBatch(s.idx)
	}
	s.eng.UpdateKeys(kb)
	s.absorbedPackets += int64(kb.Len())
	s.absorbedBytes += kb.Bytes()
	s.packets.Add(int64(kb.Len()))
	s.size.Store(int64(s.eng.SizeBytes()))
	d.recycle(s, kb)
}

// recycle returns a drained key-batch to the shard's freelist, truncated
// in place so the columns' capacity is reused — the steady state of the
// ingest path allocates nothing per packet.
func (d *Sharded) recycle(s *shard, kb *trace.KeyBatch) {
	kb.Reset()
	select {
	case s.free <- kb:
	default: // freelist full; let the GC take it
	}
}

// shardOf hash-partitions a source address onto a shard: the packed
// leaf-level hierarchy key — computed once per packet by the producer —
// feeds the mix, so partitioning costs no additional Addr math and two
// sources the hierarchy cannot distinguish (equal leaf keys) always land
// on the same shard.
func (d *Sharded) shardOf(src addr.Addr) int {
	return hashx.Bucket(hashx.Mix64(d.cfg.Hierarchy.Key(src, 0)), len(d.shards))
}

// Observe implements the Detector ingest contract for one packet. After
// Close it is a defined no-op (see TryObserve).
func (d *Sharded) Observe(p *trace.Packet) { _ = d.TryObserve(p) }

// TryObserve is Observe with the closed state surfaced: it returns
// ErrClosed — and drops the packet — once Close has run, instead of
// pushing onto a ring no worker drains. Like Observe it is part of the
// single-goroutine ingest surface: the guarantee covers Close calls
// that happened-before the ingest call (use-after-Close), not a Close
// racing ingest from another goroutine — sequence ingest against Close
// externally, exactly as for Observe.
func (d *Sharded) TryObserve(p *trace.Packet) error {
	if d.closed.Load() {
		return ErrClosed
	}
	if d.cfg.Mode != ModeWindowed {
		d.stage(p)
		return nil
	}
	if !d.started {
		d.started = true
		d.curEnd = (p.Ts/d.width + 1) * d.width
	}
	for p.Ts >= d.curEnd {
		d.closeWindow()
	}
	d.stage(p)
	return nil
}

// ObserveBatch processes a run of packets in time order. In windowed mode
// the run is split at window boundaries; the other modes have none, so
// the whole run scatters straight across the shards. After Close it is a
// defined no-op (see TryObserveBatch).
func (d *Sharded) ObserveBatch(pkts []trace.Packet) { _ = d.TryObserveBatch(pkts) }

// TryObserveBatch is ObserveBatch with the closed state surfaced: it
// returns ErrClosed — and drops the batch — once Close has run. See
// TryObserve for the sequencing contract: this covers use-after-Close,
// not ingest racing Close from another goroutine.
func (d *Sharded) TryObserveBatch(pkts []trace.Packet) error {
	if d.closed.Load() {
		return ErrClosed
	}
	if d.cfg.Mode != ModeWindowed {
		for i := range pkts {
			d.stage(&pkts[i])
		}
		return nil
	}
	for len(pkts) > 0 {
		p := &pkts[0]
		if !d.started {
			d.started = true
			d.curEnd = (p.Ts/d.width + 1) * d.width
		}
		for p.Ts >= d.curEnd {
			d.closeWindow()
		}
		n := sort.Search(len(pkts), func(i int) bool { return pkts[i].Ts >= d.curEnd })
		for i := range pkts[:n] {
			d.stage(&pkts[i])
		}
		pkts = pkts[n:]
	}
	return nil
}

// stage packs one packet onto its shard's staging key-batch, flushing
// the batch into the ring when full. This is the single point where the
// hierarchy key is computed and the family filter runs: packets of the
// other address family are counted in the ingest totals but never
// staged (the engines would have dropped them anyway), and everything
// downstream — rings, engines, merges — sees only packed keys.
func (d *Sharded) stage(p *trace.Packet) {
	d.packets.Add(1)
	d.bytes.Add(int64(p.Size))
	h := &d.cfg.Hierarchy
	if !h.Match(p.Src) {
		return
	}
	key := h.Key(p.Src, 0)
	si := hashx.Bucket(hashx.Mix64(key), len(d.shards))
	kb := d.staging[si]
	kb.Append(key, p.Size, p.Ts)
	d.windowHasData = true
	if kb.Len() >= d.cfg.Batch {
		d.pushBatch(si, kb)
	}
}

// pushBatch hands a staged buffer to the shard's ring and replaces the
// staging slot from the freelist (allocating only when the freelist runs
// dry, i.e. when the ring is persistently deep). A bounded-wait push
// that finds the ring still full drops the batch — only that shard's
// slice of the stream — and accounts every dropped packet and byte to
// the shard's shed counters. The wait is ShedWait under OverloadShed;
// under OverloadBlock it is unbounded (lossless) unless BarrierTimeout
// opted the pipeline into bounded-loss degradation, in which case the
// deadline bounds ingest pushes too — otherwise a saturated ring of a
// stuck shard would still hang Snapshot and Close in their staging
// flushes.
func (d *Sharded) pushBatch(si int, kb *trace.KeyBatch) {
	s := d.shards[si]
	var t0 time.Time
	if d.tel != nil {
		t0 = time.Now()
	}
	var wait time.Duration
	if d.cfg.Overload == OverloadShed {
		wait = d.cfg.ShedWait
	} else {
		wait = d.cfg.BarrierTimeout
	}
	if wait <= 0 {
		s.ring.push(message{kb: kb})
	} else if !s.ring.pushWait(message{kb: kb}, wait) {
		accountDropped(s, int64(kb.Len()), kb.Bytes())
		if d.tel != nil {
			d.tel.handoff.Observe(time.Since(t0).Seconds())
		}
		kb.Reset() // dropped in place: reuse the columns
		return
	}
	if d.tel != nil {
		d.tel.handoff.Observe(time.Since(t0).Seconds())
		if dep := int64(s.ring.depth()); dep > s.highWater.Load() {
			// Single writer (the ingest goroutine), so load-then-store is a
			// race-free running maximum.
			s.highWater.Store(dep)
		}
	}
	select {
	case nb := <-s.free:
		d.staging[si] = nb
	default:
		d.staging[si] = trace.NewKeyBatch(d.cfg.Batch)
	}
}

// flushStaging pushes every non-empty staging batch.
func (d *Sharded) flushStaging() {
	for si, kb := range d.staging {
		if kb.Len() > 0 {
			d.pushBatch(si, kb)
		}
	}
}

// broadcast flushes staged batches and pushes b into every shard's ring.
// When a ring is so saturated that even the token cannot be placed
// within the bounded wait (tokenWait > 0), the shard is skipped: the
// barrier's quorum shrinks so its peers are not held hostage, and for
// reset barriers the shard is flagged for resync so the missed window
// close cannot leak one window's mass into the next.
func (d *Sharded) broadcast(b *barrier) {
	d.flushStaging()
	b.seq = d.barrierSeq.Add(1)
	wait := d.cfg.tokenWait()
	for _, s := range d.shards {
		if wait <= 0 {
			s.ring.push(message{bar: b})
			continue
		}
		if !s.ring.pushWait(message{bar: b}, wait) {
			if b.reset {
				s.resync.Store(true)
			}
			d.skipShard(b)
		}
	}
	d.lastBarrier = b
}

// closeWindow flushes staged batches and broadcasts a closing barrier
// (ModeWindowed). The coordinator does not wait for the merge: the next
// window's batches queue behind the token, and the barrier itself orders
// the shards.
//
// Empty windows — common when a trace has idle gaps much longer than the
// window — skip the barrier entirely: the shard summaries hold nothing,
// so the coordinator publishes the empty set itself after waiting out any
// in-flight merge (which keeps window reports ordered). A gap of G
// windows then costs one barrier wait plus G cheap publishes instead of
// G full shard synchronisations.
func (d *Sharded) closeWindow() {
	start, end := d.curEnd-d.width, d.curEnd
	d.curEnd += d.width
	if !d.windowHasData {
		if b := d.lastBarrier; b != nil {
			d.waitBarrier(b)
		}
		set := hhh.NewSet()
		d.pub.Store(&WindowReport{Set: set, End: end, Shards: len(d.shards)})
		d.merges.Add(1)
		if d.cfg.OnWindow != nil {
			d.cfg.OnWindow(start, end, set)
		}
		if d.seal != nil {
			d.emitSeal(d.emptySealFrame(), start, end, 0, len(d.shards), false)
		}
		return
	}
	d.windowHasData = false
	d.broadcast(newBarrier(d, start, end, end, true))
}

// Snapshot implements Detector. In windowed mode it closes every window
// that ends at or before now, waits for its merge to complete, and
// returns the most recently completed window's merged HHH set. In sliding
// and continuous mode it broadcasts a query barrier at now — every shard
// aligns its live summary to now, the last arriver merges them all
// (without consuming them) and queries the merged summary — and returns
// the freshly published set.
// With BarrierTimeout configured, Snapshot returns within the deadline
// even when shards are stuck: the barrier completes with the shards that
// arrived and the set is published degraded (see Stats.LastWindowShards
// and Degradation).
// After Close, Snapshot returns the most recently published set without
// broadcasting (a closed pipeline has no workers to run a merge).
// Snapshot may race Close from another goroutine: the lifecycle mutex
// guarantees an in-flight broadcast completes before the rings shut.
func (d *Sharded) Snapshot(now int64) hhh.Set {
	var t0 time.Time
	if d.tel != nil {
		t0 = time.Now()
	}
	d.lifeMu.Lock()
	var b *barrier
	if !d.closed.Load() {
		if d.cfg.Mode == ModeWindowed {
			for d.started && now >= d.curEnd {
				d.closeWindow()
			}
		} else {
			d.broadcast(newBarrier(d, 0, 0, now, false))
		}
		b = d.lastBarrier
	}
	d.lifeMu.Unlock()
	if b != nil {
		d.waitBarrier(b)
	}
	set := d.pub.Load().Set
	if d.tel != nil {
		d.tel.snapshot.Observe(time.Since(t0).Seconds())
	}
	return set
}

// LastWindow returns the most recently published merge without
// broadcasting anything: a wait-free atomic-pointer read that never
// takes a lock the merge or ingest paths hold. This is the query path
// for read-heavy consumers (the hhhserve /hhh handler): ingest keeps
// publishing windows while any number of readers snapshot the last one.
// The report — including its Set — is shared and must not be mutated.
func (d *Sharded) LastWindow() WindowReport {
	return *d.pub.Load()
}

// ReportMass implements the public Accounting surface: the total mass of
// the most recently published merge. Call after Snapshot(now) with the
// same timestamp (Snapshot publishes the merge ReportMass reads).
func (d *Sharded) ReportMass(int64) int64 {
	return d.pub.Load().Bytes
}

// CoveredSpan implements the public Accounting surface: the last closed
// window [lo, hi) in windowed mode, the frame-aligned covered span
// [lo, now] in sliding mode, and (math.MinInt64, now] in continuous
// mode. Like ReportMass, call it after Snapshot(now).
func (d *Sharded) CoveredSpan(now int64) (lo, hi int64) {
	switch d.cfg.Mode {
	case ModeSliding:
		return d.cfg.slidingConfig().CoveredSince(now), now
	case ModeContinuous:
		return math.MinInt64, now
	default:
		if d.merges.Load() == 0 {
			// No window has been published yet: report the empty span
			// (0, 0), matching the single-threaded windowed detector's
			// zero-valued lastStart/lastEnd, instead of fabricating the
			// never-observed window [-Window, 0).
			return 0, 0
		}
		end := d.pub.Load().End
		return end - d.width, end
	}
}

// SizeBytes reports the pipeline's summary footprint: every shard summary
// plus the merge accumulator. Safe to call concurrently with ingest.
func (d *Sharded) SizeBytes() int {
	n := int(d.mergedSize.Load())
	for _, s := range d.shards {
		n += int(s.size.Load())
	}
	return n
}

// Stats is a point-in-time view of the pipeline, JSON-ready for the
// query server.
type Stats struct {
	Mode    string `json:"mode"`
	Shards  int    `json:"shards"`
	Engine  string `json:"engine"`
	Packets int64  `json:"packets"`
	Bytes   int64  `json:"bytes"`
	// Windows counts published merges: window closes in windowed mode,
	// snapshot-time merged queries in sliding/continuous mode.
	Windows       int64 `json:"windows"`
	LastWindowEnd int64 `json:"last_window_end_ns"`
	// LastWindowBytes is the total mass of the most recently published
	// merge — the denominator of its HHH threshold (window bytes, covered
	// sliding bytes, or decayed mass).
	LastWindowBytes int64   `json:"last_window_bytes"`
	ShardPackets    []int64 `json:"shard_packets"`
	QueueDepth      []int   `json:"queue_depth"`
	SizeBytes       int     `json:"size_bytes"`

	// Degradation counters: see the Degradation report for the same
	// numbers with per-shard breakdowns and the recorded panic.

	// DroppedPackets and DroppedBytes total the mass shed across all
	// shards — ring-full drops, quarantined substreams, and unmerged
	// straggler slices — i.e. traffic the pipeline observed but excluded
	// from every published report.
	DroppedPackets int64 `json:"dropped_packets"`
	DroppedBytes   int64 `json:"dropped_bytes"`
	// DegradedWindows counts merges published without every shard
	// (stall-tolerant barriers only; 0 unless BarrierTimeout is set).
	DegradedWindows int64 `json:"degraded_windows"`
	// LastWindowDegraded marks the most recent merge as missing shards;
	// LastWindowShards is how many contributed.
	LastWindowDegraded bool `json:"last_window_degraded"`
	LastWindowShards   int  `json:"last_window_shards"`
	// ShardLag is, per shard, how many broadcast barriers the shard has
	// not yet passed (0 = fully caught up; growing = stalled).
	ShardLag []int64 `json:"shard_lag"`
	// Quarantined lists shards whose engine panicked and whose
	// substream is being shed.
	Quarantined []int `json:"quarantined_shards,omitempty"`
	// Panics counts recovered engine panics.
	Panics int64 `json:"panics"`
}

// Stats reports ingest and merge counters. Safe to call concurrently
// with ingest.
func (d *Sharded) Stats() Stats {
	st := Stats{
		Mode:         d.cfg.Mode.String(),
		Shards:       len(d.shards),
		Engine:       d.cfg.label(),
		Packets:      d.packets.Load(),
		Bytes:        d.bytes.Load(),
		ShardPackets: make([]int64, len(d.shards)),
		QueueDepth:   make([]int, len(d.shards)),
		SizeBytes:    d.SizeBytes(),
	}
	st.ShardLag = make([]int64, len(d.shards))
	seq := d.barrierSeq.Load()
	for i, s := range d.shards {
		st.ShardPackets[i] = s.packets.Load()
		st.QueueDepth[i] = s.ring.depth()
		st.DroppedPackets += s.droppedPackets.Load()
		st.DroppedBytes += s.droppedBytes.Load()
		st.ShardLag[i] = seq - s.lastBarrier.Load()
		if s.quarantined.Load() {
			st.Quarantined = append(st.Quarantined, i)
		}
	}
	rep := d.pub.Load()
	st.Windows = d.merges.Load()
	st.LastWindowEnd = rep.End
	st.LastWindowBytes = rep.Bytes
	st.DegradedWindows = d.degradedMerges.Load()
	st.LastWindowDegraded = rep.Degraded
	st.LastWindowShards = rep.Shards
	d.mu.Lock()
	st.Panics = d.panicked
	d.mu.Unlock()
	return st
}

// Close flushes staged batches, stops the workers and waits for them to
// drain. Close is idempotent and safe to call concurrently with Snapshot
// and Stats; after it returns, the ingest surface degrades to defined
// no-ops (TryObserve/TryObserveBatch report ErrClosed, Snapshot returns
// the last published set). In windowed mode, packets of the final,
// never-closed window are absorbed into shard summaries but — exactly
// like the single-threaded windowed detector — are only reported if a
// Snapshot past the window boundary closed it first.
//
// With BarrierTimeout configured the drain wait is bounded too: if a
// worker is still stuck after the close deadline (ten barrier timeouts,
// at least one second — generous for a healthy backlog, finite for a
// wedged shard), Close abandons it and returns ErrStalled. The
// abandoned worker touches only its own shard state if it ever revives,
// so the detector's read surface stays safe.
func (d *Sharded) Close() error {
	d.lifeMu.Lock()
	defer d.lifeMu.Unlock()
	if d.closed.Swap(true) {
		return nil
	}
	d.flushStaging()
	for _, s := range d.shards {
		s.ring.close()
	}
	if d.cfg.BarrierTimeout <= 0 {
		d.wg.Wait()
		return nil
	}
	drained := make(chan struct{})
	go func() {
		d.wg.Wait()
		close(drained)
	}()
	deadline := 10 * d.cfg.BarrierTimeout
	if deadline < time.Second {
		deadline = time.Second
	}
	timer := time.NewTimer(deadline)
	defer timer.Stop()
	select {
	case <-drained:
		return nil
	case <-timer.C:
		return fmt.Errorf("%w after %v", ErrStalled, deadline)
	}
}
