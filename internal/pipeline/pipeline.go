// Package pipeline implements the sharded concurrent ingest pipeline: N
// worker shards, each owning an independent windowed HHH engine fed
// through a bounded SPSC ring of packet batches, with packets
// hash-partitioned by source address.
//
// The coordinator (the caller's goroutine) sees the global time-ordered
// stream, so it alone decides window boundaries: at each boundary it
// flushes the staged batches and pushes one barrier token into every
// shard's ring. Ring FIFO order guarantees a shard reaches the token only
// after absorbing every batch of the closing window; the last shard to
// arrive merges all shard summaries (SpaceSaving.Merge level by level)
// into one engine, runs the conditioned HHH query, publishes the window's
// set, and releases the barrier. Shards then reset and continue with the
// next window's batches, which the coordinator has been queueing behind
// the token in the meantime — ingest never stops for a merge.
//
// Correctness rests on two properties of the underlying summaries:
// Space-Saving summaries admit bounded-error merging (Mitzenmacher,
// Steinke & Thaler), and RHHH's per-packet level sampling is
// order-insensitive (Ben Basat et al.), so hash-partitioned substreams
// recombine exactly. Because the shards partition the stream, the merged
// error bound telescopes: K shards with k counters each over a window of
// N bytes still bound overestimation by N/k, the single-engine bound.
package pipeline

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"hiddenhhh/internal/hashx"
	"hiddenhhh/internal/hhh"
	"hiddenhhh/internal/ipv4"
	"hiddenhhh/internal/sketch"
	"hiddenhhh/internal/trace"
)

// Kind selects the per-shard summary engine. Values mirror the public
// Engine constants (Exact=0, PerLevel=1, RHHH=2).
type Kind int

// Supported engines.
const (
	KindExact Kind = iota
	KindPerLevel
	KindRHHH
)

func (k Kind) String() string {
	switch k {
	case KindExact:
		return "exact"
	case KindPerLevel:
		return "perlevel"
	case KindRHHH:
		return "rhhh"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// Config parameterises New.
type Config struct {
	// Shards is the worker count. Default GOMAXPROCS.
	Shards int
	// Window is the disjoint window length. Required.
	Window time.Duration
	// Phi is the threshold fraction of per-window bytes. Required.
	Phi float64
	// Engine selects the per-shard summary. Default KindExact.
	Engine Kind
	// Counters per level for sketch engines. Default 512.
	Counters int
	// Hierarchy defaults to byte granularity.
	Hierarchy ipv4.Hierarchy
	// Seed drives KindRHHH sampling; shard i derives its own stream from
	// it (shard 0 uses Seed itself, so a 1-shard pipeline reproduces the
	// single-detector sequence exactly).
	Seed uint64
	// Batch is the packets staged per shard before a ring push.
	// Default 256.
	Batch int
	// RingDepth is the per-shard ring capacity in batches (rounded up to
	// a power of two). Default 64.
	RingDepth int
	// OnWindow, when set, receives every completed window's merged HHH
	// set, in window order. For windows with traffic it runs on a worker
	// goroutine while the other shards wait at the barrier; for empty
	// windows it runs on the ingest goroutine. It must not call back
	// into the detector.
	OnWindow func(start, end int64, set hhh.Set)
}

func (c *Config) setDefaults() error {
	if c.Window <= 0 {
		return fmt.Errorf("pipeline: window must be positive")
	}
	if c.Phi <= 0 || c.Phi > 1 {
		return fmt.Errorf("pipeline: phi %v out of (0,1]", c.Phi)
	}
	if c.Engine < KindExact || c.Engine > KindRHHH {
		return fmt.Errorf("pipeline: unknown engine %v", c.Engine)
	}
	if c.Shards <= 0 {
		c.Shards = runtime.GOMAXPROCS(0)
	}
	if c.Counters <= 0 {
		c.Counters = 512
	}
	if c.Hierarchy == (ipv4.Hierarchy{}) {
		c.Hierarchy = ipv4.NewHierarchy(ipv4.Byte)
	}
	if c.Batch <= 0 {
		c.Batch = 256
	}
	if c.RingDepth <= 0 {
		c.RingDepth = 64
	}
	return nil
}

// shardEngine is one shard's summary — exactly one of the three fields is
// active, mirroring the windowed detector's engine dispatch.
type shardEngine struct {
	h  ipv4.Hierarchy
	pl *hhh.PerLevel
	rh *hhh.RHHH
	ex *sketch.Exact
}

func newShardEngine(cfg *Config, shard int) *shardEngine {
	e := &shardEngine{h: cfg.Hierarchy}
	switch cfg.Engine {
	case KindPerLevel:
		e.pl = hhh.NewPerLevel(cfg.Hierarchy, cfg.Counters)
	case KindRHHH:
		// splitmix64 increments decorrelate the per-shard sampling
		// streams; shard 0 keeps cfg.Seed for 1-shard reproducibility.
		e.rh = hhh.NewRHHH(cfg.Hierarchy, cfg.Counters, cfg.Seed^(uint64(shard)*0x9e3779b97f4a7c15))
	default:
		e.ex = sketch.NewExact(1024)
	}
	return e
}

func (e *shardEngine) updateBatch(pkts []trace.Packet) {
	switch {
	case e.pl != nil:
		e.pl.UpdateBatch(pkts)
	case e.rh != nil:
		e.rh.UpdateBatch(pkts)
	default:
		for i := range pkts {
			e.ex.Update(uint64(pkts[i].Src), int64(pkts[i].Size))
		}
	}
}

// merge folds o into e. Engines are built from one Config, so kinds and
// shapes always match.
func (e *shardEngine) merge(o *shardEngine) {
	switch {
	case e.pl != nil:
		e.pl.Merge(o.pl)
	case e.rh != nil:
		e.rh.Merge(o.rh)
	default:
		e.ex.AddAll(o.ex)
	}
}

func (e *shardEngine) total() int64 {
	switch {
	case e.pl != nil:
		return e.pl.Total()
	case e.rh != nil:
		return e.rh.Total()
	default:
		return e.ex.Total()
	}
}

func (e *shardEngine) query(T int64) hhh.Set {
	switch {
	case e.pl != nil:
		return e.pl.Query(T)
	case e.rh != nil:
		return e.rh.Query(T)
	default:
		return hhh.Exact(e.ex, e.h, T)
	}
}

func (e *shardEngine) reset() {
	switch {
	case e.pl != nil:
		e.pl.Reset()
	case e.rh != nil:
		e.rh.Reset()
	default:
		e.ex.Reset()
	}
}

func (e *shardEngine) sizeBytes() int {
	switch {
	case e.pl != nil:
		return e.pl.SizeBytes()
	case e.rh != nil:
		return e.rh.SizeBytes()
	default:
		return e.ex.Len() * 16
	}
}

// windowBarrier synchronises one window close across all shards.
type windowBarrier struct {
	start, end int64
	need       int32
	arrived    atomic.Int32
	done       chan struct{}
}

// shard is one worker: a ring, an engine, and a batch-buffer freelist.
type shard struct {
	ring    *spscRing
	eng     *shardEngine
	free    chan []trace.Packet
	packets atomic.Int64
	size    atomic.Int64 // last published engine footprint
}

// Sharded is the concurrent windowed HHH detector. The ingest surface
// (Observe, ObserveBatch, Snapshot) follows the Detector contract — one
// goroutine at a time — while Stats and SizeBytes may be called
// concurrently with ingest (hhhserve reads them from HTTP handlers).
type Sharded struct {
	cfg    Config
	width  int64
	shards []*shard
	merged *shardEngine

	// Coordinator state: owned by the ingest goroutine.
	started       bool
	curEnd        int64
	staging       [][]trace.Packet
	lastBarrier   *windowBarrier
	windowHasData bool
	closed        bool

	// Shared state.
	mu         sync.Mutex
	last       hhh.Set
	windows    int64
	lastEnd    int64
	lastBytes  int64
	packets    atomic.Int64
	bytes      atomic.Int64
	mergedSize atomic.Int64
	wg         sync.WaitGroup
}

// New builds and starts a sharded pipeline. The caller must Close it to
// release the worker goroutines.
func New(cfg Config) (*Sharded, error) {
	if err := cfg.setDefaults(); err != nil {
		return nil, err
	}
	d := &Sharded{
		cfg:     cfg,
		width:   int64(cfg.Window),
		shards:  make([]*shard, cfg.Shards),
		merged:  newShardEngine(&cfg, 0),
		staging: make([][]trace.Packet, cfg.Shards),
		last:    hhh.NewSet(),
	}
	d.mergedSize.Store(int64(d.merged.sizeBytes()))
	for i := range d.shards {
		s := &shard{
			ring: newRing(cfg.RingDepth),
			eng:  newShardEngine(&cfg, i),
			free: make(chan []trace.Packet, cfg.RingDepth+2),
		}
		s.size.Store(int64(s.eng.sizeBytes()))
		d.shards[i] = s
		d.staging[i] = make([]trace.Packet, 0, cfg.Batch)
		d.wg.Add(1)
		go d.worker(s)
	}
	return d, nil
}

// worker drains one shard's ring until the ring is closed.
func (d *Sharded) worker(s *shard) {
	defer d.wg.Done()
	for {
		m, ok := s.ring.pop()
		if !ok {
			return
		}
		if m.bar != nil {
			d.arrive(m.bar, s)
			continue
		}
		s.eng.updateBatch(m.pkts)
		s.packets.Add(int64(len(m.pkts)))
		s.size.Store(int64(s.eng.sizeBytes()))
		select {
		case s.free <- m.pkts[:0]:
		default: // freelist full; let the GC take it
		}
	}
}

// arrive is the shard side of the window-close barrier. The last arriver
// performs the merge and query; everyone resets only after the merged
// set is published, since the merge reads every shard's engine.
func (d *Sharded) arrive(b *windowBarrier, s *shard) {
	if b.arrived.Add(1) == b.need {
		d.completeWindow(b)
	}
	<-b.done
	s.eng.reset()
	s.size.Store(int64(s.eng.sizeBytes()))
}

// completeWindow merges all shard summaries, queries the merged engine at
// the window's threshold, and publishes the result. Runs on the last
// arriving worker while its peers are parked at the barrier, so it has
// exclusive access to every engine.
func (d *Sharded) completeWindow(b *windowBarrier) {
	d.merged.reset()
	for _, s := range d.shards {
		d.merged.merge(s.eng)
	}
	total := d.merged.total()
	set := d.merged.query(hhh.Threshold(total, d.cfg.Phi))
	d.mergedSize.Store(int64(d.merged.sizeBytes()))
	d.mu.Lock()
	d.last = set
	d.windows++
	d.lastEnd = b.end
	d.lastBytes = total
	d.mu.Unlock()
	if d.cfg.OnWindow != nil {
		d.cfg.OnWindow(b.start, b.end, set)
	}
	close(b.done)
}

// shardOf hash-partitions a source address onto a shard.
func (d *Sharded) shardOf(src ipv4.Addr) int {
	return hashx.Bucket(hashx.Mix64(uint64(src)), len(d.shards))
}

// Observe implements the Detector ingest contract for one packet.
func (d *Sharded) Observe(p *trace.Packet) {
	d.checkOpen()
	if !d.started {
		d.started = true
		d.curEnd = (p.Ts/d.width + 1) * d.width
	}
	for p.Ts >= d.curEnd {
		d.closeWindow()
	}
	d.stage(p)
}

// ObserveBatch processes a run of packets in time order, splitting it at
// window boundaries and scattering each in-window run across the shards.
func (d *Sharded) ObserveBatch(pkts []trace.Packet) {
	d.checkOpen()
	for len(pkts) > 0 {
		p := &pkts[0]
		if !d.started {
			d.started = true
			d.curEnd = (p.Ts/d.width + 1) * d.width
		}
		for p.Ts >= d.curEnd {
			d.closeWindow()
		}
		n := sort.Search(len(pkts), func(i int) bool { return pkts[i].Ts >= d.curEnd })
		for i := range pkts[:n] {
			d.stage(&pkts[i])
		}
		pkts = pkts[n:]
	}
}

// stage appends one packet to its shard's staging buffer, flushing the
// buffer into the ring when full.
func (d *Sharded) stage(p *trace.Packet) {
	si := d.shardOf(p.Src)
	buf := append(d.staging[si], *p)
	d.windowHasData = true
	d.packets.Add(1)
	d.bytes.Add(int64(p.Size))
	if len(buf) >= d.cfg.Batch {
		d.pushBatch(si, buf)
		return
	}
	d.staging[si] = buf
}

// pushBatch hands a staged buffer to the shard's ring and replaces the
// staging slot from the freelist (allocating only when the freelist runs
// dry, i.e. when the ring is persistently deep).
func (d *Sharded) pushBatch(si int, buf []trace.Packet) {
	d.shards[si].ring.push(message{pkts: buf})
	select {
	case nb := <-d.shards[si].free:
		d.staging[si] = nb
	default:
		d.staging[si] = make([]trace.Packet, 0, d.cfg.Batch)
	}
}

// flushStaging pushes every non-empty staging buffer.
func (d *Sharded) flushStaging() {
	for si, buf := range d.staging {
		if len(buf) > 0 {
			d.pushBatch(si, buf)
		}
	}
}

// closeWindow flushes staged batches and broadcasts a barrier token. The
// coordinator does not wait for the merge: the next window's batches
// queue behind the token, and the barrier itself orders the shards.
//
// Empty windows — common when a trace has idle gaps much longer than the
// window — skip the barrier entirely: the shard engines hold nothing, so
// the coordinator publishes the empty set itself after waiting out any
// in-flight merge (which keeps window reports ordered). A gap of G
// windows then costs one barrier wait plus G cheap publishes instead of
// G full shard synchronisations.
func (d *Sharded) closeWindow() {
	start, end := d.curEnd-d.width, d.curEnd
	d.curEnd += d.width
	if !d.windowHasData {
		if b := d.lastBarrier; b != nil {
			<-b.done
		}
		set := hhh.NewSet()
		d.mu.Lock()
		d.last = set
		d.windows++
		d.lastEnd = end
		d.lastBytes = 0
		d.mu.Unlock()
		if d.cfg.OnWindow != nil {
			d.cfg.OnWindow(start, end, set)
		}
		return
	}
	d.windowHasData = false
	d.flushStaging()
	b := &windowBarrier{
		start: start,
		end:   end,
		need:  int32(len(d.shards)),
		done:  make(chan struct{}),
	}
	for _, s := range d.shards {
		s.ring.push(message{bar: b})
	}
	d.lastBarrier = b
}

// Snapshot implements Detector: it closes every window that ends at or
// before now, waits for its merge to complete, and returns the most
// recently completed window's merged HHH set.
func (d *Sharded) Snapshot(now int64) hhh.Set {
	d.checkOpen()
	for d.started && now >= d.curEnd {
		d.closeWindow()
	}
	if b := d.lastBarrier; b != nil {
		<-b.done
	}
	d.mu.Lock()
	set := d.last
	d.mu.Unlock()
	return set
}

// SizeBytes reports the pipeline's summary footprint: every shard engine
// plus the merge accumulator. Safe to call concurrently with ingest.
func (d *Sharded) SizeBytes() int {
	n := int(d.mergedSize.Load())
	for _, s := range d.shards {
		n += int(s.size.Load())
	}
	return n
}

// Stats is a point-in-time view of the pipeline, JSON-ready for the
// query server.
type Stats struct {
	Shards        int    `json:"shards"`
	Engine        string `json:"engine"`
	Packets       int64  `json:"packets"`
	Bytes         int64  `json:"bytes"`
	Windows       int64  `json:"windows"`
	LastWindowEnd int64  `json:"last_window_end_ns"`
	// LastWindowBytes is the merged byte volume of the most recently
	// completed window — the denominator of its HHH threshold.
	LastWindowBytes int64   `json:"last_window_bytes"`
	ShardPackets    []int64 `json:"shard_packets"`
	QueueDepth      []int   `json:"queue_depth"`
	SizeBytes       int     `json:"size_bytes"`
}

// Stats reports ingest and windowing counters. Safe to call concurrently
// with ingest.
func (d *Sharded) Stats() Stats {
	st := Stats{
		Shards:       len(d.shards),
		Engine:       d.cfg.Engine.String(),
		Packets:      d.packets.Load(),
		Bytes:        d.bytes.Load(),
		ShardPackets: make([]int64, len(d.shards)),
		QueueDepth:   make([]int, len(d.shards)),
		SizeBytes:    d.SizeBytes(),
	}
	for i, s := range d.shards {
		st.ShardPackets[i] = s.packets.Load()
		st.QueueDepth[i] = s.ring.depth()
	}
	d.mu.Lock()
	st.Windows = d.windows
	st.LastWindowEnd = d.lastEnd
	st.LastWindowBytes = d.lastBytes
	d.mu.Unlock()
	return st
}

// Close flushes staged batches, stops the workers and waits for them to
// drain. The detector must not be used after Close; Close itself is
// idempotent. Packets of the final, never-closed window are absorbed into
// shard engines but — exactly like the single-threaded windowed detector
// — are only reported if a Snapshot past the window boundary closed it
// first.
func (d *Sharded) Close() error {
	if d.closed {
		return nil
	}
	d.closed = true
	d.flushStaging()
	for _, s := range d.shards {
		s.ring.close()
	}
	d.wg.Wait()
	return nil
}

func (d *Sharded) checkOpen() {
	if d.closed {
		panic("pipeline: detector used after Close")
	}
}
