package pipeline

import (
	"testing"
	"time"

	"hiddenhhh/internal/chaos"
	"hiddenhhh/internal/gen"
	"hiddenhhh/internal/oracle"
)

// The chaos property matrix: every window model × injected fault is
// driven through the oracle differential harness. The properties under
// every fault are (1) no deadlock — ingest, Snapshot and Close return
// within the configured deadlines (the CI chaos job additionally caps
// the whole run with go test -timeout); (2) zero bound violations —
// the paper-family accuracy and coverage bounds hold relative to the
// mass the detector *declares* observed, with each snapshot's declared-
// missing mass widening only the under-side allowances; (3) exact drop
// accounting — faults that shed traffic declare it, and the no-fault
// cells declare nothing.
//
// This is the in-process proof of the cluster-mode roadmap semantics:
// a late or dead shard degrades declared coverage, never correctness.

// chaosFault arms one fault shape against shard 1 of 4.
type chaosFault struct {
	name string
	// arm installs the fault; the returned func clears it before Close
	// (releasing a blocked worker so drain assertions stay meaningful).
	arm func(p *chaos.Plan) func()
	// wantDrops requires the run to have shed traffic (and tolerates it
	// either way when false — a slow shard may or may not overflow).
	wantDrops bool
}

var chaosFaults = []chaosFault{
	{name: "none", arm: func(p *chaos.Plan) func() { return func() {} }},
	{name: "slow-shard", arm: func(p *chaos.Plan) func() {
		p.DelayBatches(1, 2*time.Millisecond)
		return func() { p.Clear() }
	}},
	{name: "blocked-shard", wantDrops: true, arm: func(p *chaos.Plan) func() {
		release := p.BlockShard(1)
		return release
	}},
	{name: "panic-shard", wantDrops: true, arm: func(p *chaos.Plan) func() {
		p.PanicNextBatch(1)
		return func() {}
	}},
	{name: "barrier-panic", arm: func(p *chaos.Plan) func() {
		p.PanicNextBarrier(1)
		return func() {}
	}},
}

// chaosDetCfg is one detector row of the matrix: a pipeline config plus
// the oracle reference/bounds that pin it.
type chaosDetCfg struct {
	name   string
	cfg    Config
	oracle oracle.Config
}

func chaosMatrixRows(window time.Duration) []chaosDetCfg {
	const counters = 256
	const phi = 0.03
	const eps = 1.0 / counters
	base := func(mode Mode) Config {
		return Config{
			Mode:     mode,
			Shards:   4,
			Window:   window,
			Phi:      phi,
			Counters: counters,
			Seed:     9,
			// Degradation-enabled everywhere: small rings and batches so
			// a faulty shard actually backs up, bounded shed waits, and a
			// barrier deadline generous enough that healthy runs never
			// trip it (the -race scheduler is slow) but wedged shards
			// cannot hold a merge beyond it.
			Batch:          64,
			RingDepth:      4,
			Overload:       OverloadShed,
			ShedWait:       500 * time.Microsecond,
			BarrierTimeout: 250 * time.Millisecond,
		}
	}
	ocfg := func(m oracle.Mode, b oracle.Bounds) oracle.Config {
		return oracle.Config{Mode: m, Window: window, Phi: phi, Bounds: b, SnapshotEvery: window / 2}
	}
	return []chaosDetCfg{
		{"windowed-exact", base(ModeWindowed), ocfg(oracle.ModeWindowed, oracle.Bounds{})},
		{"windowed-rhhh", func() Config { c := base(ModeWindowed); c.Engine = KindRHHH; return c }(),
			// RHHH's empirical sampling envelope, as pinned by the public
			// differential suite (oracle_diff_test.go).
			ocfg(oracle.ModeWindowed, oracle.Bounds{Epsilon: eps, Slack: 0.12, AllowUnder: true})},
		{"sliding", base(ModeSliding), ocfg(oracle.ModeSliding, oracle.Bounds{Epsilon: eps})},
		// The TDBF envelope is empirical (no deterministic bound); on this
		// rate-1000 trace with half-window snapshot cadence the observed
		// admission-hysteresis deviation peaks near 2.4% of decayed mass,
		// slightly above the public suite's 2% envelope at its
		// full-window cadence — 4% keeps the same ~safety margin.
		{"continuous", base(ModeContinuous), ocfg(oracle.ModeContinuous, oracle.Bounds{Slack: 0.04})},
	}
}

func TestChaosMatrix(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos matrix is the CI chaos job's workload")
	}
	window := 3 * time.Second
	scen := gen.HitAndRunScenario(15*time.Second, 42)
	scen.MeanPacketRate = 1000
	pkts, err := gen.Packets(scen)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range chaosMatrixRows(window) {
		for _, fault := range chaosFaults {
			t.Run(row.name+"/"+fault.name, func(t *testing.T) {
				plan := chaos.New()
				cfg := row.cfg
				cfg.Chaos = plan
				if fault.name == "none" {
					// The fault rows keep rings tiny so an injected slow
					// shard overflows them; under a heavyweight engine that
					// pressure alone sheds (which is overload working as
					// designed, not a fault). The no-fault cell asserts
					// zero declared degradation, so give it healthy rings
					// and a generous shed wait.
					cfg.RingDepth = 64
					cfg.ShedWait = time.Second
				}
				d, err := New(cfg)
				if err != nil {
					t.Fatal(err)
				}
				clear := fault.arm(plan)
				rep, err := oracle.Run(row.name, d, pkts, row.oracle)
				if err != nil {
					t.Fatal(err)
				}
				clear()
				if err := d.Close(); err != nil {
					t.Fatalf("Close after fault cleared: %v", err)
				}
				for _, sr := range rep.Snapshots {
					for _, v := range sr.Violations {
						t.Errorf("@%dms [missing=%.0f dropped=%d]: %s: %s",
							sr.At/1e6, sr.MissingMass, sr.DroppedBytes, v.Kind, v.Detail)
					}
				}
				dp, db := d.DroppedMass()
				deg := d.Degradation()
				if fault.name == "none" {
					if dp != 0 || db != 0 || deg.DegradedMerges != 0 || deg.Panics != 0 {
						t.Errorf("no-fault run declared degradation: %+v", deg)
					}
				}
				if fault.wantDrops && dp == 0 {
					t.Errorf("fault %s shed nothing — the fault did not bite", fault.name)
				}
				t.Logf("snapshots=%d violations=%d dropped=%d pkts/%d bytes degradedMerges=%d panics=%d precision=%.3f recall=%.3f",
					len(rep.Snapshots), rep.Violations, dp, db, deg.DegradedMerges, deg.Panics,
					rep.MeanPrecision, rep.MeanRecall)
			})
		}
	}
}
