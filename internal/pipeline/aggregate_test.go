package pipeline

import (
	"errors"
	"sort"
	"sync"
	"testing"
	"time"

	"hiddenhhh/internal/addr"
	"hiddenhhh/internal/hhh"
	"hiddenhhh/internal/sketch"
	"hiddenhhh/internal/swhh"
	"hiddenhhh/internal/wire"
)

// sealCollector gathers OnSeal emissions (the callback runs on merging
// goroutines, so collection needs a lock).
type sealCollector struct {
	mu    sync.Mutex
	seals []Sealed
}

func (c *sealCollector) add(s Sealed) {
	c.mu.Lock()
	c.seals = append(c.seals, s)
	c.mu.Unlock()
}

func (c *sealCollector) all() []Sealed {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]Sealed(nil), c.seals...)
}

// TestSealEmission drives a windowed pipeline with OnSeal set and checks
// the emitted frames: monotone sequence numbers, decodable payloads of
// the right engine kind, and window spans matching the OnWindow stream.
func TestSealEmission(t *testing.T) {
	var col sealCollector
	var windows []int64
	pkts := testStream(7, 20000, 7)
	width := int64(2 * time.Second)
	d, err := New(Config{
		Shards: 3,
		Window: 2 * time.Second,
		Phi:    0.03,
		Engine: KindPerLevel,
		OnWindow: func(start, end int64, set hhh.Set) {
			windows = append(windows, end)
		},
		OnSeal: func(s Sealed) { col.add(s) },
	})
	if err != nil {
		t.Fatal(err)
	}
	d.ObserveBatch(pkts)
	d.Snapshot(pkts[len(pkts)-1].Ts + width)
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	seals := col.all()
	if len(seals) == 0 {
		t.Fatal("no seals emitted")
	}
	if len(seals) != len(windows) {
		t.Fatalf("got %d seals for %d closed windows", len(seals), len(windows))
	}
	for i, s := range seals {
		if s.Seq != int64(i+1) {
			t.Fatalf("seal %d has Seq %d, want %d", i, s.Seq, i+1)
		}
		if s.Mode != "windowed" || s.Engine != "perlevel" {
			t.Fatalf("seal %d labeled %s/%s", i, s.Mode, s.Engine)
		}
		if s.End != windows[i] || s.Start != windows[i]-width {
			t.Fatalf("seal %d spans [%d,%d], window ended at %d", i, s.Start, s.End, windows[i])
		}
		v, err := wire.Decode(s.Frame)
		if err != nil {
			t.Fatalf("seal %d frame does not decode: %v", i, err)
		}
		pl, ok := v.(*hhh.PerLevel)
		if !ok {
			t.Fatalf("seal %d decoded to %T, want *hhh.PerLevel", i, v)
		}
		if pl.Total() != s.Bytes {
			t.Fatalf("seal %d declares %d bytes, frame holds %d", i, s.Bytes, pl.Total())
		}
	}
}

// TestSealClusterMatchesSingle is the in-process cluster round trip:
// three ingest pipelines over a source-partitioned stream seal their
// windows, an aggregator merges the sealed frames round by round, and —
// because the exact engine merges losslessly — every published global
// set must equal the single-pipeline run over the unpartitioned stream.
func TestSealClusterMatchesSingle(t *testing.T) {
	const nodes = 3
	const phi = 0.03
	window := 2 * time.Second
	width := int64(window)
	pkts := testStream(11, 30000, 7)
	last := pkts[len(pkts)-1].Ts + width

	// Reference: one pipeline over the whole stream.
	ref := map[int64]hhh.Set{}
	single, err := New(Config{
		Shards: 2, Window: window, Phi: phi, Engine: KindExact,
		OnWindow: func(start, end int64, set hhh.Set) { ref[end] = set },
	})
	if err != nil {
		t.Fatal(err)
	}
	single.ObserveBatch(pkts)
	single.Snapshot(last)
	if err := single.Close(); err != nil {
		t.Fatal(err)
	}

	// Fleet: partition by source, one pipeline per node, collect seals.
	cols := make([]sealCollector, nodes)
	for n := 0; n < nodes; n++ {
		d, err := New(Config{
			Shards: 2, Window: window, Phi: phi, Engine: KindExact,
			OnSeal: cols[n].add,
		})
		if err != nil {
			t.Fatal(err)
		}
		for i := range pkts {
			if int(pkts[i].Src.Lo()%nodes) == n {
				d.Observe(&pkts[i])
			}
		}
		d.Snapshot(last)
		if err := d.Close(); err != nil {
			t.Fatal(err)
		}
	}

	agg, err := NewAggregator(AggregatorConfig{Expected: nodes, Phi: phi, RoundGrace: time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	defer agg.Close()

	// Feed window by window; the round completes on the last node's
	// frame, so the report read right after is that round's.
	byEnd := map[int64][]struct {
		node string
		s    Sealed
	}{}
	for n := range cols {
		name := string(rune('a' + n))
		for _, s := range cols[n].all() {
			byEnd[s.End] = append(byEnd[s.End], struct {
				node string
				s    Sealed
			}{name, s})
		}
	}
	ends := make([]int64, 0, len(byEnd))
	for e := range byEnd {
		ends = append(ends, e)
	}
	sort.Slice(ends, func(i, j int) bool { return ends[i] < ends[j] })

	checked := 0
	for _, e := range ends {
		if len(byEnd[e]) != nodes {
			t.Fatalf("window %d sealed by %d/%d nodes", e, len(byEnd[e]), nodes)
		}
		for _, f := range byEnd[e] {
			if err := agg.Ingest(f.node, f.s); err != nil {
				t.Fatalf("ingest node %s end %d: %v", f.node, e, err)
			}
		}
		rep := agg.Report()
		if rep.End != e {
			t.Fatalf("report End %d after completing round %d", rep.End, e)
		}
		if rep.Degraded || rep.Nodes != nodes {
			t.Fatalf("complete round %d published degraded=%v nodes=%d", e, rep.Degraded, rep.Nodes)
		}
		want, ok := ref[e]
		if !ok {
			t.Fatalf("no reference window ending at %d", e)
		}
		if !rep.Set.Equal(want) {
			t.Fatalf("window %d: cluster set %v != single-run set %v", e, rep.Set, want)
		}
		checked++
	}
	if checked == 0 {
		t.Fatal("no rounds checked")
	}
	st := agg.Stats()
	if st.Kind != "exact" || st.Merges != int64(checked) || st.DegradedMerges != 0 {
		t.Fatalf("stats: %+v", st)
	}
	if len(st.Nodes) != nodes {
		t.Fatalf("stats tracks %d nodes", len(st.Nodes))
	}
}

// exactSeal builds a Sealed exact frame over a tiny fixed hierarchy for
// direct aggregator tests.
func exactSeal(seq, start, end int64, keys map[uint64]int64) Sealed {
	ex := sketch.NewExact(len(keys))
	for k, v := range keys {
		ex.Update(k, v)
	}
	return Sealed{
		Seq: seq, Start: start, End: end, Bytes: ex.Total(), Shards: 1,
		Frame: wire.EncodeExact(cfgHierarchy(), ex),
	}
}

// TestAggregatorGraceDegrades starves a round of one node and checks the
// grace timer publishes it degraded with the nodes that arrived.
func TestAggregatorGraceDegrades(t *testing.T) {
	agg, err := NewAggregator(AggregatorConfig{Expected: 3, Phi: 0.1, RoundGrace: 50 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer agg.Close()
	end := int64(time.Second)
	if err := agg.Ingest("a", exactSeal(1, 0, end, map[uint64]int64{1: 100})); err != nil {
		t.Fatal(err)
	}
	if err := agg.Ingest("b", exactSeal(1, 0, end, map[uint64]int64{2: 50})); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for agg.Report().Seq == 0 {
		if time.Now().After(deadline) {
			t.Fatal("grace timer never published the starved round")
		}
		time.Sleep(5 * time.Millisecond)
	}
	rep := agg.Report()
	if !rep.Degraded || rep.Nodes != 2 || rep.End != end {
		t.Fatalf("starved round published %+v", rep)
	}
	if rep.Bytes != 150 {
		t.Fatalf("starved round mass %d, want 150", rep.Bytes)
	}
	st := agg.Stats()
	if st.DegradedMerges != 1 {
		t.Fatalf("degraded merges %d, want 1", st.DegradedMerges)
	}
}

// TestAggregatorRejects exercises the validation surface: garbage
// frames, kind drift, hierarchy drift and stale sequence numbers.
func TestAggregatorRejects(t *testing.T) {
	agg, err := NewAggregator(AggregatorConfig{Expected: 2, Phi: 0.1, RoundGrace: time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	defer agg.Close()

	if err := agg.Ingest("a", Sealed{Seq: 1, Frame: []byte("not a frame")}); !errors.Is(err, ErrFrameRejected) {
		t.Fatalf("garbage frame: %v", err)
	}
	good := exactSeal(1, 0, int64(time.Second), map[uint64]int64{1: 10})
	if err := agg.Ingest("a", good); err != nil {
		t.Fatal(err)
	}
	// Kind drift: a per-level frame against an exact fleet.
	pl := hhh.NewPerLevel(cfgHierarchy(), 8)
	drift := Sealed{Seq: 2, End: int64(time.Second), Frame: wire.EncodePerLevel(pl)}
	if err := agg.Ingest("b", drift); !errors.Is(err, ErrFrameRejected) {
		t.Fatalf("kind drift: %v", err)
	}
	// Hierarchy drift: exact over a different ladder.
	h16 := addr.NewIPv4Hierarchy(16)
	ex := sketch.NewExact(1)
	ex.Update(1, 5)
	wrongH := Sealed{Seq: 3, End: int64(time.Second), Frame: wire.EncodeExact(h16, ex)}
	err = agg.Ingest("b", wrongH)
	if !errors.Is(err, ErrFrameRejected) || !errors.Is(err, wire.ErrHierarchyMismatch) {
		t.Fatalf("hierarchy drift: %v", err)
	}
	// Stale sequence from a: dropped silently, counted late.
	if err := agg.Ingest("a", good); err != nil {
		t.Fatalf("stale seq should drop, not error: %v", err)
	}
	st := agg.Stats()
	if st.Rejected != 3 {
		t.Fatalf("rejected %d, want 3", st.Rejected)
	}
	if st.LateFrames != 1 {
		t.Fatalf("late frames %d, want 1", st.LateFrames)
	}
}

// TestAggregatorSliding pins the latest-frame-per-node model: reports
// track the fleet-maximum End, a fresh fleet is not degraded, and a node
// whose newest frame trails by more than the window span degrades the
// report without corrupting it.
func TestAggregatorSliding(t *testing.T) {
	h := cfgHierarchy()
	cfg := swhh.Config{Window: time.Second, Frames: 4, Counters: 64}
	build := func(hostBase byte, upto int64) *swhh.SlidingHHH {
		d, err := swhh.NewSlidingHHH(h, cfg)
		if err != nil {
			t.Fatal(err)
		}
		for now := int64(0); now < upto; now += int64(10 * time.Millisecond) {
			d.Update(addr.From4(10, 0, 0, hostBase), 100, now)
		}
		return d
	}
	seal := func(seq int64, d *swhh.SlidingHHH, end int64) Sealed {
		return Sealed{Seq: seq, Start: end - int64(time.Second), End: end, Frame: wire.EncodeSliding(d)}
	}
	agg, err := NewAggregator(AggregatorConfig{Expected: 2, Phi: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	defer agg.Close()

	end0 := int64(time.Second)
	if err := agg.Ingest("a", seal(1, build(1, end0), end0)); err != nil {
		t.Fatal(err)
	}
	rep := agg.Report()
	if rep.Nodes != 1 || !rep.Degraded {
		t.Fatalf("half fleet published %+v", rep)
	}
	end1 := end0 + int64(200*time.Millisecond)
	if err := agg.Ingest("b", seal(1, build(2, end1), end1)); err != nil {
		t.Fatal(err)
	}
	rep = agg.Report()
	if rep.End != end1 || rep.Nodes != 2 || rep.Degraded {
		t.Fatalf("full fleet published %+v", rep)
	}
	if rep.Set.Len() == 0 {
		t.Fatal("merged sliding report is empty")
	}
	// Node a leaps far ahead; b's frame ages past the window span.
	end2 := end1 + int64(5*time.Second)
	if err := agg.Ingest("a", seal(2, build(1, end2), end2)); err != nil {
		t.Fatal(err)
	}
	rep = agg.Report()
	if rep.End != end2 || !rep.Degraded {
		t.Fatalf("lagging node should degrade: %+v", rep)
	}
}
