package pipeline

import (
	"sync/atomic"
	"time"

	"hiddenhhh/internal/trace"
)

// message is one unit flowing through a shard's ring: a columnar
// key-batch (kb != nil) or a barrier token (bar != nil) — a window close
// or a snapshot-time query. Tokens are ordered with batches, which is
// what makes the barrier protocol correct: by the time a shard pops a
// token, it has absorbed every batch staged before it.
type message struct {
	kb  *trace.KeyBatch
	bar *barrier
}

// spscRing is a bounded single-producer single-consumer ring of messages.
// The fast path is lock-free: the producer writes the slot then publishes
// with an atomic tail store; the consumer reads the tail, consumes the
// slot, then publishes with an atomic head store. Go's atomics give the
// required acquire/release ordering.
//
// Blocking (ring full / ring empty) parks on a 1-buffered notification
// channel instead of spinning. The wakeup protocol cannot lose signals:
// the counterpart always performs a non-blocking send after making
// progress, and a send that finds the channel full is droppable precisely
// because a token is already pending — the parked side will wake and
// re-check its condition in the loop.
type spscRing struct {
	buf  []message
	mask uint64

	_    [64]byte // keep head and tail on separate cache lines
	head atomic.Uint64
	_    [64]byte
	tail atomic.Uint64
	_    [64]byte

	closed   atomic.Bool
	notEmpty chan struct{}
	notFull  chan struct{}
}

// newRing builds a ring with capacity rounded up to a power of two.
func newRing(capacity int) *spscRing {
	size := 1
	for size < capacity {
		size <<= 1
	}
	return &spscRing{
		buf:      make([]message, size),
		mask:     uint64(size - 1),
		notEmpty: make(chan struct{}, 1),
		notFull:  make(chan struct{}, 1),
	}
}

// push enqueues m, blocking while the ring is full. Producer-side only;
// must not be called after close.
func (r *spscRing) push(m message) {
	for {
		if r.tryPush(m) {
			return
		}
		<-r.notFull
	}
}

// tryPush enqueues m if the ring has space, reporting whether it did.
// Producer-side only.
func (r *spscRing) tryPush(m message) bool {
	t := r.tail.Load()
	if t-r.head.Load() >= uint64(len(r.buf)) {
		return false
	}
	r.buf[t&r.mask] = m
	r.tail.Store(t + 1)
	select {
	case r.notEmpty <- struct{}{}:
	default:
	}
	return true
}

// pushWait is push with the full-ring wait bounded at wait: it parks on
// the notFull channel like push, but gives up once the deadline passes
// without space appearing, reporting whether m was enqueued. The caller
// owns the overload policy — dropping and accounting m is its job.
// Producer-side only.
func (r *spscRing) pushWait(m message, wait time.Duration) bool {
	if r.tryPush(m) {
		return true
	}
	if wait <= 0 {
		return false
	}
	timer := time.NewTimer(wait)
	defer timer.Stop()
	for {
		select {
		case <-r.notFull:
			if r.tryPush(m) {
				return true
			}
		case <-timer.C:
			// One last try: the consumer may have drained between the
			// final park and the deadline firing.
			return r.tryPush(m)
		}
	}
}

// pop dequeues the next message, blocking while the ring is empty. It
// returns ok=false once the ring is closed and fully drained. Consumer-
// side only.
func (r *spscRing) pop() (message, bool) {
	for {
		h := r.head.Load()
		if h != r.tail.Load() {
			m := r.buf[h&r.mask]
			r.buf[h&r.mask] = message{} // drop references for the GC
			r.head.Store(h + 1)
			select {
			case r.notFull <- struct{}{}:
			default:
			}
			return m, true
		}
		if r.closed.Load() && h == r.tail.Load() {
			return message{}, false
		}
		<-r.notEmpty
	}
}

// close marks the stream ended. The consumer drains remaining messages,
// then pop returns false. Producer-side only.
func (r *spscRing) close() {
	r.closed.Store(true)
	select {
	case r.notEmpty <- struct{}{}:
	default:
	}
}

// depth reports the number of queued messages (approximate under
// concurrency; used for stats only).
func (r *spscRing) depth() int {
	return int(r.tail.Load() - r.head.Load())
}
