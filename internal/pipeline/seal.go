// Sealed-summary export: the ingest side of cluster mode. When
// Config.OnSeal is set, every completed merge — a window close in
// windowed mode, a snapshot barrier in the sliding and continuous modes
// — is additionally encoded into a stable internal/wire frame and handed
// to the callback, ready to ship to an aggregator node that merges
// frames from many ingest processes via the same Merge contracts the
// shards use locally.

package pipeline

import (
	"sync"
	"sync/atomic"

	"hiddenhhh/internal/wire"
)

// Sealed is one merged summary sealed into a self-contained wire frame,
// plus the metadata an aggregator needs to align it: the window span it
// covers, a per-process monotonic sequence number, and the local
// degradation verdict. The Frame bytes are shared (empty windows reuse
// one cached frame) — treat as read-only.
type Sealed struct {
	// Mode is the pipeline's window model ("windowed", "sliding",
	// "continuous").
	Mode string
	// Engine is the per-shard summary kind the pipeline runs.
	Engine string
	// Seq numbers this process's seals monotonically from 1; gaps at the
	// receiver mean frames were lost in transit.
	Seq int64
	// Start and End delimit the span the frame covers: the exact window
	// in windowed mode, the trailing window ending at the barrier
	// timestamp in sliding mode, and the decay-horizon-sized span ending
	// at the query timestamp in continuous mode.
	Start, End int64
	// Bytes is the merge's total mass (the threshold denominator).
	Bytes int64
	// Shards is how many shard summaries contributed.
	Shards int
	// Degraded marks a merge that completed without every shard.
	Degraded bool
	// Frame is the wire-encoded merged summary.
	Frame []byte
}

// sealState is the Sharded-side support for OnSeal: the callback, the
// seal sequence, and a lazily built cached frame for empty windows
// (whose summary state never varies, so one encoding serves them all).
type sealState struct {
	fn  func(Sealed)
	seq atomic.Int64

	emptyOnce  sync.Once
	emptyFrame []byte
}

// encodeSummary seals any pipeline summary into its wire frame.
func encodeSummary(s Summary) ([]byte, error) {
	switch e := s.(type) {
	case *windowedSummary:
		switch {
		case e.pl != nil:
			return wire.EncodePerLevel(e.pl), nil
		case e.rh != nil:
			return wire.EncodeRHHH(e.rh), nil
		default:
			return wire.EncodeExact(e.h, e.ex), nil
		}
	case *slidingSummary:
		return wire.EncodeSliding(e.d), nil
	case *mementoSummary:
		return wire.EncodeMemento(e.d), nil
	case *continuousSummary:
		return wire.EncodeContinuous(e.d)
	default:
		return wire.Encode(s)
	}
}

// emptySealFrame returns the cached frame of a pristine summary, built
// on first use. Empty windows are common under idle traffic; caching
// keeps their fast path allocation-free after the first.
func (d *Sharded) emptySealFrame() []byte {
	d.seal.emptyOnce.Do(func() {
		eng, err := newSummary(&d.cfg, 0)
		if err != nil {
			return // New validated cfg already; unreachable
		}
		if frame, err := encodeSummary(eng); err == nil {
			d.seal.emptyFrame = frame
		}
	})
	return d.seal.emptyFrame
}

// emitSeal encodes the merged summary and hands it to OnSeal. Runs on
// the goroutine that completed the merge (under mergeMu, so the summary
// is quiescent) or, for empty windows, on the coordinator with the
// cached empty frame.
func (d *Sharded) emitSeal(frame []byte, start, end, total int64, shards int, degraded bool) {
	if frame == nil {
		return // unserialisable summary; cluster mode documents the stock laws only
	}
	d.seal.fn(Sealed{
		Mode:     d.cfg.Mode.String(),
		Engine:   d.cfg.Engine.String(),
		Seq:      d.seal.seq.Add(1),
		Start:    start,
		End:      end,
		Bytes:    total,
		Shards:   shards,
		Degraded: degraded,
		Frame:    frame,
	})
}
