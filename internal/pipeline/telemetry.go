// Telemetry instrumentation for the sharded pipeline.
//
// The wiring deliberately splits by cost class. Everything that already
// exists as an atomic counter or mutex-guarded field — ingest totals,
// per-shard packet counts, ring depths, shed/quarantine accounting,
// merge/seal counts — is exported through function-backed metrics that
// read the live value at scrape time, adding zero instructions to the
// ingest path. In particular the degradation families read the very same
// per-shard atomics Degradation() and DroppedMass() sum, so /metrics and
// the JSON degradation report can never disagree. Only three histograms
// observe actively, and all on event-frequency paths: batch hand-off
// latency (once per staged batch, ~hundreds of packets), barrier-merge
// duration (once per window close or query barrier), and snapshot
// latency (once per Snapshot). The per-packet stage() path is untouched.
package pipeline

import (
	"strconv"

	"hiddenhhh/internal/telemetry"
)

// pipeTelemetry holds the pipeline's active (non-function-backed) metric
// handles; nil when Config.Metrics is unset, and every observation site
// is nil-guarded.
type pipeTelemetry struct {
	handoff  *telemetry.Histogram
	merge    *telemetry.Histogram
	snapshot *telemetry.Histogram
}

// registerMetrics wires d into r and returns the active handles. Called
// once from New; the function-backed families keep reading d's live
// counters on every scrape.
func (d *Sharded) registerMetrics(r *telemetry.Registry) *pipeTelemetry {
	engine, mode := d.cfg.label(), d.cfg.Mode.String()

	// Detector-level families: engine×mode labeled, one child per
	// detector instance (hhhserve runs exactly one).
	r.CounterVec("hhh_detector_packets_total",
		"Packets observed by the detector, by engine and window model.",
		"engine", "mode").WithFunc(d.packets.Load, engine, mode)
	r.CounterVec("hhh_detector_bytes_total",
		"Bytes observed by the detector, by engine and window model.",
		"engine", "mode").WithFunc(d.bytes.Load, engine, mode)
	r.GaugeVec("hhh_detector_summary_bytes",
		"Current summary state footprint (all shard summaries plus the merge accumulator).",
		"engine", "mode").WithFunc(func() float64 { return float64(d.SizeBytes()) }, engine, mode)
	snapshot := r.HistogramVec("hhh_detector_snapshot_seconds",
		"Snapshot latency: barrier broadcast to published merged HHH set.",
		telemetry.LatencyBuckets, "engine", "mode").With(engine, mode)

	// Pipeline merge/seal families. Windows are sealed by published
	// merges (plus the coordinator's empty-window fast path), so the seal
	// counters read the same atomics and published WindowReport Stats
	// reports — no lock is shared with the merge or ingest paths.
	seals := r.CounterVec("hhh_pipeline_window_seals_total",
		"Published merges (window closes and query barriers), split by whether every shard contributed.",
		"result")
	seals.WithFunc(func() int64 { return d.merges.Load() - d.degradedMerges.Load() }, "normal")
	seals.WithFunc(d.degradedMerges.Load, "degraded")
	r.CounterFunc("hhh_pipeline_barriers_total",
		"Barrier tokens broadcast to the shards (window closes plus query barriers).",
		d.barrierSeq.Load)
	r.GaugeFunc("hhh_pipeline_last_window_bytes",
		"Total mass of the most recently published merge (the HHH threshold denominator).",
		func() float64 { return float64(d.pub.Load().Bytes) })
	r.CounterFunc("hhh_pipeline_panics_total",
		"Engine panics recovered by the shard workers' panic isolation.",
		func() int64 {
			d.mu.Lock()
			defer d.mu.Unlock()
			return d.panicked
		})

	// Per-shard families. Shed and quarantine children read the exact
	// atomics behind Degradation()/DroppedMass() — 1:1 by construction.
	ringDepth := r.GaugeVec("hhh_pipeline_ring_depth",
		"Current occupancy of the shard's ingest ring, in queued messages.", "shard")
	ringHigh := r.GaugeVec("hhh_pipeline_ring_high_water",
		"Highest ring occupancy seen at a batch hand-off since start.", "shard")
	shardPkts := r.CounterVec("hhh_pipeline_shard_packets_total",
		"Packets absorbed into the shard's summary.", "shard")
	shedPkts := r.CounterVec("hhh_pipeline_shed_packets_total",
		"Packets shed by the shard: ring-full drops, quarantined substream, missed merges.", "shard")
	shedBytes := r.CounterVec("hhh_pipeline_shed_bytes_total",
		"Bytes shed by the shard: ring-full drops, quarantined substream, missed merges.", "shard")
	quarantined := r.GaugeVec("hhh_pipeline_shard_quarantined",
		"1 while the shard's engine is quarantined after a panic, else 0.", "shard")
	lag := r.GaugeVec("hhh_pipeline_shard_barrier_lag",
		"Broadcast barriers the shard has not yet passed (0 = caught up).", "shard")
	sumBytes := r.GaugeVec("hhh_pipeline_shard_summary_bytes",
		"Last published footprint of the shard's summary.", "shard")
	for i, s := range d.shards {
		s, is := s, strconv.Itoa(i)
		ringDepth.WithFunc(func() float64 { return float64(s.ring.depth()) }, is)
		ringHigh.WithFunc(func() float64 { return float64(s.highWater.Load()) }, is)
		shardPkts.WithFunc(s.packets.Load, is)
		shedPkts.WithFunc(s.droppedPackets.Load, is)
		shedBytes.WithFunc(s.droppedBytes.Load, is)
		quarantined.WithFunc(func() float64 {
			if s.quarantined.Load() {
				return 1
			}
			return 0
		}, is)
		lag.WithFunc(func() float64 {
			return float64(d.barrierSeq.Load() - s.lastBarrier.Load())
		}, is)
		sumBytes.WithFunc(func() float64 { return float64(s.size.Load()) }, is)
	}

	return &pipeTelemetry{
		handoff: r.Histogram("hhh_pipeline_handoff_seconds",
			"Batch hand-off latency: staging a full batch into its shard ring, including any bounded ring-full wait.",
			telemetry.LatencyBuckets),
		merge: r.Histogram("hhh_pipeline_barrier_merge_seconds",
			"Barrier-merge duration: merging the registered shard summaries, querying, and publishing.",
			telemetry.LatencyBuckets),
		snapshot: snapshot,
	}
}
