// Cluster aggregation: the receive side of cluster mode. An Aggregator
// accepts sealed wire frames from a fleet of ingest processes (each
// running its own Sharded pipeline with Config.OnSeal set), aligns them
// — per exact window for the windowed engines, latest-frame-per-node for
// the sliding and continuous engines — merges them through the same
// Merge contracts the in-process shards use, and publishes a global HHH
// report. Late or missing nodes degrade the report's declared coverage
// (Nodes < Expected, Degraded set), never its correctness: a published
// set is always the true answer over the frames that arrived.
//
// Alignment rules
//
//   - Windowed kinds (per-level, exact, rhhh): frames are grouped into
//     rounds keyed by their window End. A round publishes as soon as
//     every expected node has contributed, or when RoundGrace expires,
//     whichever is first; the grace path publishes with the nodes that
//     arrived and marks the report degraded. Frames for already
//     published rounds are counted late and dropped.
//   - Sliding kinds (sliding, memento) and continuous: the aggregator
//     keeps each node's newest frame, decodes them all on every ingest,
//     advances each engine to the fleet-wide maximum End and merges.
//     A silent node's last frame keeps contributing until it ages out
//     of the window naturally — exactly the sliding model's semantics —
//     and the report is marked degraded once any node's End trails the
//     fleet maximum by more than the window span.
//
// Every frame is validated by the wire codec before it touches an
// engine; kind or hierarchy drift against the first accepted frame is
// rejected with a typed error, and engine panics on geometry mismatches
// (e.g. two nodes configured with different counter budgets) are
// recovered and reported as errors, keeping the aggregator alive.

package pipeline

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"hiddenhhh/internal/hhh"
	"hiddenhhh/internal/swhh"
	"hiddenhhh/internal/telemetry"
	"hiddenhhh/internal/wire"

	"hiddenhhh/internal/continuous"
)

// ErrFrameRejected wraps every Aggregator.Ingest rejection that is the
// sender's fault (undecodable frame, kind or hierarchy drift, merge
// geometry mismatch) so servers can map it to a 4xx response.
var ErrFrameRejected = errors.New("pipeline: frame rejected")

// AggregatorConfig parameterises NewAggregator.
type AggregatorConfig struct {
	// Expected is the ingest fleet size the aggregator waits for before
	// publishing a windowed round, and the denominator for coverage
	// degradation. Required.
	Expected int
	// Phi is the global threshold fraction applied to the merged
	// summary. Required for every kind except continuous, whose decoded
	// detectors carry their own phi.
	Phi float64
	// RoundGrace bounds how long a windowed round waits for stragglers
	// after its first frame arrives; on expiry the round publishes
	// degraded with the nodes present. Default 2s.
	RoundGrace time.Duration
	// Metrics, when set, registers per-node frame/lag/last-seen series
	// and aggregate merge counters on the registry.
	Metrics *telemetry.Registry
}

func (c *AggregatorConfig) setDefaults() error {
	if c.Expected <= 0 {
		return fmt.Errorf("pipeline: aggregator expects a positive fleet size, got %d", c.Expected)
	}
	if !(c.Phi > 0 && c.Phi <= 1) {
		return fmt.Errorf("pipeline: aggregator phi %v out of (0,1]", c.Phi)
	}
	if c.RoundGrace <= 0 {
		c.RoundGrace = 2 * time.Second
	}
	return nil
}

// AggReport is one published global merge.
type AggReport struct {
	// Set is the merged fleet-wide HHH set.
	Set hhh.Set
	// Start and End delimit the span the report covers (the round's
	// window for windowed kinds, the trailing span ending at the fleet
	// maximum End for sliding kinds).
	Start, End int64
	// Bytes is the merged total mass the threshold was computed from.
	Bytes int64
	// Nodes is how many ingest nodes contributed frames.
	Nodes int
	// Expected is the configured fleet size.
	Expected int
	// Degraded marks a report missing nodes (or lagging ones, for
	// sliding kinds) or built from frames that were themselves sealed
	// degraded on their ingest node.
	Degraded bool
	// Seq numbers publications monotonically from 1.
	Seq int64
}

// AggNodeStats is the per-node view served by Aggregator.Stats.
type AggNodeStats struct {
	// Node is the sender's self-declared name.
	Node string `json:"node"`
	// Frames counts accepted frames from this node.
	Frames int64 `json:"frames"`
	// LastSeq is the highest seal sequence number seen.
	LastSeq int64 `json:"last_seq"`
	// LastEnd is the newest window End covered by this node's frames.
	LastEnd int64 `json:"last_end"`
	// LastSeenUnixNano is the wall-clock receipt time of the newest
	// frame.
	LastSeenUnixNano int64 `json:"last_seen_unix_nano"`
	// LagNs is how far this node's LastEnd trails the fleet maximum.
	LagNs int64 `json:"lag_ns"`
	// Rejected counts frames from this node that failed decode or
	// validation.
	Rejected int64 `json:"rejected"`
}

// AggStats is the aggregator-wide counter snapshot.
type AggStats struct {
	// Kind is the summary kind the fleet ships ("" until the first
	// frame).
	Kind string `json:"kind"`
	// Expected is the configured fleet size.
	Expected int `json:"expected"`
	// Merges counts published reports; DegradedMerges the subset
	// published without full fleet coverage.
	Merges         int64 `json:"merges"`
	DegradedMerges int64 `json:"degraded_merges"`
	// LateFrames counts frames that arrived for an already published
	// round (or behind the sender's own newest sequence) and were
	// dropped.
	LateFrames int64 `json:"late_frames"`
	// Rejected counts frames refused for decode or validation errors.
	Rejected int64 `json:"rejected"`
	// Nodes holds the per-node views, sorted by name.
	Nodes []AggNodeStats `json:"nodes"`
}

// aggNode tracks one sender.
type aggNode struct {
	name     string
	frames   int64
	lastSeq  int64
	lastEnd  int64
	lastSeen int64 // wall-clock unix nanos
	rejected int64
	latest   []byte // newest frame (sliding kinds)
	frameCtr *telemetry.Counter
}

// aggRound is one pending windowed round.
type aggRound struct {
	start, end int64
	frames     map[string][]byte
	degraded   bool // any contributing frame sealed degraded
	timer      *time.Timer
}

// Aggregator merges sealed summary frames from many ingest processes
// into a global HHH report. All methods are safe for concurrent use.
type Aggregator struct {
	cfg AggregatorConfig

	mu        sync.Mutex
	kind      wire.Kind   // pinned by the first accepted frame
	hdr       wire.Header // descriptor pinned alongside kind
	spanWidth int64       // window span learned from sealed metadata
	nodes     map[string]*aggNode
	rounds    map[int64]*aggRound // windowed kinds only
	published int64               // newest published round End
	closed    bool

	pub            atomic.Pointer[AggReport]
	pubSeq         atomic.Int64
	merges         atomic.Int64
	degradedMerges atomic.Int64
	lateFrames     atomic.Int64
	rejected       atomic.Int64

	frameVec *telemetry.CounterVec
	lagVec   *telemetry.GaugeVec
	seenVec  *telemetry.GaugeVec
}

// NewAggregator builds an aggregator for a fleet of cfg.Expected ingest
// nodes. Callers should Close it to release pending round timers.
func NewAggregator(cfg AggregatorConfig) (*Aggregator, error) {
	if err := cfg.setDefaults(); err != nil {
		return nil, err
	}
	a := &Aggregator{
		cfg:    cfg,
		nodes:  make(map[string]*aggNode),
		rounds: make(map[int64]*aggRound),
	}
	a.pub.Store(&AggReport{Set: hhh.NewSet(), Expected: cfg.Expected})
	if r := cfg.Metrics; r != nil {
		a.frameVec = r.CounterVec("hhh_aggregator_frames_total",
			"Sealed frames accepted, by ingest node.", "node")
		a.lagVec = r.GaugeVec("hhh_aggregator_node_lag_seconds",
			"How far each node's newest window End trails the fleet maximum.", "node")
		a.seenVec = r.GaugeVec("hhh_aggregator_node_last_seen_seconds",
			"Wall-clock receipt time of each node's newest frame (unix seconds).", "node")
		r.CounterFunc("hhh_aggregator_merges_total",
			"Global reports published.", a.merges.Load)
		r.CounterFunc("hhh_aggregator_degraded_merges_total",
			"Global reports published without full fleet coverage.", a.degradedMerges.Load)
		r.CounterFunc("hhh_aggregator_late_frames_total",
			"Frames dropped for arriving behind an already published round.", a.lateFrames.Load)
		r.CounterFunc("hhh_aggregator_rejected_frames_total",
			"Frames refused for decode or validation errors.", a.rejected.Load)
	}
	return a, nil
}

// roundAligned reports whether the kind merges per exact window (true)
// or latest-frame-per-node (false).
func roundAligned(k wire.Kind) bool {
	switch k {
	case wire.KindPerLevel, wire.KindExact, wire.KindRHHH:
		return true
	default:
		return false
	}
}

// node returns (creating on first use) the tracker for a sender.
// Caller holds a.mu.
func (a *Aggregator) node(name string) *aggNode {
	n, ok := a.nodes[name]
	if !ok {
		n = &aggNode{name: name}
		if a.frameVec != nil {
			n.frameCtr = a.frameVec.With(name)
			a.lagVec.WithFunc(func() float64 {
				return a.nodeLagSeconds(name)
			}, name)
			a.seenVec.WithFunc(func() float64 {
				a.mu.Lock()
				defer a.mu.Unlock()
				return float64(a.nodes[name].lastSeen) / 1e9
			}, name)
		}
		a.nodes[name] = n
	}
	return n
}

// nodeLagSeconds computes the scrape-time lag gauge for one node.
func (a *Aggregator) nodeLagSeconds(name string) float64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	var maxEnd int64
	for _, n := range a.nodes {
		if n.lastEnd > maxEnd {
			maxEnd = n.lastEnd
		}
	}
	n := a.nodes[name]
	if n == nil || n.lastEnd == 0 || maxEnd <= n.lastEnd {
		return 0
	}
	return float64(maxEnd-n.lastEnd) / 1e9
}

// reject counts and wraps a sender-fault error.
func (a *Aggregator) reject(n *aggNode, format string, args ...any) error {
	a.rejected.Add(1)
	if n != nil {
		n.rejected++
	}
	return fmt.Errorf("%w: %s", ErrFrameRejected, fmt.Sprintf(format, args...))
}

// Ingest accepts one sealed frame from the named node. Rejections wrap
// ErrFrameRejected; a nil return means the frame was accepted (it may
// still have been dropped as late, which Stats counts).
func (a *Aggregator) Ingest(nodeName string, s Sealed) error {
	hdr, err := wire.Inspect(s.Frame)
	if err != nil {
		a.mu.Lock()
		n := a.node(nodeName)
		err := a.reject(n, "bad frame from %s: %v", nodeName, err)
		a.mu.Unlock()
		return err
	}

	a.mu.Lock()
	if a.closed {
		a.mu.Unlock()
		return fmt.Errorf("pipeline: aggregator closed")
	}
	n := a.node(nodeName)
	if a.kind == 0 {
		if roundAligned(hdr.Kind) || hdr.Kind == wire.KindSliding ||
			hdr.Kind == wire.KindMemento || hdr.Kind == wire.KindContinuous {
			a.kind, a.hdr = hdr.Kind, hdr
		} else {
			err := a.reject(n, "kind %v is not a mergeable top-level summary", hdr.Kind)
			a.mu.Unlock()
			return err
		}
	}
	if hdr.Kind != a.kind {
		err := a.reject(n, "kind drift: fleet ships %v, %s sent %v", a.kind, nodeName, hdr.Kind)
		a.mu.Unlock()
		return err
	}
	if hdr.Family != a.hdr.Family || hdr.Step != a.hdr.Step || hdr.Depth != a.hdr.Depth {
		a.rejected.Add(1)
		n.rejected++
		a.mu.Unlock()
		return fmt.Errorf("%w: %w: fleet hierarchy (%d/%d/%d), %s sent (%d/%d/%d)",
			ErrFrameRejected, wire.ErrHierarchyMismatch,
			a.hdr.Family, a.hdr.Step, a.hdr.Depth,
			nodeName, hdr.Family, hdr.Step, hdr.Depth)
	}
	if s.Seq <= n.lastSeq {
		a.lateFrames.Add(1)
		a.mu.Unlock()
		return nil
	}
	n.frames++
	n.lastSeq = s.Seq
	if s.End > n.lastEnd {
		n.lastEnd = s.End
	}
	n.lastSeen = time.Now().UnixNano()
	if n.frameCtr != nil {
		n.frameCtr.Inc()
	}
	if w := s.End - s.Start; w > 0 {
		a.spanWidth = w
	}

	if roundAligned(a.kind) {
		err = a.ingestRoundLocked(nodeName, s)
		a.mu.Unlock()
		return err
	}
	n.latest = s.Frame
	err = a.publishLatestLocked(s.Degraded)
	a.mu.Unlock()
	return err
}

// ingestRoundLocked files a frame into its window round, publishing the
// round when the fleet is complete. Caller holds a.mu.
func (a *Aggregator) ingestRoundLocked(nodeName string, s Sealed) error {
	if s.End <= a.published {
		a.lateFrames.Add(1)
		return nil
	}
	r, ok := a.rounds[s.End]
	if !ok {
		r = &aggRound{start: s.Start, end: s.End, frames: make(map[string][]byte)}
		r.timer = time.AfterFunc(a.cfg.RoundGrace, func() { a.expireRound(s.End) })
		a.rounds[s.End] = r
	}
	r.frames[nodeName] = s.Frame
	r.degraded = r.degraded || s.Degraded
	if len(r.frames) >= a.cfg.Expected {
		return a.publishRoundsThroughLocked(r.end)
	}
	return nil
}

// expireRound is the RoundGrace timer body: publish the round with
// whoever arrived.
func (a *Aggregator) expireRound(end int64) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.closed || a.rounds[end] == nil || end <= a.published {
		return
	}
	_ = a.publishRoundsThroughLocked(end)
}

// publishRoundsThroughLocked publishes every pending round with End ≤
// end in window order (older rounds flush degraded ahead of a completed
// newer one, keeping publications monotone). Caller holds a.mu.
func (a *Aggregator) publishRoundsThroughLocked(end int64) error {
	var ends []int64
	for e := range a.rounds {
		if e <= end {
			ends = append(ends, e)
		}
	}
	for i := 0; i < len(ends); i++ { // insertion sort; rounds are few
		for j := i; j > 0 && ends[j] < ends[j-1]; j-- {
			ends[j], ends[j-1] = ends[j-1], ends[j]
		}
	}
	var firstErr error
	for _, e := range ends {
		r := a.rounds[e]
		delete(a.rounds, e)
		r.timer.Stop()
		a.published = e
		if err := a.publishRoundLocked(r); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// publishRoundLocked merges one round's frames and publishes the global
// report. Caller holds a.mu.
func (a *Aggregator) publishRoundLocked(r *aggRound) error {
	set, total, err := a.mergeFrames(framesOf(r.frames), r.end)
	if err != nil {
		a.rejected.Add(1)
		return fmt.Errorf("%w: round %d: %v", ErrFrameRejected, r.end, err)
	}
	a.store(&AggReport{
		Set:      set,
		Start:    r.start,
		End:      r.end,
		Bytes:    total,
		Nodes:    len(r.frames),
		Expected: a.cfg.Expected,
		Degraded: r.degraded || len(r.frames) < a.cfg.Expected,
	})
	return nil
}

// publishLatestLocked re-merges every node's newest frame (sliding
// kinds). Caller holds a.mu.
func (a *Aggregator) publishLatestLocked(sealDegraded bool) error {
	var frames [][]byte
	var maxEnd int64
	contributing := 0
	for _, n := range a.nodes {
		if n.latest == nil {
			continue
		}
		frames = append(frames, n.latest)
		contributing++
		if n.lastEnd > maxEnd {
			maxEnd = n.lastEnd
		}
	}
	set, total, err := a.mergeFrames(frames, maxEnd)
	if err != nil {
		a.rejected.Add(1)
		return fmt.Errorf("%w: %v", ErrFrameRejected, err)
	}
	degraded := sealDegraded || contributing < a.cfg.Expected
	if width := a.spanWidth; width > 0 {
		for _, n := range a.nodes {
			if n.latest != nil && maxEnd-n.lastEnd > width {
				degraded = true // node's last frame has aged past the span
			}
		}
	}
	a.store(&AggReport{
		Set:      set,
		Start:    a.latestStart(maxEnd),
		End:      maxEnd,
		Bytes:    total,
		Nodes:    contributing,
		Expected: a.cfg.Expected,
		Degraded: degraded,
	})
	return nil
}

// latestStart derives the published span start for sliding kinds: the
// fleet span ends at the maximum End and is window-sized, with the
// width learned from sealed metadata (nodes share one config).
func (a *Aggregator) latestStart(maxEnd int64) int64 {
	if a.spanWidth <= 0 {
		return maxEnd
	}
	return maxEnd - a.spanWidth
}

// store publishes a report with the next sequence number.
func (a *Aggregator) store(r *AggReport) {
	r.Seq = a.pubSeq.Add(1)
	a.pub.Store(r)
	a.merges.Add(1)
	if r.Degraded {
		a.degradedMerges.Add(1)
	}
}

// framesOf flattens a round's frame map.
func framesOf(m map[string][]byte) [][]byte {
	out := make([][]byte, 0, len(m))
	for _, f := range m {
		out = append(out, f)
	}
	return out
}

// mergeFrames decodes and merges frames of the pinned kind, querying the
// merged summary at `at`. Engine panics (geometry drift between nodes)
// are recovered into errors. Caller holds a.mu.
func (a *Aggregator) mergeFrames(frames [][]byte, at int64) (set hhh.Set, total int64, err error) {
	if len(frames) == 0 {
		return hhh.NewSet(), 0, nil
	}
	defer func() {
		if r := recover(); r != nil {
			set, total = nil, 0
			err = fmt.Errorf("merge panic: %v", r)
		}
	}()
	switch a.kind {
	case wire.KindPerLevel:
		var acc *hhh.PerLevel
		for _, f := range frames {
			d, derr := wire.DecodePerLevel(f)
			if derr != nil {
				return nil, 0, derr
			}
			if acc == nil {
				acc = d
			} else {
				acc.Merge(d)
			}
		}
		return acc.QueryFraction(a.cfg.Phi), acc.Total(), nil
	case wire.KindRHHH:
		var acc *hhh.RHHH
		for _, f := range frames {
			d, derr := wire.DecodeRHHH(f)
			if derr != nil {
				return nil, 0, derr
			}
			if acc == nil {
				acc = d
			} else {
				acc.Merge(d)
			}
		}
		return acc.QueryFraction(a.cfg.Phi), acc.Total(), nil
	case wire.KindExact:
		ex, h, derr := wire.DecodeExact(frames[0])
		if derr != nil {
			return nil, 0, derr
		}
		for _, f := range frames[1:] {
			d, _, derr := wire.DecodeExact(f)
			if derr != nil {
				return nil, 0, derr
			}
			ex.AddAll(d)
		}
		return hhh.Exact(ex, h, hhh.Threshold(ex.Total(), a.cfg.Phi)), ex.Total(), nil
	case wire.KindSliding:
		var acc *swhh.SlidingHHH
		for _, f := range frames {
			d, derr := wire.DecodeSliding(f)
			if derr != nil {
				return nil, 0, derr
			}
			d.Advance(at)
			if acc == nil {
				acc = d
			} else {
				acc.Merge(d)
			}
		}
		return acc.Query(a.cfg.Phi, at), acc.WindowTotal(at), nil
	case wire.KindMemento:
		var acc *swhh.MementoHHH
		for _, f := range frames {
			d, derr := wire.DecodeMemento(f)
			if derr != nil {
				return nil, 0, derr
			}
			d.Advance(at)
			if acc == nil {
				acc = d
			} else {
				acc.Merge(d)
			}
		}
		return acc.Query(a.cfg.Phi, at), acc.WindowTotal(at), nil
	case wire.KindContinuous:
		var acc *continuous.Detector
		for _, f := range frames {
			d, derr := wire.DecodeContinuous(f)
			if derr != nil {
				return nil, 0, derr
			}
			if acc == nil {
				acc = d
			} else {
				acc.Merge(d)
			}
		}
		return acc.Query(at), int64(acc.TotalMass(at)), nil
	}
	return nil, 0, fmt.Errorf("unmergeable kind %v", a.kind)
}

// Report returns the newest published global report. Never nil.
func (a *Aggregator) Report() *AggReport { return a.pub.Load() }

// Stats snapshots the aggregator counters and per-node views.
func (a *Aggregator) Stats() AggStats {
	a.mu.Lock()
	defer a.mu.Unlock()
	st := AggStats{
		Expected:       a.cfg.Expected,
		Merges:         a.merges.Load(),
		DegradedMerges: a.degradedMerges.Load(),
		LateFrames:     a.lateFrames.Load(),
		Rejected:       a.rejected.Load(),
	}
	if a.kind != 0 {
		st.Kind = a.kind.String()
	}
	var maxEnd int64
	for _, n := range a.nodes {
		if n.lastEnd > maxEnd {
			maxEnd = n.lastEnd
		}
	}
	for _, n := range a.nodes {
		lag := int64(0)
		if n.lastEnd > 0 && maxEnd > n.lastEnd {
			lag = maxEnd - n.lastEnd
		}
		st.Nodes = append(st.Nodes, AggNodeStats{
			Node:             n.name,
			Frames:           n.frames,
			LastSeq:          n.lastSeq,
			LastEnd:          n.lastEnd,
			LastSeenUnixNano: n.lastSeen,
			LagNs:            lag,
			Rejected:         n.rejected,
		})
	}
	for i := 0; i < len(st.Nodes); i++ { // sort by name; fleets are small
		for j := i; j > 0 && st.Nodes[j].Node < st.Nodes[j-1].Node; j-- {
			st.Nodes[j], st.Nodes[j-1] = st.Nodes[j-1], st.Nodes[j]
		}
	}
	return st
}

// Flush publishes every pending windowed round immediately (degraded if
// incomplete). A no-op for sliding kinds, whose reports are always
// current.
func (a *Aggregator) Flush() {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.closed || len(a.rounds) == 0 {
		return
	}
	var maxEnd int64
	for e := range a.rounds {
		if e > maxEnd {
			maxEnd = e
		}
	}
	_ = a.publishRoundsThroughLocked(maxEnd)
}

// Close stops pending round timers. Further Ingest calls fail.
func (a *Aggregator) Close() {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.closed = true
	for _, r := range a.rounds {
		r.timer.Stop()
	}
}
