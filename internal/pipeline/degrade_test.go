package pipeline

import (
	"strings"
	"sync"
	"testing"
	"time"

	"hiddenhhh/internal/addr"
	"hiddenhhh/internal/chaos"
	"hiddenhhh/internal/hhh"
	"hiddenhhh/internal/trace"
)

// shedStream builds a fixed-size-packet stream (Size 100) so byte
// accounting is exactly 100x packet accounting in every assertion.
func shedStream(n int, spanSec int) []trace.Packet {
	out := make([]trace.Packet, n)
	step := int64(spanSec) * int64(time.Second) / int64(n)
	for i := range out {
		out[i] = trace.Packet{
			Ts:   int64(i) * step,
			Src:  addr.From4Uint32(10<<24 | uint32(i%251)<<8 | uint32(i%17)),
			Size: 100,
		}
	}
	return out
}

// twoShardSources finds one source per shard of a 2-shard pipeline.
func twoShardSources(t *testing.T, d *Sharded) [2]addr.Addr {
	t.Helper()
	var srcs [2]addr.Addr
	found := [2]bool{}
	for i := uint32(1); i < 1000; i++ {
		a := addr.From4Uint32(10<<24 | i)
		si := d.shardOf(a)
		if !found[si] {
			srcs[si], found[si] = a, true
		}
		if found[0] && found[1] {
			return srcs
		}
	}
	t.Fatal("could not find sources for both shards")
	return srcs
}

// TestShedStalledShardExactAccounting stalls one shard under
// OverloadShed and checks the accounting is exact and isolated: every
// packet routed to the stalled shard is either absorbed or counted
// dropped (never both, never lost), and the healthy shards drop nothing.
// Stats/Degradation readers run concurrently throughout, Snapshot is
// interleaved with ingest, and Close races a final Snapshot.
func TestShedStalledShardExactAccounting(t *testing.T) {
	plan := chaos.New()
	d, err := New(Config{
		Mode:           ModeSliding,
		Shards:         4,
		Window:         time.Second,
		Phi:            0.05,
		Counters:       64,
		Batch:          32,
		RingDepth:      8,
		Overload:       OverloadShed,
		ShedWait:       20 * time.Millisecond,
		BarrierTimeout: 100 * time.Millisecond,
		Chaos:          plan,
	})
	if err != nil {
		t.Fatal(err)
	}
	pkts := shedStream(2000, 2)
	target := d.shardOf(pkts[0].Src)
	release := plan.BlockShard(target)

	// Concurrent readers for the whole run: the introspection surface is
	// documented safe against ingest.
	stop := make(chan struct{})
	var readers sync.WaitGroup
	readers.Add(1)
	go func() {
		defer readers.Done()
		for {
			select {
			case <-stop:
				return
			default:
				d.Stats()
				d.Degradation()
				d.SizeBytes()
			}
		}
	}()

	routed := make([]int64, 4)
	for i := range pkts {
		routed[d.shardOf(pkts[i].Src)]++
	}
	for i := 0; i < len(pkts); i += 100 {
		end := i + 100
		if end > len(pkts) {
			end = len(pkts)
		}
		if err := d.TryObserveBatch(pkts[i:end]); err != nil {
			t.Fatalf("TryObserveBatch: %v", err)
		}
		if i%800 == 0 {
			// Interleaved snapshots must return within the barrier
			// deadline despite the stalled shard.
			begin := time.Now()
			d.Snapshot(pkts[end-1].Ts)
			if el := time.Since(begin); el > 2*time.Second {
				t.Fatalf("Snapshot took %v with a stalled shard", el)
			}
		}
	}

	if dp, _ := d.DroppedMass(); dp == 0 {
		t.Fatal("expected the stalled shard to shed batches, dropped nothing")
	}

	// Release the shard and race Close with a Snapshot.
	release()
	var closer sync.WaitGroup
	closer.Add(1)
	go func() {
		defer closer.Done()
		d.Snapshot(pkts[len(pkts)-1].Ts)
	}()
	if err := d.Close(); err != nil {
		t.Fatalf("Close after release: %v", err)
	}
	closer.Wait()
	close(stop)
	readers.Wait()

	st := d.Stats()
	deg := d.Degradation()
	for i := 0; i < 4; i++ {
		if i != target {
			if deg.ShardDroppedPackets[i] != 0 || deg.ShardDroppedBytes[i] != 0 {
				t.Errorf("healthy shard %d dropped %d pkts / %d bytes, want 0",
					i, deg.ShardDroppedPackets[i], deg.ShardDroppedBytes[i])
			}
		}
		// Conservation: absorbed + dropped == routed, per shard. (Sliding
		// mode has no reset barriers, so no summary mass is ever re-shed
		// and the two counters partition the routed packets exactly.)
		got := st.ShardPackets[i] + deg.ShardDroppedPackets[i]
		if got != routed[i] {
			t.Errorf("shard %d: absorbed %d + dropped %d = %d, want routed %d",
				i, st.ShardPackets[i], deg.ShardDroppedPackets[i], got, routed[i])
		}
		if deg.ShardDroppedBytes[i] != 100*deg.ShardDroppedPackets[i] {
			t.Errorf("shard %d: dropped %d bytes for %d packets of size 100",
				i, deg.ShardDroppedBytes[i], deg.ShardDroppedPackets[i])
		}
	}
	if deg.DroppedPackets == 0 || target < 0 {
		t.Errorf("stalled shard %d dropped nothing", target)
	}
}

// TestBarrierDeadlineDegradedWindow stalls one of two shards across a
// window close: the window must publish degraded within the deadline
// carrying exactly the healthy shard's mass; after the stall clears, the
// straggler's unmerged window slice is shed with exact accounting and
// the next window publishes whole again.
func TestBarrierDeadlineDegradedWindow(t *testing.T) {
	plan := chaos.New()
	d, err := New(Config{
		Mode:           ModeWindowed,
		Shards:         2,
		Window:         time.Second,
		Phi:            0.1,
		Engine:         KindExact,
		Batch:          1, // push every packet immediately: no staging latency
		RingDepth:      64,
		BarrierTimeout: 200 * time.Millisecond,
		Chaos:          plan,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	srcs := twoShardSources(t, d)
	const stalled, healthy = 0, 1
	release := plan.BlockShard(stalled)

	sec := int64(time.Second)
	mk := func(ts int64, src addr.Addr) trace.Packet { return trace.Packet{Ts: ts, Src: src, Size: 100} }
	// Window 1: 5 packets on the stalled shard, 3 on the healthy one.
	var w1 []trace.Packet
	for i := int64(0); i < 5; i++ {
		w1 = append(w1, mk(sec/10+i, srcs[stalled]))
	}
	for i := int64(0); i < 3; i++ {
		w1 = append(w1, mk(sec/5+i, srcs[healthy]))
	}
	if err := d.TryObserveBatch(w1); err != nil {
		t.Fatal(err)
	}
	// Crossing into window 2 closes window 1; its barrier can only gather
	// the healthy shard.
	if err := d.TryObserveBatch([]trace.Packet{
		mk(sec+sec/10, srcs[stalled]), mk(sec+sec/10, srcs[healthy]),
	}); err != nil {
		t.Fatal(err)
	}
	begin := time.Now()
	d.Snapshot(sec + sec/2)
	if el := time.Since(begin); el > 2*time.Second {
		t.Fatalf("degraded window snapshot took %v", el)
	}
	st := d.Stats()
	if !st.LastWindowDegraded || st.LastWindowShards != 1 {
		t.Fatalf("window 1 published degraded=%v shards=%d, want degraded with 1 shard",
			st.LastWindowDegraded, st.LastWindowShards)
	}
	if got := d.ReportMass(0); got != 300 {
		t.Fatalf("degraded window mass %d, want the healthy shard's 300", got)
	}
	if st.ShardLag[stalled] == 0 {
		t.Error("stalled shard reports zero barrier lag")
	}

	// Clear the stall: the straggler reaches the sealed window-1 token,
	// sheds its unmerged 5-packet slice, and rejoins. Window 2 then
	// closes whole.
	release()
	if err := d.TryObserveBatch([]trace.Packet{
		mk(sec+2*sec/10, srcs[stalled]), mk(sec+2*sec/10, srcs[healthy]),
	}); err != nil {
		t.Fatal(err)
	}
	d.Snapshot(2*sec + sec/2)
	st = d.Stats()
	if st.LastWindowDegraded || st.LastWindowShards != 2 {
		t.Fatalf("window 2 published degraded=%v shards=%d, want whole with 2 shards",
			st.LastWindowDegraded, st.LastWindowShards)
	}
	if got := d.ReportMass(0); got != 400 {
		t.Fatalf("window 2 mass %d, want 400", got)
	}
	deg := d.Degradation()
	if deg.ShardDroppedPackets[stalled] != 5 || deg.ShardDroppedBytes[stalled] != 500 {
		t.Errorf("straggler shed %d pkts / %d bytes, want exactly its window-1 slice (5 / 500)",
			deg.ShardDroppedPackets[stalled], deg.ShardDroppedBytes[stalled])
	}
	if deg.ShardDroppedPackets[healthy] != 0 {
		t.Errorf("healthy shard shed %d packets, want 0", deg.ShardDroppedPackets[healthy])
	}
	if deg.DegradedMerges != 1 {
		t.Errorf("degraded merges %d, want 1", deg.DegradedMerges)
	}
}

// TestPanicQuarantine injects an engine panic on one shard of a fully
// lossless (no deadlines) pipeline: the shard is quarantined with its
// substream shed and accounted, its barrier peers never deadlock, and
// merges stay whole (the quarantined shard answers with a fresh empty
// summary).
func TestPanicQuarantine(t *testing.T) {
	plan := chaos.New()
	d, err := New(Config{
		Mode:      ModeWindowed,
		Shards:    2,
		Window:    time.Second,
		Phi:       0.1,
		Engine:    KindExact,
		Batch:     1,
		RingDepth: 64,
		Chaos:     plan,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	srcs := twoShardSources(t, d)
	const victim, healthy = 0, 1
	plan.PanicNextBatch(victim)

	sec := int64(time.Second)
	mk := func(ts int64, src addr.Addr) trace.Packet { return trace.Packet{Ts: ts, Src: src, Size: 100} }
	var w1 []trace.Packet
	for i := int64(0); i < 4; i++ {
		w1 = append(w1, mk(sec/10+i, srcs[victim]))
	}
	for i := int64(0); i < 3; i++ {
		w1 = append(w1, mk(sec/5+i, srcs[healthy]))
	}
	if err := d.TryObserveBatch(w1); err != nil {
		t.Fatal(err)
	}
	if err := d.TryObserveBatch([]trace.Packet{mk(sec+sec/10, srcs[healthy])}); err != nil {
		t.Fatal(err)
	}
	d.Snapshot(sec + sec/2) // unbounded barrier wait: must not deadlock

	if got := d.ReportMass(0); got != 300 {
		t.Fatalf("window mass %d, want the healthy shard's 300", got)
	}
	st := d.Stats()
	if st.LastWindowDegraded || st.LastWindowShards != 2 {
		t.Errorf("quarantined shard must still answer barriers: degraded=%v shards=%d",
			st.LastWindowDegraded, st.LastWindowShards)
	}
	deg := d.Degradation()
	if deg.Panics != 1 || !strings.Contains(deg.LastPanic, "chaos") {
		t.Errorf("panics=%d lastPanic=%q, want 1 recovered chaos panic", deg.Panics, deg.LastPanic)
	}
	if len(deg.Quarantined) != 1 || deg.Quarantined[0] != victim {
		t.Errorf("quarantined=%v, want [%d]", deg.Quarantined, victim)
	}
	if deg.ShardDroppedPackets[victim] != 4 || deg.ShardDroppedBytes[victim] != 400 {
		t.Errorf("victim shed %d pkts / %d bytes, want its whole substream (4 / 400)",
			deg.ShardDroppedPackets[victim], deg.ShardDroppedBytes[victim])
	}
	if deg.ShardDroppedPackets[healthy] != 0 {
		t.Errorf("healthy shard shed %d packets, want 0", deg.ShardDroppedPackets[healthy])
	}
}

// TestNoFaultShedConfigIdentical pins the degradation layer's zero-cost
// default: a pipeline with shedding and barrier deadlines configured but
// no fault firing publishes byte-identical windows to the plain blocking
// pipeline, and declares zero degradation.
func TestNoFaultShedConfigIdentical(t *testing.T) {
	pkts := testStream(9, 30000, 6)
	run := func(degradable bool) []string {
		var sets []string
		cfg := Config{
			Shards: 4,
			Window: time.Second,
			Phi:    0.02,
			Engine: KindRHHH,
			Seed:   77,
			OnWindow: func(start, end int64, set hhh.Set) {
				sets = append(sets, set.String())
			},
		}
		if degradable {
			cfg.Overload = OverloadShed
			cfg.ShedWait = time.Second // generous: never trips without a fault
			cfg.BarrierTimeout = 10 * time.Second
			cfg.Chaos = chaos.New() // armed with nothing
		}
		d, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		d.ObserveBatch(pkts)
		d.Snapshot(pkts[len(pkts)-1].Ts + int64(time.Second))
		if degradable {
			deg := d.Degradation()
			if deg.DroppedPackets != 0 || deg.DegradedMerges != 0 || deg.Panics != 0 {
				t.Errorf("no-fault run declared degradation: %+v", deg)
			}
		}
		if err := d.Close(); err != nil {
			t.Fatalf("Close: %v", err)
		}
		return sets
	}
	plain, degradable := run(false), run(true)
	if len(plain) != len(degradable) {
		t.Fatalf("window counts differ: %d vs %d", len(plain), len(degradable))
	}
	for i := range plain {
		if plain[i] != degradable[i] {
			t.Errorf("window %d differs between blocking and no-fault shed config:\n%s\n%s",
				i, plain[i], degradable[i])
		}
	}
}
