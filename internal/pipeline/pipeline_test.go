package pipeline

import (
	"math/rand"
	"testing"
	"time"

	"hiddenhhh/internal/addr"
	"hiddenhhh/internal/hhh"
	"hiddenhhh/internal/sketch"
	"hiddenhhh/internal/trace"
)

// cfgHierarchy is the hierarchy the expectations are computed over: the
// IPv4 byte ladder, the pipeline Config default.
func cfgHierarchy() addr.Hierarchy { return addr.NewIPv4Hierarchy(addr.Byte) }

// testStream builds a time-ordered skewed packet stream spanning roughly
// spanSec seconds.
func testStream(seed int64, n int, spanSec int) []trace.Packet {
	rng := rand.New(rand.NewSource(seed))
	out := make([]trace.Packet, n)
	step := int64(spanSec) * int64(time.Second) / int64(n)
	for i := range out {
		org := uint32(rng.Intn(6))
		net := uint32(float64(180) * rng.Float64() * rng.Float64())
		host := uint32(rng.Intn(40))
		out[i] = trace.Packet{
			Ts:   int64(i) * step,
			Src:  addr.From4Uint32(10<<24 | org<<16 | net<<8 | host),
			Size: uint32(40 + rng.Intn(1460)),
		}
	}
	return out
}

// TestShardedExactMatchesOffline drives the pipeline with the exact
// engine and checks every closed window's merged set against an offline
// per-window exact computation. Exact maps merge losslessly, so this
// validates the windowing, partitioning and barrier logic in isolation
// from sketch error.
func TestShardedExactMatchesOffline(t *testing.T) {
	const phi = 0.03
	window := 2 * time.Second
	pkts := testStream(1, 60000, 11)
	h := addr.NewIPv4Hierarchy(addr.Byte)

	// Offline reference: aggregate each disjoint window, exact HHH.
	width := int64(window)
	byWindow := map[int64]*sketch.Exact{}
	for i := range pkts {
		w := pkts[i].Ts / width
		ex := byWindow[w]
		if ex == nil {
			ex = sketch.NewExact(256)
			byWindow[w] = ex
		}
		ex.Update(cfgHierarchy().Key(pkts[i].Src, 0), int64(pkts[i].Size))
	}

	for _, shards := range []int{1, 3, 4} {
		got := map[int64]hhh.Set{}
		d, err := New(Config{
			Shards: shards,
			Window: window,
			Phi:    phi,
			Engine: KindExact,
			Batch:  64,
			OnWindow: func(start, end int64, set hhh.Set) {
				got[start/width] = set
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		d.ObserveBatch(pkts)
		d.Snapshot(pkts[len(pkts)-1].Ts + width) // flush the final window
		if err := d.Close(); err != nil {
			t.Fatal(err)
		}
		for w, ex := range byWindow {
			want := hhh.Exact(ex, h, hhh.Threshold(ex.Total(), phi))
			if got[w] == nil {
				t.Fatalf("shards=%d: window %d never closed", shards, w)
			}
			if !got[w].Equal(want) {
				t.Errorf("shards=%d window %d: merged %v != exact %v", shards, w, got[w], want)
			}
		}
	}
}

// TestShardedObserveMatchesObserveBatch checks the two ingest paths
// produce identical window reports.
func TestShardedObserveMatchesObserveBatch(t *testing.T) {
	pkts := testStream(5, 20000, 7)
	run := func(batch bool) []hhh.Set {
		var sets []hhh.Set
		d, err := New(Config{
			Shards: 2,
			Window: time.Second,
			Phi:    0.05,
			Engine: KindPerLevel,
			OnWindow: func(start, end int64, set hhh.Set) {
				sets = append(sets, set)
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		if batch {
			d.ObserveBatch(pkts)
		} else {
			for i := range pkts {
				d.Observe(&pkts[i])
			}
		}
		d.Snapshot(pkts[len(pkts)-1].Ts + int64(time.Second))
		d.Close()
		return sets
	}
	a, b := run(false), run(true)
	if len(a) != len(b) {
		t.Fatalf("window counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if !a[i].Equal(b[i]) {
			t.Errorf("window %d: Observe %v != ObserveBatch %v", i, a[i], b[i])
		}
	}
}

// TestShardedDeterministic runs the same stream twice through an RHHH
// pipeline and requires byte-identical window reports: partitioning,
// per-shard sampling and merge order are all deterministic.
func TestShardedDeterministic(t *testing.T) {
	pkts := testStream(9, 30000, 6)
	run := func() []string {
		var sets []string
		d, err := New(Config{
			Shards: 4,
			Window: time.Second,
			Phi:    0.02,
			Engine: KindRHHH,
			Seed:   77,
			OnWindow: func(start, end int64, set hhh.Set) {
				sets = append(sets, set.String())
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		d.ObserveBatch(pkts)
		d.Snapshot(pkts[len(pkts)-1].Ts + int64(time.Second))
		d.Close()
		return sets
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("window counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Errorf("window %d not deterministic:\n%s\n%s", i, a[i], b[i])
		}
	}
}

// TestShardedWindowOrderAndSpans checks OnWindow fires once per window in
// time order with contiguous [start,end) spans, including windows closed
// only by Snapshot.
func TestShardedWindowOrderAndSpans(t *testing.T) {
	pkts := testStream(13, 8000, 5)
	width := int64(time.Second)
	var spans [][2]int64
	d, err := New(Config{
		Shards: 3,
		Window: time.Second,
		Phi:    0.05,
		Engine: KindPerLevel,
		OnWindow: func(start, end int64, set hhh.Set) {
			spans = append(spans, [2]int64{start, end})
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	d.ObserveBatch(pkts)
	// Jump several windows past the end: empty windows must close too.
	d.Snapshot(pkts[len(pkts)-1].Ts + 3*width)
	d.Close()
	if len(spans) < 5 {
		t.Fatalf("expected at least 5 closed windows, got %d", len(spans))
	}
	for i, sp := range spans {
		if sp[1]-sp[0] != width {
			t.Errorf("window %d span %v is not one width", i, sp)
		}
		if i > 0 && sp[0] != spans[i-1][1] {
			t.Errorf("window %d start %d does not abut previous end %d", i, sp[0], spans[i-1][1])
		}
	}
}

// TestShardedIdleGap drives a stream with a long idle gap between two
// bursts: the empty windows must be reported (in order, with empty sets)
// through the coordinator fast path, and data windows on both sides must
// still merge correctly.
func TestShardedIdleGap(t *testing.T) {
	width := int64(time.Second)
	const gap = 500 // empty windows between the bursts
	var pkts []trace.Packet
	for i := 0; i < 2000; i++ { // burst A: windows 0..1
		pkts = append(pkts, trace.Packet{
			Ts: int64(i) * 2 * width / 2000, Src: addr.From4Uint32(10<<24 | uint32(i%64)), Size: 1000})
	}
	for i := 0; i < 2000; i++ { // burst B after the gap
		pkts = append(pkts, trace.Packet{
			Ts: (2+gap)*width + int64(i)*width/2000, Src: addr.From4Uint32(10<<24 | uint32(i%64)), Size: 1000})
	}
	var spans [][2]int64
	var emptySets, dataSets int
	d, err := New(Config{
		Shards: 3,
		Window: time.Second,
		Phi:    0.05,
		Engine: KindPerLevel,
		OnWindow: func(start, end int64, set hhh.Set) {
			spans = append(spans, [2]int64{start, end})
			if set.Len() == 0 {
				emptySets++
			} else {
				dataSets++
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	d.ObserveBatch(pkts)
	last := d.Snapshot(pkts[len(pkts)-1].Ts + width)
	d.Close()
	if want := 3 + gap; len(spans) != want {
		t.Fatalf("closed %d windows, want %d", len(spans), want)
	}
	for i := 1; i < len(spans); i++ {
		if spans[i][0] != spans[i-1][1] {
			t.Fatalf("window %d out of order: %v after %v", i, spans[i], spans[i-1])
		}
	}
	if emptySets != gap || dataSets != 3 {
		t.Errorf("empty=%d data=%d, want %d/%d", emptySets, dataSets, gap, 3)
	}
	if last.Len() == 0 {
		t.Error("final burst window reported no HHHs")
	}
}

// TestShardedStatsConcurrent hammers Stats and SizeBytes from other
// goroutines during ingest; the race detector (CI runs go test -race)
// verifies the read paths are safe.
func TestShardedStatsConcurrent(t *testing.T) {
	pkts := testStream(17, 40000, 4)
	d, err := New(Config{
		Shards: 4,
		Window: time.Second,
		Phi:    0.05,
		Engine: KindPerLevel,
	})
	if err != nil {
		t.Fatal(err)
	}
	stop := make(chan struct{})
	go func() {
		for {
			select {
			case <-stop:
				return
			default:
				_ = d.Stats()
				_ = d.SizeBytes()
			}
		}
	}()
	d.ObserveBatch(pkts)
	set := d.Snapshot(pkts[len(pkts)-1].Ts + int64(time.Second))
	close(stop)
	st := d.Stats()
	if st.Packets != int64(len(pkts)) {
		t.Errorf("stats packets %d != %d", st.Packets, len(pkts))
	}
	var shardSum int64
	for _, n := range st.ShardPackets {
		shardSum += n
	}
	if shardSum != int64(len(pkts)) {
		t.Errorf("shard packets sum %d != %d", shardSum, len(pkts))
	}
	if st.Windows == 0 || set == nil {
		t.Errorf("no windows closed (windows=%d)", st.Windows)
	}
	if st.SizeBytes <= 0 {
		t.Errorf("size bytes %d", st.SizeBytes)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	if err := d.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
}

// TestShardedConfigValidation pins constructor errors.
func TestShardedConfigValidation(t *testing.T) {
	if _, err := New(Config{Phi: 0.05}); err == nil {
		t.Error("missing window accepted")
	}
	if _, err := New(Config{Window: time.Second}); err == nil {
		t.Error("missing phi accepted")
	}
	if _, err := New(Config{Window: time.Second, Phi: 1.5}); err == nil {
		t.Error("phi > 1 accepted")
	}
	if _, err := New(Config{Window: time.Second, Phi: 0.05, Engine: Kind(9)}); err == nil {
		t.Error("unknown engine accepted")
	}
}

// TestShardedUseAfterClose pins the lifecycle contract: ingest after
// Close is a defined no-op, with the error surfaced through the Try
// variants instead of a send-on-closed-ring panic.
func TestShardedUseAfterClose(t *testing.T) {
	d, err := New(Config{Window: time.Second, Phi: 0.05, Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	d.ObserveBatch([]trace.Packet{{Ts: 1, Size: 100}, {Ts: 2, Size: 50}})
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	if err := d.TryObserve(&trace.Packet{Ts: 3, Size: 100}); err != ErrClosed {
		t.Fatalf("TryObserve after Close: got %v, want ErrClosed", err)
	}
	if err := d.TryObserveBatch([]trace.Packet{{Ts: 4, Size: 10}}); err != ErrClosed {
		t.Fatalf("TryObserveBatch after Close: got %v, want ErrClosed", err)
	}
	// The Detector-shaped methods stay callable and silently drop.
	d.Observe(&trace.Packet{Ts: 5, Size: 100})
	d.ObserveBatch([]trace.Packet{{Ts: 6, Size: 100}})
	if set := d.Snapshot(int64(10 * time.Second)); set == nil {
		t.Fatal("Snapshot after Close returned nil set")
	}
	if got := d.Stats().Packets; got != 2 {
		t.Fatalf("packets after post-close drops: got %d, want 2", got)
	}
	if err := d.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
}

// TestModeValidation pins the mode-specific constructor errors.
func TestModeValidation(t *testing.T) {
	if _, err := New(Config{Mode: Mode(7), Window: time.Second, Phi: 0.05}); err == nil {
		t.Error("unknown mode accepted")
	}
	if _, err := New(Config{
		Mode: ModeSliding, Window: time.Second, Phi: 0.05,
		OnWindow: func(start, end int64, set hhh.Set) {},
	}); err == nil {
		t.Error("OnWindow accepted outside ModeWindowed")
	}
	for _, m := range []Mode{ModeWindowed, ModeSliding, ModeContinuous} {
		d, err := New(Config{Mode: m, Window: time.Second, Phi: 0.05, Shards: 2})
		if err != nil {
			t.Fatalf("mode %v rejected: %v", m, err)
		}
		if got := d.Stats().Mode; got != m.String() {
			t.Errorf("stats mode %q, want %q", got, m)
		}
		d.Close()
	}
}

// TestSlidingObserveMatchesObserveBatch checks the two ingest paths agree
// in the non-windowed modes too (no boundary splitting on either path).
func TestSlidingObserveMatchesObserveBatch(t *testing.T) {
	pkts := testStream(5, 20000, 7)
	run := func(batch bool) hhh.Set {
		d, err := New(Config{
			Mode:     ModeSliding,
			Shards:   2,
			Window:   2 * time.Second,
			Phi:      0.05,
			Counters: 128,
		})
		if err != nil {
			t.Fatal(err)
		}
		if batch {
			d.ObserveBatch(pkts)
		} else {
			for i := range pkts {
				d.Observe(&pkts[i])
			}
		}
		set := d.Snapshot(pkts[len(pkts)-1].Ts)
		d.Close()
		return set
	}
	a, b := run(false), run(true)
	if !a.Equal(b) {
		t.Errorf("Observe %v != ObserveBatch %v", a, b)
	}
}
