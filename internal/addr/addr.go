// Package addr provides the dual-stack address, prefix and hierarchy
// primitives every layer of the hierarchical-heavy-hitter pipeline is
// built on.
//
// Addresses are fixed-size 128-bit values held in two host-order uint64
// halves, so they are comparable with ==, usable as map keys, and cheap to
// mask without allocation. IPv4 addresses live in the IPv4-mapped range
// ::ffff:0:0/96 of the same space (RFC 4291 §2.5.5.2), which lets one key
// type carry both families through the trace format, the generators, the
// engines and the oracle.
//
// Prefixes pair an address with a mask length in the unified 128-bit
// space and are always stored in canonical form (host bits zeroed), which
// makes them safely comparable with == and usable as map keys. A prefix
// whose address is IPv4-mapped and whose mask reaches into the mapped
// range (Bits >= 96) is an IPv4 prefix: it parses from and renders in
// dotted-quad CIDR notation with the family-relative length ("10.0.0.0/8"
// is Bits 104 internally).
//
// The Hierarchy descriptor (hierarchy.go) generalises the paper's
// hard-coded five-level IPv4 ladder into configuration: a family, a
// per-level bit step and a leaf depth describe any uniform generalisation
// lattice, and the descriptor also owns the packing of lattice prefixes
// into the uint64 keys the sketch substrates consume.
package addr

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
)

// Family identifies the address family of an Addr, Prefix or Hierarchy.
type Family uint8

// Supported address families.
const (
	// V4 is IPv4, embedded in the IPv4-mapped range ::ffff:0:0/96.
	V4 Family = iota + 1
	// V6 is native IPv6 (everything outside the IPv4-mapped range).
	V6
)

// String renders the family name ("ipv4" or "ipv6").
func (f Family) String() string {
	switch f {
	case V4:
		return "ipv4"
	case V6:
		return "ipv6"
	default:
		return "family(" + strconv.Itoa(int(f)) + ")"
	}
}

// mappedPrefix is the high 32 bits of the low half of an IPv4-mapped
// address: the 0xffff marker of ::ffff:0:0/96.
const mappedPrefix = uint64(0xffff) << 32

// Addr is a 128-bit address in host bit order: Hi carries bits 127..64,
// Lo bits 63..0. IPv4 addresses are stored IPv4-mapped (Hi == 0, Lo ==
// 0xffff<<32 | v4). The zero value is the IPv6 unspecified address "::".
type Addr struct {
	hi, lo uint64
}

// From4 builds the IPv4-mapped address for four dotted-quad octets.
func From4(a, b, c, d byte) Addr {
	return Addr{lo: mappedPrefix | uint64(a)<<24 | uint64(b)<<16 | uint64(c)<<8 | uint64(d)}
}

// From4Uint32 builds the IPv4-mapped address for a host-order uint32.
func From4Uint32(v uint32) Addr {
	return Addr{lo: mappedPrefix | uint64(v)}
}

// FromParts builds an address from its two host-order 64-bit halves.
func FromParts(hi, lo uint64) Addr { return Addr{hi: hi, lo: lo} }

// From16 builds an address from its big-endian 16-byte form.
func From16(b [16]byte) Addr {
	var a Addr
	for i := 0; i < 8; i++ {
		a.hi = a.hi<<8 | uint64(b[i])
		a.lo = a.lo<<8 | uint64(b[i+8])
	}
	return a
}

// Hi returns bits 127..64 of a.
func (a Addr) Hi() uint64 { return a.hi }

// Lo returns bits 63..0 of a.
func (a Addr) Lo() uint64 { return a.lo }

// As16 returns the big-endian 16-byte form of a.
func (a Addr) As16() (b [16]byte) {
	for i := 0; i < 8; i++ {
		b[i] = byte(a.hi >> (56 - 8*i))
		b[i+8] = byte(a.lo >> (56 - 8*i))
	}
	return b
}

// Is4 reports whether a lies in the IPv4-mapped range ::ffff:0:0/96,
// i.e. whether it is an IPv4 address of the unified space.
func (a Addr) Is4() bool { return a.hi == 0 && a.lo>>32 == 0xffff }

// Family returns V4 for IPv4-mapped addresses and V6 otherwise.
func (a Addr) Family() Family {
	if a.Is4() {
		return V4
	}
	return V6
}

// V4 returns the host-order uint32 form of an IPv4-mapped address (the
// low 32 bits; meaningful only when Is4 reports true).
func (a Addr) V4() uint32 { return uint32(a.lo) }

// As4 returns the dotted-quad octets of an IPv4-mapped address
// (meaningful only when Is4 reports true).
func (a Addr) As4() (o [4]byte) {
	o[0] = byte(a.lo >> 24)
	o[1] = byte(a.lo >> 16)
	o[2] = byte(a.lo >> 8)
	o[3] = byte(a.lo)
	return o
}

// Compare orders addresses numerically in the 128-bit space. Returns -1,
// 0 or +1.
func (a Addr) Compare(b Addr) int {
	switch {
	case a.hi < b.hi:
		return -1
	case a.hi > b.hi:
		return 1
	case a.lo < b.lo:
		return -1
	case a.lo > b.lo:
		return 1
	}
	return 0
}

// Less reports whether a orders before b (see Compare).
func (a Addr) Less(b Addr) bool { return a.Compare(b) < 0 }

// String renders a in dotted-quad notation when IPv4-mapped, otherwise
// in RFC 5952 compressed IPv6 notation (lower-case hex, longest zero run
// of two or more groups compressed, leftmost on ties).
func (a Addr) String() string {
	if a.Is4() {
		return a.v4String()
	}
	// Locate the longest run of zero 16-bit groups (length >= 2).
	var segs [8]uint16
	for i := 0; i < 4; i++ {
		segs[i] = uint16(a.hi >> (48 - 16*i))
		segs[i+4] = uint16(a.lo >> (48 - 16*i))
	}
	zStart, zLen := -1, 1 // only runs of >= 2 compress
	for i := 0; i < 8; {
		if segs[i] != 0 {
			i++
			continue
		}
		j := i
		for j < 8 && segs[j] == 0 {
			j++
		}
		if j-i > zLen {
			zStart, zLen = i, j-i
		}
		i = j
	}
	var b [45]byte
	out := b[:0]
	for i := 0; i < 8; i++ {
		if i == zStart {
			out = append(out, ':', ':')
			i += zLen - 1
			continue
		}
		if len(out) > 0 && out[len(out)-1] != ':' {
			out = append(out, ':')
		}
		out = strconv.AppendUint(out, uint64(segs[i]), 16)
	}
	if zStart == 0 && zLen == 8 {
		return "::"
	}
	return string(out)
}

// v4String renders the mapped IPv4 address in dotted-quad form without
// fmt overhead (hot logging paths).
func (a Addr) v4String() string {
	o := a.As4()
	var b [15]byte
	n := 0
	for i, oct := range o {
		if i > 0 {
			b[n] = '.'
			n++
		}
		n += copy(b[n:], strconv.AppendUint(b[n:n], uint64(oct), 10))
	}
	return string(b[:n])
}

// ErrBadAddr reports an unparsable address.
var ErrBadAddr = errors.New("addr: invalid address")

// ErrBadPrefix reports an unparsable or non-canonical CIDR prefix.
var ErrBadPrefix = errors.New("addr: invalid prefix")

// ParseAddr parses either a dotted-quad IPv4 address ("192.0.2.7", which
// becomes its IPv4-mapped form) or an RFC 4291 IPv6 address, including
// zero compression ("2001:db8::1") and an embedded dotted-quad tail
// ("::ffff:192.0.2.7").
func ParseAddr(s string) (Addr, error) {
	if strings.IndexByte(s, ':') < 0 {
		v4, err := parseV4(s)
		if err != nil {
			return Addr{}, err
		}
		return From4Uint32(v4), nil
	}
	return parseV6(s)
}

// MustParseAddr is ParseAddr that panics on error. For tests and constants.
func MustParseAddr(s string) Addr {
	a, err := ParseAddr(s)
	if err != nil {
		panic(err)
	}
	return a
}

// parseV4 parses a dotted quad into a host-order uint32.
func parseV4(s string) (uint32, error) {
	var a uint32
	part := 0
	val := -1
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= '0' && c <= '9':
			if val < 0 {
				val = 0
			}
			val = val*10 + int(c-'0')
			if val > 255 {
				return 0, fmt.Errorf("%w: %q octet out of range", ErrBadAddr, s)
			}
		case c == '.':
			if val < 0 || part == 3 {
				return 0, fmt.Errorf("%w: %q", ErrBadAddr, s)
			}
			a = a<<8 | uint32(val)
			val = -1
			part++
		default:
			return 0, fmt.Errorf("%w: %q unexpected character", ErrBadAddr, s)
		}
	}
	if part != 3 || val < 0 {
		return 0, fmt.Errorf("%w: %q", ErrBadAddr, s)
	}
	return a<<8 | uint32(val), nil
}

// parseV6 parses an RFC 4291 textual IPv6 address.
func parseV6(s string) (Addr, error) {
	orig := s
	var segs []uint16
	ellipsis := -1 // index in segs where "::" sat
	if strings.HasPrefix(s, "::") {
		ellipsis = 0
		s = s[2:]
		if s == "" {
			return Addr{}, nil
		}
	} else if strings.HasPrefix(s, ":") {
		return Addr{}, fmt.Errorf("%w: %q leading lone colon", ErrBadAddr, orig)
	}
	for s != "" {
		if len(segs) == 8 {
			return Addr{}, fmt.Errorf("%w: %q too many groups", ErrBadAddr, orig)
		}
		end := strings.IndexByte(s, ':')
		group := s
		if end >= 0 {
			group = s[:end]
		}
		// A dotted-quad tail supplies the final two groups.
		if strings.IndexByte(group, '.') >= 0 {
			if end >= 0 || len(segs) > 6 {
				return Addr{}, fmt.Errorf("%w: %q misplaced dotted quad", ErrBadAddr, orig)
			}
			v4, err := parseV4(group)
			if err != nil {
				return Addr{}, fmt.Errorf("%w: %q: %v", ErrBadAddr, orig, err)
			}
			segs = append(segs, uint16(v4>>16), uint16(v4))
			s = ""
			break
		}
		if group == "" || len(group) > 4 {
			return Addr{}, fmt.Errorf("%w: %q bad group", ErrBadAddr, orig)
		}
		v, err := strconv.ParseUint(group, 16, 16)
		if err != nil {
			return Addr{}, fmt.Errorf("%w: %q bad group %q", ErrBadAddr, orig, group)
		}
		segs = append(segs, uint16(v))
		if end < 0 {
			s = ""
			break
		}
		s = s[end+1:]
		if s == "" { // trailing single colon
			return Addr{}, fmt.Errorf("%w: %q trailing colon", ErrBadAddr, orig)
		}
		if s[0] == ':' { // "::"
			if ellipsis >= 0 {
				return Addr{}, fmt.Errorf("%w: %q second '::'", ErrBadAddr, orig)
			}
			ellipsis = len(segs)
			s = s[1:]
		}
	}
	if ellipsis < 0 && len(segs) != 8 {
		return Addr{}, fmt.Errorf("%w: %q wrong group count", ErrBadAddr, orig)
	}
	if ellipsis >= 0 && len(segs) >= 8 {
		return Addr{}, fmt.Errorf("%w: %q '::' in full address", ErrBadAddr, orig)
	}
	var full [8]uint16
	if ellipsis >= 0 {
		copy(full[:], segs[:ellipsis])
		copy(full[8-(len(segs)-ellipsis):], segs[ellipsis:])
	} else {
		copy(full[:], segs)
	}
	var a Addr
	for i := 0; i < 4; i++ {
		a.hi = a.hi<<16 | uint64(full[i])
		a.lo = a.lo<<16 | uint64(full[i+4])
	}
	return a, nil
}

// MaskOf returns the two halves of the network mask with the top bits
// set. bits must be in [0, 128].
func MaskOf(bits uint8) (hi, lo uint64) {
	if bits >= 64 {
		hi = ^uint64(0)
		lo = maskHalf(bits - 64)
		return hi, lo
	}
	return maskHalf(bits), 0
}

// maskHalf returns a 64-bit mask with the top bits set; bits > 64 is
// treated as 64.
func maskHalf(bits uint8) uint64 {
	if bits == 0 {
		return 0
	}
	if bits >= 64 {
		return ^uint64(0)
	}
	return ^uint64(0) << (64 - bits)
}

// Prefix is a CIDR prefix over the unified 128-bit address space in
// canonical form: all bits below Bits are zero. Bits counts from the top
// of the 128-bit space, so an IPv4 prefix of family-relative length n has
// Bits 96+n. The zero value is the IPv6 root ::/0, which covers every
// address.
type Prefix struct {
	Addr Addr
	Bits uint8
}

// PrefixFrom canonicalises addr to bits mask length (clamped to 128).
func PrefixFrom(a Addr, bits uint8) Prefix {
	if bits > 128 {
		bits = 128
	}
	mh, ml := MaskOf(bits)
	return Prefix{Addr: Addr{hi: a.hi & mh, lo: a.lo & ml}, Bits: bits}
}

// Root is the ::/0 prefix covering the whole unified address space.
var Root = Prefix{}

// V4Root is the IPv4-mapped root ::ffff:0:0/96, i.e. IPv4's 0.0.0.0/0:
// the prefix covering exactly the IPv4 addresses of the unified space.
var V4Root = Prefix{Addr: Addr{lo: mappedPrefix}, Bits: 96}

// Host returns the /128 prefix for a (the /32 host prefix when a is
// IPv4-mapped).
func Host(a Addr) Prefix { return Prefix{Addr: a, Bits: 128} }

// Is4 reports whether p is an IPv4 prefix: its address is IPv4-mapped
// and its mask reaches into the mapped range, so it parses from and
// renders in dotted-quad CIDR notation.
func (p Prefix) Is4() bool { return p.Bits >= 96 && p.Addr.Is4() }

// Family returns V4 for IPv4 prefixes (see Is4) and V6 otherwise.
func (p Prefix) Family() Family {
	if p.Is4() {
		return V4
	}
	return V6
}

// FamilyBits returns the family-relative mask length: Bits-96 for IPv4
// prefixes (0..32), Bits itself for IPv6 ones.
func (p Prefix) FamilyBits() uint8 {
	if p.Is4() {
		return p.Bits - 96
	}
	return p.Bits
}

// ParsePrefix parses CIDR notation in either family: "10.1.0.0/16"
// (IPv4, mapped internally to /112) or "2001:db8::/32". The address part
// must already be canonical (no host bits set).
func ParsePrefix(s string) (Prefix, error) {
	slash := strings.IndexByte(s, '/')
	if slash < 0 {
		return Prefix{}, fmt.Errorf("%w: %q missing '/'", ErrBadPrefix, s)
	}
	a, err := ParseAddr(s[:slash])
	if err != nil {
		return Prefix{}, fmt.Errorf("%w: %q: %v", ErrBadPrefix, s, err)
	}
	bits, err := strconv.ParseUint(s[slash+1:], 10, 8)
	if err != nil {
		return Prefix{}, fmt.Errorf("%w: %q bad mask length", ErrBadPrefix, s)
	}
	if strings.IndexByte(s[:slash], ':') < 0 {
		// Dotted-quad notation carries the family-relative length.
		if bits > 32 {
			return Prefix{}, fmt.Errorf("%w: %q bad mask length", ErrBadPrefix, s)
		}
		bits += 96
	} else if bits > 128 {
		return Prefix{}, fmt.Errorf("%w: %q bad mask length", ErrBadPrefix, s)
	}
	p := PrefixFrom(a, uint8(bits))
	if p.Addr != a {
		return Prefix{}, fmt.Errorf("%w: %q has host bits set", ErrBadPrefix, s)
	}
	return p, nil
}

// MustParsePrefix is ParsePrefix that panics on error.
func MustParsePrefix(s string) Prefix {
	p, err := ParsePrefix(s)
	if err != nil {
		panic(err)
	}
	return p
}

// String renders p in CIDR notation, dotted-quad with family-relative
// length for IPv4 prefixes ("10.0.0.0/8") and RFC 5952 form otherwise.
func (p Prefix) String() string {
	if p.Is4() {
		return p.Addr.v4String() + "/" + strconv.Itoa(int(p.Bits-96))
	}
	return p.Addr.String() + "/" + strconv.Itoa(int(p.Bits))
}

// Contains reports whether a falls inside p.
func (p Prefix) Contains(a Addr) bool {
	mh, ml := MaskOf(p.Bits)
	return a.hi&mh == p.Addr.hi && a.lo&ml == p.Addr.lo
}

// Covers reports whether p covers q, i.e. q's range is a subset of p's.
// Every prefix covers itself.
func (p Prefix) Covers(q Prefix) bool {
	return p.Bits <= q.Bits && p.Contains(q.Addr)
}

// Parent returns the prefix obtained by shortening p by step bits,
// saturating at the root. Parent of the root is the root.
func (p Prefix) Parent(step uint8) Prefix {
	if step >= p.Bits {
		return Root
	}
	return PrefixFrom(p.Addr, p.Bits-step)
}

// Compare orders prefixes by (Bits, Addr): shorter (more general)
// prefixes first, then numerically by address. Returns -1, 0 or +1.
func (p Prefix) Compare(q Prefix) int {
	switch {
	case p.Bits < q.Bits:
		return -1
	case p.Bits > q.Bits:
		return 1
	}
	return p.Addr.Compare(q.Addr)
}
