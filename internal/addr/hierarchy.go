package addr

import "strconv"

// Granularity is the step, in bits, between consecutive levels of a
// prefix hierarchy. The hierarchical-heavy-hitter literature
// conventionally uses byte granularity for IPv4 (levels /0 /8 /16 /24
// /32) and hextet or nibble granularity for IPv6's much taller lattice.
type Granularity uint8

// Common granularities.
const (
	// Bit steps one bit per level (33 IPv4 levels).
	Bit Granularity = 1
	// Nibble steps four bits per level (9 IPv4 levels, 17 IPv6 levels
	// to /64) — the tall-hierarchy stress case RHHH targets.
	Nibble Granularity = 4
	// Byte steps eight bits per level (5 IPv4 levels), the paper's
	// convention.
	Byte Granularity = 8
	// Hextet steps sixteen bits — one textual IPv6 group — per level
	// (5 IPv6 levels to /64, the ladder mirroring IPv4-by-byte).
	Hextet Granularity = 16
)

// String renders the conventional granularity name.
func (g Granularity) String() string {
	switch g {
	case Bit:
		return "bit"
	case Nibble:
		return "nibble"
	case Byte:
		return "byte"
	case Hextet:
		return "hextet"
	default:
		return "granularity(" + strconv.Itoa(int(g)) + ")"
	}
}

// Hierarchy describes a uniform generalisation lattice over source
// prefixes of one address family — the descriptor every detector,
// generator and oracle in the repository consumes instead of a
// hard-coded ladder. Level 0 is the most specific (leaf) level; level
// Levels()-1 is the family root (/0).
//
// For IPv4 the lattice spans /0../32 in family-relative bits (the
// paper's byte-granularity ladder is NewIPv4Hierarchy(Byte)). For IPv6
// it spans /0 down to a configurable leaf depth, conventionally /64 —
// the subnet boundary below which interface identifiers carry no routing
// structure — so per-level state stays keyable by the top 64 address
// bits.
//
// A Hierarchy also owns the packing of its lattice prefixes into the
// uint64 keys the sketch substrates consume: within one hierarchy every
// level's varying bits fit one 64-bit half of the address (the low half
// for IPv4-mapped addresses, the high half for IPv6 with depth <= 64),
// so Key/PrefixOfKey are lossless and allocation-free. The zero value is
// not valid; detectors treat it as "default" and substitute the IPv4
// byte ladder.
type Hierarchy struct {
	fam   Family
	depth uint8 // leaf mask length in the unified 128-bit space
	step  uint8
}

// MaxIPv6Depth is the deepest IPv6 leaf level a Hierarchy supports
// (family-relative /64): the conventional subnet boundary, and the limit
// at which per-level keys still fit the sketch substrates' uint64 keys.
const MaxIPv6Depth = 64

// NewIPv4Hierarchy builds the IPv4 lattice /0../32 at granularity g. It
// panics if g does not divide 32: such lattices would be non-uniform and
// are never meaningful for IPv4 HHH.
func NewIPv4Hierarchy(g Granularity) Hierarchy {
	if g == 0 || g > 32 || 32%uint8(g) != 0 {
		panic("addr: IPv4 granularity must divide 32, got " + g.String())
	}
	return Hierarchy{fam: V4, depth: 128, step: uint8(g)}
}

// NewIPv6Hierarchy builds the IPv6 lattice /0../64 at granularity g
// (Hextet for the five-level ladder mirroring IPv4-by-byte, Nibble for
// the 17-level stress case). It panics if g does not divide 64.
func NewIPv6Hierarchy(g Granularity) Hierarchy {
	return NewIPv6HierarchyDepth(g, MaxIPv6Depth)
}

// NewIPv6HierarchyDepth builds the IPv6 lattice /0../depth at
// granularity g. depth must be in (0, MaxIPv6Depth] and divisible by g;
// it panics otherwise.
func NewIPv6HierarchyDepth(g Granularity, depth uint8) Hierarchy {
	if depth == 0 || depth > MaxIPv6Depth {
		panic("addr: IPv6 hierarchy depth must be in (0,64], got " + strconv.Itoa(int(depth)))
	}
	if g == 0 || depth%uint8(g) != 0 {
		panic("addr: IPv6 granularity " + g.String() + " must divide depth " + strconv.Itoa(int(depth)))
	}
	return Hierarchy{fam: V6, depth: depth, step: uint8(g)}
}

// Family returns the address family the hierarchy generalises.
func (h Hierarchy) Family() Family { return h.fam }

// Granularity returns the configured per-level bit step.
func (h Hierarchy) Granularity() Granularity { return Granularity(h.step) }

// Depth returns the family-relative mask length of the leaf level (32
// for IPv4, up to 64 for IPv6).
func (h Hierarchy) Depth() uint8 {
	if h.fam == V4 {
		return h.depth - 96
	}
	return h.depth
}

// rootBits is the unified-space mask length of the family root: 96 for
// IPv4 (the mapped range ::ffff:0:0/96 is IPv4's 0.0.0.0/0), 0 for IPv6.
func (h Hierarchy) rootBits() uint8 {
	if h.fam == V4 {
		return 96
	}
	return 0
}

// Levels returns the number of levels in the hierarchy, including both
// the leaves and the family root. The IPv4 byte ladder yields 5.
func (h Hierarchy) Levels() int {
	return int(h.depth-h.rootBits())/int(h.step) + 1
}

// Bits returns the unified-space prefix length at the given level, where
// level 0 is the leaf level and level Levels()-1 the root.
func (h Hierarchy) Bits(level int) uint8 {
	return h.depth - uint8(level)*h.step
}

// Level returns the level index for a unified-space prefix length, or -1
// if bits does not lie on this hierarchy's lattice.
func (h Hierarchy) Level(bits uint8) int {
	if bits > h.depth || bits < h.rootBits() || (h.depth-bits)%h.step != 0 {
		return -1
	}
	return int(h.depth-bits) / int(h.step)
}

// Match reports whether a belongs to the hierarchy's address family: the
// ingest-side family filter every engine applies, so dual-stack streams
// feed each family's detector only its own packets.
func (h Hierarchy) Match(a Addr) bool {
	return a.Is4() == (h.fam == V4)
}

// At generalises a to the given level.
func (h Hierarchy) At(a Addr, level int) Prefix {
	return PrefixFrom(a, h.Bits(level))
}

// Ancestors appends to dst the full generalisation chain of a from the
// leaf (level 0) to the family root, in that order, and returns the
// extended slice. With a preallocated dst this performs no allocation;
// it is the hot path of every per-packet HHH update.
func (h Hierarchy) Ancestors(a Addr, dst []Prefix) []Prefix {
	for l := 0; l < h.Levels(); l++ {
		dst = append(dst, h.At(a, l))
	}
	return dst
}

// OnLattice reports whether p lies on the hierarchy lattice: right
// family, mask length on a level boundary.
func (h Hierarchy) OnLattice(p Prefix) bool {
	return h.Level(p.Bits) >= 0 && p.Family() == h.fam
}

// KeyFromHigh reports which 64-bit address half this hierarchy's keys
// are drawn from: the high half for IPv6 (depth <= 64), the low half for
// IPv4-mapped addresses (all varying bits sit below bit 64). Engines
// hoist it next to their per-level KeyMask table.
func (h Hierarchy) KeyFromHigh() bool { return h.fam == V6 }

// KeyMask returns the mask that generalises a level's keys: key at level
// l == half(addr) & KeyMask(l), with half per KeyFromHigh.
func (h Hierarchy) KeyMask(level int) uint64 {
	bits := h.Bits(level)
	if h.fam == V6 {
		return maskHalf(bits)
	}
	return maskHalf(bits - 64)
}

// Key packs a's generalisation at the given level into the uint64 key
// the sketch substrates consume. Within one hierarchy the packing is
// lossless: PrefixOfKey inverts it.
func (h Hierarchy) Key(a Addr, level int) uint64 {
	if h.fam == V6 {
		return a.hi & h.KeyMask(level)
	}
	return a.lo & h.KeyMask(level)
}

// KeyOfPrefix packs an on-lattice prefix into its level key (the
// prefix's address is already masked, so this is a bare half select).
func (h Hierarchy) KeyOfPrefix(p Prefix) uint64 {
	if h.fam == V6 {
		return p.Addr.hi
	}
	return p.Addr.lo
}

// PrefixOfKey inverts Key: it rebuilds the lattice prefix a level key
// denotes.
func (h Hierarchy) PrefixOfKey(key uint64, level int) Prefix {
	if h.fam == V6 {
		return Prefix{Addr: Addr{hi: key}, Bits: h.Bits(level)}
	}
	return Prefix{Addr: Addr{lo: key}, Bits: h.Bits(level)}
}

// String renders the descriptor, e.g. "ipv4/8" (byte ladder) or
// "ipv6/16@64" (hextet steps to a /64 leaf).
func (h Hierarchy) String() string {
	s := h.fam.String() + "/" + strconv.Itoa(int(h.step))
	if h.fam == V6 && h.depth != MaxIPv6Depth {
		s += "@" + strconv.Itoa(int(h.depth))
	}
	return s
}
