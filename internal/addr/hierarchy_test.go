package addr

import (
	"testing"
	"testing/quick"
)

func TestHierarchyLevels(t *testing.T) {
	cases := []struct {
		h      Hierarchy
		levels int
		leaf   uint8 // unified-space bits of level 0
	}{
		{NewIPv4Hierarchy(Bit), 33, 128},
		{NewIPv4Hierarchy(Nibble), 9, 128},
		{NewIPv4Hierarchy(Byte), 5, 128},
		{NewIPv6Hierarchy(Hextet), 5, 64},
		{NewIPv6Hierarchy(Nibble), 17, 64},
		{NewIPv6HierarchyDepth(Hextet, 48), 4, 48},
	}
	for _, c := range cases {
		if c.h.Levels() != c.levels {
			t.Errorf("%v: Levels() = %d, want %d", c.h, c.h.Levels(), c.levels)
		}
		if c.h.Bits(0) != c.leaf {
			t.Errorf("%v: leaf Bits = %d, want %d", c.h, c.h.Bits(0), c.leaf)
		}
		if got := c.h.Bits(c.levels - 1); got != c.h.rootBits() {
			t.Errorf("%v: top level Bits = %d, want %d", c.h, got, c.h.rootBits())
		}
		for l := 0; l < c.levels; l++ {
			if c.h.Level(c.h.Bits(l)) != l {
				t.Errorf("%v: Level(Bits(%d)) != %d", c.h, l, l)
			}
		}
	}
	if NewIPv4Hierarchy(Byte).Level(12+96) != -1 {
		t.Error("v4 Level(/12) at byte granularity should be -1")
	}
	if NewIPv6Hierarchy(Hextet).Level(24) != -1 {
		t.Error("v6 Level(/24) at hextet granularity should be -1")
	}
	if NewIPv6Hierarchy(Hextet).Level(96) != -1 {
		t.Error("v6 Level(/96) beyond depth should be -1")
	}
}

func TestHierarchyPanicsOnInvalid(t *testing.T) {
	mustPanic := func(name string, fn func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s should panic", name)
			}
		}()
		fn()
	}
	mustPanic("NewIPv4Hierarchy(3)", func() { NewIPv4Hierarchy(3) })
	mustPanic("NewIPv4Hierarchy(0)", func() { NewIPv4Hierarchy(0) })
	mustPanic("NewIPv6Hierarchy(3)", func() { NewIPv6Hierarchy(3) })
	mustPanic("NewIPv6HierarchyDepth(Hextet,80)", func() { NewIPv6HierarchyDepth(Hextet, 80) })
	mustPanic("NewIPv6HierarchyDepth(Hextet,0)", func() { NewIPv6HierarchyDepth(Hextet, 0) })
}

func TestAncestorsV4(t *testing.T) {
	h := NewIPv4Hierarchy(Byte)
	got := h.Ancestors(MustParseAddr("10.1.2.3"), nil)
	want := []Prefix{
		MustParsePrefix("10.1.2.3/32"),
		MustParsePrefix("10.1.2.0/24"),
		MustParsePrefix("10.1.0.0/16"),
		MustParsePrefix("10.0.0.0/8"),
		V4Root,
	}
	if len(got) != len(want) {
		t.Fatalf("Ancestors returned %d entries, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("ancestor[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestAncestorsV6(t *testing.T) {
	h := NewIPv6Hierarchy(Hextet)
	got := h.Ancestors(MustParseAddr("2001:db8:ab:cd::1"), nil)
	want := []Prefix{
		MustParsePrefix("2001:db8:ab:cd::/64"),
		MustParsePrefix("2001:db8:ab::/48"),
		MustParsePrefix("2001:db8::/32"),
		MustParsePrefix("2001::/16"),
		Root,
	}
	if len(got) != len(want) {
		t.Fatalf("Ancestors returned %d entries, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("ancestor[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestAncestorsChainProperty(t *testing.T) {
	for _, h := range []Hierarchy{NewIPv4Hierarchy(Nibble), NewIPv6Hierarchy(Nibble)} {
		f := func(hi, lo uint64) bool {
			a := FromParts(hi, lo)
			if h.Family() == V4 {
				a = From4Uint32(uint32(lo))
			}
			chain := h.Ancestors(a, nil)
			if len(chain) != h.Levels() {
				return false
			}
			for i := 1; i < len(chain); i++ {
				if !chain[i].Covers(chain[i-1]) {
					return false
				}
				if chain[i-1].Bits-chain[i].Bits != uint8(Nibble) {
					return false
				}
			}
			return true
		}
		if err := quick.Check(f, nil); err != nil {
			t.Fatalf("%v: %v", h, err)
		}
	}
}

func TestAncestorsNoAlloc(t *testing.T) {
	h := NewIPv6Hierarchy(Hextet)
	buf := make([]Prefix, 0, h.Levels())
	a := MustParseAddr("2001:db8::1")
	allocs := testing.AllocsPerRun(100, func() {
		buf = h.Ancestors(a, buf[:0])
	})
	if allocs != 0 {
		t.Errorf("Ancestors with preallocated buffer allocates %v times per run", allocs)
	}
}

func TestOnLattice(t *testing.T) {
	h4 := NewIPv4Hierarchy(Byte)
	if !h4.OnLattice(MustParsePrefix("10.0.0.0/8")) {
		t.Error("/8 should be on v4 byte lattice")
	}
	if h4.OnLattice(MustParsePrefix("10.0.0.0/12")) {
		t.Error("/12 should not be on v4 byte lattice")
	}
	if h4.OnLattice(MustParsePrefix("2001:db8::/32")) {
		t.Error("v6 prefix should not be on the v4 lattice")
	}
	h6 := NewIPv6Hierarchy(Hextet)
	if !h6.OnLattice(MustParsePrefix("2001:db8::/32")) {
		t.Error("/32 should be on v6 hextet lattice")
	}
	if h6.OnLattice(MustParsePrefix("10.0.0.0/8")) {
		t.Error("v4 prefix should not be on the v6 lattice")
	}
}

func TestMatch(t *testing.T) {
	h4, h6 := NewIPv4Hierarchy(Byte), NewIPv6Hierarchy(Hextet)
	v4, v6 := MustParseAddr("10.0.0.1"), MustParseAddr("2001:db8::1")
	if !h4.Match(v4) || h4.Match(v6) {
		t.Error("v4 hierarchy must match exactly the mapped addresses")
	}
	if !h6.Match(v6) || h6.Match(v4) {
		t.Error("v6 hierarchy must match exactly the non-mapped addresses")
	}
}

func TestKeyRoundTripQuick(t *testing.T) {
	for _, h := range []Hierarchy{
		NewIPv4Hierarchy(Byte), NewIPv4Hierarchy(Bit),
		NewIPv6Hierarchy(Hextet), NewIPv6Hierarchy(Nibble),
	} {
		f := func(hi, lo uint64, l8 uint8) bool {
			a := FromParts(hi, lo)
			if h.Family() == V4 {
				a = From4Uint32(uint32(lo))
			}
			level := int(l8) % h.Levels()
			key := h.Key(a, level)
			p := h.PrefixOfKey(key, level)
			// The key must invert to the same prefix At builds, and the
			// prefix-side packing must agree with the address-side one.
			return p == h.At(a, level) && h.KeyOfPrefix(p) == key
		}
		if err := quick.Check(f, nil); err != nil {
			t.Fatalf("%v: %v", h, err)
		}
	}
}

func TestKeyMaskAgreesWithKey(t *testing.T) {
	for _, h := range []Hierarchy{NewIPv4Hierarchy(Byte), NewIPv6Hierarchy(Nibble)} {
		a := MustParseAddr("203.0.113.77")
		if h.Family() == V6 {
			a = MustParseAddr("2001:db8:1234:5678::9")
		}
		half := a.Lo()
		if h.KeyFromHigh() {
			half = a.Hi()
		}
		for l := 0; l < h.Levels(); l++ {
			if half&h.KeyMask(l) != h.Key(a, l) {
				t.Errorf("%v level %d: mask path disagrees with Key", h, l)
			}
		}
	}
}

func TestKeysDistinctAcrossSiblings(t *testing.T) {
	// Two v4 addresses differing in one octet must key apart at every
	// level that separates them, and identically above.
	h := NewIPv4Hierarchy(Byte)
	a, b := MustParseAddr("10.1.2.3"), MustParseAddr("10.1.9.3")
	if h.Key(a, 0) == h.Key(b, 0) || h.Key(a, 1) == h.Key(b, 1) {
		t.Error("level 0/1 keys should differ")
	}
	if h.Key(a, 2) != h.Key(b, 2) {
		t.Error("level 2 (/16) keys should agree")
	}
}

func TestHierarchyString(t *testing.T) {
	cases := map[string]Hierarchy{
		"ipv4/8":     NewIPv4Hierarchy(Byte),
		"ipv6/16":    NewIPv6Hierarchy(Hextet),
		"ipv6/4":     NewIPv6Hierarchy(Nibble),
		"ipv6/16@48": NewIPv6HierarchyDepth(Hextet, 48),
	}
	for want, h := range cases {
		if h.String() != want {
			t.Errorf("String() = %q, want %q", h.String(), want)
		}
	}
}

func BenchmarkAncestorsV6Hextet(b *testing.B) {
	h := NewIPv6Hierarchy(Hextet)
	buf := make([]Prefix, 0, h.Levels())
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf = h.Ancestors(FromParts(uint64(i)*0x9e3779b97f4a7c15, uint64(i)), buf[:0])
	}
	_ = buf
}
