package addr

import (
	"testing"
	"testing/quick"
)

func TestAddrRoundTripV4(t *testing.T) {
	cases := []struct {
		s string
		a Addr
	}{
		{"0.0.0.0", From4(0, 0, 0, 0)},
		{"255.255.255.255", From4(255, 255, 255, 255)},
		{"192.0.2.7", From4(192, 0, 2, 7)},
		{"10.1.2.3", From4Uint32(0x0a010203)},
	}
	for _, c := range cases {
		got, err := ParseAddr(c.s)
		if err != nil {
			t.Fatalf("ParseAddr(%q): %v", c.s, err)
		}
		if got != c.a {
			t.Errorf("ParseAddr(%q) = %v, want %v", c.s, got, c.a)
		}
		if got.String() != c.s {
			t.Errorf("String() = %q, want %q", got.String(), c.s)
		}
		if !got.Is4() || got.Family() != V4 {
			t.Errorf("%q should be IPv4-mapped", c.s)
		}
	}
}

func TestAddrRoundTripV6(t *testing.T) {
	cases := []struct {
		in, out string
	}{
		{"::", "::"},
		{"::1", "::1"},
		{"2001:db8::1", "2001:db8::1"},
		{"2001:0db8:0000:0000:0000:0000:0000:0001", "2001:db8::1"},
		{"fe80::", "fe80::"},
		{"2001:db8:0:0:1:0:0:1", "2001:db8::1:0:0:1"}, // leftmost longest run wins
		{"1:2:3:4:5:6:7:8", "1:2:3:4:5:6:7:8"},
		{"2400:cb00:2048:1::6813:c166", "2400:cb00:2048:1::6813:c166"},
		{"0:0:0:0:0:0:0:2", "::2"},
		{"2001:db8::", "2001:db8::"},
	}
	for _, c := range cases {
		got, err := ParseAddr(c.in)
		if err != nil {
			t.Fatalf("ParseAddr(%q): %v", c.in, err)
		}
		if got.String() != c.out {
			t.Errorf("ParseAddr(%q).String() = %q, want %q", c.in, got.String(), c.out)
		}
		if got.Is4() {
			t.Errorf("%q should not be IPv4-mapped", c.in)
		}
		back, err := ParseAddr(got.String())
		if err != nil || back != got {
			t.Errorf("String round trip of %q failed: %v", c.in, err)
		}
	}
}

func TestMappedV4Forms(t *testing.T) {
	// The mapped textual form and the dotted-quad form are the same address.
	m := MustParseAddr("::ffff:192.0.2.7")
	q := MustParseAddr("192.0.2.7")
	if m != q {
		t.Fatalf("::ffff:192.0.2.7 (%v) != 192.0.2.7 (%v)", m, q)
	}
	if !m.Is4() || m.V4() != 0xc0000207 {
		t.Errorf("mapped form should be IPv4 0xc0000207, got %08x", m.V4())
	}
	// The mapped form renders back as dotted quad.
	if m.String() != "192.0.2.7" {
		t.Errorf("String() = %q, want dotted quad", m.String())
	}
	// A hex-spelled mapped address is the same value too.
	h := MustParseAddr("::ffff:c000:207")
	if h != m {
		t.Errorf("::ffff:c000:207 (%v) != ::ffff:192.0.2.7 (%v)", h, m)
	}
	// One bit outside the mapped range is IPv6.
	if MustParseAddr("::fffe:c000:207").Is4() {
		t.Error("::fffe:c000:207 must not be IPv4-mapped")
	}
}

func TestParseAddrErrors(t *testing.T) {
	bad := []string{
		"", "1", "1.2", "1.2.3", "1.2.3.4.5", "256.0.0.1", "1..2.3",
		"a.b.c.d", "1.2.3.4x", ".1.2.3", "1.2.3.",
		":", ":::", "1::2::3", "1:2:3:4:5:6:7:8:9", "12345::",
		"g::", "1:2:3:4:5:6:7", "::1.2.3", "1.2.3.4::", "fe80:",
		":fe80::", "1:2:3:4:5:6:7:1.2.3.4",
	}
	for _, s := range bad {
		if _, err := ParseAddr(s); err == nil {
			t.Errorf("ParseAddr(%q) unexpectedly succeeded", s)
		}
	}
}

func TestAddrStringQuick(t *testing.T) {
	f := func(hi, lo uint64) bool {
		a := FromParts(hi, lo)
		back, err := ParseAddr(a.String())
		return err == nil && back == a
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestAs16RoundTrip(t *testing.T) {
	f := func(hi, lo uint64) bool {
		a := FromParts(hi, lo)
		return From16(a.As16()) == a
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestZeroCompressionRoundTripQuick(t *testing.T) {
	// Sparse addresses exercise the zero-run compressor hard: any subset
	// of the eight groups zeroed must still round-trip through String.
	f := func(hi, lo uint64, zeroMask uint8) bool {
		var segs [8]uint16
		for i := 0; i < 4; i++ {
			segs[i] = uint16(hi >> (48 - 16*i))
			segs[i+4] = uint16(lo >> (48 - 16*i))
		}
		for i := 0; i < 8; i++ {
			if zeroMask&(1<<i) != 0 {
				segs[i] = 0
			}
		}
		var a Addr
		for i := 0; i < 4; i++ {
			a.hi = a.hi<<16 | uint64(segs[i])
			a.lo = a.lo<<16 | uint64(segs[i+4])
		}
		back, err := ParseAddr(a.String())
		return err == nil && back == a
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestMaskOf(t *testing.T) {
	cases := []struct {
		bits   uint8
		hi, lo uint64
	}{
		{0, 0, 0},
		{1, 0x8000000000000000, 0},
		{64, ^uint64(0), 0},
		{65, ^uint64(0), 0x8000000000000000},
		{96, ^uint64(0), 0xffffffff00000000},
		{104, ^uint64(0), 0xffffffffff000000},
		{128, ^uint64(0), ^uint64(0)},
	}
	for _, c := range cases {
		hi, lo := MaskOf(c.bits)
		if hi != c.hi || lo != c.lo {
			t.Errorf("MaskOf(%d) = %016x,%016x want %016x,%016x", c.bits, hi, lo, c.hi, c.lo)
		}
	}
}

func TestPrefixCanonicalisation(t *testing.T) {
	p := PrefixFrom(MustParseAddr("10.1.2.3"), 96+16)
	if want := MustParsePrefix("10.1.0.0/16"); p != want {
		t.Errorf("PrefixFrom canonicalised to %v, want %v", p, want)
	}
	if p.String() != "10.1.0.0/16" {
		t.Errorf("String() = %q", p.String())
	}
	// IPv6 canonicalisation.
	q := PrefixFrom(MustParseAddr("2001:db8:abcd::1"), 32)
	if want := MustParsePrefix("2001:db8::/32"); q != want {
		t.Errorf("PrefixFrom canonicalised to %v, want %v", q, want)
	}
	// Over-long masks saturate to 128.
	if r := PrefixFrom(Addr{}, 200); r.Bits != 128 {
		t.Errorf("PrefixFrom(_,200).Bits = %d, want 128", r.Bits)
	}
}

func TestPrefixMaskCanonicalFormQuick(t *testing.T) {
	// PrefixFrom must zero every host bit, and the result must contain
	// exactly the addresses sharing its masked top bits.
	f := func(hi, lo uint64, bits uint8) bool {
		b := bits % 129
		p := PrefixFrom(FromParts(hi, lo), b)
		mh, ml := MaskOf(b)
		if p.Addr.Hi()&^mh != 0 || p.Addr.Lo()&^ml != 0 {
			return false // host bits survived
		}
		if !p.Contains(FromParts(hi, lo)) {
			return false
		}
		return PrefixFrom(p.Addr, b) == p // canonicalisation is idempotent
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestParsePrefix(t *testing.T) {
	good := []string{
		"0.0.0.0/0", "10.0.0.0/8", "192.0.2.0/24", "192.0.2.7/32", "128.0.0.0/1",
		"::/0", "2001:db8::/32", "fe80::/10", "2001:db8::1/128", "::/64",
	}
	for _, s := range good {
		p, err := ParsePrefix(s)
		if err != nil {
			t.Fatalf("ParsePrefix(%q): %v", s, err)
		}
		if p.String() != s {
			t.Errorf("ParsePrefix(%q).String() = %q", s, p.String())
		}
	}
	bad := []string{
		"", "10.0.0.0", "10.0.0.0/", "10.0.0.0/33", "10.0.0.1/8", "x/8",
		"10.0.0.0/-1", "10.0.0.0/8/9", "2001:db8::/129", "2001:db8::1/32", "::/x",
	}
	for _, s := range bad {
		if _, err := ParsePrefix(s); err == nil {
			t.Errorf("ParsePrefix(%q) unexpectedly succeeded", s)
		}
	}
}

func TestPrefixFamilies(t *testing.T) {
	v4 := MustParsePrefix("10.0.0.0/8")
	if !v4.Is4() || v4.Family() != V4 || v4.Bits != 104 || v4.FamilyBits() != 8 {
		t.Errorf("10.0.0.0/8: Is4=%v Bits=%d FamilyBits=%d", v4.Is4(), v4.Bits, v4.FamilyBits())
	}
	v6 := MustParsePrefix("2001:db8::/32")
	if v6.Is4() || v6.Family() != V6 || v6.FamilyBits() != 32 {
		t.Errorf("2001:db8::/32: Is4=%v FamilyBits=%d", v6.Is4(), v6.FamilyBits())
	}
	// The v4 root covers exactly the mapped range; the unified root covers it.
	if !V4Root.Contains(MustParseAddr("203.0.113.9")) {
		t.Error("V4Root should contain every IPv4 address")
	}
	if V4Root.Contains(MustParseAddr("2001:db8::1")) {
		t.Error("V4Root should not contain IPv6 addresses")
	}
	if !Root.Covers(V4Root) {
		t.Error("::/0 should cover the mapped range")
	}
	if V4Root.String() != "0.0.0.0/0" {
		t.Errorf("V4Root.String() = %q", V4Root.String())
	}
}

func TestContainsCovers(t *testing.T) {
	p := MustParsePrefix("10.1.0.0/16")
	if !p.Contains(MustParseAddr("10.1.255.255")) {
		t.Error("10.1.0.0/16 should contain 10.1.255.255")
	}
	if p.Contains(MustParseAddr("10.2.0.0")) {
		t.Error("10.1.0.0/16 should not contain 10.2.0.0")
	}
	if !Root.Contains(MustParseAddr("203.0.113.9")) {
		t.Error("root should contain everything")
	}
	if !p.Covers(MustParsePrefix("10.1.2.0/24")) {
		t.Error("/16 should cover its /24")
	}
	if !p.Covers(p) {
		t.Error("prefix should cover itself")
	}
	if p.Covers(MustParsePrefix("10.0.0.0/8")) {
		t.Error("/16 should not cover its /8 parent")
	}
	v6 := MustParsePrefix("2001:db8::/32")
	if !v6.Contains(MustParseAddr("2001:db8:ffff::1")) {
		t.Error("2001:db8::/32 should contain 2001:db8:ffff::1")
	}
	if v6.Contains(MustParseAddr("2001:db9::1")) {
		t.Error("2001:db8::/32 should not contain 2001:db9::1")
	}
	if !v6.Covers(MustParsePrefix("2001:db8:ab::/48")) {
		t.Error("/32 should cover its /48")
	}
}

func TestParent(t *testing.T) {
	p := MustParsePrefix("10.1.2.0/24")
	if got, want := p.Parent(8), MustParsePrefix("10.1.0.0/16"); got != want {
		t.Errorf("Parent(8) = %v, want %v", got, want)
	}
	v6 := MustParsePrefix("2001:db8:ab::/48")
	if got, want := v6.Parent(16), MustParsePrefix("2001:db8::/32"); got != want {
		t.Errorf("Parent(16) = %v, want %v", got, want)
	}
	if got := Root.Parent(8); got != Root {
		t.Errorf("root.Parent(8) = %v, want root", got)
	}
	if got := v6.Parent(200); got != Root {
		t.Errorf("Parent(200) = %v, want root", got)
	}
}

func TestCompare(t *testing.T) {
	ps := []Prefix{
		Root,
		MustParsePrefix("2001:db8::/32"),
		MustParsePrefix("2001:db9::/32"),
		MustParsePrefix("2001:db8::/48"),
		MustParsePrefix("10.0.0.0/8"), // Bits 104: after every /48
		MustParsePrefix("10.1.0.0/16"),
	}
	for i, p := range ps {
		for j, q := range ps {
			got := p.Compare(q)
			switch {
			case i == j && got != 0:
				t.Errorf("Compare(%v,%v) = %d, want 0", p, q, got)
			case i < j && got != -1:
				t.Errorf("Compare(%v,%v) = %d, want -1", p, q, got)
			case i > j && got != 1:
				t.Errorf("Compare(%v,%v) = %d, want 1", p, q, got)
			}
		}
	}
}
