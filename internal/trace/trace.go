// Package trace defines the packet-record model shared by every component
// of the pipeline — generators, window engines, sketches, detectors — plus a
// compact binary on-disk trace format and stream utilities.
//
// A trace is a time-ordered sequence of Packet records. The experiments in
// the paper consume one-hour Tier-1 ISP captures; this package's format
// stores the handful of header fields those experiments need (timestamps,
// addresses, ports, protocol, wire length) at 26 bytes per packet instead
// of retaining full payloads.
package trace

import (
	"time"

	"hiddenhhh/internal/ipv4"
)

// Packet is a single observed packet. Timestamps are nanoseconds since an
// arbitrary trace epoch; only differences matter to the algorithms. Size is
// the wire length in bytes, the quantity all byte-threshold experiments
// aggregate.
type Packet struct {
	Ts      int64 // nanoseconds since trace epoch
	Src     ipv4.Addr
	Dst     ipv4.Addr
	SrcPort uint16
	DstPort uint16
	Proto   uint8
	Size    uint32
}

// Common IANA protocol numbers for synthesised traffic.
const (
	ProtoICMP = 1
	ProtoTCP  = 6
	ProtoUDP  = 17
)

// Time converts a packet timestamp to a duration since the trace epoch.
func (p *Packet) Time() time.Duration { return time.Duration(p.Ts) }

// Source yields packets in non-decreasing timestamp order. Next returns
// io.EOF after the final packet. Implementations are not safe for
// concurrent use unless documented otherwise.
type Source interface {
	// Next fills *p with the next packet. It returns io.EOF at the end of
	// the stream, in which case *p is unspecified.
	Next(p *Packet) error
}

// Sink consumes packets, e.g. a file writer or an in-memory collector.
type Sink interface {
	Write(p *Packet) error
}
