// Package trace defines the packet-record model shared by every component
// of the pipeline — generators, window engines, sketches, detectors — plus a
// compact binary on-disk trace format and stream utilities.
//
// A trace is a time-ordered sequence of Packet records. The experiments in
// the paper consume one-hour Tier-1 ISP captures; this package's format
// stores the handful of header fields those experiments need (timestamps,
// addresses, ports, protocol, wire length) at 50 bytes per packet instead
// of retaining full payloads. Addresses are the dual-stack 128-bit keys of
// internal/addr, so one record layout carries IPv4 (IPv4-mapped) and IPv6
// traffic alike; the reader also accepts the legacy IPv4-only version-1
// files earlier revisions wrote.
package trace

import (
	"time"

	"hiddenhhh/internal/addr"
)

// Packet is a single observed packet. Timestamps are nanoseconds since an
// arbitrary trace epoch; only differences matter to the algorithms. Size is
// the wire length in bytes, the quantity all byte-threshold experiments
// aggregate. Src and Dst are 128-bit dual-stack addresses (IPv4 is carried
// IPv4-mapped; see internal/addr).
type Packet struct {
	Ts      int64 // nanoseconds since trace epoch
	Src     addr.Addr
	Dst     addr.Addr
	SrcPort uint16
	DstPort uint16
	Proto   uint8
	Size    uint32
}

// Common IANA protocol numbers for synthesised traffic.
const (
	// ProtoICMP is IPv4 ICMP (protocol 1).
	ProtoICMP = 1
	// ProtoTCP is TCP (protocol 6).
	ProtoTCP = 6
	// ProtoUDP is UDP (protocol 17).
	ProtoUDP = 17
	// ProtoICMPv6 is ICMPv6 (protocol 58), the v6 counterpart of
	// ProtoICMP.
	ProtoICMPv6 = 58
)

// Time converts a packet timestamp to a duration since the trace epoch.
func (p *Packet) Time() time.Duration { return time.Duration(p.Ts) }

// Source yields packets in non-decreasing timestamp order. Next returns
// io.EOF after the final packet. Implementations are not safe for
// concurrent use unless documented otherwise.
type Source interface {
	// Next fills *p with the next packet. It returns io.EOF at the end of
	// the stream, in which case *p is unspecified.
	Next(p *Packet) error
}

// Sink consumes packets, e.g. a file writer or an in-memory collector.
type Sink interface {
	// Write stores or forwards one packet record.
	Write(p *Packet) error
}
