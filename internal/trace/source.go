package trace

import (
	"errors"
	"io"
	"sort"
)

// SliceSource replays an in-memory packet slice. The zero value is an empty
// stream. It is the workhorse of tests and of experiments that pass over
// the same trace several times.
type SliceSource struct {
	pkts []Packet
	pos  int
}

// NewSliceSource wraps pkts without copying; the caller must not mutate the
// slice while the source is in use.
func NewSliceSource(pkts []Packet) *SliceSource {
	return &SliceSource{pkts: pkts}
}

// Next implements Source.
func (s *SliceSource) Next(p *Packet) error {
	if s.pos >= len(s.pkts) {
		return io.EOF
	}
	*p = s.pkts[s.pos]
	s.pos++
	return nil
}

// Reset rewinds the source to the first packet.
func (s *SliceSource) Reset() { s.pos = 0 }

// Len returns the total number of packets in the source.
func (s *SliceSource) Len() int { return len(s.pkts) }

// Collect drains src into a slice. sizeHint may be zero.
func Collect(src Source, sizeHint int) ([]Packet, error) {
	pkts := make([]Packet, 0, sizeHint)
	var p Packet
	for {
		err := src.Next(&p)
		if errors.Is(err, io.EOF) {
			return pkts, nil
		}
		if err != nil {
			return pkts, err
		}
		pkts = append(pkts, p)
	}
}

// ForEach applies fn to every packet of src. It stops early and returns
// fn's error if fn fails; io.EOF from the source is not an error.
func ForEach(src Source, fn func(*Packet) error) error {
	var p Packet
	for {
		err := src.Next(&p)
		if errors.Is(err, io.EOF) {
			return nil
		}
		if err != nil {
			return err
		}
		if err := fn(&p); err != nil {
			return err
		}
	}
}

// ForEachBatch drains src through fn in runs of up to batchSize packets
// (default 512), reusing a single buffer for every run — the batch
// counterpart of ForEach for drivers feeding batch-ingest detectors. The
// slice passed to fn is only valid during the call.
func ForEachBatch(src Source, batchSize int, fn func(pkts []Packet) error) error {
	if batchSize <= 0 {
		batchSize = 512
	}
	buf := make([]Packet, batchSize)
	n := 0
	for {
		err := src.Next(&buf[n])
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			return err
		}
		n++
		if n == len(buf) {
			if err := fn(buf); err != nil {
				return err
			}
			n = 0
		}
	}
	if n > 0 {
		return fn(buf[:n])
	}
	return nil
}

// FilterSource passes through only packets for which Keep returns true.
type FilterSource struct {
	Src  Source
	Keep func(*Packet) bool
}

// Next implements Source.
func (f *FilterSource) Next(p *Packet) error {
	for {
		if err := f.Src.Next(p); err != nil {
			return err
		}
		if f.Keep(p) {
			return nil
		}
	}
}

// ClipSource passes through packets with From <= Ts < To.
// Because sources are time-ordered it stops at the first packet past To.
type ClipSource struct {
	Src      Source
	From, To int64
	done     bool
}

// Next implements Source.
func (c *ClipSource) Next(p *Packet) error {
	if c.done {
		return io.EOF
	}
	for {
		if err := c.Src.Next(p); err != nil {
			c.done = true
			return err
		}
		if p.Ts >= c.To {
			c.done = true
			return io.EOF
		}
		if p.Ts >= c.From {
			return nil
		}
	}
}

// IsSorted reports whether pkts is in non-decreasing timestamp order, the
// invariant every Source must provide.
func IsSorted(pkts []Packet) bool {
	return sort.SliceIsSorted(pkts, func(i, j int) bool { return pkts[i].Ts < pkts[j].Ts })
}

// SortByTime sorts pkts in place into non-decreasing timestamp order using
// a stable sort so equal-timestamp packets preserve generation order.
func SortByTime(pkts []Packet) {
	sort.SliceStable(pkts, func(i, j int) bool { return pkts[i].Ts < pkts[j].Ts })
}

// MergeSources merges several individually time-sorted sources into one
// time-sorted stream. It performs a simple k-way merge with a small linear
// scan, which is efficient for the handful of sources experiments combine
// (base traffic + attack overlays).
type MergeSources struct {
	srcs []Source
	head []Packet
	live []bool
	init bool
}

// NewMergeSources builds a merge over srcs.
func NewMergeSources(srcs ...Source) *MergeSources {
	return &MergeSources{
		srcs: srcs,
		head: make([]Packet, len(srcs)),
		live: make([]bool, len(srcs)),
	}
}

// Next implements Source.
func (m *MergeSources) Next(p *Packet) error {
	if !m.init {
		m.init = true
		for i, s := range m.srcs {
			err := s.Next(&m.head[i])
			if err == nil {
				m.live[i] = true
			} else if !errors.Is(err, io.EOF) {
				return err
			}
		}
	}
	best := -1
	for i := range m.srcs {
		if m.live[i] && (best < 0 || m.head[i].Ts < m.head[best].Ts) {
			best = i
		}
	}
	if best < 0 {
		return io.EOF
	}
	*p = m.head[best]
	err := m.srcs[best].Next(&m.head[best])
	if errors.Is(err, io.EOF) {
		m.live[best] = false
	} else if err != nil {
		return err
	}
	return nil
}
