package trace

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"math/rand"
	"path/filepath"
	"reflect"
	"testing"
	"testing/quick"

	"hiddenhhh/internal/addr"
)

// mkPackets synthesises a deterministic dual-stack packet mix: roughly
// half IPv4-mapped sources, half native IPv6 ones, so every format and
// source test exercises both families.
func mkPackets(n int, seed int64) []Packet {
	rng := rand.New(rand.NewSource(seed))
	pkts := make([]Packet, n)
	ts := int64(0)
	for i := range pkts {
		ts += rng.Int63n(1e6)
		src, dst := addr.From4Uint32(rng.Uint32()), addr.From4Uint32(rng.Uint32())
		if rng.Intn(2) == 1 {
			src = addr.FromParts(0x2001_0db8_0000_0000|rng.Uint64()&0xffff_ffff, rng.Uint64())
			dst = addr.FromParts(0x2400_cb00_0000_0000|rng.Uint64()&0xffff_ffff, rng.Uint64())
		}
		pkts[i] = Packet{
			Ts:      ts,
			Src:     src,
			Dst:     dst,
			SrcPort: uint16(rng.Intn(65536)),
			DstPort: uint16(rng.Intn(65536)),
			Proto:   uint8([]int{ProtoTCP, ProtoUDP, ProtoICMP}[rng.Intn(3)]),
			Size:    uint32(40 + rng.Intn(1460)),
		}
	}
	return pkts
}

func TestSliceSource(t *testing.T) {
	pkts := mkPackets(10, 1)
	s := NewSliceSource(pkts)
	if s.Len() != 10 {
		t.Fatalf("Len = %d", s.Len())
	}
	got, err := Collect(s, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, pkts) {
		t.Error("Collect did not reproduce input")
	}
	var p Packet
	if err := s.Next(&p); !errors.Is(err, io.EOF) {
		t.Errorf("exhausted source Next = %v, want EOF", err)
	}
	s.Reset()
	if err := s.Next(&p); err != nil || p != pkts[0] {
		t.Error("Reset should rewind to first packet")
	}
}

func TestForEachStopsOnError(t *testing.T) {
	pkts := mkPackets(10, 2)
	boom := errors.New("boom")
	count := 0
	err := ForEach(NewSliceSource(pkts), func(*Packet) error {
		count++
		if count == 3 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) || count != 3 {
		t.Errorf("ForEach err=%v count=%d, want boom after 3", err, count)
	}
}

func TestFilterSource(t *testing.T) {
	pkts := mkPackets(100, 3)
	f := &FilterSource{
		Src:  NewSliceSource(pkts),
		Keep: func(p *Packet) bool { return p.Proto == ProtoTCP },
	}
	got, err := Collect(f, 0)
	if err != nil {
		t.Fatal(err)
	}
	want := 0
	for _, p := range pkts {
		if p.Proto == ProtoTCP {
			want++
		}
	}
	if len(got) != want {
		t.Errorf("filter kept %d, want %d", len(got), want)
	}
	for _, p := range got {
		if p.Proto != ProtoTCP {
			t.Fatal("non-TCP packet leaked through filter")
		}
	}
}

func TestClipSource(t *testing.T) {
	pkts := mkPackets(200, 4)
	from, to := pkts[50].Ts, pkts[150].Ts
	c := &ClipSource{Src: NewSliceSource(pkts), From: from, To: to}
	got, err := Collect(c, 0)
	if err != nil {
		t.Fatal(err)
	}
	want := 0
	for _, p := range pkts {
		if p.Ts >= from && p.Ts < to {
			want++
		}
	}
	if len(got) != want {
		t.Errorf("clip kept %d, want %d", len(got), want)
	}
	for _, p := range got {
		if p.Ts < from || p.Ts >= to {
			t.Fatal("packet outside clip range")
		}
	}
	// After EOF it must stay at EOF.
	var p Packet
	if err := c.Next(&p); !errors.Is(err, io.EOF) {
		t.Error("clip should remain EOF once done")
	}
}

func TestSortAndIsSorted(t *testing.T) {
	pkts := mkPackets(50, 5)
	if !IsSorted(pkts) {
		t.Fatal("generator should emit sorted packets")
	}
	// Shuffle and re-sort.
	rng := rand.New(rand.NewSource(6))
	rng.Shuffle(len(pkts), func(i, j int) { pkts[i], pkts[j] = pkts[j], pkts[i] })
	SortByTime(pkts)
	if !IsSorted(pkts) {
		t.Fatal("SortByTime failed")
	}
}

func TestMergeSources(t *testing.T) {
	a := mkPackets(100, 7)
	b := mkPackets(60, 8)
	c := mkPackets(0, 9)
	m := NewMergeSources(NewSliceSource(a), NewSliceSource(b), NewSliceSource(c))
	got, err := Collect(m, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(a)+len(b) {
		t.Fatalf("merged %d packets, want %d", len(got), len(a)+len(b))
	}
	if !IsSorted(got) {
		t.Fatal("merge output not time-sorted")
	}
	// Byte totals must be preserved.
	var wantBytes, gotBytes int64
	for _, p := range a {
		wantBytes += int64(p.Size)
	}
	for _, p := range b {
		wantBytes += int64(p.Size)
	}
	for _, p := range got {
		gotBytes += int64(p.Size)
	}
	if wantBytes != gotBytes {
		t.Errorf("merge changed byte total: got %d want %d", gotBytes, wantBytes)
	}
}

func TestFormatRoundTripMemory(t *testing.T) {
	pkts := mkPackets(1000, 10)
	var buf bytes.Buffer
	w, err := NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for i := range pkts {
		if err := w.Write(&pkts[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if w.Count() != 1000 {
		t.Errorf("writer count = %d", w.Count())
	}
	r, err := NewReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	got, err := Collect(r, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, pkts) {
		t.Fatal("round trip mismatch")
	}
}

func TestFormatRoundTripFile(t *testing.T) {
	pkts := mkPackets(500, 11)
	path := filepath.Join(t.TempDir(), "x.hhht")
	if err := WriteFile(path, pkts); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, pkts) {
		t.Fatal("file round trip mismatch")
	}
	// File writers are seekable, so the declared count must be patched.
	r, closer, err := OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer closer.Close()
	if r.DeclaredCount() != 500 {
		t.Errorf("DeclaredCount = %d, want 500", r.DeclaredCount())
	}
}

func TestFormatQuickRoundTrip(t *testing.T) {
	f := func(ts int64, srcHi, srcLo, dstHi, dstLo uint64, sp, dp uint16, proto uint8, size uint32) bool {
		in := Packet{Ts: ts, Src: addr.FromParts(srcHi, srcLo), Dst: addr.FromParts(dstHi, dstLo),
			SrcPort: sp, DstPort: dp, Proto: proto, Size: size}
		var buf bytes.Buffer
		w, err := NewWriter(&buf)
		if err != nil {
			return false
		}
		if w.Write(&in) != nil || w.Close() != nil {
			return false
		}
		r, err := NewReader(bytes.NewReader(buf.Bytes()))
		if err != nil {
			return false
		}
		var out Packet
		if r.Next(&out) != nil {
			return false
		}
		return out == in
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFormatErrors(t *testing.T) {
	// Bad magic.
	if _, err := NewReader(bytes.NewReader([]byte("XXXX000000000000"))); !errors.Is(err, ErrBadFormat) {
		t.Errorf("bad magic: err = %v", err)
	}
	// Short header.
	if _, err := NewReader(bytes.NewReader([]byte("HH"))); !errors.Is(err, ErrBadFormat) {
		t.Errorf("short header: err = %v", err)
	}
	// Bad version.
	hdr := append([]byte(formatMagic), 0xff, 0xff, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0)
	if _, err := NewReader(bytes.NewReader(hdr)); !errors.Is(err, ErrBadFormat) {
		t.Errorf("bad version: err = %v", err)
	}
	// Truncated record.
	var buf bytes.Buffer
	w, _ := NewWriter(&buf)
	p := Packet{Ts: 1}
	w.Write(&p)
	w.Close()
	trunc := buf.Bytes()[:headerSize+5]
	r, err := NewReader(bytes.NewReader(trunc))
	if err != nil {
		t.Fatal(err)
	}
	var out Packet
	if err := r.Next(&out); !errors.Is(err, ErrBadFormat) {
		t.Errorf("truncated record: err = %v", err)
	}
}

// v1TraceBytes hand-assembles a legacy version-1 (IPv4-only, 26-byte
// record) trace stream.
func v1TraceBytes(pkts []Packet) []byte {
	buf := make([]byte, headerSize, headerSize+recordSizeV1*len(pkts))
	copy(buf[:4], formatMagic)
	binary.LittleEndian.PutUint16(buf[4:6], formatVersionV1)
	binary.LittleEndian.PutUint64(buf[8:16], uint64(len(pkts)))
	for i := range pkts {
		var rec [recordSizeV1]byte
		binary.LittleEndian.PutUint64(rec[0:8], uint64(pkts[i].Ts))
		binary.LittleEndian.PutUint32(rec[8:12], pkts[i].Src.V4())
		binary.LittleEndian.PutUint32(rec[12:16], pkts[i].Dst.V4())
		binary.LittleEndian.PutUint16(rec[16:18], pkts[i].SrcPort)
		binary.LittleEndian.PutUint16(rec[18:20], pkts[i].DstPort)
		rec[20] = pkts[i].Proto
		binary.LittleEndian.PutUint32(rec[22:26], pkts[i].Size)
		buf = append(buf, rec[:]...)
	}
	return buf
}

func TestFormatReadsLegacyV1(t *testing.T) {
	want := []Packet{
		{Ts: 5, Src: addr.From4(10, 1, 2, 3), Dst: addr.From4(192, 0, 2, 9), SrcPort: 80, DstPort: 443, Proto: ProtoTCP, Size: 1500},
		{Ts: 9, Src: addr.From4(203, 0, 113, 1), Dst: addr.From4(10, 0, 0, 1), Proto: ProtoUDP, Size: 40},
	}
	r, err := NewReader(bytes.NewReader(v1TraceBytes(want)))
	if err != nil {
		t.Fatal(err)
	}
	if r.Version() != 1 || r.DeclaredCount() != 2 {
		t.Fatalf("version=%d count=%d", r.Version(), r.DeclaredCount())
	}
	got, err := Collect(r, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("v1 decode mismatch:\n got %+v\nwant %+v", got, want)
	}
	for _, p := range got {
		if !p.Src.Is4() || !p.Dst.Is4() {
			t.Fatal("v1 addresses must surface IPv4-mapped")
		}
	}
}

func TestStats(t *testing.T) {
	pkts := []Packet{
		{Ts: 0, Src: addr.From4Uint32(1), Dst: addr.From4Uint32(10), Proto: ProtoTCP, Size: 100},
		{Ts: 1e9, Src: addr.From4Uint32(1), Dst: addr.From4Uint32(11), Proto: ProtoUDP, Size: 200},
		{Ts: 2e9, Src: addr.MustParseAddr("2001:db8::1"), Dst: addr.From4Uint32(10), Proto: ProtoTCP, Size: 300},
	}
	s, err := ComputeStats(NewSliceSource(pkts))
	if err != nil {
		t.Fatal(err)
	}
	if s.Packets != 3 || s.Bytes != 600 {
		t.Errorf("packets=%d bytes=%d", s.Packets, s.Bytes)
	}
	if s.DistinctSrc != 2 || s.DistinctDst != 2 {
		t.Errorf("srcs=%d dsts=%d", s.DistinctSrc, s.DistinctDst)
	}
	if s.Duration().Seconds() != 2 {
		t.Errorf("duration=%v", s.Duration())
	}
	if s.PacketRate() != 1.5 {
		t.Errorf("pps=%v", s.PacketRate())
	}
	if s.BitRate() != 2400 {
		t.Errorf("bps=%v", s.BitRate())
	}
	if s.ProtoPackets[ProtoTCP] != 2 || s.ProtoPackets[ProtoUDP] != 1 {
		t.Errorf("proto map %v", s.ProtoPackets)
	}
	if s.MinSize != 100 || s.MaxSize != 300 {
		t.Errorf("sizes [%d,%d]", s.MinSize, s.MaxSize)
	}
	if s.V4Packets != 2 || s.V6Packets != 1 {
		t.Errorf("family split v4=%d v6=%d, want 2/1", s.V4Packets, s.V6Packets)
	}
	if s.String() == "" {
		t.Error("String should be non-empty")
	}
}

func TestStatsEmpty(t *testing.T) {
	s, err := ComputeStats(NewSliceSource(nil))
	if err != nil {
		t.Fatal(err)
	}
	if s.Packets != 0 || s.Duration() != 0 || s.PacketRate() != 0 || s.BitRate() != 0 || s.MinSize != 0 {
		t.Errorf("empty stats not zeroed: %+v", s)
	}
}

func BenchmarkWriterThroughput(b *testing.B) {
	p := Packet{Ts: 1, Src: addr.From4Uint32(2), Dst: addr.From4Uint32(3), Size: 1500}
	w, _ := NewWriter(io.Discard)
	b.SetBytes(recordSize)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		p.Ts = int64(i)
		if err := w.Write(&p); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkReaderThroughput(b *testing.B) {
	pkts := mkPackets(100000, 42)
	var buf bytes.Buffer
	w, _ := NewWriter(&buf)
	for i := range pkts {
		w.Write(&pkts[i])
	}
	w.Close()
	data := buf.Bytes()
	b.SetBytes(recordSize)
	b.ReportAllocs()
	b.ResetTimer()
	var p Packet
	for i := 0; i < b.N; {
		r, _ := NewReader(bytes.NewReader(data))
		for ; i < b.N; i++ {
			if err := r.Next(&p); err != nil {
				break
			}
		}
	}
}
