package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"

	"hiddenhhh/internal/ipv4"
)

// Binary trace format.
//
// A trace file is a 16-byte header followed by fixed-width little-endian
// records:
//
//	header:  magic "HHHT" | u16 version | u16 reserved | u64 packet count
//	                                                     (0 if unknown)
//	record:  i64 ts | u32 src | u32 dst | u16 sport | u16 dport |
//	         u8 proto | u8 pad | u32 size            (26 bytes)
//
// The fixed layout keeps readers allocation-free and makes record N
// seekable at offset 16 + 26*N.

const (
	formatMagic   = "HHHT"
	formatVersion = 1
	headerSize    = 16
	recordSize    = 26
)

// ErrBadFormat reports a malformed trace file.
var ErrBadFormat = errors.New("trace: bad file format")

// Writer streams packets into the binary trace format. Close flushes
// buffers and backpatches the packet count when the underlying stream is
// seekable.
type Writer struct {
	w     *bufio.Writer
	raw   io.Writer
	count uint64
	buf   [recordSize]byte
}

// NewWriter writes a trace header to w and returns a Writer.
func NewWriter(w io.Writer) (*Writer, error) {
	tw := &Writer{w: bufio.NewWriterSize(w, 1<<16), raw: w}
	var hdr [headerSize]byte
	copy(hdr[:4], formatMagic)
	binary.LittleEndian.PutUint16(hdr[4:6], formatVersion)
	binary.LittleEndian.PutUint64(hdr[8:16], 0)
	if _, err := tw.w.Write(hdr[:]); err != nil {
		return nil, fmt.Errorf("trace: writing header: %w", err)
	}
	return tw, nil
}

// Write implements Sink.
func (tw *Writer) Write(p *Packet) error {
	b := tw.buf[:]
	binary.LittleEndian.PutUint64(b[0:8], uint64(p.Ts))
	binary.LittleEndian.PutUint32(b[8:12], uint32(p.Src))
	binary.LittleEndian.PutUint32(b[12:16], uint32(p.Dst))
	binary.LittleEndian.PutUint16(b[16:18], p.SrcPort)
	binary.LittleEndian.PutUint16(b[18:20], p.DstPort)
	b[20] = p.Proto
	b[21] = 0
	binary.LittleEndian.PutUint32(b[22:26], p.Size)
	if _, err := tw.w.Write(b); err != nil {
		return fmt.Errorf("trace: writing record: %w", err)
	}
	tw.count++
	return nil
}

// Count returns the number of records written so far.
func (tw *Writer) Count() uint64 { return tw.count }

// Close flushes the writer and, if the underlying stream supports seeking,
// backpatches the packet count into the header.
func (tw *Writer) Close() error {
	if err := tw.w.Flush(); err != nil {
		return fmt.Errorf("trace: flush: %w", err)
	}
	if s, ok := tw.raw.(io.WriteSeeker); ok {
		if _, err := s.Seek(8, io.SeekStart); err != nil {
			return fmt.Errorf("trace: seek for count backpatch: %w", err)
		}
		var cnt [8]byte
		binary.LittleEndian.PutUint64(cnt[:], tw.count)
		if _, err := s.Write(cnt[:]); err != nil {
			return fmt.Errorf("trace: count backpatch: %w", err)
		}
		if _, err := s.Seek(0, io.SeekEnd); err != nil {
			return fmt.Errorf("trace: seek to end: %w", err)
		}
	}
	return nil
}

// Reader streams packets from the binary trace format. It implements
// Source.
type Reader struct {
	r     *bufio.Reader
	count uint64 // declared in header; 0 means unknown
	read  uint64
	buf   [recordSize]byte
}

// NewReader validates the header of r and returns a Reader.
func NewReader(r io.Reader) (*Reader, error) {
	tr := &Reader{r: bufio.NewReaderSize(r, 1<<16)}
	var hdr [headerSize]byte
	if _, err := io.ReadFull(tr.r, hdr[:]); err != nil {
		return nil, fmt.Errorf("%w: short header: %v", ErrBadFormat, err)
	}
	if string(hdr[:4]) != formatMagic {
		return nil, fmt.Errorf("%w: bad magic %q", ErrBadFormat, hdr[:4])
	}
	if v := binary.LittleEndian.Uint16(hdr[4:6]); v != formatVersion {
		return nil, fmt.Errorf("%w: unsupported version %d", ErrBadFormat, v)
	}
	tr.count = binary.LittleEndian.Uint64(hdr[8:16])
	return tr, nil
}

// DeclaredCount returns the packet count recorded in the header, or 0 when
// the producer could not backpatch it (non-seekable output).
func (tr *Reader) DeclaredCount() uint64 { return tr.count }

// Next implements Source.
func (tr *Reader) Next(p *Packet) error {
	b := tr.buf[:]
	if _, err := io.ReadFull(tr.r, b); err != nil {
		if errors.Is(err, io.EOF) {
			return io.EOF
		}
		return fmt.Errorf("%w: truncated record %d: %v", ErrBadFormat, tr.read, err)
	}
	p.Ts = int64(binary.LittleEndian.Uint64(b[0:8]))
	p.Src = ipv4.Addr(binary.LittleEndian.Uint32(b[8:12]))
	p.Dst = ipv4.Addr(binary.LittleEndian.Uint32(b[12:16]))
	p.SrcPort = binary.LittleEndian.Uint16(b[16:18])
	p.DstPort = binary.LittleEndian.Uint16(b[18:20])
	p.Proto = b[20]
	p.Size = binary.LittleEndian.Uint32(b[22:26])
	tr.read++
	return nil
}

// WriteFile stores pkts at path in the binary trace format.
func WriteFile(path string, pkts []Packet) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("trace: %w", err)
	}
	tw, err := NewWriter(f)
	if err != nil {
		f.Close()
		return err
	}
	for i := range pkts {
		if err := tw.Write(&pkts[i]); err != nil {
			f.Close()
			return err
		}
	}
	if err := tw.Close(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// maxCountHint caps the allocation hint taken from a file's declared
// packet count: the header field is attacker-controlled input, and a
// corrupt or hostile file declaring 2^60 records must not translate into
// a 2^60-capacity allocation before a single record is read. Reads
// beyond the hint just grow the slice normally.
const maxCountHint = 1 << 20

// ReadFile loads the whole trace at path into memory.
func ReadFile(path string) ([]Packet, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("trace: %w", err)
	}
	defer f.Close()
	tr, err := NewReader(f)
	if err != nil {
		return nil, err
	}
	hint := tr.DeclaredCount()
	if hint > maxCountHint {
		hint = maxCountHint
	}
	return Collect(tr, int(hint))
}

// OpenFile opens the trace at path for streaming. The caller owns closing
// the returned closer once done with the Source.
func OpenFile(path string) (*Reader, io.Closer, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, fmt.Errorf("trace: %w", err)
	}
	tr, err := NewReader(f)
	if err != nil {
		f.Close()
		return nil, nil, err
	}
	return tr, f, nil
}
