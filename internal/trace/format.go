package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"

	"hiddenhhh/internal/addr"
)

// Binary trace format.
//
// A trace file is a 16-byte header followed by fixed-width records:
//
//	header:     magic "HHHT" | u16 version | u16 reserved | u64 packet
//	            count (0 if unknown)
//	v2 record:  i64 ts | 16B src | 16B dst | u16 sport | u16 dport |
//	            u8 proto | u8 pad | u32 size             (50 bytes)
//	v1 record:  i64 ts | u32 src | u32 dst | u16 sport | u16 dport |
//	            u8 proto | u8 pad | u32 size             (26 bytes)
//
// Scalar fields are little-endian; the version-2 addresses are the
// 16-byte big-endian (network order) form of internal/addr, so records
// are greppable against tcpdump-style output. Version 1 is the legacy
// IPv4-only layout; readers accept it (addresses surface IPv4-mapped)
// and writers always produce version 2. The fixed layout keeps readers
// allocation-free and makes record N seekable at offset 16 + recordSize*N.

const (
	formatMagic     = "HHHT"
	formatVersion   = 2
	formatVersionV1 = 1
	headerSize      = 16
	recordSize      = 50
	recordSizeV1    = 26
)

// ErrBadFormat reports a malformed trace file.
var ErrBadFormat = errors.New("trace: bad file format")

// Writer streams packets into the binary trace format (always the current
// version 2). Close flushes buffers and backpatches the packet count when
// the underlying stream is seekable.
type Writer struct {
	w     *bufio.Writer
	raw   io.Writer
	count uint64
	buf   [recordSize]byte
}

// NewWriter writes a trace header to w and returns a Writer.
func NewWriter(w io.Writer) (*Writer, error) {
	tw := &Writer{w: bufio.NewWriterSize(w, 1<<16), raw: w}
	var hdr [headerSize]byte
	copy(hdr[:4], formatMagic)
	binary.LittleEndian.PutUint16(hdr[4:6], formatVersion)
	binary.LittleEndian.PutUint64(hdr[8:16], 0)
	if _, err := tw.w.Write(hdr[:]); err != nil {
		return nil, fmt.Errorf("trace: writing header: %w", err)
	}
	return tw, nil
}

// Write implements Sink.
func (tw *Writer) Write(p *Packet) error {
	b := tw.buf[:]
	binary.LittleEndian.PutUint64(b[0:8], uint64(p.Ts))
	src, dst := p.Src.As16(), p.Dst.As16()
	copy(b[8:24], src[:])
	copy(b[24:40], dst[:])
	binary.LittleEndian.PutUint16(b[40:42], p.SrcPort)
	binary.LittleEndian.PutUint16(b[42:44], p.DstPort)
	b[44] = p.Proto
	b[45] = 0
	binary.LittleEndian.PutUint32(b[46:50], p.Size)
	if _, err := tw.w.Write(b); err != nil {
		return fmt.Errorf("trace: writing record: %w", err)
	}
	tw.count++
	return nil
}

// Count returns the number of records written so far.
func (tw *Writer) Count() uint64 { return tw.count }

// Close flushes the writer and, if the underlying stream supports seeking,
// backpatches the packet count into the header.
func (tw *Writer) Close() error {
	if err := tw.w.Flush(); err != nil {
		return fmt.Errorf("trace: flush: %w", err)
	}
	if s, ok := tw.raw.(io.WriteSeeker); ok {
		if _, err := s.Seek(8, io.SeekStart); err != nil {
			return fmt.Errorf("trace: seek for count backpatch: %w", err)
		}
		var cnt [8]byte
		binary.LittleEndian.PutUint64(cnt[:], tw.count)
		if _, err := s.Write(cnt[:]); err != nil {
			return fmt.Errorf("trace: count backpatch: %w", err)
		}
		if _, err := s.Seek(0, io.SeekEnd); err != nil {
			return fmt.Errorf("trace: seek to end: %w", err)
		}
	}
	return nil
}

// Reader streams packets from the binary trace format, either version. It
// implements Source.
type Reader struct {
	r       *bufio.Reader
	version uint16
	count   uint64 // declared in header; 0 means unknown
	read    uint64
	buf     [recordSize]byte
}

// NewReader validates the header of r and returns a Reader.
func NewReader(r io.Reader) (*Reader, error) {
	tr := &Reader{r: bufio.NewReaderSize(r, 1<<16)}
	var hdr [headerSize]byte
	if _, err := io.ReadFull(tr.r, hdr[:]); err != nil {
		return nil, fmt.Errorf("%w: short header: %v", ErrBadFormat, err)
	}
	if string(hdr[:4]) != formatMagic {
		return nil, fmt.Errorf("%w: bad magic %q", ErrBadFormat, hdr[:4])
	}
	tr.version = binary.LittleEndian.Uint16(hdr[4:6])
	if tr.version != formatVersion && tr.version != formatVersionV1 {
		return nil, fmt.Errorf("%w: unsupported version %d", ErrBadFormat, tr.version)
	}
	tr.count = binary.LittleEndian.Uint64(hdr[8:16])
	return tr, nil
}

// Version returns the format version declared by the file header (1 or 2).
func (tr *Reader) Version() uint16 { return tr.version }

// DeclaredCount returns the packet count recorded in the header, or 0 when
// the producer could not backpatch it (non-seekable output).
func (tr *Reader) DeclaredCount() uint64 { return tr.count }

// Next implements Source.
func (tr *Reader) Next(p *Packet) error {
	if tr.version == formatVersionV1 {
		return tr.nextV1(p)
	}
	b := tr.buf[:recordSize]
	if _, err := io.ReadFull(tr.r, b); err != nil {
		if errors.Is(err, io.EOF) {
			return io.EOF
		}
		return fmt.Errorf("%w: truncated record %d: %v", ErrBadFormat, tr.read, err)
	}
	p.Ts = int64(binary.LittleEndian.Uint64(b[0:8]))
	p.Src = addr.From16([16]byte(b[8:24]))
	p.Dst = addr.From16([16]byte(b[24:40]))
	p.SrcPort = binary.LittleEndian.Uint16(b[40:42])
	p.DstPort = binary.LittleEndian.Uint16(b[42:44])
	p.Proto = b[44]
	p.Size = binary.LittleEndian.Uint32(b[46:50])
	tr.read++
	return nil
}

// nextV1 decodes one legacy 26-byte IPv4 record; addresses surface in
// their IPv4-mapped form.
func (tr *Reader) nextV1(p *Packet) error {
	b := tr.buf[:recordSizeV1]
	if _, err := io.ReadFull(tr.r, b); err != nil {
		if errors.Is(err, io.EOF) {
			return io.EOF
		}
		return fmt.Errorf("%w: truncated record %d: %v", ErrBadFormat, tr.read, err)
	}
	p.Ts = int64(binary.LittleEndian.Uint64(b[0:8]))
	p.Src = addr.From4Uint32(binary.LittleEndian.Uint32(b[8:12]))
	p.Dst = addr.From4Uint32(binary.LittleEndian.Uint32(b[12:16]))
	p.SrcPort = binary.LittleEndian.Uint16(b[16:18])
	p.DstPort = binary.LittleEndian.Uint16(b[18:20])
	p.Proto = b[20]
	p.Size = binary.LittleEndian.Uint32(b[22:26])
	tr.read++
	return nil
}

// WriteFile stores pkts at path in the binary trace format.
func WriteFile(path string, pkts []Packet) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("trace: %w", err)
	}
	tw, err := NewWriter(f)
	if err != nil {
		f.Close()
		return err
	}
	for i := range pkts {
		if err := tw.Write(&pkts[i]); err != nil {
			f.Close()
			return err
		}
	}
	if err := tw.Close(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// maxCountHint caps the allocation hint taken from a file's declared
// packet count: the header field is attacker-controlled input, and a
// corrupt or hostile file declaring 2^60 records must not translate into
// a 2^60-capacity allocation before a single record is read. Reads
// beyond the hint just grow the slice normally.
const maxCountHint = 1 << 20

// ReadFile loads the whole trace at path into memory.
func ReadFile(path string) ([]Packet, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("trace: %w", err)
	}
	defer f.Close()
	tr, err := NewReader(f)
	if err != nil {
		return nil, err
	}
	hint := tr.DeclaredCount()
	if hint > maxCountHint {
		hint = maxCountHint
	}
	return Collect(tr, int(hint))
}

// OpenFile opens the trace at path for streaming. The caller owns closing
// the returned closer once done with the Source.
func OpenFile(path string) (*Reader, io.Closer, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, fmt.Errorf("trace: %w", err)
	}
	tr, err := NewReader(f)
	if err != nil {
		f.Close()
		return nil, nil, err
	}
	return tr, f, nil
}
