package trace

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"os"
	"testing"

	"hiddenhhh/internal/addr"
)

// validTraceBytes serialises pkts through the production Writer.
func validTraceBytes(t testing.TB, pkts []Packet) []byte {
	t.Helper()
	var buf bytes.Buffer
	tw, err := NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for i := range pkts {
		if err := tw.Write(&pkts[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := tw.Close(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// FuzzTraceReader feeds arbitrary bytes to the binary trace parser: it
// must either reject the stream or decode records, never panic, and
// never allocate proportionally to an attacker-declared header count.
// The corpus seeds both record layouts — current v2 (dual-stack 50-byte
// records) and legacy v1 (IPv4 26-byte records) — plus the usual header
// corruptions.
func FuzzTraceReader(f *testing.F) {
	// Seed corpus: a valid dual-stack 3-packet trace, an empty valid
	// trace, a truncated header, a bad magic, an unsupported version, a
	// huge declared count over a single record, a truncated record, and
	// a legacy v1 stream.
	valid := validTraceBytes(f, []Packet{
		{Ts: 1, Src: addr.From4(10, 0, 0, 1), Dst: addr.From4(10, 0, 0, 2), SrcPort: 80, DstPort: 443, Proto: ProtoTCP, Size: 1500},
		{Ts: 2, Src: addr.MustParseAddr("2001:db8::1"), Dst: addr.MustParseAddr("2400:cb00::2"), SrcPort: 1234, DstPort: 53, Proto: ProtoUDP, Size: 80},
		{Ts: 3, Src: addr.From4(255, 255, 255, 255), Dst: addr.MustParseAddr("ff02::1"), Proto: ProtoICMP, Size: 0},
	})
	f.Add(valid)
	f.Add(validTraceBytes(f, nil))
	f.Add(valid[:10])
	bad := bytes.Clone(valid)
	copy(bad, "NOPE")
	f.Add(bad)
	badVer := bytes.Clone(valid)
	binary.LittleEndian.PutUint16(badVer[4:6], 99)
	f.Add(badVer)
	hugeCount := bytes.Clone(valid)
	binary.LittleEndian.PutUint64(hugeCount[8:16], 1<<60)
	f.Add(hugeCount)
	f.Add(valid[:len(valid)-5])
	f.Add(v1TraceBytes([]Packet{
		{Ts: 7, Src: addr.From4(198, 51, 100, 7), Dst: addr.From4(10, 9, 8, 7), SrcPort: 443, DstPort: 50000, Proto: ProtoTCP, Size: 64},
	}))
	// A v1 header over v2-sized records: the reader must treat the tail
	// as v1 records or reject, never crash.
	mixed := bytes.Clone(valid)
	binary.LittleEndian.PutUint16(mixed[4:6], 1)
	f.Add(mixed)

	f.Fuzz(func(t *testing.T, data []byte) {
		tr, err := NewReader(bytes.NewReader(data))
		if err != nil {
			if !errors.Is(err, ErrBadFormat) {
				t.Fatalf("NewReader error outside ErrBadFormat: %v", err)
			}
			return
		}
		var p Packet
		for {
			err := tr.Next(&p)
			if errors.Is(err, io.EOF) {
				return
			}
			if err != nil {
				if !errors.Is(err, ErrBadFormat) {
					t.Fatalf("Next error outside ErrBadFormat/EOF: %v", err)
				}
				return
			}
		}
	})
}

// FuzzTraceRoundTrip drives the writer/reader pair with arbitrary field
// values across the full 128-bit address space: every packet must
// survive the 50-byte record encoding exactly.
func FuzzTraceRoundTrip(f *testing.F) {
	f.Add(int64(0), uint64(0), uint64(0), uint64(0), uint64(0), uint16(0), uint16(0), uint8(0), uint32(0))
	f.Add(int64(1e18), uint64(0), uint64(0xffff_ffffffff), uint64(0), uint64(0xffff_00000001), uint16(65535), uint16(53), uint8(ProtoUDP), uint32(0xffffffff))
	f.Add(int64(-5), uint64(0x2001_0db8_0000_0000), uint64(1), uint64(0x2400_cb00_0000_0000), uint64(2), uint16(1), uint16(2), uint8(255), uint32(40))
	f.Fuzz(func(t *testing.T, ts int64, srcHi, srcLo, dstHi, dstLo uint64, sport, dport uint16, proto uint8, size uint32) {
		in := Packet{
			Ts: ts, Src: addr.FromParts(srcHi, srcLo), Dst: addr.FromParts(dstHi, dstLo),
			SrcPort: sport, DstPort: dport, Proto: proto, Size: size,
		}
		data := validTraceBytes(t, []Packet{in})
		tr, err := NewReader(bytes.NewReader(data))
		if err != nil {
			t.Fatal(err)
		}
		// Non-seekable output: the count backpatch is skipped, so the
		// header legitimately declares 0 (meaning unknown).
		if got := tr.DeclaredCount(); got != 0 {
			t.Fatalf("declared count %d, want 0 (unknown) for non-seekable writer", got)
		}
		var out Packet
		if err := tr.Next(&out); err != nil {
			t.Fatal(err)
		}
		if out != in {
			t.Fatalf("round trip: got %+v, want %+v", out, in)
		}
		if err := tr.Next(&out); !errors.Is(err, io.EOF) {
			t.Fatalf("expected EOF after 1 record, got %v", err)
		}
	})
}

// TestReadFileHugeDeclaredCount pins the allocation cap: a file whose
// header declares 2^60 records but carries one must load that record
// without attempting a header-sized allocation.
func TestReadFileHugeDeclaredCount(t *testing.T) {
	data := validTraceBytes(t, []Packet{{Ts: 42, Src: addr.From4Uint32(1), Size: 99}})
	binary.LittleEndian.PutUint64(data[8:16], 1<<60)
	path := t.TempDir() + "/huge.trace"
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	pkts, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(pkts) != 1 || pkts[0].Ts != 42 {
		t.Fatalf("got %v", pkts)
	}
}
