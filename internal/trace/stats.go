package trace

import (
	"fmt"
	"time"

	"hiddenhhh/internal/addr"
)

// Stats summarises a trace: the sanity numbers printed by cmd/tracegen and
// checked by the experiment preflight.
type Stats struct {
	// Packets is the record count; Bytes the summed wire lengths.
	Packets int
	Bytes   int64
	// FirstTs and LastTs are the first and last record timestamps (ns).
	FirstTs int64
	LastTs  int64
	// DistinctSrc and DistinctDst count distinct addresses seen on each
	// side, both families combined.
	DistinctSrc int
	DistinctDst int
	// V4Packets and V6Packets split the record count by source address
	// family — the dual-stack sanity number.
	V4Packets int
	V6Packets int
	// ProtoPackets counts records per IP protocol number.
	ProtoPackets map[uint8]int
	// MinSize and MaxSize bound the observed wire lengths.
	MinSize uint32
	MaxSize uint32
}

// Duration is the time span covered by the trace.
func (s Stats) Duration() time.Duration {
	if s.Packets == 0 {
		return 0
	}
	return time.Duration(s.LastTs - s.FirstTs)
}

// PacketRate is the average packets/second over the trace span.
func (s Stats) PacketRate() float64 {
	d := s.Duration().Seconds()
	if d <= 0 {
		return 0
	}
	return float64(s.Packets) / d
}

// BitRate is the average bits/second over the trace span.
func (s Stats) BitRate() float64 {
	d := s.Duration().Seconds()
	if d <= 0 {
		return 0
	}
	return float64(s.Bytes) * 8 / d
}

// String renders a one-paragraph human-readable summary.
func (s Stats) String() string {
	return fmt.Sprintf(
		"packets=%d (v4=%d v6=%d) bytes=%d duration=%v pps=%.0f bps=%.3g srcs=%d dsts=%d sizes=[%d,%d]",
		s.Packets, s.V4Packets, s.V6Packets, s.Bytes,
		s.Duration().Round(time.Millisecond),
		s.PacketRate(), s.BitRate(), s.DistinctSrc, s.DistinctDst,
		s.MinSize, s.MaxSize)
}

// ComputeStats makes a full pass over src and accumulates Stats.
func ComputeStats(src Source) (Stats, error) {
	s := Stats{ProtoPackets: map[uint8]int{}, MinSize: ^uint32(0)}
	srcs := map[addr.Addr]struct{}{}
	dsts := map[addr.Addr]struct{}{}
	first := true
	err := ForEach(src, func(p *Packet) error {
		if first {
			s.FirstTs = p.Ts
			first = false
		}
		s.LastTs = p.Ts
		s.Packets++
		if p.Src.Is4() {
			s.V4Packets++
		} else {
			s.V6Packets++
		}
		s.Bytes += int64(p.Size)
		s.ProtoPackets[p.Proto]++
		srcs[p.Src] = struct{}{}
		dsts[p.Dst] = struct{}{}
		if p.Size < s.MinSize {
			s.MinSize = p.Size
		}
		if p.Size > s.MaxSize {
			s.MaxSize = p.Size
		}
		return nil
	})
	if s.Packets == 0 {
		s.MinSize = 0
	}
	s.DistinctSrc = len(srcs)
	s.DistinctDst = len(dsts)
	return s, err
}
