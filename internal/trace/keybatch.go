package trace

import "hiddenhhh/internal/addr"

// KeyBatch is the columnar (structure-of-arrays) batch the ingest data
// path hands between the producer, the pipeline rings, and the engine
// fast paths. Instead of shipping 48-byte Packet structs and re-deriving
// hierarchy sketch keys inside every engine, the producer packs each
// family-matching packet's leaf key exactly once with addr.Hierarchy.Key
// and the downstream consumers derive every coarser level by a single
// AND with the hierarchy's per-level KeyMask — masks nest, so
// leafKey & KeyMask(l) equals Hierarchy.Key(a, l) for every level l.
//
// The three columns are parallel: Keys[i], Sizes[i] and Ts[i] describe
// the i-th packet of the batch. Only family-matching packets are packed
// (AppendPackets applies the hierarchy's ingest family filter), so
// consumers never re-check Match. Timestamps stay non-decreasing when the
// input stream is, which the sliding-window engines rely on for frame
// chunking.
//
// A KeyBatch is not safe for concurrent use; the pipeline recycles them
// through per-shard freelists so the steady state allocates nothing.
type KeyBatch struct {
	// Keys holds the packed leaf-level hierarchy keys.
	Keys []uint64
	// Sizes holds the wire lengths in bytes, parallel to Keys.
	Sizes []uint32
	// Ts holds the packet timestamps in trace-epoch nanoseconds,
	// parallel to Keys.
	Ts []int64
}

// NewKeyBatch returns an empty batch with capacity for n packets in
// every column.
func NewKeyBatch(n int) *KeyBatch {
	return &KeyBatch{
		Keys:  make([]uint64, 0, n),
		Sizes: make([]uint32, 0, n),
		Ts:    make([]int64, 0, n),
	}
}

// Len returns the number of packets in the batch.
func (b *KeyBatch) Len() int { return len(b.Keys) }

// Reset truncates all columns to length zero, keeping their capacity for
// reuse.
func (b *KeyBatch) Reset() {
	b.Keys = b.Keys[:0]
	b.Sizes = b.Sizes[:0]
	b.Ts = b.Ts[:0]
}

// Append adds one packed packet to the batch.
func (b *KeyBatch) Append(key uint64, size uint32, ts int64) {
	b.Keys = append(b.Keys, key)
	b.Sizes = append(b.Sizes, size)
	b.Ts = append(b.Ts, ts)
}

// Bytes sums the Sizes column.
func (b *KeyBatch) Bytes() int64 {
	var n int64
	for _, s := range b.Sizes {
		n += int64(s)
	}
	return n
}

// AppendPackets packs every packet of pkts that matches h's address
// family onto the batch: leaf key via h.Key(Src, 0), plus the Size and
// Ts columns. Non-matching packets are skipped — this is the single
// place the ingest family filter runs on the columnar path. It returns
// the number of packets packed.
func (b *KeyBatch) AppendPackets(h addr.Hierarchy, pkts []Packet) int {
	n := len(b.Keys)
	for i := range pkts {
		p := &pkts[i]
		if !h.Match(p.Src) {
			continue
		}
		b.Keys = append(b.Keys, h.Key(p.Src, 0))
		b.Sizes = append(b.Sizes, p.Size)
		b.Ts = append(b.Ts, p.Ts)
	}
	return len(b.Keys) - n
}
