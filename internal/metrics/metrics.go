// Package metrics provides the evaluation machinery shared by the
// experiments: set-accuracy scores against ground truth, error statistics
// for estimates, empirical distributions (CDFs, percentiles), and plain
// text table rendering for reports.
package metrics

import (
	"math"
	"sort"

	"hiddenhhh/internal/hhh"
)

// Confusion summarises a detector output against a ground-truth HHH set.
type Confusion struct {
	TruePositives  int
	FalsePositives int
	FalseNegatives int
}

// Compare scores detected against truth by prefix membership.
func Compare(truth, detected hhh.Set) Confusion {
	var c Confusion
	for p := range detected {
		if truth.Contains(p) {
			c.TruePositives++
		} else {
			c.FalsePositives++
		}
	}
	for p := range truth {
		if !detected.Contains(p) {
			c.FalseNegatives++
		}
	}
	return c
}

// Precision is TP/(TP+FP); 1 when nothing was detected (vacuously
// precise).
func (c Confusion) Precision() float64 {
	d := c.TruePositives + c.FalsePositives
	if d == 0 {
		return 1
	}
	return float64(c.TruePositives) / float64(d)
}

// Recall is TP/(TP+FN); 1 when there was nothing to find.
func (c Confusion) Recall() float64 {
	d := c.TruePositives + c.FalseNegatives
	if d == 0 {
		return 1
	}
	return float64(c.TruePositives) / float64(d)
}

// F1 is the harmonic mean of precision and recall.
func (c Confusion) F1() float64 {
	p, r := c.Precision(), c.Recall()
	if p+r == 0 {
		return 0
	}
	return 2 * p * r / (p + r)
}

// Add accumulates another confusion (e.g. across windows).
func (c *Confusion) Add(o Confusion) {
	c.TruePositives += o.TruePositives
	c.FalsePositives += o.FalsePositives
	c.FalseNegatives += o.FalseNegatives
}

// EstimateErrors computes relative and absolute error statistics of
// detected item counts against ground-truth counts, over the true-positive
// prefixes (the standard ARE/AAE of the sketching literature).
func EstimateErrors(truth, detected hhh.Set) (are, aae float64) {
	n := 0
	for p, it := range detected {
		tr, ok := truth[p]
		if !ok || tr.Count == 0 {
			continue
		}
		diff := math.Abs(float64(it.Count - tr.Count))
		are += diff / float64(tr.Count)
		aae += diff
		n++
	}
	if n == 0 {
		return 0, 0
	}
	return are / float64(n), aae / float64(n)
}

// Dist is an accumulating empirical distribution.
type Dist struct {
	xs     []float64
	sorted bool
}

// Observe appends a sample.
func (d *Dist) Observe(x float64) {
	d.xs = append(d.xs, x)
	d.sorted = false
}

// N returns the sample count.
func (d *Dist) N() int { return len(d.xs) }

func (d *Dist) sortIfNeeded() {
	if !d.sorted {
		sort.Float64s(d.xs)
		d.sorted = true
	}
}

// Quantile returns the q-th quantile (0 <= q <= 1) by linear
// interpolation. NaN on an empty distribution.
func (d *Dist) Quantile(q float64) float64 {
	if len(d.xs) == 0 {
		return math.NaN()
	}
	d.sortIfNeeded()
	if q <= 0 {
		return d.xs[0]
	}
	if q >= 1 {
		return d.xs[len(d.xs)-1]
	}
	pos := q * float64(len(d.xs)-1)
	lo := int(pos)
	frac := pos - float64(lo)
	if lo+1 >= len(d.xs) {
		return d.xs[lo]
	}
	return d.xs[lo]*(1-frac) + d.xs[lo+1]*frac
}

// Mean returns the sample mean (NaN when empty).
func (d *Dist) Mean() float64 {
	if len(d.xs) == 0 {
		return math.NaN()
	}
	var s float64
	for _, x := range d.xs {
		s += x
	}
	return s / float64(len(d.xs))
}

// Min and Max return the extremes (NaN when empty).
func (d *Dist) Min() float64 { return d.Quantile(0) }

// Max returns the largest observed sample.
func (d *Dist) Max() float64 { return d.Quantile(1) }

// CDFAt returns the empirical P(X <= x).
func (d *Dist) CDFAt(x float64) float64 {
	if len(d.xs) == 0 {
		return math.NaN()
	}
	d.sortIfNeeded()
	// Count samples <= x by binary search.
	n := sort.SearchFloat64s(d.xs, math.Nextafter(x, math.Inf(1)))
	return float64(n) / float64(len(d.xs))
}

// FractionAtMost is an alias of CDFAt with a name matching how the paper
// phrases Fig 3 ("for at least 70% of the cases the similarity is below
// x").
func (d *Dist) FractionAtMost(x float64) float64 { return d.CDFAt(x) }

// Samples returns a sorted copy of the observations.
func (d *Dist) Samples() []float64 {
	d.sortIfNeeded()
	out := make([]float64, len(d.xs))
	copy(out, d.xs)
	return out
}
