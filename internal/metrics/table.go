package metrics

import (
	"fmt"
	"strings"
)

// Table renders aligned plain-text tables, the output format of every
// experiment binary (the repository's stand-in for the paper's figures).
type Table struct {
	header []string
	rows   [][]string
}

// NewTable builds a table with the given column headers.
func NewTable(header ...string) *Table {
	return &Table{header: header}
}

// AddRow appends a row; cells are formatted with %v.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.2f", v)
		case float32:
			row[i] = fmt.Sprintf("%.2f", v)
		default:
			row[i] = fmt.Sprint(c)
		}
	}
	t.rows = append(t.rows, row)
}

// String renders the table with column alignment and a header rule.
func (t *Table) String() string {
	cols := len(t.header)
	for _, r := range t.rows {
		if len(r) > cols {
			cols = len(r)
		}
	}
	widths := make([]int, cols)
	measure := func(r []string) {
		for i, c := range r {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	measure(t.header)
	for _, r := range t.rows {
		measure(r)
	}
	var b strings.Builder
	writeRow := func(r []string) {
		var line strings.Builder
		for i := 0; i < cols; i++ {
			cell := ""
			if i < len(r) {
				cell = r[i]
			}
			if i > 0 {
				line.WriteString("  ")
			}
			line.WriteString(cell)
			line.WriteString(strings.Repeat(" ", widths[i]-len(cell)))
		}
		b.WriteString(strings.TrimRight(line.String(), " "))
		b.WriteByte('\n')
	}
	if len(t.header) > 0 {
		writeRow(t.header)
		rule := make([]string, len(t.header))
		for i := range rule {
			rule[i] = strings.Repeat("-", widths[i])
		}
		writeRow(rule)
	}
	for _, r := range t.rows {
		writeRow(r)
	}
	return b.String()
}
