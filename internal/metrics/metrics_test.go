package metrics

import (
	"math"
	"math/rand"
	"sort"
	"strings"
	"testing"
	"testing/quick"

	"hiddenhhh/internal/addr"
	"hiddenhhh/internal/hhh"
)

func set(prefixes ...string) hhh.Set {
	s := hhh.NewSet()
	for _, p := range prefixes {
		s.Add(hhh.Item{Prefix: addr.MustParsePrefix(p), Count: 100})
	}
	return s
}

func TestCompare(t *testing.T) {
	truth := set("1.0.0.0/8", "2.0.0.0/8", "3.0.0.0/8")
	det := set("1.0.0.0/8", "2.0.0.0/8", "9.0.0.0/8")
	c := Compare(truth, det)
	if c.TruePositives != 2 || c.FalsePositives != 1 || c.FalseNegatives != 1 {
		t.Fatalf("confusion = %+v", c)
	}
	if math.Abs(c.Precision()-2.0/3) > 1e-12 {
		t.Errorf("precision = %v", c.Precision())
	}
	if math.Abs(c.Recall()-2.0/3) > 1e-12 {
		t.Errorf("recall = %v", c.Recall())
	}
	if math.Abs(c.F1()-2.0/3) > 1e-12 {
		t.Errorf("f1 = %v", c.F1())
	}
}

func TestCompareEdgeCases(t *testing.T) {
	empty := hhh.NewSet()
	c := Compare(empty, empty)
	if c.Precision() != 1 || c.Recall() != 1 {
		t.Error("empty vs empty should be vacuously perfect")
	}
	c = Compare(set("1.0.0.0/8"), empty)
	if c.Recall() != 0 || c.Precision() != 1 {
		t.Errorf("missed everything: %+v p=%v r=%v", c, c.Precision(), c.Recall())
	}
	if c.F1() != 0 {
		t.Errorf("f1 = %v", c.F1())
	}
	c = Compare(empty, set("1.0.0.0/8"))
	if c.Precision() != 0 || c.Recall() != 1 {
		t.Error("all false positives")
	}
}

func TestConfusionAdd(t *testing.T) {
	a := Confusion{1, 2, 3}
	a.Add(Confusion{10, 20, 30})
	if a != (Confusion{11, 22, 33}) {
		t.Errorf("Add = %+v", a)
	}
}

func TestEstimateErrors(t *testing.T) {
	truth := hhh.NewSet(
		hhh.Item{Prefix: addr.MustParsePrefix("1.0.0.0/8"), Count: 100},
		hhh.Item{Prefix: addr.MustParsePrefix("2.0.0.0/8"), Count: 200},
	)
	det := hhh.NewSet(
		hhh.Item{Prefix: addr.MustParsePrefix("1.0.0.0/8"), Count: 110}, // +10%
		hhh.Item{Prefix: addr.MustParsePrefix("2.0.0.0/8"), Count: 180}, // -10%
		hhh.Item{Prefix: addr.MustParsePrefix("9.0.0.0/8"), Count: 999}, // FP: ignored
	)
	are, aae := EstimateErrors(truth, det)
	if math.Abs(are-0.1) > 1e-12 {
		t.Errorf("ARE = %v, want 0.1", are)
	}
	if math.Abs(aae-15) > 1e-12 {
		t.Errorf("AAE = %v, want 15", aae)
	}
	if are2, aae2 := EstimateErrors(truth, hhh.NewSet()); are2 != 0 || aae2 != 0 {
		t.Error("empty detection should have zero errors")
	}
}

func TestDistQuantiles(t *testing.T) {
	var d Dist
	for i := 1; i <= 100; i++ {
		d.Observe(float64(i))
	}
	if d.N() != 100 {
		t.Fatal("N")
	}
	if d.Min() != 1 || d.Max() != 100 {
		t.Errorf("min/max = %v/%v", d.Min(), d.Max())
	}
	if q := d.Quantile(0.5); math.Abs(q-50.5) > 1e-9 {
		t.Errorf("median = %v", q)
	}
	if m := d.Mean(); math.Abs(m-50.5) > 1e-9 {
		t.Errorf("mean = %v", m)
	}
	if q := d.Quantile(-1); q != 1 {
		t.Errorf("clamped low quantile = %v", q)
	}
	if q := d.Quantile(2); q != 100 {
		t.Errorf("clamped high quantile = %v", q)
	}
}

func TestDistEmpty(t *testing.T) {
	var d Dist
	if !math.IsNaN(d.Quantile(0.5)) || !math.IsNaN(d.Mean()) || !math.IsNaN(d.CDFAt(1)) {
		t.Error("empty distribution should return NaN")
	}
}

func TestDistCDF(t *testing.T) {
	var d Dist
	for _, x := range []float64{1, 2, 2, 3, 10} {
		d.Observe(x)
	}
	cases := []struct {
		x    float64
		want float64
	}{
		{0.5, 0},
		{1, 0.2},
		{2, 0.6},
		{2.5, 0.6},
		{10, 1},
		{11, 1},
	}
	for _, c := range cases {
		if got := d.CDFAt(c.x); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("CDFAt(%v) = %v, want %v", c.x, got, c.want)
		}
	}
	if d.FractionAtMost(2) != d.CDFAt(2) {
		t.Error("FractionAtMost should alias CDFAt")
	}
}

func TestDistQuantileMonotoneProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	f := func(n uint8) bool {
		var d Dist
		for i := 0; i < int(n)+2; i++ {
			d.Observe(rng.NormFloat64() * 100)
		}
		prev := math.Inf(-1)
		for q := 0.0; q <= 1.0; q += 0.05 {
			v := d.Quantile(q)
			if v < prev {
				return false
			}
			prev = v
		}
		s := d.Samples()
		return sort.Float64sAreSorted(s) && len(s) == d.N()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestDistObserveAfterQuery(t *testing.T) {
	var d Dist
	d.Observe(5)
	_ = d.Quantile(0.5)
	d.Observe(1) // must re-sort lazily
	if d.Min() != 1 {
		t.Error("Observe after query broke sorting")
	}
}

func TestTableRendering(t *testing.T) {
	tb := NewTable("name", "value", "pct")
	tb.AddRow("alpha", 12, 3.14159)
	tb.AddRow("b", 12345, 0.5)
	out := tb.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("expected 4 lines, got %d:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "name") {
		t.Errorf("header line %q", lines[0])
	}
	if !strings.Contains(lines[1], "----") {
		t.Errorf("rule line %q", lines[1])
	}
	if !strings.Contains(lines[2], "3.14") {
		t.Errorf("float formatting: %q", lines[2])
	}
	for _, l := range lines {
		if strings.HasSuffix(l, " ") {
			t.Errorf("trailing whitespace in %q", l)
		}
	}
	// Columns align: "value" cells right-padded to same start.
	if strings.Index(lines[2], "12") == -1 || strings.Index(lines[3], "12345") == -1 {
		t.Error("missing cells")
	}
}

func TestTableNoHeader(t *testing.T) {
	tb := NewTable()
	tb.AddRow("x", 1)
	out := tb.String()
	if strings.Contains(out, "-") {
		t.Errorf("headerless table should have no rule: %q", out)
	}
}
