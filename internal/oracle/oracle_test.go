package oracle

import (
	"math"
	"math/rand"
	"testing"
	"time"

	"hiddenhhh/internal/addr"
	"hiddenhhh/internal/hhh"
	"hiddenhhh/internal/trace"
)

func testTrace(seed int64, n, spanSec int) []trace.Packet {
	rng := rand.New(rand.NewSource(seed))
	pkts := make([]trace.Packet, n)
	span := int64(spanSec) * int64(time.Second)
	step := span / int64(n)
	for i := range pkts {
		pkts[i] = trace.Packet{
			Ts:   int64(i) * step,
			Src:  addr.From4(10, byte(rng.Intn(4)), byte(rng.Intn(8)), byte(rng.Intn(32))),
			Size: uint32(40 + rng.Intn(1460)),
		}
	}
	return pkts
}

// TestWindowSetMatchesExact cross-checks the oracle's conditioned pass
// against the independently implemented hhh.Exact over the same window.
func TestWindowSetMatchesExact(t *testing.T) {
	h := addr.NewIPv4Hierarchy(addr.Byte)
	pkts := testTrace(1, 20000, 10)
	o := FromTrace(h, pkts)
	for _, win := range [][2]int64{
		{0, int64(2 * time.Second)},
		{int64(3 * time.Second), int64(7 * time.Second)},
		{0, math.MaxInt64},
	} {
		counts := map[addr.Addr]int64{}
		var total int64
		for i := range pkts {
			if pkts[i].Ts >= win[0] && pkts[i].Ts < win[1] {
				counts[pkts[i].Src] += int64(pkts[i].Size)
				total += int64(pkts[i].Size)
			}
		}
		for _, phi := range []float64{0.01, 0.05, 0.2} {
			want := hhh.ExactFromCounts(counts, h, hhh.Threshold(total, phi))
			got, gotTotal := o.WindowSet(win[0], win[1], phi)
			if gotTotal != total {
				t.Fatalf("window %v phi %v: total %d, want %d", win, phi, gotTotal, total)
			}
			if !got.Equal(want) {
				t.Fatalf("window %v phi %v: set %v, want %v", win, phi, got, want)
			}
			for p, it := range want {
				g := got[p]
				if g.Count != it.Count || g.Conditioned != it.Conditioned {
					t.Fatalf("window %v phi %v %v: item %+v, want %+v", win, phi, p, g, it)
				}
			}
		}
	}
}

// TestDecayedCounts pins the decayed aggregate against a direct sum.
func TestDecayedCounts(t *testing.T) {
	h := addr.NewIPv4Hierarchy(addr.Byte)
	pkts := testTrace(2, 5000, 5)
	o := FromTrace(h, pkts)
	tau := 2 * time.Second
	now := pkts[len(pkts)-1].Ts
	var want float64
	for i := range pkts {
		want += float64(pkts[i].Size) * math.Exp(-float64(now-pkts[i].Ts)/float64(tau))
	}
	levels, total := o.DecayedLevelCounts(now, tau)
	if math.Abs(total-want) > 1e-6*want {
		t.Fatalf("decayed total %v, want %v", total, want)
	}
	// The root's subtree mass is the total.
	var root float64
	for _, v := range levels[len(levels)-1] {
		root += v
	}
	if math.Abs(root-total) > 1e-6*total {
		t.Fatalf("root mass %v, total %v", root, total)
	}
}

// TestSlidingSpan pins the frame-ring coverage arithmetic, including the
// 1 ns frame floor.
func TestSlidingSpan(t *testing.T) {
	sec := int64(time.Second)
	cases := []struct {
		window time.Duration
		frames int
		now    int64
		want   int64
	}{
		{8 * time.Second, 8, 10 * sec, 2 * sec},    // aligned
		{8 * time.Second, 8, 10*sec + 1, 2 * sec},  // inside frame 10
		{8 * time.Second, 8, 11*sec - 1, 2 * sec},  // frame floor(10.999)=10
		{8 * time.Second, 0, 10 * sec, 2 * sec},    // frames defaults to 8
		{4 * time.Nanosecond, 8, 100, 100 - 8},     // frameNs floors at 1
		{10 * time.Second, 5, 3 * sec, -(8 * sec)}, // frame-aligned, before trace start
	}
	for _, c := range cases {
		if got := SlidingSpan(c.window, c.frames, c.now); got != c.want {
			t.Errorf("SlidingSpan(%v, %d, %d) = %d, want %d", c.window, c.frames, c.now, got, c.want)
		}
	}
}

// TestUncovered pins the conditioned-given-output walk on a handcrafted
// lattice: claims propagate from maximal reported descendants only, and
// the widened threshold grows with the number of such claims.
func TestUncovered(t *testing.T) {
	h := addr.NewIPv4Hierarchy(addr.Byte)
	a1 := addr.MustParseAddr("10.1.1.1")
	a2 := addr.MustParseAddr("10.1.1.2")
	b1 := addr.MustParseAddr("10.2.0.1")
	leaves := map[uint64]int64{h.Key(a1, 0): 100, h.Key(a2, 0): 80, h.Key(b1, 0): 60}
	levels := rollUp(h, leaves)

	// Nothing reported, flat threshold 90: only a1 (/32, 100) and the
	// aggregates above it clear 90 — the /24, /16 (180, via a1+a2), /8
	// and root (240).
	misses := UncoveredCounts(h, levels, hhh.NewSet(), func(int) int64 { return 90 })
	wantMissing := map[string]bool{
		"10.1.1.1/32": true, "10.1.1.0/24": true, "10.1.0.0/16": true,
		"10.0.0.0/8": true, "0.0.0.0/0": true,
	}
	if len(misses) != len(wantMissing) {
		t.Fatalf("misses = %v, want %d prefixes", misses, len(wantMissing))
	}
	for _, m := range misses {
		if !wantMissing[m.Prefix.String()] {
			t.Fatalf("unexpected miss %v", m.Prefix)
		}
	}

	// Report the /24: it claims its whole subtree (180), so every
	// ancestor's conditioned volume drops to 60 — no ancestor misses.
	// The /32s under it are not conditioned by their parent's report
	// (conditioning discounts descendants, not ancestors), so a1 still
	// misses at the leaf level.
	got := hhh.NewSet(hhh.Item{Prefix: addr.MustParsePrefix("10.1.1.0/24"), Count: 180, Conditioned: 180})
	misses = UncoveredCounts(h, levels, got, func(int) int64 { return 90 })
	if len(misses) != 1 || misses[0].Prefix.String() != "10.1.1.1/32" {
		t.Fatalf("misses with /24 reported = %v, want only 10.1.1.1/32", misses)
	}

	// Widening by maximal-claim count: report both /32s. The /24's
	// conditioned volume is 0; the /16 sees two maximal claims (both
	// /32s pass through the unreported /24), so a threshold function of
	// maximal=2 that returns > 60 suppresses the /16's miss while
	// the root still misses if its (also maximal=2) need is <= 60.
	got = hhh.NewSet(
		hhh.Item{Prefix: addr.Host(a1), Count: 100, Conditioned: 100},
		hhh.Item{Prefix: addr.Host(a2), Count: 80, Conditioned: 80},
	)
	misses = UncoveredCounts(h, levels, got, func(maximal int) int64 {
		if maximal != 0 && maximal != 2 {
			t.Fatalf("unexpected maximal-claim count %d", maximal)
		}
		return 50 + int64(maximal)*10 // 50 flat, 70 above two claims
	})
	// Remaining conditioned volumes: /24 under a1+a2 claims = 0; the b1
	// leaf (60, no claims, need 50) misses; b1's ancestors conditioned 60
	// with 0 claims... b1 chain: /24 60, /16 60, /8 and root sit above
	// both branches: 240-180 = 60 with maximal=2 → need 70 → no miss.
	wantMissing = map[string]bool{
		"10.2.0.1/32": true, "10.2.0.0/24": true, "10.2.0.0/16": true,
	}
	if len(misses) != len(wantMissing) {
		t.Fatalf("misses = %+v, want %v", misses, wantMissing)
	}
	for _, m := range misses {
		if !wantMissing[m.Prefix.String()] {
			t.Fatalf("unexpected miss %v (have %+v)", m.Prefix, misses)
		}
	}
}
