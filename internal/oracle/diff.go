package oracle

import (
	"fmt"
	"math"
	"time"

	"hiddenhhh/internal/addr"
	"hiddenhhh/internal/hhh"
	"hiddenhhh/internal/trace"
)

// Mode names the window model a detector under test implements; it
// selects the reference aggregate the oracle computes for each snapshot.
// Values mirror the public hiddenhhh.Mode constants.
type Mode int

// Supported reference models.
const (
	// ModeWindowed compares each snapshot against the exact HHH set of
	// the most recently completed disjoint window (detector boundary
	// semantics: windows aligned to multiples of Window, the first one
	// being the window containing the first packet).
	ModeWindowed Mode = iota
	// ModeSliding compares against the exact set over the frame-aligned
	// covered span [SlidingSpan, now].
	ModeSliding
	// ModeContinuous compares against the exact set over exponentially
	// decayed masses at the snapshot time (tau = Window).
	ModeContinuous
)

// String names the reference model ("windowed", "sliding",
// "continuous").
func (m Mode) String() string {
	switch m {
	case ModeWindowed:
		return "windowed"
	case ModeSliding:
		return "sliding"
	case ModeContinuous:
		return "continuous"
	default:
		return fmt.Sprintf("mode(%d)", int(m))
	}
}

// Detector is the minimal streaming surface the harness drives. The
// public hiddenhhh.Detector (and ShardedDetector) satisfies it.
type Detector interface {
	ObserveBatch(pkts []trace.Packet)
	Snapshot(now int64) hhh.Set
}

// Accounting is the optional introspection surface the public detectors
// implement: when available the harness cross-checks that the detector's
// own threshold denominator and covered span agree with the oracle's.
// The harness always queries it immediately after Snapshot(now) with the
// same now, the one pattern every implementation supports.
type Accounting interface {
	// ReportMass returns the total mass behind Snapshot(now)'s threshold.
	ReportMass(now int64) int64
	// CoveredSpan returns the time span Snapshot(now) aggregates.
	CoveredSpan(now int64) (lo, hi int64)
}

// Degraded is the optional degradation surface a detector under test may
// implement (ShardedDetector does): cumulative counters declaring the
// traffic it observed but excluded from reports — shed batches, a
// quarantined shard's substream, merges published without every shard.
// When present, the harness verifies the paper-family bounds *relative
// to declared observed mass*: each snapshot's missing mass (the exact
// aggregate minus the detector's ReportMass) widens the under-count and
// false-negative allowances, while the over-count side stays untouched —
// dropping traffic can never justify reporting more than was seen.
type Degraded interface {
	// DroppedMass returns cumulative shed packets and bytes.
	DroppedMass() (packets, bytes int64)
	// DegradedMerges returns how many merges were published without
	// every shard.
	DegradedMerges() int64
}

// Bounds parameterises the deterministic error-bound checks, following
// the paper-family guarantees: Space-Saving engines overestimate subtree
// volumes by at most Nε per level and miss no prefix whose conditioned
// volume reaches (φ+ε)N (Mitzenmacher et al.); RHHH adds a sampling term
// z on top, N(ε+z) (Ben Basat et al.).
type Bounds struct {
	// Epsilon is the engine's deterministic per-level overestimation
	// fraction of the aggregate mass: 1/Counters for the Space-Saving
	// engines (merge-adjusted — hash-partitioned shards telescope back to
	// the single-engine bound, so sharding does not widen it), 0 for the
	// exact engine.
	Epsilon float64
	// Slack is an additional fraction-of-mass allowance for error sources
	// without a deterministic bound: RHHH's level-sampling deviation (the
	// z of N(ε+z)) and the continuous detector's TDBF collision noise.
	// The suite pins it empirically per engine; it is an envelope for the
	// seeded scenarios, not a theorem.
	Slack float64
	// AbsSlack is an absolute mass allowance added on top of the
	// fractional terms (covers integer rounding and, for RHHH, the
	// √packets-scale part of the sampling deviation).
	AbsSlack float64
	// AllowUnder permits reported counts below exact by the same
	// allowance. Space-Saving estimates never underestimate; RHHH's
	// sampled estimates can.
	AllowUnder bool
}

// allowance is the total permitted one-sided count error at mass n.
func (b Bounds) allowance(n float64) float64 {
	return (b.Epsilon+b.Slack)*n + b.AbsSlack
}

// Config parameterises a differential run.
type Config struct {
	// Mode selects the reference model. Required to match the detector.
	Mode Mode
	// Window is the disjoint window length (ModeWindowed), the sliding
	// span (ModeSliding), or the decay horizon tau (ModeContinuous).
	// Required.
	Window time.Duration
	// Frames is ModeSliding's expiry granularity; must match the
	// detector's. Default 8.
	Frames int
	// Phi is the threshold fraction. Required.
	Phi float64
	// Hierarchy is the prefix lattice of the detector under test; the
	// oracle computes its reference over the same one. Defaults to the
	// IPv4 byte ladder.
	Hierarchy addr.Hierarchy
	// Bounds are the error-bound parameters asserted per snapshot.
	Bounds Bounds
	// SnapshotEvery is the query cadence. Default Window.
	SnapshotEvery time.Duration
	// Warmup suppresses bound checks for snapshots earlier than the first
	// packet plus this duration. ModeContinuous defaults it to Window
	// (the continuous detector's own admission warmup); the other modes
	// default to 0.
	Warmup time.Duration
}

// Violation is one broken bound at one snapshot.
type Violation struct {
	At     int64       `json:"at_ns"`
	Kind   string      `json:"kind"` // count-over | count-under | false-negative | mass-mismatch | span-mismatch
	Prefix addr.Prefix `json:"-"`
	Detail string      `json:"detail"`
}

// SnapshotResult scores one snapshot against its exact reference.
type SnapshotResult struct {
	At     int64   `json:"at_ns"`
	SpanLo int64   `json:"span_lo_ns"`
	SpanHi int64   `json:"span_hi_ns"`
	Mass   float64 `json:"mass"`
	// Truth and Got are the exact and reported HHH set sizes.
	Truth int `json:"truth"`
	Got   int `json:"got"`
	// Precision and Recall compare reported prefixes against the exact
	// HHH set (1.0 for two empty sets).
	Precision float64 `json:"precision"`
	Recall    float64 `json:"recall"`
	// MaxOver / MaxUnder are the worst per-item subtree count errors as a
	// fraction of Mass (0 when nothing was reported).
	MaxOver  float64 `json:"max_over_frac"`
	MaxUnder float64 `json:"max_under_frac"`
	// Warm reports whether bound checks ran (false inside Warmup).
	Warm       bool        `json:"warm"`
	Violations []Violation `json:"violations,omitempty"`

	// DroppedPackets/DroppedBytes echo the detector's cumulative declared
	// shed mass at this snapshot, and DegradedMerges its partial-quorum
	// merge count (all zero for detectors without a Degraded surface).
	DroppedPackets int64 `json:"dropped_packets,omitempty"`
	DroppedBytes   int64 `json:"dropped_bytes,omitempty"`
	DegradedMerges int64 `json:"degraded_merges,omitempty"`
	// MissingMass is the exact aggregate mass the detector declared
	// unobserved at this snapshot (oracle mass minus ReportMass, floored
	// at zero; only set while the detector reports degradation). It
	// widens the under-count and false-negative allowances.
	MissingMass float64 `json:"missing_mass,omitempty"`

	// TruthSet and GotSet carry the full sets for callers that aggregate
	// across snapshots; they are omitted from JSON reports.
	TruthSet hhh.Set `json:"-"`
	GotSet   hhh.Set `json:"-"`
}

// Report is the outcome of one differential run.
type Report struct {
	Detector string  `json:"detector"`
	Mode     string  `json:"mode"`
	Phi      float64 `json:"phi"`
	Packets  int     `json:"packets"`
	// Epsilon/Slack echo the checked bound for the record.
	Epsilon float64 `json:"epsilon"`
	Slack   float64 `json:"slack"`

	Snapshots []SnapshotResult `json:"snapshots"`

	// Aggregates over warm snapshots.
	MeanPrecision float64 `json:"mean_precision"`
	MeanRecall    float64 `json:"mean_recall"`
	WorstOver     float64 `json:"worst_over_frac"`
	WorstUnder    float64 `json:"worst_under_frac"`
	Violations    int     `json:"violations"`

	// TruthUnion / GotUnion are the distinct prefixes ever in the exact
	// reference / ever reported, for hidden-HHH accounting.
	TruthUnion hhh.Set `json:"-"`
	GotUnion   hhh.Set `json:"-"`
}

// Run drives det and the exact oracle over the same trace, querying both
// at every snapshot point and scoring the detector's reports: set
// precision/recall, per-item subtree count error against the exact
// per-level counts, and the deterministic paper-family bound checks
// (accuracy within the allowance; coverage of every prefix whose
// conditioned-given-output volume clears the widened threshold).
//
// pkts must be in non-decreasing timestamp order. The detector must be
// fresh (no packets observed yet) and configured consistently with cfg.
func Run(name string, det Detector, pkts []trace.Packet, cfg Config) (*Report, error) {
	if len(pkts) == 0 {
		return nil, fmt.Errorf("oracle: empty trace")
	}
	if cfg.Window <= 0 {
		return nil, fmt.Errorf("oracle: window must be positive")
	}
	if cfg.Phi <= 0 || cfg.Phi > 1 {
		return nil, fmt.Errorf("oracle: phi %v out of (0,1]", cfg.Phi)
	}
	if cfg.Hierarchy == (addr.Hierarchy{}) {
		cfg.Hierarchy = addr.NewIPv4Hierarchy(addr.Byte)
	}
	if cfg.Frames <= 0 {
		cfg.Frames = 8
	}
	if cfg.SnapshotEvery <= 0 {
		cfg.SnapshotEvery = cfg.Window
	}
	if cfg.Warmup == 0 && cfg.Mode == ModeContinuous {
		cfg.Warmup = cfg.Window
	}

	o := FromTrace(cfg.Hierarchy, pkts)
	rep := &Report{
		Detector: name,
		Mode:     cfg.Mode.String(),
		Phi:      cfg.Phi,
		Packets:  len(pkts),
		Epsilon:  cfg.Bounds.Epsilon,
		Slack:    cfg.Bounds.Slack,

		TruthUnion: hhh.NewSet(),
		GotUnion:   hhh.NewSet(),
	}

	firstTs := pkts[0].Ts
	lastTs := pkts[len(pkts)-1].Ts
	step := int64(cfg.SnapshotEvery)
	// Snapshot at every step boundary after the first packet, plus the
	// stream end — boundary-aligned points exercise exact window-edge
	// behaviour, the end point the final partial aggregate.
	var schedule []int64
	for at := (firstTs/step + 1) * step; at < lastTs; at += step {
		schedule = append(schedule, at)
	}
	schedule = append(schedule, lastTs)

	fed := 0
	var warm int
	var sumP, sumR float64
	for _, at := range schedule {
		j := fed
		for j < len(pkts) && pkts[j].Ts <= at {
			j++
		}
		det.ObserveBatch(pkts[fed:j])
		fed = j
		got := det.Snapshot(at)

		// Capture the detector's declared-coverage surfaces at the same
		// instant as the snapshot: they decide whether (and by how much)
		// the under-side bound checks are widened.
		obs := degradeObs{declared: -1}
		acc, hasAcc := det.(Accounting)
		if hasAcc {
			obs.declared = float64(acc.ReportMass(at))
		}
		if dg, ok := det.(Degraded); ok {
			obs.packets, obs.bytes = dg.DroppedMass()
			obs.merges = dg.DegradedMerges()
		}

		sr := evaluate(o, got, at, firstTs, cfg, obs)
		if hasAcc {
			checkAccounting(&sr, at, cfg, obs, acc)
		}
		rep.TruthUnion.UnionInPlace(sr.TruthSet)
		rep.GotUnion.UnionInPlace(got)
		if sr.Warm {
			warm++
			sumP += sr.Precision
			sumR += sr.Recall
			rep.WorstOver = math.Max(rep.WorstOver, sr.MaxOver)
			rep.WorstUnder = math.Max(rep.WorstUnder, sr.MaxUnder)
			rep.Violations += len(sr.Violations)
		}
		rep.Snapshots = append(rep.Snapshots, sr)
	}
	if warm > 0 {
		rep.MeanPrecision = sumP / float64(warm)
		rep.MeanRecall = sumR / float64(warm)
	}
	return rep, nil
}

// degradeObs captures the detector's declared-coverage surfaces at one
// snapshot instant: its ReportMass (declared; -1 without an Accounting
// surface) and its cumulative Degraded counters.
type degradeObs struct {
	declared               float64
	packets, bytes, merges int64
}

// degraded reports whether the detector has declared any shed mass or
// partial-quorum merges so far.
func (ob degradeObs) degraded() bool {
	return ob.packets > 0 || ob.bytes > 0 || ob.merges > 0
}

// evaluate computes the exact reference for one snapshot and scores the
// report against it. Each mode arm only derives the reference aggregate
// (span, per-level counts, total, threshold); the scoring tail is
// shared.
func evaluate(o *Oracle, got hhh.Set, at, firstTs int64, cfg Config, obs degradeObs) SnapshotResult {
	sr := SnapshotResult{
		At: at, GotSet: got, Warm: at >= firstTs+int64(cfg.Warmup),
		DroppedPackets: obs.packets, DroppedBytes: obs.bytes, DegradedMerges: obs.merges,
	}
	switch cfg.Mode {
	case ModeWindowed:
		w := int64(cfg.Window)
		firstEnd := (firstTs/w + 1) * w
		if at < firstEnd {
			// No window has closed yet; the detector reports empty.
			sr.TruthSet = hhh.NewSet()
			sr.SpanLo, sr.SpanHi = firstTs, firstTs
			sr.Warm = false
			break
		}
		end := at / w * w
		sr.SpanLo, sr.SpanHi = end-w, end
		levels, total := o.LevelCounts(sr.SpanLo, sr.SpanHi)
		scoreAggregate(&sr, o.h, levels, total, hhh.Threshold(total, cfg.Phi), cfg.Bounds, obs)
	case ModeSliding:
		sr.SpanLo, sr.SpanHi = SlidingSpan(cfg.Window, cfg.Frames, at), at+1
		levels, total := o.LevelCounts(sr.SpanLo, sr.SpanHi)
		scoreAggregate(&sr, o.h, levels, total, hhh.Threshold(total, cfg.Phi), cfg.Bounds, obs)
	case ModeContinuous:
		sr.SpanLo, sr.SpanHi = math.MinInt64, at
		levels, total := o.DecayedLevelCounts(at, cfg.Window)
		scoreAggregate(&sr, o.h, levels, total, cfg.Phi*total, cfg.Bounds, obs)
	}
	scoreSets(&sr)
	return sr
}

// scoreAggregate fills a snapshot result from one exact reference
// aggregate: the truth set at threshold T, and — on warm snapshots with
// traffic — the accuracy and coverage bound checks. When the detector
// has declared degradation, the gap between the oracle's aggregate and
// the detector's declared mass becomes sr.MissingMass, widening only the
// under-side checks: the reported set is held to the bounds over the
// mass the detector claims to have observed, and any mass beyond the
// claim is treated as a declared loss, never as license to over-report.
func scoreAggregate[V mass](sr *SnapshotResult, h addr.Hierarchy, levels []map[uint64]V, total, T V, b Bounds, obs degradeObs) {
	sr.Mass = float64(total)
	if obs.degraded() {
		if obs.declared >= 0 {
			sr.MissingMass = math.Max(0, sr.Mass-obs.declared)
		} else {
			// No Accounting surface: fall back to cumulative dropped
			// bytes (an over-estimate of this snapshot's missing mass,
			// still sound — it only loosens the under-side).
			sr.MissingMass = float64(obs.bytes)
		}
	}
	if total == 0 {
		sr.TruthSet = hhh.NewSet()
		return
	}
	sr.TruthSet = conditionedSet(h, levels, T)
	if sr.Warm {
		checkCounts(sr, h, levels, b)
		checkCoverage(sr, h, levels, sr.GotSet, float64(T), b)
	}
}

// scoreSets fills precision/recall from the truth and got sets.
func scoreSets(sr *SnapshotResult) {
	truth, got := sr.TruthSet, sr.GotSet
	sr.Truth, sr.Got = truth.Len(), got.Len()
	if truth.Len() == 0 && got.Len() == 0 {
		sr.Precision, sr.Recall = 1, 1
		return
	}
	inter := truth.Intersect(got).Len()
	if got.Len() > 0 {
		sr.Precision = float64(inter) / float64(got.Len())
	} else {
		sr.Precision = 1
	}
	if truth.Len() > 0 {
		sr.Recall = float64(inter) / float64(truth.Len())
	} else {
		sr.Recall = 1
	}
}

// checkCounts asserts the accuracy bound: every reported item's subtree
// count is within the allowance of the exact per-level count. Declared
// missing mass widens only the under side: a dropped packet can depress
// a reported count by at most its own mass, and can never inflate one.
func checkCounts[V mass](sr *SnapshotResult, h addr.Hierarchy, levels []map[uint64]V, b Bounds) {
	allow := b.allowance(sr.Mass) + 1 // +1: integer truncation of reported counts
	underAllow := 1.0                 // Space-Saving never underestimates (integer truncation aside)
	if b.AllowUnder {
		underAllow = allow
	}
	underAllow += sr.MissingMass
	for p, it := range sr.GotSet {
		if !h.OnLattice(p) {
			continue // off-lattice prefix: not comparable
		}
		l := h.Level(p.Bits)
		exact := float64(levels[l][h.KeyOfPrefix(p)])
		err := float64(it.Count) - exact
		switch {
		case err > allow:
			sr.MaxOver = math.Max(sr.MaxOver, err/math.Max(sr.Mass, 1))
			sr.Violations = append(sr.Violations, Violation{
				At: sr.At, Kind: "count-over", Prefix: p,
				Detail: fmt.Sprintf("%v: est %d exact %.0f over by %.0f > allowance %.0f",
					p, it.Count, exact, err, allow),
			})
		case err < -underAllow:
			sr.MaxUnder = math.Max(sr.MaxUnder, -err/math.Max(sr.Mass, 1))
			sr.Violations = append(sr.Violations, Violation{
				At: sr.At, Kind: "count-under", Prefix: p,
				Detail: fmt.Sprintf("%v: est %d exact %.0f under by %.0f (allowance %.0f, missing %.0f, allowUnder=%v)",
					p, it.Count, exact, -err, underAllow, sr.MissingMass, b.AllowUnder),
			})
		default:
			if err > 0 {
				sr.MaxOver = math.Max(sr.MaxOver, err/math.Max(sr.Mass, 1))
			} else {
				sr.MaxUnder = math.Max(sr.MaxUnder, -err/math.Max(sr.Mass, 1))
			}
		}
	}
}

// checkCoverage asserts the no-false-negative bound: every prefix whose
// exact conditioned-given-output volume reaches the threshold widened by
// one allowance per maximal reported descendant (plus one for itself)
// must be in the report. Declared missing mass widens the requirement
// once more: a prefix is only owed coverage if it clears the threshold
// even after every dropped byte is charged against its volume.
func checkCoverage[V mass](sr *SnapshotResult, h addr.Hierarchy, levels []map[uint64]V, got hhh.Set, T float64, b Bounds) {
	allow := b.allowance(sr.Mass)
	misses := uncovered(h, levels, got, func(maximal int) V {
		// +2: rounding guard on top of the analytic bound — one byte for
		// the float64 truncation inside hhh.Threshold (T can sit a byte
		// below the mathematical φN) and one for truncating this float
		// expression back to integer masses. The exact engines are
		// additionally pinned by full set equality in the matrix test,
		// so the guard cannot hide a real exact-engine miss.
		return V(T + float64(maximal+1)*allow + 2 + sr.MissingMass)
	})
	for _, m := range misses {
		sr.Violations = append(sr.Violations, Violation{
			At: sr.At, Kind: "false-negative", Prefix: m.Prefix,
			Detail: fmt.Sprintf("%v: conditioned %.0f >= %.0f (T=%.0f, %d maximal reported descendants) but not reported",
				m.Prefix, m.Cond, m.Need, T, m.Maximal),
		})
	}
}

// checkAccounting cross-checks the detector's own mass and span against
// the oracle's reference. With no degradation declared, exact-count
// modes must agree exactly (the continuous mode's decayed mass is
// computed in a different association order, so it gets a small relative
// tolerance) — this keeps the default lossless configurations pinned
// strictly. Once the detector declares shed mass or partial merges, the
// lower side is released (that gap *is* the declared loss, already
// charged to MissingMass) but the upper side stays: a detector may never
// claim more observed mass than the trace contains.
func checkAccounting(sr *SnapshotResult, at int64, cfg Config, obs degradeObs, acc Accounting) {
	if !sr.Warm {
		return
	}
	mass := obs.declared
	var tol float64
	if cfg.Mode == ModeContinuous {
		tol = 1e-6*sr.Mass + 1
	}
	diff := mass - sr.Mass
	if diff > tol || (!obs.degraded() && diff < -tol) {
		sr.Violations = append(sr.Violations, Violation{
			At: at, Kind: "mass-mismatch",
			Detail: fmt.Sprintf("detector mass %.0f, oracle %.0f (degraded=%v)", mass, sr.Mass, obs.degraded()),
		})
	}
	lo, hi := acc.CoveredSpan(at)
	switch cfg.Mode {
	case ModeWindowed:
		if lo != sr.SpanLo || hi != sr.SpanHi {
			sr.Violations = append(sr.Violations, Violation{
				At: at, Kind: "span-mismatch",
				Detail: fmt.Sprintf("detector span [%d,%d), oracle [%d,%d)", lo, hi, sr.SpanLo, sr.SpanHi),
			})
		}
	case ModeSliding:
		if lo != sr.SpanLo || hi != at {
			sr.Violations = append(sr.Violations, Violation{
				At: at, Kind: "span-mismatch",
				Detail: fmt.Sprintf("detector span [%d,%d], oracle [%d,%d]", lo, hi, sr.SpanLo, at),
			})
		}
	}
}
