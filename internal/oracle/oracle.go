// Package oracle provides a brute-force exact hierarchical-heavy-hitter
// reference — full per-prefix counts at every hierarchy level, exact
// conditioned volumes, arbitrary window / sliding-span / decayed replay —
// and a differential harness (see diff.go) that measures any streaming
// detector against it.
//
// Everything the repository's approximate engines estimate, the oracle
// computes exactly from the retained trace: per-level subtree volumes,
// the bottom-up conditioned HHH set, and — the piece that makes the
// paper-family deterministic bounds falsifiable — the *conditioned volume
// given a detector's own output*, i.e. a prefix's exact volume discounted
// by the exact subtree volumes of its maximal descendants in the
// detector's report. With that quantity the classical guarantees of
// Space-Saving-based HHH (Mitzenmacher et al., arXiv:1102.5540; Ben Basat
// et al., arXiv:1707.06778) become direct assertions:
//
//   - accuracy: every reported subtree estimate is within Nε of exact;
//   - coverage: every prefix whose conditioned-given-output volume
//     reaches (φ+ε')N appears in the report, where ε' widens by εN per
//     maximal reported descendant (each descendant's claim may
//     overestimate by up to εN, over-discounting its ancestors).
//
// The oracle is O(packets × levels) per query and keeps the whole trace
// in memory: it is a test and evaluation harness, not a detector.
package oracle

import (
	"math"
	"sort"
	"time"

	"hiddenhhh/internal/addr"
	"hiddenhhh/internal/hhh"
	"hiddenhhh/internal/swhh"
	"hiddenhhh/internal/trace"
)

// mass is the numeric domain of an aggregate: exact byte counts for the
// windowed and sliding models, decayed float masses for the continuous
// one.
type mass interface {
	~int64 | ~float64
}

// Oracle retains a time-ordered trace and answers exact HHH queries over
// arbitrary sub-spans and decay horizons of it. Packets outside the
// hierarchy's address family are excluded from every aggregate, matching
// the detectors' ingest-side family filter.
type Oracle struct {
	h    addr.Hierarchy
	pkts []trace.Packet
}

// New builds an empty oracle over hierarchy h.
func New(h addr.Hierarchy) *Oracle {
	if h == (addr.Hierarchy{}) {
		h = addr.NewIPv4Hierarchy(addr.Byte)
	}
	return &Oracle{h: h}
}

// FromTrace builds an oracle preloaded with pkts (not copied; the caller
// must not mutate the slice while the oracle is in use).
func FromTrace(h addr.Hierarchy, pkts []trace.Packet) *Oracle {
	o := New(h)
	o.pkts = pkts
	return o
}

// Absorb appends a time-ordered run of packets.
func (o *Oracle) Absorb(pkts []trace.Packet) {
	o.pkts = append(o.pkts, pkts...)
}

// Hierarchy returns the configured hierarchy.
func (o *Oracle) Hierarchy() addr.Hierarchy { return o.h }

// Packets returns the number of retained packets.
func (o *Oracle) Packets() int { return len(o.pkts) }

// span returns the index range of packets with lo <= Ts < hi.
func (o *Oracle) span(lo, hi int64) (i, j int) {
	i = sort.Search(len(o.pkts), func(k int) bool { return o.pkts[k].Ts >= lo })
	j = sort.Search(len(o.pkts), func(k int) bool { return o.pkts[k].Ts >= hi })
	return i, j
}

// rollUp builds the per-level subtree aggregates above a leaf map: level
// 0 is the (already masked) leaf-key level, level l+1 sums each prefix's
// children. Maps are keyed by the hierarchy's per-level uint64 keys (see
// addr.Hierarchy.Key).
func rollUp[V mass](h addr.Hierarchy, leaves map[uint64]V) []map[uint64]V {
	levels := make([]map[uint64]V, h.Levels())
	levels[0] = leaves
	for l := 1; l < h.Levels(); l++ {
		m := h.KeyMask(l)
		up := make(map[uint64]V, len(levels[l-1])/2+1)
		for key, c := range levels[l-1] {
			up[key&m] += c
		}
		levels[l] = up
	}
	return levels
}

// LevelCounts returns the exact per-prefix subtree byte volumes at every
// hierarchy level (index 0 = leaves, last = root) over in-family packets
// with lo <= Ts < hi, together with the total byte volume of the span.
func (o *Oracle) LevelCounts(lo, hi int64) ([]map[uint64]int64, int64) {
	i, j := o.span(lo, hi)
	leaves := make(map[uint64]int64, (j-i)/4+1)
	var total int64
	for ; i < j; i++ {
		if !o.h.Match(o.pkts[i].Src) {
			continue
		}
		w := int64(o.pkts[i].Size)
		leaves[o.h.Key(o.pkts[i].Src, 0)] += w
		total += w
	}
	return rollUp(o.h, leaves), total
}

// DecayedLevelCounts returns the exponentially decayed per-prefix masses
// at time now — every packet with Ts <= now contributes
// Size·exp(-(now-Ts)/tau), the law of tdbf.Exponential — and the total
// decayed mass.
func (o *Oracle) DecayedLevelCounts(now int64, tau time.Duration) ([]map[uint64]float64, float64) {
	_, j := o.span(math.MinInt64, now+1)
	leaves := make(map[uint64]float64, j/4+1)
	var total float64
	for i := 0; i < j; i++ {
		if !o.h.Match(o.pkts[i].Src) {
			continue
		}
		w := float64(o.pkts[i].Size) * math.Exp(-float64(now-o.pkts[i].Ts)/float64(tau))
		leaves[o.h.Key(o.pkts[i].Src, 0)] += w
		total += w
	}
	return rollUp(o.h, leaves), total
}

// conditionedSet runs the exact bottom-up conditioned pass over the level
// aggregates: a prefix is an HHH when its subtree volume minus the volume
// claimed by descendant HHHs reaches T, and an HHH claims its whole
// subtree upward.
func conditionedSet[V mass](h addr.Hierarchy, levels []map[uint64]V, T V) hhh.Set {
	out := hhh.Set{}
	unclaimed := levels[0]
	for l := 0; l < len(levels); l++ {
		var next map[uint64]V
		var parentMask uint64
		if l+1 < len(levels) {
			next = make(map[uint64]V, len(unclaimed)/2+1)
			parentMask = h.KeyMask(l + 1)
		}
		for key, cond := range unclaimed {
			if cond >= T {
				out.Add(hhh.Item{
					Prefix:      h.PrefixOfKey(key, l),
					Count:       int64(levels[l][key]),
					Conditioned: int64(cond),
				})
				continue
			}
			if next != nil {
				next[key&parentMask] += cond
			}
		}
		unclaimed = next
	}
	return out
}

// WindowSet returns the exact HHH set of the disjoint window [lo, hi) at
// threshold fraction phi of the window's bytes, plus the window total.
func (o *Oracle) WindowSet(lo, hi int64, phi float64) (hhh.Set, int64) {
	levels, total := o.LevelCounts(lo, hi)
	if total == 0 {
		return hhh.NewSet(), 0
	}
	return conditionedSet(o.h, levels, hhh.Threshold(total, phi)), total
}

// SlidingSpan returns the inclusive start of the span a frame-ring
// sliding summary (swhh) covers at query time now. It delegates to
// swhh.Config.CoveredSince — the summary's own geometry, defaults
// included — so the oracle's reference span can never drift from the
// detector's actual coverage.
func SlidingSpan(window time.Duration, frames int, now int64) int64 {
	return swhh.Config{Window: window, Frames: frames}.CoveredSince(now)
}

// SlidingSet returns the exact HHH set over the span a frame-ring sliding
// summary covers at time now — packets with SlidingSpan <= Ts <= now — at
// threshold fraction phi, plus the covered total.
func (o *Oracle) SlidingSet(window time.Duration, frames int, now int64, phi float64) (hhh.Set, int64) {
	return o.WindowSet(SlidingSpan(window, frames, now), now+1, phi)
}

// DecayedSet returns the exact HHH set over exponentially decayed masses
// at time now with horizon tau, at threshold fraction phi of the total
// decayed mass, plus that total.
func (o *Oracle) DecayedSet(now int64, tau time.Duration, phi float64) (hhh.Set, float64) {
	levels, total := o.DecayedLevelCounts(now, tau)
	if total == 0 {
		return hhh.NewSet(), 0
	}
	return conditionedSet(o.h, levels, phi*total), total
}

// Miss is one coverage violation: a prefix the detector should have
// reported under the checked bound but did not.
type Miss struct {
	// Prefix is the uncovered lattice prefix.
	Prefix addr.Prefix
	// Cond is the prefix's exact conditioned-given-output volume: its
	// exact subtree volume minus the exact subtree volumes of its maximal
	// descendants in the detector's report.
	Cond float64
	// Need is the threshold Cond exceeded.
	Need float64
	// Maximal is the number of maximal reported descendants discounted
	// from the prefix (each widens the permitted threshold by one sketch
	// error term).
	Maximal int
}

// uncovered walks the hierarchy bottom-up computing every prefix's
// conditioned-given-output volume — exact subtree volume minus the exact
// subtree volumes claimed by its maximal descendants in got — and reports
// the prefixes absent from got whose conditioned volume reaches
// need(maximal). need receives the number of maximal reported descendants
// feeding the prefix's discount, so callers can widen the threshold by
// one sketch error term per claim (a reported descendant's claim may
// overestimate by up to εN, over-discounting its ancestors by the same).
func uncovered[V mass](h addr.Hierarchy, levels []map[uint64]V, got hhh.Set, need func(maximal int) V) []Miss {
	var misses []Miss
	claims := map[uint64]V{}
	nclaims := map[uint64]int{}
	for l := 0; l < len(levels); l++ {
		last := l+1 >= len(levels)
		var parentMask uint64
		var nextClaims map[uint64]V
		var nextN map[uint64]int
		if !last {
			parentMask = h.KeyMask(l + 1)
			nextClaims = make(map[uint64]V, len(claims)/2+1)
			nextN = make(map[uint64]int, len(nclaims)/2+1)
		}
		for key, cnt := range levels[l] {
			d := claims[key]
			dc := nclaims[key]
			cond := cnt - d
			p := h.PrefixOfKey(key, l)
			reported := got.Contains(p)
			if !reported && cond >= need(dc) {
				misses = append(misses, Miss{
					Prefix: p, Cond: float64(cond), Need: float64(need(dc)), Maximal: dc,
				})
			}
			if last {
				continue
			}
			up, upc := d, dc
			if reported {
				up, upc = cnt, 1 // an HHH claims its whole exact subtree
			}
			if up > 0 || upc > 0 {
				parent := key & parentMask
				nextClaims[parent] += up
				nextN[parent] += upc
			}
		}
		claims, nclaims = nextClaims, nextN
	}
	return misses
}

// UncoveredCounts is uncovered over exact byte aggregates.
func UncoveredCounts(h addr.Hierarchy, levels []map[uint64]int64, got hhh.Set, need func(maximal int) int64) []Miss {
	return uncovered(h, levels, got, need)
}

// UncoveredDecayed is uncovered over decayed float aggregates.
func UncoveredDecayed(h addr.Hierarchy, levels []map[uint64]float64, got hhh.Set, need func(maximal int) float64) []Miss {
	return uncovered(h, levels, got, need)
}
