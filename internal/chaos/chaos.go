// Package chaos provides a deterministic fault-injection plan for the
// sharded pipeline's degradation tests. A Plan implements the
// pipeline.Breaker surface: the shard workers call its hooks before
// absorbing a batch and before registering at a barrier, and the plan
// decides — per shard — whether to delay, block, or panic there.
//
// Faults are armed from the test goroutine and fire on the worker
// goroutines, so every mutation is mutex-guarded. The zero fault set is
// a no-op: a Plan with nothing armed adds two map lookups per batch and
// changes no behaviour, which is what lets the chaos matrix assert the
// no-fault cells stay byte-identical to a run without the plan.
package chaos

import (
	"sync"
	"time"
)

// Plan is a mutable per-shard fault schedule implementing
// pipeline.Breaker. Arm faults with DelayBatches, BlockShard,
// PanicNextBatch, or PanicNextBarrier; disarm everything with Clear.
// All methods are safe for concurrent use.
type Plan struct {
	mu      sync.Mutex
	delay   map[int]time.Duration // sleep applied at each hook
	gate    map[int]*gate         // park the worker until released
	panicB  map[int]int           // pending batch-hook panics
	panicBr map[int]int           // pending barrier-hook panics
}

// gate parks a worker until release is called (or Clear releases it).
type gate struct {
	ch   chan struct{}
	once sync.Once
}

func (g *gate) release() { g.once.Do(func() { close(g.ch) }) }

// New returns an empty plan: no faults armed, hooks are no-ops.
func New() *Plan {
	return &Plan{
		delay:   make(map[int]time.Duration),
		gate:    make(map[int]*gate),
		panicB:  make(map[int]int),
		panicBr: make(map[int]int),
	}
}

// DelayBatches makes every subsequent hook on shard sleep d, simulating
// a slow shard. d <= 0 removes the delay.
func (p *Plan) DelayBatches(shard int, d time.Duration) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if d <= 0 {
		delete(p.delay, shard)
		return
	}
	p.delay[shard] = d
}

// BlockShard parks shard's worker at its next hook until the returned
// release function is called (idempotent; Clear also releases it). While
// parked the shard absorbs nothing and answers no barriers — the stuck-
// shard and forced-ring-full fault in one: ingest backs up behind the
// parked worker until the ring fills.
func (p *Plan) BlockShard(shard int) (release func()) {
	g := &gate{ch: make(chan struct{})}
	p.mu.Lock()
	if old := p.gate[shard]; old != nil {
		old.release()
	}
	p.gate[shard] = g
	p.mu.Unlock()
	return g.release
}

// PanicNextBatch arms one panic on shard's next batch hook, simulating
// an engine crash mid-update.
func (p *Plan) PanicNextBatch(shard int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.panicB[shard]++
}

// PanicNextBarrier arms one panic on shard's next barrier hook,
// simulating a crash at a merge point.
func (p *Plan) PanicNextBarrier(shard int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.panicBr[shard]++
}

// Clear disarms every fault and releases every blocked shard. The maps
// are emptied in place, never reassigned: fire evaluates its map
// argument before taking the lock, so the fields must stay immutable
// after New.
func (p *Plan) Clear() {
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, g := range p.gate {
		g.release()
	}
	clear(p.delay)
	clear(p.gate)
	clear(p.panicB)
	clear(p.panicBr)
}

// BeforeBatch implements pipeline.Breaker: it applies shard's armed
// delay, gate, and at most one pending batch panic.
func (p *Plan) BeforeBatch(shard int) {
	p.fire(shard, p.panicB, "chaos: injected batch panic")
}

// BeforeBarrier implements pipeline.Breaker: it applies shard's armed
// delay, gate, and at most one pending barrier panic.
func (p *Plan) BeforeBarrier(shard int) {
	p.fire(shard, p.panicBr, "chaos: injected barrier panic")
}

// fire runs one hook: read the armed faults under the lock, then apply
// them outside it so a parked worker never holds the plan mutex.
func (p *Plan) fire(shard int, panics map[int]int, msg string) {
	p.mu.Lock()
	d := p.delay[shard]
	g := p.gate[shard]
	throw := false
	if panics[shard] > 0 {
		panics[shard]--
		throw = true
	}
	p.mu.Unlock()
	if d > 0 {
		time.Sleep(d)
	}
	if g != nil {
		<-g.ch
	}
	if throw {
		panic(msg)
	}
}
