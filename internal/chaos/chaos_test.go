package chaos

import (
	"sync"
	"testing"
	"time"
)

func TestEmptyPlanIsNoOp(t *testing.T) {
	p := New()
	done := make(chan struct{})
	go func() {
		p.BeforeBatch(0)
		p.BeforeBarrier(0)
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("empty plan blocked a hook")
	}
}

func TestPanicArmsFireOnce(t *testing.T) {
	p := New()
	p.PanicNextBatch(3)
	mustPanic(t, func() { p.BeforeBatch(3) })
	p.BeforeBatch(3) // disarmed after one shot
	p.BeforeBatch(0) // other shards unaffected

	p.PanicNextBarrier(1)
	p.BeforeBatch(1) // batch hook does not consume a barrier panic
	mustPanic(t, func() { p.BeforeBarrier(1) })
	p.BeforeBarrier(1)
}

func TestBlockShardParksUntilReleased(t *testing.T) {
	p := New()
	release := p.BlockShard(2)
	entered := make(chan struct{})
	done := make(chan struct{})
	go func() {
		close(entered)
		p.BeforeBatch(2)
		close(done)
	}()
	<-entered
	select {
	case <-done:
		t.Fatal("blocked shard hook returned before release")
	case <-time.After(50 * time.Millisecond):
	}
	release()
	release() // idempotent
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("release did not unblock the hook")
	}
	p.BeforeBatch(2) // gate stays open for later hooks
}

func TestClearReleasesAndDisarms(t *testing.T) {
	p := New()
	p.BlockShard(0)
	p.PanicNextBatch(0)
	p.DelayBatches(0, time.Hour)
	p.Clear()
	done := make(chan struct{})
	go func() {
		p.BeforeBatch(0)
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("Clear left a fault armed")
	}
}

func TestDelayBatchesSleeps(t *testing.T) {
	p := New()
	p.DelayBatches(1, 30*time.Millisecond)
	start := time.Now()
	p.BeforeBatch(1)
	if got := time.Since(start); got < 25*time.Millisecond {
		t.Fatalf("delayed hook returned in %v, want >= 30ms", got)
	}
	p.DelayBatches(1, 0)
	start = time.Now()
	p.BeforeBatch(1)
	if got := time.Since(start); got > 10*time.Millisecond {
		t.Fatalf("cleared delay still slept %v", got)
	}
}

func TestConcurrentArmAndFire(t *testing.T) {
	p := New()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(2)
		go func(s int) {
			defer wg.Done()
			p.DelayBatches(s, time.Microsecond)
			p.PanicNextBarrier(s)
			p.Clear()
		}(i)
		go func(s int) {
			defer wg.Done()
			defer func() { recover() }() // injected panics are expected
			for j := 0; j < 50; j++ {
				p.BeforeBatch(s)
			}
		}(i)
	}
	wg.Wait()
}

func mustPanic(t *testing.T, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatal("expected an injected panic")
		}
	}()
	f()
}
