// Package univmon implements a software model of UnivMon — Liu, Manousis,
// Vorsanger, Sekar and Braverman, "One Sketch to Rule Them All: Rethinking
// Network Flow Monitoring with UnivMon" (SIGCOMM 2016) — the paper's
// reference [4] and its second example of window-based in-network
// monitoring.
//
// UnivMon maintains L levels of progressively subsampled substreams: a key
// belongs to level i when the low i bits of a sampling hash are all ones,
// so each level sees roughly half the keys of the previous one. Every
// level runs a Count-Sketch plus a top-k candidate list. Universal
// statistics (G-sums such as distinct count or entropy) are recovered
// bottom-up with the standard unbiased estimator
//
//	Y_i = 2·Y_{i+1} + Σ_{h ∈ topk_i} g(w_h)·(1 − 2·sampled_{i+1}(h)),
//
// and plain heavy hitters come from level 0's candidates — which is how
// the experiments here use it (per measurement window, reset at
// boundaries, exactly the disjoint-window discipline the poster
// critiques).
//
// This is a "lite" model: candidate lists are exact top-k heaps driven by
// sketch estimates, and only the statistics the experiments need are
// exposed. It preserves UnivMon's detection semantics, not its dataplane
// layout.
package univmon

import (
	"container/heap"
	"math"

	"hiddenhhh/internal/hashx"
	"hiddenhhh/internal/sketch"
)

// Config configures a UnivMon instance.
type Config struct {
	// Levels is the number of subsampling levels. Default 8.
	Levels int
	// TopK is the per-level candidate list size. Default 64.
	TopK int
	// Sketch configures the per-level Count-Sketch.
	Sketch sketch.CountSketchOpts
	// Seed drives the sampling hash.
	Seed uint64
}

func (c *Config) setDefaults() {
	if c.Levels <= 0 {
		c.Levels = 8
	}
	if c.TopK <= 0 {
		c.TopK = 64
	}
	if c.Sketch.Depth <= 0 {
		c.Sketch.Depth = 5
	}
	if c.Sketch.Width <= 0 {
		c.Sketch.Width = 1024
	}
}

// UnivMon is a universal sketch. Not safe for concurrent use.
type UnivMon struct {
	levels []*level
	seed   uint64
	total  int64
}

type level struct {
	cs   *sketch.CountSketch
	topk *candidateHeap
	k    int
}

// New builds a UnivMon from cfg.
func New(cfg Config) *UnivMon {
	cfg.setDefaults()
	u := &UnivMon{levels: make([]*level, cfg.Levels), seed: cfg.Seed}
	for i := range u.levels {
		opts := cfg.Sketch
		opts.Seed = hashx.Mix64(cfg.Seed + uint64(i)*0x9e3779b97f4a7c15)
		u.levels[i] = &level{
			cs:   sketch.NewCountSketch(opts),
			topk: newCandidateHeap(cfg.TopK),
			k:    cfg.TopK,
		}
	}
	return u
}

// sampledAt reports whether key survives to the given level: the low
// `lvl` bits of the sampling hash must all be ones.
func (u *UnivMon) sampledAt(key uint64, lvl int) bool {
	if lvl == 0 {
		return true
	}
	h := hashx.Seeded(key, u.seed^0x517cc1b727220a95)
	mask := uint64(1)<<uint(lvl) - 1
	return h&mask == mask
}

// Update processes one packet with weight w.
func (u *UnivMon) Update(key uint64, w int64) {
	u.total += w
	for i, lv := range u.levels {
		if !u.sampledAt(key, i) {
			break // sampling is nested: failing level i fails all deeper
		}
		lv.cs.Update(key, w)
		lv.topk.offer(key, lv.cs.Estimate(key))
	}
}

// Total returns the total weight seen since the last Reset.
func (u *UnivMon) Total() int64 { return u.total }

// HeavyKeys returns level-0 candidates whose Count-Sketch estimate
// reaches threshold — UnivMon's heavy-hitter application.
func (u *UnivMon) HeavyKeys(threshold int64) []sketch.KV {
	var out []sketch.KV
	for _, key := range u.levels[0].topk.keys() {
		if est := u.levels[0].cs.Estimate(key); est >= threshold {
			out = append(out, sketch.KV{Key: key, Count: est})
		}
	}
	return out
}

// GSum evaluates the universal estimator for a non-negative function g of
// the per-key weights (e.g. g(x)=1 for distinct count; g(x)=x·log x for
// entropy numerators).
func (u *UnivMon) GSum(g func(w int64) float64) float64 {
	L := len(u.levels)
	y := 0.0
	// Deepest level: plain sum over its candidates.
	for _, key := range u.levels[L-1].topk.keys() {
		if est := u.levels[L-1].cs.Estimate(key); est > 0 {
			y += g(est)
		}
	}
	for i := L - 2; i >= 0; i-- {
		yi := 2 * y
		for _, key := range u.levels[i].topk.keys() {
			est := u.levels[i].cs.Estimate(key)
			if est <= 0 {
				continue
			}
			ind := 0.0
			if u.sampledAt(key, i+1) {
				ind = 1
			}
			yi += g(est) * (1 - 2*ind)
		}
		if yi < 0 {
			yi = 0 // estimator noise can undershoot; clamp like the paper's code
		}
		y = yi
	}
	return y
}

// DistinctEstimate approximates the number of distinct keys (G-sum with
// g = 1).
func (u *UnivMon) DistinctEstimate() float64 {
	return u.GSum(func(int64) float64 { return 1 })
}

// EntropyEstimate approximates the empirical entropy (base 2) of the
// weight distribution.
func (u *UnivMon) EntropyEstimate() float64 {
	if u.total == 0 {
		return 0
	}
	n := float64(u.total)
	s := u.GSum(func(w int64) float64 {
		x := float64(w)
		return x * math.Log2(x)
	})
	e := math.Log2(n) - s/n
	if e < 0 {
		return 0
	}
	return e
}

// SizeBytes returns the sketch footprint across levels.
func (u *UnivMon) SizeBytes() int {
	n := 0
	for _, lv := range u.levels {
		n += lv.cs.SizeBytes() + lv.k*16
	}
	return n
}

// Reset clears every level.
func (u *UnivMon) Reset() {
	u.total = 0
	for _, lv := range u.levels {
		lv.cs.Reset()
		lv.topk.reset()
	}
}

// candidateHeap is a key-deduplicating min-heap of (key, estimate),
// keeping the k largest estimates seen.
type candidateHeap struct {
	k     int
	items []candidate
	pos   map[uint64]int
}

type candidate struct {
	key uint64
	est int64
}

func newCandidateHeap(k int) *candidateHeap {
	return &candidateHeap{k: k, pos: make(map[uint64]int, k)}
}

func (h *candidateHeap) Len() int           { return len(h.items) }
func (h *candidateHeap) Less(i, j int) bool { return h.items[i].est < h.items[j].est }
func (h *candidateHeap) Swap(i, j int) {
	h.items[i], h.items[j] = h.items[j], h.items[i]
	h.pos[h.items[i].key] = i
	h.pos[h.items[j].key] = j
}

// Push implements heap.Interface.
func (h *candidateHeap) Push(x any) {
	c := x.(candidate)
	h.pos[c.key] = len(h.items)
	h.items = append(h.items, c)
}

// Pop implements heap.Interface.
func (h *candidateHeap) Pop() any {
	c := h.items[len(h.items)-1]
	delete(h.pos, c.key)
	h.items = h.items[:len(h.items)-1]
	return c
}

// offer updates key's estimate or inserts it, evicting the smallest
// candidate when over capacity.
func (h *candidateHeap) offer(key uint64, est int64) {
	if i, ok := h.pos[key]; ok {
		h.items[i].est = est
		heap.Fix(h, i)
		return
	}
	if len(h.items) < h.k {
		heap.Push(h, candidate{key, est})
		return
	}
	if h.items[0].est >= est {
		return
	}
	delete(h.pos, h.items[0].key)
	h.items[0] = candidate{key, est}
	h.pos[key] = 0
	heap.Fix(h, 0)
}

// keys returns the current candidate keys.
func (h *candidateHeap) keys() []uint64 {
	out := make([]uint64, 0, len(h.items))
	for _, c := range h.items {
		out = append(out, c.key)
	}
	return out
}

func (h *candidateHeap) reset() {
	h.items = h.items[:0]
	h.pos = make(map[uint64]int, h.k)
}
