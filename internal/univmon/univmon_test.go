package univmon

import (
	"math"
	"math/rand"
	"testing"
)

func TestDefaults(t *testing.T) {
	u := New(Config{})
	if len(u.levels) != 8 {
		t.Errorf("levels = %d", len(u.levels))
	}
	if u.SizeBytes() <= 0 {
		t.Error("SizeBytes")
	}
}

func TestSamplingIsNestedAndHalving(t *testing.T) {
	u := New(Config{Levels: 6, Seed: 1})
	const n = 20000
	counts := make([]int, 6)
	for k := uint64(0); k < n; k++ {
		for l := 0; l < 6; l++ {
			if u.sampledAt(k, l) {
				counts[l]++
			} else {
				// Nested: failing level l must fail all deeper levels.
				for m := l + 1; m < 6; m++ {
					if u.sampledAt(k, m) {
						t.Fatalf("key %d sampled at %d but not %d", k, m, l)
					}
				}
				break
			}
		}
	}
	if counts[0] != n {
		t.Fatal("level 0 must see everything")
	}
	for l := 1; l < 6; l++ {
		ratio := float64(counts[l]) / float64(counts[l-1])
		if ratio < 0.4 || ratio > 0.6 {
			t.Errorf("level %d keeps %.2f of level %d, want ~0.5", l, ratio, l-1)
		}
	}
}

func TestHeavyKeysDetection(t *testing.T) {
	u := New(Config{Levels: 6, TopK: 32, Seed: 2})
	rng := rand.New(rand.NewSource(1))
	var heavyTrue int64
	const heavy = uint64(777777)
	for i := 0; i < 100000; i++ {
		if i%4 == 0 {
			u.Update(heavy, 1000)
			heavyTrue += 1000
		} else {
			u.Update(uint64(rng.Intn(20000)), 100)
		}
	}
	found := false
	for _, kv := range u.HeavyKeys(heavyTrue / 2) {
		if kv.Key == heavy {
			found = true
			rel := math.Abs(float64(kv.Count-heavyTrue)) / float64(heavyTrue)
			if rel > 0.1 {
				t.Errorf("estimate %d vs true %d (rel %.3f)", kv.Count, heavyTrue, rel)
			}
		}
	}
	if !found {
		t.Fatal("heavy key not detected")
	}
}

func TestDistinctEstimate(t *testing.T) {
	u := New(Config{Levels: 10, TopK: 128, Seed: 3})
	const distinct = 2000
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 50000; i++ {
		u.Update(uint64(rng.Intn(distinct)), 100)
	}
	got := u.DistinctEstimate()
	// The lite candidate lists make this coarse; demand the right order
	// of magnitude.
	if got < distinct/4 || got > distinct*4 {
		t.Errorf("distinct estimate %.0f vs true %d", got, distinct)
	}
}

func TestEntropyEstimateUniformVsSkewed(t *testing.T) {
	// Entropy of a uniform distribution must exceed a concentrated one.
	uniform := New(Config{Levels: 8, TopK: 64, Seed: 4})
	skewed := New(Config{Levels: 8, TopK: 64, Seed: 4})
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 50000; i++ {
		uniform.Update(uint64(rng.Intn(1000)), 100)
		if i%2 == 0 {
			skewed.Update(1, 100) // half the mass on one key
		} else {
			skewed.Update(uint64(rng.Intn(1000)), 100)
		}
	}
	hu, hs := uniform.EntropyEstimate(), skewed.EntropyEstimate()
	if hu <= hs {
		t.Errorf("uniform entropy %.2f should exceed skewed %.2f", hu, hs)
	}
	if hu < 0 || hu > 20 {
		t.Errorf("entropy estimate %.2f implausible", hu)
	}
}

func TestEntropyEmpty(t *testing.T) {
	u := New(Config{})
	if u.EntropyEstimate() != 0 {
		t.Error("empty entropy should be 0")
	}
}

func TestReset(t *testing.T) {
	u := New(Config{Levels: 4, TopK: 8})
	u.Update(1, 100)
	u.Reset()
	if u.Total() != 0 {
		t.Error("Total after Reset")
	}
	if len(u.HeavyKeys(1)) != 0 {
		t.Error("candidates after Reset")
	}
}

func TestCandidateHeap(t *testing.T) {
	h := newCandidateHeap(3)
	h.offer(1, 10)
	h.offer(2, 20)
	h.offer(3, 30)
	h.offer(4, 5) // below min: rejected
	if len(h.keys()) != 3 {
		t.Fatalf("size %d", len(h.keys()))
	}
	for _, k := range h.keys() {
		if k == 4 {
			t.Fatal("weak key admitted")
		}
	}
	h.offer(5, 40) // evicts key 1
	for _, k := range h.keys() {
		if k == 1 {
			t.Fatal("min not evicted")
		}
	}
	h.offer(2, 50) // update in place
	found := false
	for _, c := range h.items {
		if c.key == 2 && c.est == 50 {
			found = true
		}
	}
	if !found {
		t.Fatal("in-place update failed")
	}
}

func BenchmarkUpdate(b *testing.B) {
	u := New(Config{Levels: 8, TopK: 64})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		u.Update(uint64(i)&16383, 1000)
	}
}
