package hashpipe

import (
	"math/rand"
	"testing"
)

func TestDefaults(t *testing.T) {
	h := New(Config{})
	if h.stages != 4 || h.width != 1024 {
		t.Errorf("defaults: stages=%d width=%d", h.stages, h.width)
	}
	if h.SizeBytes() != 4*1024*16 {
		t.Errorf("SizeBytes = %d", h.SizeBytes())
	}
}

func TestSingleKeyExact(t *testing.T) {
	h := New(Config{Stages: 2, SlotsPerStage: 16})
	h.Update(7, 100)
	h.Update(7, 50)
	if got := h.Estimate(7); got != 150 {
		t.Errorf("estimate = %d, want 150", got)
	}
	if h.Total() != 150 {
		t.Errorf("total = %d", h.Total())
	}
}

func TestHeavyKeysSurvivePressure(t *testing.T) {
	h := New(Config{Stages: 6, SlotsPerStage: 512, Seed: 1})
	rng := rand.New(rand.NewSource(1))
	var heavyTrue int64
	const heavy = uint64(424242)
	for i := 0; i < 200000; i++ {
		if i%5 == 0 {
			h.Update(heavy, 1000)
			heavyTrue += 1000
		} else {
			h.Update(uint64(rng.Intn(50000)), 100)
		}
	}
	est := h.Estimate(heavy)
	if est == 0 {
		t.Fatal("heavy key evicted entirely")
	}
	// HashPipe may undercount but should retain the bulk of a key
	// carrying ~71% of bytes.
	if float64(est) < 0.5*float64(heavyTrue) {
		t.Errorf("estimate %d below half of true %d", est, heavyTrue)
	}
	found := false
	for _, kv := range h.HeavyKeys(heavyTrue / 2) {
		if kv.Key == heavy {
			found = true
			if kv.Count != est {
				t.Errorf("HeavyKeys count %d != Estimate %d", kv.Count, est)
			}
		}
	}
	if !found {
		t.Error("heavy key missing from HeavyKeys")
	}
}

func TestNeverOvercounts(t *testing.T) {
	// HashPipe drops evicted mass; an individual key's aggregate across
	// stages can never exceed its true count.
	h := New(Config{Stages: 3, SlotsPerStage: 64, Seed: 2})
	rng := rand.New(rand.NewSource(3))
	truth := map[uint64]int64{}
	for i := 0; i < 50000; i++ {
		k := uint64(rng.Intn(1000))
		w := int64(1 + rng.Intn(1000))
		h.Update(k, w)
		truth[k] += w
	}
	for k, want := range truth {
		if got := h.Estimate(k); got > want {
			t.Fatalf("key %d overcounted: %d > %d", k, got, want)
		}
	}
	// Conservation: the pipeline can never hold more than the total.
	var held int64
	for _, kv := range h.HeavyKeys(1) {
		held += kv.Count
	}
	if held > h.Total() {
		t.Fatalf("pipeline holds %d > total %d", held, h.Total())
	}
}

func TestDuplicateMergeAcrossStages(t *testing.T) {
	// A key evicted to stage 2 and later re-inserted at stage 1 is split;
	// Estimate must sum the pieces.
	h := New(Config{Stages: 2, SlotsPerStage: 1, Seed: 0}) // everything collides
	h.Update(1, 10)                                        // stage0: (1,10)
	h.Update(2, 5)                                         // stage0: (2,5), (1,10) -> stage1 (empty) stays
	h.Update(1, 3)                                         // stage0: (1,3), (2,5) -> stage1: 5 > ? stage1 holds (1,10): 5<10 -> dropped
	if got := h.Estimate(1); got != 13 {
		t.Errorf("split key estimate = %d, want 13", got)
	}
	if got := h.Estimate(2); got != 0 {
		t.Errorf("dropped key estimate = %d, want 0", got)
	}
}

func TestReset(t *testing.T) {
	h := New(Config{Stages: 2, SlotsPerStage: 8})
	h.Update(1, 100)
	h.Reset()
	if h.Estimate(1) != 0 || h.Total() != 0 {
		t.Error("Reset incomplete")
	}
	if len(h.HeavyKeys(1)) != 0 {
		t.Error("Reset left entries")
	}
}

func BenchmarkUpdate(b *testing.B) {
	h := New(Config{Stages: 4, SlotsPerStage: 4096})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Update(uint64(i)&8191, 1000)
	}
}
