// Package hashpipe implements HashPipe, the d-stage pipeline of hash
// tables from Sivaraman, Narayana, Rottenstreich, Muthukrishnan and
// Rexford, "Heavy-Hitter Detection Entirely in the Data Plane" (SOSR
// 2017) — the paper's reference [5] and its canonical example of a
// match-action-friendly, disjoint-window heavy-hitter algorithm.
//
// Each stage is a hash-indexed array of (key, count) slots. A packet's key
// is always inserted at the first stage, evicting the incumbent, which is
// carried to the next stage; at later stages the carried entry either
// merges with a matching slot, fills an empty one, or swaps with a smaller
// incumbent, with the final loser dropped. Heavy keys therefore settle
// into the pipeline while mice wash through — all with per-stage O(1)
// work and no pointers, which is what makes it implementable in a switch
// pipeline.
//
// In the poster's framing, HashPipe is a *windowed* detector: its tables
// are reset at every measurement-window boundary, so it inherits the
// hidden-HHH blindness quantified by the Figure-2 experiment.
package hashpipe

import (
	"hiddenhhh/internal/hashx"
	"hiddenhhh/internal/sketch"
)

// Config configures a HashPipe instance.
type Config struct {
	// Stages is d, the pipeline depth. Default 4.
	Stages int
	// SlotsPerStage is the table width per stage. Default 1024.
	SlotsPerStage int
	// Seed drives the per-stage hash functions.
	Seed uint64
}

func (c *Config) setDefaults() {
	if c.Stages <= 0 {
		c.Stages = 4
	}
	if c.SlotsPerStage <= 0 {
		c.SlotsPerStage = 1024
	}
}

// HashPipe is a multi-stage heavy-hitter table. The zero value is not
// usable; construct with New. Not safe for concurrent use.
type HashPipe struct {
	stages int
	width  int
	keys   []uint64
	counts []int64 // count 0 marks an empty slot
	fam    *hashx.Family
	total  int64
}

// New builds a HashPipe from cfg.
func New(cfg Config) *HashPipe {
	cfg.setDefaults()
	return &HashPipe{
		stages: cfg.Stages,
		width:  cfg.SlotsPerStage,
		keys:   make([]uint64, cfg.Stages*cfg.SlotsPerStage),
		counts: make([]int64, cfg.Stages*cfg.SlotsPerStage),
		fam:    hashx.NewFamily(cfg.Stages, cfg.Seed),
	}
}

// Update processes one packet with weight w (bytes).
func (h *HashPipe) Update(key uint64, w int64) {
	h.total += w
	// Stage 0: always insert, evicting the incumbent.
	slot := 0*h.width + h.fam.Index(0, key, h.width)
	ck, cc := h.keys[slot], h.counts[slot]
	if cc == 0 || ck == key {
		h.keys[slot] = key
		h.counts[slot] = cc + w
		return
	}
	h.keys[slot] = key
	h.counts[slot] = w
	// Carry the evicted entry down the pipeline.
	carryKey, carryCount := ck, cc
	for s := 1; s < h.stages; s++ {
		slot = s*h.width + h.fam.Index(s, carryKey, h.width)
		sk, sc := h.keys[slot], h.counts[slot]
		switch {
		case sc == 0:
			h.keys[slot] = carryKey
			h.counts[slot] = carryCount
			return
		case sk == carryKey:
			h.counts[slot] = sc + carryCount
			return
		case carryCount > sc:
			// Swap: the heavier entry stays, the lighter carries on.
			h.keys[slot], h.counts[slot] = carryKey, carryCount
			carryKey, carryCount = sk, sc
		}
	}
	// The final carried entry is dropped (its count is lost) — the
	// approximation HashPipe accepts for pipeline feasibility.
}

// Estimate returns the summed count of key across stages. HashPipe can
// both under-count (evicted mass is dropped) and split a key across
// stages; summing collects the splits.
func (h *HashPipe) Estimate(key uint64) int64 {
	var sum int64
	for s := 0; s < h.stages; s++ {
		slot := s*h.width + h.fam.Index(s, key, h.width)
		if h.counts[slot] != 0 && h.keys[slot] == key {
			sum += h.counts[slot]
		}
	}
	return sum
}

// Total returns the total weight seen since the last Reset.
func (h *HashPipe) Total() int64 { return h.total }

// HeavyKeys scans the pipeline and returns keys whose aggregated count
// reaches threshold.
func (h *HashPipe) HeavyKeys(threshold int64) []sketch.KV {
	agg := map[uint64]int64{}
	for i, c := range h.counts {
		if c != 0 {
			agg[h.keys[i]] += c
		}
	}
	var out []sketch.KV
	for k, c := range agg {
		if c >= threshold {
			out = append(out, sketch.KV{Key: k, Count: c})
		}
	}
	return out
}

// SizeBytes returns the table footprint (16 B per slot).
func (h *HashPipe) SizeBytes() int { return len(h.keys) * 16 }

// Reset clears the pipeline — the per-window reset the poster's analysis
// is about.
func (h *HashPipe) Reset() {
	for i := range h.keys {
		h.keys[i] = 0
		h.counts[i] = 0
	}
	h.total = 0
}
