package wire

import (
	"testing"
)

// BenchmarkWireEncodeDecode measures one full seal/restore cycle per
// summary kind — the codec cost an ingest node pays per sealed window
// plus the aggregator's per-frame restore cost. Both run at window (or
// push-cadence) frequency, orders of magnitude below packet rate, so
// these numbers bound cluster overhead rather than hot-path overhead.
func BenchmarkWireEncodeDecode(b *testing.B) {
	b.Run("space-saving", func(b *testing.B) {
		s := testSpaceSaving(1, 300)
		frame := EncodeSpaceSaving(s)
		b.SetBytes(int64(len(frame)))
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := DecodeSpaceSaving(EncodeSpaceSaving(s)); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("exact", func(b *testing.B) {
		h := testHierarchy()
		e := testExact(2, 300)
		frame := EncodeExact(h, e)
		b.SetBytes(int64(len(frame)))
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, _, err := DecodeExact(EncodeExact(h, e)); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("per-level", func(b *testing.B) {
		p := testPerLevel(3)
		frame := EncodePerLevel(p)
		b.SetBytes(int64(len(frame)))
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := DecodePerLevel(EncodePerLevel(p)); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("rhhh", func(b *testing.B) {
		d := testRHHH(4)
		frame := EncodeRHHH(d)
		b.SetBytes(int64(len(frame)))
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := DecodeRHHH(EncodeRHHH(d)); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("sliding", func(b *testing.B) {
		d := testSliding(5)
		frame := EncodeSliding(d)
		b.SetBytes(int64(len(frame)))
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := DecodeSliding(EncodeSliding(d)); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("memento", func(b *testing.B) {
		d := testMemento(6)
		frame := EncodeMemento(d)
		b.SetBytes(int64(len(frame)))
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := DecodeMemento(EncodeMemento(d)); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("tdbf", func(b *testing.B) {
		f := testFilter(7)
		frame, err := EncodeFilter(f)
		if err != nil {
			b.Fatal(err)
		}
		b.SetBytes(int64(len(frame)))
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			frame, err := EncodeFilter(f)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := DecodeFilter(frame); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("continuous", func(b *testing.B) {
		d := testContinuous(b, 8)
		frame, err := EncodeContinuous(d)
		if err != nil {
			b.Fatal(err)
		}
		b.SetBytes(int64(len(frame)))
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			frame, err := EncodeContinuous(d)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := DecodeContinuous(frame); err != nil {
				b.Fatal(err)
			}
		}
	})
}
