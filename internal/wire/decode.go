package wire

import (
	"fmt"
	"math"
	"time"

	"hiddenhhh/internal/addr"
	"hiddenhhh/internal/continuous"
	"hiddenhhh/internal/hhh"
	"hiddenhhh/internal/sketch"
	"hiddenhhh/internal/swhh"
	"hiddenhhh/internal/tdbf"
)

// ExactSummary is the decoded form of a KindExact frame: the exact
// leaf-key map together with the hierarchy it was collected under.
type ExactSummary struct {
	// Hierarchy the leaf keys belong to.
	Hierarchy addr.Hierarchy
	// Leaves holds the exact per-leaf-key counts.
	Leaves *sketch.Exact
}

// Decode parses any frame and returns the decoded summary as one of
// *sketch.SpaceSaving, ExactSummary, *hhh.PerLevel, *hhh.RHHH,
// *swhh.SlidingHHH, *swhh.MementoHHH, *tdbf.Filter or
// *continuous.Detector. It never panics on arbitrary input; failures
// wrap exactly one of the typed errors.
func Decode(frame []byte) (any, error) {
	hdr, payload, err := parseFrame(frame)
	if err != nil {
		return nil, err
	}
	// Each branch assigns through a typed variable and returns it only on
	// success, so a failed decode never leaks a typed nil inside the any.
	var v any
	switch hdr.Kind {
	case KindSpaceSaving:
		v, err = decodeSpaceSavingPayload(payload)
	case KindExact:
		var ex ExactSummary
		ex.Leaves, ex.Hierarchy, err = decodeExactPayload(hdr, payload)
		v = ex
	case KindPerLevel:
		v, err = decodePerLevelPayload(hdr, payload)
	case KindRHHH:
		v, err = decodeRHHHPayload(hdr, payload)
	case KindSliding:
		v, err = decodeSlidingPayload(hdr, payload)
	case KindMemento:
		v, err = decodeMementoPayload(hdr, payload)
	case KindFilter:
		v, err = decodeFilterPayload(payload)
	case KindContinuous:
		v, err = decodeContinuousPayload(hdr, payload)
	default:
		return nil, fmt.Errorf("%w: %d", ErrKind, uint8(hdr.Kind))
	}
	if err != nil {
		return nil, err
	}
	return v, nil
}

// expect parses the frame and verifies it carries the wanted kind.
func expect(frame []byte, want Kind) (Header, []byte, error) {
	hdr, payload, err := parseFrame(frame)
	if err != nil {
		return Header{}, nil, err
	}
	if hdr.Kind != want {
		return Header{}, nil, fmt.Errorf("%w: got %v, want %v", ErrKind, hdr.Kind, want)
	}
	return hdr, payload, nil
}

// decodeSS reads one Space-Saving sub-payload at the cursor and
// restores it, charging the frame's summary and capacity budgets.
func decodeSS(c *cursor) (*sketch.SpaceSaving, error) {
	k := int(c.u32())
	total := c.i64()
	n := c.count(24)
	if !c.ok {
		return nil, fmt.Errorf("%w: short space-saving sub-payload", ErrCorrupt)
	}
	if k < 1 || k > maxCounters {
		return nil, fmt.Errorf("%w: space-saving capacity %d out of budget", ErrCorrupt, k)
	}
	c.summaries++
	c.counters += k
	if c.summaries > maxSummaries || c.counters > maxCountersTotal {
		return nil, fmt.Errorf("%w: per-frame summary budget exceeded", ErrCorrupt)
	}
	if n > k {
		return nil, fmt.Errorf("%w: %d entries exceed declared capacity %d", ErrCorrupt, n, k)
	}
	entries := make([]sketch.KV, n)
	for i := range entries {
		entries[i] = sketch.KV{Key: c.u64(), Count: c.i64(), ErrUB: c.i64()}
	}
	if !c.ok {
		return nil, fmt.Errorf("%w: short space-saving entries", ErrCorrupt)
	}
	s, err := sketch.RestoreSpaceSaving(k, total, entries)
	if err != nil {
		return nil, corrupt(err)
	}
	return s, nil
}

// boundFrame rejects frame-clock values whose distance from any other
// representable clock could overflow or drive an unbounded per-frame
// advance loop. The uninitialised sentinel passes through verbatim.
func boundFrame(v int64) error {
	if v == swhh.FrameUninit {
		return nil
	}
	if v > maxAbsFrame || v < -maxAbsFrame {
		return fmt.Errorf("%w: frame clock %d out of range", ErrCorrupt, v)
	}
	return nil
}

// boundTime rejects timestamps far enough out to overflow decay or
// frame-index arithmetic.
func boundTime(v int64) error {
	if v > maxAbsTime || v < -maxAbsTime {
		return fmt.Errorf("%w: timestamp %d out of range", ErrCorrupt, v)
	}
	return nil
}

// DecodeSpaceSaving decodes a KindSpaceSaving frame.
func DecodeSpaceSaving(frame []byte) (*sketch.SpaceSaving, error) {
	_, payload, err := expect(frame, KindSpaceSaving)
	if err != nil {
		return nil, err
	}
	return decodeSpaceSavingPayload(payload)
}

func decodeSpaceSavingPayload(payload []byte) (*sketch.SpaceSaving, error) {
	c := newCursor(payload)
	s, err := decodeSS(c)
	if err != nil {
		return nil, err
	}
	if err := c.finish(); err != nil {
		return nil, err
	}
	return s, nil
}

// DecodeExact decodes a KindExact frame into the exact leaf map and the
// hierarchy it was collected under.
func DecodeExact(frame []byte) (*sketch.Exact, addr.Hierarchy, error) {
	hdr, payload, err := expect(frame, KindExact)
	if err != nil {
		return nil, addr.Hierarchy{}, err
	}
	return decodeExactPayload(hdr, payload)
}

func decodeExactPayload(hdr Header, payload []byte) (*sketch.Exact, addr.Hierarchy, error) {
	h, err := hdr.Hierarchy()
	if err != nil {
		return nil, addr.Hierarchy{}, err
	}
	c := newCursor(payload)
	n := c.count(16)
	if !c.ok {
		return nil, addr.Hierarchy{}, fmt.Errorf("%w: short exact payload", ErrCorrupt)
	}
	ex := sketch.NewExact(n)
	prev := uint64(0)
	for i := 0; i < n; i++ {
		key := c.u64()
		count := c.i64()
		if !c.ok {
			return nil, addr.Hierarchy{}, fmt.Errorf("%w: short exact entries", ErrCorrupt)
		}
		if i > 0 && key <= prev {
			return nil, addr.Hierarchy{}, fmt.Errorf("%w: exact keys not strictly increasing", ErrCorrupt)
		}
		if count <= 0 {
			return nil, addr.Hierarchy{}, fmt.Errorf("%w: non-positive exact count %d", ErrCorrupt, count)
		}
		prev = key
		ex.Update(key, count)
	}
	if err := c.finish(); err != nil {
		return nil, addr.Hierarchy{}, err
	}
	return ex, h, nil
}

// DecodePerLevel decodes a KindPerLevel frame.
func DecodePerLevel(frame []byte) (*hhh.PerLevel, error) {
	hdr, payload, err := expect(frame, KindPerLevel)
	if err != nil {
		return nil, err
	}
	return decodePerLevelPayload(hdr, payload)
}

func decodePerLevelPayload(hdr Header, payload []byte) (*hhh.PerLevel, error) {
	h, err := hdr.Hierarchy()
	if err != nil {
		return nil, err
	}
	c := newCursor(payload)
	total := c.i64()
	levels := int(c.u16())
	if !c.ok {
		return nil, fmt.Errorf("%w: short per-level payload", ErrCorrupt)
	}
	if levels != h.Levels() {
		return nil, fmt.Errorf("%w: %d level summaries for %d-level hierarchy", ErrCorrupt, levels, h.Levels())
	}
	sks := make([]*sketch.SpaceSaving, levels)
	for l := range sks {
		if sks[l], err = decodeSS(c); err != nil {
			return nil, err
		}
	}
	if err := c.finish(); err != nil {
		return nil, err
	}
	p, err := hhh.RestorePerLevel(h, total, sks)
	if err != nil {
		return nil, corrupt(err)
	}
	return p, nil
}

// DecodeRHHH decodes a KindRHHH frame.
func DecodeRHHH(frame []byte) (*hhh.RHHH, error) {
	hdr, payload, err := expect(frame, KindRHHH)
	if err != nil {
		return nil, err
	}
	return decodeRHHHPayload(hdr, payload)
}

func decodeRHHHPayload(hdr Header, payload []byte) (*hhh.RHHH, error) {
	h, err := hdr.Hierarchy()
	if err != nil {
		return nil, err
	}
	c := newCursor(payload)
	total := c.i64()
	updates := c.i64()
	sampler := c.u64()
	levels := int(c.u16())
	if !c.ok {
		return nil, fmt.Errorf("%w: short rhhh payload", ErrCorrupt)
	}
	if levels != h.Levels() {
		return nil, fmt.Errorf("%w: %d level summaries for %d-level hierarchy", ErrCorrupt, levels, h.Levels())
	}
	sks := make([]*sketch.SpaceSaving, levels)
	for l := range sks {
		if sks[l], err = decodeSS(c); err != nil {
			return nil, err
		}
	}
	if err := c.finish(); err != nil {
		return nil, err
	}
	r, err := hhh.RestoreRHHH(h, total, updates, sampler, sks)
	if err != nil {
		return nil, corrupt(err)
	}
	return r, nil
}

// slidingGeometry reads and validates the shared sliding-engine
// geometry prefix (window, frame count, counters per frame).
func slidingGeometry(c *cursor) (window time.Duration, frames, counters int, err error) {
	windowNs := c.i64()
	frames = int(c.u16())
	counters = int(c.u32())
	if !c.ok {
		return 0, 0, 0, fmt.Errorf("%w: short sliding geometry", ErrCorrupt)
	}
	if windowNs <= 0 || windowNs > maxAbsTime {
		return 0, 0, 0, fmt.Errorf("%w: window %dns out of range", ErrCorrupt, windowNs)
	}
	if frames < 1 || frames+1 > maxRing {
		return 0, 0, 0, fmt.Errorf("%w: ring of %d frames out of budget", ErrCorrupt, frames)
	}
	if counters < 1 || counters > maxCounters {
		return 0, 0, 0, fmt.Errorf("%w: %d counters out of budget", ErrCorrupt, counters)
	}
	return time.Duration(windowNs), frames, counters, nil
}

// DecodeSliding decodes a KindSliding frame.
func DecodeSliding(frame []byte) (*swhh.SlidingHHH, error) {
	hdr, payload, err := expect(frame, KindSliding)
	if err != nil {
		return nil, err
	}
	return decodeSlidingPayload(hdr, payload)
}

func decodeSlidingPayload(hdr Header, payload []byte) (*swhh.SlidingHHH, error) {
	h, err := hdr.Hierarchy()
	if err != nil {
		return nil, err
	}
	c := newCursor(payload)
	window, frames, counters, err := slidingGeometry(c)
	if err != nil {
		return nil, err
	}
	levels := int(c.u16())
	if !c.ok {
		return nil, fmt.Errorf("%w: short sliding payload", ErrCorrupt)
	}
	if levels != h.Levels() {
		return nil, fmt.Errorf("%w: %d level summaries for %d-level hierarchy", ErrCorrupt, levels, h.Levels())
	}
	cfg := swhh.Config{Window: window, Frames: frames, Counters: counters}
	ring := frames + 1
	lvls := make([]*swhh.Sliding, levels)
	for l := range lvls {
		st := swhh.SlidingState{
			CurFrame: c.i64(),
			Frames:   make([]*sketch.SpaceSaving, ring),
			Totals:   make([]int64, ring),
		}
		if err := boundFrame(st.CurFrame); err != nil {
			return nil, err
		}
		for i := 0; i < ring; i++ {
			st.Totals[i] = c.i64()
			if st.Frames[i], err = decodeSS(c); err != nil {
				return nil, err
			}
		}
		s, err := swhh.RestoreSliding(cfg, st)
		if err != nil {
			return nil, corrupt(err)
		}
		lvls[l] = s
	}
	if err := c.finish(); err != nil {
		return nil, err
	}
	d, err := swhh.RestoreSlidingHHH(h, lvls)
	if err != nil {
		return nil, corrupt(err)
	}
	return d, nil
}

// DecodeMemento decodes a KindMemento frame.
func DecodeMemento(frame []byte) (*swhh.MementoHHH, error) {
	hdr, payload, err := expect(frame, KindMemento)
	if err != nil {
		return nil, err
	}
	return decodeMementoPayload(hdr, payload)
}

func decodeMementoPayload(hdr Header, payload []byte) (*swhh.MementoHHH, error) {
	h, err := hdr.Hierarchy()
	if err != nil {
		return nil, err
	}
	c := newCursor(payload)
	window, frames, counters, err := slidingGeometry(c)
	if err != nil {
		return nil, err
	}
	ring := frames + 1
	sampler := c.u64()
	wrapFrame := c.i64()
	if !c.ok {
		return nil, fmt.Errorf("%w: short memento payload", ErrCorrupt)
	}
	if err := boundFrame(wrapFrame); err != nil {
		return nil, err
	}
	wrapTotals := make([]int64, ring)
	for i := range wrapTotals {
		wrapTotals[i] = c.i64()
	}
	levels := int(c.u16())
	if !c.ok {
		return nil, fmt.Errorf("%w: short memento payload", ErrCorrupt)
	}
	if levels != h.Levels() {
		return nil, fmt.Errorf("%w: %d level tables for %d-level hierarchy", ErrCorrupt, levels, h.Levels())
	}
	// The aged tables allocate capacity × ring cells per level regardless
	// of how many entries the payload materialises; charge that against
	// the matrix budget before any table is built.
	c.mementoCells += counters * ring * levels
	if c.mementoCells > maxMementoCells {
		return nil, fmt.Errorf("%w: memento cell budget exceeded", ErrCorrupt)
	}
	cfg := swhh.Config{Window: window, Frames: frames, Counters: counters}
	lvls := make([]*swhh.Memento, levels)
	for l := range lvls {
		curFrame := c.i64()
		cursorPos := int(c.u32())
		n := int(c.u32())
		if !c.ok {
			return nil, fmt.Errorf("%w: short memento level header", ErrCorrupt)
		}
		if err := boundFrame(curFrame); err != nil {
			return nil, err
		}
		if n > counters {
			return nil, fmt.Errorf("%w: %d entries exceed table capacity %d", ErrCorrupt, n, counters)
		}
		st := swhh.MementoState{
			CurFrame: curFrame,
			Cursor:   cursorPos,
			Keys:     make([]uint64, n),
			Counts:   make([]int64, n),
			Errs:     make([]int64, n),
			Cells:    make([]int64, n*ring),
			Totals:   make([]int64, ring),
		}
		for i := range st.Totals {
			st.Totals[i] = c.i64()
		}
		for e := 0; e < n; e++ {
			st.Keys[e] = c.u64()
			st.Counts[e] = c.i64()
			st.Errs[e] = c.i64()
		}
		for i := range st.Cells {
			st.Cells[i] = c.i64()
		}
		if !c.ok {
			return nil, fmt.Errorf("%w: short memento level payload", ErrCorrupt)
		}
		m, err := swhh.RestoreMemento(cfg, st)
		if err != nil {
			return nil, corrupt(err)
		}
		lvls[l] = m
	}
	if err := c.finish(); err != nil {
		return nil, err
	}
	d, err := swhh.RestoreMementoHHH(h, cfg, swhh.MementoHHHState{
		Sampler:  sampler,
		CurFrame: wrapFrame,
		Totals:   wrapTotals,
		Levels:   lvls,
	})
	if err != nil {
		return nil, corrupt(err)
	}
	return d, nil
}

// readDecay reads the tagged decay-law descriptor.
func readDecay(c *cursor) (tdbf.Decay, error) {
	tag := c.u8()
	if !c.ok {
		return nil, fmt.Errorf("%w: short decay descriptor", ErrCorrupt)
	}
	switch tag {
	case decayExponential:
		tau := c.i64()
		if !c.ok {
			return nil, fmt.Errorf("%w: short decay descriptor", ErrCorrupt)
		}
		if tau <= 0 || tau > maxAbsTime {
			return nil, fmt.Errorf("%w: exponential tau %dns out of range", ErrCorrupt, tau)
		}
		return tdbf.Exponential{Tau: time.Duration(tau)}, nil
	case decayLeaky:
		rate := c.f64()
		if !c.ok {
			return nil, fmt.Errorf("%w: short decay descriptor", ErrCorrupt)
		}
		if math.IsNaN(rate) || math.IsInf(rate, 0) || rate < 0 {
			return nil, fmt.Errorf("%w: leaky rate %v out of range", ErrCorrupt, rate)
		}
		return tdbf.LeakyLinear{Rate: rate}, nil
	default:
		return nil, fmt.Errorf("%w: unknown decay tag %d", ErrCorrupt, tag)
	}
}

// filterColumns reads cells × (mass, touch) pairs into a FilterState.
func filterColumns(c *cursor, st *tdbf.FilterState) error {
	st.V = make([]float64, st.Cells)
	st.Touch = make([]int64, st.Cells)
	for i := 0; i < st.Cells; i++ {
		st.V[i] = c.f64()
		st.Touch[i] = c.i64()
		if err := boundTime(st.Touch[i]); err != nil {
			return err
		}
	}
	if !c.ok {
		return fmt.Errorf("%w: short filter cells", ErrCorrupt)
	}
	return nil
}

// DecodeFilter decodes a KindFilter frame.
func DecodeFilter(frame []byte) (*tdbf.Filter, error) {
	_, payload, err := expect(frame, KindFilter)
	if err != nil {
		return nil, err
	}
	return decodeFilterPayload(payload)
}

func decodeFilterPayload(payload []byte) (*tdbf.Filter, error) {
	c := newCursor(payload)
	d, err := readDecay(c)
	if err != nil {
		return nil, err
	}
	st := tdbf.FilterState{
		Cells:  int(c.u32()),
		Hashes: int(c.u16()),
		Seed:   c.u64(),
		Adds:   c.i64(),
	}
	if !c.ok {
		return nil, fmt.Errorf("%w: short filter header", ErrCorrupt)
	}
	// Filter cells are fully materialised at 16 bytes each, so payload
	// proportionality is the budget.
	if st.Cells < 1 || int64(st.Cells)*16 > int64(c.remaining()) {
		return nil, fmt.Errorf("%w: %d filter cells exceed payload", ErrCorrupt, st.Cells)
	}
	if err := filterColumns(c, &st); err != nil {
		return nil, err
	}
	if err := c.finish(); err != nil {
		return nil, err
	}
	f, err := tdbf.RestoreFilter(d, st)
	if err != nil {
		return nil, corrupt(err)
	}
	return f, nil
}

// DecodeContinuous decodes a KindContinuous frame.
func DecodeContinuous(frame []byte) (*continuous.Detector, error) {
	hdr, payload, err := expect(frame, KindContinuous)
	if err != nil {
		return nil, err
	}
	return decodeContinuousPayload(hdr, payload)
}

func decodeContinuousPayload(hdr Header, payload []byte) (*continuous.Detector, error) {
	h, err := hdr.Hierarchy()
	if err != nil {
		return nil, err
	}
	c := newCursor(payload)
	phi := c.f64()
	exitRatio := c.f64()
	cflags := c.u8()
	cfgSeed := c.u64()
	warmupNs := c.i64()
	sampler := c.u64()
	if !c.ok {
		return nil, fmt.Errorf("%w: short continuous header", ErrCorrupt)
	}
	// NaN fails every comparison, so these range checks reject it too —
	// NewDetector's own validation would let NaN through.
	if !(phi > 0 && phi <= 1) {
		return nil, fmt.Errorf("%w: phi %v out of (0,1]", ErrCorrupt, phi)
	}
	if !(exitRatio > 0 && exitRatio <= 1) {
		return nil, fmt.Errorf("%w: exit ratio %v out of (0,1]", ErrCorrupt, exitRatio)
	}
	if cflags&^byte(3) != 0 {
		return nil, fmt.Errorf("%w: unknown continuous flags %#x", ErrCorrupt, cflags)
	}
	if warmupNs <= 0 || warmupNs > maxAbsTime {
		return nil, fmt.Errorf("%w: warmup %dns out of range", ErrCorrupt, warmupNs)
	}
	decay, err := readDecay(c)
	if err != nil {
		return nil, err
	}
	fcells := int(c.u32())
	fhashes := int(c.u16())
	warmEnd := c.i64()
	pkts := c.i64()
	totalV := c.f64()
	totalTouch := c.i64()
	if !c.ok {
		return nil, fmt.Errorf("%w: short continuous header", ErrCorrupt)
	}
	if fhashes < 1 {
		return nil, fmt.Errorf("%w: %d filter hashes", ErrCorrupt, fhashes)
	}
	if err := boundTime(warmEnd); err != nil {
		return nil, err
	}
	if err := boundTime(totalTouch); err != nil {
		return nil, err
	}
	// The per-level filters materialise fcells cells each for Levels()
	// levels; the whole matrix must be backed by remaining payload.
	levels := h.Levels()
	if fcells < 1 || int64(fcells)*int64(levels)*16 > int64(len(payload)) {
		return nil, fmt.Errorf("%w: %d filter cells × %d levels exceed payload", ErrCorrupt, fcells, levels)
	}

	nActive := c.count(18)
	if !c.ok {
		return nil, fmt.Errorf("%w: short active set", ErrCorrupt)
	}
	active := make([]continuous.ActiveEntry, nActive)
	prevLevel, prevKey := -1, uint64(0)
	for i := range active {
		key := c.u64()
		level := int(c.u16())
		at := c.i64()
		if !c.ok {
			return nil, fmt.Errorf("%w: short active set", ErrCorrupt)
		}
		if level >= levels {
			return nil, fmt.Errorf("%w: active level %d beyond hierarchy depth", ErrCorrupt, level)
		}
		if key&^h.KeyMask(level) != 0 {
			return nil, fmt.Errorf("%w: active key %#x has bits below level %d", ErrCorrupt, key, level)
		}
		if level < prevLevel || (level == prevLevel && key <= prevKey) {
			return nil, fmt.Errorf("%w: active set not sorted by (level, key)", ErrCorrupt)
		}
		if err := boundTime(at); err != nil {
			return nil, err
		}
		prevLevel, prevKey = level, key
		active[i] = continuous.ActiveEntry{Prefix: h.PrefixOfKey(key, level), At: at}
	}

	nf := int(c.u16())
	if !c.ok {
		return nil, fmt.Errorf("%w: short filter section", ErrCorrupt)
	}
	if nf != levels {
		return nil, fmt.Errorf("%w: %d filters for %d-level hierarchy", ErrCorrupt, nf, levels)
	}
	filters := make([]*tdbf.Filter, nf)
	for l := range filters {
		st := tdbf.FilterState{
			Cells:  fcells,
			Hashes: fhashes,
			Seed:   c.u64(),
			Adds:   c.i64(),
		}
		if !c.ok {
			return nil, fmt.Errorf("%w: short filter section", ErrCorrupt)
		}
		if err := filterColumns(c, &st); err != nil {
			return nil, err
		}
		f, err := tdbf.RestoreFilter(decay, st)
		if err != nil {
			return nil, corrupt(err)
		}
		filters[l] = f
	}
	if err := c.finish(); err != nil {
		return nil, err
	}

	cfg := continuous.Config{
		Hierarchy: h,
		Phi:       phi,
		Filter:    tdbf.Config{Cells: fcells, Hashes: fhashes, Decay: decay},
		ExitRatio: exitRatio,
		Warmup:    time.Duration(warmupNs),
		Sampled:   cflags&1 != 0,
		Seed:      cfgSeed,
	}
	d, err := continuous.Restore(cfg, sampler, continuous.State{
		Started: cflags&2 != 0,
		WarmEnd: warmEnd,
		Packets: pkts,
		Total:   tdbf.MassState{V: totalV, Touch: totalTouch},
		Active:  active,
		Filters: filters,
	})
	if err != nil {
		return nil, corrupt(err)
	}
	return d, nil
}
