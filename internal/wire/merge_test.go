package wire

import (
	"slices"
	"testing"
	"time"

	"hiddenhhh/internal/addr"
	"hiddenhhh/internal/continuous"
	"hiddenhhh/internal/hhh"
	"hiddenhhh/internal/sketch"
	"hiddenhhh/internal/swhh"
	"hiddenhhh/internal/tdbf"
)

// The aggregator's core claim: merging summaries that took a round trip
// through the wire gives exactly the state an in-process K-shard merge
// would have produced. Fixture builders are deterministic, so building
// the same fleet twice yields independent but identical engines — one
// fleet merges in-process, the other goes through Encode/Decode first —
// and the canonical encodings of the two merge results must match byte
// for byte. That is stronger than query equality and holds for every
// engine, approximate ones included, because decode restores the exact
// internal state Merge operates on.

const mergeShards = 3

func shardSeeds(base uint64) []uint64 {
	seeds := make([]uint64, mergeShards)
	for i := range seeds {
		seeds[i] = base + uint64(i)*101
	}
	return seeds
}

// mergeEquivalence drives one engine family through both merge paths.
// build must be deterministic in its seed; enc canonically encodes;
// merge folds the second engine into the first; dec decodes a frame.
func mergeEquivalence[T any](
	t *testing.T,
	build func(seed uint64) T,
	enc func(T) []byte,
	merge func(dst, src T),
	dec func(frame []byte) T,
) {
	t.Helper()
	seeds := shardSeeds(0xbeef)

	inProc := build(seeds[0])
	for _, s := range seeds[1:] {
		merge(inProc, build(s))
	}

	viaWire := dec(enc(build(seeds[0])))
	for _, s := range seeds[1:] {
		viaWire = func() T {
			merge(viaWire, dec(enc(build(s))))
			return viaWire
		}()
	}

	if !slices.Equal(enc(inProc), enc(viaWire)) {
		t.Fatal("wire-round-tripped merge differs from in-process merge")
	}
}

func mustDecode[T any](t *testing.T, f func([]byte) (T, error)) func([]byte) T {
	return func(frame []byte) T {
		v, err := f(frame)
		if err != nil {
			t.Fatalf("decode: %v", err)
		}
		return v
	}
}

func TestMergeEquivalence(t *testing.T) {
	t.Run("space-saving", func(t *testing.T) {
		mergeEquivalence(t,
			func(seed uint64) *sketch.SpaceSaving { return testSpaceSaving(seed, 300) },
			EncodeSpaceSaving,
			func(dst, src *sketch.SpaceSaving) { dst.Merge(src) },
			mustDecode(t, DecodeSpaceSaving),
		)
	})
	t.Run("exact", func(t *testing.T) {
		h := testHierarchy()
		mergeEquivalence(t,
			func(seed uint64) *sketch.Exact { return testExact(seed, 300) },
			func(e *sketch.Exact) []byte { return EncodeExact(h, e) },
			func(dst, src *sketch.Exact) { dst.AddAll(src) },
			func(frame []byte) *sketch.Exact {
				e, gh, err := DecodeExact(frame)
				if err != nil {
					t.Fatalf("decode: %v", err)
				}
				if gh != h {
					t.Fatalf("hierarchy %v != %v", gh, h)
				}
				return e
			},
		)
	})
	for _, h := range []addr.Hierarchy{testHierarchy(), testHierarchyV6()} {
		h := h
		name := "v4"
		if h.Family() == addr.V6 {
			name = "v6"
		}
		t.Run("per-level-"+name, func(t *testing.T) {
			mergeEquivalence(t,
				func(seed uint64) *hhh.PerLevel { return testPerLevelH(h, seed) },
				EncodePerLevel,
				func(dst, src *hhh.PerLevel) { dst.Merge(src) },
				mustDecode(t, DecodePerLevel),
			)
		})
		t.Run("rhhh-"+name, func(t *testing.T) {
			mergeEquivalence(t,
				func(seed uint64) *hhh.RHHH { return testRHHHH(h, seed) },
				EncodeRHHH,
				func(dst, src *hhh.RHHH) { dst.Merge(src) },
				mustDecode(t, DecodeRHHH),
			)
		})
		t.Run("sliding-"+name, func(t *testing.T) {
			mergeEquivalence(t,
				func(seed uint64) *swhh.SlidingHHH { return testSlidingH(h, seed) },
				EncodeSliding,
				func(dst, src *swhh.SlidingHHH) { dst.Merge(src) },
				mustDecode(t, DecodeSliding),
			)
		})
		t.Run("memento-"+name, func(t *testing.T) {
			mergeEquivalence(t,
				func(seed uint64) *swhh.MementoHHH { return testMementoH(h, seed) },
				EncodeMemento,
				func(dst, src *swhh.MementoHHH) { dst.Merge(src) },
				mustDecode(t, DecodeMemento),
			)
		})
		t.Run("continuous-"+name, func(t *testing.T) {
			// Cluster nodes share one config (so per-level filter seeds
			// match, a Merge precondition); only the traffic differs.
			mergeEquivalence(t,
				func(seed uint64) *continuous.Detector {
					d, err := continuous.NewDetector(continuousTestConfig(h, 0x99))
					if err != nil {
						t.Fatalf("NewDetector: %v", err)
					}
					r := splitmix(seed)
					now := int64(0)
					for i := 0; i < 2000; i++ {
						now += int64(r.next() % uint64(2*time.Millisecond))
						d.Observe(addrFor(h, &r), int64(1+r.next()%9), now)
					}
					return d
				},
				func(d *continuous.Detector) []byte {
					frame, err := EncodeContinuous(d)
					if err != nil {
						t.Fatalf("encode: %v", err)
					}
					return frame
				},
				func(dst, src *continuous.Detector) { dst.Merge(src) },
				mustDecode(t, DecodeContinuous),
			)
		})
	}
	t.Run("tdbf", func(t *testing.T) {
		mergeEquivalence(t,
			func(seed uint64) *tdbf.Filter {
				f := tdbf.New(tdbf.Config{Cells: 256, Hashes: 3, Seed: 0x99, Decay: tdbf.Exponential{Tau: time.Second}})
				r := splitmix(seed)
				now := int64(0)
				for i := 0; i < 200; i++ {
					now += int64(r.next() % uint64(3*time.Millisecond))
					f.Add(r.next()%100, float64(1+r.next()%9), now)
				}
				return f
			},
			func(f *tdbf.Filter) []byte {
				frame, err := EncodeFilter(f)
				if err != nil {
					t.Fatalf("encode: %v", err)
				}
				return frame
			},
			func(dst, src *tdbf.Filter) { dst.Merge(src) },
			mustDecode(t, DecodeFilter),
		)
	})
}

// TestMergedQueryMatchesUnsharded pins the telescoping Space-Saving
// merge bound end to end: hash-partitioning a stream across shards,
// shipping each shard summary over the wire, and merging at the
// aggregator must report every prefix an unsharded run reports.
func TestMergedQueryMatchesUnsharded(t *testing.T) {
	h := testHierarchy()
	whole := hhh.NewPerLevel(h, 256)
	shards := make([]*hhh.PerLevel, mergeShards)
	for i := range shards {
		shards[i] = hhh.NewPerLevel(h, 256)
	}
	r := splitmix(0xfeed)
	for i := 0; i < 3000; i++ {
		a := addrFor(h, &r)
		w := int64(1 + r.next()%9)
		whole.Update(a, w)
		shards[(a.Lo()^a.Hi())%mergeShards].Update(a, w)
	}
	merged := mustDecode(t, DecodePerLevel)(EncodePerLevel(shards[0]))
	for _, s := range shards[1:] {
		merged.Merge(mustDecode(t, DecodePerLevel)(EncodePerLevel(s)))
	}
	want := whole.QueryFraction(0.05)
	got := merged.QueryFraction(0.05)
	for _, p := range want.Prefixes() {
		if _, ok := got[p]; !ok {
			t.Fatalf("prefix %v reported unsharded but missing after wire-merged shards", p)
		}
	}
	if merged.Total() != whole.Total() {
		t.Fatalf("merged total %d != unsharded total %d", merged.Total(), whole.Total())
	}
}
