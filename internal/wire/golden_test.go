package wire

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"hiddenhhh/internal/addr"
)

// updateGolden regenerates the committed wire vectors instead of
// comparing against them. Run `go test ./internal/wire -update` ONLY
// when a deliberate format change ships with a version bump — these
// fixtures are the back-compat tripwire for wire version 1.
var updateGolden = flag.Bool("update", false, "rewrite golden wire vectors")

// goldenFixtures enumerates one fixed-seed summary per kind and
// hierarchy family. Seeds are disjoint from the round-trip tests so a
// fixture never aliases another test's state.
func goldenFixtures(t *testing.T) []struct {
	name  string
	frame []byte
} {
	v4, v6 := testHierarchy(), testHierarchyV6()
	filterFrame, err := EncodeFilter(testFilter(0x70))
	if err != nil {
		t.Fatalf("encode filter: %v", err)
	}
	contV4, err := EncodeContinuous(testContinuousH(t, v4, 0x80))
	if err != nil {
		t.Fatalf("encode continuous v4: %v", err)
	}
	contV6, err := EncodeContinuous(testContinuousH(t, v6, 0x81))
	if err != nil {
		t.Fatalf("encode continuous v6: %v", err)
	}
	return []struct {
		name  string
		frame []byte
	}{
		{"space-saving", EncodeSpaceSaving(testSpaceSaving(0x10, 300))},
		{"exact-v4", EncodeExact(v4, testExact(0x20, 300))},
		{"exact-v6", EncodeExact(v6, testExact(0x21, 300))},
		{"per-level-v4", EncodePerLevel(testPerLevelH(v4, 0x30))},
		{"per-level-v6", EncodePerLevel(testPerLevelH(v6, 0x31))},
		{"rhhh-v4", EncodeRHHH(testRHHHH(v4, 0x40))},
		{"rhhh-v6", EncodeRHHH(testRHHHH(v6, 0x41))},
		{"sliding-v4", EncodeSliding(testSlidingH(v4, 0x50))},
		{"sliding-v6", EncodeSliding(testSlidingH(v6, 0x51))},
		{"memento-v4", EncodeMemento(testMementoH(v4, 0x60))},
		{"memento-v6", EncodeMemento(testMementoH(v6, 0x61))},
		{"tdbf", filterFrame},
		{"continuous-v4", contV4},
		{"continuous-v6", contV6},
	}
}

// TestGoldenVectors is the wire-format back-compat tripwire: encoding
// the fixed-seed fixtures must reproduce the committed v1 bytes
// exactly, and the committed bytes must still decode. If this fails you
// changed the wire format — that requires a version bump and new
// vectors, not a quiet regeneration.
func TestGoldenVectors(t *testing.T) {
	for _, fx := range goldenFixtures(t) {
		t.Run(fx.name, func(t *testing.T) {
			path := filepath.Join("testdata", fx.name+".wire")
			if *updateGolden {
				if err := os.WriteFile(path, fx.frame, 0o644); err != nil {
					t.Fatalf("write golden: %v", err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("read golden (regenerate with -update after a deliberate format change): %v", err)
			}
			if !bytes.Equal(fx.frame, want) {
				t.Fatalf("encoding of %s no longer matches the committed v1 vector (%d vs %d bytes).\n"+
					"The wire format changed: bump wire.Version and regenerate vectors with -update.",
					fx.name, len(fx.frame), len(want))
			}
			if _, err := Decode(want); err != nil {
				t.Fatalf("committed vector no longer decodes: %v", err)
			}
		})
	}
}

// TestGoldenHierarchies pins the descriptor bytes for both families.
func TestGoldenHierarchies(t *testing.T) {
	cases := []struct {
		h                addr.Hierarchy
		fam, step, depth byte
	}{
		{testHierarchy(), 4, 8, 32},
		{testHierarchyV6(), 6, 16, 64},
	}
	for _, tc := range cases {
		fam, step, depth := describe(tc.h)
		if fam != tc.fam || step != tc.step || depth != tc.depth {
			t.Fatalf("describe(%v) = (%d,%d,%d), want (%d,%d,%d)",
				tc.h, fam, step, depth, tc.fam, tc.step, tc.depth)
		}
		rt, err := Header{Version: Version, Family: fam, Step: step, Depth: depth}.Hierarchy()
		if err != nil {
			t.Fatalf("Hierarchy(): %v", err)
		}
		if rt != tc.h {
			t.Fatalf("descriptor round-trip %v != %v", rt, tc.h)
		}
	}
}
