// Package wire is the stable, versioned binary codec for every
// mergeable summary the pipeline can produce: Space-Saving, exact leaf
// maps, the PerLevel and RHHH windowed HHH engines, the WCSS Sliding and
// Memento sliding engines, time-decaying Bloom filters, and the
// continuous detector. It is the cluster mode's interchange format —
// ingest nodes seal merged shard summaries into frames and ship them to
// an aggregator, which restores them and merges via the existing Merge
// contracts.
//
// # Frame layout (version 1)
//
// Everything is little-endian. A frame is:
//
//	offset  size  field
//	0       4     magic "hhwf"
//	4       2     format version (1)
//	6       1     summary kind (Kind)
//	7       1     flags (0 in v1; nonzero rejected)
//	8       1     hierarchy family: 0 none, 4 IPv4, 6 IPv6
//	9       1     hierarchy granularity step, bits per level (0 when none)
//	10      1     hierarchy depth, family-relative bits (0 when none)
//	11      1     reserved (0)
//	12      4     payload length N
//	16      N     kind-specific payload
//	16+N    4     CRC-32 (IEEE) over bytes [0, 16+N)
//
// The hierarchy descriptor is reconstructible because addr hierarchies
// are fully determined by (family, step, depth); kinds without a
// hierarchy (bare Space-Saving summaries and TDBF filters) carry family
// 0. A frame is self-contained: no state is shared between frames, and
// re-encoding a decoded summary yields a semantically identical summary
// (byte-identical query results), which is what the aggregator relies
// on.
//
// # Versioning policy
//
// The version field gates the whole layout: decoders reject any version
// they do not know (ErrVersion) and any flag bit they do not understand,
// so old readers fail loudly on new frames instead of misparsing them.
// Additions go into new kinds or a version bump, never into silent
// payload extensions — golden-vector tests pin the v1 bytes.
//
// # Robustness
//
// Decode never panics on arbitrary bytes: unknown versions, kinds and
// malformed hierarchy descriptors return typed errors (ErrVersion,
// ErrKind, ErrHierarchy), short frames return ErrTruncated, checksum
// failures ErrCRC, and structurally invalid payloads ErrCorrupt.
// Allocation is guarded against attacker-declared lengths: element
// counts are validated against the actual remaining payload before any
// slice is sized from them, and capacity-type fields that legitimately
// exceed the payload (Space-Saving capacities, Memento tables) are
// checked against documented hard budgets (maxCounters and friends)
// before construction.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math"

	"hiddenhhh/internal/addr"
)

// Version is the wire-format version this package reads and writes.
const Version = 1

// magic opens every frame.
const magic = "hhwf"

const (
	headerSize = 16
	crcSize    = 4
)

// Kind identifies the summary type a frame carries.
type Kind uint8

// Frame kinds. The numeric values are wire format, fixed forever.
const (
	// KindSpaceSaving is a bare Space-Saving summary (no hierarchy).
	KindSpaceSaving Kind = 1
	// KindExact is an exact leaf-key map plus its hierarchy.
	KindExact Kind = 2
	// KindPerLevel is the per-level Space-Saving HHH engine.
	KindPerLevel Kind = 3
	// KindRHHH is the randomised one-level-per-packet HHH engine.
	KindRHHH Kind = 4
	// KindSliding is the WCSS frame-ring sliding HHH engine.
	KindSliding Kind = 5
	// KindMemento is the level-sampled Memento sliding HHH engine.
	KindMemento Kind = 6
	// KindFilter is a bare time-decaying Bloom filter (no hierarchy).
	KindFilter Kind = 7
	// KindContinuous is the TDBF-backed continuous HHH detector.
	KindContinuous Kind = 8
)

// String names the kind for labels and reports.
func (k Kind) String() string {
	switch k {
	case KindSpaceSaving:
		return "space-saving"
	case KindExact:
		return "exact"
	case KindPerLevel:
		return "per-level"
	case KindRHHH:
		return "rhhh"
	case KindSliding:
		return "sliding"
	case KindMemento:
		return "memento"
	case KindFilter:
		return "tdbf"
	case KindContinuous:
		return "continuous"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Typed decode errors. Every Decode failure wraps exactly one of these,
// so callers can classify with errors.Is.
var (
	// ErrBadMagic means the frame does not open with the wire magic.
	ErrBadMagic = errors.New("wire: bad magic")
	// ErrVersion means the frame declares a version or flag this decoder
	// does not understand.
	ErrVersion = errors.New("wire: unsupported version")
	// ErrKind means the frame declares an unknown or unexpected kind.
	ErrKind = errors.New("wire: unknown summary kind")
	// ErrTruncated means the frame is shorter than its declared layout.
	ErrTruncated = errors.New("wire: truncated frame")
	// ErrCRC means the frame checksum does not match its contents.
	ErrCRC = errors.New("wire: checksum mismatch")
	// ErrHierarchy means the hierarchy descriptor is malformed.
	ErrHierarchy = errors.New("wire: invalid hierarchy descriptor")
	// ErrHierarchyMismatch means a frame's hierarchy differs from the
	// one the caller requires (the aggregator's alignment check).
	ErrHierarchyMismatch = errors.New("wire: hierarchy mismatch")
	// ErrCorrupt means the payload is structurally invalid: impossible
	// counts, broken invariants, or bytes left over after decoding.
	ErrCorrupt = errors.New("wire: corrupt payload")
)

// Decode allocation budgets. Capacity-type fields are not materialised
// in the payload (an empty Space-Saving summary of capacity k encodes in
// 16 bytes but allocates O(k)), so the decoder enforces hard caps
// instead of payload proportionality for them. The budgets comfortably
// cover every configuration the pipeline can produce; frames declaring
// more are rejected with ErrCorrupt.
const (
	// maxCounters caps one Space-Saving capacity or Memento table size.
	maxCounters = 1 << 20
	// maxSummaries caps the Space-Saving instances one frame may carry
	// (levels × ring slots for the sliding engine).
	maxSummaries = 1 << 12
	// maxCountersTotal caps the summed Space-Saving capacity per frame.
	maxCountersTotal = 1 << 21
	// maxMementoCells caps the summed Memento frame-cell matrix size
	// (capacity × ring, summed over levels) per frame.
	maxMementoCells = 1 << 25
	// maxRing caps the sliding ring length (Frames+1).
	maxRing = 1 << 10
	// maxAbsFrame bounds |frame clock| so that frame-index arithmetic in
	// Merge/advance cannot overflow into an unbounded per-frame loop.
	maxAbsFrame = int64(1) << 62
	// maxAbsTime bounds |timestamps| for the same reason.
	maxAbsTime = int64(1) << 62
)

// Header is the parsed fixed-size frame header.
type Header struct {
	// Version is the declared format version (always 1 once parsed).
	Version uint16
	// Kind is the summary kind the payload carries.
	Kind Kind
	// Family is the hierarchy family byte: 0 none, 4 IPv4, 6 IPv6.
	Family byte
	// Step is the hierarchy granularity in bits per level (0 when none).
	Step byte
	// Depth is the family-relative hierarchy depth in bits (0 when none).
	Depth byte
}

// Hierarchy reconstructs the addr.Hierarchy the header describes,
// validating the descriptor instead of panicking on malformed input.
// Frames without a hierarchy (Family 0) return ErrHierarchy.
func (h Header) Hierarchy() (addr.Hierarchy, error) {
	switch h.Family {
	case 4:
		if h.Step == 0 || h.Depth != 32 || 32%h.Step != 0 {
			return addr.Hierarchy{}, fmt.Errorf("%w: ipv4 step %d depth %d", ErrHierarchy, h.Step, h.Depth)
		}
		return addr.NewIPv4Hierarchy(addr.Granularity(h.Step)), nil
	case 6:
		if h.Step == 0 || h.Depth == 0 || h.Depth > addr.MaxIPv6Depth || h.Depth%h.Step != 0 {
			return addr.Hierarchy{}, fmt.Errorf("%w: ipv6 step %d depth %d", ErrHierarchy, h.Step, h.Depth)
		}
		return addr.NewIPv6HierarchyDepth(addr.Granularity(h.Step), h.Depth), nil
	case 0:
		return addr.Hierarchy{}, fmt.Errorf("%w: frame carries no hierarchy", ErrHierarchy)
	default:
		return addr.Hierarchy{}, fmt.Errorf("%w: unknown family %d", ErrHierarchy, h.Family)
	}
}

// describe renders a hierarchy into its descriptor bytes.
func describe(h addr.Hierarchy) (fam, step, depth byte) {
	switch h.Family() {
	case addr.V4:
		fam = 4
	case addr.V6:
		fam = 6
	}
	return fam, byte(h.Granularity()), h.Depth()
}

// Inspect parses and verifies the frame envelope — magic, version,
// kind, declared length, checksum — without decoding the payload. It is
// what the aggregator uses to classify and validate incoming frames
// before committing to a full decode.
func Inspect(frame []byte) (Header, error) {
	hdr, _, err := parseFrame(frame)
	return hdr, err
}

// parseFrame verifies the envelope and returns the header and payload.
func parseFrame(frame []byte) (Header, []byte, error) {
	if len(frame) < headerSize+crcSize {
		return Header{}, nil, fmt.Errorf("%w: %d bytes, need at least %d", ErrTruncated, len(frame), headerSize+crcSize)
	}
	if string(frame[:4]) != magic {
		return Header{}, nil, ErrBadMagic
	}
	version := binary.LittleEndian.Uint16(frame[4:6])
	if version != Version {
		return Header{}, nil, fmt.Errorf("%w: %d", ErrVersion, version)
	}
	if flags := frame[7]; flags != 0 {
		return Header{}, nil, fmt.Errorf("%w: unknown flags %#x", ErrVersion, flags)
	}
	if frame[11] != 0 {
		return Header{}, nil, fmt.Errorf("%w: nonzero reserved byte", ErrCorrupt)
	}
	hdr := Header{
		Version: version,
		Kind:    Kind(frame[6]),
		Family:  frame[8],
		Step:    frame[9],
		Depth:   frame[10],
	}
	if hdr.Kind < KindSpaceSaving || hdr.Kind > KindContinuous {
		return Header{}, nil, fmt.Errorf("%w: %d", ErrKind, uint8(hdr.Kind))
	}
	n := int(binary.LittleEndian.Uint32(frame[12:16]))
	if len(frame) < headerSize+n+crcSize {
		return Header{}, nil, fmt.Errorf("%w: payload declares %d bytes, frame has %d", ErrTruncated, n, len(frame)-headerSize-crcSize)
	}
	if len(frame) > headerSize+n+crcSize {
		return Header{}, nil, fmt.Errorf("%w: %d trailing bytes", ErrCorrupt, len(frame)-headerSize-n-crcSize)
	}
	sum := crc32.ChecksumIEEE(frame[:headerSize+n])
	if got := binary.LittleEndian.Uint32(frame[headerSize+n:]); got != sum {
		return Header{}, nil, fmt.Errorf("%w: frame %#08x, computed %#08x", ErrCRC, got, sum)
	}
	return hdr, frame[headerSize : headerSize+n], nil
}

// frameFor assembles a complete frame around payload.
func frameFor(kind Kind, fam, step, depth byte, payload []byte) []byte {
	out := make([]byte, 0, headerSize+len(payload)+crcSize)
	out = append(out, magic...)
	out = binary.LittleEndian.AppendUint16(out, Version)
	out = append(out, byte(kind), 0, fam, step, depth, 0)
	out = binary.LittleEndian.AppendUint32(out, uint32(len(payload)))
	out = append(out, payload...)
	return binary.LittleEndian.AppendUint32(out, crc32.ChecksumIEEE(out))
}

// cursor is a sticky-error little-endian payload reader with the decode
// allocation budgets. Reads past the end clear ok and return zero; the
// caller checks ok (or calls finish) before using values that gate
// allocation or construction.
type cursor struct {
	b   []byte
	off int
	ok  bool

	summaries    int // Space-Saving instances restored from this payload
	counters     int // summed Space-Saving capacity restored
	mementoCells int // summed Memento frame-cell matrix size restored
}

func newCursor(b []byte) *cursor { return &cursor{b: b, ok: true} }

// remaining returns the unread payload length.
func (c *cursor) remaining() int { return len(c.b) - c.off }

// need reports whether n more bytes are available, clearing ok if not.
func (c *cursor) need(n int) bool {
	if !c.ok || n < 0 || c.remaining() < n {
		c.ok = false
		return false
	}
	return true
}

func (c *cursor) u8() byte {
	if !c.need(1) {
		return 0
	}
	v := c.b[c.off]
	c.off++
	return v
}

func (c *cursor) u16() uint16 {
	if !c.need(2) {
		return 0
	}
	v := binary.LittleEndian.Uint16(c.b[c.off:])
	c.off += 2
	return v
}

func (c *cursor) u32() uint32 {
	if !c.need(4) {
		return 0
	}
	v := binary.LittleEndian.Uint32(c.b[c.off:])
	c.off += 4
	return v
}

func (c *cursor) u64() uint64 {
	if !c.need(8) {
		return 0
	}
	v := binary.LittleEndian.Uint64(c.b[c.off:])
	c.off += 8
	return v
}

func (c *cursor) i64() int64 { return int64(c.u64()) }

func (c *cursor) f64() float64 { return math.Float64frombits(c.u64()) }

// count reads a u32 element count and validates it against the actual
// remaining payload at elem bytes per element, so no slice is ever sized
// from a declared length the payload cannot back.
func (c *cursor) count(elem int) int {
	n := int(c.u32())
	if !c.ok || int64(n)*int64(elem) > int64(c.remaining()) {
		c.ok = false
		return 0
	}
	return n
}

// finish returns the terminal payload verdict: ErrCorrupt if any read
// ran past the end or a budget tripped, or if bytes are left over.
func (c *cursor) finish() error {
	if !c.ok {
		return fmt.Errorf("%w: payload exhausted or budget exceeded", ErrCorrupt)
	}
	if c.off != len(c.b) {
		return fmt.Errorf("%w: %d trailing payload bytes", ErrCorrupt, len(c.b)-c.off)
	}
	return nil
}

// corrupt wraps a restore-constructor error as a payload corruption.
func corrupt(err error) error {
	return fmt.Errorf("%w: %v", ErrCorrupt, err)
}
