package wire

import (
	"bytes"
	"encoding/binary"
	"errors"
	"slices"
	"testing"
)

// fuzzSeeds returns one valid frame per summary kind plus the classic
// envelope corruptions, the corpus every wire fuzz target starts from.
func fuzzSeeds(f *testing.F) [][]byte {
	filterFrame, err := EncodeFilter(testFilter(7))
	if err != nil {
		f.Fatal(err)
	}
	contFrame, err := EncodeContinuous(testContinuous(f, 8))
	if err != nil {
		f.Fatal(err)
	}
	seeds := [][]byte{
		EncodeSpaceSaving(testSpaceSaving(1, 100)),
		EncodeExact(testHierarchy(), testExact(2, 100)),
		EncodeExact(testHierarchyV6(), testExact(2, 100)),
		EncodePerLevel(testPerLevel(3)),
		EncodeRHHH(testRHHH(4)),
		EncodeSliding(testSliding(5)),
		EncodeMemento(testMemento(6)),
		filterFrame,
		contFrame,
	}
	valid := seeds[3]
	short := slices.Clone(valid[:12])
	badMagic := slices.Clone(valid)
	copy(badMagic, "NOPE")
	badVer := slices.Clone(valid)
	binary.LittleEndian.PutUint16(badVer[4:6], 99)
	hugeLen := slices.Clone(valid)
	binary.LittleEndian.PutUint32(hugeLen[12:16], 1<<30)
	crcFlip := slices.Clone(valid)
	crcFlip[len(crcFlip)-1] ^= 0xff
	// A declared Space-Saving capacity far beyond the payload exercises
	// the allocation budget path.
	hugeCap := frameFor(KindSpaceSaving, 0, 0, 0, func() []byte {
		p := appendU32(nil, 1<<31-1)
		p = appendI64(p, 0)
		return appendU32(p, 0)
	}())
	return append(seeds, short, badMagic, badVer, hugeLen, crcFlip, hugeCap)
}

// FuzzWireDecode feeds arbitrary bytes to the generic frame decoder: it
// must either return a typed error or a decoded summary, never panic,
// and never allocate from attacker-declared capacities beyond the
// documented budgets (the -fuzzminimize memory limit catches blowups).
func FuzzWireDecode(f *testing.F) {
	for _, s := range fuzzSeeds(f) {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		v, err := Decode(data)
		if err != nil {
			if v != nil {
				t.Fatalf("Decode returned both a value (%T) and an error (%v)", v, err)
			}
			if !errors.Is(err, ErrBadMagic) && !errors.Is(err, ErrVersion) &&
				!errors.Is(err, ErrKind) && !errors.Is(err, ErrTruncated) &&
				!errors.Is(err, ErrCRC) && !errors.Is(err, ErrHierarchy) &&
				!errors.Is(err, ErrCorrupt) {
				t.Fatalf("Decode error %v does not wrap a typed wire error", err)
			}
			return
		}
		if v == nil {
			t.Fatal("Decode returned nil value with nil error")
		}
	})
}

// FuzzWireRoundTrip checks the codec's fixpoint property on every input
// the fuzzer finds decodable: re-encoding a decoded frame must
// reproduce the original bytes exactly, and decode again cleanly.
func FuzzWireRoundTrip(f *testing.F) {
	for _, s := range fuzzSeeds(f) {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		v, err := Decode(data)
		if err != nil {
			return
		}
		re, err := Encode(v)
		if err != nil {
			t.Fatalf("re-encode of decoded frame failed: %v", err)
		}
		if !bytes.Equal(re, data) {
			t.Fatalf("re-encode is not byte-identical (%d vs %d bytes)", len(re), len(data))
		}
		if _, err := Decode(re); err != nil {
			t.Fatalf("second decode failed: %v", err)
		}
	})
}
