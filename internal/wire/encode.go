package wire

import (
	"encoding/binary"
	"fmt"
	"math"
	"slices"

	"hiddenhhh/internal/addr"
	"hiddenhhh/internal/continuous"
	"hiddenhhh/internal/hhh"
	"hiddenhhh/internal/sketch"
	"hiddenhhh/internal/swhh"
	"hiddenhhh/internal/tdbf"
)

// Encoding is deterministic: the same summary state always yields the
// same bytes (map-backed structures are sorted before writing), which is
// what lets golden-vector tests pin the format and lets tests compare
// aggregated state byte for byte.

func appendU16(b []byte, v uint16) []byte { return binary.LittleEndian.AppendUint16(b, v) }
func appendU32(b []byte, v uint32) []byte { return binary.LittleEndian.AppendUint32(b, v) }
func appendU64(b []byte, v uint64) []byte { return binary.LittleEndian.AppendUint64(b, v) }
func appendI64(b []byte, v int64) []byte  { return binary.LittleEndian.AppendUint64(b, uint64(v)) }
func appendF64(b []byte, v float64) []byte {
	return binary.LittleEndian.AppendUint64(b, math.Float64bits(v))
}

// Encode frames any summary Decode can return, dispatching on its
// dynamic type. It is the inverse of Decode: for every valid frame,
// Encode(Decode(frame)) reproduces the frame byte for byte.
func Encode(v any) ([]byte, error) {
	switch s := v.(type) {
	case *sketch.SpaceSaving:
		return EncodeSpaceSaving(s), nil
	case ExactSummary:
		return EncodeExact(s.Hierarchy, s.Leaves), nil
	case *hhh.PerLevel:
		return EncodePerLevel(s), nil
	case *hhh.RHHH:
		return EncodeRHHH(s), nil
	case *swhh.SlidingHHH:
		return EncodeSliding(s), nil
	case *swhh.MementoHHH:
		return EncodeMemento(s), nil
	case *tdbf.Filter:
		return EncodeFilter(s)
	case *continuous.Detector:
		return EncodeContinuous(s)
	default:
		return nil, fmt.Errorf("wire: cannot encode %T", v)
	}
}

// appendSpaceSaving writes the shared Space-Saving sub-payload:
// capacity, stream total, entry count, then the entries in the
// summary's canonical node order.
func appendSpaceSaving(b []byte, s *sketch.SpaceSaving) []byte {
	b = appendU32(b, uint32(s.Capacity()))
	b = appendI64(b, s.Total())
	b = appendU32(b, uint32(s.Len()))
	s.ForEachTracked(func(key uint64, count, errUB int64) {
		b = appendU64(b, key)
		b = appendI64(b, count)
		b = appendI64(b, errUB)
	})
	return b
}

// EncodeSpaceSaving frames a bare Space-Saving summary (KindSpaceSaving,
// no hierarchy descriptor).
func EncodeSpaceSaving(s *sketch.SpaceSaving) []byte {
	return frameFor(KindSpaceSaving, 0, 0, 0, appendSpaceSaving(nil, s))
}

// EncodeExact frames an exact leaf-key map under hierarchy h
// (KindExact). Entries are sorted by key so the encoding is
// deterministic regardless of map iteration order.
func EncodeExact(h addr.Hierarchy, ex *sketch.Exact) []byte {
	kvs := ex.Tracked()
	slices.SortFunc(kvs, func(a, b sketch.KV) int {
		switch {
		case a.Key < b.Key:
			return -1
		case a.Key > b.Key:
			return 1
		}
		return 0
	})
	payload := appendU32(nil, uint32(len(kvs)))
	for _, kv := range kvs {
		payload = appendU64(payload, kv.Key)
		payload = appendI64(payload, kv.Count)
	}
	fam, step, depth := describe(h)
	return frameFor(KindExact, fam, step, depth, payload)
}

// EncodePerLevel frames a PerLevel windowed HHH engine (KindPerLevel).
func EncodePerLevel(p *hhh.PerLevel) []byte {
	h := p.Hierarchy()
	levels := h.Levels()
	payload := appendI64(nil, p.Total())
	payload = appendU16(payload, uint16(levels))
	for l := 0; l < levels; l++ {
		payload = appendSpaceSaving(payload, p.LevelSummary(l))
	}
	fam, step, depth := describe(h)
	return frameFor(KindPerLevel, fam, step, depth, payload)
}

// EncodeRHHH frames an RHHH windowed HHH engine (KindRHHH), including
// the level-sampler state so a restored engine could keep ingesting
// deterministically.
func EncodeRHHH(r *hhh.RHHH) []byte {
	h := r.Hierarchy()
	levels := h.Levels()
	payload := appendI64(nil, r.Total())
	payload = appendI64(payload, r.Updates())
	payload = appendU64(payload, r.Sampler())
	payload = appendU16(payload, uint16(levels))
	for l := 0; l < levels; l++ {
		payload = appendSpaceSaving(payload, r.LevelSummary(l))
	}
	fam, step, depth := describe(h)
	return frameFor(KindRHHH, fam, step, depth, payload)
}

// EncodeSliding frames a WCSS sliding HHH engine (KindSliding): the
// shared frame geometry, then per level the frame clock and the ring of
// (exact frame total, frame summary) pairs in slot order.
func EncodeSliding(d *swhh.SlidingHHH) []byte {
	h := d.Hierarchy()
	cfg := d.Config()
	levels := h.Levels()
	payload := appendI64(nil, int64(cfg.Window))
	payload = appendU16(payload, uint16(cfg.Frames))
	payload = appendU32(payload, uint32(cfg.Counters))
	payload = appendU16(payload, uint16(levels))
	for l := 0; l < levels; l++ {
		st := d.LevelSummary(l).State()
		payload = appendI64(payload, st.CurFrame)
		for i := range st.Frames {
			payload = appendI64(payload, st.Totals[i])
			payload = appendSpaceSaving(payload, st.Frames[i])
		}
	}
	fam, step, depth := describe(h)
	return frameFor(KindSliding, fam, step, depth, payload)
}

// EncodeMemento frames a level-sampled Memento sliding HHH engine
// (KindMemento): the shared geometry and sampler, the wrapper's exact
// totals ring, then per level the aged table columns and frame-cell
// matrix.
func EncodeMemento(d *swhh.MementoHHH) []byte {
	h := d.Hierarchy()
	cfg := d.Config()
	st := d.State()
	payload := appendI64(nil, int64(cfg.Window))
	payload = appendU16(payload, uint16(cfg.Frames))
	payload = appendU32(payload, uint32(cfg.Counters))
	payload = appendU64(payload, st.Sampler)
	payload = appendI64(payload, st.CurFrame)
	for _, t := range st.Totals {
		payload = appendI64(payload, t)
	}
	payload = appendU16(payload, uint16(len(st.Levels)))
	for _, lv := range st.Levels {
		ls := lv.State()
		payload = appendI64(payload, ls.CurFrame)
		payload = appendU32(payload, uint32(ls.Cursor))
		payload = appendU32(payload, uint32(len(ls.Keys)))
		for _, t := range ls.Totals {
			payload = appendI64(payload, t)
		}
		for e := range ls.Keys {
			payload = appendU64(payload, ls.Keys[e])
			payload = appendI64(payload, ls.Counts[e])
			payload = appendI64(payload, ls.Errs[e])
		}
		for _, cell := range ls.Cells {
			payload = appendI64(payload, cell)
		}
	}
	fam, step, depth := describe(h)
	return frameFor(KindMemento, fam, step, depth, payload)
}

// appendDecay writes the tagged decay-law descriptor. Only the two
// stock laws serialize; a custom Decay implementation returns an error.
func appendDecay(b []byte, d tdbf.Decay) ([]byte, error) {
	switch v := d.(type) {
	case tdbf.Exponential:
		b = append(b, decayExponential)
		return appendI64(b, int64(v.Tau)), nil
	case tdbf.LeakyLinear:
		b = append(b, decayLeaky)
		return appendF64(b, v.Rate), nil
	default:
		return nil, fmt.Errorf("wire: decay law %q does not serialize", d.String())
	}
}

// Decay-law descriptor tags (wire format, fixed forever).
const (
	decayExponential = 1 // param: tau as int64 nanoseconds
	decayLeaky       = 2 // param: drain rate as float64 per second
)

// EncodeFilter frames a bare time-decaying Bloom filter (KindFilter, no
// hierarchy descriptor). Returns an error for decay laws outside the
// two stock ones, which have no wire representation.
func EncodeFilter(f *tdbf.Filter) ([]byte, error) {
	payload, err := appendDecay(nil, f.Decay())
	if err != nil {
		return nil, err
	}
	st := f.State()
	payload = appendU32(payload, uint32(st.Cells))
	payload = appendU16(payload, uint16(st.Hashes))
	payload = appendU64(payload, st.Seed)
	payload = appendI64(payload, st.Adds)
	for i := range st.V {
		payload = appendF64(payload, st.V[i])
		payload = appendI64(payload, st.Touch[i])
	}
	return frameFor(KindFilter, 0, 0, 0, payload), nil
}

// EncodeContinuous frames a continuous detector (KindContinuous): its
// full configuration (so the receiver rebuilds an identically derived
// detector), the warmup anchor and mass tracker, the active set sorted
// by (level, key) for determinism, then the per-level filter columns.
func EncodeContinuous(d *continuous.Detector) ([]byte, error) {
	cfg := d.Config()
	h := cfg.Hierarchy
	st := d.State()
	var cflags byte
	if cfg.Sampled {
		cflags |= 1
	}
	if st.Started {
		cflags |= 2
	}
	payload := appendF64(nil, cfg.Phi)
	payload = appendF64(payload, cfg.ExitRatio)
	payload = append(payload, cflags)
	payload = appendU64(payload, cfg.Seed)
	payload = appendI64(payload, int64(cfg.Warmup))
	payload = appendU64(payload, d.Sampler())
	payload, err := appendDecay(payload, cfg.Filter.Decay)
	if err != nil {
		return nil, err
	}
	// Shape comes from the live filters, not cfg.Filter: the stored config
	// may hold zeros that tdbf.New resolved to defaults at construction.
	payload = appendU32(payload, uint32(st.Filters[0].Cells()))
	payload = appendU16(payload, uint16(st.Filters[0].Hashes()))
	payload = appendI64(payload, st.WarmEnd)
	payload = appendI64(payload, st.Packets)
	payload = appendF64(payload, st.Total.V)
	payload = appendI64(payload, st.Total.Touch)

	type activeRow struct {
		key   uint64
		level int
		at    int64
	}
	rows := make([]activeRow, 0, len(st.Active))
	for _, e := range st.Active {
		rows = append(rows, activeRow{
			key:   h.KeyOfPrefix(e.Prefix),
			level: h.Level(e.Prefix.Bits),
			at:    e.At,
		})
	}
	slices.SortFunc(rows, func(a, b activeRow) int {
		if a.level != b.level {
			return a.level - b.level
		}
		switch {
		case a.key < b.key:
			return -1
		case a.key > b.key:
			return 1
		}
		return 0
	})
	payload = appendU32(payload, uint32(len(rows)))
	for _, r := range rows {
		payload = appendU64(payload, r.key)
		payload = appendU16(payload, uint16(r.level))
		payload = appendI64(payload, r.at)
	}

	payload = appendU16(payload, uint16(len(st.Filters)))
	for _, f := range st.Filters {
		fs := f.State()
		payload = appendU64(payload, fs.Seed)
		payload = appendI64(payload, fs.Adds)
		for i := range fs.V {
			payload = appendF64(payload, fs.V[i])
			payload = appendI64(payload, fs.Touch[i])
		}
	}
	fam, step, depth := describe(h)
	return frameFor(KindContinuous, fam, step, depth, payload), nil
}
