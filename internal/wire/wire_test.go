package wire

import (
	"encoding/binary"
	"errors"
	"hash/crc32"
	"math"
	"slices"
	"testing"
	"time"

	"hiddenhhh/internal/addr"
	"hiddenhhh/internal/continuous"
	"hiddenhhh/internal/hhh"
	"hiddenhhh/internal/sketch"
	"hiddenhhh/internal/swhh"
	"hiddenhhh/internal/tdbf"
)

// splitmix is a tiny deterministic stream for building test fixtures.
type splitmix uint64

func (s *splitmix) next() uint64 {
	*s += 0x9e3779b97f4a7c15
	z := uint64(*s)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func testHierarchy() addr.Hierarchy { return addr.NewIPv4Hierarchy(8) }

func testHierarchyV6() addr.Hierarchy { return addr.NewIPv6HierarchyDepth(16, 64) }

// addrFor draws addresses from a handful of top-level groups in h's
// family so hierarchies have real structure at every level.
func addrFor(h addr.Hierarchy, r *splitmix) addr.Addr {
	v := r.next()
	if h.Family() == addr.V6 {
		return addr.FromParts(0x2001_0db8_0000_0000|(v%3)<<32|(v>>8)&0xffff_ffff, 0)
	}
	return addr.From4(byte(10+v%3), byte(v>>8), byte(v>>16), byte(v>>24&3))
}

// testAddr is the IPv4 shorthand used by the round-trip fixtures.
func testAddr(r *splitmix) addr.Addr { return addrFor(testHierarchy(), r) }

func testSpaceSaving(seed uint64, n int) *sketch.SpaceSaving {
	s := sketch.NewSpaceSaving(32)
	r := splitmix(seed)
	for i := 0; i < n; i++ {
		s.Update(r.next()%100, int64(1+r.next()%9))
	}
	return s
}

func testExact(seed uint64, n int) *sketch.Exact {
	e := sketch.NewExact(0)
	r := splitmix(seed)
	for i := 0; i < n; i++ {
		e.Update(r.next()%500, int64(1+r.next()%9))
	}
	return e
}

func testPerLevelH(h addr.Hierarchy, seed uint64) *hhh.PerLevel {
	p := hhh.NewPerLevel(h, 64)
	r := splitmix(seed)
	for i := 0; i < 400; i++ {
		p.Update(addrFor(h, &r), int64(1+r.next()%9))
	}
	return p
}

func testPerLevel(seed uint64) *hhh.PerLevel { return testPerLevelH(testHierarchy(), seed) }

func testRHHHH(h addr.Hierarchy, seed uint64) *hhh.RHHH {
	d := hhh.NewRHHH(h, 64, seed)
	r := splitmix(seed)
	for i := 0; i < 400; i++ {
		d.Update(addrFor(h, &r), int64(1+r.next()%9))
	}
	return d
}

func testRHHH(seed uint64) *hhh.RHHH { return testRHHHH(testHierarchy(), seed) }

func slidingTestConfig() swhh.Config {
	return swhh.Config{Window: time.Second, Frames: 4, Counters: 64}
}

func testSlidingH(h addr.Hierarchy, seed uint64) *swhh.SlidingHHH {
	d, err := swhh.NewSlidingHHH(h, slidingTestConfig())
	if err != nil {
		panic(err)
	}
	r := splitmix(seed)
	now := int64(0)
	for i := 0; i < 400; i++ {
		now += int64(r.next() % uint64(5*time.Millisecond))
		d.Update(addrFor(h, &r), int64(1+r.next()%9), now)
	}
	return d
}

func testSliding(seed uint64) *swhh.SlidingHHH { return testSlidingH(testHierarchy(), seed) }

func testMementoH(h addr.Hierarchy, seed uint64) *swhh.MementoHHH {
	d, err := swhh.NewMementoHHH(h, slidingTestConfig(), seed)
	if err != nil {
		panic(err)
	}
	r := splitmix(seed)
	now := int64(0)
	for i := 0; i < 400; i++ {
		now += int64(r.next() % uint64(5*time.Millisecond))
		d.Update(addrFor(h, &r), int64(1+r.next()%9), now)
	}
	return d
}

func testMemento(seed uint64) *swhh.MementoHHH { return testMementoH(testHierarchy(), seed) }

func testFilter(seed uint64) *tdbf.Filter {
	f := tdbf.New(tdbf.Config{Cells: 256, Hashes: 3, Seed: seed, Decay: tdbf.Exponential{Tau: time.Second}})
	r := splitmix(seed)
	now := int64(0)
	for i := 0; i < 200; i++ {
		now += int64(r.next() % uint64(3*time.Millisecond))
		f.Add(r.next()%100, float64(1+r.next()%9), now)
	}
	return f
}

func continuousTestConfig(h addr.Hierarchy, seed uint64) continuous.Config {
	return continuous.Config{
		Hierarchy: h,
		Phi:       0.05,
		Filter:    tdbf.Config{Cells: 1 << 10, Hashes: 3, Decay: tdbf.Exponential{Tau: 500 * time.Millisecond}},
		Seed:      seed,
	}
}

func testContinuousH(t testing.TB, h addr.Hierarchy, seed uint64) *continuous.Detector {
	d, err := continuous.NewDetector(continuousTestConfig(h, seed))
	if err != nil {
		t.Fatalf("NewDetector: %v", err)
	}
	r := splitmix(seed)
	now := int64(0)
	for i := 0; i < 2000; i++ {
		now += int64(r.next() % uint64(2*time.Millisecond))
		d.Observe(addrFor(h, &r), int64(1+r.next()%9), now)
	}
	return d
}

func testContinuous(t testing.TB, seed uint64) *continuous.Detector {
	return testContinuousH(t, testHierarchy(), seed)
}

// queryNow is a fixed instant safely past the fixtures' last update.
const queryNow = int64(10 * time.Second)

// TestRoundTrip encodes every kind, decodes it back, and demands both
// byte-identical re-encoding and identical query results.
func TestRoundTrip(t *testing.T) {
	t.Run("space-saving", func(t *testing.T) {
		s := testSpaceSaving(1, 300)
		frame := EncodeSpaceSaving(s)
		got, err := DecodeSpaceSaving(frame)
		if err != nil {
			t.Fatalf("decode: %v", err)
		}
		if got.Total() != s.Total() || got.Len() != s.Len() || got.Capacity() != s.Capacity() {
			t.Fatalf("restored shape (%d,%d,%d) != original (%d,%d,%d)",
				got.Total(), got.Len(), got.Capacity(), s.Total(), s.Len(), s.Capacity())
		}
		if re := EncodeSpaceSaving(got); !slices.Equal(re, frame) {
			t.Fatal("re-encode is not byte-identical")
		}
	})
	t.Run("exact", func(t *testing.T) {
		h := testHierarchy()
		e := testExact(2, 300)
		frame := EncodeExact(h, e)
		got, gh, err := DecodeExact(frame)
		if err != nil {
			t.Fatalf("decode: %v", err)
		}
		if gh != h {
			t.Fatalf("hierarchy %v != %v", gh, h)
		}
		if got.Total() != e.Total() || got.Len() != e.Len() {
			t.Fatalf("restored (%d keys, total %d) != original (%d, %d)",
				got.Len(), got.Total(), e.Len(), e.Total())
		}
		if re := EncodeExact(h, got); !slices.Equal(re, frame) {
			t.Fatal("re-encode is not byte-identical")
		}
	})
	t.Run("per-level", func(t *testing.T) {
		p := testPerLevel(3)
		frame := EncodePerLevel(p)
		got, err := DecodePerLevel(frame)
		if err != nil {
			t.Fatalf("decode: %v", err)
		}
		if !got.QueryFraction(0.05).Equal(p.QueryFraction(0.05)) {
			t.Fatal("restored query differs from original")
		}
		if re := EncodePerLevel(got); !slices.Equal(re, frame) {
			t.Fatal("re-encode is not byte-identical")
		}
	})
	t.Run("rhhh", func(t *testing.T) {
		d := testRHHH(4)
		frame := EncodeRHHH(d)
		got, err := DecodeRHHH(frame)
		if err != nil {
			t.Fatalf("decode: %v", err)
		}
		if !got.QueryFraction(0.05).Equal(d.QueryFraction(0.05)) {
			t.Fatal("restored query differs from original")
		}
		if re := EncodeRHHH(got); !slices.Equal(re, frame) {
			t.Fatal("re-encode is not byte-identical")
		}
	})
	t.Run("sliding", func(t *testing.T) {
		d := testSliding(5)
		frame := EncodeSliding(d)
		got, err := DecodeSliding(frame)
		if err != nil {
			t.Fatalf("decode: %v", err)
		}
		// Byte-identity first: Query advances the frame clock, mutating
		// both engines past the encoded instant.
		if re := EncodeSliding(got); !slices.Equal(re, frame) {
			t.Fatal("re-encode is not byte-identical")
		}
		if !got.Query(0.05, queryNow).Equal(d.Query(0.05, queryNow)) {
			t.Fatal("restored query differs from original")
		}
	})
	t.Run("memento", func(t *testing.T) {
		d := testMemento(6)
		frame := EncodeMemento(d)
		got, err := DecodeMemento(frame)
		if err != nil {
			t.Fatalf("decode: %v", err)
		}
		if re := EncodeMemento(got); !slices.Equal(re, frame) {
			t.Fatal("re-encode is not byte-identical")
		}
		if !got.Query(0.05, queryNow).Equal(d.Query(0.05, queryNow)) {
			t.Fatal("restored query differs from original")
		}
	})
	t.Run("tdbf", func(t *testing.T) {
		f := testFilter(7)
		frame, err := EncodeFilter(f)
		if err != nil {
			t.Fatalf("encode: %v", err)
		}
		got, err := DecodeFilter(frame)
		if err != nil {
			t.Fatalf("decode: %v", err)
		}
		r := splitmix(99)
		for i := 0; i < 50; i++ {
			k := r.next() % 100
			if a, b := got.Estimate(k, queryNow), f.Estimate(k, queryNow); a != b {
				t.Fatalf("estimate(%d) %v != %v", k, a, b)
			}
		}
		re, err := EncodeFilter(got)
		if err != nil {
			t.Fatalf("re-encode: %v", err)
		}
		if !slices.Equal(re, frame) {
			t.Fatal("re-encode is not byte-identical")
		}
	})
	t.Run("continuous", func(t *testing.T) {
		d := testContinuous(t, 8)
		frame, err := EncodeContinuous(d)
		if err != nil {
			t.Fatalf("encode: %v", err)
		}
		got, err := DecodeContinuous(frame)
		if err != nil {
			t.Fatalf("decode: %v", err)
		}
		if !got.Query(queryNow).Equal(d.Query(queryNow)) {
			t.Fatal("restored query differs from original")
		}
		re, err := EncodeContinuous(got)
		if err != nil {
			t.Fatalf("re-encode: %v", err)
		}
		if !slices.Equal(re, frame) {
			t.Fatal("re-encode is not byte-identical")
		}
	})
}

// TestDecodeDispatch checks the generic Decode returns the right
// dynamic type for every kind.
func TestDecodeDispatch(t *testing.T) {
	filterFrame, err := EncodeFilter(testFilter(7))
	if err != nil {
		t.Fatal(err)
	}
	contFrame, err := EncodeContinuous(testContinuous(t, 8))
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		frame []byte
		want  Kind
	}{
		{EncodeSpaceSaving(testSpaceSaving(1, 100)), KindSpaceSaving},
		{EncodeExact(testHierarchy(), testExact(2, 100)), KindExact},
		{EncodePerLevel(testPerLevel(3)), KindPerLevel},
		{EncodeRHHH(testRHHH(4)), KindRHHH},
		{EncodeSliding(testSliding(5)), KindSliding},
		{EncodeMemento(testMemento(6)), KindMemento},
		{filterFrame, KindFilter},
		{contFrame, KindContinuous},
	}
	for _, tc := range cases {
		hdr, err := Inspect(tc.frame)
		if err != nil {
			t.Fatalf("%v: inspect: %v", tc.want, err)
		}
		if hdr.Kind != tc.want || hdr.Version != Version {
			t.Fatalf("inspect says %v v%d, want %v v%d", hdr.Kind, hdr.Version, tc.want, Version)
		}
		v, err := Decode(tc.frame)
		if err != nil {
			t.Fatalf("%v: decode: %v", tc.want, err)
		}
		ok := false
		switch tc.want {
		case KindSpaceSaving:
			_, ok = v.(*sketch.SpaceSaving)
		case KindExact:
			_, ok = v.(ExactSummary)
		case KindPerLevel:
			_, ok = v.(*hhh.PerLevel)
		case KindRHHH:
			_, ok = v.(*hhh.RHHH)
		case KindSliding:
			_, ok = v.(*swhh.SlidingHHH)
		case KindMemento:
			_, ok = v.(*swhh.MementoHHH)
		case KindFilter:
			_, ok = v.(*tdbf.Filter)
		case KindContinuous:
			_, ok = v.(*continuous.Detector)
		}
		if !ok {
			t.Fatalf("%v: decode returned %T", tc.want, v)
		}
	}
}

// mangle clones the frame, applies f, and refreshes the trailing CRC so
// the mutation under test is what the decoder sees (not a CRC failure).
func mangle(frame []byte, f func([]byte)) []byte {
	out := slices.Clone(frame)
	f(out)
	n := len(out) - crcSize
	binary.LittleEndian.PutUint32(out[n:], crc32.ChecksumIEEE(out[:n]))
	return out
}

// TestTypedErrors is the envelope rejection matrix: every malformed
// frame maps to exactly the documented typed error, and none panic.
func TestTypedErrors(t *testing.T) {
	good := EncodePerLevel(testPerLevel(3))
	cases := []struct {
		name  string
		frame []byte
		want  error
	}{
		{"nil", nil, ErrTruncated},
		{"short", good[:10], ErrTruncated},
		{"bad-magic", mangle(good, func(b []byte) { b[0] = 'X' }), ErrBadMagic},
		{"future-version", mangle(good, func(b []byte) { b[4] = 9 }), ErrVersion},
		{"unknown-flags", mangle(good, func(b []byte) { b[7] = 1 }), ErrVersion},
		{"zero-kind", mangle(good, func(b []byte) { b[6] = 0 }), ErrKind},
		{"wild-kind", mangle(good, func(b []byte) { b[6] = 200 }), ErrKind},
		{"reserved-byte", mangle(good, func(b []byte) { b[11] = 1 }), ErrCorrupt},
		{"declared-too-long", mangle(good, func(b []byte) {
			binary.LittleEndian.PutUint32(b[12:16], uint32(len(b)))
		}), ErrTruncated},
		{"trailing-bytes", append(slices.Clone(good), 0), ErrCorrupt},
		{"crc-flip", func() []byte {
			b := slices.Clone(good)
			b[headerSize] ^= 0xff
			return b
		}(), ErrCRC},
		{"bad-family", mangle(good, func(b []byte) { b[8] = 5 }), ErrHierarchy},
		{"bad-step", mangle(good, func(b []byte) { b[9] = 7 }), ErrHierarchy},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := Decode(tc.frame); !errors.Is(err, tc.want) {
				t.Fatalf("Decode = %v, want %v", err, tc.want)
			}
		})
	}

	t.Run("kind-mismatch", func(t *testing.T) {
		if _, err := DecodeRHHH(good); !errors.Is(err, ErrKind) {
			t.Fatalf("DecodeRHHH(per-level frame) = %v, want ErrKind", err)
		}
	})
}

// TestCorruptPayloads drives structurally invalid payloads through the
// decoder; every one must come back ErrCorrupt without panicking.
func TestCorruptPayloads(t *testing.T) {
	// Handcrafted payloads use the same frameFor the encoders use, so the
	// envelope is valid and only the payload is wrong.
	ssPayload := func(k uint32, total int64, entries ...[3]uint64) []byte {
		p := appendU32(nil, k)
		p = appendI64(p, total)
		p = appendU32(p, uint32(len(entries)))
		for _, e := range entries {
			p = appendU64(p, e[0])
			p = appendI64(p, int64(e[1]))
			p = appendI64(p, int64(e[2]))
		}
		return p
	}
	cases := []struct {
		name  string
		frame []byte
	}{
		{"ss-zero-capacity", frameFor(KindSpaceSaving, 0, 0, 0, ssPayload(0, 0))},
		{"ss-capacity-over-budget", frameFor(KindSpaceSaving, 0, 0, 0, ssPayload(maxCounters+1, 0))},
		{"ss-entries-exceed-capacity", frameFor(KindSpaceSaving, 0, 0, 0,
			ssPayload(1, 2, [3]uint64{1, 1, 0}, [3]uint64{2, 1, 0}))},
		{"ss-unbacked-count", frameFor(KindSpaceSaving, 0, 0, 0, func() []byte {
			p := appendU32(nil, 8)
			p = appendI64(p, 0)
			return appendU32(p, 1<<30)
		}())},
		{"ss-negative-total", frameFor(KindSpaceSaving, 0, 0, 0, ssPayload(8, -1))},
		{"ss-err-above-count", frameFor(KindSpaceSaving, 0, 0, 0, ssPayload(8, 5, [3]uint64{1, 2, 3}))},
		{"ss-duplicate-key", frameFor(KindSpaceSaving, 0, 0, 0,
			ssPayload(8, 4, [3]uint64{1, 2, 0}, [3]uint64{1, 2, 0}))},
		{"ss-trailing-payload", frameFor(KindSpaceSaving, 0, 0, 0, append(ssPayload(8, 0), 0))},
		{"exact-unsorted", frameFor(KindExact, 4, 8, 32, func() []byte {
			p := appendU32(nil, 2)
			p = appendU64(p, 9)
			p = appendI64(p, 1)
			p = appendU64(p, 3)
			return appendI64(p, 1)
		}())},
		{"exact-zero-count", frameFor(KindExact, 4, 8, 32, func() []byte {
			p := appendU32(nil, 1)
			p = appendU64(p, 9)
			return appendI64(p, 0)
		}())},
		{"sliding-empty-payload", frameFor(KindSliding, 4, 8, 32, nil)},
		{"sliding-zero-window", frameFor(KindSliding, 4, 8, 32, func() []byte {
			p := appendI64(nil, 0)
			p = appendU16(p, 4)
			p = appendU32(p, 64)
			return appendU16(p, 4)
		}())},
		{"sliding-frame-clock-overflow", frameFor(KindSliding, 4, 8, 32, func() []byte {
			// Geometry of a 1-frame, 1-counter, 4-level ring whose first
			// level declares a frame clock past maxAbsFrame: the DoS guard
			// that keeps advance loops bounded.
			p := appendI64(nil, int64(time.Second))
			p = appendU16(p, 1)
			p = appendU32(p, 1)
			p = appendU16(p, 4)
			p = appendI64(p, maxAbsFrame+1)
			for i := 0; i < 2; i++ {
				p = appendI64(p, 0)
				p = append(p, ssPayload(1, 0)...)
			}
			return p
		}())},
		{"filter-bad-decay-tag", frameFor(KindFilter, 0, 0, 0, []byte{3})},
		{"filter-zero-tau", frameFor(KindFilter, 0, 0, 0, func() []byte {
			p := []byte{decayExponential}
			return appendI64(p, 0)
		}())},
		{"filter-nan-rate", frameFor(KindFilter, 0, 0, 0, func() []byte {
			p := []byte{decayLeaky}
			return appendF64(p, math.NaN())
		}())},
		{"continuous-nan-phi", frameFor(KindContinuous, 4, 8, 32, func() []byte {
			p := appendF64(nil, math.NaN())
			p = appendF64(p, 0.9)
			p = append(p, 0)
			p = appendU64(p, 0)
			p = appendI64(p, int64(time.Second))
			p = appendU64(p, 0)
			return p
		}())},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := Decode(tc.frame); !errors.Is(err, ErrCorrupt) {
				t.Fatalf("Decode = %v, want ErrCorrupt", err)
			}
		})
	}
}
