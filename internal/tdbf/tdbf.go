// Package tdbf implements time-decaying Bloom filters, the streaming
// primitive the paper proposes (Section 3) as the escape from disjoint
// windows. The design follows Bianchi, d'Heureuse and Niccolini,
// "On-demand Time-decaying Bloom Filters for Telemarketer Detection" (ACM
// CCR 41(5), 2011) — the paper's reference [2].
//
// A filter is an array of m cells, each holding a real-valued mass and the
// timestamp of its last touch. Adding weight w for a key touches k cells
// chosen by double hashing: each cell is first decayed *on demand* to the
// current instant (the paper's key idea — no background refresh sweep is
// needed because decay laws compose over time), then incremented by w. The
// estimate for a key is the minimum over its k cells, which — exactly as
// in a counting Bloom filter or Count-Min sketch — never underestimates
// the key's true decayed mass and overestimates only through collisions.
//
// Two composable decay laws are provided: exponential (EWMA-style, the
// natural continuous analogue of a time window of length tau) and leaky
// linear (constant drain rate). A PeriodicFilter applying eager whole-array
// refresh ticks is included as the classical baseline the on-demand design
// improves on; the ablation bench compares the two.
//
// Filters built from one config (same shape, seed and decay law) are
// mergeable: because decay laws compose over time, two cells summarising
// substreams can be decayed to a common timestamp and added, giving
// exactly the cell a single filter over the union stream would hold (up
// to floating-point association). Filter.Merge and MassTracker.Merge
// implement this; the sharded continuous detector merges per-shard
// filters at query time.
package tdbf

import (
	"fmt"
	"math"
	"time"

	"hiddenhhh/internal/hashx"
)

// Decay is a composable time-decay law: Apply(Apply(v, a), b) must equal
// Apply(v, a+b) so that lazily applied decay is exact regardless of how
// accesses are spaced.
type Decay interface {
	// Apply returns the mass remaining of v after dt has elapsed.
	// dt is always >= 0.
	Apply(v float64, dt time.Duration) float64
	// Horizon is the law's characteristic averaging span: the window
	// length a decayed mass is comparable to (tau for exponential decay).
	Horizon() time.Duration
	// String describes the law for reports.
	String() string
}

// Exponential decays mass by exp(-dt/Tau): an exponentially weighted
// moving volume with time constant Tau. In steady state a flow sending r
// bytes/s holds mass r*Tau, making estimates directly comparable to byte
// volumes in windows of length Tau.
type Exponential struct {
	Tau time.Duration
}

// Apply implements Decay.
func (e Exponential) Apply(v float64, dt time.Duration) float64 {
	if dt <= 0 || v == 0 {
		return v
	}
	return v * math.Exp(-float64(dt)/float64(e.Tau))
}

// Horizon implements Decay.
func (e Exponential) Horizon() time.Duration { return e.Tau }

// String renders the decay law with its horizon.
func (e Exponential) String() string { return fmt.Sprintf("exp(tau=%v)", e.Tau) }

// LeakyLinear drains mass at a constant Rate (units per second), clamping
// at zero — the leaky-bucket law. Composition holds because subtraction is
// additive over time and the zero clamp is absorbing.
type LeakyLinear struct {
	Rate float64 // mass drained per second
}

// Apply implements Decay.
func (l LeakyLinear) Apply(v float64, dt time.Duration) float64 {
	if dt <= 0 || v == 0 {
		return v
	}
	v -= l.Rate * dt.Seconds()
	if v < 0 {
		return 0
	}
	return v
}

// Horizon implements Decay. A leaky law has no intrinsic span; callers
// configure thresholds in absolute mass, so Horizon reports zero.
func (l LeakyLinear) Horizon() time.Duration { return 0 }

// String renders the decay law with its rate.
func (l LeakyLinear) String() string { return fmt.Sprintf("leaky(rate=%g/s)", l.Rate) }

type cell struct {
	v     float64
	touch int64 // ns timestamp of last decay application
}

// Filter is an on-demand time-decaying Bloom filter. It is not safe for
// concurrent use.
type Filter struct {
	cells []cell
	k     int
	seed  uint64
	decay Decay

	adds int64
}

// Config configures a Filter.
type Config struct {
	// Cells is the array size m. Default 1 << 16.
	Cells int
	// Hashes is k, the cells touched per key. Default 4.
	Hashes int
	// Seed drives the hash family; fixed default keeps runs reproducible.
	Seed uint64
	// Decay law; required.
	Decay Decay
}

func (c *Config) setDefaults() {
	if c.Cells <= 0 {
		c.Cells = 1 << 16
	}
	if c.Hashes <= 0 {
		c.Hashes = 4
	}
}

// New builds a Filter. It panics if no decay law is supplied: a
// time-decaying filter without a decay law is a programming error, not a
// runtime condition.
func New(cfg Config) *Filter {
	cfg.setDefaults()
	if cfg.Decay == nil {
		panic("tdbf: Config.Decay is required")
	}
	return &Filter{
		cells: make([]cell, cfg.Cells),
		k:     cfg.Hashes,
		seed:  cfg.Seed,
		decay: cfg.Decay,
	}
}

// Decay returns the filter's decay law.
func (f *Filter) Decay() Decay { return f.decay }

// Cells returns the array size m.
func (f *Filter) Cells() int { return len(f.cells) }

// Hashes returns k.
func (f *Filter) Hashes() int { return f.k }

// SizeBytes returns the state footprint (16 B per cell: mass + timestamp).
func (f *Filter) SizeBytes() int { return len(f.cells) * 16 }

// Adds returns the number of Add calls since construction or Reset.
func (f *Filter) Adds() int64 { return f.adds }

// Add records weight w for key at time now (ns). Timestamps must be
// non-decreasing across calls; the experiments replay time-sorted traces,
// which guarantees this.
func (f *Filter) Add(key uint64, w float64, now int64) {
	f.adds++
	h1, h2 := hashx.Indices2(key, f.seed)
	m := uint64(len(f.cells))
	for i := 0; i < f.k; i++ {
		c := &f.cells[(h1+uint64(i)*h2)%m]
		if dt := now - c.touch; dt > 0 && c.v > 0 {
			c.v = f.decay.Apply(c.v, time.Duration(dt))
		}
		c.touch = now
		c.v += w
	}
}

// Estimate returns the filter's estimate of key's decayed mass at time
// now: the minimum over its k cells, each decayed (read-only) to now. The
// result never falls below the key's true decayed mass.
func (f *Filter) Estimate(key uint64, now int64) float64 {
	h1, h2 := hashx.Indices2(key, f.seed)
	m := uint64(len(f.cells))
	min := math.Inf(1)
	for i := 0; i < f.k; i++ {
		c := f.cells[(h1+uint64(i)*h2)%m]
		v := c.v
		if dt := now - c.touch; dt > 0 && v > 0 {
			v = f.decay.Apply(v, time.Duration(dt))
		}
		if v < min {
			min = v
		}
	}
	return min
}

// Merge folds filter o into f cell by cell; o is not modified. Both
// filters must share shape (cells, hashes), seed and decay law, so that a
// key maps to the same cells in both — the sharded pipeline builds every
// shard's filters from one config for exactly this reason.
//
// Each cell pair is decayed to the later of the two touch timestamps and
// then summed. Decay laws compose over time, so decaying the earlier cell
// forward is exactly the mass it would hold had it been left untouched
// until then, and the sum of two per-cell upper bounds is an upper bound
// for the union stream: the merged filter keeps the conservative
// never-underestimate guarantee, overestimating only through the same
// collision mechanism as a single filter over the combined stream.
func (f *Filter) Merge(o *Filter) {
	if o == nil {
		return
	}
	if len(f.cells) != len(o.cells) || f.k != o.k || f.seed != o.seed ||
		f.decay.String() != o.decay.String() {
		panic("tdbf: Filter.Merge shape/seed/decay mismatch")
	}
	for i := range f.cells {
		c := &f.cells[i]
		oc := o.cells[i]
		t := c.touch
		if oc.touch > t {
			t = oc.touch
		}
		v := c.v
		if dt := t - c.touch; dt > 0 && v > 0 {
			v = f.decay.Apply(v, time.Duration(dt))
		}
		ov := oc.v
		if dt := t - oc.touch; dt > 0 && ov > 0 {
			ov = f.decay.Apply(ov, time.Duration(dt))
		}
		c.v, c.touch = v+ov, t
	}
	f.adds += o.adds
}

// Reset clears all cells.
func (f *Filter) Reset() {
	for i := range f.cells {
		f.cells[i] = cell{}
	}
	f.adds = 0
}

// MassTracker is a single decayed accumulator with the same on-demand
// discipline as a filter cell. The continuous detector uses one to track
// total decayed traffic mass, the denominator of its relative thresholds.
type MassTracker struct {
	decay Decay
	v     float64
	touch int64
}

// NewMassTracker builds a tracker under the given law.
func NewMassTracker(d Decay) *MassTracker {
	if d == nil {
		panic("tdbf: decay law required")
	}
	return &MassTracker{decay: d}
}

// Add folds weight w observed at now into the tracker.
func (t *MassTracker) Add(w float64, now int64) {
	if dt := now - t.touch; dt > 0 && t.v > 0 {
		t.v = t.decay.Apply(t.v, time.Duration(dt))
	}
	t.touch = now
	t.v += w
}

// Value returns the decayed mass at now.
func (t *MassTracker) Value(now int64) float64 {
	v := t.v
	if dt := now - t.touch; dt > 0 && v > 0 {
		v = t.decay.Apply(v, time.Duration(dt))
	}
	return v
}

// Merge folds tracker o into t: both are decayed to the later touch
// timestamp and summed, the single-cell case of Filter.Merge. The decay
// laws must match.
func (t *MassTracker) Merge(o *MassTracker) {
	if o == nil {
		return
	}
	if t.decay.String() != o.decay.String() {
		panic("tdbf: MassTracker.Merge decay mismatch")
	}
	at := t.touch
	if o.touch > at {
		at = o.touch
	}
	v := t.v
	if dt := at - t.touch; dt > 0 && v > 0 {
		v = t.decay.Apply(v, time.Duration(dt))
	}
	ov := o.v
	if dt := at - o.touch; dt > 0 && ov > 0 {
		ov = t.decay.Apply(ov, time.Duration(dt))
	}
	t.v, t.touch = v+ov, at
}

// Reset clears the tracker.
func (t *MassTracker) Reset() { t.v, t.touch = 0, 0 }
