// Serialization seams for the time-decaying structures: column-oriented
// state views and validated restore constructors used by the
// internal/wire codec. Restores rebuild the exact cell contents, so a
// restored filter is merge- and estimate-equivalent to the one that was
// serialized; they validate instead of panicking because their inputs
// ultimately come off the network.

package tdbf

import (
	"fmt"
	"math"
)

// FilterState is the serializable state of a Filter: its shape and seed
// plus the cell masses and touch timestamps as parallel columns. The
// decay law travels separately (it is an interface; wire encodes it as a
// tagged descriptor). The slices returned by State are fresh copies.
type FilterState struct {
	Cells  int
	Hashes int
	Seed   uint64
	Adds   int64
	V      []float64 // per-cell decayed mass
	Touch  []int64   // per-cell ns timestamp of last decay application
}

// Seed returns the hash-family seed, needed to serialize the filter and
// to verify that two filters are merge-compatible.
func (f *Filter) Seed() uint64 { return f.seed }

// State returns a copy of the filter's serializable state.
func (f *Filter) State() FilterState {
	st := FilterState{
		Cells:  len(f.cells),
		Hashes: f.k,
		Seed:   f.seed,
		Adds:   f.adds,
		V:      make([]float64, len(f.cells)),
		Touch:  make([]int64, len(f.cells)),
	}
	for i, c := range f.cells {
		st.V[i] = c.v
		st.Touch[i] = c.touch
	}
	return st
}

// RestoreFilter rebuilds a filter from a decay law and serialized state.
// Cell masses must be finite and non-negative; the column lengths must
// match the declared shape.
func RestoreFilter(d Decay, st FilterState) (*Filter, error) {
	if d == nil {
		return nil, fmt.Errorf("tdbf: restore: decay law required")
	}
	if st.Cells < 1 || st.Hashes < 1 {
		return nil, fmt.Errorf("tdbf: restore: invalid shape (%d cells, %d hashes)", st.Cells, st.Hashes)
	}
	if len(st.V) != st.Cells || len(st.Touch) != st.Cells {
		return nil, fmt.Errorf("tdbf: restore: cell columns (%d, %d) do not match declared %d cells",
			len(st.V), len(st.Touch), st.Cells)
	}
	if st.Adds < 0 {
		return nil, fmt.Errorf("tdbf: restore: negative add count %d", st.Adds)
	}
	f := &Filter{
		cells: make([]cell, st.Cells),
		k:     st.Hashes,
		seed:  st.Seed,
		decay: d,
		adds:  st.Adds,
	}
	for i := range f.cells {
		v := st.V[i]
		if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 {
			return nil, fmt.Errorf("tdbf: restore: invalid mass %v in cell %d", v, i)
		}
		f.cells[i] = cell{v: v, touch: st.Touch[i]}
	}
	return f, nil
}

// MassState is the serializable state of a MassTracker.
type MassState struct {
	V     float64
	Touch int64
}

// State returns the tracker's serializable state.
func (t *MassTracker) State() MassState { return MassState{V: t.v, Touch: t.touch} }

// RestoreMassTracker rebuilds a tracker from a decay law and serialized
// state; the mass must be finite and non-negative.
func RestoreMassTracker(d Decay, st MassState) (*MassTracker, error) {
	if d == nil {
		return nil, fmt.Errorf("tdbf: restore: decay law required")
	}
	if math.IsNaN(st.V) || math.IsInf(st.V, 0) || st.V < 0 {
		return nil, fmt.Errorf("tdbf: restore: invalid mass %v", st.V)
	}
	return &MassTracker{decay: d, v: st.V, touch: st.Touch}, nil
}
