package tdbf

import "time"

// PeriodicFilter is the classical eager-refresh time-decaying Bloom
// filter: instead of decaying cells on demand, the whole array is decayed
// in bulk every Tick. It exists as the baseline that Bianchi et al.'s
// on-demand design replaces — estimates agree with Filter up to tick
// quantisation, but updates between ticks pay nothing for decay while
// every tick pays O(m).
//
// The refresh is driven by the data timestamps (advance happens inside Add
// and Estimate), so replays remain deterministic and no goroutines or wall
// clocks are involved.
type PeriodicFilter struct {
	inner   Filter // reuse cell array and hashing; decay applied eagerly
	tick    time.Duration
	lastRef int64 // timestamp of the last refresh boundary
	sweeps  int64
}

// NewPeriodic builds a PeriodicFilter refreshing every tick.
func NewPeriodic(cfg Config, tick time.Duration) *PeriodicFilter {
	if tick <= 0 {
		panic("tdbf: refresh tick must be positive")
	}
	f := New(cfg)
	return &PeriodicFilter{inner: *f, tick: tick}
}

// advance applies any refresh sweeps due strictly before now.
func (p *PeriodicFilter) advance(now int64) {
	for now-p.lastRef >= int64(p.tick) {
		p.lastRef += int64(p.tick)
		p.sweeps++
		for i := range p.inner.cells {
			c := &p.inner.cells[i]
			if c.v > 0 {
				c.v = p.inner.decay.Apply(c.v, p.tick)
			}
			c.touch = p.lastRef
		}
	}
}

// Add records weight w for key at time now.
func (p *PeriodicFilter) Add(key uint64, w float64, now int64) {
	p.advance(now)
	// Cells are all current as of lastRef; add without further decay by
	// touching with the refresh timestamp.
	p.inner.Add(key, w, p.lastRef)
}

// Estimate returns the estimate of key's mass as of the last refresh
// boundary at or before now.
func (p *PeriodicFilter) Estimate(key uint64, now int64) float64 {
	p.advance(now)
	return p.inner.Estimate(key, p.lastRef)
}

// Sweeps returns how many full-array refreshes have run, the cost metric
// that distinguishes this design from the on-demand filter.
func (p *PeriodicFilter) Sweeps() int64 { return p.sweeps }

// SizeBytes returns the state footprint.
func (p *PeriodicFilter) SizeBytes() int { return p.inner.SizeBytes() }

// Reset clears all cells and the refresh clock.
func (p *PeriodicFilter) Reset() {
	p.inner.Reset()
	p.lastRef = 0
	p.sweeps = 0
}
