package tdbf

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

const sec = int64(time.Second)

func TestExponentialDecayLaw(t *testing.T) {
	e := Exponential{Tau: time.Second}
	if got := e.Apply(100, 0); got != 100 {
		t.Errorf("zero dt should not decay: %v", got)
	}
	if got := e.Apply(100, time.Second); math.Abs(got-100/math.E) > 1e-9 {
		t.Errorf("one tau should decay to v/e: %v", got)
	}
	if got := e.Apply(0, time.Hour); got != 0 {
		t.Errorf("zero mass stays zero: %v", got)
	}
	if e.Horizon() != time.Second {
		t.Error("Horizon should be tau")
	}
	if e.String() == "" {
		t.Error("String empty")
	}
}

func TestLeakyLinearDecayLaw(t *testing.T) {
	l := LeakyLinear{Rate: 10}
	if got := l.Apply(100, time.Second); got != 90 {
		t.Errorf("Apply = %v, want 90", got)
	}
	if got := l.Apply(5, time.Second); got != 0 {
		t.Errorf("clamp at zero: %v", got)
	}
	if got := l.Apply(100, 0); got != 100 {
		t.Errorf("zero dt: %v", got)
	}
	if l.Horizon() != 0 {
		t.Error("leaky Horizon should be 0")
	}
	if l.String() == "" {
		t.Error("String empty")
	}
}

func TestDecayComposition(t *testing.T) {
	laws := []Decay{Exponential{Tau: 3 * time.Second}, LeakyLinear{Rate: 7}}
	f := func(v uint32, a, b uint64) bool {
		mass := float64(v%100000) + 1
		d1 := time.Duration(a % uint64(10*time.Second))
		d2 := time.Duration(b % uint64(10*time.Second))
		for _, law := range laws {
			split := law.Apply(law.Apply(mass, d1), d2)
			whole := law.Apply(mass, d1+d2)
			if math.Abs(split-whole) > 1e-6*math.Max(1, whole) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFilterRequiresDecay(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("New without decay should panic")
		}
	}()
	New(Config{})
}

func TestFilterDefaults(t *testing.T) {
	f := New(Config{Decay: Exponential{Tau: time.Second}})
	if f.Cells() != 1<<16 || f.Hashes() != 4 {
		t.Errorf("defaults: m=%d k=%d", f.Cells(), f.Hashes())
	}
	if f.SizeBytes() != (1<<16)*16 {
		t.Errorf("SizeBytes = %d", f.SizeBytes())
	}
	if f.Decay().Horizon() != time.Second {
		t.Error("Decay accessor")
	}
}

func TestFilterNeverUnderestimates(t *testing.T) {
	// The min-rule can only overestimate: compare against exact decayed
	// mass per key under a collision-heavy configuration.
	law := Exponential{Tau: 2 * time.Second}
	f := New(Config{Cells: 512, Hashes: 4, Decay: law})
	rng := rand.New(rand.NewSource(1))

	type upd struct {
		key uint64
		w   float64
		at  int64
	}
	var updates []upd
	now := int64(0)
	for i := 0; i < 5000; i++ {
		now += rng.Int63n(2e6)
		u := upd{key: uint64(rng.Intn(300)), w: float64(40 + rng.Intn(1460)), at: now}
		updates = append(updates, u)
		f.Add(u.key, u.w, u.at)
	}
	exact := func(key uint64, at int64) float64 {
		var m float64
		for _, u := range updates {
			if u.key == key && u.at <= at {
				m += law.Apply(u.w, time.Duration(at-u.at))
			}
		}
		return m
	}
	for key := uint64(0); key < 300; key += 7 {
		want := exact(key, now)
		got := f.Estimate(key, now)
		if got < want-1e-6 {
			t.Fatalf("key %d: estimate %.3f below true decayed mass %.3f", key, got, want)
		}
	}
}

func TestFilterExactWhenNoCollisions(t *testing.T) {
	// One key in a huge filter: estimates equal the true decayed mass.
	law := Exponential{Tau: time.Second}
	f := New(Config{Cells: 1 << 16, Hashes: 4, Decay: law})
	f.Add(42, 100, 0)
	f.Add(42, 50, sec) // decayed: 100/e + 50
	want := 100/math.E + 50
	if got := f.Estimate(42, sec); math.Abs(got-want) > 1e-9 {
		t.Errorf("estimate %.6f, want %.6f", got, want)
	}
	// Reading further in the future decays further but must not mutate.
	later := f.Estimate(42, 3*sec)
	if math.Abs(later-want*math.Exp(-2)) > 1e-9 {
		t.Errorf("later estimate %.6f", later)
	}
	if again := f.Estimate(42, sec); math.Abs(again-want) > 1e-9 {
		t.Errorf("Estimate mutated state: %.6f vs %.6f", again, want)
	}
}

func TestFilterColdKeyIsZero(t *testing.T) {
	f := New(Config{Cells: 1 << 14, Hashes: 4, Decay: Exponential{Tau: time.Second}})
	f.Add(1, 1000, 0)
	if got := f.Estimate(999999, 0); got != 0 {
		t.Errorf("cold key estimate %v in near-empty filter", got)
	}
}

func TestFilterForgetsOldTraffic(t *testing.T) {
	// A burst at t=0 must be invisible after many horizons — the property
	// that makes the approach windowless.
	f := New(Config{Cells: 1 << 12, Hashes: 4, Decay: Exponential{Tau: time.Second}})
	f.Add(7, 1e9, 0)
	if got := f.Estimate(7, 40*sec); got > 1e-6 {
		t.Errorf("mass %v still visible after 40 tau", got)
	}
}

func TestFilterResetAndAdds(t *testing.T) {
	f := New(Config{Cells: 64, Hashes: 2, Decay: LeakyLinear{Rate: 1}})
	f.Add(1, 10, 0)
	f.Add(2, 10, 0)
	if f.Adds() != 2 {
		t.Error("Adds")
	}
	f.Reset()
	if f.Adds() != 0 || f.Estimate(1, 0) != 0 {
		t.Error("Reset incomplete")
	}
}

func TestMassTracker(t *testing.T) {
	m := NewMassTracker(Exponential{Tau: time.Second})
	m.Add(100, 0)
	if got := m.Value(0); got != 100 {
		t.Errorf("Value(0) = %v", got)
	}
	if got := m.Value(sec); math.Abs(got-100/math.E) > 1e-9 {
		t.Errorf("Value(1s) = %v", got)
	}
	m.Add(50, sec)
	want := 100/math.E + 50
	if got := m.Value(sec); math.Abs(got-want) > 1e-9 {
		t.Errorf("after second add: %v want %v", got, want)
	}
	m.Reset()
	if m.Value(2*sec) != 0 {
		t.Error("Reset")
	}
}

func TestMassTrackerRequiresDecay(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewMassTracker(nil) should panic")
		}
	}()
	NewMassTracker(nil)
}

func TestMassTrackerSteadyState(t *testing.T) {
	// A constant-rate flow converges to rate*tau mass, the equivalence
	// that lets continuous thresholds mirror window thresholds.
	tau := time.Second
	m := NewMassTracker(Exponential{Tau: tau})
	const perSecond = 1000.0
	const stepMs = 10
	for ts := int64(0); ts < 20*sec; ts += stepMs * int64(time.Millisecond) {
		m.Add(perSecond*stepMs/1000, ts)
	}
	got := m.Value(20 * sec)
	want := perSecond * tau.Seconds()
	if math.Abs(got-want)/want > 0.02 {
		t.Errorf("steady-state mass %.1f, want ~%.1f", got, want)
	}
}

func TestPeriodicAgreesWithOnDemand(t *testing.T) {
	// With updates aligned to tick boundaries the two designs are
	// numerically identical.
	law := Exponential{Tau: 2 * time.Second}
	tick := 100 * time.Millisecond
	onDemand := New(Config{Cells: 1 << 10, Hashes: 4, Decay: law, Seed: 9})
	periodic := NewPeriodic(Config{Cells: 1 << 10, Hashes: 4, Decay: law, Seed: 9}, tick)
	rng := rand.New(rand.NewSource(3))
	now := int64(0)
	for i := 0; i < 2000; i++ {
		now += int64(tick) * int64(1+rng.Intn(3))
		key := uint64(rng.Intn(100))
		w := float64(100 + rng.Intn(1000))
		onDemand.Add(key, w, now)
		periodic.Add(key, w, now)
	}
	for key := uint64(0); key < 100; key++ {
		a := onDemand.Estimate(key, now)
		b := periodic.Estimate(key, now)
		if math.Abs(a-b) > 1e-6*math.Max(1, a) {
			t.Fatalf("key %d: on-demand %.6f vs periodic %.6f", key, a, b)
		}
	}
	if periodic.Sweeps() == 0 {
		t.Error("periodic filter should have swept")
	}
}

func TestPeriodicQuantisation(t *testing.T) {
	// Between ticks the periodic filter holds estimates flat; after the
	// tick it catches up.
	law := Exponential{Tau: time.Second}
	tick := time.Second
	p := NewPeriodic(Config{Cells: 1 << 10, Hashes: 4, Decay: law}, tick)
	p.Add(1, 100, 0)
	if got := p.Estimate(1, int64(tick)/2); got != 100 {
		t.Errorf("mid-tick estimate %v, want undecayed 100", got)
	}
	got := p.Estimate(1, int64(tick))
	want := 100 / math.E
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("post-tick estimate %v, want %v", got, want)
	}
}

func TestPeriodicReset(t *testing.T) {
	p := NewPeriodic(Config{Cells: 64, Hashes: 2, Decay: LeakyLinear{Rate: 1}}, time.Second)
	p.Add(1, 10, 0)
	p.Estimate(1, 10*sec)
	p.Reset()
	if p.Sweeps() != 0 || p.Estimate(1, 0) != 0 {
		t.Error("Reset incomplete")
	}
	if p.SizeBytes() != 64*16 {
		t.Errorf("SizeBytes = %d", p.SizeBytes())
	}
}

func TestPeriodicPanicsOnBadTick(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewPeriodic with zero tick should panic")
		}
	}()
	NewPeriodic(Config{Decay: LeakyLinear{Rate: 1}}, 0)
}

func BenchmarkFilterAdd(b *testing.B) {
	f := New(Config{Cells: 1 << 16, Hashes: 4, Decay: Exponential{Tau: time.Second}})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		f.Add(uint64(i)&1023, 1000, int64(i)*1000)
	}
}

func BenchmarkFilterEstimate(b *testing.B) {
	f := New(Config{Cells: 1 << 16, Hashes: 4, Decay: Exponential{Tau: time.Second}})
	for i := 0; i < 10000; i++ {
		f.Add(uint64(i)&1023, 1000, int64(i)*1000)
	}
	b.ReportAllocs()
	b.ResetTimer()
	var acc float64
	for i := 0; i < b.N; i++ {
		acc += f.Estimate(uint64(i)&1023, 1e10)
	}
	_ = acc
}

func BenchmarkPeriodicAdd(b *testing.B) {
	p := NewPeriodic(Config{Cells: 1 << 16, Hashes: 4, Decay: Exponential{Tau: time.Second}}, 100*time.Millisecond)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		p.Add(uint64(i)&1023, 1000, int64(i)*1000)
	}
}

// TestFilterMergeMatchesUnionStream: merging two filters that each saw a
// substream approximates a single filter fed the interleaved union.
// Per-cell, decay laws compose over time, so the only difference is
// floating-point association of the decay factors — the values must agree
// to relative epsilon.
func TestFilterMergeMatchesUnionStream(t *testing.T) {
	cfg := Config{Cells: 1 << 12, Hashes: 4, Seed: 9, Decay: Exponential{Tau: time.Second}}
	a, b, whole := New(cfg), New(cfg), New(cfg)
	rng := rand.New(rand.NewSource(5))
	now := int64(0)
	for i := 0; i < 20000; i++ {
		now += int64(rng.Intn(200)) * int64(time.Microsecond)
		key := uint64(rng.Intn(500))
		w := float64(40 + rng.Intn(1460))
		if key%2 == 0 {
			a.Add(key, w, now)
		} else {
			b.Add(key, w, now)
		}
		whole.Add(key, w, now)
	}
	a.Merge(b)
	for key := uint64(0); key < 500; key++ {
		got, want := a.Estimate(key, now), whole.Estimate(key, now)
		if diff := got - want; diff > 1e-6*want+1e-9 || diff < -1e-6*want-1e-9 {
			t.Errorf("key %d: merged %g != union %g", key, got, want)
		}
	}
	if a.Adds() != whole.Adds() {
		t.Errorf("adds %d != %d", a.Adds(), whole.Adds())
	}
}

// TestFilterMergeNeverUnderestimates: the conservative overestimate
// survives merging — every key's true decayed substream mass stays below
// the merged estimate.
func TestFilterMergeNeverUnderestimates(t *testing.T) {
	cfg := Config{Cells: 1 << 8, Hashes: 3, Seed: 2, Decay: Exponential{Tau: 100 * time.Millisecond}}
	a, b := New(cfg), New(cfg)
	type add struct {
		key uint64
		w   float64
		at  int64
	}
	var adds []add
	rng := rand.New(rand.NewSource(6))
	now := int64(0)
	for i := 0; i < 5000; i++ { // small filter: collisions guaranteed
		now += int64(rng.Intn(300)) * int64(time.Microsecond)
		ad := add{key: uint64(rng.Intn(2000)), w: float64(100 + rng.Intn(900)), at: now}
		adds = append(adds, ad)
		if ad.key < 1000 {
			a.Add(ad.key, ad.w, ad.at)
		} else {
			b.Add(ad.key, ad.w, ad.at)
		}
	}
	a.Merge(b)
	truth := map[uint64]float64{}
	law := cfg.Decay
	for _, ad := range adds {
		truth[ad.key] += law.Apply(ad.w, time.Duration(now-ad.at))
	}
	for key, want := range truth {
		if got := a.Estimate(key, now); got < want-1e-6*want {
			t.Errorf("key %d: merged estimate %g underestimates %g", key, got, want)
		}
	}
}

// TestFilterMergeMismatchPanics pins the shape/seed guard.
func TestFilterMergeMismatchPanics(t *testing.T) {
	a := New(Config{Cells: 1 << 8, Seed: 1, Decay: Exponential{Tau: time.Second}})
	b := New(Config{Cells: 1 << 8, Seed: 2, Decay: Exponential{Tau: time.Second}})
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on seed mismatch")
		}
	}()
	a.Merge(b)
}

// TestMassTrackerMerge: two trackers over substreams merge to the union
// stream's decayed mass.
func TestMassTrackerMerge(t *testing.T) {
	law := Exponential{Tau: time.Second}
	a, b, whole := NewMassTracker(law), NewMassTracker(law), NewMassTracker(law)
	rng := rand.New(rand.NewSource(7))
	now := int64(0)
	for i := 0; i < 10000; i++ {
		now += int64(rng.Intn(500)) * int64(time.Microsecond)
		w := float64(40 + rng.Intn(1460))
		if i%3 == 0 {
			a.Add(w, now)
		} else {
			b.Add(w, now)
		}
		whole.Add(w, now)
	}
	a.Merge(b)
	got, want := a.Value(now), whole.Value(now)
	if diff := got - want; diff > 1e-6*want || diff < -1e-6*want {
		t.Errorf("merged mass %g != union %g", got, want)
	}
}
