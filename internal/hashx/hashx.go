// Package hashx provides the deterministic, seeded hash families used by
// every sketch in this repository (Count-Min, Count-Sketch, Bloom filters,
// HashPipe stages).
//
// The sketches all hash small fixed-width integer keys (packed IPv4
// prefixes), so instead of a general byte-stream hash we use integer mixing
// finalisers in the murmur3/splitmix64 tradition: a handful of
// multiply-xor-shift rounds that are avalanche-complete, allocation-free and
// — unlike hash/maphash — stable across processes, which keeps experiments
// bit-reproducible under fixed seeds.
package hashx

// Mix64 applies the splitmix64 finaliser to x. It is a bijection on uint64
// with full avalanche, making it a sound basis for seeded hash families:
// Mix64(x ^ seed) for independently drawn seeds behaves as an independent
// hash per seed.
func Mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// Mix32 folds Mix64 down to 32 bits.
func Mix32(x uint64) uint32 {
	return uint32(Mix64(x) >> 32)
}

// Seeded hashes x under the given seed. Distinct seeds yield hash functions
// that are independent for all practical sketch purposes.
func Seeded(x, seed uint64) uint64 {
	// xor-fold the seed in before and after mixing so that related seeds
	// (0,1,2,...) still produce unrelated functions.
	return Mix64(x ^ Mix64(seed^0x9e3779b97f4a7c15))
}

// Family is a fixed-size family of seeded hash functions, the shape every
// multi-row sketch needs. The zero value is unusable; construct with
// NewFamily.
type Family struct {
	seeds []uint64
}

// NewFamily derives n independent hash functions from a master seed.
func NewFamily(n int, master uint64) *Family {
	if n <= 0 {
		panic("hashx: family size must be positive")
	}
	f := &Family{seeds: make([]uint64, n)}
	s := master
	for i := range f.seeds {
		// SplitMix64 sequence: decorrelated seeds from one master.
		s += 0x9e3779b97f4a7c15
		f.seeds[i] = Mix64(s)
	}
	return f
}

// Size returns the number of functions in the family.
func (f *Family) Size() int { return len(f.seeds) }

// Hash evaluates function i of the family on x.
func (f *Family) Hash(i int, x uint64) uint64 {
	return Mix64(x ^ f.seeds[i])
}

// Index evaluates function i on x and reduces it to a bucket in [0,m) using
// the high-multiply trick, which avoids the modulo bias and the divide.
func (f *Family) Index(i int, x uint64, m int) int {
	h := f.Hash(i, x)
	return int((h >> 32) * uint64(m) >> 32)
}

// Sign evaluates function i on x and returns +1 or -1 with equal
// probability, as required by Count-Sketch estimators.
func (f *Family) Sign(i int, x uint64) int64 {
	if f.Hash(i, x)&1 == 0 {
		return 1
	}
	return -1
}

// Indices2 computes two independent hashes of x for double hashing:
// Bloom-filter cell j can then be derived as h1 + j*h2 (mod m), the
// Kirsch–Mitzenmacher construction, which preserves asymptotic
// false-positive behaviour while paying for only two hash evaluations.
func Indices2(x, seed uint64) (h1, h2 uint64) {
	h := Seeded(x, seed)
	h1 = h >> 32
	h2 = h&0xffffffff | 1 // force odd so it cycles the whole table
	return h1, h2
}

// Bucket reduces h into [0,m) without modulo bias for m << 2^32.
func Bucket(h uint64, m int) int {
	return int((h & 0xffffffff) * uint64(m) >> 32)
}
