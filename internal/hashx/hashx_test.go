package hashx

import (
	"math"
	"testing"
	"testing/quick"
)

func TestMix64Bijection(t *testing.T) {
	// A bijection never collides; spot-check determinism and non-identity.
	seen := map[uint64]uint64{}
	for i := uint64(0); i < 10000; i++ {
		h := Mix64(i)
		if prev, dup := seen[h]; dup {
			t.Fatalf("Mix64 collision: %d and %d -> %x", prev, i, h)
		}
		seen[h] = i
	}
	if Mix64(1) == 1 {
		t.Error("Mix64(1) should not be identity")
	}
	if Mix64(42) != Mix64(42) {
		t.Error("Mix64 must be deterministic")
	}
}

func TestMix64Avalanche(t *testing.T) {
	// Flipping one input bit should flip roughly half the output bits.
	const trials = 1000
	var totalFlips, totalBits int
	for i := uint64(0); i < trials; i++ {
		x := Mix64(i * 0x2545f4914f6cdd1d) // arbitrary spread of inputs
		for bit := 0; bit < 64; bit += 7 {
			d := Mix64(x) ^ Mix64(x^(1<<bit))
			totalFlips += popcount(d)
			totalBits += 64
		}
	}
	ratio := float64(totalFlips) / float64(totalBits)
	if math.Abs(ratio-0.5) > 0.02 {
		t.Errorf("avalanche ratio = %.4f, want ~0.5", ratio)
	}
}

func popcount(x uint64) int {
	n := 0
	for x != 0 {
		x &= x - 1
		n++
	}
	return n
}

func TestSeededIndependence(t *testing.T) {
	// Different seeds must produce different functions even on equal input.
	if Seeded(7, 1) == Seeded(7, 2) {
		t.Error("Seeded with different seeds collided on same input")
	}
	// Adjacent seeds should still decorrelate.
	same := 0
	for x := uint64(0); x < 1000; x++ {
		if Seeded(x, 0)>>63 == Seeded(x, 1)>>63 {
			same++
		}
	}
	if same < 400 || same > 600 {
		t.Errorf("adjacent-seed top-bit agreement %d/1000, want ~500", same)
	}
}

func TestFamilySizeAndDeterminism(t *testing.T) {
	f := NewFamily(5, 123)
	if f.Size() != 5 {
		t.Fatalf("Size() = %d, want 5", f.Size())
	}
	g := NewFamily(5, 123)
	for i := 0; i < 5; i++ {
		if f.Hash(i, 99) != g.Hash(i, 99) {
			t.Error("same master seed must reproduce the same family")
		}
	}
	h := NewFamily(5, 124)
	if f.Hash(0, 99) == h.Hash(0, 99) {
		t.Error("different master seeds should differ")
	}
}

func TestFamilyPanicsOnBadSize(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewFamily(0,_) should panic")
		}
	}()
	NewFamily(0, 1)
}

func TestIndexRange(t *testing.T) {
	f := NewFamily(3, 42)
	check := func(x uint64, m int) bool {
		if m <= 0 {
			m = 1
		}
		m = m%4096 + 1
		for i := 0; i < f.Size(); i++ {
			idx := f.Index(i, x, m)
			if idx < 0 || idx >= m {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

func TestIndexUniformity(t *testing.T) {
	f := NewFamily(1, 7)
	const m, n = 64, 64 * 1000
	counts := make([]int, m)
	for x := 0; x < n; x++ {
		counts[f.Index(0, uint64(x), m)]++
	}
	// Chi-squared against uniform: each bucket expects n/m = 1000.
	var chi2 float64
	for _, c := range counts {
		d := float64(c - n/m)
		chi2 += d * d / float64(n/m)
	}
	// 63 dof; 99.9th percentile ~ 103. Allow generous slack.
	if chi2 > 120 {
		t.Errorf("chi2 = %.1f over %d buckets; distribution too skewed", chi2, m)
	}
}

func TestSignBalance(t *testing.T) {
	f := NewFamily(2, 9)
	plus := 0
	const n = 10000
	for x := 0; x < n; x++ {
		s := f.Sign(0, uint64(x))
		if s != 1 && s != -1 {
			t.Fatalf("Sign returned %d", s)
		}
		if s == 1 {
			plus++
		}
	}
	if plus < n*45/100 || plus > n*55/100 {
		t.Errorf("sign balance %d/%d, want ~50%%", plus, n)
	}
}

func TestIndices2(t *testing.T) {
	h1a, h2a := Indices2(12345, 1)
	h1b, h2b := Indices2(12345, 1)
	if h1a != h1b || h2a != h2b {
		t.Error("Indices2 must be deterministic")
	}
	if h2a%2 == 0 {
		t.Error("h2 must be odd")
	}
	c1, c2 := Indices2(12345, 2)
	if h1a == c1 && h2a == c2 {
		t.Error("different seeds should change Indices2")
	}
}

func TestBucketRange(t *testing.T) {
	f := func(h uint64, m int) bool {
		if m <= 0 {
			m = 1
		}
		m = m%100000 + 1
		b := Bucket(h, m)
		return b >= 0 && b < m
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkMix64(b *testing.B) {
	var acc uint64
	for i := 0; i < b.N; i++ {
		acc ^= Mix64(uint64(i))
	}
	_ = acc
}

func BenchmarkFamilyIndex(b *testing.B) {
	f := NewFamily(4, 1)
	var acc int
	for i := 0; i < b.N; i++ {
		acc ^= f.Index(i&3, uint64(i), 1<<16)
	}
	_ = acc
}
