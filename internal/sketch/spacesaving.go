package sketch

import (
	"math/bits"
	"slices"

	"hiddenhhh/internal/hashx"
)

// SpaceSaving is the Metwally et al. Space-Saving summary generalised to
// weighted updates, the counter algorithm used by the per-level HHH
// engine, RHHH and WCSS.
//
// It maintains at most k (key, count, err) entries. A monitored key's
// update simply adds its weight. An unmonitored key evicts the entry with
// the minimum count m and takes count = m + w, err = m.
//
// Guarantees (N = total weight added):
//
//	Estimate(key) >= true(key)                    (never underestimates)
//	Estimate(key) -  true(key) <= N/k             (bounded overestimation)
//	any key with true(key) > N/k is monitored     (no false negatives)
//
// Internally this is a stream-summary in the spirit of Metwally's bucket
// list and of "Constant Time Updates in Hierarchical Heavy Hitters", but
// adapted to weighted updates: a linked bucket list degrades to long
// walks when byte-sized increments land in the dense count region near
// the minimum, so the buckets here are direct-addressed instead. A ring
// of ringSlots count buckets covers the window [base, base+ringSlots);
// each bucket is an intrusive doubly-linked list of the entries sharing
// that exact count, and a two-level occupancy bitmap finds the minimum
// bucket in O(1). Entries whose count grows past the window leave for an
// unsorted "hot" zone where an update is a bare count increment — under
// heavy-tailed traffic that is the vast majority of updates. The ring is
// rebuilt from the hot zone only when it runs empty, i.e. after the
// minimum has advanced by a full window, which amortises the rebuild to
// O(1) per update for packet-scale weights. The key index is open
// addressed with backward-shift deletion. All storage is allocated at
// construction and reused across Reset, so the per-packet path never
// allocates.
//
// Eviction among equal minimum counts is deterministic: the entry whose
// count changed least recently goes first (bucket lists keep arrival
// order, rebuilds sort by the recorded change stamp). HeapSpaceSaving
// implements the identical rule, which is what makes the two
// differentially testable entry for entry.
type SpaceSaving struct {
	k     int
	nodes []ssNode
	n     int // nodes in use; they are recycled in place, never freed

	// Direct-addressed count buckets over [base, base+ringSlots).
	base    int64
	minIdx  int32 // lower bound on the first occupied slot
	ringN   int   // entries currently linked into the ring
	live    bool  // ring built since the last Reset
	slots   []ssRingSlot
	words   []uint64 // occupancy bitmap, one bit per slot
	summary uint64   // one bit per occupancy word

	// Open-addressed key index.
	tab  []ssSlot
	mask uint32

	scratch []int32 // rebuild candidate buffer
	total   int64
	clock   int64 // logical time of count changes, breaks eviction ties
}

// ringSlots is the count window the direct-addressed buckets cover. It
// must comfortably exceed the common per-update weight (packet sizes top
// out around 1500 B) so that evictions and light-entry increments stay
// inside the ring; larger weights merely park entries in the hot zone
// until the next rebuild reaches them.
const ringSlots = 2048

const (
	nilIdx  = int32(-1)
	hotSlot = int32(-2) // node is in the unsorted hot zone
)

// ssNode is one monitored entry. Ring entries are linked into their count
// bucket's list; hot entries are not linked anywhere.
type ssNode struct {
	key        uint64
	count      int64
	err        int64
	stamp      int64 // logical time of the last count change
	slot       int32 // ring slot index, or hotSlot
	prev, next int32 // neighbours within the bucket's entry list
}

// ssRingSlot heads one count bucket. Entry lists keep arrival order: head
// is the entry that has sat at this count longest.
type ssRingSlot struct {
	head, tail int32
}

// ssSlot is one open-addressed index slot. node stores nodeIndex+1 so the
// zero value means empty and Reset can clear the table with one memclr.
type ssSlot struct {
	key  uint64
	node int32
}

// NewSpaceSaving builds a summary with capacity k >= 1 counters.
func NewSpaceSaving(k int) *SpaceSaving {
	if k < 1 {
		panic("sketch: SpaceSaving capacity must be >= 1")
	}
	tabSize := uint32(4)
	for tabSize < uint32(2*k) {
		tabSize <<= 1
	}
	return &SpaceSaving{
		k:       k,
		nodes:   make([]ssNode, k),
		slots:   make([]ssRingSlot, ringSlots),
		words:   make([]uint64, ringSlots/64),
		tab:     make([]ssSlot, tabSize),
		mask:    tabSize - 1,
		scratch: make([]int32, 0, k),
	}
}

// Capacity returns the configured number of counters k.
func (s *SpaceSaving) Capacity() int { return s.k }

// Len returns the number of keys currently monitored.
func (s *SpaceSaving) Len() int { return s.n }

// --- open-addressed index (linear probing, backward-shift deletion) ---

func ssHash(key uint64) uint32 { return uint32(hashx.Mix64(key)) }

// idxFind returns the node slot monitoring key, or nilIdx.
func (s *SpaceSaving) idxFind(key uint64) int32 {
	i := ssHash(key) & s.mask
	for {
		sl := s.tab[i]
		if sl.node == 0 {
			return nilIdx
		}
		if sl.key == key {
			return sl.node - 1
		}
		i = (i + 1) & s.mask
	}
}

func (s *SpaceSaving) idxInsert(key uint64, node int32) {
	i := ssHash(key) & s.mask
	for s.tab[i].node != 0 {
		i = (i + 1) & s.mask
	}
	s.tab[i] = ssSlot{key: key, node: node + 1}
}

func (s *SpaceSaving) idxDelete(key uint64) {
	i := ssHash(key) & s.mask
	for s.tab[i].key != key || s.tab[i].node == 0 {
		i = (i + 1) & s.mask
	}
	// Backward-shift deletion keeps probe chains intact without
	// tombstones, so the table never degrades across windows.
	for {
		s.tab[i] = ssSlot{}
		j := i
		for {
			j = (j + 1) & s.mask
			if s.tab[j].node == 0 {
				return
			}
			h := ssHash(s.tab[j].key) & s.mask
			// tab[j] may stay only if its home h lies cyclically in (i, j].
			if i <= j {
				if i < h && h <= j {
					continue
				}
			} else if h > i || h <= j {
				continue
			}
			s.tab[i] = s.tab[j]
			i = j
			break
		}
	}
}

// --- ring plumbing ---

// ringLink appends node ni to the bucket at ring index idx, keeping
// oldest-at-this-count-first order.
func (s *SpaceSaving) ringLink(ni, idx int32) {
	n := &s.nodes[ni]
	n.slot = idx
	n.next = nilIdx
	wi := uint32(idx) >> 6
	bit := uint64(1) << (uint32(idx) & 63)
	if s.words[wi]&bit != 0 {
		tail := s.slots[idx].tail
		n.prev = tail
		s.nodes[tail].next = ni
		s.slots[idx].tail = ni
	} else {
		n.prev = nilIdx
		s.slots[idx] = ssRingSlot{head: ni, tail: ni}
		s.words[wi] |= bit
		s.summary |= uint64(1) << wi
	}
	if idx < s.minIdx {
		s.minIdx = idx
	}
	s.ringN++
}

// ringRemove unlinks node ni from its bucket and marks it hot.
func (s *SpaceSaving) ringRemove(ni int32) {
	n := &s.nodes[ni]
	idx := n.slot
	if n.prev == nilIdx {
		s.slots[idx].head = n.next
	} else {
		s.nodes[n.prev].next = n.next
	}
	if n.next == nilIdx {
		s.slots[idx].tail = n.prev
	} else {
		s.nodes[n.next].prev = n.prev
	}
	if s.slots[idx].head == nilIdx {
		wi := uint32(idx) >> 6
		s.words[wi] &^= uint64(1) << (uint32(idx) & 63)
		if s.words[wi] == 0 {
			s.summary &^= uint64(1) << wi
		}
	}
	n.slot = hotSlot
	s.ringN--
}

// ringMin returns the first occupied slot index. The ring must be
// non-empty. minIdx is a monotone lower bound within a ring epoch, so the
// bitmap scan is amortised O(1).
func (s *SpaceSaving) ringMin() int32 {
	i := uint32(s.minIdx)
	wi := i >> 6
	w := s.words[wi] >> (i & 63) << (i & 63)
	if w == 0 {
		sum := s.summary >> (wi + 1) << (wi + 1)
		wi = uint32(bits.TrailingZeros64(sum))
		w = s.words[wi]
	}
	return int32(wi<<6 + uint32(bits.TrailingZeros64(w)))
}

// dropRing unlinks every ring entry, sending the structure back to the
// all-hot state. Only taken on the rare path where a new key arrives
// below the ring's base while the summary is still filling.
func (s *SpaceSaving) dropRing() {
	for i := 0; i < s.n; i++ {
		s.nodes[i].slot = hotSlot
	}
	clear(s.words)
	s.summary = 0
	s.ringN = 0
	s.live = false
}

// ensureRing guarantees at least one ring entry, rebuilding the window
// from the hot zone when the minimum has advanced past it.
func (s *SpaceSaving) ensureRing() {
	if s.live && s.ringN > 0 {
		return
	}
	s.rebase()
}

// rebase rebuilds the ring window anchored at the current global minimum:
// every entry within ringSlots of it is linked back into direct-addressed
// buckets, in (count, stamp) order so that eviction order is preserved.
func (s *SpaceSaving) rebase() {
	mn := s.minCount()
	s.base = mn
	s.minIdx = 0
	s.ringN = 0
	s.live = true
	clear(s.words)
	s.summary = 0
	cand := s.scratch[:0]
	for i := 0; i < s.n; i++ {
		if s.nodes[i].count-mn < ringSlots {
			cand = append(cand, int32(i))
		}
	}
	slices.SortFunc(cand, func(a, b int32) int {
		na, nb := &s.nodes[a], &s.nodes[b]
		if na.count != nb.count {
			if na.count < nb.count {
				return -1
			}
			return 1
		}
		if na.stamp < nb.stamp {
			return -1
		}
		return 1
	})
	for _, ni := range cand {
		s.ringLink(ni, int32(s.nodes[ni].count-mn))
	}
	s.scratch = cand[:0]
}

// increase adds w to node ni's count and relinks it if it is in the ring.
// Hot entries — the common case under heavy-tailed traffic — pay for a
// bare increment only.
func (s *SpaceSaving) increase(ni int32, w int64) {
	if w == 0 {
		return
	}
	n := &s.nodes[ni]
	s.clock++
	n.count += w
	n.stamp = s.clock
	if n.slot == hotSlot {
		return
	}
	s.ringRemove(ni)
	if idx := n.count - s.base; idx < ringSlots {
		s.ringLink(ni, int32(idx))
	}
}

// Update implements Sketch.
func (s *SpaceSaving) Update(key uint64, w int64) {
	s.total += w
	if ni := s.idxFind(key); ni != nilIdx {
		s.increase(ni, w)
		return
	}
	if s.n < s.k {
		ni := int32(s.n)
		s.n++
		s.clock++
		s.nodes[ni] = ssNode{key: key, count: w, stamp: s.clock, slot: hotSlot, prev: nilIdx, next: nilIdx}
		s.idxInsert(key, ni)
		if s.live {
			if w < s.base {
				s.dropRing()
			} else if idx := w - s.base; idx < ringSlots {
				s.ringLink(ni, int32(idx))
			}
		}
		return
	}
	// Evict the minimum: the head entry of the minimum bucket is the one
	// that has sat at the minimum count longest. The incoming key takes
	// over its node and inherits the minimum as error.
	s.ensureRing()
	mi := s.ringMin()
	s.minIdx = mi
	ni := s.slots[mi].head
	n := &s.nodes[ni]
	s.idxDelete(n.key)
	s.idxInsert(key, ni)
	n.key = key
	n.err = n.count
	s.increase(ni, w)
}

// minCount returns the minimum monitored count by direct scan, without
// touching the ring (unlike Min it leaves the structure untouched, so it
// is safe on a summary being read during a merge). Returns 0 when empty.
func (s *SpaceSaving) minCount() int64 {
	if s.n == 0 {
		return 0
	}
	mn := s.nodes[0].count
	for i := 1; i < s.n; i++ {
		if c := s.nodes[i].count; c < mn {
			mn = c
		}
	}
	return mn
}

// Merge folds summary o into s, producing a summary of the combined
// stream with bounded error (Agarwal et al., "Mergeable Summaries";
// Mitzenmacher, Steinke & Thaler for the Space-Saving form). o is not
// modified.
//
// For every key, the merged upper bound is the sum of the two upper
// bounds (a monitored key contributes its count, an unmonitored one the
// summary's minimum count — or 0 while the summary is below capacity),
// and the merged lower bound is the sum of the two lower bounds. The
// union is then truncated to s's capacity by keeping the k largest
// counts; every merged count is at least minS+minO, so the truncated
// summary's minimum remains a valid upper bound for unmonitored keys and
// all three Space-Saving guarantees survive with error bound the sum of
// the two inputs' bounds:
//
//	Estimate(key) - true(key) <= Ns/ks + No/ko
//
// When the two inputs summarise *disjoint* streams (the sharded
// pipeline's hash-partitioned case), the per-shard terms telescope:
// merging K shards of a stream of total weight N, each with k counters,
// keeps the overall bound at N/k — no worse than one detector over the
// whole stream.
//
// Merging an empty summary is an identity. Merge costs O((ns+no) log)
// and allocates scratch; it is a query-time path, not an ingest path.
func (s *SpaceSaving) Merge(o *SpaceSaving) {
	if o == nil || o.n == 0 {
		return
	}
	var minS, minO int64
	if s.n == s.k {
		minS = s.minCount()
	}
	if o.n == o.k {
		minO = o.minCount()
	}
	type mergedEntry struct {
		key        uint64
		count, err int64
	}
	all := make([]mergedEntry, 0, s.n+o.n)
	for i := 0; i < s.n; i++ {
		n := &s.nodes[i]
		c, e := n.count, n.err
		if oi := o.idxFind(n.key); oi != nilIdx {
			c += o.nodes[oi].count
			e += o.nodes[oi].err
		} else {
			c += minO
			e += minO
		}
		all = append(all, mergedEntry{key: n.key, count: c, err: e})
	}
	for i := 0; i < o.n; i++ {
		n := &o.nodes[i]
		if s.idxFind(n.key) != nilIdx {
			continue // already combined above
		}
		all = append(all, mergedEntry{key: n.key, count: n.count + minS, err: n.err + minS})
	}
	// Keep the k largest counts; ties break on key for determinism.
	slices.SortFunc(all, func(a, b mergedEntry) int {
		if a.count != b.count {
			if a.count > b.count {
				return -1
			}
			return 1
		}
		if a.key < b.key {
			return -1
		}
		if a.key > b.key {
			return 1
		}
		return 0
	})
	if len(all) > s.k {
		all = all[:s.k]
	}
	total := s.total + o.total
	s.Reset()
	s.total = total
	for i := range all {
		m := &all[i]
		// Stamps follow descending-count order so eviction ties after a
		// merge prefer the smaller entries first, matching the rule that
		// the least-recently-grown entry goes first.
		s.nodes[i] = ssNode{
			key:   m.key,
			count: m.count,
			err:   m.err,
			stamp: int64(len(all) - i),
			slot:  hotSlot,
			prev:  nilIdx,
			next:  nilIdx,
		}
		s.idxInsert(m.key, int32(i))
	}
	s.n = len(all)
	s.clock = int64(len(all))
}

// Estimate implements Estimator. Unmonitored keys return the minimum
// monitored count when the summary is full (the tight upper bound), or 0
// when it is not.
func (s *SpaceSaving) Estimate(key uint64) int64 {
	if ni := s.idxFind(key); ni != nilIdx {
		return s.nodes[ni].count
	}
	if s.n == s.k {
		return s.Min()
	}
	return 0
}

// ErrorBound returns the recorded overestimation bound for key (its err
// field), or the minimum count for unmonitored keys.
func (s *SpaceSaving) ErrorBound(key uint64) int64 {
	if ni := s.idxFind(key); ni != nilIdx {
		return s.nodes[ni].err
	}
	if s.n == s.k {
		return s.Min()
	}
	return 0
}

// Min returns the minimum monitored count, or 0 when empty.
func (s *SpaceSaving) Min() int64 {
	if s.n == 0 {
		return 0
	}
	s.ensureRing()
	mi := s.ringMin()
	s.minIdx = mi
	return s.base + int64(mi)
}

// Total implements Sketch.
func (s *SpaceSaving) Total() int64 { return s.total }

// Reset implements Sketch. All storage is retained: the index is cleared
// in place and nodes, buckets and bitmaps are recycled, so a
// reset-per-window discipline performs no allocation after construction.
func (s *SpaceSaving) Reset() {
	clear(s.tab)
	clear(s.words)
	s.summary = 0
	s.n = 0
	s.ringN = 0
	s.live = false
	s.minIdx = 0
	s.base = 0
	s.total = 0
	s.clock = 0
}

// ForEachTracked visits every monitored entry in unspecified order
// without allocating — the zero-allocation query path used by the HHH
// engines' conditioned bottom-up pass.
func (s *SpaceSaving) ForEachTracked(fn func(key uint64, count, errUB int64)) {
	for i := 0; i < s.n; i++ {
		n := &s.nodes[i]
		fn(n.key, n.count, n.err)
	}
}

// AppendTracked appends the currently monitored keys to dst and returns
// the extended slice; with a preallocated dst it performs no allocation.
func (s *SpaceSaving) AppendTracked(dst []KV) []KV {
	for i := 0; i < s.n; i++ {
		n := &s.nodes[i]
		dst = append(dst, KV{Key: n.key, Count: n.count, ErrUB: n.err})
	}
	return dst
}

// Tracked implements Tracker.
func (s *SpaceSaving) Tracked() []KV {
	return s.AppendTracked(make([]KV, 0, s.n))
}

// HeavyKeys implements Tracker.
func (s *SpaceSaving) HeavyKeys(threshold int64) []KV {
	var out []KV
	for i := 0; i < s.n; i++ {
		n := &s.nodes[i]
		if n.count >= threshold {
			out = append(out, KV{Key: n.key, Count: n.count, ErrUB: n.err})
		}
	}
	return out
}

// GuaranteedKeys returns keys whose *lower bound* (count - err) meets the
// threshold: detections that cannot be false positives.
func (s *SpaceSaving) GuaranteedKeys(threshold int64) []KV {
	var out []KV
	for i := 0; i < s.n; i++ {
		n := &s.nodes[i]
		if n.count-n.err >= threshold {
			out = append(out, KV{Key: n.key, Count: n.count, ErrUB: n.err})
		}
	}
	return out
}

// SizeBytes reports the exact state footprint of the summary: entry
// nodes, direct-addressed buckets with their occupancy bitmap, and the
// open-addressed key index.
func (s *SpaceSaving) SizeBytes() int {
	return len(s.nodes)*48 + len(s.slots)*8 + len(s.words)*8 + 8 + len(s.tab)*16
}
