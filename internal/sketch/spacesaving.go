package sketch

import "container/heap"

// SpaceSaving is the Metwally et al. Space-Saving summary generalised to
// weighted updates, the counter algorithm used by the per-level HHH
// engine, RHHH and WCSS.
//
// It maintains at most k (key, count, err) entries. A monitored key's
// update simply adds its weight. An unmonitored key evicts the entry with
// the minimum count m and takes count = m + w, err = m.
//
// Guarantees (N = total weight added):
//
//	Estimate(key) >= true(key)                    (never underestimates)
//	Estimate(key) -  true(key) <= N/k             (bounded overestimation)
//	any key with true(key) > N/k is monitored     (no false negatives)
//
// Internally entries sit in a min-heap on count, giving O(log k) updates;
// the hardware-oriented papers use the O(1) stream-summary list, but the
// heap has identical output semantics, which is what the experiments
// compare.
type SpaceSaving struct {
	k       int
	entries []ssEntry // heap-ordered by count
	index   map[uint64]int
	total   int64
}

type ssEntry struct {
	key   uint64
	count int64
	err   int64
}

// NewSpaceSaving builds a summary with capacity k >= 1 counters.
func NewSpaceSaving(k int) *SpaceSaving {
	if k < 1 {
		panic("sketch: SpaceSaving capacity must be >= 1")
	}
	return &SpaceSaving{
		k:     k,
		index: make(map[uint64]int, k),
	}
}

// Capacity returns the configured number of counters k.
func (s *SpaceSaving) Capacity() int { return s.k }

// Len returns the number of keys currently monitored.
func (s *SpaceSaving) Len() int { return len(s.entries) }

// Update implements Sketch.
func (s *SpaceSaving) Update(key uint64, w int64) {
	s.total += w
	if i, ok := s.index[key]; ok {
		s.entries[i].count += w
		heap.Fix(s, i)
		return
	}
	if len(s.entries) < s.k {
		heap.Push(s, ssEntry{key: key, count: w})
		return
	}
	// Evict the minimum: the incoming key inherits its count as error.
	min := &s.entries[0]
	delete(s.index, min.key)
	s.index[key] = 0
	min.err = min.count
	min.key = key
	min.count += w
	heap.Fix(s, 0)
}

// Estimate implements Estimator. Unmonitored keys return the minimum
// monitored count when the summary is full (the tight upper bound), or 0
// when it is not.
func (s *SpaceSaving) Estimate(key uint64) int64 {
	if i, ok := s.index[key]; ok {
		return s.entries[i].count
	}
	if len(s.entries) == s.k && s.k > 0 && len(s.entries) > 0 {
		return s.entries[0].count
	}
	return 0
}

// ErrorBound returns the recorded overestimation bound for key (its err
// field), or the minimum count for unmonitored keys.
func (s *SpaceSaving) ErrorBound(key uint64) int64 {
	if i, ok := s.index[key]; ok {
		return s.entries[i].err
	}
	if len(s.entries) == s.k && len(s.entries) > 0 {
		return s.entries[0].count
	}
	return 0
}

// Total implements Sketch.
func (s *SpaceSaving) Total() int64 { return s.total }

// Reset implements Sketch.
func (s *SpaceSaving) Reset() {
	s.entries = s.entries[:0]
	s.index = make(map[uint64]int, s.k)
	s.total = 0
}

// Tracked implements Tracker.
func (s *SpaceSaving) Tracked() []KV {
	out := make([]KV, 0, len(s.entries))
	for _, e := range s.entries {
		out = append(out, KV{Key: e.key, Count: e.count, ErrUB: e.err})
	}
	return out
}

// HeavyKeys implements Tracker.
func (s *SpaceSaving) HeavyKeys(threshold int64) []KV {
	var out []KV
	for _, e := range s.entries {
		if e.count >= threshold {
			out = append(out, KV{Key: e.key, Count: e.count, ErrUB: e.err})
		}
	}
	return out
}

// GuaranteedKeys returns keys whose *lower bound* (count - err) meets the
// threshold: detections that cannot be false positives.
func (s *SpaceSaving) GuaranteedKeys(threshold int64) []KV {
	var out []KV
	for _, e := range s.entries {
		if e.count-e.err >= threshold {
			out = append(out, KV{Key: e.key, Count: e.count, ErrUB: e.err})
		}
	}
	return out
}

// heap.Interface methods; Len above doubles as the heap length. Not for
// external use.

func (s *SpaceSaving) Less(i, j int) bool { return s.entries[i].count < s.entries[j].count }
func (s *SpaceSaving) Swap(i, j int) {
	s.entries[i], s.entries[j] = s.entries[j], s.entries[i]
	s.index[s.entries[i].key] = i
	s.index[s.entries[j].key] = j
}

// Push implements heap.Interface.
func (s *SpaceSaving) Push(x any) {
	e := x.(ssEntry)
	s.index[e.key] = len(s.entries)
	s.entries = append(s.entries, e)
}

// Pop implements heap.Interface.
func (s *SpaceSaving) Pop() any {
	e := s.entries[len(s.entries)-1]
	delete(s.index, e.key)
	s.entries = s.entries[:len(s.entries)-1]
	return e
}
