package sketch

import "fmt"

// RestoreSpaceSaving rebuilds a Space-Saving summary from serialized
// state: the capacity k, the summarised stream's total weight, and the
// monitored entries. The entries are installed in the canonical
// post-Merge layout (hot zone, stamps descending in slice order), so a
// restored summary is merge- and query-equivalent to the one that was
// serialized — Estimate, ErrorBound, Merge and the query paths behave
// identically. It validates instead of panicking: entry counts and
// error bounds must be non-negative with err <= count, keys must be
// unique, and at most k entries may be supplied.
func RestoreSpaceSaving(k int, total int64, entries []KV) (*SpaceSaving, error) {
	if k < 1 {
		return nil, fmt.Errorf("sketch: restore: capacity %d < 1", k)
	}
	if len(entries) > k {
		return nil, fmt.Errorf("sketch: restore: %d entries exceed capacity %d", len(entries), k)
	}
	if total < 0 {
		return nil, fmt.Errorf("sketch: restore: negative total %d", total)
	}
	s := NewSpaceSaving(k)
	s.total = total
	for i := range entries {
		e := &entries[i]
		if e.Count < 0 || e.ErrUB < 0 || e.ErrUB > e.Count {
			return nil, fmt.Errorf("sketch: restore: entry %d has invalid bounds (count=%d, err=%d)", i, e.Count, e.ErrUB)
		}
		if s.idxFind(e.Key) != nilIdx {
			return nil, fmt.Errorf("sketch: restore: duplicate key %#x", e.Key)
		}
		s.nodes[i] = ssNode{
			key:   e.Key,
			count: e.Count,
			err:   e.ErrUB,
			stamp: int64(len(entries) - i),
			slot:  hotSlot,
			prev:  nilIdx,
			next:  nilIdx,
		}
		s.idxInsert(e.Key, int32(i))
	}
	s.n = len(entries)
	s.clock = int64(len(entries))
	return s, nil
}
