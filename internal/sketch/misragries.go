package sketch

// MisraGries is the deterministic frequent-items summary generalised to
// weighted updates. With k counters and total weight N it guarantees
//
//	true(key) - N/(k+1) <= Estimate(key) <= true(key)
//
// i.e. — dual to Space-Saving — it never *over*estimates. Keys whose true
// weight exceeds N/(k+1) are always present.
type MisraGries struct {
	k     int
	m     map[uint64]int64
	total int64
}

// NewMisraGries builds a summary with capacity k >= 1 counters.
func NewMisraGries(k int) *MisraGries {
	if k < 1 {
		panic("sketch: MisraGries capacity must be >= 1")
	}
	return &MisraGries{k: k, m: make(map[uint64]int64, k+1)}
}

// Capacity returns the configured number of counters.
func (g *MisraGries) Capacity() int { return g.k }

// Len returns the number of keys currently held.
func (g *MisraGries) Len() int { return len(g.m) }

// Update implements Sketch.
func (g *MisraGries) Update(key uint64, w int64) {
	g.total += w
	if _, ok := g.m[key]; ok {
		g.m[key] += w
		return
	}
	g.m[key] = w
	if len(g.m) <= g.k {
		return
	}
	// Overflow: subtract the minimum counter value from everything and
	// drop zeros — the weighted decrement step.
	min := int64(1<<63 - 1)
	for _, v := range g.m {
		if v < min {
			min = v
		}
	}
	for k2, v := range g.m {
		if v <= min {
			delete(g.m, k2)
		} else {
			g.m[k2] = v - min
		}
	}
}

// Estimate implements Estimator. Absent keys estimate 0 (a valid lower
// bound).
func (g *MisraGries) Estimate(key uint64) int64 { return g.m[key] }

// Total implements Sketch.
func (g *MisraGries) Total() int64 { return g.total }

// Reset implements Sketch.
func (g *MisraGries) Reset() {
	g.m = make(map[uint64]int64, g.k+1)
	g.total = 0
}

// Tracked implements Tracker. ErrUB for Misra–Gries is the global
// decrement bound N/(k+1); individual entries do not track it, so it is
// reported as 0 and estimates are lower bounds.
func (g *MisraGries) Tracked() []KV {
	out := make([]KV, 0, len(g.m))
	for k, v := range g.m {
		out = append(out, KV{Key: k, Count: v})
	}
	return out
}

// HeavyKeys implements Tracker.
func (g *MisraGries) HeavyKeys(threshold int64) []KV {
	var out []KV
	for k, v := range g.m {
		if v >= threshold {
			out = append(out, KV{Key: k, Count: v})
		}
	}
	return out
}
