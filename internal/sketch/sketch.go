// Package sketch implements the streaming frequency-estimation substrates
// that hierarchical-heavy-hitter detectors are built from: an exact map
// counter (ground truth), Misra–Gries and Space-Saving (counter-based,
// key-tracking), and Count-Min / Count-Sketch (hash-based).
//
// All sketches count *weighted* updates — a packet contributes its byte
// size, not 1 — because the paper defines heavy hitters by byte volume.
// Keys are opaque uint64 values; callers pack IPv4 prefixes with
// ipv4.Prefix.Key.
package sketch

// Estimator is the query side shared by every sketch: a (possibly
// approximate) frequency oracle over uint64 keys.
type Estimator interface {
	// Estimate returns the sketch's estimate of the total weight added for
	// key. Guarantees differ per implementation and are documented there.
	Estimate(key uint64) int64
}

// Sketch is a weighted streaming frequency summary.
type Sketch interface {
	Estimator
	// Update adds weight w (w >= 0) for key.
	Update(key uint64, w int64)
	// Total returns the sum of all weights added since the last Reset.
	Total() int64
	// Reset returns the sketch to its empty state, retaining configuration.
	Reset()
}

// KV is a key with its estimated weight, as returned by key-tracking
// sketches.
type KV struct {
	Key   uint64
	Count int64 // estimated weight (upper bound for Space-Saving)
	ErrUB int64 // upper bound on overestimation (0 for exact)
}

// Tracker is implemented by sketches that maintain an explicit key set
// (Exact, Misra–Gries, Space-Saving) and can therefore enumerate heavy-key
// candidates without an external key stream.
type Tracker interface {
	Sketch
	// Tracked returns the currently monitored keys and their estimates, in
	// unspecified order.
	Tracked() []KV
	// HeavyKeys returns tracked keys whose estimate is >= threshold.
	HeavyKeys(threshold int64) []KV
}

// Exact is a map-backed exact counter. It implements Tracker and serves as
// ground truth in tests and as the aggregate of the offline window engines.
// The zero value is ready to use.
type Exact struct {
	m     map[uint64]int64
	total int64
}

// NewExact returns an empty exact counter with a size hint.
func NewExact(sizeHint int) *Exact {
	return &Exact{m: make(map[uint64]int64, sizeHint)}
}

// Update implements Sketch.
func (e *Exact) Update(key uint64, w int64) {
	if e.m == nil {
		e.m = make(map[uint64]int64)
	}
	e.m[key] += w
	e.total += w
}

// Remove subtracts weight w for key, deleting the entry when it reaches
// zero. Sliding-window engines use this to evict expired buckets. It panics
// if the removal would drive the key negative, which indicates an eviction
// bug rather than a recoverable condition.
func (e *Exact) Remove(key uint64, w int64) {
	v, ok := e.m[key]
	if !ok || v < w {
		panic("sketch: Exact.Remove below zero")
	}
	if v == w {
		delete(e.m, key)
	} else {
		e.m[key] = v - w
	}
	e.total -= w
}

// Estimate implements Estimator; exact counters have no error.
func (e *Exact) Estimate(key uint64) int64 { return e.m[key] }

// Total implements Sketch.
func (e *Exact) Total() int64 { return e.total }

// Len returns the number of distinct keys currently held.
func (e *Exact) Len() int { return len(e.m) }

// Reset implements Sketch.
func (e *Exact) Reset() {
	e.m = make(map[uint64]int64)
	e.total = 0
}

// Tracked implements Tracker.
func (e *Exact) Tracked() []KV {
	out := make([]KV, 0, len(e.m))
	for k, v := range e.m {
		out = append(out, KV{Key: k, Count: v})
	}
	return out
}

// HeavyKeys implements Tracker.
func (e *Exact) HeavyKeys(threshold int64) []KV {
	var out []KV
	for k, v := range e.m {
		if v >= threshold {
			out = append(out, KV{Key: k, Count: v})
		}
	}
	return out
}

// ForEach visits every (key, count) pair in unspecified order.
func (e *Exact) ForEach(fn func(key uint64, count int64)) {
	for k, v := range e.m {
		fn(k, v)
	}
}

// Clone returns an independent deep copy; experiment code uses this to
// branch per-window aggregates.
func (e *Exact) Clone() *Exact {
	c := &Exact{m: make(map[uint64]int64, len(e.m)), total: e.total}
	for k, v := range e.m {
		c.m[k] = v
	}
	return c
}

// AddAll merges other into e.
func (e *Exact) AddAll(other *Exact) {
	if e.m == nil {
		e.m = make(map[uint64]int64, other.Len())
	}
	for k, v := range other.m {
		e.m[k] += v
	}
	e.total += other.total
}
