package sketch

import (
	"math/rand"
	"sort"
	"testing"
)

// sortedTracked returns a sketch's tracked set sorted by key for
// order-insensitive comparison.
func sortedTracked(kvs []KV) []KV {
	sort.Slice(kvs, func(i, j int) bool { return kvs[i].Key < kvs[j].Key })
	return kvs
}

// requireIdentical asserts that the stream-summary and the heap oracle
// agree on every observable: total, monitored set, counts, error bounds
// and unmonitored-key estimates.
func requireIdentical(t *testing.T, tag string, ss *SpaceSaving, or *HeapSpaceSaving, probes []uint64) {
	t.Helper()
	if ss.Total() != or.Total() {
		t.Fatalf("%s: Total %d != oracle %d", tag, ss.Total(), or.Total())
	}
	if ss.Len() != or.Len() {
		t.Fatalf("%s: Len %d != oracle %d", tag, ss.Len(), or.Len())
	}
	if ss.Min() != or.Min() {
		t.Fatalf("%s: Min %d != oracle %d", tag, ss.Min(), or.Min())
	}
	a, b := sortedTracked(ss.Tracked()), sortedTracked(or.Tracked())
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("%s: tracked[%d] = %+v, oracle has %+v", tag, i, a[i], b[i])
		}
	}
	for _, key := range probes {
		if g, w := ss.Estimate(key), or.Estimate(key); g != w {
			t.Fatalf("%s: Estimate(%d) = %d, oracle %d", tag, key, g, w)
		}
		if g, w := ss.ErrorBound(key), or.ErrorBound(key); g != w {
			t.Fatalf("%s: ErrorBound(%d) = %d, oracle %d", tag, key, g, w)
		}
	}
}

// TestSpaceSavingDifferentialVsHeapOracle drives the O(1) stream-summary
// and the heap-based oracle through identical million-update random
// weighted streams and requires bit-identical observable state, including
// at intermediate checkpoints and across window resets. This is the
// acceptance proof that the constant-time rewrite changed the data
// structure, not the algorithm.
func TestSpaceSavingDifferentialVsHeapOracle(t *testing.T) {
	if testing.Short() {
		t.Skip("million-update differential stream")
	}
	const updates = 1 << 20 // >= 10^6 updates
	cases := []struct {
		name     string
		k        int
		universe int
		zipfS    float64
	}{
		{"k16-dense", 16, 64, 1.1},       // constant eviction churn, many count ties
		{"k128-skewed", 128, 4096, 1.4},  // heavy-hitter regime
		{"k512-wide", 512, 1 << 16, 1.2}, // detector-sized summary
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(0xD1FF + int64(tc.k)))
			z := rand.NewZipf(rng, tc.zipfS, 1, uint64(tc.universe-1))
			ss := NewSpaceSaving(tc.k)
			or := NewHeapSpaceSaving(tc.k)
			probes := make([]uint64, 256)
			for i := range probes {
				probes[i] = uint64(rng.Intn(tc.universe))
			}
			checkpoint := updates / 8
			for i := 0; i < updates; i++ {
				key := z.Uint64()
				var w int64
				switch i % 3 {
				case 0:
					w = int64(40 + rng.Intn(1460)) // packet-sized weights
				case 1:
					w = int64(rng.Intn(4)) // tiny weights incl. zero
				default:
					w = 1 // unit updates
				}
				ss.Update(key, w)
				or.Update(key, w)
				if (i+1)%checkpoint == 0 {
					requireIdentical(t, tc.name, ss, or, probes)
				}
			}
			requireIdentical(t, tc.name+"/final", ss, or, probes)

			// Reset must return both to identical empty state and stay
			// equivalent through a second (shorter) window.
			ss.Reset()
			or.Reset()
			requireIdentical(t, tc.name+"/reset", ss, or, probes)
			for i := 0; i < updates/16; i++ {
				key := z.Uint64()
				w := int64(1 + rng.Intn(1500))
				ss.Update(key, w)
				or.Update(key, w)
			}
			requireIdentical(t, tc.name+"/rewindowed", ss, or, probes)
		})
	}
}

// TestSpaceSavingDifferentialAdversarialTies hammers the deterministic
// tie-break: unit weights over a tiny universe make almost every eviction
// choose among multiple minimum-count entries.
func TestSpaceSavingDifferentialAdversarialTies(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	ss := NewSpaceSaving(8)
	or := NewHeapSpaceSaving(8)
	probes := make([]uint64, 24)
	for i := range probes {
		probes[i] = uint64(i)
	}
	for i := 0; i < 200000; i++ {
		key := uint64(rng.Intn(24))
		ss.Update(key, 1)
		or.Update(key, 1)
		if i%1000 == 999 {
			requireIdentical(t, "ties", ss, or, probes)
		}
	}
}

// TestSpaceSavingGuaranteesProperty re-checks the three Space-Saving
// guarantees on the stream-summary against exact ground truth across
// several random weighted streams:
//
//	(1) estimates never underestimate,
//	(2) overestimation is bounded by N/k (and by the recorded err),
//	(3) every key above N/k is monitored (no false negatives).
func TestSpaceSavingGuaranteesProperty(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		const k = 96
		stream := zipfStream(40000, 3000, 100+seed)
		truth := exactOf(stream)
		N := totalOf(stream)
		ss := NewSpaceSaving(k)
		for _, kv := range stream {
			ss.Update(kv.Key, kv.Count)
		}
		if ss.Total() != N {
			t.Fatalf("seed %d: Total = %d, want %d", seed, ss.Total(), N)
		}
		monitored := map[uint64]bool{}
		for _, kv := range ss.Tracked() {
			monitored[kv.Key] = true
			over := kv.Count - truth[kv.Key]
			if over < 0 {
				t.Fatalf("seed %d: key %d underestimated: %d < %d",
					seed, kv.Key, kv.Count, truth[kv.Key])
			}
			if over > N/k {
				t.Fatalf("seed %d: overestimation %d exceeds N/k = %d", seed, over, N/k)
			}
			if over > kv.ErrUB {
				t.Fatalf("seed %d: recorded err %d below actual overestimation %d",
					seed, kv.ErrUB, over)
			}
		}
		for key, want := range truth {
			if got := ss.Estimate(key); got < want {
				t.Fatalf("seed %d: Estimate(%d) = %d underestimates %d", seed, key, got, want)
			}
			if want > N/k && !monitored[key] {
				t.Fatalf("seed %d: key %d with weight %d > N/k=%d not monitored",
					seed, key, want, N/k)
			}
		}
	}
}

// TestSpaceSavingAppendTrackedMatchesTracked pins the zero-allocation
// iteration paths to the allocating one.
func TestSpaceSavingAppendTrackedMatchesTracked(t *testing.T) {
	stream := zipfStream(20000, 2000, 42)
	ss := NewSpaceSaving(64)
	for _, kv := range stream {
		ss.Update(kv.Key, kv.Count)
	}
	want := sortedTracked(ss.Tracked())
	got := sortedTracked(ss.AppendTracked(make([]KV, 0, 64)))
	if len(got) != len(want) {
		t.Fatalf("AppendTracked len %d, Tracked len %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("AppendTracked[%d] = %+v, want %+v", i, got[i], want[i])
		}
	}
	var visited []KV
	ss.ForEachTracked(func(key uint64, count, errUB int64) {
		visited = append(visited, KV{Key: key, Count: count, ErrUB: errUB})
	})
	visited = sortedTracked(visited)
	for i := range visited {
		if visited[i] != want[i] {
			t.Fatalf("ForEachTracked[%d] = %+v, want %+v", i, visited[i], want[i])
		}
	}
}

// TestSpaceSavingResetReusesStorage verifies the zero-allocation window
// reset: after Reset the summary must behave like a fresh one while
// retaining its backing arrays.
func TestSpaceSavingResetReusesStorage(t *testing.T) {
	ss := NewSpaceSaving(32)
	fresh := NewSpaceSaving(32)
	stream := zipfStream(5000, 500, 77)
	for window := 0; window < 4; window++ {
		for _, kv := range stream {
			ss.Update(kv.Key, kv.Count)
			fresh.Update(kv.Key, kv.Count)
		}
		a, b := sortedTracked(ss.Tracked()), sortedTracked(fresh.Tracked())
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("window %d: reused summary diverged from fresh: %+v vs %+v",
					window, a[i], b[i])
			}
		}
		ss.Reset()
		fresh = NewSpaceSaving(32)
		if ss.Len() != 0 || ss.Total() != 0 || ss.Min() != 0 {
			t.Fatal("Reset incomplete")
		}
	}
}
