package sketch

import (
	"sort"

	"hiddenhhh/internal/hashx"
)

// CountSketch is the Charikar–Chen–Farach-Colton sketch: like Count-Min but
// with ±1 sign hashes and a median estimator, giving an *unbiased* estimate
// with error proportional to the stream's L2 norm instead of L1. It is the
// inner sketch of the UnivMon universal-monitoring baseline.
type CountSketch struct {
	depth int
	width int
	rows  []int64
	idx   *hashx.Family // bucket hashes
	sgn   *hashx.Family // sign hashes
	total int64
	med   []int64 // scratch for median
}

// CountSketchOpts configures a CountSketch.
type CountSketchOpts struct {
	Depth int    // rows; odd values make the median well-defined; default 5
	Width int    // counters per row; default 2048
	Seed  uint64 // hash seed
}

func (o *CountSketchOpts) setDefaults() {
	if o.Depth <= 0 {
		o.Depth = 5
	}
	if o.Width <= 0 {
		o.Width = 2048
	}
}

// NewCountSketch builds a sketch from opts.
func NewCountSketch(opts CountSketchOpts) *CountSketch {
	opts.setDefaults()
	return &CountSketch{
		depth: opts.Depth,
		width: opts.Width,
		rows:  make([]int64, opts.Depth*opts.Width),
		idx:   hashx.NewFamily(opts.Depth, opts.Seed),
		sgn:   hashx.NewFamily(opts.Depth, opts.Seed^0xabcdef1234567890),
		med:   make([]int64, opts.Depth),
	}
}

// SizeBytes returns the memory footprint of the counter array.
func (c *CountSketch) SizeBytes() int { return len(c.rows) * 8 }

// Update implements Sketch.
func (c *CountSketch) Update(key uint64, w int64) {
	c.total += w
	for i := 0; i < c.depth; i++ {
		c.rows[i*c.width+c.idx.Index(i, key, c.width)] += c.sgn.Sign(i, key) * w
	}
}

// Estimate implements Estimator: the median across rows of the signed cell
// values. Unlike Count-Min the result can be negative for absent keys; it
// is unbiased rather than one-sided.
func (c *CountSketch) Estimate(key uint64) int64 {
	for i := 0; i < c.depth; i++ {
		c.med[i] = c.sgn.Sign(i, key) * c.rows[i*c.width+c.idx.Index(i, key, c.width)]
	}
	sort.Slice(c.med, func(a, b int) bool { return c.med[a] < c.med[b] })
	return c.med[c.depth/2]
}

// Total implements Sketch.
func (c *CountSketch) Total() int64 { return c.total }

// Reset implements Sketch.
func (c *CountSketch) Reset() {
	for i := range c.rows {
		c.rows[i] = 0
	}
	c.total = 0
}

// L2Estimate returns an estimate of the squared L2 norm of the frequency
// vector (median across rows of the row's sum of squared cells). UnivMon
// uses this to normalise its per-level heavy-hitter thresholds.
func (c *CountSketch) L2Estimate() int64 {
	for i := 0; i < c.depth; i++ {
		var s int64
		row := c.rows[i*c.width : (i+1)*c.width]
		for _, v := range row {
			s += v * v
		}
		c.med[i] = s
	}
	sort.Slice(c.med, func(a, b int) bool { return c.med[a] < c.med[b] })
	return c.med[c.depth/2]
}
