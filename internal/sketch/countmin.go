package sketch

import "hiddenhhh/internal/hashx"

// CountMin is the Cormode–Muthukrishnan Count-Min sketch with optional
// conservative update. With depth d and width w it guarantees, for total
// weight N:
//
//	true(key) <= Estimate(key)                         (always)
//	Estimate(key) <= true(key) + e*N/w  w.p. 1-(1/2)^d (plain update)
//
// Conservative update only raises the cells that constrain the key's
// current estimate, which strictly reduces overestimation at the cost of
// making the sketch non-mergeable; the per-level HHH engine exposes it as
// an ablation knob.
type CountMin struct {
	depth        int
	width        int
	conservative bool
	rows         []int64 // depth*width, row-major
	fam          *hashx.Family
	total        int64
}

// CountMinOpts configures a CountMin sketch.
type CountMinOpts struct {
	Depth        int    // number of rows (hash functions); default 4
	Width        int    // counters per row; default 2048
	Seed         uint64 // hash seed; fixed default for reproducibility
	Conservative bool   // enable conservative update
}

func (o *CountMinOpts) setDefaults() {
	if o.Depth <= 0 {
		o.Depth = 4
	}
	if o.Width <= 0 {
		o.Width = 2048
	}
}

// NewCountMin builds a sketch from opts.
func NewCountMin(opts CountMinOpts) *CountMin {
	opts.setDefaults()
	return &CountMin{
		depth:        opts.Depth,
		width:        opts.Width,
		conservative: opts.Conservative,
		rows:         make([]int64, opts.Depth*opts.Width),
		fam:          hashx.NewFamily(opts.Depth, opts.Seed),
	}
}

// Depth returns the number of rows.
func (c *CountMin) Depth() int { return c.depth }

// Width returns the number of counters per row.
func (c *CountMin) Width() int { return c.width }

// SizeBytes returns the memory footprint of the counter array, the number
// the resource-utilisation experiment reports.
func (c *CountMin) SizeBytes() int { return len(c.rows) * 8 }

// Update implements Sketch.
func (c *CountMin) Update(key uint64, w int64) {
	c.total += w
	if !c.conservative {
		for i := 0; i < c.depth; i++ {
			c.rows[i*c.width+c.fam.Index(i, key, c.width)] += w
		}
		return
	}
	// Conservative update: raise every cell only as far as est+w.
	est := c.estimate(key)
	target := est + w
	for i := 0; i < c.depth; i++ {
		cell := &c.rows[i*c.width+c.fam.Index(i, key, c.width)]
		if *cell < target {
			*cell = target
		}
	}
}

func (c *CountMin) estimate(key uint64) int64 {
	min := int64(1<<63 - 1)
	for i := 0; i < c.depth; i++ {
		v := c.rows[i*c.width+c.fam.Index(i, key, c.width)]
		if v < min {
			min = v
		}
	}
	return min
}

// Estimate implements Estimator.
func (c *CountMin) Estimate(key uint64) int64 { return c.estimate(key) }

// Total implements Sketch.
func (c *CountMin) Total() int64 { return c.total }

// Reset implements Sketch.
func (c *CountMin) Reset() {
	for i := range c.rows {
		c.rows[i] = 0
	}
	c.total = 0
}
