package sketch

import (
	"math/rand"
	"testing"
)

// mergeStream is one synthetic weighted stream: zipf-ish keys, packet-like
// weights, reproducible under seed.
func mergeStream(seed int64, n, keys int) [][2]int64 {
	rng := rand.New(rand.NewSource(seed))
	out := make([][2]int64, n)
	for i := range out {
		// Quadratic skew concentrates weight on low keys, the regime
		// Space-Saving is designed for.
		k := int64(float64(keys) * rng.Float64() * rng.Float64())
		w := int64(40 + rng.Intn(1460))
		out[i] = [2]int64{k, w}
	}
	return out
}

func feed(s *SpaceSaving, ex *Exact, stream [][2]int64) {
	for _, kw := range stream {
		s.Update(uint64(kw[0]), kw[1])
		if ex != nil {
			ex.Update(uint64(kw[0]), kw[1])
		}
	}
}

// TestSpaceSavingMergeBounds checks the merged summary's per-key
// guarantees against exact counts of the combined stream: the lower bound
// (count-err) never exceeds the true count, the count never falls below
// it, total is the combined weight, and the overestimate stays within the
// summed N/k bound.
func TestSpaceSavingMergeBounds(t *testing.T) {
	const k = 64
	for _, tc := range []struct {
		name      string
		na, nb    int
		keys      int
		seedA, sB int64
	}{
		{"balanced", 20000, 20000, 400, 1, 2},
		{"skewSizes", 30000, 5000, 300, 3, 4},
		{"fewKeysExact", 8000, 8000, 40, 5, 6}, // fits in k: no error at all
		{"manyKeys", 25000, 25000, 5000, 7, 8},
	} {
		t.Run(tc.name, func(t *testing.T) {
			a, b := NewSpaceSaving(k), NewSpaceSaving(k)
			exact := NewExact(1024)
			sa := mergeStream(tc.seedA, tc.na, tc.keys)
			sb := mergeStream(tc.sB, tc.nb, tc.keys)
			feed(a, exact, sa)
			feed(b, exact, sb)

			bound := a.Total()/int64(k) + b.Total()/int64(k)
			wantTotal := a.Total() + b.Total()
			a.Merge(b)
			if a.Total() != wantTotal {
				t.Fatalf("merged total = %d, want %d", a.Total(), wantTotal)
			}
			if a.Len() > k {
				t.Fatalf("merged len %d exceeds capacity %d", a.Len(), k)
			}
			a.ForEachTracked(func(key uint64, count, errUB int64) {
				truth := exact.Estimate(key)
				if count < truth {
					t.Errorf("key %d: merged estimate %d underestimates true %d", key, count, truth)
				}
				if count-errUB > truth {
					t.Errorf("key %d: merged lower bound %d exceeds true %d", key, count-errUB, truth)
				}
				if count-truth > bound {
					t.Errorf("key %d: overestimate %d exceeds summed bound %d", key, count-truth, bound)
				}
			})
			// Unmonitored keys must still be upper-bounded by the estimate.
			exact.ForEach(func(key uint64, truth int64) {
				if est := a.Estimate(key); est < truth {
					t.Errorf("key %d: estimate %d below true %d", key, est, truth)
				}
			})
			// The merged summary must keep monitoring every key that could
			// exceed the summed error bound (no false negatives).
			exact.ForEach(func(key uint64, truth int64) {
				if truth > bound {
					if a.idxFind(key) == nilIdx {
						t.Errorf("key %d with true count %d > bound %d not monitored after merge", key, truth, bound)
					}
				}
			})
		})
	}
}

// TestSpaceSavingMergeEmptyIdentity checks both identity directions:
// merging an empty summary changes nothing, and merging into an empty
// summary copies the other side entry for entry.
func TestSpaceSavingMergeEmptyIdentity(t *testing.T) {
	const k = 32
	stream := mergeStream(11, 15000, 500)

	full := NewSpaceSaving(k)
	feed(full, nil, stream)
	ref := NewSpaceSaving(k)
	feed(ref, nil, stream)

	entries := func(s *SpaceSaving) map[uint64][2]int64 {
		m := map[uint64][2]int64{}
		s.ForEachTracked(func(key uint64, count, errUB int64) {
			m[key] = [2]int64{count, errUB}
		})
		return m
	}

	full.Merge(NewSpaceSaving(k))
	if got, want := entries(full), entries(ref); len(got) != len(want) {
		t.Fatalf("merge with empty changed entry count: %d != %d", len(got), len(want))
	} else {
		for key, w := range want {
			if got[key] != w {
				t.Fatalf("merge with empty changed key %d: %v != %v", key, got[key], w)
			}
		}
	}
	if full.Total() != ref.Total() {
		t.Fatalf("merge with empty changed total: %d != %d", full.Total(), ref.Total())
	}

	empty := NewSpaceSaving(k)
	empty.Merge(ref)
	if got, want := entries(empty), entries(ref); len(got) != len(want) {
		t.Fatalf("merge into empty dropped entries: %d != %d", len(got), len(want))
	} else {
		for key, w := range want {
			if got[key] != w {
				t.Fatalf("merge into empty changed key %d: %v != %v", key, got[key], w)
			}
		}
	}
	if empty.Total() != ref.Total() {
		t.Fatalf("merge into empty total: %d != %d", empty.Total(), ref.Total())
	}
}

// TestSpaceSavingMergeDisjointPartition checks the sharded-pipeline
// telescoping property: hash-partitioning one stream across K summaries
// and merging them keeps the error within the single-summary N/k bound.
func TestSpaceSavingMergeDisjointPartition(t *testing.T) {
	const k = 64
	for _, K := range []int{2, 4, 8} {
		stream := mergeStream(21, 40000, 800)
		exact := NewExact(1024)
		shards := make([]*SpaceSaving, K)
		for i := range shards {
			shards[i] = NewSpaceSaving(k)
		}
		var total int64
		for _, kw := range stream {
			exact.Update(uint64(kw[0]), kw[1])
			shards[uint64(kw[0])%uint64(K)].Update(uint64(kw[0]), kw[1])
			total += kw[1]
		}
		merged := NewSpaceSaving(k)
		for _, sh := range shards {
			merged.Merge(sh)
		}
		if merged.Total() != total {
			t.Fatalf("K=%d: merged total %d != %d", K, merged.Total(), total)
		}
		bound := total / int64(k) // telescoped: sum of Ni/k over the partition
		merged.ForEachTracked(func(key uint64, count, errUB int64) {
			truth := exact.Estimate(key)
			if count < truth {
				t.Errorf("K=%d key %d: underestimate %d < %d", K, key, count, truth)
			}
			if count-truth > bound {
				t.Errorf("K=%d key %d: overestimate %d exceeds telescoped bound %d", K, key, count-truth, bound)
			}
		})
	}
}

// TestSpaceSavingMergeUsableAfter verifies a merged summary keeps
// functioning as a live stream summary: updates, evictions and queries
// after a merge behave identically to a summary rebuilt from scratch
// state (structure invariants hold, no panics, bounds persist).
func TestSpaceSavingMergeUsableAfter(t *testing.T) {
	const k = 48
	a, b := NewSpaceSaving(k), NewSpaceSaving(k)
	exact := NewExact(1024)
	feed(a, exact, mergeStream(31, 12000, 600))
	feed(b, exact, mergeStream(32, 12000, 600))
	a.Merge(b)
	// Keep streaming into the merged summary.
	post := mergeStream(33, 12000, 600)
	feed(a, exact, post)
	bound := a.Total() / int64(k) * 2 // two k-counter summaries' worth of error
	a.ForEachTracked(func(key uint64, count, errUB int64) {
		truth := exact.Estimate(key)
		if count < truth {
			t.Errorf("key %d: post-merge underestimate %d < %d", key, count, truth)
		}
		if count-truth > bound {
			t.Errorf("key %d: post-merge overestimate %d > %d", key, count-truth, bound)
		}
	})
	if a.Len() != k {
		t.Fatalf("post-merge summary not full: %d != %d", a.Len(), k)
	}
}
