package sketch

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// zipfStream draws n weighted updates over a key universe with a skewed
// (heavy-tailed) distribution, the regime sketches are designed for.
func zipfStream(n int, universe int, seed int64) []KV {
	rng := rand.New(rand.NewSource(seed))
	z := rand.NewZipf(rng, 1.2, 1, uint64(universe-1))
	out := make([]KV, n)
	for i := range out {
		out[i] = KV{Key: z.Uint64(), Count: int64(40 + rng.Intn(1460))}
	}
	return out
}

func exactOf(stream []KV) map[uint64]int64 {
	m := map[uint64]int64{}
	for _, kv := range stream {
		m[kv.Key] += kv.Count
	}
	return m
}

func totalOf(stream []KV) int64 {
	var t int64
	for _, kv := range stream {
		t += kv.Count
	}
	return t
}

func TestExactBasics(t *testing.T) {
	e := NewExact(0)
	e.Update(1, 10)
	e.Update(2, 20)
	e.Update(1, 5)
	if e.Estimate(1) != 15 || e.Estimate(2) != 20 || e.Estimate(3) != 0 {
		t.Error("exact estimates wrong")
	}
	if e.Total() != 35 || e.Len() != 2 {
		t.Errorf("total=%d len=%d", e.Total(), e.Len())
	}
	hk := e.HeavyKeys(16)
	if len(hk) != 1 || hk[0].Key != 2 {
		t.Errorf("HeavyKeys(16) = %v", hk)
	}
	if len(e.Tracked()) != 2 {
		t.Error("Tracked size")
	}
	e.Remove(1, 15)
	if e.Len() != 1 || e.Total() != 20 {
		t.Error("Remove did not delete zeroed key")
	}
	e.Reset()
	if e.Len() != 0 || e.Total() != 0 {
		t.Error("Reset")
	}
}

func TestExactZeroValue(t *testing.T) {
	var e Exact
	e.Update(7, 3)
	if e.Estimate(7) != 3 {
		t.Error("zero-value Exact must be usable")
	}
}

func TestExactRemovePanics(t *testing.T) {
	e := NewExact(0)
	e.Update(1, 5)
	defer func() {
		if recover() == nil {
			t.Error("Remove below zero should panic")
		}
	}()
	e.Remove(1, 6)
}

func TestExactCloneIndependent(t *testing.T) {
	e := NewExact(0)
	e.Update(1, 10)
	c := e.Clone()
	c.Update(1, 5)
	if e.Estimate(1) != 10 || c.Estimate(1) != 15 {
		t.Error("Clone is not independent")
	}
}

func TestExactAddAll(t *testing.T) {
	a := NewExact(0)
	a.Update(1, 10)
	b := NewExact(0)
	b.Update(1, 5)
	b.Update(2, 7)
	a.AddAll(b)
	if a.Estimate(1) != 15 || a.Estimate(2) != 7 || a.Total() != 22 {
		t.Error("AddAll merge wrong")
	}
}

func TestExactForEach(t *testing.T) {
	e := NewExact(0)
	e.Update(1, 1)
	e.Update(2, 2)
	sum := int64(0)
	e.ForEach(func(_ uint64, c int64) { sum += c })
	if sum != 3 {
		t.Errorf("ForEach sum = %d", sum)
	}
}

func TestSpaceSavingNeverUnderestimates(t *testing.T) {
	stream := zipfStream(20000, 5000, 1)
	truth := exactOf(stream)
	ss := NewSpaceSaving(64)
	for _, kv := range stream {
		ss.Update(kv.Key, kv.Count)
	}
	for key, want := range truth {
		if got := ss.Estimate(key); got < want {
			t.Fatalf("SpaceSaving underestimated key %d: %d < %d", key, got, want)
		}
	}
}

func TestSpaceSavingErrorBound(t *testing.T) {
	stream := zipfStream(20000, 5000, 2)
	truth := exactOf(stream)
	N := totalOf(stream)
	const k = 128
	ss := NewSpaceSaving(k)
	for _, kv := range stream {
		ss.Update(kv.Key, kv.Count)
	}
	if ss.Total() != N {
		t.Fatalf("Total = %d, want %d", ss.Total(), N)
	}
	bound := N / k
	for _, kv := range ss.Tracked() {
		over := kv.Count - truth[kv.Key]
		if over < 0 {
			t.Fatalf("tracked key %d underestimated", kv.Key)
		}
		if over > bound {
			t.Fatalf("overestimation %d exceeds N/k = %d", over, bound)
		}
		if over > kv.ErrUB {
			t.Fatalf("recorded error bound %d below actual overestimation %d", kv.ErrUB, over)
		}
	}
}

func TestSpaceSavingNoFalseNegatives(t *testing.T) {
	stream := zipfStream(30000, 2000, 3)
	truth := exactOf(stream)
	N := totalOf(stream)
	const k = 100
	ss := NewSpaceSaving(k)
	for _, kv := range stream {
		ss.Update(kv.Key, kv.Count)
	}
	monitored := map[uint64]bool{}
	for _, kv := range ss.Tracked() {
		monitored[kv.Key] = true
	}
	for key, c := range truth {
		if c > N/k && !monitored[key] {
			t.Fatalf("key %d with weight %d > N/k=%d not monitored", key, c, N/k)
		}
	}
}

func TestSpaceSavingCapacityAndEviction(t *testing.T) {
	ss := NewSpaceSaving(2)
	ss.Update(1, 10)
	ss.Update(2, 20)
	if ss.Len() != 2 {
		t.Fatal("should hold 2 keys")
	}
	ss.Update(3, 5) // evicts key 1 (min count 10): est = 15, err = 10
	if ss.Len() != 2 {
		t.Fatal("capacity exceeded")
	}
	if got := ss.Estimate(3); got != 15 {
		t.Errorf("evicting insert estimate = %d, want 15", got)
	}
	if got := ss.ErrorBound(3); got != 10 {
		t.Errorf("evicting insert err = %d, want 10", got)
	}
	// Unmonitored key estimate = current min when full.
	if got := ss.Estimate(99); got == 0 {
		t.Error("unmonitored estimate should be the min count when full")
	}
}

func TestSpaceSavingGuaranteedKeys(t *testing.T) {
	ss := NewSpaceSaving(2)
	ss.Update(1, 100)
	ss.Update(2, 10)
	ss.Update(3, 1) // est 11, err 10 -> lower bound 1
	g := ss.GuaranteedKeys(50)
	if len(g) != 1 || g[0].Key != 1 {
		t.Errorf("GuaranteedKeys(50) = %v, want key 1 only", g)
	}
}

func TestSpaceSavingReset(t *testing.T) {
	ss := NewSpaceSaving(4)
	ss.Update(1, 5)
	ss.Reset()
	if ss.Len() != 0 || ss.Total() != 0 || ss.Estimate(1) != 0 {
		t.Error("Reset incomplete")
	}
	ss.Update(2, 7)
	if ss.Estimate(2) != 7 {
		t.Error("post-Reset update broken")
	}
}

func TestSpaceSavingPanicsOnBadCapacity(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewSpaceSaving(0) should panic")
		}
	}()
	NewSpaceSaving(0)
}

func TestSpaceSavingStructureInvariant(t *testing.T) {
	// Property: after arbitrary updates the bucket list is strictly
	// ascending by count, every entry sits in the bucket matching its
	// count, the index resolves every monitored key, and Min() is the
	// head bucket's count.
	f := func(keys []uint8, weights []uint8) bool {
		ss := NewSpaceSaving(8)
		for i, k := range keys {
			w := int64(1)
			if i < len(weights) {
				w = int64(weights[i]) + 1
			}
			ss.Update(uint64(k%32), w)
		}
		if ss.Len() == 0 {
			return ss.ringN == 0
		}
		trueMin := ss.nodes[0].count
		ringLinked := 0
		for i := 0; i < ss.Len(); i++ {
			n := ss.nodes[i]
			if n.count < trueMin {
				trueMin = n.count
			}
			if ss.idxFind(n.key) != int32(i) {
				return false // index must resolve every monitored key
			}
			if n.slot == hotSlot {
				continue
			}
			ringLinked++
			if n.count-ss.base != int64(n.slot) {
				return false // ring entry must sit in the bucket of its count
			}
			wi, bit := uint32(n.slot)>>6, uint64(1)<<(uint32(n.slot)&63)
			if ss.words[wi]&bit == 0 || ss.summary&(uint64(1)<<wi) == 0 {
				return false // occupancy bitmap out of sync
			}
			// The node must be reachable from its bucket's list, with
			// stamps ascending (arrival order = eviction tie order).
			found := false
			lastStamp := int64(-1)
			for ni := ss.slots[n.slot].head; ni != nilIdx; ni = ss.nodes[ni].next {
				if ss.nodes[ni].stamp <= lastStamp {
					return false
				}
				lastStamp = ss.nodes[ni].stamp
				if ni == int32(i) {
					found = true
				}
			}
			if !found {
				return false
			}
		}
		if ringLinked != ss.ringN {
			return false
		}
		return ss.Min() == trueMin
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestHeapSpaceSavingHeapInvariant(t *testing.T) {
	// Property: after arbitrary updates the oracle's root is the minimum
	// count and its index map is consistent.
	f := func(keys []uint8, weights []uint8) bool {
		ss := NewHeapSpaceSaving(8)
		for i, k := range keys {
			w := int64(1)
			if i < len(weights) {
				w = int64(weights[i]) + 1
			}
			ss.Update(uint64(k%32), w)
		}
		if ss.Len() == 0 {
			return true
		}
		min := ss.entries[0].count
		for i, e := range ss.entries {
			if e.count < min {
				return false
			}
			if ss.index[e.key] != i {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestMisraGriesNeverOverestimates(t *testing.T) {
	stream := zipfStream(20000, 5000, 4)
	truth := exactOf(stream)
	mg := NewMisraGries(64)
	for _, kv := range stream {
		mg.Update(kv.Key, kv.Count)
	}
	for _, kv := range mg.Tracked() {
		if kv.Count > truth[kv.Key] {
			t.Fatalf("MisraGries overestimated key %d: %d > %d", kv.Key, kv.Count, truth[kv.Key])
		}
	}
}

func TestMisraGriesErrorBound(t *testing.T) {
	stream := zipfStream(20000, 5000, 5)
	truth := exactOf(stream)
	N := totalOf(stream)
	const k = 128
	mg := NewMisraGries(k)
	for _, kv := range stream {
		mg.Update(kv.Key, kv.Count)
	}
	bound := N / int64(k+1)
	for key, want := range truth {
		got := mg.Estimate(key)
		if got > want {
			t.Fatalf("overestimate on %d", key)
		}
		if want-got > bound {
			t.Fatalf("underestimation %d exceeds N/(k+1) = %d", want-got, bound)
		}
	}
	if mg.Len() > k {
		t.Fatalf("holds %d > k=%d counters", mg.Len(), k)
	}
}

func TestMisraGriesCapacityOne(t *testing.T) {
	mg := NewMisraGries(1)
	mg.Update(1, 10)
	mg.Update(2, 4) // both decremented by 4; key2 dropped, key1 -> 6
	if mg.Len() != 1 || mg.Estimate(1) != 6 {
		t.Errorf("len=%d est1=%d, want 1/6", mg.Len(), mg.Estimate(1))
	}
	mg.Reset()
	if mg.Len() != 0 || mg.Total() != 0 {
		t.Error("Reset incomplete")
	}
}

func TestMisraGriesHeavyKeys(t *testing.T) {
	mg := NewMisraGries(8)
	for i := 0; i < 100; i++ {
		mg.Update(7, 100)
		mg.Update(uint64(i+10), 1)
	}
	hk := mg.HeavyKeys(5000)
	if len(hk) != 1 || hk[0].Key != 7 {
		t.Errorf("HeavyKeys = %v, want only key 7", hk)
	}
}

func TestMisraGriesPanicsOnBadCapacity(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewMisraGries(0) should panic")
		}
	}()
	NewMisraGries(0)
}

func TestCountMinNeverUnderestimates(t *testing.T) {
	for _, conservative := range []bool{false, true} {
		stream := zipfStream(20000, 5000, 6)
		truth := exactOf(stream)
		cm := NewCountMin(CountMinOpts{Depth: 4, Width: 1024, Conservative: conservative})
		for _, kv := range stream {
			cm.Update(kv.Key, kv.Count)
		}
		for key, want := range truth {
			if got := cm.Estimate(key); got < want {
				t.Fatalf("conservative=%v: underestimated key %d: %d < %d",
					conservative, key, got, want)
			}
		}
	}
}

func TestCountMinConservativeIsTighter(t *testing.T) {
	stream := zipfStream(30000, 3000, 7)
	truth := exactOf(stream)
	plain := NewCountMin(CountMinOpts{Depth: 4, Width: 512})
	cons := NewCountMin(CountMinOpts{Depth: 4, Width: 512, Conservative: true})
	for _, kv := range stream {
		plain.Update(kv.Key, kv.Count)
		cons.Update(kv.Key, kv.Count)
	}
	var plainErr, consErr int64
	for key, want := range truth {
		plainErr += plain.Estimate(key) - want
		consErr += cons.Estimate(key) - want
	}
	if consErr > plainErr {
		t.Errorf("conservative total error %d exceeds plain %d", consErr, plainErr)
	}
}

func TestCountMinDefaultsAndSize(t *testing.T) {
	cm := NewCountMin(CountMinOpts{})
	if cm.Depth() != 4 || cm.Width() != 2048 {
		t.Errorf("defaults: depth=%d width=%d", cm.Depth(), cm.Width())
	}
	if cm.SizeBytes() != 4*2048*8 {
		t.Errorf("SizeBytes = %d", cm.SizeBytes())
	}
}

func TestCountMinResetAndTotal(t *testing.T) {
	cm := NewCountMin(CountMinOpts{Depth: 2, Width: 64})
	cm.Update(1, 10)
	cm.Update(2, 20)
	if cm.Total() != 30 {
		t.Errorf("Total = %d", cm.Total())
	}
	cm.Reset()
	if cm.Total() != 0 || cm.Estimate(1) != 0 {
		t.Error("Reset incomplete")
	}
}

func TestCountSketchUnbiasedOnHeavy(t *testing.T) {
	stream := zipfStream(50000, 5000, 8)
	truth := exactOf(stream)
	cs := NewCountSketch(CountSketchOpts{Depth: 5, Width: 2048})
	for _, kv := range stream {
		cs.Update(kv.Key, kv.Count)
	}
	// The heaviest keys should be estimated within a few percent.
	var heavyKey uint64
	var heavyCount int64
	for k, v := range truth {
		if v > heavyCount {
			heavyKey, heavyCount = k, v
		}
	}
	got := cs.Estimate(heavyKey)
	relErr := float64(got-heavyCount) / float64(heavyCount)
	if relErr < -0.05 || relErr > 0.05 {
		t.Errorf("heavy key estimate %d vs true %d (rel err %.3f)", got, heavyCount, relErr)
	}
}

func TestCountSketchL2(t *testing.T) {
	cs := NewCountSketch(CountSketchOpts{Depth: 5, Width: 4096})
	var trueL2 int64
	for i := uint64(0); i < 100; i++ {
		w := int64(i + 1)
		cs.Update(i, w)
		trueL2 += w * w
	}
	got := cs.L2Estimate()
	rel := float64(got-trueL2) / float64(trueL2)
	if rel < -0.2 || rel > 0.2 {
		t.Errorf("L2 estimate %d vs true %d (rel %.3f)", got, trueL2, rel)
	}
}

func TestCountSketchResetAndSize(t *testing.T) {
	cs := NewCountSketch(CountSketchOpts{Depth: 3, Width: 128})
	cs.Update(5, 100)
	if cs.Total() != 100 {
		t.Error("Total")
	}
	cs.Reset()
	if cs.Total() != 0 || cs.Estimate(5) != 0 {
		t.Error("Reset incomplete")
	}
	if cs.SizeBytes() != 3*128*8 {
		t.Errorf("SizeBytes = %d", cs.SizeBytes())
	}
}

func TestTrackerInterfaceCompliance(t *testing.T) {
	// Compile-time + runtime checks that our trackers satisfy Tracker.
	for _, tr := range []Tracker{NewExact(0), NewSpaceSaving(8), NewMisraGries(8)} {
		tr.Update(1, 2)
		if tr.Total() != 2 {
			t.Errorf("%T Total = %d", tr, tr.Total())
		}
		if len(tr.Tracked()) != 1 {
			t.Errorf("%T Tracked size", tr)
		}
	}
	var _ Sketch = NewCountMin(CountMinOpts{})
	var _ Sketch = NewCountSketch(CountSketchOpts{})
}

func BenchmarkSpaceSavingUpdate(b *testing.B) {
	stream := zipfStream(1<<16, 1<<14, 9)
	ss := NewSpaceSaving(1024)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		kv := stream[i&(1<<16-1)]
		ss.Update(kv.Key, kv.Count)
	}
}

func BenchmarkHeapSpaceSavingUpdate(b *testing.B) {
	stream := zipfStream(1<<16, 1<<14, 9)
	ss := NewHeapSpaceSaving(1024)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		kv := stream[i&(1<<16-1)]
		ss.Update(kv.Key, kv.Count)
	}
}

func BenchmarkMisraGriesUpdate(b *testing.B) {
	stream := zipfStream(1<<16, 1<<14, 10)
	mg := NewMisraGries(1024)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		kv := stream[i&(1<<16-1)]
		mg.Update(kv.Key, kv.Count)
	}
}

func BenchmarkCountMinUpdate(b *testing.B) {
	stream := zipfStream(1<<16, 1<<14, 11)
	cm := NewCountMin(CountMinOpts{Depth: 4, Width: 4096})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		kv := stream[i&(1<<16-1)]
		cm.Update(kv.Key, kv.Count)
	}
}

func BenchmarkCountMinConservativeUpdate(b *testing.B) {
	stream := zipfStream(1<<16, 1<<14, 12)
	cm := NewCountMin(CountMinOpts{Depth: 4, Width: 4096, Conservative: true})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		kv := stream[i&(1<<16-1)]
		cm.Update(kv.Key, kv.Count)
	}
}

func BenchmarkCountSketchUpdate(b *testing.B) {
	stream := zipfStream(1<<16, 1<<14, 13)
	cs := NewCountSketch(CountSketchOpts{Depth: 5, Width: 4096})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		kv := stream[i&(1<<16-1)]
		cs.Update(kv.Key, kv.Count)
	}
}

func BenchmarkExactUpdate(b *testing.B) {
	stream := zipfStream(1<<16, 1<<14, 14)
	e := NewExact(1 << 14)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		kv := stream[i&(1<<16-1)]
		e.Update(kv.Key, kv.Count)
	}
}
