package sketch

import "container/heap"

// HeapSpaceSaving is the original heap-backed Space-Saving implementation,
// retained as the reference oracle for differential testing of the O(1)
// stream-summary SpaceSaving. It has identical output semantics — the
// same monitored set, counts and error bounds after any update sequence —
// but O(log k) updates, so the hot paths use SpaceSaving instead.
//
// Ties at the minimum are broken deterministically: among equal counts the
// entry whose count changed least recently is evicted first. The heap
// orders on (count, stamp) where stamp is a logical clock of count
// changes, which is exactly the arrival order the stream-summary's bucket
// lists preserve; this is what makes the two implementations comparable
// entry for entry rather than merely in distribution.
type HeapSpaceSaving struct {
	k       int
	entries []heapEntry // heap-ordered by (count, stamp)
	index   map[uint64]int
	total   int64
	clock   int64
}

type heapEntry struct {
	key   uint64
	count int64
	err   int64
	stamp int64 // logical time of the last count change
}

// NewHeapSpaceSaving builds a summary with capacity k >= 1 counters.
func NewHeapSpaceSaving(k int) *HeapSpaceSaving {
	if k < 1 {
		panic("sketch: HeapSpaceSaving capacity must be >= 1")
	}
	return &HeapSpaceSaving{
		k:     k,
		index: make(map[uint64]int, k),
	}
}

// Capacity returns the configured number of counters k.
func (s *HeapSpaceSaving) Capacity() int { return s.k }

// Len returns the number of keys currently monitored.
func (s *HeapSpaceSaving) Len() int { return len(s.entries) }

// Update implements Sketch. The stamp renews only when the count actually
// changes (w != 0), mirroring the stream-summary, where a zero-weight
// update leaves the entry in place within its bucket's arrival order.
func (s *HeapSpaceSaving) Update(key uint64, w int64) {
	s.total += w
	if i, ok := s.index[key]; ok {
		if w == 0 {
			return
		}
		s.clock++
		s.entries[i].count += w
		s.entries[i].stamp = s.clock
		heap.Fix(s, i)
		return
	}
	if len(s.entries) < s.k {
		s.clock++
		heap.Push(s, heapEntry{key: key, count: w, stamp: s.clock})
		return
	}
	// Evict the minimum: the incoming key inherits its count as error.
	min := &s.entries[0]
	delete(s.index, min.key)
	s.index[key] = 0
	min.err = min.count
	min.key = key
	if w != 0 {
		s.clock++
		min.count += w
		min.stamp = s.clock
		heap.Fix(s, 0)
	}
}

// Estimate implements Estimator. Unmonitored keys return the minimum
// monitored count when the summary is full (the tight upper bound), or 0
// when it is not.
func (s *HeapSpaceSaving) Estimate(key uint64) int64 {
	if i, ok := s.index[key]; ok {
		return s.entries[i].count
	}
	if len(s.entries) == s.k {
		return s.entries[0].count
	}
	return 0
}

// ErrorBound returns the recorded overestimation bound for key (its err
// field), or the minimum count for unmonitored keys.
func (s *HeapSpaceSaving) ErrorBound(key uint64) int64 {
	if i, ok := s.index[key]; ok {
		return s.entries[i].err
	}
	if len(s.entries) == s.k {
		return s.entries[0].count
	}
	return 0
}

// Min returns the minimum monitored count, or 0 when empty.
func (s *HeapSpaceSaving) Min() int64 {
	if len(s.entries) == 0 {
		return 0
	}
	return s.entries[0].count
}

// Total implements Sketch.
func (s *HeapSpaceSaving) Total() int64 { return s.total }

// Reset implements Sketch, reusing the index map instead of reallocating
// it every window.
func (s *HeapSpaceSaving) Reset() {
	s.entries = s.entries[:0]
	clear(s.index)
	s.total = 0
	s.clock = 0
}

// Tracked implements Tracker.
func (s *HeapSpaceSaving) Tracked() []KV {
	out := make([]KV, 0, len(s.entries))
	for _, e := range s.entries {
		out = append(out, KV{Key: e.key, Count: e.count, ErrUB: e.err})
	}
	return out
}

// HeavyKeys implements Tracker.
func (s *HeapSpaceSaving) HeavyKeys(threshold int64) []KV {
	var out []KV
	for _, e := range s.entries {
		if e.count >= threshold {
			out = append(out, KV{Key: e.key, Count: e.count, ErrUB: e.err})
		}
	}
	return out
}

// GuaranteedKeys returns keys whose *lower bound* (count - err) meets the
// threshold: detections that cannot be false positives.
func (s *HeapSpaceSaving) GuaranteedKeys(threshold int64) []KV {
	var out []KV
	for _, e := range s.entries {
		if e.count-e.err >= threshold {
			out = append(out, KV{Key: e.key, Count: e.count, ErrUB: e.err})
		}
	}
	return out
}

// heap.Interface methods; Len above doubles as the heap length. Not for
// external use.

// Less implements heap.Interface: the eviction order (count, then
// least-recently-grown).
func (s *HeapSpaceSaving) Less(i, j int) bool {
	a, b := &s.entries[i], &s.entries[j]
	if a.count != b.count {
		return a.count < b.count
	}
	return a.stamp < b.stamp
}

// Swap implements heap.Interface, keeping the key index in sync.
func (s *HeapSpaceSaving) Swap(i, j int) {
	s.entries[i], s.entries[j] = s.entries[j], s.entries[i]
	s.index[s.entries[i].key] = i
	s.index[s.entries[j].key] = j
}

// Push implements heap.Interface.
func (s *HeapSpaceSaving) Push(x any) {
	e := x.(heapEntry)
	s.index[e.key] = len(s.entries)
	s.entries = append(s.entries, e)
}

// Pop implements heap.Interface.
func (s *HeapSpaceSaving) Pop() any {
	e := s.entries[len(s.entries)-1]
	delete(s.index, e.key)
	s.entries = s.entries[:len(s.entries)-1]
	return e
}
