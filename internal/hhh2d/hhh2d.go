// Package hhh2d extends hierarchical heavy hitter detection to two
// dimensions: source × destination prefix pairs, the setting needed to
// localise "who is talking to whom" aggregates (DDoS victims, scanning
// campaigns). The poster's study is one-dimensional; this package is the
// natural extension its future-work direction implies, following the
// multi-dimensional HHH formulation of Cormode et al.
//
// The generalisation lattice is the product of the two prefix
// hierarchies: node (s,d) covers packet (x,y) when s covers x and d
// covers y; its parents generalise either coordinate by one level. Unlike
// the 1-D chain, ancestors of a leaf form a grid, and two incomparable
// HHHs can cover the same traffic (the "diamond" problem). This package
// uses the mass-assignment semantics: processing lattice nodes bottom-up
// (by total generalisation depth, lexicographically within a depth), a
// node's conditioned count is the volume of its leaves not covered by ANY
// already-marked HHH. Every leaf is thereby claimed at most once, so
// conditioned counts always sum to at most the total volume, and the
// definition coincides exactly with the 1-D discounted semantics when one
// hierarchy is trivial. Unlike the 1-D chain, nodes at the same depth can
// overlap (e.g. (/24,/32) and (/32,/24) over one flow); the deterministic
// within-depth order resolves those claims reproducibly.
//
// Addresses and prefixes are the dual-stack primitives of internal/addr
// — the same types as everywhere else in the repository. The lattice
// itself remains IPv4-only: its sketch keys pack the two per-level
// hierarchy keys into one uint64 (32 bits per dimension), so both
// dimension hierarchies are IPv4 ladders and non-IPv4 observations are
// skipped by every consumer.
package hhh2d

import (
	"fmt"
	"sort"

	"hiddenhhh/internal/addr"
	"hiddenhhh/internal/hhh"
)

// Key identifies a traffic leaf: a concrete (source, destination) pair.
// Both addresses are IPv4-mapped; consumers skip any pair that is not.
type Key struct {
	Src addr.Addr
	Dst addr.Addr
}

// Node is one lattice element: a source prefix × destination prefix pair.
type Node struct {
	Src addr.Prefix
	Dst addr.Prefix
}

// String renders the node as "src→dst".
func (n Node) String() string { return n.Src.String() + "->" + n.Dst.String() }

// Covers reports whether n covers the leaf k.
func (n Node) Covers(k Key) bool {
	return n.Src.Contains(k.Src) && n.Dst.Contains(k.Dst)
}

// CoversNode reports whether n covers m (both coordinates cover).
func (n Node) CoversNode(m Node) bool {
	return n.Src.Covers(m.Src) && n.Dst.Covers(m.Dst)
}

// Item is one reported two-dimensional HHH.
type Item struct {
	Node        Node
	Count       int64 // total volume under the node
	Conditioned int64 // volume claimed by the node itself
}

// Set collects 2-D HHH items keyed by node.
type Set map[Node]Item

// Add inserts or replaces the item for its node.
func (s Set) Add(it Item) { s[it.Node] = it }

// Contains reports membership.
func (s Set) Contains(n Node) bool {
	_, ok := s[n]
	return ok
}

// Len returns the set cardinality.
func (s Set) Len() int { return len(s) }

// Nodes returns members ordered by (total bits ascending, then src, dst),
// i.e. most general first, deterministically.
func (s Set) Nodes() []Node {
	out := make([]Node, 0, len(s))
	for n := range s {
		out = append(out, n)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		ta, tb := int(a.Src.Bits)+int(a.Dst.Bits), int(b.Src.Bits)+int(b.Dst.Bits)
		if ta != tb {
			return ta < tb
		}
		if a.Src.Compare(b.Src) != 0 {
			return a.Src.Compare(b.Src) < 0
		}
		return a.Dst.Compare(b.Dst) < 0
	})
	return out
}

// Jaccard returns the similarity of two sets by node membership.
func (s Set) Jaccard(t Set) float64 {
	if len(s) == 0 && len(t) == 0 {
		return 1
	}
	inter := 0
	for n := range s {
		if t.Contains(n) {
			inter++
		}
	}
	return float64(inter) / float64(len(s)+len(t)-inter)
}

// Hierarchy2 pairs the per-dimension hierarchies. Both are IPv4 ladders
// (see the package comment for why the lattice is IPv4-only).
type Hierarchy2 struct {
	Src addr.Hierarchy
	Dst addr.Hierarchy
}

// NewHierarchy2 builds a product hierarchy at the given granularities,
// one IPv4 ladder per dimension. It panics, like addr.NewIPv4Hierarchy,
// when a granularity does not divide 32.
func NewHierarchy2(src, dst addr.Granularity) Hierarchy2 {
	return Hierarchy2{Src: addr.NewIPv4Hierarchy(src), Dst: addr.NewIPv4Hierarchy(dst)}
}

// Levels returns the number of lattice levels (total generalisation
// depths), i.e. srcLevels + dstLevels - 1.
func (h Hierarchy2) Levels() int { return h.Src.Levels() + h.Dst.Levels() - 1 }

// NodeCount returns the number of (i,j) node classes in the lattice.
func (h Hierarchy2) NodeCount() int { return h.Src.Levels() * h.Dst.Levels() }

// At generalises a leaf to lattice class (i, j).
func (h Hierarchy2) At(k Key, i, j int) Node {
	return Node{Src: h.Src.At(k.Src, i), Dst: h.Dst.At(k.Dst, j)}
}

// Exact computes the exact 2-D HHH set of the aggregate counts at
// absolute byte threshold T.
//
// Complexity is O(distinct leaves × lattice classes) for aggregation plus
// O(candidates × leaves-under-candidate × marked) for the conditioning
// passes; it is intended for offline analysis and ground-truth
// generation, like its 1-D counterpart, but the 2-D lattice makes it
// noticeably heavier — budget for tens of thousands of distinct pairs,
// not millions.
func Exact(counts map[Key]int64, h Hierarchy2, T int64) Set {
	if T < 1 {
		T = 1
	}
	type leaf struct {
		k Key
		c int64
	}
	leaves := make([]leaf, 0, len(counts))
	for k, c := range counts {
		if c > 0 {
			leaves = append(leaves, leaf{k, c})
		}
	}

	si, di := h.Src.Levels(), h.Dst.Levels()
	// Total volume per node, per lattice class.
	totals := make([]map[Node]int64, si*di)
	for i := 0; i < si; i++ {
		for j := 0; j < di; j++ {
			m := make(map[Node]int64)
			for _, lf := range leaves {
				m[h.At(lf.k, i, j)] += lf.c
			}
			totals[i*di+j] = m
		}
	}

	out := Set{}
	var marked []Node
	// Process lattice levels most-specific first: level l = i + j.
	// Within a level, nodes can overlap (diamonds), so candidates are
	// visited in a deterministic order and marked immediately: a leaf is
	// claimed by the first qualifying node that reaches it.
	for l := 0; l < si+di-1; l++ {
		var candidates []Node
		candTotal := map[Node]int64{}
		for i := 0; i < si; i++ {
			j := l - i
			if j < 0 || j >= di {
				continue
			}
			for node, total := range totals[i*di+j] {
				if total < T {
					continue // conditioned count can only be smaller
				}
				candidates = append(candidates, node)
				candTotal[node] = total
			}
		}
		sort.Slice(candidates, func(a, b int) bool {
			if c := candidates[a].Src.Compare(candidates[b].Src); c != 0 {
				return c < 0
			}
			return candidates[a].Dst.Compare(candidates[b].Dst) < 0
		})
		for _, node := range candidates {
			var cond int64
			for _, lf := range leaves {
				if !node.Covers(lf.k) {
					continue
				}
				covered := false
				for _, m := range marked {
					if m.Covers(lf.k) {
						covered = true
						break
					}
				}
				if !covered {
					cond += lf.c
				}
			}
			if cond >= T {
				out.Add(Item{Node: node, Count: candTotal[node], Conditioned: cond})
				marked = append(marked, node)
			}
		}
	}
	return out
}

// ExactFromPackets is a convenience aggregating (src, dst, bytes) tuples.
// The threshold is hhh.Threshold(total, phi), which panics when phi is
// outside (0,1].
func ExactFromPackets(tuples []Tuple, h Hierarchy2, phi float64) Set {
	counts := make(map[Key]int64, len(tuples))
	var total int64
	for _, t := range tuples {
		if !t.Src.Is4() || !t.Dst.Is4() {
			continue // the 2-D lattice is IPv4-only
		}
		counts[Key{t.Src, t.Dst}] += t.Bytes
		total += t.Bytes
	}
	return Exact(counts, h, hhh.Threshold(total, phi))
}

// Tuple is one traffic observation for the 2-D analyses. Addresses are
// the dual-stack keys of internal/addr; the 2-D lattice itself is
// IPv4-only (its sketch keys pack two 32-bit prefixes into one uint64),
// so non-IPv4 observations are skipped by every consumer.
type Tuple struct {
	Src   addr.Addr
	Dst   addr.Addr
	Bytes int64
}

// Validate sanity checks an item set against a threshold and total, for
// tests and debugging: conditioned sums must not exceed the total and
// every item must meet the threshold.
func Validate(s Set, T, total int64) error {
	var sum int64
	for n, it := range s {
		if it.Conditioned < T {
			return fmt.Errorf("hhh2d: %v conditioned %d below threshold %d", n, it.Conditioned, T)
		}
		if it.Count < it.Conditioned {
			return fmt.Errorf("hhh2d: %v count %d below conditioned %d", n, it.Count, it.Conditioned)
		}
		sum += it.Conditioned
	}
	if sum > total {
		return fmt.Errorf("hhh2d: conditioned sum %d exceeds total %d", sum, total)
	}
	return nil
}
