package hhh2d

import (
	"math/rand"
	"testing"

	"hiddenhhh/internal/addr"
)

func ip4(s string) addr.Addr { return addr.MustParseAddr(s) }

func node(src, dst string) Node {
	return Node{Src: addr.MustParsePrefix(src), Dst: addr.MustParsePrefix(dst)}
}

func byteH2() Hierarchy2 { return NewHierarchy2(addr.Byte, addr.Byte) }

func TestNodeCovers(t *testing.T) {
	n := node("10.0.0.0/8", "192.168.1.0/24")
	if !n.Covers(Key{ip4("10.1.2.3"), ip4("192.168.1.7")}) {
		t.Error("should cover")
	}
	if n.Covers(Key{ip4("11.1.2.3"), ip4("192.168.1.7")}) {
		t.Error("src outside")
	}
	if n.Covers(Key{ip4("10.1.2.3"), ip4("192.168.2.7")}) {
		t.Error("dst outside")
	}
	if !n.CoversNode(node("10.1.0.0/16", "192.168.1.4/32")) {
		t.Error("node cover")
	}
	if n.CoversNode(node("0.0.0.0/0", "192.168.1.0/24")) {
		t.Error("more general src should not be covered")
	}
	if n.String() != "10.0.0.0/8->192.168.1.0/24" {
		t.Errorf("String = %q", n.String())
	}
}

func TestHierarchy2Shape(t *testing.T) {
	h := byteH2()
	if h.Levels() != 9 {
		t.Errorf("Levels = %d, want 9", h.Levels())
	}
	if h.NodeCount() != 25 {
		t.Errorf("NodeCount = %d, want 25", h.NodeCount())
	}
	k := Key{ip4("10.1.2.3"), ip4("192.168.1.7")}
	n := h.At(k, 1, 2)
	if n != node("10.1.2.0/24", "192.168.0.0/16") {
		t.Errorf("At(1,2) = %v", n)
	}
}

func TestExactSingleHeavyPair(t *testing.T) {
	h := byteH2()
	counts := map[Key]int64{
		{ip4("10.0.0.1"), ip4("20.0.0.1")}: 100,
		{ip4("30.0.0.1"), ip4("40.0.0.1")}: 5,
	}
	set := Exact(counts, h, 50)
	want := node("10.0.0.1/32", "20.0.0.1/32")
	if !set.Contains(want) {
		t.Fatalf("missing %v in %v", want, set.Nodes())
	}
	// Its ancestors are fully claimed: nothing else qualifies.
	if set.Len() != 1 {
		t.Fatalf("set = %v, want only the leaf pair", set.Nodes())
	}
}

func TestExactAggregationAcrossDimensions(t *testing.T) {
	h := byteH2()
	// Three sources in 10.1.1.0/24 each sending 30 to distinct hosts in
	// 20.2.0.0/16: only (10.1.1.0/24 -> 20.2.0.0/16) and its relatives
	// aggregate to 90; threshold 80.
	counts := map[Key]int64{
		{ip4("10.1.1.1"), ip4("20.2.1.1")}: 30,
		{ip4("10.1.1.2"), ip4("20.2.2.1")}: 30,
		{ip4("10.1.1.3"), ip4("20.2.3.1")}: 30,
	}
	set := Exact(counts, h, 80)
	if set.Len() == 0 {
		t.Fatal("no HHH found")
	}
	// The most specific qualifying aggregate must be reported; it is
	// (10.1.1.0/24 -> 20.2.0.0/16): src generalised one level, dst two.
	want := node("10.1.1.0/24", "20.2.0.0/16")
	if !set.Contains(want) {
		t.Fatalf("missing %v; got %v", want, set.Nodes())
	}
	if it := set[want]; it.Conditioned != 90 || it.Count != 90 {
		t.Errorf("item = %+v", it)
	}
	// And it claims everything: no ancestors reported.
	if set.Len() != 1 {
		t.Errorf("extra nodes: %v", set.Nodes())
	}
}

func TestExactDiamondClaimsOnce(t *testing.T) {
	h := byteH2()
	// One heavy leaf covered by two incomparable aggregates:
	// (10.1.0.0/16 -> 20.0.0.0/8) and (10.0.0.0/8 -> 20.2.0.0/16).
	// After the leaf is marked, neither aggregate may claim its volume
	// again, and conditioned sums must stay <= total.
	counts := map[Key]int64{
		{ip4("10.1.1.1"), ip4("20.2.1.1")}: 100, // the heavy leaf
		{ip4("10.1.2.1"), ip4("20.9.1.1")}: 30,  // under src /16, other dst /8
		{ip4("10.9.1.1"), ip4("20.2.2.1")}: 30,  // other src /8, under dst /16
	}
	var total int64
	for _, c := range counts {
		total += c
	}
	T := int64(50)
	set := Exact(counts, h, T)
	if err := Validate(set, T, total); err != nil {
		t.Fatal(err)
	}
	leafNode := node("10.1.1.1/32", "20.2.1.1/32")
	if !set.Contains(leafNode) {
		t.Fatalf("heavy leaf missing: %v", set.Nodes())
	}
	// The two side flows are only 30 each: the diamond aggregates must
	// NOT qualify on claimed-leaf volume alone.
	for _, n := range set.Nodes() {
		if n != leafNode && n.Covers(Key{ip4("10.1.1.1"), ip4("20.2.1.1")}) {
			it := set[n]
			if it.Conditioned >= 100 {
				t.Errorf("%v re-claimed the marked leaf: %+v", n, it)
			}
		}
	}
}

func TestExactMatchesOneDimensionalSemantics(t *testing.T) {
	// With the destination fixed to one address, 2-D reduces to 1-D on
	// sources: conditioned counts must match the 1-D pass-up intuition.
	h := byteH2()
	counts := map[Key]int64{
		{ip4("10.1.2.1"), ip4("99.0.0.1")}: 100,
		{ip4("10.1.2.2"), ip4("99.0.0.1")}: 30,
		{ip4("10.1.2.3"), ip4("99.0.0.1")}: 30,
	}
	set := Exact(counts, h, 50)
	// 1-D expectation: host .1 (100) and /24 conditioned 60, then the
	// destination-side generalisations of those are claimed.
	if !set.Contains(node("10.1.2.1/32", "99.0.0.1/32")) {
		t.Fatalf("leaf missing: %v", set.Nodes())
	}
	n24 := node("10.1.2.0/24", "99.0.0.1/32")
	if !set.Contains(n24) {
		t.Fatalf("/24 aggregate missing: %v", set.Nodes())
	}
	if it := set[n24]; it.Conditioned != 60 {
		t.Errorf("/24 conditioned = %d, want 60", it.Conditioned)
	}
}

func TestExactInvariantsRandom(t *testing.T) {
	h := byteH2()
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 20; trial++ {
		counts := map[Key]int64{}
		var total int64
		for i := 0; i < 1+rng.Intn(25); i++ {
			k := Key{
				addr.From4(byte(rng.Intn(2)), byte(rng.Intn(2)), 0, byte(rng.Intn(2))),
				addr.From4(byte(rng.Intn(2)), 0, byte(rng.Intn(2)), byte(rng.Intn(2))),
			}
			c := int64(1 + rng.Intn(100))
			counts[k] += c
			total += c
		}
		T := total/10 + 1
		set := Exact(counts, h, T)
		if err := Validate(set, T, total); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		// The root pair qualifies whenever nothing more specific claims
		// enough mass; in all cases SOMETHING must be reported since
		// total >= T.
		if total >= T && set.Len() == 0 {
			t.Fatalf("trial %d: empty set despite total %d >= T %d", trial, total, T)
		}
	}
}

func TestSetAlgebra(t *testing.T) {
	a := Set{}
	a.Add(Item{Node: node("10.0.0.0/8", "0.0.0.0/0")})
	a.Add(Item{Node: node("10.1.0.0/16", "20.0.0.0/8")})
	b := Set{}
	b.Add(Item{Node: node("10.0.0.0/8", "0.0.0.0/0")})
	if got := a.Jaccard(b); got != 0.5 {
		t.Errorf("Jaccard = %v", got)
	}
	if (Set{}).Jaccard(Set{}) != 1 {
		t.Error("empty Jaccard")
	}
	nodes := a.Nodes()
	if len(nodes) != 2 || nodes[0] != node("10.0.0.0/8", "0.0.0.0/0") {
		t.Errorf("Nodes order: %v", nodes)
	}
}

func TestPerNodeMatchesExactWhenUnsaturated(t *testing.T) {
	// With capacity above the distinct node count per class and no
	// diamonds among reported nodes, the streaming engine must reproduce
	// the exact set. Use single-destination traffic (1-D reduction) to
	// guarantee diamond-freedom.
	h := byteH2()
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 10; trial++ {
		eng := NewPerNode(h, 512)
		counts := map[Key]int64{}
		var total int64
		dst := ip4("99.0.0.1")
		for i := 0; i < 1+rng.Intn(20); i++ {
			src := addr.From4(byte(rng.Intn(2)), byte(rng.Intn(2)), 0, byte(rng.Intn(2)))
			c := int64(1 + rng.Intn(100))
			counts[Key{src, dst}] += c
			total += c
			eng.Update(src, dst, c)
		}
		T := total/8 + 1
		want := Exact(counts, h, T)
		got := eng.Query(T)
		if len(got) != len(want) {
			t.Fatalf("trial %d: got %v want %v", trial, got.Nodes(), want.Nodes())
		}
		for n := range want {
			if !got.Contains(n) {
				t.Fatalf("trial %d: missing %v", trial, n)
			}
		}
	}
}

func TestPerNodeFindsHeavyPairUnderPressure(t *testing.T) {
	h := byteH2()
	eng := NewPerNode(h, 64)
	rng := rand.New(rand.NewSource(13))
	heavySrc, heavyDst := ip4("10.1.2.3"), ip4("198.51.100.7")
	for i := 0; i < 50000; i++ {
		if i%3 == 0 {
			eng.Update(heavySrc, heavyDst, 1000)
		} else {
			eng.Update(addr.From4Uint32(rng.Uint32()), addr.From4Uint32(rng.Uint32()), 700)
		}
	}
	set := eng.QueryFraction(0.2)
	found := false
	for n := range set {
		if n.Covers(Key{heavySrc, heavyDst}) && n.Src.FamilyBits() > 0 {
			found = true
		}
	}
	if !found {
		t.Fatalf("heavy pair not covered: %v", set.Nodes())
	}
	if eng.Total() == 0 || eng.SizeBytes() <= 0 {
		t.Error("accessors")
	}
	eng.Reset()
	if eng.Total() != 0 || eng.QueryFraction(0.5).Len() != 0 {
		t.Error("Reset incomplete")
	}
}

// TestPerNodeSkipsNonIPv4 pins the family filter: the 2-D lattice is
// IPv4-only, so pairs with an IPv6 coordinate must not count at all.
func TestPerNodeSkipsNonIPv4(t *testing.T) {
	eng := NewPerNode(byteH2(), 64)
	v6 := addr.MustParseAddr("2001:db8::1")
	eng.Update(v6, ip4("10.0.0.1"), 100)
	eng.Update(ip4("10.0.0.1"), v6, 100)
	eng.Update(v6, v6, 100)
	if eng.Total() != 0 {
		t.Fatalf("non-IPv4 pairs counted: total = %d", eng.Total())
	}
	eng.Update(ip4("10.0.0.1"), ip4("20.0.0.1"), 100)
	if eng.Total() != 100 {
		t.Fatalf("IPv4 pair not counted: total = %d", eng.Total())
	}
	set := eng.Query(50)
	if !set.Contains(node("10.0.0.1/32", "20.0.0.1/32")) {
		t.Fatalf("leaf pair missing: %v", set.Nodes())
	}
}

func TestValidateCatchesBadSets(t *testing.T) {
	bad := Set{}
	bad.Add(Item{Node: node("10.0.0.0/8", "0.0.0.0/0"), Count: 10, Conditioned: 20})
	if err := Validate(bad, 5, 100); err == nil {
		t.Error("count < conditioned should fail")
	}
	bad2 := Set{}
	bad2.Add(Item{Node: node("10.0.0.0/8", "0.0.0.0/0"), Count: 10, Conditioned: 1})
	if err := Validate(bad2, 5, 100); err == nil {
		t.Error("below threshold should fail")
	}
	bad3 := Set{}
	bad3.Add(Item{Node: node("10.0.0.0/8", "0.0.0.0/0"), Count: 90, Conditioned: 90})
	bad3.Add(Item{Node: node("11.0.0.0/8", "0.0.0.0/0"), Count: 90, Conditioned: 90})
	if err := Validate(bad3, 5, 100); err == nil {
		t.Error("conditioned sum above total should fail")
	}
}

func TestExactFromPackets(t *testing.T) {
	tuples := []Tuple{
		{addr.MustParseAddr("10.0.0.1"), addr.MustParseAddr("20.0.0.1"), 600},
		{addr.MustParseAddr("10.0.0.2"), addr.MustParseAddr("20.0.0.2"), 200},
		{addr.MustParseAddr("10.0.0.3"), addr.MustParseAddr("20.0.0.3"), 200},
	}
	set := ExactFromPackets(tuples, byteH2(), 0.5)
	if !set.Contains(node("10.0.0.1/32", "20.0.0.1/32")) {
		t.Fatalf("heavy tuple missing: %v", set.Nodes())
	}
}

func BenchmarkPerNodeUpdate(b *testing.B) {
	eng := NewPerNode(byteH2(), 256)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		eng.Update(addr.From4Uint32(uint32(i)*2654435761), addr.From4Uint32(uint32(i)*40503), 1000)
	}
}

func BenchmarkExact2D(b *testing.B) {
	h := byteH2()
	rng := rand.New(rand.NewSource(3))
	counts := map[Key]int64{}
	var total int64
	for i := 0; i < 2000; i++ {
		k := Key{addr.From4Uint32(rng.Uint32() & 0x03030303), addr.From4Uint32(rng.Uint32() & 0x03030303)}
		counts[k] += int64(rng.Intn(1000) + 1)
		total += int64(rng.Intn(1000) + 1)
	}
	T := total / 20
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Exact(counts, h, T)
	}
}

// TestFractionThresholdContract pins the unified hhh.Threshold semantics
// on the 2-D fraction paths: floor-at-1 inside (0,1], panic outside —
// the same contract as the public Threshold facade.
func TestFractionThresholdContract(t *testing.T) {
	h := NewHierarchy2(addr.Byte, addr.Byte)
	tuples := []Tuple{{Src: addr.From4Uint32(1), Dst: addr.From4Uint32(2), Bytes: 10}}
	if set := ExactFromPackets(tuples, h, 0.001); set.Len() == 0 {
		t.Error("tiny phi must floor the threshold at 1, not 0")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on phi=0")
		}
	}()
	ExactFromPackets(tuples, h, 0)
}
