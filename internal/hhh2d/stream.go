package hhh2d

import (
	"sort"

	"hiddenhhh/internal/addr"
	"hiddenhhh/internal/hhh"
	"hiddenhhh/internal/sketch"
)

// PerNode is the streaming 2-D HHH engine: one Space-Saving summary per
// lattice class (source level × destination level), every packet updating
// all of them with its generalised (src,dst) pair — the direct product
// analogue of the 1-D per-level engine, and the structure a match-action
// pipeline would implement with one stage per class.
//
// Like the 1-D engines, updates use the hierarchy's packed keys: each
// dimension's leaf key is computed once per packet, and every lattice
// class derives its sketch key by masking — the node key packs the two
// masked 32-bit halves into one uint64 (source high, destination low).
//
// Queries perform the bottom-up conditioned pass with discounting of
// maximal marked descendants. In two dimensions this discount is an
// approximation: two incomparable marked descendants may cover
// overlapping traffic (the diamond problem), in which case their claims
// are both subtracted and interior conditioned estimates err low,
// i.e. detection above the diamond becomes conservative. Exact reports
// from the offline algorithm remain the ground truth; tests pin the
// engine to it on diamond-free inputs.
type PerNode struct {
	h        Hierarchy2
	srcMasks []uint32              // per-source-level key masks (low 32 bits of KeyMask)
	dstMasks []uint32              // per-destination-level key masks
	sks      []*sketch.SpaceSaving // indexed i*dstLevels + j
	tot      int64
}

// NewPerNode builds an engine with k counters per lattice class.
func NewPerNode(h Hierarchy2, k int) *PerNode {
	e := &PerNode{
		h:        h,
		srcMasks: make([]uint32, h.Src.Levels()),
		dstMasks: make([]uint32, h.Dst.Levels()),
		sks:      make([]*sketch.SpaceSaving, h.NodeCount()),
	}
	// IPv4 hierarchy keys live in the low 64-bit half with the v4 bits at
	// the bottom, so the low 32 bits of each level mask generalise the
	// host-order v4 address directly.
	for i := range e.srcMasks {
		e.srcMasks[i] = uint32(h.Src.KeyMask(i))
	}
	for j := range e.dstMasks {
		e.dstMasks[j] = uint32(h.Dst.KeyMask(j))
	}
	for i := range e.sks {
		e.sks[i] = sketch.NewSpaceSaving(k)
	}
	return e
}

// Update feeds one packet's (src, dst, bytes). Pairs that are not both
// IPv4 are skipped without counting — the 2-D lattice is IPv4-only.
func (e *PerNode) Update(src, dst addr.Addr, bytes int64) {
	if !src.Is4() || !dst.Is4() {
		return
	}
	s32, d32 := src.V4(), dst.V4()
	e.tot += bytes
	di := len(e.dstMasks)
	for i, sm := range e.srcMasks {
		sk := uint64(s32&sm) << 32
		for j, dm := range e.dstMasks {
			e.sks[i*di+j].Update(sk|uint64(d32&dm), bytes)
		}
	}
}

// Total returns the byte volume seen since the last Reset.
func (e *PerNode) Total() int64 { return e.tot }

// Reset clears every class summary.
func (e *PerNode) Reset() {
	for _, s := range e.sks {
		s.Reset()
	}
	e.tot = 0
}

// SizeBytes estimates the engine's state footprint.
func (e *PerNode) SizeBytes() int {
	n := 0
	for _, s := range e.sks {
		n += s.Capacity() * 48
	}
	return n
}

// nodeOfKey inverts the packed sketch key back into the lattice node of
// class (i, j): each 32-bit half is re-embedded as an IPv4-mapped level
// key and handed to the dimension hierarchy's PrefixOfKey.
func (e *PerNode) nodeOfKey(key uint64, i, j int) Node {
	return Node{
		Src: e.h.Src.PrefixOfKey(addr.From4Uint32(uint32(key>>32)).Lo(), i),
		Dst: e.h.Dst.PrefixOfKey(addr.From4Uint32(uint32(key)).Lo(), j),
	}
}

// Query returns the 2-D HHH set at absolute byte threshold T.
func (e *PerNode) Query(T int64) Set {
	si, di := e.h.Src.Levels(), e.h.Dst.Levels()
	out := Set{}
	var marked []Node
	ests := map[Node]int64{}
	for l := 0; l < si+di-1; l++ {
		// Gather this depth's candidates, deterministically ordered (the
		// sketch iteration order is map-random), then admit greedily so
		// same-depth diamond overlaps resolve reproducibly.
		var candidates []Node
		for i := 0; i < si; i++ {
			j := l - i
			if j < 0 || j >= di {
				continue
			}
			for _, kv := range e.sks[i*di+j].Tracked() {
				node := e.nodeOfKey(kv.Key, i, j)
				ests[node] = kv.Count
				if kv.Count >= T {
					candidates = append(candidates, node)
				}
			}
		}
		sort.Slice(candidates, func(a, b int) bool {
			if c := candidates[a].Src.Compare(candidates[b].Src); c != 0 {
				return c < 0
			}
			return candidates[a].Dst.Compare(candidates[b].Dst) < 0
		})
		for _, node := range candidates {
			// Discount the claims of maximal marked descendants.
			var claimed int64
			for _, m := range marked {
				if !node.CoversNode(m) || m == node {
					continue
				}
				maximal := true
				for _, m2 := range marked {
					if m2 != m && m2 != node && node.CoversNode(m2) && m2.CoversNode(m) {
						maximal = false
						break
					}
				}
				if maximal {
					claimed += ests[m]
				}
			}
			cond := ests[node] - claimed
			if cond >= T {
				out.Add(Item{Node: node, Count: ests[node], Conditioned: cond})
				marked = append(marked, node)
			}
		}
	}
	return out
}

// QueryFraction queries at phi of the observed volume, with the shared
// floor-at-1 threshold clamp of hhh.Threshold — which, like every
// fraction-threshold path, panics when phi is outside (0,1].
func (e *PerNode) QueryFraction(phi float64) Set {
	return e.Query(hhh.Threshold(e.tot, phi))
}
