package window

import (
	"errors"
	"io"

	"hiddenhhh/internal/trace"
)

// TumbleBatches is the batch-ingest counterpart of TumblePackets: it
// drives a streaming detector through disjoint windows delivering runs of
// in-span packets instead of single ones. Runs never straddle a window
// boundary, so the consumer may treat each as belonging to the current
// window; onWindow fires at every window close (including empty windows)
// exactly as in TumblePackets. Span.Bytes accumulates onBatch's return
// value — the weight the consumer accounted for the run — which keeps
// the driver free of per-packet callbacks, the point of the batch path.
// A caller that sets cfg.Weight explicitly overrides that: the driver
// then weighs every packet itself, exactly as TumblePackets would, and
// onBatch's return value is ignored.
func TumbleBatches(src trace.Source, cfg Config, batchSize int, onBatch func(pkts []trace.Packet) int64, onWindow func(Span) error) error {
	customWeight := cfg.Weight
	cfg.setDefaults()
	cfg.Step = cfg.Width
	if err := cfg.validate(); err != nil {
		return err
	}
	if batchSize <= 0 {
		batchSize = 512
	}
	width := int64(cfg.Width)
	positions := cfg.Count()
	endTs := cfg.Origin + int64(positions)*width
	cur := Span{Start: cfg.Origin, End: cfg.Origin + width}
	buf := make([]trace.Packet, 0, batchSize)

	flushBatch := func() {
		if len(buf) > 0 {
			cur.Packets += len(buf)
			w := onBatch(buf)
			if customWeight != nil {
				w = 0
				for i := range buf {
					w += customWeight(&buf[i])
				}
			}
			cur.Bytes += w
			buf = buf[:0]
		}
	}
	flushThrough := func(idx int) error {
		for cur.Index < idx && cur.Index < positions {
			if err := onWindow(cur); err != nil {
				return err
			}
			cur = Span{
				Index: cur.Index + 1,
				Start: cur.End,
				End:   cur.End + width,
			}
		}
		return nil
	}

	var p trace.Packet
	for {
		err := src.Next(&p)
		if err != nil {
			if errors.Is(err, io.EOF) {
				break
			}
			return err
		}
		if p.Ts < cfg.Origin || p.Ts >= endTs {
			continue
		}
		idx := int((p.Ts - cfg.Origin) / width)
		if idx > cur.Index {
			flushBatch()
			if err := flushThrough(idx); err != nil {
				return err
			}
		}
		buf = append(buf, p)
		if len(buf) == cap(buf) {
			flushBatch()
		}
	}
	flushBatch()
	return flushThrough(positions)
}
