// Package window implements the window models the paper compares:
// fixed-time disjoint (tumbling) windows, sliding windows with a step, and
// the trimmed-tail multi-length evaluation behind the micro-variation
// experiment.
//
// All engines make a single pass over a time-sorted packet source and
// deliver, per window, an exact per-source byte aggregate from which the
// caller computes HHH sets. Windows are defined over an explicit analysis
// span [Origin, End): the experiments know the trace duration, which
// removes end-of-stream ambiguity about partial windows — both window
// models see exactly the same span, the property the hidden-HHH comparison
// relies on.
package window

import (
	"errors"
	"fmt"
	"io"
	"time"

	"hiddenhhh/internal/addr"
	"hiddenhhh/internal/sketch"
	"hiddenhhh/internal/trace"
)

// ErrConfig reports an invalid window configuration.
var ErrConfig = errors.New("window: invalid configuration")

// KeyFunc extracts a packet's aggregation key — a hierarchy leaf key
// (see addr.Hierarchy.Key at level 0) — and reports ok=false for packets
// the analysis should skip entirely, e.g. the other address family of a
// dual-stack trace. The paper's experiments aggregate by source address.
type KeyFunc func(*trace.Packet) (key uint64, ok bool)

// WeightFunc extracts the weight of a packet. The paper's thresholds are
// byte volumes.
type WeightFunc func(*trace.Packet) int64

// BySource keys by the source address generalised to h's leaf level,
// skipping packets outside h's address family. It is the default KeyFunc
// (at the IPv4 byte ladder).
func BySource(h addr.Hierarchy) KeyFunc {
	return func(p *trace.Packet) (uint64, bool) { return h.Key(p.Src, 0), h.Match(p.Src) }
}

// ByDest keys by destination address (the natural key for DDoS-victim
// detection), with the same family filter as BySource.
func ByDest(h addr.Hierarchy) KeyFunc {
	return func(p *trace.Packet) (uint64, bool) { return h.Key(p.Dst, 0), h.Match(p.Dst) }
}

// ByBytes is the default WeightFunc: the packet's wire length.
func ByBytes(p *trace.Packet) int64 { return int64(p.Size) }

// ByPackets weights every packet equally, for packet-count thresholds.
func ByPackets(*trace.Packet) int64 { return 1 }

// Result is one evaluated window. Leaves maps the KeyFunc's leaf keys to
// accumulated weight. The Result (including Leaves) is only valid during
// the callback that delivers it; callers must not retain it.
type Result struct {
	Index   int   // window ordinal within the span
	Start   int64 // inclusive, ns
	End     int64 // exclusive, ns
	Packets int
	Bytes   int64 // total weight in the window
	Leaves  *sketch.Exact
}

// Duration is the window length.
func (r *Result) Duration() time.Duration { return time.Duration(r.End - r.Start) }

// Config is the shared window-model configuration.
type Config struct {
	// Width is the window length. Must be positive.
	Width time.Duration
	// Step is the distance between consecutive window starts. Tumbling
	// windows have Step == Width (set automatically when zero). Sliding
	// windows require Step to divide Width.
	Step time.Duration
	// Origin is the timestamp (ns since trace epoch) of the first window
	// start. Usually 0.
	Origin int64
	// End (exclusive, ns) bounds the analysis span: only windows fully
	// contained in [Origin, End) are evaluated, and packets at or past End
	// are ignored. Must satisfy End >= Origin + Width for at least one
	// window.
	End int64
	// Key and Weight default to BySource and ByBytes.
	Key    KeyFunc
	Weight WeightFunc
}

func (c *Config) setDefaults() {
	if c.Key == nil {
		c.Key = BySource(addr.NewIPv4Hierarchy(addr.Byte))
	}
	if c.Weight == nil {
		c.Weight = ByBytes
	}
	if c.Step == 0 {
		c.Step = c.Width
	}
}

func (c *Config) validate() error {
	if c.Width <= 0 {
		return fmt.Errorf("%w: width %v must be positive", ErrConfig, c.Width)
	}
	if c.Step <= 0 {
		return fmt.Errorf("%w: step %v must be positive", ErrConfig, c.Step)
	}
	if c.Step > c.Width {
		return fmt.Errorf("%w: step %v exceeds width %v", ErrConfig, c.Step, c.Width)
	}
	if c.Width%c.Step != 0 {
		return fmt.Errorf("%w: step %v must divide width %v", ErrConfig, c.Step, c.Width)
	}
	if c.End <= c.Origin {
		return fmt.Errorf("%w: empty span [%d,%d)", ErrConfig, c.Origin, c.End)
	}
	if c.End-c.Origin < int64(c.Width) {
		return fmt.Errorf("%w: span shorter than one window", ErrConfig)
	}
	return nil
}

// Count returns the number of windows the configuration evaluates.
func (c Config) Count() int {
	c.setDefaults()
	if c.validate() != nil {
		return 0
	}
	span := c.End - c.Origin
	return int((span-int64(c.Width))/int64(c.Step)) + 1
}

// SpanFor returns [start, end) of window i under the configuration.
func (c Config) SpanFor(i int) (start, end int64) {
	c.setDefaults()
	start = c.Origin + int64(i)*int64(c.Step)
	return start, start + int64(c.Width)
}

// Tumble evaluates disjoint fixed-time windows (Step forced to Width) and
// calls fn for each in order. Empty windows are delivered too: a window
// with no packets is still a window whose HHH set is empty, and the
// experiments count positions, not traffic.
func Tumble(src trace.Source, cfg Config, fn func(*Result) error) error {
	cfg.Step = cfg.Width
	return Slide(src, cfg, fn)
}

// Slide evaluates sliding windows of cfg.Width every cfg.Step and calls fn
// for each position in order. It maintains one aggregate bucket per step
// and a running window counter, so a full pass costs O(packets + windows ×
// buckets) regardless of how much windows overlap.
func Slide(src trace.Source, cfg Config, fn func(*Result) error) error {
	cfg.setDefaults()
	if err := cfg.validate(); err != nil {
		return err
	}
	var (
		step      = int64(cfg.Step)
		width     = int64(cfg.Width)
		nbuckets  = int(width / step)
		positions = cfg.Count()
		// ring of per-step buckets; bucket b covers
		// [Origin + b*step, Origin + (b+1)*step)
		ring    = make([]*sketch.Exact, nbuckets)
		ringPk  = make([]int, nbuckets)
		running = sketch.NewExact(1024)
		runPk   = 0
		cur     = 0 // index of the bucket currently being filled
		emitted = 0
		res     Result
	)
	for i := range ring {
		ring[i] = sketch.NewExact(256)
	}
	totalBuckets := int((cfg.End - cfg.Origin) / step) // buckets fully inside the span
	if int64(totalBuckets)*step < cfg.End-cfg.Origin {
		totalBuckets++ // partial trailing bucket still absorbs packets
	}

	// emitReady emits every window position whose final bucket is complete
	// once buckets [0, done) are finished.
	emitReady := func(done int) error {
		for ; emitted < positions && emitted+nbuckets <= done; emitted++ {
			start, end := cfg.SpanFor(emitted)
			res = Result{
				Index:   emitted,
				Start:   start,
				End:     end,
				Packets: runPk,
				Bytes:   running.Total(),
				Leaves:  running,
			}
			if err := fn(&res); err != nil {
				return err
			}
			// Slide: evict the oldest bucket.
			evict := ring[emitted%nbuckets]
			evict.ForEach(func(k uint64, c int64) { running.Remove(k, c) })
			runPk -= ringPk[emitted%nbuckets]
			evict.Reset()
			ringPk[emitted%nbuckets] = 0
		}
		return nil
	}

	// finishBucketsThrough advances the current bucket pointer so that all
	// buckets before `through` are folded into the running counter.
	finishBucketsThrough := func(through int) error {
		for cur < through {
			b := ring[cur%nbuckets]
			// Newly finished bucket joins the running window. (It may be
			// empty; folding is then a no-op.)
			running.AddAll(b)
			runPk += ringPk[cur%nbuckets]
			cur++
			if err := emitReady(cur); err != nil {
				return err
			}
		}
		return nil
	}

	var p trace.Packet
	for {
		err := src.Next(&p)
		if err != nil {
			if errors.Is(err, io.EOF) {
				break
			}
			return err
		}
		if p.Ts < cfg.Origin || p.Ts >= cfg.End {
			continue
		}
		b := int((p.Ts - cfg.Origin) / step)
		if b >= totalBuckets {
			continue
		}
		if b > cur {
			if err := finishBucketsThrough(b); err != nil {
				return err
			}
		}
		// Packets are time-sorted, so b == cur here.
		k, ok := cfg.Key(&p)
		if !ok {
			continue
		}
		ring[b%nbuckets].Update(k, cfg.Weight(&p))
		ringPk[b%nbuckets]++
	}
	// Flush: finish every bucket in the span and emit remaining positions.
	return finishBucketsThrough(totalBuckets)
}
