package window

import (
	"errors"
	"fmt"
	"io"
	"sort"
	"time"

	"hiddenhhh/internal/addr"
	"hiddenhhh/internal/sketch"
	"hiddenhhh/internal/trace"
)

// TrimResult is one baseline window together with the aggregates needed to
// evaluate every trimmed variant of it: variant j covers
// [Start, End-Trims[j]), i.e. the baseline minus its last Trims[j] of
// traffic. It is only valid during the delivering callback.
type TrimResult struct {
	Index   int
	Start   int64
	End     int64
	Packets int
	Bytes   int64
	Leaves  *sketch.Exact // full [Start, End) aggregate
	// Trims lists the trim durations, sorted ascending, as configured.
	Trims []time.Duration
	// TailLeaves[j] aggregates packets in [End-Trims[j], End): exactly the
	// traffic a Trims[j]-shorter window loses.
	TailLeaves []*sketch.Exact
	// TailBytes[j] is the total weight of TailLeaves[j].
	TailBytes []int64
	// TailPackets[j] is the packet count of TailLeaves[j].
	TailPackets []int
}

// VariantLeaves materialises the aggregate of variant j (baseline minus its
// tail) as a fresh counter. Cost is proportional to the tail size, which
// for millisecond trims is a tiny fraction of the window.
func (r *TrimResult) VariantLeaves(j int) *sketch.Exact {
	v := r.Leaves.Clone()
	r.TailLeaves[j].ForEach(func(k uint64, c int64) { v.Remove(k, c) })
	return v
}

// VariantBytes returns the total weight of variant j.
func (r *TrimResult) VariantBytes(j int) int64 { return r.Bytes - r.TailBytes[j] }

// TrimConfig configures TrimmedTumble.
type TrimConfig struct {
	// Width, Origin, End, Key, Weight as in Config; windows are disjoint
	// (tumbling), matching the paper's baseline of fixed 10 s windows.
	Width  time.Duration
	Origin int64
	End    int64
	Key    KeyFunc
	Weight WeightFunc
	// Trims are the amounts by which variant windows are shorter than the
	// baseline (the paper uses 10..100 ms). Each must be positive and
	// smaller than Width. Duplicates are rejected.
	Trims []time.Duration
}

// TrimmedTumble evaluates disjoint baseline windows of cfg.Width and, in
// the same pass, the tail aggregates for every configured trim, calling fn
// once per baseline window. This is the engine behind the paper's
// "micro variations in window sizes" experiment: rather than re-running the
// analysis once per window length, each variant is derived from the
// baseline by subtracting its tail band.
func TrimmedTumble(src trace.Source, cfg TrimConfig, fn func(*TrimResult) error) error {
	if cfg.Key == nil {
		cfg.Key = BySource(addr.NewIPv4Hierarchy(addr.Byte))
	}
	if cfg.Weight == nil {
		cfg.Weight = ByBytes
	}
	if cfg.Width <= 0 {
		return fmt.Errorf("%w: width %v must be positive", ErrConfig, cfg.Width)
	}
	if cfg.End-cfg.Origin < int64(cfg.Width) {
		return fmt.Errorf("%w: span shorter than one window", ErrConfig)
	}
	if len(cfg.Trims) == 0 {
		return fmt.Errorf("%w: no trims configured", ErrConfig)
	}
	trims := append([]time.Duration(nil), cfg.Trims...)
	sort.Slice(trims, func(i, j int) bool { return trims[i] < trims[j] })
	for i, d := range trims {
		if d <= 0 || d >= cfg.Width {
			return fmt.Errorf("%w: trim %v out of (0, width)", ErrConfig, d)
		}
		if i > 0 && trims[i-1] == d {
			return fmt.Errorf("%w: duplicate trim %v", ErrConfig, d)
		}
	}

	width := int64(cfg.Width)
	positions := int((cfg.End - cfg.Origin) / width)
	res := TrimResult{
		Trims:       trims,
		Leaves:      sketch.NewExact(1024),
		TailLeaves:  make([]*sketch.Exact, len(trims)),
		TailBytes:   make([]int64, len(trims)),
		TailPackets: make([]int, len(trims)),
	}
	for j := range res.TailLeaves {
		res.TailLeaves[j] = sketch.NewExact(64)
	}

	resetWindow := func(idx int) {
		res.Index = idx
		res.Start = cfg.Origin + int64(idx)*width
		res.End = res.Start + width
		res.Packets = 0
		res.Bytes = 0
		res.Leaves.Reset()
		for j := range res.TailLeaves {
			res.TailLeaves[j].Reset()
			res.TailBytes[j] = 0
			res.TailPackets[j] = 0
		}
	}

	curIdx := 0
	resetWindow(0)
	flushThrough := func(idx int) error { // emit windows curIdx..idx-1
		for curIdx < idx && curIdx < positions {
			if err := fn(&res); err != nil {
				return err
			}
			curIdx++
			resetWindow(curIdx)
		}
		return nil
	}

	var p trace.Packet
	for {
		err := src.Next(&p)
		if err != nil {
			if errors.Is(err, io.EOF) {
				break
			}
			return err
		}
		if p.Ts < cfg.Origin || p.Ts >= cfg.Origin+int64(positions)*width {
			continue
		}
		idx := int((p.Ts - cfg.Origin) / width)
		if idx > curIdx {
			if err := flushThrough(idx); err != nil {
				return err
			}
		}
		key, ok := cfg.Key(&p)
		if !ok {
			continue
		}
		w := cfg.Weight(&p)
		res.Leaves.Update(key, w)
		res.Packets++
		res.Bytes += w
		// offset from window end decides tail membership per trim.
		fromEnd := res.End - p.Ts
		for j := len(trims) - 1; j >= 0; j-- {
			if fromEnd > int64(trims[j]) {
				break // trims sorted ascending: smaller trims exclude even less
			}
			res.TailLeaves[j].Update(key, w)
			res.TailBytes[j] += w
			res.TailPackets[j]++
		}
	}
	return flushThrough(positions)
}

// Span describes one tumbling window boundary for streaming engines.
type Span struct {
	Index   int
	Start   int64 // inclusive, ns
	End     int64 // exclusive, ns
	Packets int
	Bytes   int64
}

// TumblePackets drives a streaming (per-packet) detector through disjoint
// windows: onPacket is called for every in-span packet, onWindow at every
// window close (including empty windows), in time order. The caller
// queries and resets its engine inside onWindow — exactly the
// data-structure-reset-per-window discipline the paper describes for
// match-action implementations.
func TumblePackets(src trace.Source, cfg Config, onPacket func(*trace.Packet), onWindow func(Span) error) error {
	cfg.setDefaults()
	cfg.Step = cfg.Width
	if err := cfg.validate(); err != nil {
		return err
	}
	width := int64(cfg.Width)
	positions := cfg.Count()
	cur := Span{Start: cfg.Origin, End: cfg.Origin + width}

	flushThrough := func(idx int) error {
		for cur.Index < idx && cur.Index < positions {
			if err := onWindow(cur); err != nil {
				return err
			}
			cur = Span{
				Index: cur.Index + 1,
				Start: cur.End,
				End:   cur.End + width,
			}
		}
		return nil
	}

	var p trace.Packet
	for {
		err := src.Next(&p)
		if err != nil {
			if errors.Is(err, io.EOF) {
				break
			}
			return err
		}
		if p.Ts < cfg.Origin || p.Ts >= cfg.Origin+int64(positions)*width {
			continue
		}
		idx := int((p.Ts - cfg.Origin) / width)
		if idx > cur.Index {
			if err := flushThrough(idx); err != nil {
				return err
			}
		}
		onPacket(&p)
		cur.Packets++
		cur.Bytes += cfg.Weight(&p)
	}
	return flushThrough(positions)
}
