package window

import (
	"errors"
	"math/rand"
	"testing"
	"time"

	"hiddenhhh/internal/addr"
	"hiddenhhh/internal/sketch"
	"hiddenhhh/internal/trace"
)

// testHierarchy is the leaf-key hierarchy the recount helpers use: the
// IPv4 byte ladder, matching the window engines' default KeyFunc.
func testHierarchy() addr.Hierarchy { return addr.NewIPv4Hierarchy(addr.Byte) }

// mkTrace builds a random time-sorted trace of n packets across dur.
func mkTrace(n int, dur time.Duration, seed int64) []trace.Packet {
	rng := rand.New(rand.NewSource(seed))
	pkts := make([]trace.Packet, n)
	for i := range pkts {
		pkts[i] = trace.Packet{
			Ts:   rng.Int63n(int64(dur)),
			Src:  addr.From4Uint32(rng.Uint32() & 0xff), // small key space: collisions
			Size: uint32(40 + rng.Intn(1460)),
		}
	}
	trace.SortByTime(pkts)
	return pkts
}

// recount brute-forces the aggregate of [start, end) over pkts.
func recount(pkts []trace.Packet, start, end int64) (*sketch.Exact, int, int64) {
	e := sketch.NewExact(0)
	packets := 0
	var bytes int64
	for i := range pkts {
		p := &pkts[i]
		if p.Ts >= start && p.Ts < end {
			e.Update(testHierarchy().Key(p.Src, 0), int64(p.Size))
			packets++
			bytes += int64(p.Size)
		}
	}
	return e, packets, bytes
}

func sameLeaves(a, b *sketch.Exact) bool {
	if a.Len() != b.Len() || a.Total() != b.Total() {
		return false
	}
	ok := true
	a.ForEach(func(k uint64, c int64) {
		if b.Estimate(k) != c {
			ok = false
		}
	})
	return ok
}

func TestConfigValidation(t *testing.T) {
	base := Config{Width: time.Second, Step: time.Second, End: int64(10 * time.Second)}
	bad := []Config{
		{Width: 0, End: 1e9},
		{Width: time.Second, Step: -1, End: 1e9},
		{Width: time.Second, Step: 2 * time.Second, End: 1e9},                       // step > width
		{Width: time.Second, Step: 300 * time.Millisecond, End: int64(time.Minute)}, // non-divisible
		{Width: time.Second, Step: time.Second, End: 0},                             // empty span
		{Width: 10 * time.Second, Step: time.Second, End: int64(time.Second)},       // span < width
	}
	for i, cfg := range bad {
		err := Slide(trace.NewSliceSource(nil), cfg, func(*Result) error { return nil })
		if !errors.Is(err, ErrConfig) {
			t.Errorf("case %d: err = %v, want ErrConfig", i, err)
		}
	}
	if err := Slide(trace.NewSliceSource(nil), base, func(*Result) error { return nil }); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
}

func TestConfigCountAndSpan(t *testing.T) {
	cfg := Config{Width: 10 * time.Second, Step: time.Second, End: int64(60 * time.Second)}
	if got := cfg.Count(); got != 51 {
		t.Errorf("Count = %d, want 51", got) // positions 0..50s starts
	}
	s, e := cfg.SpanFor(3)
	if s != int64(3*time.Second) || e != int64(13*time.Second) {
		t.Errorf("SpanFor(3) = [%d,%d)", s, e)
	}
	tum := Config{Width: 10 * time.Second, End: int64(60 * time.Second)}
	if got := tum.Count(); got != 6 {
		t.Errorf("tumbling Count = %d, want 6", got)
	}
}

func TestTumbleMatchesBruteForce(t *testing.T) {
	pkts := mkTrace(5000, 10*time.Second, 1)
	cfg := Config{Width: time.Second, End: int64(10 * time.Second)}
	n := 0
	err := Tumble(trace.NewSliceSource(pkts), cfg, func(r *Result) error {
		wantLeaves, wantPk, wantBytes := recount(pkts, r.Start, r.End)
		if r.Packets != wantPk || r.Bytes != wantBytes {
			t.Fatalf("window %d: packets=%d/%d bytes=%d/%d",
				r.Index, r.Packets, wantPk, r.Bytes, wantBytes)
		}
		if !sameLeaves(r.Leaves, wantLeaves) {
			t.Fatalf("window %d: leaves mismatch", r.Index)
		}
		if r.Index != n {
			t.Fatalf("window order: got %d want %d", r.Index, n)
		}
		if r.Duration() != time.Second {
			t.Fatalf("window duration %v", r.Duration())
		}
		n++
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if n != 10 {
		t.Fatalf("emitted %d windows, want 10", n)
	}
}

func TestSlideMatchesBruteForce(t *testing.T) {
	pkts := mkTrace(8000, 12*time.Second, 2)
	cfg := Config{Width: 3 * time.Second, Step: 500 * time.Millisecond, End: int64(12 * time.Second)}
	n := 0
	err := Slide(trace.NewSliceSource(pkts), cfg, func(r *Result) error {
		wantLeaves, wantPk, wantBytes := recount(pkts, r.Start, r.End)
		if r.Packets != wantPk || r.Bytes != wantBytes {
			t.Fatalf("position %d [%d,%d): packets=%d/%d bytes=%d/%d",
				r.Index, r.Start, r.End, r.Packets, wantPk, r.Bytes, wantBytes)
		}
		if !sameLeaves(r.Leaves, wantLeaves) {
			t.Fatalf("position %d: leaves mismatch", r.Index)
		}
		n++
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if want := cfg.Count(); n != want {
		t.Fatalf("emitted %d positions, want %d", n, want)
	}
}

func TestSlideEmitsEmptyWindows(t *testing.T) {
	// One packet at the very start, silence afterwards: every position
	// must still be delivered.
	pkts := []trace.Packet{{Ts: 0, Src: addr.From4Uint32(1), Size: 100}}
	cfg := Config{Width: time.Second, Step: time.Second, End: int64(5 * time.Second)}
	var got []int
	err := Tumble(trace.NewSliceSource(pkts), cfg, func(r *Result) error {
		got = append(got, r.Packets)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 5 || got[0] != 1 || got[1] != 0 || got[4] != 0 {
		t.Fatalf("per-window packets = %v", got)
	}
}

func TestSlideSupersetOfTumble(t *testing.T) {
	// Every disjoint window must appear among sliding positions with an
	// identical aggregate — the structural property behind "hidden" HHHs.
	pkts := mkTrace(6000, 30*time.Second, 3)
	w := 5 * time.Second
	end := int64(30 * time.Second)

	type agg struct {
		bytes   int64
		packets int
	}
	sliding := map[int64]agg{}
	err := Slide(trace.NewSliceSource(pkts),
		Config{Width: w, Step: time.Second, End: end},
		func(r *Result) error {
			sliding[r.Start] = agg{r.Bytes, r.Packets}
			return nil
		})
	if err != nil {
		t.Fatal(err)
	}
	err = Tumble(trace.NewSliceSource(pkts),
		Config{Width: w, End: end},
		func(r *Result) error {
			s, ok := sliding[r.Start]
			if !ok {
				t.Fatalf("disjoint window start %d missing from sliding positions", r.Start)
			}
			if s.bytes != r.Bytes || s.packets != r.Packets {
				t.Fatalf("window at %d: disjoint %d/%d vs sliding %d/%d",
					r.Start, r.Packets, r.Bytes, s.packets, s.bytes)
			}
			return nil
		})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSlideCallbackError(t *testing.T) {
	pkts := mkTrace(1000, 5*time.Second, 4)
	boom := errors.New("boom")
	calls := 0
	err := Slide(trace.NewSliceSource(pkts),
		Config{Width: time.Second, Step: time.Second, End: int64(5 * time.Second)},
		func(r *Result) error {
			calls++
			if calls == 2 {
				return boom
			}
			return nil
		})
	if !errors.Is(err, boom) || calls != 2 {
		t.Fatalf("err=%v calls=%d", err, calls)
	}
}

func TestSlideIgnoresOutOfSpanPackets(t *testing.T) {
	pkts := []trace.Packet{
		{Ts: -5, Src: addr.From4Uint32(1), Size: 100}, // before origin
		{Ts: 0, Src: addr.From4Uint32(2), Size: 10},   // in span
		{Ts: int64(time.Second) + 1, Src: addr.From4Uint32(3), Size: 7} /* past end */}
	cfg := Config{Width: time.Second, Step: time.Second, End: int64(time.Second)}
	var total int64
	err := Tumble(trace.NewSliceSource(pkts), cfg, func(r *Result) error {
		total += r.Bytes
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if total != 10 {
		t.Fatalf("total = %d, want only the in-span packet", total)
	}
}

func TestKeyAndWeightFuncs(t *testing.T) {
	h := testHierarchy()
	p := trace.Packet{Src: addr.From4Uint32(1), Dst: addr.From4Uint32(2), Size: 99}
	if k, ok := BySource(h)(&p); !ok || k != h.Key(p.Src, 0) {
		t.Error("BySource key")
	}
	if k, ok := ByDest(h)(&p); !ok || k != h.Key(p.Dst, 0) {
		t.Error("ByDest key")
	}
	// The other family is filtered, not keyed.
	v6 := trace.Packet{Src: addr.MustParseAddr("2001:db8::1"), Dst: addr.MustParseAddr("2001:db8::2")}
	if _, ok := BySource(h)(&v6); ok {
		t.Error("BySource must skip the other family")
	}
	if _, ok := ByDest(h)(&v6); ok {
		t.Error("ByDest must skip the other family")
	}
	if ByBytes(&p) != 99 || ByPackets(&p) != 1 {
		t.Error("weight funcs")
	}
	// ByPackets makes Bytes count packets.
	pkts := mkTrace(100, time.Second, 5)
	cfg := Config{Width: time.Second, End: int64(time.Second), Weight: ByPackets}
	err := Tumble(trace.NewSliceSource(pkts), cfg, func(r *Result) error {
		if r.Bytes != int64(r.Packets) {
			t.Fatalf("packet weighting: bytes=%d packets=%d", r.Bytes, r.Packets)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestTrimmedTumbleMatchesBruteForce(t *testing.T) {
	pkts := mkTrace(20000, 10*time.Second, 6)
	trims := []time.Duration{100 * time.Millisecond, 40 * time.Millisecond, 10 * time.Millisecond}
	cfg := TrimConfig{
		Width: 2 * time.Second,
		End:   int64(10 * time.Second),
		Trims: trims,
	}
	n := 0
	err := TrimmedTumble(trace.NewSliceSource(pkts), cfg, func(r *TrimResult) error {
		n++
		// Trims must be delivered sorted ascending.
		for j := 1; j < len(r.Trims); j++ {
			if r.Trims[j-1] >= r.Trims[j] {
				t.Fatal("trims not sorted")
			}
		}
		wantFull, wantPk, wantBytes := recount(pkts, r.Start, r.End)
		if !sameLeaves(r.Leaves, wantFull) || r.Packets != wantPk || r.Bytes != wantBytes {
			t.Fatalf("window %d full aggregate mismatch", r.Index)
		}
		for j, d := range r.Trims {
			wantVar, _, wantVarBytes := recount(pkts, r.Start, r.End-int64(d))
			got := r.VariantLeaves(j)
			if !sameLeaves(got, wantVar) {
				t.Fatalf("window %d trim %v: variant leaves mismatch", r.Index, d)
			}
			if r.VariantBytes(j) != wantVarBytes {
				t.Fatalf("window %d trim %v: bytes %d want %d",
					r.Index, d, r.VariantBytes(j), wantVarBytes)
			}
			wantTail, _, wantTailBytes := recount(pkts, r.End-int64(d), r.End)
			if !sameLeaves(r.TailLeaves[j], wantTail) || r.TailBytes[j] != wantTailBytes {
				t.Fatalf("window %d trim %v: tail mismatch", r.Index, d)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if n != 5 {
		t.Fatalf("emitted %d windows, want 5", n)
	}
}

func TestTrimmedTumbleValidation(t *testing.T) {
	src := func() trace.Source { return trace.NewSliceSource(nil) }
	fn := func(*TrimResult) error { return nil }
	cases := []TrimConfig{
		{Width: 0, End: 1e9, Trims: []time.Duration{time.Millisecond}},
		{Width: time.Second, End: 1e8, Trims: []time.Duration{time.Millisecond}},     // span < width
		{Width: time.Second, End: 1e9, Trims: nil},                                   // no trims
		{Width: time.Second, End: 1e9, Trims: []time.Duration{0}},                    // zero trim
		{Width: time.Second, End: 1e9, Trims: []time.Duration{time.Second}},          // trim == width
		{Width: time.Second, End: 1e9, Trims: []time.Duration{1e6, 1e6}},             // duplicate
		{Width: time.Second, End: 1e9, Trims: []time.Duration{-1 * time.Nanosecond}}, // negative
	}
	for i, cfg := range cases {
		if err := TrimmedTumble(src(), cfg, fn); !errors.Is(err, ErrConfig) {
			t.Errorf("case %d: err = %v, want ErrConfig", i, err)
		}
	}
}

func TestTrimmedTumbleCallbackError(t *testing.T) {
	pkts := mkTrace(100, 2*time.Second, 8)
	boom := errors.New("boom")
	err := TrimmedTumble(trace.NewSliceSource(pkts), TrimConfig{
		Width: time.Second,
		End:   int64(2 * time.Second),
		Trims: []time.Duration{time.Millisecond},
	}, func(*TrimResult) error { return boom })
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
}

func TestTumblePacketsAgreesWithTumble(t *testing.T) {
	pkts := mkTrace(3000, 9*time.Second, 7)
	cfg := Config{Width: 2 * time.Second, End: int64(8 * time.Second)}

	type span struct {
		packets int
		bytes   int64
	}
	var fromTumble []span
	err := Tumble(trace.NewSliceSource(pkts), cfg, func(r *Result) error {
		fromTumble = append(fromTumble, span{r.Packets, r.Bytes})
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}

	var fromStream []span
	perPacket := 0
	err = TumblePackets(trace.NewSliceSource(pkts), cfg,
		func(p *trace.Packet) { perPacket++ },
		func(s Span) error {
			fromStream = append(fromStream, span{s.Packets, s.Bytes})
			if s.End-s.Start != int64(cfg.Width) {
				t.Fatalf("span width %d", s.End-s.Start)
			}
			return nil
		})
	if err != nil {
		t.Fatal(err)
	}
	if len(fromStream) != len(fromTumble) {
		t.Fatalf("window counts differ: %d vs %d", len(fromStream), len(fromTumble))
	}
	totalPk := 0
	for i := range fromStream {
		if fromStream[i] != fromTumble[i] {
			t.Fatalf("window %d: %+v vs %+v", i, fromStream[i], fromTumble[i])
		}
		totalPk += fromStream[i].packets
	}
	if perPacket != totalPk {
		t.Fatalf("onPacket calls %d != sum of window packets %d", perPacket, totalPk)
	}
}

func TestTumblePacketsWindowError(t *testing.T) {
	pkts := mkTrace(100, 4*time.Second, 9)
	boom := errors.New("boom")
	err := TumblePackets(trace.NewSliceSource(pkts),
		Config{Width: time.Second, End: int64(4 * time.Second)},
		func(*trace.Packet) {},
		func(Span) error { return boom })
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
}

func BenchmarkSlide(b *testing.B) {
	pkts := mkTrace(200000, 60*time.Second, 10)
	cfg := Config{Width: 10 * time.Second, Step: time.Second, End: int64(60 * time.Second)}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		src := trace.NewSliceSource(pkts)
		if err := Slide(src, cfg, func(r *Result) error { return nil }); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTrimmedTumble(b *testing.B) {
	pkts := mkTrace(200000, 60*time.Second, 11)
	cfg := TrimConfig{
		Width: 10 * time.Second,
		End:   int64(60 * time.Second),
		Trims: []time.Duration{10 * time.Millisecond, 40 * time.Millisecond, 100 * time.Millisecond},
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		src := trace.NewSliceSource(pkts)
		if err := TrimmedTumble(src, cfg, func(r *TrimResult) error { return nil }); err != nil {
			b.Fatal(err)
		}
	}
}
