package window

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"hiddenhhh/internal/addr"
	"hiddenhhh/internal/trace"
)

// TestSlideRandomConfigsMatchBruteForce drives the sliding engine with
// randomly drawn (width, step, span, traffic) configurations and checks
// every emitted window against a brute-force recount — the engine's
// bucketed increment/evict logic must be exact for all of them.
func TestSlideRandomConfigsMatchBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	cfgGen := func() (Config, []trace.Packet) {
		step := time.Duration(1+rng.Intn(5)) * 100 * time.Millisecond
		width := step * time.Duration(1+rng.Intn(6))
		spanWindows := 1 + rng.Intn(8)
		span := int64(width) + int64(step)*int64(spanWindows)
		n := 200 + rng.Intn(2000)
		pkts := make([]trace.Packet, n)
		for i := range pkts {
			pkts[i] = trace.Packet{
				Ts:   rng.Int63n(span + int64(width)), // some beyond span
				Src:  addr.From4Uint32(rng.Uint32() & 0x3f),
				Size: uint32(1 + rng.Intn(1500)),
			}
		}
		trace.SortByTime(pkts)
		return Config{Width: width, Step: step, End: span}, pkts
	}
	f := func(seed int64) bool {
		cfg, pkts := cfgGen()
		ok := true
		err := Slide(trace.NewSliceSource(pkts), cfg, func(r *Result) error {
			wantLeaves, wantPk, wantBytes := recount(pkts, r.Start, r.End)
			if r.Packets != wantPk || r.Bytes != wantBytes || !sameLeaves(r.Leaves, wantLeaves) {
				ok = false
			}
			return nil
		})
		return err == nil && ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestTumblePacketsNeverDropsInSpanPackets verifies conservation: every
// in-span packet is delivered to onPacket exactly once regardless of
// window configuration.
func TestTumblePacketsNeverDropsInSpanPackets(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	f := func(widthSteps uint8, n uint16) bool {
		width := time.Duration(1+int(widthSteps%9)) * 250 * time.Millisecond
		span := int64(width) * int64(2+widthSteps%5)
		pkts := make([]trace.Packet, int(n)%1500+1)
		want := 0
		for i := range pkts {
			pkts[i] = trace.Packet{Ts: rng.Int63n(span * 2), Size: 100}
			if pkts[i].Ts < span-span%int64(width) {
				want++
			}
		}
		trace.SortByTime(pkts)
		got := 0
		err := TumblePackets(trace.NewSliceSource(pkts),
			Config{Width: width, End: span},
			func(*trace.Packet) { got++ },
			func(Span) error { return nil })
		return err == nil && got == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
