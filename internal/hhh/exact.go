package hhh

import (
	"hiddenhhh/internal/ipv4"
	"hiddenhhh/internal/sketch"
)

// LeafCounter is the read-only aggregate surface the exact computations
// consume: per-address byte volumes. *sketch.Exact implements it; so can
// any map-backed adapter.
type LeafCounter interface {
	// Len returns the number of distinct keys.
	Len() int
	// ForEach visits every (key, count) pair; keys are uint64(ipv4.Addr).
	ForEach(fn func(key uint64, count int64))
}

// Exact computes the exact HHH set of a finished traffic aggregate. It is
// the reference implementation: the offline analyses (Fig 2, Fig 3) are
// defined in terms of it, and the streaming engines are tested against it.
//
// leaves maps each /32 source address (as uint64(ipv4.Addr)) to its byte
// volume. T is the absolute byte threshold (see Threshold).
//
// The algorithm aggregates volumes level by level and performs the
// classical bottom-up conditioned pass: every prefix's unclaimed volume is
// either emitted (>= T, the prefix is an HHH and claims its subtree) or
// passed to its parent. Complexity is O(distinct leaves × levels).
func Exact(leaves LeafCounter, h ipv4.Hierarchy, T int64) Set {
	if T < 1 {
		T = 1
	}
	levels := h.Levels()

	// Pass 1: total subtree volume per prefix, per level.
	totals := make([]map[ipv4.Addr]int64, levels)
	lvl0 := make(map[ipv4.Addr]int64, leaves.Len())
	leaves.ForEach(func(key uint64, c int64) {
		lvl0[ipv4.Addr(key)] += c
	})
	totals[0] = lvl0
	for l := 1; l < levels; l++ {
		bits := h.Bits(l)
		up := make(map[ipv4.Addr]int64, len(totals[l-1])/2+1)
		for addr, c := range totals[l-1] {
			up[ipv4.Addr(uint32(addr)&ipv4.Mask(bits))] += c
		}
		totals[l] = up
	}

	// Pass 2: bottom-up conditioned volumes.
	out := Set{}
	unclaimed := totals[0] // level 0 conditioned == total
	for l := 0; l < levels; l++ {
		var next map[ipv4.Addr]int64
		if l+1 < levels {
			next = make(map[ipv4.Addr]int64, len(unclaimed)/2+1)
		}
		parentBits := uint8(0)
		if l+1 < levels {
			parentBits = h.Bits(l + 1)
		}
		for addr, cond := range unclaimed {
			if cond >= T {
				p := ipv4.Prefix{Addr: addr, Bits: h.Bits(l)}
				out.Add(Item{Prefix: p, Count: totals[l][addr], Conditioned: cond})
				continue // claimed: contributes nothing upward
			}
			if next != nil {
				next[ipv4.Addr(uint32(addr)&ipv4.Mask(parentBits))] += cond
			}
		}
		unclaimed = next
	}
	return out
}

// ExactFromCounts is a convenience wrapper over a plain map.
func ExactFromCounts(counts map[ipv4.Addr]int64, h ipv4.Hierarchy, T int64) Set {
	e := sketch.NewExact(len(counts))
	for a, c := range counts {
		e.Update(uint64(a), c)
	}
	return Exact(e, h, T)
}

// HeavyHitters computes the plain (non-hierarchical) heavy hitter set: the
// /32 addresses whose volume reaches T. It is the "HH" half of the paper's
// HH/HHH distinction and the ground truth for the data-plane baselines.
func HeavyHitters(leaves LeafCounter, T int64) Set {
	if T < 1 {
		T = 1
	}
	out := Set{}
	leaves.ForEach(func(key uint64, c int64) {
		if c >= T {
			out.Add(Item{Prefix: ipv4.Host(ipv4.Addr(key)), Count: c, Conditioned: c})
		}
	})
	return out
}
