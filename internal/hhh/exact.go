package hhh

import (
	"hiddenhhh/internal/addr"
	"hiddenhhh/internal/sketch"
)

// LeafCounter is the read-only aggregate surface the exact computations
// consume: per-leaf byte volumes. *sketch.Exact implements it; so can
// any map-backed adapter.
type LeafCounter interface {
	// Len returns the number of distinct keys.
	Len() int
	// ForEach visits every (key, count) pair; keys are the hierarchy's
	// level-0 keys (addr.Hierarchy.Key at level 0).
	ForEach(fn func(key uint64, count int64))
}

// Exact computes the exact HHH set of a finished traffic aggregate. It is
// the reference implementation: the offline analyses (Fig 2, Fig 3) are
// defined in terms of it, and the streaming engines are tested against it.
//
// leaves maps each leaf prefix — a source address generalised to h's
// level 0, packed with h.Key — to its byte volume. T is the absolute
// byte threshold (see Threshold).
//
// The algorithm aggregates volumes level by level and performs the
// classical bottom-up conditioned pass: every prefix's unclaimed volume is
// either emitted (>= T, the prefix is an HHH and claims its subtree) or
// passed to its parent. Complexity is O(distinct leaves × levels).
func Exact(leaves LeafCounter, h addr.Hierarchy, T int64) Set {
	if T < 1 {
		T = 1
	}
	levels := h.Levels()

	// Pass 1: total subtree volume per prefix, per level.
	totals := make([]map[uint64]int64, levels)
	lvl0 := make(map[uint64]int64, leaves.Len())
	m0 := h.KeyMask(0)
	leaves.ForEach(func(key uint64, c int64) {
		lvl0[key&m0] += c
	})
	totals[0] = lvl0
	for l := 1; l < levels; l++ {
		m := h.KeyMask(l)
		up := make(map[uint64]int64, len(totals[l-1])/2+1)
		for key, c := range totals[l-1] {
			up[key&m] += c
		}
		totals[l] = up
	}

	// Pass 2: bottom-up conditioned volumes.
	out := Set{}
	unclaimed := totals[0] // level 0 conditioned == total
	for l := 0; l < levels; l++ {
		var next map[uint64]int64
		var parentMask uint64
		if l+1 < levels {
			next = make(map[uint64]int64, len(unclaimed)/2+1)
			parentMask = h.KeyMask(l + 1)
		}
		for key, cond := range unclaimed {
			if cond >= T {
				out.Add(Item{Prefix: h.PrefixOfKey(key, l), Count: totals[l][key], Conditioned: cond})
				continue // claimed: contributes nothing upward
			}
			if next != nil {
				next[key&parentMask] += cond
			}
		}
		unclaimed = next
	}
	return out
}

// ExactFromCounts is a convenience wrapper over a plain per-address map.
// Addresses outside h's family are ignored, matching the streaming
// engines' ingest filter.
func ExactFromCounts(counts map[addr.Addr]int64, h addr.Hierarchy, T int64) Set {
	e := sketch.NewExact(len(counts))
	for a, c := range counts {
		if h.Match(a) {
			e.Update(h.Key(a, 0), c)
		}
	}
	return Exact(e, h, T)
}

// HeavyHitters computes the plain (non-hierarchical) heavy hitter set:
// the leaf prefixes of h whose volume reaches T. It is the "HH" half of
// the paper's HH/HHH distinction and the ground truth for the data-plane
// baselines.
func HeavyHitters(leaves LeafCounter, h addr.Hierarchy, T int64) Set {
	if T < 1 {
		T = 1
	}
	out := Set{}
	m0 := h.KeyMask(0)
	leaves.ForEach(func(key uint64, c int64) {
		if c >= T {
			out.Add(Item{Prefix: h.PrefixOfKey(key&m0, 0), Count: c, Conditioned: c})
		}
	})
	return out
}
