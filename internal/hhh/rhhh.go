package hhh

import (
	"hiddenhhh/internal/hashx"
	"hiddenhhh/internal/ipv4"
	"hiddenhhh/internal/sketch"
)

// RHHH is the randomised HHH algorithm of Ben Basat et al. (SIGCOMM 2017),
// the state-of-the-art sketch the calibration notes name as prior work.
// Instead of updating every hierarchy level for every packet, it draws one
// uniform level per packet and updates only that level's Space-Saving
// summary, cutting per-packet cost from O(levels) to O(1). Queries scale
// each level's counts by the number of levels to recover unbiased subtree
// estimates.
//
// The trade-off is variance: estimates converge as the per-level sample
// grows, so RHHH needs a minimum stream length before its output
// stabilises — one of the behaviours the continuous-comparison experiment
// surfaces on short windows.
type RHHH struct {
	h       ipv4.Hierarchy
	sks     []*sketch.SpaceSaving
	levels  uint64
	rng     uint64 // splitmix64 state; deterministic under seed
	total   int64
	updates int64
}

// NewRHHH builds an engine with k counters per level and a deterministic
// sampling seed.
func NewRHHH(h ipv4.Hierarchy, k int, seed uint64) *RHHH {
	levels := h.Levels()
	r := &RHHH{
		h:      h,
		sks:    make([]*sketch.SpaceSaving, levels),
		levels: uint64(levels),
		rng:    hashx.Mix64(seed ^ 0x5851f42d4c957f2d),
	}
	for l := range r.sks {
		r.sks[l] = sketch.NewSpaceSaving(k)
	}
	return r
}

// Hierarchy returns the configured hierarchy.
func (r *RHHH) Hierarchy() ipv4.Hierarchy { return r.h }

// Update feeds one packet, sampling a single level to update.
func (r *RHHH) Update(src ipv4.Addr, bytes int64) {
	r.total += bytes
	r.updates++
	// splitmix64 step, then unbiased-enough high-multiply range reduction.
	r.rng += 0x9e3779b97f4a7c15
	l := int((hashx.Mix64(r.rng) >> 32) * r.levels >> 32)
	pre := r.h.At(src, l)
	r.sks[l].Update(uint64(pre.Addr), bytes)
}

// Total returns the byte volume seen since the last Reset.
func (r *RHHH) Total() int64 { return r.total }

// Updates returns the packet count seen since the last Reset.
func (r *RHHH) Updates() int64 { return r.updates }

// Reset clears all levels and keeps the RNG rolling (reusing the engine
// across windows does not replay the same level sequence, matching how a
// switch deployment would behave).
func (r *RHHH) Reset() {
	for _, s := range r.sks {
		s.Reset()
	}
	r.total = 0
	r.updates = 0
}

// Query returns the HHH set at absolute byte threshold T, scaling each
// sampled level's counts by the level count.
func (r *RHHH) Query(T int64) Set {
	return queryLevels(r.h, r.sks, int64(r.levels), T)
}

// QueryFraction returns the HHH set at threshold phi of the observed
// traffic volume.
func (r *RHHH) QueryFraction(phi float64) Set {
	return r.Query(Threshold(r.total, phi))
}

// SizeBytes estimates the state footprint (see PerLevel.SizeBytes).
func (r *RHHH) SizeBytes() int {
	n := 0
	for _, s := range r.sks {
		n += s.Capacity() * 48
	}
	return n
}
