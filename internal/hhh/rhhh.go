package hhh

import (
	"hiddenhhh/internal/addr"
	"hiddenhhh/internal/hashx"
	"hiddenhhh/internal/sketch"
	"hiddenhhh/internal/trace"
)

// RHHH is the randomised HHH algorithm of Ben Basat et al. (SIGCOMM 2017),
// the state-of-the-art sketch the calibration notes name as prior work.
// Instead of updating every hierarchy level for every packet, it draws one
// uniform level per packet and updates only that level's Space-Saving
// summary, cutting per-packet cost from O(levels) to O(1). Queries scale
// each level's counts by the number of levels to recover unbiased subtree
// estimates.
//
// The constant-time update is exactly what makes tall hierarchies —
// IPv6's 17-level nibble lattice, versus IPv4's 5-level byte ladder —
// affordable: PerLevel's per-packet cost grows with the level count
// while RHHH's does not, which is the trade RHHH was designed for.
//
// The trade-off is variance: estimates converge as the per-level sample
// grows, so RHHH needs a minimum stream length before its output
// stabilises — one of the behaviours the continuous-comparison experiment
// surfaces on short windows. Packets outside the hierarchy's address
// family are ignored (see addr.Hierarchy.Match).
type RHHH struct {
	h       addr.Hierarchy
	sks     []*sketch.SpaceSaving
	masks   []uint64 // per-level key masks, hoisted out of the hot path
	high    bool     // which address half keys come from, ditto
	levels  uint64
	rng     uint64 // splitmix64 state; deterministic under seed
	total   int64
	updates int64
	qs      *QueryScratch
	kb      trace.KeyBatch // scratch for the UpdateBatch packing shim
}

// NewRHHH builds an engine with k counters per level and a deterministic
// sampling seed.
func NewRHHH(h addr.Hierarchy, k int, seed uint64) *RHHH {
	levels := h.Levels()
	r := &RHHH{
		h:      h,
		sks:    make([]*sketch.SpaceSaving, levels),
		masks:  make([]uint64, levels),
		high:   h.KeyFromHigh(),
		levels: uint64(levels),
		rng:    hashx.Mix64(seed ^ 0x5851f42d4c957f2d),
		qs:     NewQueryScratch(),
	}
	for l := range r.sks {
		r.sks[l] = sketch.NewSpaceSaving(k)
		r.masks[l] = h.KeyMask(l)
	}
	return r
}

// Hierarchy returns the configured hierarchy.
func (r *RHHH) Hierarchy() addr.Hierarchy { return r.h }

// Update feeds one packet, sampling a single level to update. Packets of
// the other address family are dropped without advancing the sampler.
func (r *RHHH) Update(src addr.Addr, bytes int64) {
	if !r.h.Match(src) {
		return
	}
	r.total += bytes
	r.updates++
	// splitmix64 step, then unbiased-enough high-multiply range reduction.
	r.rng += 0x9e3779b97f4a7c15
	l := int((hashx.Mix64(r.rng) >> 32) * r.levels >> 32)
	half := src.Lo()
	if r.high {
		half = src.Hi()
	}
	r.sks[l].Update(half&r.masks[l], bytes)
}

// UpdateBatch feeds a run of packets and returns the total byte weight
// added (family-filtered, like Update). It is a thin packing shim over
// UpdateKeys; levels are drawn per matching packet in the same
// deterministic sequence as repeated Update calls, so the final state
// is identical.
func (r *RHHH) UpdateBatch(pkts []trace.Packet) int64 {
	r.kb.Reset()
	r.kb.AppendPackets(r.h, pkts)
	return r.UpdateKeys(&r.kb)
}

// UpdateKeys feeds a columnar batch of pre-packed leaf keys and returns
// the total byte weight added. The sampled level's key is the leaf key
// masked by that level's nested mask — no Addr math in the loop. Levels
// are drawn per packet in the same deterministic sequence as repeated
// Update calls on the matching substream, so the final state is
// identical; the batch form amortises the per-packet call overhead of
// the ingest spine.
func (r *RHHH) UpdateKeys(b *trace.KeyBatch) int64 {
	var bytes int64
	rng := r.rng
	keys := b.Keys
	for i, k := range keys {
		w := int64(b.Sizes[i])
		bytes += w
		rng += 0x9e3779b97f4a7c15
		l := int((hashx.Mix64(rng) >> 32) * r.levels >> 32)
		r.sks[l].Update(k&r.masks[l], w)
	}
	r.rng = rng
	r.total += bytes
	r.updates += int64(len(keys))
	return bytes
}

// Total returns the byte volume seen since the last Reset.
func (r *RHHH) Total() int64 { return r.total }

// Merge folds engine o into r level by level. o is not modified; r's RNG
// state is kept. Both engines must share the same hierarchy. Because
// RHHH's level sampling is order-insensitive (each packet draws a level
// independently), summaries built on disjoint substreams merge exactly
// like their underlying Space-Saving levels: raw per-level counts add,
// and the query-time V-scaling of the merged counts remains unbiased for
// the combined stream.
func (r *RHHH) Merge(o *RHHH) {
	if r.h != o.h {
		panic("hhh: RHHH.Merge hierarchy mismatch")
	}
	for l := range r.sks {
		r.sks[l].Merge(o.sks[l])
	}
	r.total += o.total
	r.updates += o.updates
}

// Updates returns the packet count seen since the last Reset.
func (r *RHHH) Updates() int64 { return r.updates }

// Reset clears all levels and keeps the RNG rolling (reusing the engine
// across windows does not replay the same level sequence, matching how a
// switch deployment would behave). Sketch storage is retained.
func (r *RHHH) Reset() {
	for _, s := range r.sks {
		s.Reset()
	}
	r.total = 0
	r.updates = 0
}

// Query returns the HHH set at absolute byte threshold T, scaling each
// sampled level's counts by the level count.
func (r *RHHH) Query(T int64) Set {
	return queryLevels(r.h, r.sks, int64(r.levels), T, r.qs)
}

// QueryFraction returns the HHH set at threshold phi of the observed
// traffic volume.
func (r *RHHH) QueryFraction(phi float64) Set {
	return r.Query(Threshold(r.total, phi))
}

// SizeBytes reports the state footprint (see PerLevel.SizeBytes).
func (r *RHHH) SizeBytes() int {
	n := 0
	for _, s := range r.sks {
		n += s.SizeBytes()
	}
	return n
}
