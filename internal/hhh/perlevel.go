package hhh

import (
	"hiddenhhh/internal/addr"
	"hiddenhhh/internal/sketch"
	"hiddenhhh/internal/trace"
)

// PerLevel is the classical streaming HHH engine: one Space-Saving summary
// per hierarchy level, each keyed by the packet's source address
// generalised to that level. This mirrors the structure programmable
// data-plane implementations use (a match-action stage per level).
//
// Estimates inherit Space-Saving's guarantees per level: never
// underestimating subtree volumes, with overestimation bounded by N/k.
// Conditioned volumes are derived at query time by discounting the
// (estimated) subtree volume of every descendant HHH, mirroring the exact
// bottom-up pass. Packets outside the hierarchy's address family are
// ignored (see addr.Hierarchy.Match), so the engine can sit directly on a
// dual-stack stream.
type PerLevel struct {
	h     addr.Hierarchy
	sks   []*sketch.SpaceSaving
	masks []uint64 // per-level key masks, hoisted out of the hot path
	high  bool     // which address half keys come from, ditto
	qs    *QueryScratch
	kb    trace.KeyBatch // scratch for the UpdateBatch packing shim
	total int64
}

// NewPerLevel builds an engine with k Space-Saving counters per level.
func NewPerLevel(h addr.Hierarchy, k int) *PerLevel {
	levels := h.Levels()
	p := &PerLevel{
		h:     h,
		sks:   make([]*sketch.SpaceSaving, levels),
		masks: make([]uint64, levels),
		high:  h.KeyFromHigh(),
		qs:    NewQueryScratch(),
	}
	for l := range p.sks {
		p.sks[l] = sketch.NewSpaceSaving(k)
		p.masks[l] = h.KeyMask(l)
	}
	return p
}

// Hierarchy returns the configured hierarchy.
func (p *PerLevel) Hierarchy() addr.Hierarchy { return p.h }

// Update feeds one packet's source address and byte size. Packets of the
// other address family are dropped without counting toward Total.
func (p *PerLevel) Update(src addr.Addr, bytes int64) {
	if !p.h.Match(src) {
		return
	}
	p.total += bytes
	half := src.Lo()
	if p.high {
		half = src.Hi()
	}
	for l, m := range p.masks {
		p.sks[l].Update(half&m, bytes)
	}
}

// UpdateBatch feeds a run of packets (source address keyed, byte
// weighted) and returns the total byte weight added — packets outside
// the hierarchy's family are skipped and do not count. It is a thin
// packing shim: leaf keys are packed once into a reusable scratch
// KeyBatch and handed to UpdateKeys, so the final state is identical to
// calling Update per packet.
func (p *PerLevel) UpdateBatch(pkts []trace.Packet) int64 {
	p.kb.Reset()
	p.kb.AppendPackets(p.h, pkts)
	return p.UpdateKeys(&p.kb)
}

// UpdateKeys feeds a columnar batch of pre-packed leaf keys and returns
// the total byte weight added. Per-level keys are derived by masking the
// leaf key with the hierarchy's nested per-level masks — no Addr math in
// the loop. The batch is applied level-major: each level's summary
// absorbs the whole run while its working set is hot, which is where
// the batch ingest path gains over per-packet calls. The final state is
// identical to calling Update per packet — per-level summaries are
// independent, and each still sees the packets in stream order.
func (p *PerLevel) UpdateKeys(b *trace.KeyBatch) int64 {
	bytes := b.Bytes()
	p.total += bytes
	for l, m := range p.masks {
		sk := p.sks[l]
		keys := b.Keys
		for i, k := range keys {
			sk.Update(k&m, int64(b.Sizes[i]))
		}
	}
	return bytes
}

// Total returns the byte volume seen since the last Reset.
func (p *PerLevel) Total() int64 { return p.total }

// Merge folds engine o into p level by level (see SpaceSaving.Merge for
// the bound arithmetic). o is not modified. Both engines must share the
// same hierarchy; capacities may differ, with the merged error bound the
// sum of the two engines' bounds. Merging hash-partitioned shards of one
// stream telescopes back to the single-engine bound.
func (p *PerLevel) Merge(o *PerLevel) {
	if p.h != o.h {
		panic("hhh: PerLevel.Merge hierarchy mismatch")
	}
	for l := range p.sks {
		p.sks[l].Merge(o.sks[l])
	}
	p.total += o.total
}

// Reset clears all levels. Sketch storage is retained, so the
// reset-per-window discipline performs no allocation.
func (p *PerLevel) Reset() {
	for _, s := range p.sks {
		s.Reset()
	}
	p.total = 0
}

// Query returns the HHH set at absolute byte threshold T.
func (p *PerLevel) Query(T int64) Set {
	return queryLevels(p.h, p.sks, 1, T, p.qs)
}

// QueryFraction returns the HHH set at threshold phi of the observed
// traffic volume.
func (p *PerLevel) QueryFraction(phi float64) Set {
	return p.Query(Threshold(p.total, phi))
}

// SizeBytes reports the state footprint: the exact per-level summary
// sizes (entry nodes, count buckets, occupancy bitmap, key index).
func (p *PerLevel) SizeBytes() int {
	n := 0
	for _, s := range p.sks {
		n += s.SizeBytes()
	}
	return n
}
