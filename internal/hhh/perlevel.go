package hhh

import (
	"hiddenhhh/internal/ipv4"
	"hiddenhhh/internal/sketch"
)

// PerLevel is the classical streaming HHH engine: one Space-Saving summary
// per hierarchy level, each keyed by the packet's source address
// generalised to that level. This mirrors the structure programmable
// data-plane implementations use (a match-action stage per level).
//
// Estimates inherit Space-Saving's guarantees per level: never
// underestimating subtree volumes, with overestimation bounded by N/k.
// Conditioned volumes are derived at query time by discounting the
// (estimated) subtree volume of every descendant HHH, mirroring the exact
// bottom-up pass.
type PerLevel struct {
	h     ipv4.Hierarchy
	sks   []*sketch.SpaceSaving
	anc   []ipv4.Prefix
	total int64
}

// NewPerLevel builds an engine with k Space-Saving counters per level.
func NewPerLevel(h ipv4.Hierarchy, k int) *PerLevel {
	levels := h.Levels()
	p := &PerLevel{
		h:   h,
		sks: make([]*sketch.SpaceSaving, levels),
		anc: make([]ipv4.Prefix, 0, levels),
	}
	for l := range p.sks {
		p.sks[l] = sketch.NewSpaceSaving(k)
	}
	return p
}

// Hierarchy returns the configured hierarchy.
func (p *PerLevel) Hierarchy() ipv4.Hierarchy { return p.h }

// Update feeds one packet's source address and byte size.
func (p *PerLevel) Update(src ipv4.Addr, bytes int64) {
	p.total += bytes
	p.anc = p.h.Ancestors(src, p.anc[:0])
	for l, pre := range p.anc {
		p.sks[l].Update(uint64(pre.Addr), bytes)
	}
}

// Total returns the byte volume seen since the last Reset.
func (p *PerLevel) Total() int64 { return p.total }

// Reset clears all levels.
func (p *PerLevel) Reset() {
	for _, s := range p.sks {
		s.Reset()
	}
	p.total = 0
}

// Query returns the HHH set at absolute byte threshold T.
func (p *PerLevel) Query(T int64) Set {
	return queryLevels(p.h, p.sks, 1, T)
}

// QueryFraction returns the HHH set at threshold phi of the observed
// traffic volume.
func (p *PerLevel) QueryFraction(phi float64) Set {
	return p.Query(Threshold(p.total, phi))
}

// SizeBytes estimates the state footprint: per Space-Saving entry a heap
// slot (24 B) plus a map slot (~24 B), per level.
func (p *PerLevel) SizeBytes() int {
	n := 0
	for _, s := range p.sks {
		n += s.Capacity() * 48
	}
	return n
}

// queryLevels performs the bottom-up conditioned pass over per-level
// Space-Saving summaries. scale multiplies raw sketch counts (1 for
// engines that update every level; V for RHHH's sampled levels). Claimed
// subtree volume is propagated upward as a discount exactly as in the
// exact algorithm.
func queryLevels(h ipv4.Hierarchy, sks []*sketch.SpaceSaving, scale int64, T int64) Set {
	levels := h.Levels()
	out := Set{}
	discount := map[ipv4.Addr]int64{}
	for l := 0; l < levels; l++ {
		var parentBits uint8
		last := l+1 >= levels
		if !last {
			parentBits = h.Bits(l + 1)
		}
		next := map[ipv4.Addr]int64{}
		for _, kv := range sks[l].Tracked() {
			addr := ipv4.Addr(kv.Key)
			est := kv.Count * scale
			d := discount[addr]
			delete(discount, addr)
			cond := est - d
			claimed := d
			if cond >= T {
				out.Add(Item{
					Prefix:      ipv4.Prefix{Addr: addr, Bits: h.Bits(l)},
					Count:       est,
					Conditioned: cond,
				})
				claimed = est
			}
			if !last && claimed > 0 {
				next[ipv4.Addr(uint32(addr)&ipv4.Mask(parentBits))] += claimed
			}
		}
		// Discounts whose prefix fell out of this level's summary still
		// represent claimed mass and must keep propagating upward.
		if !last {
			for addr, d := range discount {
				if d > 0 {
					next[ipv4.Addr(uint32(addr)&ipv4.Mask(parentBits))] += d
				}
			}
		}
		discount = next
	}
	return out
}
