package hhh

import (
	"math/rand"
	"testing"

	"hiddenhhh/internal/addr"
)

// BenchmarkPerLevelEngineQuery measures the conditioned bottom-up query
// of a warmed detector-sized per-level engine — the cost paid at every
// window close, and where per-query map and Tracked-slice churn was
// replaced by reusable scratch tables.
func BenchmarkPerLevelEngineQuery(b *testing.B) {
	h := addr.NewIPv4Hierarchy(addr.Byte)
	eng := NewPerLevel(h, 512)
	rng := rand.New(rand.NewSource(1))
	z := rand.NewZipf(rng, 1.2, 1, 1<<16)
	for i := 0; i < 300000; i++ {
		a := addr.From4Uint32(uint32(z.Uint64()) * 2654435761)
		eng.Update(a, int64(40+rng.Intn(1460)))
	}
	T := Threshold(eng.Total(), 0.05)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if s := eng.Query(T); s.Len() == 0 {
			b.Fatal("empty query")
		}
	}
}

// BenchmarkPerLevelEngineUpdate measures the per-packet engine update
// (all hierarchy levels) against a detector-sized summary.
func BenchmarkPerLevelEngineUpdate(b *testing.B) {
	h := addr.NewIPv4Hierarchy(addr.Byte)
	eng := NewPerLevel(h, 512)
	rng := rand.New(rand.NewSource(2))
	z := rand.NewZipf(rng, 1.2, 1, 1<<16)
	const n = 1 << 16
	addrs := make([]addr.Addr, n)
	sizes := make([]int64, n)
	for i := range addrs {
		addrs[i] = addr.From4Uint32(uint32(z.Uint64()) * 2654435761)
		sizes[i] = int64(40 + rng.Intn(1460))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng.Update(addrs[i&(n-1)], sizes[i&(n-1)])
	}
}
