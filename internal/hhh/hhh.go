// Package hhh implements one-dimensional hierarchical heavy hitter (HHH)
// detection over source prefixes of a configurable hierarchy — IPv4 or
// IPv6, any uniform granularity (see internal/addr.Hierarchy). The IPv4
// byte ladder is the setting of the paper's experiments; the IPv6
// lattices are the tall-hierarchy stress case RHHH targets.
//
// Definitions follow the discounted semantics of Cormode et al.: given a
// byte threshold T, a leaf prefix is an HHH when its volume reaches T; an
// interior prefix is an HHH when its *conditioned* volume — total volume of
// its subtree minus the volume already claimed by descendant HHHs — reaches
// T. The package provides:
//
//   - Exact offline computation from a per-leaf byte counter (the ground
//     truth used by the hidden-HHH and window-sensitivity analyses).
//   - A streaming per-level Space-Saving engine (the approach programmable
//     data-plane HHH systems use).
//   - RHHH, the randomised-level variant of Ben Basat et al.
//   - HHH set algebra (union, difference, Jaccard similarity), the basis of
//     the paper's metrics.
//
// Every engine filters ingest by its hierarchy's address family (see
// addr.Hierarchy.Match), so a dual-stack packet stream can be fed to a
// detector per family without pre-splitting.
package hhh

import (
	"fmt"
	"sort"
	"strings"

	"hiddenhhh/internal/addr"
)

// Item is one reported hierarchical heavy hitter.
type Item struct {
	// Prefix is the reported lattice prefix.
	Prefix addr.Prefix
	// Count is the (estimated) total byte volume of the prefix's subtree.
	Count int64
	// Conditioned is the (estimated) volume not claimed by descendant
	// HHHs; the quantity compared against the threshold.
	Conditioned int64
}

// String renders the item for reports.
func (it Item) String() string {
	return fmt.Sprintf("%v total=%d cond=%d", it.Prefix, it.Count, it.Conditioned)
}

// Set is a collection of HHHs keyed by prefix. The zero value is an empty
// set; mutate through Add.
type Set map[addr.Prefix]Item

// NewSet builds a set from items.
func NewSet(items ...Item) Set {
	s := make(Set, len(items))
	for _, it := range items {
		s.Add(it)
	}
	return s
}

// Add inserts or replaces the item for its prefix.
func (s Set) Add(it Item) { s[it.Prefix] = it }

// Contains reports membership of the prefix.
func (s Set) Contains(p addr.Prefix) bool {
	_, ok := s[p]
	return ok
}

// Len returns the set cardinality.
func (s Set) Len() int { return len(s) }

// Prefixes returns the member prefixes sorted by (Bits, Addr).
func (s Set) Prefixes() []addr.Prefix {
	out := make([]addr.Prefix, 0, len(s))
	for p := range s {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Compare(out[j]) < 0 })
	return out
}

// Items returns the members sorted by (Bits, Addr).
func (s Set) Items() []Item {
	out := make([]Item, 0, len(s))
	for _, it := range s {
		out = append(out, it)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Prefix.Compare(out[j].Prefix) < 0 })
	return out
}

// Union returns a new set with members of both s and t. When a prefix is in
// both, s's item wins (counts from different windows are not comparable
// anyway; the experiments only use membership).
func (s Set) Union(t Set) Set {
	out := make(Set, len(s)+len(t))
	for p, it := range t {
		out[p] = it
	}
	for p, it := range s {
		out[p] = it
	}
	return out
}

// UnionInPlace adds all members of t to s, keeping existing entries.
func (s Set) UnionInPlace(t Set) {
	for p, it := range t {
		if _, ok := s[p]; !ok {
			s[p] = it
		}
	}
}

// Diff returns the members of s not present in t.
func (s Set) Diff(t Set) Set {
	out := Set{}
	for p, it := range s {
		if !t.Contains(p) {
			out[p] = it
		}
	}
	return out
}

// Intersect returns the members present in both sets (items from s).
func (s Set) Intersect(t Set) Set {
	out := Set{}
	for p, it := range s {
		if t.Contains(p) {
			out[p] = it
		}
	}
	return out
}

// Equal reports whether both sets contain exactly the same prefixes.
func (s Set) Equal(t Set) bool {
	if len(s) != len(t) {
		return false
	}
	for p := range s {
		if !t.Contains(p) {
			return false
		}
	}
	return true
}

// Jaccard returns |s∩t| / |s∪t|, the similarity coefficient Figure 3 of
// the paper reports. Two empty sets are defined as identical (1.0).
func (s Set) Jaccard(t Set) float64 {
	if len(s) == 0 && len(t) == 0 {
		return 1
	}
	inter := 0
	for p := range s {
		if t.Contains(p) {
			inter++
		}
	}
	union := len(s) + len(t) - inter
	return float64(inter) / float64(union)
}

// String renders the sorted prefixes, for diagnostics.
func (s Set) String() string {
	ps := s.Prefixes()
	var b strings.Builder
	b.WriteByte('{')
	for i, p := range ps {
		if i > 0 {
			b.WriteByte(' ')
		}
		b.WriteString(p.String())
	}
	b.WriteByte('}')
	return b.String()
}

// Threshold computes the byte threshold T = phi * totalBytes, truncated
// toward zero and floored at 1 byte. Every detector and experiment in
// the repository derives its threshold through this function, so the
// rounding convention is uniform: a prefix qualifies when its volume is
// >= T, which admits volumes at exactly phi·N and — when phi·N is
// fractional — the bytes just below it (T = ⌊phi·N⌋). The floor at 1
// keeps zero-volume prefixes out of every report, including at N = 0.
// Note the product is evaluated in float64: a mathematically integral
// phi·N can land just below its integer (e.g. 0.29 × 100 → 28.999…,
// T = 28); the boundary table test pins the exact behaviour. phi must
// be in (0,1].
func Threshold(totalBytes int64, phi float64) int64 {
	if phi <= 0 || phi > 1 {
		panic(fmt.Sprintf("hhh: threshold fraction %v out of (0,1]", phi))
	}
	t := int64(phi * float64(totalBytes))
	if t < 1 {
		t = 1
	}
	return t
}
