package hhh

import (
	"math/rand"
	"testing"
	"testing/quick"

	"hiddenhhh/internal/ipv4"
	"hiddenhhh/internal/sketch"
)

func pfx(s string) ipv4.Prefix { return ipv4.MustParsePrefix(s) }

func TestSetBasics(t *testing.T) {
	s := NewSet(
		Item{Prefix: pfx("10.0.0.0/8"), Count: 100, Conditioned: 60},
		Item{Prefix: pfx("10.1.0.0/16"), Count: 40, Conditioned: 40},
	)
	if s.Len() != 2 {
		t.Fatalf("Len = %d", s.Len())
	}
	if !s.Contains(pfx("10.0.0.0/8")) || s.Contains(pfx("11.0.0.0/8")) {
		t.Error("Contains wrong")
	}
	ps := s.Prefixes()
	if len(ps) != 2 || ps[0] != pfx("10.0.0.0/8") || ps[1] != pfx("10.1.0.0/16") {
		t.Errorf("Prefixes order: %v", ps)
	}
	items := s.Items()
	if items[0].Prefix != pfx("10.0.0.0/8") {
		t.Error("Items order")
	}
	if s.String() != "{10.0.0.0/8 10.1.0.0/16}" {
		t.Errorf("String = %q", s.String())
	}
	if items[0].String() == "" {
		t.Error("Item.String empty")
	}
}

func TestSetAlgebra(t *testing.T) {
	a := NewSet(
		Item{Prefix: pfx("1.0.0.0/8")},
		Item{Prefix: pfx("2.0.0.0/8")},
		Item{Prefix: pfx("3.0.0.0/8")},
	)
	b := NewSet(
		Item{Prefix: pfx("2.0.0.0/8")},
		Item{Prefix: pfx("3.0.0.0/8")},
		Item{Prefix: pfx("4.0.0.0/8")},
	)
	if u := a.Union(b); u.Len() != 4 {
		t.Errorf("Union len = %d", u.Len())
	}
	if d := a.Diff(b); d.Len() != 1 || !d.Contains(pfx("1.0.0.0/8")) {
		t.Errorf("Diff = %v", d)
	}
	if i := a.Intersect(b); i.Len() != 2 {
		t.Errorf("Intersect len = %d", i.Len())
	}
	if got := a.Jaccard(b); got != 0.5 {
		t.Errorf("Jaccard = %v, want 0.5", got)
	}
	if !a.Equal(a) || a.Equal(b) {
		t.Error("Equal wrong")
	}
	c := NewSet()
	c.UnionInPlace(a)
	if !c.Equal(a) {
		t.Error("UnionInPlace")
	}
}

func TestJaccardEdgeCases(t *testing.T) {
	empty := NewSet()
	if empty.Jaccard(NewSet()) != 1 {
		t.Error("two empty sets should have Jaccard 1")
	}
	a := NewSet(Item{Prefix: pfx("1.0.0.0/8")})
	if a.Jaccard(empty) != 0 || empty.Jaccard(a) != 0 {
		t.Error("empty vs non-empty should be 0")
	}
	if a.Jaccard(a) != 1 {
		t.Error("self Jaccard should be 1")
	}
}

func TestJaccardSymmetryProperty(t *testing.T) {
	mk := func(bits []uint8) Set {
		s := NewSet()
		for _, b := range bits {
			s.Add(Item{Prefix: ipv4.PrefixFrom(ipv4.Addr(uint32(b)<<24), 8)})
		}
		return s
	}
	f := func(xs, ys []uint8) bool {
		a, b := mk(xs), mk(ys)
		j1, j2 := a.Jaccard(b), b.Jaccard(a)
		return j1 == j2 && j1 >= 0 && j1 <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestThreshold(t *testing.T) {
	if Threshold(1000, 0.05) != 50 {
		t.Error("5% of 1000 should be 50")
	}
	if Threshold(10, 0.001) != 1 {
		t.Error("tiny thresholds floor at 1")
	}
	defer func() {
		if recover() == nil {
			t.Error("Threshold(_, 0) should panic")
		}
	}()
	Threshold(1000, 0)
}

// bruteHHH is an independent literal implementation of the discounted HHH
// definition: processing levels bottom-up, a prefix's conditioned count is
// the sum of leaf volumes underneath it that are not covered by any
// already-marked (more specific) HHH.
func bruteHHH(counts map[ipv4.Addr]int64, h ipv4.Hierarchy, T int64) Set {
	type leaf struct {
		addr ipv4.Addr
		c    int64
	}
	var leaves []leaf
	for a, c := range counts {
		if c > 0 {
			leaves = append(leaves, leaf{a, c})
		}
	}
	out := Set{}
	var marked []ipv4.Prefix
	for l := 0; l < h.Levels(); l++ {
		prefixes := map[ipv4.Prefix]bool{}
		for _, lf := range leaves {
			prefixes[h.At(lf.addr, l)] = true
		}
		var newly []ipv4.Prefix
		for p := range prefixes {
			var cond, total int64
			for _, lf := range leaves {
				if !p.Contains(lf.addr) {
					continue
				}
				total += lf.c
				covered := false
				for _, m := range marked {
					if m.Contains(lf.addr) {
						covered = true
						break
					}
				}
				if !covered {
					cond += lf.c
				}
			}
			if cond >= T {
				out.Add(Item{Prefix: p, Count: total, Conditioned: cond})
				newly = append(newly, p)
			}
		}
		marked = append(marked, newly...)
	}
	return out
}

func randomCounts(rng *rand.Rand, n int) map[ipv4.Addr]int64 {
	counts := map[ipv4.Addr]int64{}
	for i := 0; i < n; i++ {
		// Confine octets to {0,1} so prefixes collide across all levels.
		a := ipv4.AddrFrom4(byte(rng.Intn(2)), byte(rng.Intn(2)), byte(rng.Intn(2)), byte(rng.Intn(2)))
		counts[a] += int64(1 + rng.Intn(100))
	}
	return counts
}

func TestExactMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for _, g := range []ipv4.Granularity{ipv4.Byte, ipv4.Nibble} {
		h := ipv4.NewHierarchy(g)
		for trial := 0; trial < 60; trial++ {
			counts := randomCounts(rng, 1+rng.Intn(30))
			var total int64
			for _, c := range counts {
				total += c
			}
			T := Threshold(total, []float64{0.01, 0.05, 0.10, 0.30}[rng.Intn(4)])
			got := ExactFromCounts(counts, h, T)
			want := bruteHHH(counts, h, T)
			if !got.Equal(want) {
				t.Fatalf("granularity %v trial %d T=%d:\n got  %v\n want %v\n counts %v",
					g, trial, T, got, want, counts)
			}
			// Conditioned values must agree too.
			for p, it := range got {
				if want[p].Conditioned != it.Conditioned {
					t.Fatalf("cond mismatch at %v: got %d want %d", p, it.Conditioned, want[p].Conditioned)
				}
				if want[p].Count != it.Count {
					t.Fatalf("count mismatch at %v: got %d want %d", p, it.Count, want[p].Count)
				}
			}
		}
	}
}

func TestExactInvariants(t *testing.T) {
	h := ipv4.NewHierarchy(ipv4.Byte)
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 40; trial++ {
		counts := randomCounts(rng, 1+rng.Intn(50))
		var total int64
		for _, c := range counts {
			total += c
		}
		T := Threshold(total, 0.05)
		set := ExactFromCounts(counts, h, T)
		var condSum int64
		for p, it := range set {
			if it.Conditioned < T {
				t.Fatalf("item %v conditioned %d below threshold %d", p, it.Conditioned, T)
			}
			if it.Count < it.Conditioned {
				t.Fatalf("item %v count %d < conditioned %d", p, it.Count, it.Conditioned)
			}
			if !h.OnLattice(p) {
				t.Fatalf("item %v off lattice", p)
			}
			if p.Bits == 32 && it.Count != it.Conditioned {
				t.Fatalf("leaf %v count != conditioned", p)
			}
			condSum += it.Conditioned
		}
		if condSum > total {
			t.Fatalf("sum of conditioned %d exceeds total %d", condSum, total)
		}
	}
}

func TestExactSimpleScenario(t *testing.T) {
	// Three hosts inside 10.1.2.0/24 each with 30 bytes; threshold 50.
	// No single host qualifies; the /24 aggregates 90 >= 50 and becomes
	// the HHH. Its ancestors see 0 unclaimed (all claimed by the /24),
	// except nothing else flows, so no more HHHs.
	h := ipv4.NewHierarchy(ipv4.Byte)
	counts := map[ipv4.Addr]int64{
		ipv4.MustParseAddr("10.1.2.1"): 30,
		ipv4.MustParseAddr("10.1.2.2"): 30,
		ipv4.MustParseAddr("10.1.2.3"): 30,
	}
	set := ExactFromCounts(counts, h, 50)
	if set.Len() != 1 || !set.Contains(pfx("10.1.2.0/24")) {
		t.Fatalf("got %v, want exactly {10.1.2.0/24}", set)
	}
	it := set[pfx("10.1.2.0/24")]
	if it.Count != 90 || it.Conditioned != 90 {
		t.Errorf("item = %+v", it)
	}
}

func TestExactDiscounting(t *testing.T) {
	// One heavy host (100) plus siblings (30+30) under the same /24,
	// threshold 50: host is an HHH; the /24's conditioned volume is only
	// 60, which also qualifies; the /16 then sees 0 unclaimed.
	h := ipv4.NewHierarchy(ipv4.Byte)
	counts := map[ipv4.Addr]int64{
		ipv4.MustParseAddr("10.1.2.1"): 100,
		ipv4.MustParseAddr("10.1.2.2"): 30,
		ipv4.MustParseAddr("10.1.2.3"): 30,
	}
	set := ExactFromCounts(counts, h, 50)
	want := NewSet(
		Item{Prefix: pfx("10.1.2.1/32")},
		Item{Prefix: pfx("10.1.2.0/24")},
	)
	if !set.Equal(want) {
		t.Fatalf("got %v, want %v", set, want)
	}
	if it := set[pfx("10.1.2.0/24")]; it.Conditioned != 60 || it.Count != 160 {
		t.Errorf("/24 item = %+v, want cond 60 count 160", it)
	}
}

func TestExactRootHHH(t *testing.T) {
	// Diffuse traffic: 100 hosts in distinct /8s, 10 bytes each, T=500.
	// Nothing below the root qualifies; the root's conditioned volume is
	// the full 1000 and it is the sole HHH.
	h := ipv4.NewHierarchy(ipv4.Byte)
	counts := map[ipv4.Addr]int64{}
	for i := 0; i < 100; i++ {
		counts[ipv4.AddrFrom4(byte(i+1), 0, 0, 1)] = 10
	}
	set := ExactFromCounts(counts, h, 500)
	if set.Len() != 1 || !set.Contains(ipv4.Root) {
		t.Fatalf("got %v, want exactly the root", set)
	}
}

func TestExactEmpty(t *testing.T) {
	h := ipv4.NewHierarchy(ipv4.Byte)
	set := Exact(sketch.NewExact(0), h, 100)
	if set.Len() != 0 {
		t.Errorf("empty input should give empty set, got %v", set)
	}
}

func TestHeavyHitters(t *testing.T) {
	e := sketch.NewExact(0)
	e.Update(uint64(ipv4.MustParseAddr("1.2.3.4")), 100)
	e.Update(uint64(ipv4.MustParseAddr("5.6.7.8")), 10)
	set := HeavyHitters(e, 50)
	if set.Len() != 1 || !set.Contains(pfx("1.2.3.4/32")) {
		t.Fatalf("got %v", set)
	}
}

func TestPerLevelExactWhenUnsaturated(t *testing.T) {
	// With capacity >= distinct keys per level, Space-Saving is exact, so
	// the engine must reproduce the exact HHH set bit-for-bit.
	h := ipv4.NewHierarchy(ipv4.Byte)
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 25; trial++ {
		counts := randomCounts(rng, 1+rng.Intn(40))
		eng := NewPerLevel(h, 1024)
		exact := sketch.NewExact(len(counts))
		var total int64
		for a, c := range counts {
			eng.Update(a, c)
			exact.Update(uint64(a), c)
			total += c
		}
		if eng.Total() != total {
			t.Fatalf("engine total %d != %d", eng.Total(), total)
		}
		for _, phi := range []float64{0.01, 0.05, 0.2} {
			T := Threshold(total, phi)
			got := eng.Query(T)
			want := Exact(exact, h, T)
			if !got.Equal(want) {
				t.Fatalf("trial %d phi=%v:\n got  %v\n want %v", trial, phi, got, want)
			}
		}
	}
}

func TestPerLevelNeverMissesLargeHHH(t *testing.T) {
	// Even under heavy eviction pressure, a prefix carrying ~30% of
	// traffic must be reported at phi=0.1 (Space-Saving never
	// underestimates, so its subtree estimate stays above threshold).
	h := ipv4.NewHierarchy(ipv4.Byte)
	eng := NewPerLevel(h, 16)
	rng := rand.New(rand.NewSource(13))
	heavy := ipv4.MustParseAddr("10.1.2.3")
	var total int64
	for i := 0; i < 50000; i++ {
		if i%3 == 0 {
			eng.Update(heavy, 1000)
			total += 1000
		} else {
			eng.Update(ipv4.Addr(rng.Uint32()), 700)
			total += 700
		}
	}
	set := eng.QueryFraction(0.1)
	found := false
	for p := range set {
		if p.Contains(heavy) && p.Bits > 0 {
			found = true
		}
	}
	if !found {
		t.Fatalf("heavy source not covered by any reported HHH: %v", set)
	}
}

func TestPerLevelResetAndSize(t *testing.T) {
	h := ipv4.NewHierarchy(ipv4.Byte)
	eng := NewPerLevel(h, 8)
	eng.Update(ipv4.MustParseAddr("1.2.3.4"), 100)
	eng.Reset()
	if eng.Total() != 0 || eng.Query(1).Len() != 0 {
		t.Error("Reset incomplete")
	}
	// Exact accounting: one summary per level, as the summary reports it.
	if want := 5 * sketch.NewSpaceSaving(8).SizeBytes(); eng.SizeBytes() != want {
		t.Errorf("SizeBytes = %d, want %d", eng.SizeBytes(), want)
	}
	if eng.Hierarchy().Levels() != 5 {
		t.Error("Hierarchy accessor")
	}
}

func TestRHHHFindsHeavyPrefixes(t *testing.T) {
	h := ipv4.NewHierarchy(ipv4.Byte)
	eng := NewRHHH(h, 64, 99)
	rng := rand.New(rand.NewSource(17))
	// 40% of bytes from one /24, rest spread over the space.
	subnet := ipv4.MustParseAddr("192.168.7.0")
	var total int64
	for i := 0; i < 300000; i++ {
		var a ipv4.Addr
		if rng.Intn(10) < 4 {
			a = subnet + ipv4.Addr(rng.Intn(256))
		} else {
			a = ipv4.Addr(rng.Uint32())
		}
		eng.Update(a, 1000)
		total += 1000
	}
	if eng.Total() != total || eng.Updates() != 300000 {
		t.Fatal("bookkeeping wrong")
	}
	set := eng.QueryFraction(0.1)
	found := false
	for p := range set {
		if p.Bits >= 24 && p.Contains(subnet) {
			found = true
		}
	}
	if !found {
		t.Fatalf("RHHH missed the 40%% /24: %v", set)
	}
}

func TestRHHHEstimateAccuracy(t *testing.T) {
	h := ipv4.NewHierarchy(ipv4.Byte)
	eng := NewRHHH(h, 256, 5)
	heavy := ipv4.MustParseAddr("10.0.0.1")
	var heavyBytes int64
	rng := rand.New(rand.NewSource(19))
	for i := 0; i < 500000; i++ {
		if i%2 == 0 {
			eng.Update(heavy, 500)
			heavyBytes += 500
		} else {
			eng.Update(ipv4.Addr(rng.Uint32()), 500)
		}
	}
	set := eng.Query(Threshold(eng.Total(), 0.2))
	it, ok := set[pfx("10.0.0.1/32")]
	if !ok {
		t.Fatalf("heavy host missing from %v", set)
	}
	rel := float64(it.Count-heavyBytes) / float64(heavyBytes)
	if rel < -0.15 || rel > 0.15 {
		t.Errorf("estimate %d vs true %d (rel %.3f)", it.Count, heavyBytes, rel)
	}
}

func TestRHHHDeterministicUnderSeed(t *testing.T) {
	h := ipv4.NewHierarchy(ipv4.Byte)
	run := func(seed uint64) Set {
		eng := NewRHHH(h, 32, seed)
		rng := rand.New(rand.NewSource(23))
		for i := 0; i < 20000; i++ {
			eng.Update(ipv4.Addr(rng.Uint32()>>8), 100)
		}
		return eng.QueryFraction(0.05)
	}
	if !run(1).Equal(run(1)) {
		t.Error("same seed should reproduce identical output")
	}
}

func TestRHHHResetKeepsWorking(t *testing.T) {
	h := ipv4.NewHierarchy(ipv4.Byte)
	eng := NewRHHH(h, 32, 1)
	eng.Update(ipv4.MustParseAddr("1.1.1.1"), 100)
	eng.Reset()
	if eng.Total() != 0 || eng.Updates() != 0 {
		t.Error("Reset bookkeeping")
	}
	eng.Update(ipv4.MustParseAddr("1.1.1.1"), 100)
	if eng.Total() != 100 {
		t.Error("post-Reset update")
	}
	if eng.SizeBytes() == 0 {
		t.Error("SizeBytes should be positive")
	}
	if eng.Hierarchy().Levels() != 5 {
		t.Error("Hierarchy accessor")
	}
}

func BenchmarkExactHHH(b *testing.B) {
	h := ipv4.NewHierarchy(ipv4.Byte)
	rng := rand.New(rand.NewSource(3))
	e := sketch.NewExact(100000)
	for i := 0; i < 100000; i++ {
		e.Update(uint64(rng.Uint32()&0x0fffffff), int64(40+rng.Intn(1460)))
	}
	T := Threshold(e.Total(), 0.01)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		set := Exact(e, h, T)
		if set.Len() == 0 {
			b.Fatal("no HHHs")
		}
	}
}

func BenchmarkPerLevelUpdate(b *testing.B) {
	h := ipv4.NewHierarchy(ipv4.Byte)
	eng := NewPerLevel(h, 512)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		eng.Update(ipv4.Addr(uint32(i)*2654435761), 1000)
	}
}

func BenchmarkRHHHUpdate(b *testing.B) {
	h := ipv4.NewHierarchy(ipv4.Byte)
	eng := NewRHHH(h, 512, 7)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		eng.Update(ipv4.Addr(uint32(i)*2654435761), 1000)
	}
}
