package hhh

import (
	"math/rand"
	"testing"
	"testing/quick"

	"hiddenhhh/internal/addr"
	"hiddenhhh/internal/sketch"
)

func pfx(s string) addr.Prefix { return addr.MustParsePrefix(s) }

func v4ByteHierarchy() addr.Hierarchy { return addr.NewIPv4Hierarchy(addr.Byte) }

func TestSetBasics(t *testing.T) {
	s := NewSet(
		Item{Prefix: pfx("10.0.0.0/8"), Count: 100, Conditioned: 60},
		Item{Prefix: pfx("10.1.0.0/16"), Count: 40, Conditioned: 40},
	)
	if s.Len() != 2 {
		t.Fatalf("Len = %d", s.Len())
	}
	if !s.Contains(pfx("10.0.0.0/8")) || s.Contains(pfx("11.0.0.0/8")) {
		t.Error("Contains wrong")
	}
	ps := s.Prefixes()
	if len(ps) != 2 || ps[0] != pfx("10.0.0.0/8") || ps[1] != pfx("10.1.0.0/16") {
		t.Errorf("Prefixes order: %v", ps)
	}
	items := s.Items()
	if items[0].Prefix != pfx("10.0.0.0/8") {
		t.Error("Items order")
	}
	if s.String() != "{10.0.0.0/8 10.1.0.0/16}" {
		t.Errorf("String = %q", s.String())
	}
	if items[0].String() == "" {
		t.Error("Item.String empty")
	}
}

func TestSetAlgebra(t *testing.T) {
	a := NewSet(
		Item{Prefix: pfx("1.0.0.0/8")},
		Item{Prefix: pfx("2.0.0.0/8")},
		Item{Prefix: pfx("3.0.0.0/8")},
	)
	b := NewSet(
		Item{Prefix: pfx("2.0.0.0/8")},
		Item{Prefix: pfx("3.0.0.0/8")},
		Item{Prefix: pfx("4.0.0.0/8")},
	)
	if u := a.Union(b); u.Len() != 4 {
		t.Errorf("Union len = %d", u.Len())
	}
	if d := a.Diff(b); d.Len() != 1 || !d.Contains(pfx("1.0.0.0/8")) {
		t.Errorf("Diff = %v", d)
	}
	if i := a.Intersect(b); i.Len() != 2 {
		t.Errorf("Intersect len = %d", i.Len())
	}
	if got := a.Jaccard(b); got != 0.5 {
		t.Errorf("Jaccard = %v, want 0.5", got)
	}
	if !a.Equal(a) || a.Equal(b) {
		t.Error("Equal wrong")
	}
	c := NewSet()
	c.UnionInPlace(a)
	if !c.Equal(a) {
		t.Error("UnionInPlace")
	}
}

func TestJaccardEdgeCases(t *testing.T) {
	empty := NewSet()
	if empty.Jaccard(NewSet()) != 1 {
		t.Error("two empty sets should have Jaccard 1")
	}
	a := NewSet(Item{Prefix: pfx("1.0.0.0/8")})
	if a.Jaccard(empty) != 0 || empty.Jaccard(a) != 0 {
		t.Error("empty vs non-empty should be 0")
	}
	if a.Jaccard(a) != 1 {
		t.Error("self Jaccard should be 1")
	}
}

func TestJaccardSymmetryProperty(t *testing.T) {
	mk := func(bits []uint8) Set {
		s := NewSet()
		for _, b := range bits {
			s.Add(Item{Prefix: addr.PrefixFrom(addr.From4Uint32(uint32(b)<<24), 96+8)})
		}
		return s
	}
	f := func(xs, ys []uint8) bool {
		a, b := mk(xs), mk(ys)
		j1, j2 := a.Jaccard(b), b.Jaccard(a)
		return j1 == j2 && j1 >= 0 && j1 <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestThreshold(t *testing.T) {
	if Threshold(1000, 0.05) != 50 {
		t.Error("5% of 1000 should be 50")
	}
	if Threshold(10, 0.001) != 1 {
		t.Error("tiny thresholds floor at 1")
	}
	defer func() {
		if recover() == nil {
			t.Error("Threshold(_, 0) should panic")
		}
	}()
	Threshold(1000, 0)
}

// bruteHHH is an independent literal implementation of the discounted HHH
// definition: processing levels bottom-up, a prefix's conditioned count is
// the sum of leaf volumes underneath it that are not covered by any
// already-marked (more specific) HHH.
func bruteHHH(counts map[addr.Addr]int64, h addr.Hierarchy, T int64) Set {
	type leaf struct {
		a addr.Addr
		c int64
	}
	var leaves []leaf
	for a, c := range counts {
		if c > 0 && h.Match(a) {
			leaves = append(leaves, leaf{a, c})
		}
	}
	out := Set{}
	var marked []addr.Prefix
	for l := 0; l < h.Levels(); l++ {
		prefixes := map[addr.Prefix]bool{}
		for _, lf := range leaves {
			prefixes[h.At(lf.a, l)] = true
		}
		var newly []addr.Prefix
		for p := range prefixes {
			var cond, total int64
			for _, lf := range leaves {
				if !p.Contains(lf.a) {
					continue
				}
				total += lf.c
				covered := false
				for _, m := range marked {
					if m.Contains(lf.a) {
						covered = true
						break
					}
				}
				if !covered {
					cond += lf.c
				}
			}
			if cond >= T {
				out.Add(Item{Prefix: p, Count: total, Conditioned: cond})
				newly = append(newly, p)
			}
		}
		marked = append(marked, newly...)
	}
	return out
}

// randomCounts draws IPv4 leaf volumes with octets confined to {0,1} so
// prefixes collide across all levels.
func randomCounts(rng *rand.Rand, n int) map[addr.Addr]int64 {
	counts := map[addr.Addr]int64{}
	for i := 0; i < n; i++ {
		a := addr.From4(byte(rng.Intn(2)), byte(rng.Intn(2)), byte(rng.Intn(2)), byte(rng.Intn(2)))
		counts[a] += int64(1 + rng.Intn(100))
	}
	return counts
}

// randomCounts6 draws IPv6 leaf volumes with each 16-bit group confined
// to {0,1}, the v6 analogue of randomCounts.
func randomCounts6(rng *rand.Rand, n int) map[addr.Addr]int64 {
	counts := map[addr.Addr]int64{}
	for i := 0; i < n; i++ {
		var hi uint64
		for g := 0; g < 4; g++ {
			hi = hi<<16 | uint64(rng.Intn(2))
		}
		// Keep clear of the mapped range: hi != 0 unless all groups are 0,
		// so force the top group to 1 occasionally stays fine — the all-zero
		// hi with lo=1 is still IPv6 ("::1"), never IPv4-mapped.
		counts[addr.FromParts(hi, uint64(rng.Intn(2)))] += int64(1 + rng.Intn(100))
	}
	return counts
}

func TestExactMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	cases := []struct {
		h  addr.Hierarchy
		mk func(*rand.Rand, int) map[addr.Addr]int64
	}{
		{addr.NewIPv4Hierarchy(addr.Byte), randomCounts},
		{addr.NewIPv4Hierarchy(addr.Nibble), randomCounts},
		{addr.NewIPv6Hierarchy(addr.Hextet), randomCounts6},
		{addr.NewIPv6Hierarchy(addr.Nibble), randomCounts6},
	}
	for _, c := range cases {
		h := c.h
		for trial := 0; trial < 60; trial++ {
			counts := c.mk(rng, 1+rng.Intn(30))
			var total int64
			for _, cnt := range counts {
				total += cnt
			}
			T := Threshold(total, []float64{0.01, 0.05, 0.10, 0.30}[rng.Intn(4)])
			got := ExactFromCounts(counts, h, T)
			want := bruteHHH(counts, h, T)
			if !got.Equal(want) {
				t.Fatalf("%v trial %d T=%d:\n got  %v\n want %v\n counts %v",
					h, trial, T, got, want, counts)
			}
			// Conditioned values must agree too.
			for p, it := range got {
				if want[p].Conditioned != it.Conditioned {
					t.Fatalf("cond mismatch at %v: got %d want %d", p, it.Conditioned, want[p].Conditioned)
				}
				if want[p].Count != it.Count {
					t.Fatalf("count mismatch at %v: got %d want %d", p, it.Count, want[p].Count)
				}
			}
		}
	}
}

func TestExactInvariants(t *testing.T) {
	h := v4ByteHierarchy()
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 40; trial++ {
		counts := randomCounts(rng, 1+rng.Intn(50))
		var total int64
		for _, c := range counts {
			total += c
		}
		T := Threshold(total, 0.05)
		set := ExactFromCounts(counts, h, T)
		var condSum int64
		for p, it := range set {
			if it.Conditioned < T {
				t.Fatalf("item %v conditioned %d below threshold %d", p, it.Conditioned, T)
			}
			if it.Count < it.Conditioned {
				t.Fatalf("item %v count %d < conditioned %d", p, it.Count, it.Conditioned)
			}
			if !h.OnLattice(p) {
				t.Fatalf("item %v off lattice", p)
			}
			if p.Bits == h.Bits(0) && it.Count != it.Conditioned {
				t.Fatalf("leaf %v count != conditioned", p)
			}
			condSum += it.Conditioned
		}
		if condSum > total {
			t.Fatalf("sum of conditioned %d exceeds total %d", condSum, total)
		}
	}
}

func TestExactSimpleScenario(t *testing.T) {
	// Three hosts inside 10.1.2.0/24 each with 30 bytes; threshold 50.
	// No single host qualifies; the /24 aggregates 90 >= 50 and becomes
	// the HHH. Its ancestors see 0 unclaimed (all claimed by the /24),
	// except nothing else flows, so no more HHHs.
	h := v4ByteHierarchy()
	counts := map[addr.Addr]int64{
		addr.MustParseAddr("10.1.2.1"): 30,
		addr.MustParseAddr("10.1.2.2"): 30,
		addr.MustParseAddr("10.1.2.3"): 30,
	}
	set := ExactFromCounts(counts, h, 50)
	if set.Len() != 1 || !set.Contains(pfx("10.1.2.0/24")) {
		t.Fatalf("got %v, want exactly {10.1.2.0/24}", set)
	}
	it := set[pfx("10.1.2.0/24")]
	if it.Count != 90 || it.Conditioned != 90 {
		t.Errorf("item = %+v", it)
	}
}

func TestExactSimpleScenarioIPv6(t *testing.T) {
	// The v6 mirror of the simple scenario: three /64 subnets inside
	// 2001:db8:7::/48, threshold 50, on the hextet ladder.
	h := addr.NewIPv6Hierarchy(addr.Hextet)
	counts := map[addr.Addr]int64{
		addr.MustParseAddr("2001:db8:7:1::1"): 30,
		addr.MustParseAddr("2001:db8:7:2::1"): 30,
		addr.MustParseAddr("2001:db8:7:3::1"): 30,
	}
	set := ExactFromCounts(counts, h, 50)
	if set.Len() != 1 || !set.Contains(pfx("2001:db8:7::/48")) {
		t.Fatalf("got %v, want exactly {2001:db8:7::/48}", set)
	}
	if it := set[pfx("2001:db8:7::/48")]; it.Count != 90 || it.Conditioned != 90 {
		t.Errorf("item = %+v", it)
	}
}

func TestExactDiscounting(t *testing.T) {
	// One heavy host (100) plus siblings (30+30) under the same /24,
	// threshold 50: host is an HHH; the /24's conditioned volume is only
	// 60, which also qualifies; the /16 then sees 0 unclaimed.
	h := v4ByteHierarchy()
	counts := map[addr.Addr]int64{
		addr.MustParseAddr("10.1.2.1"): 100,
		addr.MustParseAddr("10.1.2.2"): 30,
		addr.MustParseAddr("10.1.2.3"): 30,
	}
	set := ExactFromCounts(counts, h, 50)
	want := NewSet(
		Item{Prefix: pfx("10.1.2.1/32")},
		Item{Prefix: pfx("10.1.2.0/24")},
	)
	if !set.Equal(want) {
		t.Fatalf("got %v, want %v", set, want)
	}
	if it := set[pfx("10.1.2.0/24")]; it.Conditioned != 60 || it.Count != 160 {
		t.Errorf("/24 item = %+v, want cond 60 count 160", it)
	}
}

func TestExactRootHHH(t *testing.T) {
	// Diffuse traffic: 100 hosts in distinct /8s, 10 bytes each, T=500.
	// Nothing below the root qualifies; the root's conditioned volume is
	// the full 1000 and it is the sole HHH.
	h := v4ByteHierarchy()
	counts := map[addr.Addr]int64{}
	for i := 0; i < 100; i++ {
		counts[addr.From4(byte(i+1), 0, 0, 1)] = 10
	}
	set := ExactFromCounts(counts, h, 500)
	if set.Len() != 1 || !set.Contains(addr.V4Root) {
		t.Fatalf("got %v, want exactly the v4 root", set)
	}
}

func TestExactFamilyFilter(t *testing.T) {
	// A dual-stack aggregate fed to each family's hierarchy: each exact
	// set must account only its own family's bytes.
	counts := map[addr.Addr]int64{
		addr.MustParseAddr("10.1.2.1"):      100,
		addr.MustParseAddr("2001:db8::1"):   100,
		addr.MustParseAddr("2001:db8:1::1"): 20,
	}
	v4 := ExactFromCounts(counts, v4ByteHierarchy(), 60)
	if !v4.Contains(pfx("10.1.2.1/32")) || v4.Len() != 1 {
		t.Fatalf("v4 view = %v", v4)
	}
	v6 := ExactFromCounts(counts, addr.NewIPv6Hierarchy(addr.Hextet), 60)
	for p := range v6 {
		if p.Is4() {
			t.Fatalf("v6 view contains v4 prefix %v", p)
		}
	}
	if !v6.Contains(pfx("2001:db8::/64")) {
		t.Fatalf("v6 view = %v", v6)
	}
}

func TestExactEmpty(t *testing.T) {
	set := Exact(sketch.NewExact(0), v4ByteHierarchy(), 100)
	if set.Len() != 0 {
		t.Errorf("empty input should give empty set, got %v", set)
	}
}

func TestHeavyHitters(t *testing.T) {
	h := v4ByteHierarchy()
	e := sketch.NewExact(0)
	e.Update(h.Key(addr.MustParseAddr("1.2.3.4"), 0), 100)
	e.Update(h.Key(addr.MustParseAddr("5.6.7.8"), 0), 10)
	set := HeavyHitters(e, h, 50)
	if set.Len() != 1 || !set.Contains(pfx("1.2.3.4/32")) {
		t.Fatalf("got %v", set)
	}
}

func TestPerLevelExactWhenUnsaturated(t *testing.T) {
	// With capacity >= distinct keys per level, Space-Saving is exact, so
	// the engine must reproduce the exact HHH set bit-for-bit.
	h := v4ByteHierarchy()
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 25; trial++ {
		counts := randomCounts(rng, 1+rng.Intn(40))
		eng := NewPerLevel(h, 1024)
		exact := sketch.NewExact(len(counts))
		var total int64
		for a, c := range counts {
			eng.Update(a, c)
			exact.Update(h.Key(a, 0), c)
			total += c
		}
		if eng.Total() != total {
			t.Fatalf("engine total %d != %d", eng.Total(), total)
		}
		for _, phi := range []float64{0.01, 0.05, 0.2} {
			T := Threshold(total, phi)
			got := eng.Query(T)
			want := Exact(exact, h, T)
			if !got.Equal(want) {
				t.Fatalf("trial %d phi=%v:\n got  %v\n want %v", trial, phi, got, want)
			}
		}
	}
}

func TestPerLevelExactWhenUnsaturatedIPv6(t *testing.T) {
	// The v6 mirror of the unsaturated equivalence, on the tall nibble
	// lattice.
	h := addr.NewIPv6Hierarchy(addr.Nibble)
	rng := rand.New(rand.NewSource(12))
	for trial := 0; trial < 15; trial++ {
		counts := randomCounts6(rng, 1+rng.Intn(40))
		eng := NewPerLevel(h, 1024)
		exact := sketch.NewExact(len(counts))
		var total int64
		for a, c := range counts {
			eng.Update(a, c)
			exact.Update(h.Key(a, 0), c)
			total += c
		}
		for _, phi := range []float64{0.01, 0.05, 0.2} {
			T := Threshold(total, phi)
			got := eng.Query(T)
			want := Exact(exact, h, T)
			if !got.Equal(want) {
				t.Fatalf("trial %d phi=%v:\n got  %v\n want %v", trial, phi, got, want)
			}
		}
		_ = total
	}
}

func TestEnginesFilterOtherFamily(t *testing.T) {
	// Feeding v6 packets to a v4 engine (and vice versa) must neither
	// count bytes nor produce reports.
	v4eng := NewPerLevel(v4ByteHierarchy(), 64)
	v4eng.Update(addr.MustParseAddr("2001:db8::1"), 1000)
	if v4eng.Total() != 0 || v4eng.Query(1).Len() != 0 {
		t.Error("v4 PerLevel accounted a v6 packet")
	}
	v6eng := NewRHHH(addr.NewIPv6Hierarchy(addr.Hextet), 64, 1)
	v6eng.Update(addr.MustParseAddr("10.0.0.1"), 1000)
	if v6eng.Total() != 0 || v6eng.Updates() != 0 {
		t.Error("v6 RHHH accounted a v4 packet")
	}
}

func TestPerLevelNeverMissesLargeHHH(t *testing.T) {
	// Even under heavy eviction pressure, a prefix carrying ~30% of
	// traffic must be reported at phi=0.1 (Space-Saving never
	// underestimates, so its subtree estimate stays above threshold).
	h := v4ByteHierarchy()
	eng := NewPerLevel(h, 16)
	rng := rand.New(rand.NewSource(13))
	heavy := addr.MustParseAddr("10.1.2.3")
	var total int64
	for i := 0; i < 50000; i++ {
		if i%3 == 0 {
			eng.Update(heavy, 1000)
			total += 1000
		} else {
			eng.Update(addr.From4Uint32(rng.Uint32()), 700)
			total += 700
		}
	}
	set := eng.QueryFraction(0.1)
	found := false
	for p := range set {
		if p.Contains(heavy) && p.Bits > 96 {
			found = true
		}
	}
	if !found {
		t.Fatalf("heavy source not covered by any reported HHH: %v", set)
	}
}

func TestPerLevelResetAndSize(t *testing.T) {
	h := v4ByteHierarchy()
	eng := NewPerLevel(h, 8)
	eng.Update(addr.MustParseAddr("1.2.3.4"), 100)
	eng.Reset()
	if eng.Total() != 0 || eng.Query(1).Len() != 0 {
		t.Error("Reset incomplete")
	}
	// Exact accounting: one summary per level, as the summary reports it.
	if want := 5 * sketch.NewSpaceSaving(8).SizeBytes(); eng.SizeBytes() != want {
		t.Errorf("SizeBytes = %d, want %d", eng.SizeBytes(), want)
	}
	if eng.Hierarchy().Levels() != 5 {
		t.Error("Hierarchy accessor")
	}
}

func TestRHHHFindsHeavyPrefixes(t *testing.T) {
	h := v4ByteHierarchy()
	eng := NewRHHH(h, 64, 99)
	rng := rand.New(rand.NewSource(17))
	// 40% of bytes from one /24, rest spread over the space.
	const subnet = uint32(0xc0a80700) // 192.168.7.0
	var total int64
	for i := 0; i < 300000; i++ {
		var a addr.Addr
		if rng.Intn(10) < 4 {
			a = addr.From4Uint32(subnet | uint32(rng.Intn(256)))
		} else {
			a = addr.From4Uint32(rng.Uint32())
		}
		eng.Update(a, 1000)
		total += 1000
	}
	if eng.Total() != total || eng.Updates() != 300000 {
		t.Fatal("bookkeeping wrong")
	}
	set := eng.QueryFraction(0.1)
	found := false
	for p := range set {
		if p.FamilyBits() >= 24 && p.Contains(addr.From4Uint32(subnet)) {
			found = true
		}
	}
	if !found {
		t.Fatalf("RHHH missed the 40%% /24: %v", set)
	}
}

func TestRHHHFindsHeavyPrefixesIPv6(t *testing.T) {
	// The IPv6 mirror on the 17-level nibble lattice — the tall-hierarchy
	// regime RHHH's constant-time update is designed for: 40% of bytes
	// from one /48, the rest spread across the global-unicast space.
	h := addr.NewIPv6Hierarchy(addr.Nibble)
	eng := NewRHHH(h, 64, 99)
	rng := rand.New(rand.NewSource(18))
	subnet := addr.MustParsePrefix("2001:db8:7::/48")
	for i := 0; i < 300000; i++ {
		var a addr.Addr
		if rng.Intn(10) < 4 {
			a = addr.FromParts(subnet.Addr.Hi()|uint64(rng.Intn(1<<16)), rng.Uint64())
		} else {
			a = addr.FromParts(0x2000_0000_0000_0000|rng.Uint64()>>3, rng.Uint64())
		}
		eng.Update(a, 1000)
	}
	set := eng.QueryFraction(0.1)
	found := false
	for p := range set {
		if p.Bits >= 48 && p.Covers(subnet) || subnet.Covers(p) {
			found = true
		}
	}
	if !found {
		t.Fatalf("RHHH missed the 40%% /48: %v", set)
	}
}

func TestRHHHEstimateAccuracy(t *testing.T) {
	h := v4ByteHierarchy()
	eng := NewRHHH(h, 256, 5)
	heavy := addr.MustParseAddr("10.0.0.1")
	var heavyBytes int64
	rng := rand.New(rand.NewSource(19))
	for i := 0; i < 500000; i++ {
		if i%2 == 0 {
			eng.Update(heavy, 500)
			heavyBytes += 500
		} else {
			eng.Update(addr.From4Uint32(rng.Uint32()), 500)
		}
	}
	set := eng.Query(Threshold(eng.Total(), 0.2))
	it, ok := set[pfx("10.0.0.1/32")]
	if !ok {
		t.Fatalf("heavy host missing from %v", set)
	}
	rel := float64(it.Count-heavyBytes) / float64(heavyBytes)
	if rel < -0.15 || rel > 0.15 {
		t.Errorf("estimate %d vs true %d (rel %.3f)", it.Count, heavyBytes, rel)
	}
}

func TestRHHHDeterministicUnderSeed(t *testing.T) {
	h := v4ByteHierarchy()
	run := func(seed uint64) Set {
		eng := NewRHHH(h, 32, seed)
		rng := rand.New(rand.NewSource(23))
		for i := 0; i < 20000; i++ {
			eng.Update(addr.From4Uint32(rng.Uint32()>>8), 100)
		}
		return eng.QueryFraction(0.05)
	}
	if !run(1).Equal(run(1)) {
		t.Error("same seed should reproduce identical output")
	}
}

func TestRHHHResetKeepsWorking(t *testing.T) {
	h := v4ByteHierarchy()
	eng := NewRHHH(h, 32, 1)
	eng.Update(addr.MustParseAddr("1.1.1.1"), 100)
	eng.Reset()
	if eng.Total() != 0 || eng.Updates() != 0 {
		t.Error("Reset bookkeeping")
	}
	eng.Update(addr.MustParseAddr("1.1.1.1"), 100)
	if eng.Total() != 100 {
		t.Error("post-Reset update")
	}
	if eng.SizeBytes() == 0 {
		t.Error("SizeBytes should be positive")
	}
	if eng.Hierarchy().Levels() != 5 {
		t.Error("Hierarchy accessor")
	}
}

func BenchmarkExactHHH(b *testing.B) {
	h := v4ByteHierarchy()
	rng := rand.New(rand.NewSource(3))
	e := sketch.NewExact(100000)
	for i := 0; i < 100000; i++ {
		e.Update(h.Key(addr.From4Uint32(rng.Uint32()&0x0fffffff), 0), int64(40+rng.Intn(1460)))
	}
	T := Threshold(e.Total(), 0.01)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		set := Exact(e, h, T)
		if set.Len() == 0 {
			b.Fatal("no HHHs")
		}
	}
}

func BenchmarkPerLevelUpdate(b *testing.B) {
	eng := NewPerLevel(v4ByteHierarchy(), 512)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		eng.Update(addr.From4Uint32(uint32(i)*2654435761), 1000)
	}
}

func BenchmarkPerLevelUpdateIPv6Nibble(b *testing.B) {
	eng := NewPerLevel(addr.NewIPv6Hierarchy(addr.Nibble), 512)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		eng.Update(addr.FromParts(uint64(i)*0x9e3779b97f4a7c15, uint64(i)), 1000)
	}
}

func BenchmarkRHHHUpdate(b *testing.B) {
	eng := NewRHHH(v4ByteHierarchy(), 512, 7)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		eng.Update(addr.From4Uint32(uint32(i)*2654435761), 1000)
	}
}

func BenchmarkRHHHUpdateIPv6Nibble(b *testing.B) {
	eng := NewRHHH(addr.NewIPv6Hierarchy(addr.Nibble), 512, 7)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		eng.Update(addr.FromParts(uint64(i)*0x9e3779b97f4a7c15, uint64(i)), 1000)
	}
}
