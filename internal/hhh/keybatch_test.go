package hhh

import (
	"math/rand"
	"testing"
	"time"

	"hiddenhhh/internal/addr"
	"hiddenhhh/internal/trace"
)

// dualStackStream synthesises a time-ordered mixed-family stream: skewed
// IPv4 sources interleaved with IPv6 sources, so the KeyBatch packing
// shim has to exercise its family filter in both directions.
func dualStackStream(seed int64, n int) []trace.Packet {
	rng := rand.New(rand.NewSource(seed))
	out := make([]trace.Packet, n)
	step := int64(10 * time.Second / time.Duration(n))
	for i := range out {
		var src addr.Addr
		if rng.Intn(3) == 0 {
			src = addr.FromParts(0x2001_0db8_0000_0000|uint64(rng.Intn(9))<<16|uint64(rng.Intn(5)), uint64(i))
		} else {
			src = addr.From4(10, byte(rng.Intn(5)), byte(rng.Intn(9)), byte(rng.Intn(50)))
		}
		out[i] = trace.Packet{Ts: int64(i) * step, Src: src, Size: uint32(40 + rng.Intn(1460))}
	}
	return out
}

// hierarchiesUnderTest returns one hierarchy per family so every
// equivalence case runs against both the low-half (IPv4) and high-half
// (IPv6) key packing.
func hierarchiesUnderTest() map[string]addr.Hierarchy {
	return map[string]addr.Hierarchy{
		"ipv4-byte":     addr.NewIPv4Hierarchy(addr.Byte),
		"ipv6-hextet":   addr.NewIPv6Hierarchy(addr.Hextet),
		"ipv6-nibble48": addr.NewIPv6HierarchyDepth(addr.Nibble, 48),
	}
}

// chunks splits pkts into deliberately awkward runs: single packets,
// primes straddling no particular boundary, and one giant batch.
var chunkSizes = []int{1, 7, 97, 1 << 20}

// TestPerLevelKeyBatchMatchesUpdate pins the columnar fast path to the
// per-packet path: UpdateBatch (the packing shim over UpdateKeys) must
// leave PerLevel in a byte-identical state to per-packet Update calls on
// the same dual-stack stream, for both families' key packings and any
// batch boundaries.
func TestPerLevelKeyBatchMatchesUpdate(t *testing.T) {
	pkts := dualStackStream(3, 20000)
	for name, h := range hierarchiesUnderTest() {
		t.Run(name, func(t *testing.T) {
			ref := NewPerLevel(h, 64)
			for i := range pkts {
				ref.Update(pkts[i].Src, int64(pkts[i].Size))
			}
			T := ref.Total() / 50
			want := ref.Query(T)
			for _, bs := range chunkSizes {
				got := NewPerLevel(h, 64)
				var added int64
				for off := 0; off < len(pkts); off += bs {
					end := min(off+bs, len(pkts))
					added += got.UpdateBatch(pkts[off:end])
				}
				if added != ref.Total() || got.Total() != ref.Total() {
					t.Fatalf("chunk %d: total %d (added %d) != per-packet %d", bs, got.Total(), added, ref.Total())
				}
				if !got.Query(T).Equal(want) {
					t.Fatalf("chunk %d: query diverged:\nbatch: %v\nref:   %v", bs, got.Query(T), want)
				}
			}
		})
	}
}

// TestRHHHKeyBatchMatchesUpdate is the same pin for the sampled engine,
// where equivalence is strictest: the level sampler must advance once per
// family-matching packet in stream order, so any filter or ordering skew
// between the two paths changes which sketch each packet lands in.
func TestRHHHKeyBatchMatchesUpdate(t *testing.T) {
	pkts := dualStackStream(5, 20000)
	for name, h := range hierarchiesUnderTest() {
		t.Run(name, func(t *testing.T) {
			ref := NewRHHH(h, 64, 99)
			for i := range pkts {
				ref.Update(pkts[i].Src, int64(pkts[i].Size))
			}
			T := ref.Total() / 50
			want := ref.Query(T)
			for _, bs := range chunkSizes {
				got := NewRHHH(h, 64, 99)
				for off := 0; off < len(pkts); off += bs {
					end := min(off+bs, len(pkts))
					got.UpdateBatch(pkts[off:end])
				}
				if got.Total() != ref.Total() || got.Updates() != ref.Updates() {
					t.Fatalf("chunk %d: total/updates %d/%d != per-packet %d/%d",
						bs, got.Total(), got.Updates(), ref.Total(), ref.Updates())
				}
				if !got.Query(T).Equal(want) {
					t.Fatalf("chunk %d: query diverged:\nbatch: %v\nref:   %v", bs, got.Query(T), want)
				}
			}
		})
	}
}

// TestKeyBatchPackingInvariants pins the producer-side packing contract
// the engine fast paths rely on: AppendPackets packs exactly the
// family-matching packets, the packed leaf key reproduces Hierarchy.Key,
// and masking the leaf key with each level's KeyMask equals packing at
// that level directly (masks nest).
func TestKeyBatchPackingInvariants(t *testing.T) {
	pkts := dualStackStream(7, 5000)
	for name, h := range hierarchiesUnderTest() {
		t.Run(name, func(t *testing.T) {
			b := trace.NewKeyBatch(64)
			packed := b.AppendPackets(h, pkts)
			matching := 0
			for i := range pkts {
				if h.Match(pkts[i].Src) {
					matching++
				}
			}
			if packed != matching || b.Len() != matching {
				t.Fatalf("packed %d (len %d), want %d matching", packed, b.Len(), matching)
			}
			j := 0
			for i := range pkts {
				if !h.Match(pkts[i].Src) {
					continue
				}
				if b.Keys[j] != h.Key(pkts[i].Src, 0) {
					t.Fatalf("key %d: %#x != Hierarchy.Key %#x", j, b.Keys[j], h.Key(pkts[i].Src, 0))
				}
				if b.Sizes[j] != pkts[i].Size || b.Ts[j] != pkts[i].Ts {
					t.Fatalf("column %d misaligned", j)
				}
				for l := 0; l < h.Levels(); l++ {
					if b.Keys[j]&h.KeyMask(l) != h.Key(pkts[i].Src, l) {
						t.Fatalf("level %d: masked leaf key %#x != direct key %#x",
							l, b.Keys[j]&h.KeyMask(l), h.Key(pkts[i].Src, l))
					}
				}
				j++
			}
		})
	}
}
