package hhh

import (
	"fmt"

	"hiddenhhh/internal/addr"
	"hiddenhhh/internal/sketch"
)

// LevelSummary returns level l's Space-Saving summary for serialization.
// The returned summary is the live one — callers must treat it as
// read-only.
func (p *PerLevel) LevelSummary(l int) *sketch.SpaceSaving { return p.sks[l] }

// RestorePerLevel rebuilds a PerLevel engine from serialized state: the
// hierarchy, the byte total, and one restored Space-Saving summary per
// hierarchy level (typically from sketch.RestoreSpaceSaving). It
// validates instead of panicking: the level count must match the
// hierarchy and every summary must be non-nil.
func RestorePerLevel(h addr.Hierarchy, total int64, sks []*sketch.SpaceSaving) (*PerLevel, error) {
	if len(sks) != h.Levels() {
		return nil, fmt.Errorf("hhh: restore: %d level summaries for %d-level hierarchy %v", len(sks), h.Levels(), h)
	}
	if total < 0 {
		return nil, fmt.Errorf("hhh: restore: negative total %d", total)
	}
	p := &PerLevel{
		h:     h,
		sks:   make([]*sketch.SpaceSaving, len(sks)),
		masks: make([]uint64, len(sks)),
		high:  h.KeyFromHigh(),
		qs:    NewQueryScratch(),
		total: total,
	}
	for l, s := range sks {
		if s == nil {
			return nil, fmt.Errorf("hhh: restore: nil summary at level %d", l)
		}
		p.sks[l] = s
		p.masks[l] = h.KeyMask(l)
	}
	return p, nil
}

// LevelSummary returns level l's Space-Saving summary for serialization.
// The returned summary is the live one — callers must treat it as
// read-only.
func (r *RHHH) LevelSummary(l int) *sketch.SpaceSaving { return r.sks[l] }

// Sampler returns the current splitmix64 sampler state, serialized so a
// restored engine that keeps ingesting draws the same level sequence
// the original would have.
func (r *RHHH) Sampler() uint64 { return r.rng }

// RestoreRHHH rebuilds an RHHH engine from serialized state: hierarchy,
// byte total, packet count, sampler state, and one restored
// Space-Saving summary per level. It validates instead of panicking.
func RestoreRHHH(h addr.Hierarchy, total, updates int64, sampler uint64, sks []*sketch.SpaceSaving) (*RHHH, error) {
	if len(sks) != h.Levels() {
		return nil, fmt.Errorf("hhh: restore: %d level summaries for %d-level hierarchy %v", len(sks), h.Levels(), h)
	}
	if total < 0 || updates < 0 {
		return nil, fmt.Errorf("hhh: restore: negative total %d or updates %d", total, updates)
	}
	r := &RHHH{
		h:       h,
		sks:     make([]*sketch.SpaceSaving, len(sks)),
		masks:   make([]uint64, len(sks)),
		high:    h.KeyFromHigh(),
		levels:  uint64(len(sks)),
		rng:     sampler,
		total:   total,
		updates: updates,
		qs:      NewQueryScratch(),
	}
	for l, s := range sks {
		if s == nil {
			return nil, fmt.Errorf("hhh: restore: nil summary at level %d", l)
		}
		r.sks[l] = s
		r.masks[l] = h.KeyMask(l)
	}
	return r, nil
}
