package hhh

import (
	"math/rand"
	"testing"

	"hiddenhhh/internal/addr"
)

// mergePackets synthesises a skewed source/weight stream for merge tests.
func mergePackets(seed int64, n int) []struct {
	src addr.Addr
	w   int64
} {
	rng := rand.New(rand.NewSource(seed))
	out := make([]struct {
		src addr.Addr
		w   int64
	}, n)
	for i := range out {
		org := uint32(rng.Intn(8))
		net := uint32(float64(200) * rng.Float64() * rng.Float64())
		host := uint32(rng.Intn(50))
		out[i].src = addr.From4Uint32(10<<24 | org<<16 | net<<8 | host)
		out[i].w = int64(40 + rng.Intn(1460))
	}
	return out
}

// TestPerLevelMergePartition checks that hash-partitioning a stream over K
// PerLevel engines and merging reproduces the single-engine HHH set up to
// the telescoped error bound: sets agree on every prefix whose estimate
// clears the threshold with margin, and disagreements sit within it.
func TestPerLevelMergePartition(t *testing.T) {
	const k = 128
	h := addr.NewIPv4Hierarchy(addr.Byte)
	pkts := mergePackets(1, 60000)
	for _, K := range []int{1, 2, 4, 8} {
		single := NewPerLevel(h, k)
		shards := make([]*PerLevel, K)
		for i := range shards {
			shards[i] = NewPerLevel(h, k)
		}
		for _, p := range pkts {
			single.Update(p.src, p.w)
			shards[p.src.V4()%uint32(K)].Update(p.src, p.w)
		}
		merged := NewPerLevel(h, k)
		for _, sh := range shards {
			merged.Merge(sh)
		}
		if merged.Total() != single.Total() {
			t.Fatalf("K=%d: merged total %d != single %d", K, merged.Total(), single.Total())
		}
		T := Threshold(single.Total(), 0.02)
		sset, mset := single.Query(T), merged.Query(T)
		// Both sides approximate the same exact semantics within N/k per
		// level; disagreements must be borderline prefixes.
		margin := 2 * single.Total() / int64(k)
		for _, d := range []struct {
			name string
			diff Set
			in   Set
		}{
			{"merged-only", mset.Diff(sset), mset},
			{"single-only", sset.Diff(mset), sset},
		} {
			for pre, it := range d.diff {
				if it.Conditioned-T > margin {
					t.Errorf("K=%d %s: %v cond=%d clears T=%d by more than margin %d",
						K, d.name, pre, it.Conditioned, T, margin)
				}
			}
		}
		if K == 1 && !sset.Equal(mset) {
			t.Errorf("K=1 merged set differs from single: %v vs %v", mset, sset)
		}
	}
}

// TestRHHHMergeIdentity checks that merging one RHHH engine into a fresh
// one preserves its queryable state exactly (the K=1 sharding case).
func TestRHHHMergeIdentity(t *testing.T) {
	const k = 96
	h := addr.NewIPv4Hierarchy(addr.Byte)
	a := NewRHHH(h, k, 42)
	ref := NewRHHH(h, k, 42)
	for _, p := range mergePackets(7, 80000) {
		a.Update(p.src, p.w)
		ref.Update(p.src, p.w)
	}
	merged := NewRHHH(h, k, 0)
	merged.Merge(a)
	if merged.Total() != ref.Total() || merged.Updates() != ref.Updates() {
		t.Fatalf("merged totals (%d,%d) != ref (%d,%d)",
			merged.Total(), merged.Updates(), ref.Total(), ref.Updates())
	}
	T := Threshold(ref.Total(), 0.02)
	if got, want := merged.Query(T), ref.Query(T); !got.Equal(want) {
		t.Fatalf("merged query %v != ref %v", got, want)
	}
}

// TestMergeHierarchyMismatchPanics pins the programmer-error contract.
func TestMergeHierarchyMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on hierarchy mismatch")
		}
	}()
	a := NewPerLevel(addr.NewIPv4Hierarchy(addr.Byte), 8)
	b := NewPerLevel(addr.NewIPv4Hierarchy(addr.Nibble), 8)
	a.Merge(b)
}
