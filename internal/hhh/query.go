package hhh

import (
	"hiddenhhh/internal/addr"
	"hiddenhhh/internal/sketch"
)

// QueryScratch holds the reusable working state of the bottom-up
// conditioned query: the discount table being consumed at the current
// level and the one being built for the parent level, keyed by the
// hierarchy's per-level uint64 keys. Engines keep one per instance so
// that a query performs no map allocation — the tables are cleared in
// place and swapped between levels.
type QueryScratch struct {
	cur, next map[uint64]int64
}

// NewQueryScratch returns an empty scratch ready for ConditionedLevels.
func NewQueryScratch() *QueryScratch {
	return &QueryScratch{
		cur:  make(map[uint64]int64, 64),
		next: make(map[uint64]int64, 64),
	}
}

// ConditionedLevels runs the bottom-up conditioned HHH pass shared by
// every per-level streaming engine (PerLevel, RHHH, the sliding-window
// wrapper). forEach must call emit once per candidate level-l key (see
// addr.Hierarchy.Key) with its (already scaled) subtree estimate;
// duplicates are the producer's responsibility. Claimed subtree volume
// propagates upward as a discount exactly as in the exact algorithm,
// including discounts whose prefix fell out of the parent level's
// summary. qs supplies the reusable discount tables, so the pass
// allocates only the returned Set.
func ConditionedLevels(h addr.Hierarchy, T int64, qs *QueryScratch, forEach func(l int, emit func(key uint64, est int64))) Set {
	levels := h.Levels()
	out := Set{}
	discount, next := qs.cur, qs.next
	clear(discount)
	// One emit closure for the whole pass; the per-level state it reads
	// is rebound each iteration, keeping the level loop allocation-light.
	var (
		parentMask uint64
		last       bool
		level      int
	)
	emit := func(key uint64, est int64) {
		d := discount[key]
		delete(discount, key)
		cond := est - d
		claimed := d
		if cond >= T {
			out.Add(Item{
				Prefix:      h.PrefixOfKey(key, level),
				Count:       est,
				Conditioned: cond,
			})
			claimed = est
		}
		if !last && claimed > 0 {
			next[key&parentMask] += claimed
		}
	}
	for l := 0; l < levels; l++ {
		last = l+1 >= levels
		if !last {
			parentMask = h.KeyMask(l + 1)
		}
		clear(next)
		level = l
		forEach(l, emit)
		// Discounts whose prefix fell out of this level's summary still
		// represent claimed mass and must keep propagating upward.
		if !last {
			for key, d := range discount {
				if d > 0 {
					next[key&parentMask] += d
				}
			}
		}
		discount, next = next, discount
	}
	qs.cur, qs.next = discount, next
	return out
}

// queryLevels runs the conditioned pass over per-level Space-Saving
// summaries, iterated in place. scale multiplies raw sketch counts (1
// for engines that update every level; V for RHHH's sampled levels).
func queryLevels(h addr.Hierarchy, sks []*sketch.SpaceSaving, scale int64, T int64, qs *QueryScratch) Set {
	var emitFn func(key uint64, est int64)
	inner := func(key uint64, count, _ int64) {
		emitFn(key, count*scale)
	}
	return ConditionedLevels(h, T, qs, func(l int, emit func(key uint64, est int64)) {
		emitFn = emit
		sks[l].ForEachTracked(inner)
	})
}
