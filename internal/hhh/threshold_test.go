package hhh

import (
	"fmt"
	"testing"
)

// TestThresholdBoundaries pins Threshold's exact rounding behaviour at
// φN boundary values: exact multiples, one byte either side, tiny and
// zero totals, φ at the domain edges, and the float64 artifacts of the
// product. The PR-3 rounding unification routed every detector through
// this one function, so these cases are the single source of truth for
// "does volume v qualify at fraction φ of N".
func TestThresholdBoundaries(t *testing.T) {
	cases := []struct {
		total int64
		phi   float64
		want  int64
	}{
		// Exact multiples (float-representable): T = φN.
		{1000, 0.05, 50},
		{1 << 20, 0.5, 1 << 19},
		{200, 0.25, 50},
		// Exact multiple whose float64 product lands just below the
		// integer: 0.29*100 = 28.999...6 truncates to 28. Documented
		// artifact of evaluating the product in float64.
		{100, 0.29, 28},
		// ...and ones landing at or just above the integer stay exact.
		{10, 0.3, 3},
		{100, 0.07, 7}, // 7.0000...08 → 7
		// Off by one byte around a multiple: truncation, not rounding.
		{999, 0.05, 49},  // 49.95
		{1001, 0.05, 50}, // 50.05
		{999, 0.1, 99},   // 99.9
		{1001, 0.1, 100}, // 100.1
		// Tiny N: the 1-byte floor dominates.
		{0, 0.05, 1},
		{1, 0.05, 1},
		{19, 0.05, 1}, // 0.95 → floor 0 → clamped to 1
		{20, 0.05, 1},
		{21, 0.05, 1}, // 1.05 → 1
		{39, 0.05, 1},
		{40, 0.05, 2},
		// phi = 1: the whole stream.
		{12345, 1, 12345},
		{0, 1, 1},
		// Huge N stays exact in float64 up to 2^53.
		{1 << 50, 0.5, 1 << 49},
	}
	for _, c := range cases {
		t.Run(fmt.Sprintf("N=%d/phi=%v", c.total, c.phi), func(t *testing.T) {
			if got := Threshold(c.total, c.phi); got != c.want {
				t.Fatalf("Threshold(%d, %v) = %d, want %d", c.total, c.phi, got, c.want)
			}
		})
	}
}

// TestThresholdDomain pins the panic contract at the φ domain edges:
// φ = 0 (no meaningful threshold), negative, and above 1 all panic —
// misconfiguration fails loudly instead of silently reporting everything
// or nothing.
func TestThresholdDomain(t *testing.T) {
	for _, phi := range []float64{0, -0.05, 1.0000001, 2} {
		phi := phi
		t.Run(fmt.Sprintf("phi=%v", phi), func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatalf("Threshold(1000, %v) did not panic", phi)
				}
			}()
			Threshold(1000, phi)
		})
	}
}

// TestThresholdQualification pins the consumer-side convention: a volume
// qualifies iff volume >= Threshold(N, phi), evaluated at one-byte
// granularity around the boundary.
func TestThresholdQualification(t *testing.T) {
	const total, phi = 1000, 0.05 // T = 50
	T := Threshold(total, phi)
	if T != 50 {
		t.Fatalf("T = %d, want 50", T)
	}
	for v, want := range map[int64]bool{49: false, 50: true, 51: true} {
		if got := v >= T; got != want {
			t.Errorf("volume %d qualifies=%v, want %v", v, got, want)
		}
	}
}
