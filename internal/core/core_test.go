package core

import (
	"strings"
	"testing"
	"time"

	"hiddenhhh/internal/addr"
	"hiddenhhh/internal/gen"
	"hiddenhhh/internal/trace"
)

// testTrace builds a small but realistic trace once per test binary.
func testTrace(t testing.TB, seconds int, seed int64) ([]trace.Packet, int64) {
	t.Helper()
	cfg := gen.DefaultConfig()
	cfg.Duration = time.Duration(seconds) * time.Second
	cfg.Seed = seed
	cfg.MeanPacketRate = 2000
	cfg.Flows = 600
	pkts, err := gen.Packets(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return pkts, int64(cfg.Duration)
}

// plantBurst injects a heavy burst from one source centred on `at`,
// sending `pps` packets/second of 1000 B for `dur`.
func plantBurst(pkts []trace.Packet, src addr.Addr, at, dur time.Duration, pps int) []trace.Packet {
	start := at - dur/2
	n := int(dur.Seconds() * float64(pps))
	burst := make([]trace.Packet, n)
	for i := range burst {
		burst[i] = trace.Packet{
			Ts:    int64(start) + int64(dur)*int64(i)/int64(n),
			Src:   src,
			Dst:   addr.MustParseAddr("198.51.100.1"),
			Proto: trace.ProtoUDP,
			Size:  1000,
		}
	}
	merged := append(append([]trace.Packet(nil), pkts...), burst...)
	trace.SortByTime(merged)
	return merged
}

func TestHiddenHHHBasicInvariants(t *testing.T) {
	pkts, span := testTrace(t, 30, 1)
	results, err := HiddenHHH(SliceProvider(pkts), HiddenHHHConfig{
		Windows: []time.Duration{5 * time.Second, 10 * time.Second},
		Phis:    []float64{0.01, 0.05, 0.10},
		Span:    span,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 6 {
		t.Fatalf("got %d results, want 6", len(results))
	}
	for _, r := range results {
		if r.DisjointDistinct > r.SlidingDistinct {
			t.Errorf("%v phi=%v: disjoint %d > sliding %d — D must be ⊆ S",
				r.Window, r.Phi, r.DisjointDistinct, r.SlidingDistinct)
		}
		if r.HiddenDistinct != r.SlidingDistinct-r.DisjointDistinct {
			t.Errorf("hidden count inconsistent: %+v", r)
		}
		if r.HiddenPct < 0 || r.HiddenPct > 100 {
			t.Errorf("hidden%% out of range: %v", r.HiddenPct)
		}
		if r.SlidingInstances < r.DisjointInstances {
			t.Errorf("instance counts inconsistent: %+v", r)
		}
		if r.HiddenSet.Len() != r.HiddenDistinct {
			t.Errorf("hidden set size mismatch")
		}
		if r.SlidingDistinct == 0 {
			t.Errorf("%v phi=%v: no HHHs at all — trace too thin", r.Window, r.Phi)
		}
	}
}

func TestHiddenHHHFindsPlantedBoundaryBurst(t *testing.T) {
	// A 2 s burst centred exactly on the 10 s window boundary splits
	// into ~1.1 MB halves: ~7% of each disjoint window's ~15 MB (below
	// the 10% threshold) but ~15% of the sliding window that contains
	// the whole burst. The burst source must therefore appear among the
	// hidden HHHs.
	pkts, span := testTrace(t, 30, 2)
	attacker := addr.MustParseAddr("66.77.88.99")
	pkts = plantBurst(pkts, attacker, 10*time.Second, 2*time.Second, 1100)

	results, err := HiddenHHH(SliceProvider(pkts), HiddenHHHConfig{
		Windows: []time.Duration{10 * time.Second},
		Phis:    []float64{0.10},
		Span:    span,
	})
	if err != nil {
		t.Fatal(err)
	}
	r := results[0]
	found := false
	for p := range r.HiddenSet {
		if p.Contains(attacker) {
			found = true
		}
	}
	if !found {
		t.Fatalf("planted boundary burst not among hidden HHHs; hidden=%v sliding=%d disjoint=%d",
			r.HiddenSet, r.SlidingDistinct, r.DisjointDistinct)
	}
}

func TestHiddenHHHStepMustDivideWindow(t *testing.T) {
	pkts, span := testTrace(t, 10, 3)
	_, err := HiddenHHH(SliceProvider(pkts), HiddenHHHConfig{
		Windows: []time.Duration{5 * time.Second},
		Step:    1500 * time.Millisecond,
		Span:    span,
	})
	if err == nil {
		t.Fatal("non-dividing step should fail")
	}
}

func TestRenderHiddenHHH(t *testing.T) {
	pkts, span := testTrace(t, 15, 4)
	results, err := HiddenHHH(SliceProvider(pkts), HiddenHHHConfig{
		Windows: []time.Duration{5 * time.Second},
		Phis:    []float64{0.05},
		Span:    span,
	})
	if err != nil {
		t.Fatal(err)
	}
	out := RenderHiddenHHH(results)
	if !strings.Contains(out, "hidden%") || !strings.Contains(out, "5s") {
		t.Errorf("render output missing fields:\n%s", out)
	}
}

func TestWindowSensitivityInvariants(t *testing.T) {
	pkts, span := testTrace(t, 60, 5)
	results, err := WindowSensitivity(SliceProvider(pkts), SensitivityConfig{
		Baseline: 10 * time.Second,
		Trims:    []time.Duration{10 * time.Millisecond, 40 * time.Millisecond, 100 * time.Millisecond},
		Phi:      0.05,
		Span:     span,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 3 {
		t.Fatalf("got %d results", len(results))
	}
	for i, r := range results {
		if r.Jaccard.N() != 6 { // 60 s / 10 s baseline windows
			t.Errorf("trim %v: %d samples, want 6", r.Trim, r.Jaccard.N())
		}
		if r.Jaccard.Min() < 0 || r.Jaccard.Max() > 1 {
			t.Errorf("trim %v: Jaccard outside [0,1]", r.Trim)
		}
		if i > 0 && results[i-1].Trim >= r.Trim {
			t.Error("results not ordered by trim")
		}
		df := r.DissimilarFraction(0.11)
		if df < 0 || df > 1 {
			t.Errorf("DissimilarFraction out of range: %v", df)
		}
	}
	// Larger trims cannot be *more* similar on average than a 10 ms trim
	// by a large margin; check weak monotonicity of means with slack.
	if results[2].Jaccard.Mean() > results[0].Jaccard.Mean()+0.05 {
		t.Errorf("100 ms trim (J=%.3f) much more similar than 10 ms (J=%.3f)",
			results[2].Jaccard.Mean(), results[0].Jaccard.Mean())
	}
}

func TestWindowSensitivityZeroEffectOnQuietTail(t *testing.T) {
	// If the trace has no packets in any window tail, every variant
	// equals the baseline and all Jaccards are exactly 1.
	var pkts []trace.Packet
	for w := 0; w < 3; w++ {
		base := int64(w) * int64(time.Second)
		for i := 0; i < 100; i++ {
			pkts = append(pkts, trace.Packet{
				Ts:   base + int64(i)*int64(time.Millisecond), // first 100 ms only
				Src:  addr.From4Uint32(0x0a000000 + uint32(i%7)),
				Size: 1000,
			})
		}
	}
	results, err := WindowSensitivity(SliceProvider(pkts), SensitivityConfig{
		Baseline: time.Second,
		Trims:    []time.Duration{50 * time.Millisecond},
		Phi:      0.05,
		Span:     int64(3 * time.Second),
	})
	if err != nil {
		t.Fatal(err)
	}
	if results[0].Jaccard.Min() != 1 {
		t.Errorf("quiet tails should give Jaccard 1, got min %v", results[0].Jaccard.Min())
	}
}

func TestWindowSensitivityEmptySpan(t *testing.T) {
	_, err := WindowSensitivity(SliceProvider(nil), SensitivityConfig{
		Baseline: 10 * time.Second,
		Span:     int64(time.Second), // shorter than baseline
	})
	if err == nil {
		t.Fatal("span shorter than baseline should fail")
	}
}

func TestRenderSensitivity(t *testing.T) {
	pkts, span := testTrace(t, 30, 6)
	results, err := WindowSensitivity(SliceProvider(pkts), SensitivityConfig{
		Baseline: 10 * time.Second,
		Trims:    []time.Duration{100 * time.Millisecond},
		Span:     span,
	})
	if err != nil {
		t.Fatal(err)
	}
	out := RenderSensitivity(results)
	if !strings.Contains(out, "100ms") || !strings.Contains(out, "frac") {
		t.Errorf("render missing fields:\n%s", out)
	}
}

func TestContinuousComparison(t *testing.T) {
	pkts, span := testTrace(t, 40, 7)
	attacker := addr.MustParseAddr("66.77.88.99")
	pkts = plantBurst(pkts, attacker, 20*time.Second, 2*time.Second, 1500)

	outcome, err := ContinuousComparison(SliceProvider(pkts), ComparisonConfig{
		Window: 10 * time.Second,
		Phi:    0.05,
		Span:   span,
		Seed:   1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if outcome.GroundTruth.Len() == 0 {
		t.Fatal("empty ground truth")
	}
	byName := map[string]DetectorReport{}
	for _, r := range outcome.Reports {
		byName[r.Name] = r
		if r.Recall < 0 || r.Recall > 1 || r.Precision < 0 || r.Precision > 1 {
			t.Errorf("%s: scores out of range: %+v", r.Name, r)
		}
		if r.Packets == 0 {
			t.Errorf("%s: zero packets", r.Name)
		}
		if r.StateBytes <= 0 {
			t.Errorf("%s: non-positive state", r.Name)
		}
	}
	for _, want := range []string{"sliding-exact", "disjoint-exact",
		"disjoint-perlevel", "disjoint-rhhh", "continuous-tdbf", "continuous-sampled"} {
		if _, ok := byName[want]; !ok {
			t.Errorf("missing detector %q", want)
		}
	}
	se := byName["sliding-exact"]
	if se.Recall != 1 || se.Precision != 1 {
		t.Errorf("sliding-exact should be perfect against itself: %+v", se)
	}
	de := byName["disjoint-exact"]
	if outcome.Hidden.Len() > 0 && de.HiddenRecall != 0 {
		t.Errorf("disjoint-exact hidden recall must be 0 by construction, got %v", de.HiddenRecall)
	}
	ct := byName["continuous-tdbf"]
	if outcome.Hidden.Len() > 0 && ct.HiddenRecall <= de.HiddenRecall {
		t.Errorf("continuous detector should recover hidden HHHs: %v vs %v",
			ct.HiddenRecall, de.HiddenRecall)
	}
	if ct.Recall < 0.5 {
		t.Errorf("continuous recall suspiciously low: %v", ct.Recall)
	}
	out := RenderComparison(outcome)
	if !strings.Contains(out, "continuous-tdbf") || !strings.Contains(out, "hidden") {
		t.Errorf("render missing fields:\n%s", out)
	}
}

func TestProviders(t *testing.T) {
	pkts, _ := testTrace(t, 5, 8)
	p := SliceProvider(pkts)
	a, err := p()
	if err != nil {
		t.Fatal(err)
	}
	got, err := trace.Collect(a, 0)
	if err != nil || len(got) != len(pkts) {
		t.Fatalf("slice provider: %v, %d packets", err, len(got))
	}

	path := t.TempDir() + "/t.hhht"
	if err := trace.WriteFile(path, pkts); err != nil {
		t.Fatal(err)
	}
	fp := FileProvider(path)
	b, err := fp()
	if err != nil {
		t.Fatal(err)
	}
	got2, err := trace.Collect(b, 0)
	if err != nil || len(got2) != len(pkts) {
		t.Fatalf("file provider: %v, %d packets", err, len(got2))
	}
}
