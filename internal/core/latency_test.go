package core

import (
	"strings"
	"testing"
	"time"
)

func TestDetectionLatency(t *testing.T) {
	pkts, span := testTrace(t, 60, 21)
	reports, bursts, err := DetectionLatency(SliceProvider(pkts), LatencyConfig{
		Window:        10 * time.Second,
		Phi:           0.05,
		Span:          span,
		Bursts:        8,
		BurstDuration: 3 * time.Second,
		BurstShare:    0.6,
		BasePPS:       2000,
		Seed:          3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(bursts) != 8 {
		t.Fatalf("planted %d bursts", len(bursts))
	}
	for _, b := range bursts {
		if b.Start < 0 || b.End > span {
			t.Fatalf("burst outside span: %+v", b)
		}
		if b.Src.As4()[0] != 240 {
			t.Fatalf("burst source %v not in reserved space", b.Src)
		}
	}
	byName := map[string]LatencyReport{}
	for _, r := range reports {
		byName[r.Name] = r
		if r.Detected+r.Missed != len(bursts) {
			t.Errorf("%s: detected %d + missed %d != %d bursts",
				r.Name, r.Detected, r.Missed, len(bursts))
		}
		if r.Latency.N() != r.Detected {
			t.Errorf("%s: %d latency samples for %d detections",
				r.Name, r.Latency.N(), r.Detected)
		}
		for _, s := range r.Latency.Samples() {
			if s < 0 {
				t.Errorf("%s: negative latency %v", r.Name, s)
			}
		}
	}
	for _, want := range []string{"disjoint", "sliding", "continuous"} {
		if _, ok := byName[want]; !ok {
			t.Fatalf("missing report %q", want)
		}
	}
	// Strong bursts (60% of base rate for 3 s at phi=5%) must be seen by
	// the windowless detectors essentially always.
	if byName["continuous"].Detected < len(bursts)*3/4 {
		t.Errorf("continuous detected only %d/%d strong bursts",
			byName["continuous"].Detected, len(bursts))
	}
	if byName["sliding"].Detected < len(bursts)*3/4 {
		t.Errorf("sliding detected only %d/%d strong bursts",
			byName["sliding"].Detected, len(bursts))
	}
	// Continuous detection is event-driven and must not be slower on
	// median than the disjoint model, whose reports wait for the window
	// boundary (expected ~W/2 later than burst start on average).
	cont := byName["continuous"]
	disj := byName["disjoint"]
	if disj.Detected > 0 && cont.Detected > 0 {
		if cont.Latency.Quantile(0.5) > disj.Latency.Quantile(0.5)+0.5 {
			t.Errorf("continuous median latency %.2fs slower than disjoint %.2fs",
				cont.Latency.Quantile(0.5), disj.Latency.Quantile(0.5))
		}
	}
	out := RenderLatency(reports, len(bursts))
	if !strings.Contains(out, "continuous") || !strings.Contains(out, "median") {
		t.Errorf("render missing fields:\n%s", out)
	}
}

func TestDetectionLatencyDefaults(t *testing.T) {
	pkts, span := testTrace(t, 30, 22)
	reports, bursts, err := DetectionLatency(SliceProvider(pkts), LatencyConfig{Span: span})
	if err != nil {
		t.Fatal(err)
	}
	if len(bursts) != 20 || len(reports) != 3 {
		t.Fatalf("defaults: %d bursts, %d reports", len(bursts), len(reports))
	}
}
