package core

import (
	"fmt"
	"time"

	"hiddenhhh/internal/addr"
	"hiddenhhh/internal/continuous"
	"hiddenhhh/internal/hhh"
	"hiddenhhh/internal/metrics"
	"hiddenhhh/internal/sketch"
	"hiddenhhh/internal/tdbf"
	"hiddenhhh/internal/trace"
	"hiddenhhh/internal/window"
)

// ComparisonConfig parameterises the Section-3 evaluation: how well do
// windowed detectors and the proposed time-decaying continuous detector
// recover the HHHs a sliding window (the information-richest model)
// reveals — including the hidden ones — and at what performance and
// memory cost.
type ComparisonConfig struct {
	// Window is the disjoint window length and the sliding ground-truth
	// length. Default 10 s.
	Window time.Duration
	// Tau is the continuous detector's decay horizon. Defaults to
	// Window, the natural like-for-like setting; the E4c ablation sweeps
	// it independently.
	Tau time.Duration
	// Step is the sliding step defining ground truth. Default 1 s.
	Step time.Duration
	// Phi is the threshold fraction. Default 0.05.
	Phi float64
	// Span is the analysed trace duration.
	Span int64
	// Hierarchy is the prefix lattice the analysis runs over. Defaults
	// to the IPv4 byte ladder.
	Hierarchy addr.Hierarchy
	// Counters per level for the sketch engines (PerLevel, RHHH).
	// Default 512.
	Counters int
	// TDBFCells/TDBFHashes size the continuous detector's per-level
	// filters. Defaults 1<<16 and 4.
	TDBFCells  int
	TDBFHashes int
	// Seed drives the randomised detectors.
	Seed uint64
}

func (c *ComparisonConfig) setDefaults() {
	if c.Window == 0 {
		c.Window = 10 * time.Second
	}
	if c.Tau == 0 {
		c.Tau = c.Window
	}
	if c.Step == 0 {
		c.Step = time.Second
	}
	if c.Phi == 0 {
		c.Phi = 0.05
	}
	if c.Hierarchy == (addr.Hierarchy{}) {
		c.Hierarchy = addr.NewIPv4Hierarchy(addr.Byte)
	}
	if c.Counters == 0 {
		c.Counters = 512
	}
	if c.TDBFCells == 0 {
		c.TDBFCells = 1 << 16
	}
	if c.TDBFHashes == 0 {
		c.TDBFHashes = 4
	}
}

// DetectorReport scores one detector over the whole trace.
type DetectorReport struct {
	Name string
	// Reported is the number of distinct HHH prefixes the detector
	// produced across the trace.
	Reported int
	// Recall is the fraction of the sliding-window ground-truth set the
	// detector found; HiddenRecall restricts that to the hidden HHHs
	// (those no disjoint window reports) — the paper's motivating
	// information loss.
	Recall       float64
	HiddenRecall float64
	// Precision is the fraction of the detector's reports that are in
	// the ground-truth set.
	Precision float64
	// NsPerPacket is the measured per-packet processing cost of the
	// detector's pass, and StateBytes its steady-state memory footprint.
	NsPerPacket float64
	StateBytes  int
	Packets     int64
}

// ComparisonOutcome bundles the ground truth and every detector's report.
type ComparisonOutcome struct {
	GroundTruth   hhh.Set // sliding-window union S
	DisjointTruth hhh.Set // disjoint union D (exact per window)
	Hidden        hhh.Set // S − D
	Reports       []DetectorReport
}

// Score scores a detector's distinct reported prefixes against the
// ground-truth set and its hidden subset — the scoring rule every
// comparison table shares (the Section-3 evaluation here and the
// oracle-differential accuracy report in cmd/hhheval). The performance
// fields (NsPerPacket, StateBytes, Packets) are left for the caller.
func Score(name string, reported, truth, hidden hhh.Set) DetectorReport {
	inTruth := reported.Intersect(truth).Len()
	inHidden := reported.Intersect(hidden).Len()
	return DetectorReport{
		Name:         name,
		Reported:     reported.Len(),
		Recall:       ratio(float64(inTruth), float64(truth.Len())),
		HiddenRecall: ratio(float64(inHidden), float64(hidden.Len())),
		Precision:    ratio(float64(inTruth), float64(reported.Len())),
	}
}

// ContinuousComparison runs the Section-3 evaluation. Ground truth is the
// union of exact HHH sets over sliding positions; each detector is then
// driven over an identical replay of the trace and scored on the distinct
// prefixes it ever reported.
func ContinuousComparison(provider Provider, cfg ComparisonConfig) (*ComparisonOutcome, error) {
	cfg.setDefaults()
	out := &ComparisonOutcome{}

	// Pass 1: exact sliding ground truth, disjoint exact union, and the
	// sliding-exact reference row (timed).
	src, err := provider()
	if err != nil {
		return nil, err
	}
	sliding := hhh.NewSet()
	disjoint := hhh.NewSet()
	peakLeaves := 0
	start := time.Now()
	err = window.Slide(src, window.Config{
		Width: cfg.Window, Step: cfg.Step, End: cfg.Span,
	}, func(r *window.Result) error {
		set := hhh.Exact(r.Leaves, cfg.Hierarchy, hhh.Threshold(r.Bytes, cfg.Phi))
		sliding.UnionInPlace(set)
		if r.Start%int64(cfg.Window) == 0 {
			disjoint.UnionInPlace(set)
		}
		if r.Leaves.Len() > peakLeaves {
			peakLeaves = r.Leaves.Len()
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	elapsed := time.Since(start)
	out.GroundTruth = sliding
	out.DisjointTruth = disjoint
	out.Hidden = sliding.Diff(disjoint)

	// Recount packets in span for per-packet costs.
	src, err = provider()
	if err != nil {
		return nil, err
	}
	var pkts int64
	if err := trace.ForEach(src, func(p *trace.Packet) error {
		if p.Ts >= 0 && p.Ts < cfg.Span {
			pkts++
		}
		return nil
	}); err != nil {
		return nil, err
	}

	score := func(name string, reported hhh.Set, nsPerPkt float64, stateBytes int) DetectorReport {
		r := Score(name, reported, out.GroundTruth, out.Hidden)
		r.NsPerPacket = nsPerPkt
		r.StateBytes = stateBytes
		r.Packets = pkts
		return r
	}
	nsPerPkt := func(d time.Duration) float64 {
		if pkts == 0 {
			return 0
		}
		return float64(d.Nanoseconds()) / float64(pkts)
	}

	out.Reports = append(out.Reports,
		score("sliding-exact", sliding, nsPerPkt(elapsed), peakLeaves*16))

	// Windowed streaming detectors: reset-per-window discipline, driven
	// through the batch ingest spine.
	type windowedEngine struct {
		name        string
		updateBatch func(pkts []trace.Packet) int64
		close       func(windowBytes int64) hhh.Set
		reset       func()
		size        func() int
	}
	mkWindowed := func(we windowedEngine) error {
		src, err := provider()
		if err != nil {
			return err
		}
		reported := hhh.NewSet()
		start := time.Now()
		err = window.TumbleBatches(src,
			window.Config{Width: cfg.Window, End: cfg.Span}, 0,
			we.updateBatch,
			func(s window.Span) error {
				reported.UnionInPlace(we.close(s.Bytes))
				we.reset()
				return nil
			})
		if err != nil {
			return err
		}
		out.Reports = append(out.Reports,
			score(we.name, reported, nsPerPkt(time.Since(start)), we.size()))
		return nil
	}

	// disjoint-exact: per-window exact computation over a leaf map.
	leaves := sketch.NewExact(4096)
	peak := 0
	if err := mkWindowed(windowedEngine{
		name: "disjoint-exact",
		updateBatch: func(pkts []trace.Packet) int64 {
			var bytes int64
			for i := range pkts {
				if !cfg.Hierarchy.Match(pkts[i].Src) {
					continue
				}
				w := int64(pkts[i].Size)
				bytes += w
				leaves.Update(cfg.Hierarchy.Key(pkts[i].Src, 0), w)
			}
			return bytes
		},
		close: func(windowBytes int64) hhh.Set {
			if leaves.Len() > peak {
				peak = leaves.Len()
			}
			return hhh.Exact(leaves, cfg.Hierarchy, hhh.Threshold(windowBytes, cfg.Phi))
		},
		reset: leaves.Reset,
		size:  func() int { return peak * 16 },
	}); err != nil {
		return nil, err
	}

	// disjoint-perlevel: Space-Saving per level, reset per window.
	pl := hhh.NewPerLevel(cfg.Hierarchy, cfg.Counters)
	if err := mkWindowed(windowedEngine{
		name:        "disjoint-perlevel",
		updateBatch: pl.UpdateBatch,
		close: func(windowBytes int64) hhh.Set {
			return pl.Query(hhh.Threshold(windowBytes, cfg.Phi))
		},
		reset: pl.Reset,
		size:  pl.SizeBytes,
	}); err != nil {
		return nil, err
	}

	// disjoint-rhhh: randomised level sampling, reset per window.
	rh := hhh.NewRHHH(cfg.Hierarchy, cfg.Counters, cfg.Seed)
	if err := mkWindowed(windowedEngine{
		name:        "disjoint-rhhh",
		updateBatch: rh.UpdateBatch,
		close: func(windowBytes int64) hhh.Set {
			return rh.Query(hhh.Threshold(windowBytes, cfg.Phi))
		},
		reset: rh.Reset,
		size:  rh.SizeBytes,
	}); err != nil {
		return nil, err
	}

	// Continuous detectors: TDBF per level, enter events define reports.
	runContinuous := func(name string, sampled bool) error {
		reported := hhh.NewSet()
		det, err := continuous.NewDetector(continuous.Config{
			Hierarchy: cfg.Hierarchy,
			Phi:       cfg.Phi,
			Filter: tdbf.Config{
				Cells:  cfg.TDBFCells,
				Hashes: cfg.TDBFHashes,
				Decay:  tdbf.Exponential{Tau: cfg.Tau},
			},
			Sampled: sampled,
			Seed:    cfg.Seed,
			OnEnter: func(p addr.Prefix, at int64) {
				reported.Add(hhh.Item{Prefix: p})
			},
		})
		if err != nil {
			return err
		}
		src, err := provider()
		if err != nil {
			return err
		}
		start := time.Now()
		// Clip to the analysis span and feed the detector in batches.
		clipped := &trace.ClipSource{Src: src, From: 0, To: cfg.Span}
		err = trace.ForEachBatch(clipped, 0, func(pkts []trace.Packet) error {
			det.ObserveBatch(pkts)
			return nil
		})
		if err != nil {
			return err
		}
		out.Reports = append(out.Reports,
			score(name, reported, nsPerPkt(time.Since(start)), det.SizeBytes()))
		return nil
	}
	if err := runContinuous("continuous-tdbf", false); err != nil {
		return nil, err
	}
	if err := runContinuous("continuous-sampled", true); err != nil {
		return nil, err
	}

	return out, nil
}

// RenderComparison formats the outcome as the Section-3 table.
func RenderComparison(o *ComparisonOutcome) string {
	t := metrics.NewTable("detector", "reported", "recall", "hidden-recall",
		"precision", "ns/pkt", "state-KiB")
	for _, r := range o.Reports {
		t.AddRow(r.Name, r.Reported, r.Recall, r.HiddenRecall, r.Precision,
			fmt.Sprintf("%.0f", r.NsPerPacket), fmt.Sprintf("%.0f", float64(r.StateBytes)/1024))
	}
	return fmt.Sprintf("ground truth: %d sliding HHHs, %d disjoint, %d hidden\n\n%s",
		o.GroundTruth.Len(), o.DisjointTruth.Len(), o.Hidden.Len(), t.String())
}
