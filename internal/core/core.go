// Package core implements the paper's analyses — the experiments behind
// Figure 2 (hidden hierarchical heavy hitters under disjoint windows),
// Figure 3 (sensitivity of HHH reports to micro variations in window
// size), and the Section-3 evaluation of time-decaying continuous
// detection against windowed approaches.
//
// Each experiment consumes a reproducible packet source (usually the
// synthetic Tier-1 generator standing in for the paper's CAIDA traces),
// drives the window engines and detectors from the other packages, and
// returns structured results that the cmd/ binaries and bench harness
// render as the corresponding table or figure series.
package core

import (
	"hiddenhhh/internal/trace"
)

// Provider produces a fresh, identical packet source per call. Experiments
// that make several passes over the trace (one per window size, one per
// detector) call it repeatedly; providers backed by the seeded generator
// or by a trace file satisfy the "identical" requirement naturally.
type Provider func() (trace.Source, error)

// SliceProvider adapts an in-memory trace to a Provider.
func SliceProvider(pkts []trace.Packet) Provider {
	return func() (trace.Source, error) {
		return trace.NewSliceSource(pkts), nil
	}
}

// FileProvider reopens the binary trace at path per pass.
func FileProvider(path string) Provider {
	return func() (trace.Source, error) {
		src, closer, err := trace.OpenFile(path)
		if err != nil {
			return nil, err
		}
		// The experiments drain sources fully; closing on EOF via a
		// wrapper keeps the Provider interface minimal.
		return &closingSource{Source: src, c: closer}, nil
	}
}

type closingSource struct {
	trace.Source
	c interface{ Close() error }
}

func (s *closingSource) Next(p *trace.Packet) error {
	err := s.Source.Next(p)
	if err != nil && s.c != nil {
		s.c.Close()
		s.c = nil
	}
	return err
}

// pct renders a fraction as a percentage value.
func pct(num, den int) float64 {
	if den == 0 {
		return 0
	}
	return 100 * float64(num) / float64(den)
}

// ratio guards division by zero.
func ratio(num, den float64) float64 {
	if den == 0 {
		return 0
	}
	return num / den
}
