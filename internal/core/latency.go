package core

import (
	"fmt"
	"math/rand"
	"time"

	"hiddenhhh/internal/addr"
	"hiddenhhh/internal/continuous"
	"hiddenhhh/internal/hhh"
	"hiddenhhh/internal/metrics"
	"hiddenhhh/internal/swhh"
	"hiddenhhh/internal/tdbf"
	"hiddenhhh/internal/trace"
)

// LatencyConfig parameterises the detection-latency experiment (E5), the
// operational question behind the paper's DDoS motivation: once an attack
// burst starts, how long until each window model reports its source? The
// experiment plants identical bursts at seeded random phases relative to
// the window grid and measures time-to-detection per model; bursts that
// are never reported count as misses.
type LatencyConfig struct {
	// Window is the disjoint/sliding window length and continuous decay
	// horizon. Default 10 s.
	Window time.Duration
	// Phi is the threshold fraction. Default 0.05.
	Phi float64
	// Span is the trace duration.
	Span int64
	// Bursts is the number of planted bursts. Default 20.
	Bursts int
	// BurstDuration is each burst's length. Default 3 s.
	BurstDuration time.Duration
	// BurstShare is the burst's packet rate as a fraction of the base
	// aggregate rate. Default 0.4 (well above a 5% byte threshold).
	BurstShare float64
	// BasePPS is the base traffic's aggregate packet rate, used to size
	// bursts. Default 5000.
	BasePPS float64
	// Seed drives burst placement.
	Seed int64
	// Hierarchy is the prefix lattice the analysis runs over. Defaults
	// to the IPv4 byte ladder.
	Hierarchy addr.Hierarchy
}

func (c *LatencyConfig) setDefaults() {
	if c.Window == 0 {
		c.Window = 10 * time.Second
	}
	if c.Phi == 0 {
		c.Phi = 0.05
	}
	if c.Bursts == 0 {
		c.Bursts = 20
	}
	if c.BurstDuration == 0 {
		c.BurstDuration = 3 * time.Second
	}
	if c.BurstShare == 0 {
		c.BurstShare = 0.4
	}
	if c.BasePPS == 0 {
		c.BasePPS = 5000
	}
	if c.Hierarchy == (addr.Hierarchy{}) {
		c.Hierarchy = addr.NewIPv4Hierarchy(addr.Byte)
	}
}

// LatencyReport summarises one detector's time-to-detection.
type LatencyReport struct {
	Name     string
	Detected int
	Missed   int
	// Latency holds seconds from burst start to first report, one sample
	// per detected burst.
	Latency *metrics.Dist
}

// Burst describes one planted attack burst.
type Burst struct {
	// Src is the burst's planted source address.
	Src addr.Addr
	// Start and End bound the burst in trace time (ns).
	Start int64
	End   int64
}

// DetectionLatency plants cfg.Bursts attack bursts into the provided base
// trace at uniformly random phases and measures, for the disjoint,
// sliding(1 s query cadence) and continuous models, the delay from burst
// start to the first report covering the burst source.
func DetectionLatency(provider Provider, cfg LatencyConfig) ([]LatencyReport, []Burst, error) {
	cfg.setDefaults()
	base, err := provider()
	if err != nil {
		return nil, nil, err
	}
	basePkts, err := trace.Collect(base, 0)
	if err != nil {
		return nil, nil, err
	}

	// Plant bursts: distinct sources, random phases, margin from ends.
	// Starts are confined to [Window, Span-BurstDuration) so that every
	// detector is past its startup transient (the continuous detector
	// warms up for one decay horizon) — the comparison then measures
	// steady-state reaction time only.
	rng := rand.New(rand.NewSource(cfg.Seed + 7))
	minStart := int64(cfg.Window)
	maxStart := cfg.Span - int64(cfg.BurstDuration)
	if maxStart <= minStart {
		return nil, nil, fmt.Errorf("core: span %v too short for bursts after warmup",
			time.Duration(cfg.Span))
	}
	bursts := make([]Burst, cfg.Bursts)
	var burstPkts []trace.Packet
	pps := cfg.BasePPS * cfg.BurstShare
	for i := range bursts {
		src := addr.From4(240, byte(i>>8), byte(i), 1) // reserved space: never collides with base
		start := minStart + rng.Int63n(maxStart-minStart)
		bursts[i] = Burst{Src: src, Start: start, End: start + int64(cfg.BurstDuration)}
		n := int(cfg.BurstDuration.Seconds() * pps)
		for j := 0; j < n; j++ {
			burstPkts = append(burstPkts, trace.Packet{
				Ts:    start + int64(cfg.BurstDuration)*int64(j)/int64(n),
				Src:   src,
				Proto: trace.ProtoUDP,
				Size:  1000,
			})
		}
	}
	pkts := append(append([]trace.Packet(nil), basePkts...), burstPkts...)
	trace.SortByTime(pkts)

	// firstDetection[src] per detector.
	type tracker struct {
		name  string
		first map[addr.Addr]int64
	}
	newTracker := func(name string) *tracker {
		return &tracker{name: name, first: make(map[addr.Addr]int64, cfg.Bursts)}
	}
	leafBits := cfg.Hierarchy.Bits(0)
	record := func(t *tracker, set hhh.Set, at int64) {
		for p := range set {
			for i := range bursts {
				if p.Contains(bursts[i].Src) && p.Bits == leafBits {
					if _, ok := t.first[bursts[i].Src]; !ok {
						t.first[bursts[i].Src] = at
					}
				}
			}
		}
	}

	// Disjoint windows: reports materialise at window close.
	disj := newTracker("disjoint")
	{
		leaves := make(map[uint64]int64, 4096)
		var bytes int64
		curEnd := int64(cfg.Window)
		flush := func() {
			e := hhh.NewSet()
			T := hhh.Threshold(bytes, cfg.Phi)
			agg := sketchFromMap(leaves)
			e = hhh.Exact(agg, cfg.Hierarchy, T)
			record(disj, e, curEnd)
			for k := range leaves {
				delete(leaves, k)
			}
			bytes = 0
			curEnd += int64(cfg.Window)
		}
		for i := range pkts {
			for pkts[i].Ts >= curEnd {
				flush()
			}
			if !cfg.Hierarchy.Match(pkts[i].Src) {
				continue
			}
			leaves[cfg.Hierarchy.Key(pkts[i].Src, 0)] += int64(pkts[i].Size)
			bytes += int64(pkts[i].Size)
		}
		flush()
	}

	// Sliding windows: queried every second.
	slid := newTracker("sliding")
	{
		d, err := swhh.NewSlidingHHH(cfg.Hierarchy, swhh.Config{
			Window: cfg.Window, Frames: 10, Counters: 512,
		})
		if err != nil {
			return nil, nil, err
		}
		// Batch-ingest between query instants: each run covers the packets
		// before the next query cadence tick plus the packet that crosses
		// it, matching the per-packet ordering (the crossing packet was
		// always ingested before the query fired).
		nextQ := int64(time.Second)
		for i := 0; i < len(pkts); {
			j := i
			for j < len(pkts) && pkts[j].Ts < nextQ {
				j++
			}
			if j < len(pkts) {
				j++
			}
			d.UpdateBatch(pkts[i:j])
			for last := pkts[j-1].Ts; last >= nextQ; {
				record(slid, d.Query(cfg.Phi, nextQ), nextQ)
				nextQ += int64(time.Second)
			}
			i = j
		}
	}

	// Continuous: enter events give exact detection instants.
	cont := newTracker("continuous")
	{
		det, err := continuous.NewDetector(continuous.Config{
			Hierarchy: cfg.Hierarchy,
			Phi:       cfg.Phi,
			Filter: tdbf.Config{
				Decay: tdbf.Exponential{Tau: cfg.Window},
			},
			OnEnter: func(p addr.Prefix, at int64) {
				record(cont, hhh.NewSet(hhh.Item{Prefix: p}), at)
			},
		})
		if err != nil {
			return nil, nil, err
		}
		det.ObserveBatch(pkts)
	}

	var reports []LatencyReport
	for _, t := range []*tracker{disj, slid, cont} {
		rep := LatencyReport{Name: t.name, Latency: &metrics.Dist{}}
		for i := range bursts {
			at, ok := t.first[bursts[i].Src]
			if !ok || at < bursts[i].Start {
				rep.Missed++
				continue
			}
			rep.Detected++
			rep.Latency.Observe(float64(at-bursts[i].Start) / 1e9)
		}
		reports = append(reports, rep)
	}
	return reports, bursts, nil
}

// sketchFromMap adapts a plain leaf-key map into the LeafCounter surface
// the HHH routines consume.
func sketchFromMap(m map[uint64]int64) *exactAdapter {
	return &exactAdapter{m: m}
}

// exactAdapter satisfies the minimal surface hhh.Exact needs (ForEach and
// Len) without copying the window map.
type exactAdapter struct{ m map[uint64]int64 }

// Len implements hhh.LeafCounter.
func (a *exactAdapter) Len() int { return len(a.m) }

// ForEach implements hhh.LeafCounter.
func (a *exactAdapter) ForEach(fn func(key uint64, count int64)) {
	for k, v := range a.m {
		fn(k, v)
	}
}

// RenderLatency formats the E5 table.
func RenderLatency(reports []LatencyReport, bursts int) string {
	t := metrics.NewTable("detector", "detected", "missed", "median-s", "p90-s", "max-s")
	for _, r := range reports {
		t.AddRow(r.Name, r.Detected, r.Missed,
			r.Latency.Quantile(0.5), r.Latency.Quantile(0.9), r.Latency.Max())
	}
	return fmt.Sprintf("planted bursts: %d\n\n%s", bursts, t.String())
}
