package core

import (
	"fmt"
	"time"

	"hiddenhhh/internal/addr"
	"hiddenhhh/internal/hhh"
	"hiddenhhh/internal/metrics"
	"hiddenhhh/internal/window"
)

// HiddenHHHConfig parameterises the Figure-2 experiment: disjoint windows
// of each configured size are compared against a sliding window of the
// same size advancing by Step, at each threshold fraction.
type HiddenHHHConfig struct {
	// Windows are the window lengths to evaluate (the paper uses 5, 10
	// and 20 s).
	Windows []time.Duration
	// Step is the sliding-window advance (the paper uses 1 s). Must
	// divide every window length.
	Step time.Duration
	// Phis are the HHH threshold fractions of per-window byte volume (the
	// paper uses 1%, 5% and 10%).
	Phis []float64
	// Span is the analysed trace duration (ns since epoch 0).
	Span int64
	// Hierarchy is the prefix lattice the analysis runs over. Defaults
	// to the IPv4 byte ladder.
	Hierarchy addr.Hierarchy
	// Key and Weight default to source address and bytes.
	Key    window.KeyFunc
	Weight window.WeightFunc
}

func (c *HiddenHHHConfig) setDefaults() {
	if c.Hierarchy == (addr.Hierarchy{}) {
		c.Hierarchy = addr.NewIPv4Hierarchy(addr.Byte)
	}
	if c.Step == 0 {
		c.Step = time.Second
	}
	if len(c.Windows) == 0 {
		c.Windows = []time.Duration{5 * time.Second, 10 * time.Second, 20 * time.Second}
	}
	if len(c.Phis) == 0 {
		c.Phis = []float64{0.01, 0.05, 0.10}
	}
	if c.Key == nil {
		c.Key = window.BySource(c.Hierarchy)
	}
}

// HiddenHHHResult is one (window size, threshold) cell of Figure 2.
type HiddenHHHResult struct {
	Window time.Duration
	Phi    float64

	// Distinct-prefix accounting over the whole trace: S is everything
	// the sliding window reports, D what disjoint windows report. With
	// aligned steps D ⊆ S, so Hidden = S − D.
	SlidingDistinct  int
	DisjointDistinct int
	HiddenDistinct   int
	// HiddenPct is 100·|S\D|/|S|, the quantity Figure 2 plots.
	HiddenPct float64

	// Instance accounting: total HHH reports summed over positions, a
	// secondary view of how much information the window models produce.
	SlidingInstances  int
	DisjointInstances int

	// HiddenSet lists the prefixes only the sliding window saw.
	HiddenSet hhh.Set
}

// HiddenHHH runs the Figure-2 analysis. For every window size it makes one
// sliding pass; because Step divides the window size and both models share
// origin 0, the disjoint windows are exactly the sliding positions whose
// start is a multiple of the window size, so both models are evaluated on
// identical aggregates in a single pass.
func HiddenHHH(provider Provider, cfg HiddenHHHConfig) ([]HiddenHHHResult, error) {
	cfg.setDefaults()
	var out []HiddenHHHResult
	for _, w := range cfg.Windows {
		if w%cfg.Step != 0 {
			return nil, fmt.Errorf("core: step %v does not divide window %v", cfg.Step, w)
		}
		src, err := provider()
		if err != nil {
			return nil, err
		}
		type acc struct {
			sliding, disjoint   hhh.Set
			slidingN, disjointN int
		}
		accs := make([]acc, len(cfg.Phis))
		for i := range accs {
			accs[i].sliding = hhh.NewSet()
			accs[i].disjoint = hhh.NewSet()
		}
		wcfg := window.Config{
			Width:  w,
			Step:   cfg.Step,
			End:    cfg.Span,
			Key:    cfg.Key,
			Weight: cfg.Weight,
		}
		err = window.Slide(src, wcfg, func(r *window.Result) error {
			isDisjoint := r.Start%int64(w) == 0
			for i, phi := range cfg.Phis {
				set := hhh.Exact(r.Leaves, cfg.Hierarchy, hhh.Threshold(r.Bytes, phi))
				accs[i].sliding.UnionInPlace(set)
				accs[i].slidingN += set.Len()
				if isDisjoint {
					accs[i].disjoint.UnionInPlace(set)
					accs[i].disjointN += set.Len()
				}
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
		for i, phi := range cfg.Phis {
			hidden := accs[i].sliding.Diff(accs[i].disjoint)
			out = append(out, HiddenHHHResult{
				Window:            w,
				Phi:               phi,
				SlidingDistinct:   accs[i].sliding.Len(),
				DisjointDistinct:  accs[i].disjoint.Len(),
				HiddenDistinct:    hidden.Len(),
				HiddenPct:         pct(hidden.Len(), accs[i].sliding.Len()),
				SlidingInstances:  accs[i].slidingN,
				DisjointInstances: accs[i].disjointN,
				HiddenSet:         hidden,
			})
		}
	}
	return out, nil
}

// RenderHiddenHHH formats results as the Figure-2 table.
func RenderHiddenHHH(results []HiddenHHHResult) string {
	t := metrics.NewTable("window", "phi%", "sliding", "disjoint", "hidden", "hidden%")
	for _, r := range results {
		t.AddRow(r.Window, 100*r.Phi, r.SlidingDistinct, r.DisjointDistinct,
			r.HiddenDistinct, r.HiddenPct)
	}
	return t.String()
}
