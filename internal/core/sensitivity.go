package core

import (
	"errors"
	"fmt"
	"io"
	"time"

	"hiddenhhh/internal/addr"
	"hiddenhhh/internal/hhh"
	"hiddenhhh/internal/metrics"
	"hiddenhhh/internal/sketch"
	"hiddenhhh/internal/trace"
	"hiddenhhh/internal/window"
)

// SensitivityConfig parameterises the Figure-3 experiment: the trace is
// tiled by disjoint windows of the baseline width and, in parallel, by
// windows 10–100 ms shorter, all series starting at the trace origin. The
// k-th windows of each pair of series are compared by the Jaccard
// similarity of their HHH sets, for as long as they still overlap — a
// window-length error of δ compounds into a phase drift of k·δ by the
// k-th window, which is how micro variations in window size lead to
// macroscopically different reports.
type SensitivityConfig struct {
	// Baseline window length (the paper uses 10 s).
	Baseline time.Duration
	// Trims are the reductions applied to the baseline width (the paper
	// uses 10..100 ms in 10 ms steps). Defaults to exactly that.
	Trims []time.Duration
	// Phi is the HHH threshold fraction (the paper uses 5%).
	Phi float64
	// Span is the analysed trace duration (the paper uses 20 minutes).
	Span int64
	// Hierarchy is the prefix lattice the analysis runs over. Defaults
	// to the IPv4 byte ladder.
	Hierarchy addr.Hierarchy
	Key       window.KeyFunc
	Weight    window.WeightFunc
}

func (c *SensitivityConfig) setDefaults() {
	if c.Baseline == 0 {
		c.Baseline = 10 * time.Second
	}
	if len(c.Trims) == 0 {
		for d := 10 * time.Millisecond; d <= 100*time.Millisecond; d += 10 * time.Millisecond {
			c.Trims = append(c.Trims, d)
		}
	}
	if c.Phi == 0 {
		c.Phi = 0.05
	}
	if c.Hierarchy == (addr.Hierarchy{}) {
		c.Hierarchy = addr.NewIPv4Hierarchy(addr.Byte)
	}
	if c.Key == nil {
		c.Key = window.BySource(c.Hierarchy)
	}
	if c.Weight == nil {
		c.Weight = window.ByBytes
	}
}

// SensitivityResult aggregates the per-pair Jaccard similarities for one
// trim value — one line of Figure 3.
type SensitivityResult struct {
	Trim time.Duration
	// Jaccard holds one sample per compared (baseline, variant) window
	// pair, in pair order.
	Jaccard *metrics.Dist
	// Pairs is the number of overlapping pairs compared (pairs whose
	// windows no longer overlap are excluded, following the paper).
	Pairs int
}

// DissimilarFraction returns the fraction of pairs whose HHH sets differ
// by at least diff (i.e. Jaccard <= 1-diff) — the form in which the paper
// states its Figure-3 findings.
func (r SensitivityResult) DissimilarFraction(diff float64) float64 {
	return r.Jaccard.FractionAtMost(1 - diff)
}

// tiling accumulates one disjoint-window series of a given width.
type tiling struct {
	width  int64
	leaves *sketch.Exact
	bytes  int64
	idx    int
	max    int // number of complete windows in the span
	sets   []hhh.Set
}

func (t *tiling) flushThrough(targetIdx int, h addr.Hierarchy, phi float64) {
	for t.idx < targetIdx && t.idx < t.max {
		t.sets = append(t.sets, hhh.Exact(t.leaves, h, hhh.Threshold(t.bytes, phi)))
		t.leaves.Reset()
		t.bytes = 0
		t.idx++
	}
}

// WindowSensitivity runs the Figure-3 analysis in a single pass: one
// tiling accumulator per window width (baseline plus every trimmed
// variant), then pairwise Jaccard over same-index windows while they
// overlap.
func WindowSensitivity(provider Provider, cfg SensitivityConfig) ([]SensitivityResult, error) {
	cfg.setDefaults()
	if cfg.Span < int64(cfg.Baseline) {
		return nil, fmt.Errorf("core: span %v shorter than baseline window %v",
			time.Duration(cfg.Span), cfg.Baseline)
	}
	for _, d := range cfg.Trims {
		if d <= 0 || d >= cfg.Baseline {
			return nil, fmt.Errorf("core: trim %v out of (0, baseline)", d)
		}
	}
	src, err := provider()
	if err != nil {
		return nil, err
	}

	widths := make([]int64, 0, len(cfg.Trims)+1)
	widths = append(widths, int64(cfg.Baseline))
	for _, d := range cfg.Trims {
		widths = append(widths, int64(cfg.Baseline-d))
	}
	tilings := make([]*tiling, len(widths))
	for i, w := range widths {
		tilings[i] = &tiling{
			width:  w,
			leaves: sketch.NewExact(1024),
			max:    int(cfg.Span / w),
		}
	}

	var p trace.Packet
	for {
		err := src.Next(&p)
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			return nil, err
		}
		if p.Ts < 0 || p.Ts >= cfg.Span {
			continue
		}
		key, ok := cfg.Key(&p)
		if !ok {
			continue
		}
		w := cfg.Weight(&p)
		for _, t := range tilings {
			idx := int(p.Ts / t.width)
			if idx > t.idx {
				t.flushThrough(idx, cfg.Hierarchy, cfg.Phi)
			}
			if t.idx >= t.max {
				continue // beyond the last complete window of this series
			}
			t.leaves.Update(key, w)
			t.bytes += w
		}
	}
	for _, t := range tilings {
		t.flushThrough(t.max, cfg.Hierarchy, cfg.Phi)
	}

	base := tilings[0]
	results := make([]SensitivityResult, len(cfg.Trims))
	for j, d := range cfg.Trims {
		vt := tilings[j+1]
		res := SensitivityResult{Trim: d, Jaccard: &metrics.Dist{}}
		for k := 0; k < len(base.sets) && k < len(vt.sets); k++ {
			// Overlap of baseline window k and variant window k is
			// W - (k+1)·δ; stop once they no longer overlap.
			if int64(cfg.Baseline)-int64(k+1)*int64(d) <= 0 {
				break
			}
			res.Jaccard.Observe(base.sets[k].Jaccard(vt.sets[k]))
			res.Pairs++
		}
		if res.Pairs == 0 {
			return nil, fmt.Errorf("core: no overlapping pairs for trim %v", d)
		}
		results[j] = res
	}
	return results, nil
}

// RenderSensitivity formats results as the Figure-3 table: summary
// quantiles of the per-pair Jaccard similarity per trim, plus the
// fraction of pairs differing by at least 11% and 25% (the two levels the
// paper quotes).
func RenderSensitivity(results []SensitivityResult) string {
	t := metrics.NewTable("trim", "pairs", "meanJ", "p10", "p30", "median",
		"frac(diff>=11%)", "frac(diff>=25%)")
	for _, r := range results {
		t.AddRow(r.Trim, r.Pairs, r.Jaccard.Mean(),
			r.Jaccard.Quantile(0.10), r.Jaccard.Quantile(0.30), r.Jaccard.Quantile(0.50),
			r.DissimilarFraction(0.11), r.DissimilarFraction(0.25))
	}
	return t.String()
}

// TailTrimSensitivity is the same-start variant of the window-size
// analysis (ablation E4d): every variant window shares its start with the
// baseline window and loses only its final Trim of traffic, isolating the
// pure tail effect from the cumulative phase drift that WindowSensitivity
// measures. Real traces show a much weaker effect here, which is itself
// evidence that Figure 3's signal comes from drift, not tails.
func TailTrimSensitivity(provider Provider, cfg SensitivityConfig) ([]SensitivityResult, error) {
	cfg.setDefaults()
	src, err := provider()
	if err != nil {
		return nil, err
	}
	results := make([]SensitivityResult, len(cfg.Trims))
	tcfg := window.TrimConfig{
		Width:  cfg.Baseline,
		End:    cfg.Span,
		Trims:  cfg.Trims,
		Key:    cfg.Key,
		Weight: cfg.Weight,
	}
	err = window.TrimmedTumble(src, tcfg, func(r *window.TrimResult) error {
		if results[0].Jaccard == nil {
			for j, d := range r.Trims {
				results[j] = SensitivityResult{Trim: d, Jaccard: &metrics.Dist{}}
			}
		}
		base := hhh.Exact(r.Leaves, cfg.Hierarchy, hhh.Threshold(r.Bytes, cfg.Phi))
		for j := range r.Trims {
			leaves := r.VariantLeaves(j)
			variant := hhh.Exact(leaves, cfg.Hierarchy, hhh.Threshold(r.VariantBytes(j), cfg.Phi))
			results[j].Jaccard.Observe(base.Jaccard(variant))
			results[j].Pairs++
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	if results[0].Jaccard == nil {
		return nil, fmt.Errorf("core: span produced no baseline windows")
	}
	return results, nil
}
