// Package ipv4 provides compact 32-bit IPv4 address and prefix
// primitives for the two-dimensional (source × destination) HHH
// subsystem, whose lattice keys pack two 32-bit prefixes into a single
// uint64 sketch key.
//
// The rest of the pipeline — trace records, the 1-D engines, the
// generators, the oracle — moved to the dual-stack 128-bit primitives of
// internal/addr; this package stays because the 2-D packing genuinely
// needs 32-bit per-dimension addresses. Lifting internal/hhh2d onto the
// generic hierarchy descriptor would retire it.
//
// Addresses are represented as host-order uint32 values so they can be used
// directly as map keys and sketch inputs without allocation. Prefixes pair
// an address with a mask length and are always stored in canonical form
// (host bits zeroed), which makes them safely comparable with == and usable
// as map keys.
package ipv4

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
)

// Addr is an IPv4 address in host byte order.
type Addr uint32

// AddrFrom4 builds an Addr from four dotted-quad octets.
func AddrFrom4(a, b, c, d byte) Addr {
	return Addr(uint32(a)<<24 | uint32(b)<<16 | uint32(c)<<8 | uint32(d))
}

// Octets returns the four dotted-quad octets of a.
func (a Addr) Octets() (o [4]byte) {
	o[0] = byte(a >> 24)
	o[1] = byte(a >> 16)
	o[2] = byte(a >> 8)
	o[3] = byte(a)
	return o
}

// String renders a in dotted-quad notation.
func (a Addr) String() string {
	o := a.Octets()
	// Hand-rolled to avoid fmt allocation overhead in hot logging paths.
	var b [15]byte
	n := 0
	for i, oct := range o {
		if i > 0 {
			b[n] = '.'
			n++
		}
		n += copy(b[n:], strconv.AppendUint(b[n:n], uint64(oct), 10))
	}
	return string(b[:n])
}

// ErrBadAddr reports an unparsable dotted-quad address.
var ErrBadAddr = errors.New("ipv4: invalid address")

// ErrBadPrefix reports an unparsable or non-canonical CIDR prefix.
var ErrBadPrefix = errors.New("ipv4: invalid prefix")

// ParseAddr parses a dotted-quad IPv4 address such as "192.0.2.7".
func ParseAddr(s string) (Addr, error) {
	var a uint32
	part := 0
	val := -1
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= '0' && c <= '9':
			if val < 0 {
				val = 0
			}
			val = val*10 + int(c-'0')
			if val > 255 {
				return 0, fmt.Errorf("%w: %q octet out of range", ErrBadAddr, s)
			}
		case c == '.':
			if val < 0 || part == 3 {
				return 0, fmt.Errorf("%w: %q", ErrBadAddr, s)
			}
			a = a<<8 | uint32(val)
			val = -1
			part++
		default:
			return 0, fmt.Errorf("%w: %q unexpected character", ErrBadAddr, s)
		}
	}
	if part != 3 || val < 0 {
		return 0, fmt.Errorf("%w: %q", ErrBadAddr, s)
	}
	a = a<<8 | uint32(val)
	return Addr(a), nil
}

// MustParseAddr is ParseAddr that panics on error. For tests and constants.
func MustParseAddr(s string) Addr {
	a, err := ParseAddr(s)
	if err != nil {
		panic(err)
	}
	return a
}

// Mask returns the network mask with the top bits set.
// bits must be in [0,32].
func Mask(bits uint8) uint32 {
	if bits == 0 {
		return 0
	}
	return ^uint32(0) << (32 - uint32(bits))
}

// Prefix is an IPv4 CIDR prefix in canonical form: all bits below Bits are
// zero. The zero value is the root prefix 0.0.0.0/0, which covers every
// address.
type Prefix struct {
	Addr Addr
	Bits uint8
}

// PrefixFrom canonicalises addr to bits mask length.
func PrefixFrom(addr Addr, bits uint8) Prefix {
	if bits > 32 {
		bits = 32
	}
	return Prefix{Addr: Addr(uint32(addr) & Mask(bits)), Bits: bits}
}

// Root is the /0 prefix covering the whole address space.
var Root = Prefix{}

// Host returns the /32 prefix for addr.
func Host(addr Addr) Prefix { return Prefix{Addr: addr, Bits: 32} }

// ParsePrefix parses CIDR notation such as "10.1.0.0/16". The address part
// must already be canonical (no host bits set).
func ParsePrefix(s string) (Prefix, error) {
	slash := strings.IndexByte(s, '/')
	if slash < 0 {
		return Prefix{}, fmt.Errorf("%w: %q missing '/'", ErrBadPrefix, s)
	}
	addr, err := ParseAddr(s[:slash])
	if err != nil {
		return Prefix{}, fmt.Errorf("%w: %q: %v", ErrBadPrefix, s, err)
	}
	bits, err := strconv.ParseUint(s[slash+1:], 10, 8)
	if err != nil || bits > 32 {
		return Prefix{}, fmt.Errorf("%w: %q bad mask length", ErrBadPrefix, s)
	}
	p := PrefixFrom(addr, uint8(bits))
	if p.Addr != addr {
		return Prefix{}, fmt.Errorf("%w: %q has host bits set", ErrBadPrefix, s)
	}
	return p, nil
}

// MustParsePrefix is ParsePrefix that panics on error.
func MustParsePrefix(s string) Prefix {
	p, err := ParsePrefix(s)
	if err != nil {
		panic(err)
	}
	return p
}

// String renders p in CIDR notation.
func (p Prefix) String() string {
	return p.Addr.String() + "/" + strconv.Itoa(int(p.Bits))
}

// Contains reports whether addr falls inside p.
func (p Prefix) Contains(addr Addr) bool {
	return uint32(addr)&Mask(p.Bits) == uint32(p.Addr)
}

// Covers reports whether p covers q, i.e. q's range is a subset of p's.
// Every prefix covers itself.
func (p Prefix) Covers(q Prefix) bool {
	return p.Bits <= q.Bits && p.Contains(q.Addr)
}

// Parent returns the prefix obtained by shortening p by step bits,
// saturating at the root. Parent of the root is the root.
func (p Prefix) Parent(step uint8) Prefix {
	if step >= p.Bits {
		return Root
	}
	return PrefixFrom(p.Addr, p.Bits-step)
}

// Key packs p into a single uint64 suitable for hashing and map keys in the
// sketch substrates: the address in the high 32 bits, mask length below.
func (p Prefix) Key() uint64 {
	return uint64(p.Addr)<<32 | uint64(p.Bits)
}

// PrefixFromKey unpacks a Key back into the Prefix it came from.
func PrefixFromKey(k uint64) Prefix {
	return Prefix{Addr: Addr(k >> 32), Bits: uint8(k & 0x3f)}
}

// Compare orders prefixes by (Bits, Addr): shorter (more general) prefixes
// first, then numerically by address. Returns -1, 0 or +1.
func (p Prefix) Compare(q Prefix) int {
	switch {
	case p.Bits < q.Bits:
		return -1
	case p.Bits > q.Bits:
		return 1
	case p.Addr < q.Addr:
		return -1
	case p.Addr > q.Addr:
		return 1
	}
	return 0
}

// Granularity is the step, in bits, between consecutive levels of a prefix
// hierarchy. The hierarchical-heavy-hitter literature conventionally uses
// byte granularity for IPv4 (levels /0 /8 /16 /24 /32).
type Granularity uint8

// Supported granularities.
const (
	Bit    Granularity = 1 // 33 levels: /0../32
	Nibble Granularity = 4 // 9 levels: /0,/4,..,/32
	Byte   Granularity = 8 // 5 levels: /0,/8,/16,/24,/32
)

// String names the conventional granularity ("bit", "nibble", "byte").
func (g Granularity) String() string {
	switch g {
	case Bit:
		return "bit"
	case Nibble:
		return "nibble"
	case Byte:
		return "byte"
	default:
		return "granularity(" + strconv.Itoa(int(g)) + ")"
	}
}

// Valid reports whether g divides 32 evenly, the requirement for a uniform
// hierarchy over IPv4.
func (g Granularity) Valid() bool {
	return g > 0 && g <= 32 && 32%uint8(g) == 0
}

// Hierarchy describes a uniform generalisation lattice over IPv4 source
// prefixes, the 1-D setting used throughout the paper. Level 0 is the most
// specific (/32 hosts); level Levels()-1 is the root /0.
type Hierarchy struct {
	g Granularity
}

// NewHierarchy builds a hierarchy at granularity g.
// It panics if g does not divide 32: such lattices would be non-uniform and
// are never meaningful for IPv4 HHH.
func NewHierarchy(g Granularity) Hierarchy {
	if !g.Valid() {
		panic("ipv4: granularity must divide 32, got " + g.String())
	}
	return Hierarchy{g: g}
}

// Granularity returns the configured per-level bit step.
func (h Hierarchy) Granularity() Granularity { return h.g }

// Levels returns the number of levels in the hierarchy, including both the
// /32 leaves and the /0 root. Byte granularity yields 5.
func (h Hierarchy) Levels() int { return int(32/uint8(h.g)) + 1 }

// Bits returns the prefix length at the given level, where level 0 is the
// /32 leaf level and level Levels()-1 is the root.
func (h Hierarchy) Bits(level int) uint8 {
	return 32 - uint8(level)*uint8(h.g)
}

// Level returns the level index for a prefix length, or -1 if bits does not
// lie on this hierarchy's lattice.
func (h Hierarchy) Level(bits uint8) int {
	if bits > 32 || bits%uint8(h.g) != 0 {
		return -1
	}
	return int((32 - bits) / uint8(h.g))
}

// At generalises addr to the given level.
func (h Hierarchy) At(addr Addr, level int) Prefix {
	return PrefixFrom(addr, h.Bits(level))
}

// Ancestors appends to dst the full generalisation chain of addr from the
// /32 leaf (level 0) to the root, in that order, and returns the extended
// slice. With a preallocated dst this performs no allocation; it is the hot
// path of every per-packet HHH update.
func (h Hierarchy) Ancestors(addr Addr, dst []Prefix) []Prefix {
	for l := 0; l < h.Levels(); l++ {
		dst = append(dst, h.At(addr, l))
	}
	return dst
}

// OnLattice reports whether p's mask length lies on the hierarchy lattice.
func (h Hierarchy) OnLattice(p Prefix) bool { return h.Level(p.Bits) >= 0 }
