package ipv4

import (
	"testing"
	"testing/quick"
)

func TestAddrRoundTrip(t *testing.T) {
	cases := []struct {
		s string
		a Addr
	}{
		{"0.0.0.0", 0},
		{"255.255.255.255", 0xffffffff},
		{"192.0.2.7", AddrFrom4(192, 0, 2, 7)},
		{"10.1.2.3", AddrFrom4(10, 1, 2, 3)},
		{"1.2.3.4", 0x01020304},
	}
	for _, c := range cases {
		got, err := ParseAddr(c.s)
		if err != nil {
			t.Fatalf("ParseAddr(%q): %v", c.s, err)
		}
		if got != c.a {
			t.Errorf("ParseAddr(%q) = %08x, want %08x", c.s, uint32(got), uint32(c.a))
		}
		if got.String() != c.s {
			t.Errorf("Addr(%08x).String() = %q, want %q", uint32(c.a), got.String(), c.s)
		}
	}
}

func TestParseAddrErrors(t *testing.T) {
	bad := []string{"", "1", "1.2", "1.2.3", "1.2.3.4.5", "256.0.0.1", "1..2.3", "a.b.c.d", "1.2.3.4x", ".1.2.3", "1.2.3."}
	for _, s := range bad {
		if _, err := ParseAddr(s); err == nil {
			t.Errorf("ParseAddr(%q) unexpectedly succeeded", s)
		}
	}
}

func TestAddrStringQuick(t *testing.T) {
	f := func(x uint32) bool {
		a := Addr(x)
		back, err := ParseAddr(a.String())
		return err == nil && back == a
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMask(t *testing.T) {
	cases := []struct {
		bits uint8
		want uint32
	}{
		{0, 0x00000000},
		{1, 0x80000000},
		{8, 0xff000000},
		{16, 0xffff0000},
		{24, 0xffffff00},
		{31, 0xfffffffe},
		{32, 0xffffffff},
	}
	for _, c := range cases {
		if got := Mask(c.bits); got != c.want {
			t.Errorf("Mask(%d) = %08x, want %08x", c.bits, got, c.want)
		}
	}
}

func TestPrefixCanonicalisation(t *testing.T) {
	p := PrefixFrom(MustParseAddr("10.1.2.3"), 16)
	if want := MustParsePrefix("10.1.0.0/16"); p != want {
		t.Errorf("PrefixFrom canonicalised to %v, want %v", p, want)
	}
	if p.String() != "10.1.0.0/16" {
		t.Errorf("String() = %q", p.String())
	}
	// Over-long masks saturate to 32.
	q := PrefixFrom(0, 99)
	if q.Bits != 32 {
		t.Errorf("PrefixFrom(_,99).Bits = %d, want 32", q.Bits)
	}
}

func TestParsePrefix(t *testing.T) {
	good := []string{"0.0.0.0/0", "10.0.0.0/8", "192.0.2.0/24", "192.0.2.7/32", "128.0.0.0/1"}
	for _, s := range good {
		p, err := ParsePrefix(s)
		if err != nil {
			t.Fatalf("ParsePrefix(%q): %v", s, err)
		}
		if p.String() != s {
			t.Errorf("ParsePrefix(%q).String() = %q", s, p.String())
		}
	}
	bad := []string{"", "10.0.0.0", "10.0.0.0/", "10.0.0.0/33", "10.0.0.1/8", "x/8", "10.0.0.0/-1", "10.0.0.0/8/9"}
	for _, s := range bad {
		if _, err := ParsePrefix(s); err == nil {
			t.Errorf("ParsePrefix(%q) unexpectedly succeeded", s)
		}
	}
}

func TestContainsCovers(t *testing.T) {
	p := MustParsePrefix("10.1.0.0/16")
	if !p.Contains(MustParseAddr("10.1.255.255")) {
		t.Error("10.1.0.0/16 should contain 10.1.255.255")
	}
	if p.Contains(MustParseAddr("10.2.0.0")) {
		t.Error("10.1.0.0/16 should not contain 10.2.0.0")
	}
	if !Root.Contains(MustParseAddr("203.0.113.9")) {
		t.Error("root should contain everything")
	}
	if !p.Covers(MustParsePrefix("10.1.2.0/24")) {
		t.Error("/16 should cover its /24")
	}
	if !p.Covers(p) {
		t.Error("prefix should cover itself")
	}
	if p.Covers(MustParsePrefix("10.0.0.0/8")) {
		t.Error("/16 should not cover its /8 parent")
	}
	if p.Covers(MustParsePrefix("10.2.0.0/24")) {
		t.Error("10.1.0.0/16 should not cover 10.2.0.0/24")
	}
}

func TestParent(t *testing.T) {
	p := MustParsePrefix("10.1.2.0/24")
	if got, want := p.Parent(8), MustParsePrefix("10.1.0.0/16"); got != want {
		t.Errorf("Parent(8) = %v, want %v", got, want)
	}
	if got := p.Parent(24); got != Root {
		t.Errorf("Parent(24) = %v, want root", got)
	}
	if got := p.Parent(99); got != Root {
		t.Errorf("Parent(99) = %v, want root", got)
	}
	if got := Root.Parent(8); got != Root {
		t.Errorf("root.Parent(8) = %v, want root", got)
	}
}

func TestKeyRoundTrip(t *testing.T) {
	f := func(x uint32, bits uint8) bool {
		p := PrefixFrom(Addr(x), bits%33)
		return PrefixFromKey(p.Key()) == p
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestKeyDistinct(t *testing.T) {
	// Prefixes differing only in length must have distinct keys.
	a := MustParsePrefix("10.0.0.0/8")
	b := MustParsePrefix("10.0.0.0/16")
	if a.Key() == b.Key() {
		t.Error("keys of /8 and /16 collide")
	}
}

func TestCompare(t *testing.T) {
	ps := []Prefix{
		Root,
		MustParsePrefix("10.0.0.0/8"),
		MustParsePrefix("11.0.0.0/8"),
		MustParsePrefix("10.1.0.0/16"),
		MustParsePrefix("10.1.2.0/24"),
	}
	for i, p := range ps {
		for j, q := range ps {
			got := p.Compare(q)
			switch {
			case i == j && got != 0:
				t.Errorf("Compare(%v,%v) = %d, want 0", p, q, got)
			case i < j && got != -1:
				t.Errorf("Compare(%v,%v) = %d, want -1", p, q, got)
			case i > j && got != 1:
				t.Errorf("Compare(%v,%v) = %d, want 1", p, q, got)
			}
		}
	}
}

func TestGranularity(t *testing.T) {
	for _, g := range []Granularity{1, 2, 4, 8, 16, 32} {
		if !g.Valid() {
			t.Errorf("granularity %d should be valid", g)
		}
	}
	for _, g := range []Granularity{0, 3, 5, 7, 9, 33} {
		if g.Valid() {
			t.Errorf("granularity %d should be invalid", g)
		}
	}
	if Bit.String() != "bit" || Nibble.String() != "nibble" || Byte.String() != "byte" {
		t.Error("granularity String() mismatch")
	}
}

func TestHierarchyLevels(t *testing.T) {
	cases := []struct {
		g      Granularity
		levels int
	}{
		{Bit, 33},
		{Nibble, 9},
		{Byte, 5},
	}
	for _, c := range cases {
		h := NewHierarchy(c.g)
		if h.Levels() != c.levels {
			t.Errorf("granularity %v: Levels() = %d, want %d", c.g, h.Levels(), c.levels)
		}
		if h.Bits(0) != 32 {
			t.Errorf("granularity %v: level 0 should be /32", c.g)
		}
		if h.Bits(c.levels-1) != 0 {
			t.Errorf("granularity %v: top level should be /0", c.g)
		}
		for l := 0; l < c.levels; l++ {
			if h.Level(h.Bits(l)) != l {
				t.Errorf("granularity %v: Level(Bits(%d)) != %d", c.g, l, l)
			}
		}
	}
	if NewHierarchy(Byte).Level(12) != -1 {
		t.Error("Level(12) at byte granularity should be -1")
	}
}

func TestHierarchyPanicsOnInvalid(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewHierarchy(3) should panic")
		}
	}()
	NewHierarchy(3)
}

func TestAncestors(t *testing.T) {
	h := NewHierarchy(Byte)
	addr := MustParseAddr("10.1.2.3")
	got := h.Ancestors(addr, nil)
	want := []Prefix{
		MustParsePrefix("10.1.2.3/32"),
		MustParsePrefix("10.1.2.0/24"),
		MustParsePrefix("10.1.0.0/16"),
		MustParsePrefix("10.0.0.0/8"),
		Root,
	}
	if len(got) != len(want) {
		t.Fatalf("Ancestors returned %d entries, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("ancestor[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestAncestorsChainProperty(t *testing.T) {
	h := NewHierarchy(Nibble)
	f := func(x uint32) bool {
		chain := h.Ancestors(Addr(x), nil)
		if len(chain) != h.Levels() {
			return false
		}
		for i := 1; i < len(chain); i++ {
			// Each ancestor must cover the previous one and be one
			// granularity step shorter.
			if !chain[i].Covers(chain[i-1]) {
				return false
			}
			if chain[i-1].Bits-chain[i].Bits != uint8(Nibble) {
				return false
			}
		}
		return chain[len(chain)-1] == Root
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestAncestorsNoAlloc(t *testing.T) {
	h := NewHierarchy(Byte)
	buf := make([]Prefix, 0, h.Levels())
	allocs := testing.AllocsPerRun(100, func() {
		buf = h.Ancestors(MustParseAddr("192.0.2.1"), buf[:0])
	})
	if allocs != 0 {
		t.Errorf("Ancestors with preallocated buffer allocates %v times per run", allocs)
	}
}

func TestOnLattice(t *testing.T) {
	h := NewHierarchy(Byte)
	if !h.OnLattice(MustParsePrefix("10.0.0.0/8")) {
		t.Error("/8 should be on byte lattice")
	}
	if h.OnLattice(MustParsePrefix("10.0.0.0/12")) {
		t.Error("/12 should not be on byte lattice")
	}
}

func BenchmarkAncestorsByte(b *testing.B) {
	h := NewHierarchy(Byte)
	buf := make([]Prefix, 0, h.Levels())
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf = h.Ancestors(Addr(i*2654435761), buf[:0])
	}
	_ = buf
}
