// Command hiddenhhh reproduces Figure 2 of the paper: the percentage of
// hierarchical heavy hitters that fixed-time disjoint windows fail to
// report compared to a sliding window of the same length, across window
// sizes and thresholds — over the four synthetic "day" scenarios standing
// in for the paper's CAIDA trace days.
//
// Usage:
//
//	hiddenhhh                         # all four days, paper parameters, scaled duration
//	hiddenhhh -duration 1h -days 1    # one full-length day
//	hiddenhhh -steps                  # E4a ablation: sliding step sweep
//	hiddenhhh -granularity bit        # E4b ablation: hierarchy granularity
//	hiddenhhh -in day0.hhht           # analyse a stored trace instead
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"hiddenhhh/internal/addr"
	"hiddenhhh/internal/core"
	"hiddenhhh/internal/gen"
	"hiddenhhh/internal/metrics"
	"hiddenhhh/internal/pcap"
	"hiddenhhh/internal/trace"
)

func main() {
	var (
		in       = flag.String("in", "", "analyse a stored trace instead of synthesising")
		duration = flag.Duration("duration", 4*time.Minute, "per-day synthetic trace duration")
		days     = flag.Int("days", 4, "number of synthetic days (1-4)")
		step     = flag.Duration("step", time.Second, "sliding step")
		steps    = flag.Bool("steps", false, "run the step-size ablation (E4a) instead")
		granStr  = flag.String("granularity", "byte", "hierarchy granularity: bit, nibble, byte")
		windows  = flag.String("windows", "5s,10s,20s", "comma-separated window sizes")
		phis     = flag.String("phis", "0.01,0.05,0.10", "comma-separated threshold fractions")
	)
	flag.Parse()

	h, err := granularity(*granStr)
	if err != nil {
		fatal(err)
	}
	ws, err := parseDurations(*windows)
	if err != nil {
		fatal(err)
	}
	ps, err := parseFloats(*phis)
	if err != nil {
		fatal(err)
	}

	type dayTrace struct {
		name     string
		provider core.Provider
		span     int64
	}
	var traces []dayTrace
	if *in != "" {
		pkts, err := load(*in)
		if err != nil {
			fatal(err)
		}
		if len(pkts) == 0 {
			fatal(fmt.Errorf("trace %s is empty", *in))
		}
		traces = append(traces, dayTrace{
			name:     *in,
			provider: core.SliceProvider(pkts),
			span:     pkts[len(pkts)-1].Ts + 1,
		})
	} else {
		if *days < 1 || *days > 4 {
			fatal(fmt.Errorf("-days must be 1..4"))
		}
		for d := 0; d < *days; d++ {
			cfg := gen.Tier1Day(d, *duration)
			fmt.Fprintf(os.Stderr, "synthesising day %d (%v at %.0f pps)...\n",
				d, cfg.Duration, cfg.MeanPacketRate)
			pkts, err := gen.Packets(cfg)
			if err != nil {
				fatal(err)
			}
			traces = append(traces, dayTrace{
				name:     fmt.Sprintf("day%d", d),
				provider: core.SliceProvider(pkts),
				span:     int64(cfg.Duration),
			})
		}
	}

	if *steps {
		runStepAblation(traces[0].provider, traces[0].span, h)
		return
	}

	fmt.Println("Figure 2 — hidden HHHs: disjoint windows vs sliding window (step", *step, ")")
	fmt.Println()
	summary := metrics.NewTable("day", "window", "phi%", "sliding", "disjoint", "hidden", "hidden%")
	type cell struct {
		sum float64
		n   int
	}
	agg := map[string]*cell{}
	for _, dt := range traces {
		results, err := core.HiddenHHH(dt.provider, core.HiddenHHHConfig{
			Windows:   ws,
			Step:      *step,
			Phis:      ps,
			Span:      dt.span,
			Hierarchy: h,
		})
		if err != nil {
			fatal(err)
		}
		for _, r := range results {
			summary.AddRow(dt.name, r.Window, 100*r.Phi, r.SlidingDistinct,
				r.DisjointDistinct, r.HiddenDistinct, r.HiddenPct)
			k := fmt.Sprintf("%v/%.0f%%", r.Window, 100*r.Phi)
			if agg[k] == nil {
				agg[k] = &cell{}
			}
			agg[k].sum += r.HiddenPct
			agg[k].n++
		}
	}
	fmt.Print(summary.String())
	if len(traces) > 1 {
		fmt.Println("\nmean hidden% across days:")
		mean := metrics.NewTable("window/phi", "hidden%")
		for _, w := range ws {
			for _, p := range ps {
				k := fmt.Sprintf("%v/%.0f%%", w, 100*p)
				if c := agg[k]; c != nil {
					mean.AddRow(k, c.sum/float64(c.n))
				}
			}
		}
		fmt.Print(mean.String())
	}
}

func runStepAblation(provider core.Provider, span int64, h addr.Hierarchy) {
	fmt.Println("E4a — hidden% vs sliding step (window 10s, phi 5%)")
	t := metrics.NewTable("step", "sliding", "disjoint", "hidden", "hidden%")
	for _, step := range []time.Duration{250 * time.Millisecond, 500 * time.Millisecond,
		time.Second, 2 * time.Second, 5 * time.Second} {
		results, err := core.HiddenHHH(provider, core.HiddenHHHConfig{
			Windows:   []time.Duration{10 * time.Second},
			Step:      step,
			Phis:      []float64{0.05},
			Span:      span,
			Hierarchy: h,
		})
		if err != nil {
			fatal(err)
		}
		r := results[0]
		t.AddRow(step, r.SlidingDistinct, r.DisjointDistinct, r.HiddenDistinct, r.HiddenPct)
	}
	fmt.Print(t.String())
}

func load(path string) ([]trace.Packet, error) {
	if strings.HasSuffix(path, ".pcap") {
		return pcap.ReadFile(path)
	}
	return trace.ReadFile(path)
}

func granularity(s string) (addr.Hierarchy, error) {
	switch s {
	case "bit":
		return addr.NewIPv4Hierarchy(addr.Bit), nil
	case "nibble":
		return addr.NewIPv4Hierarchy(addr.Nibble), nil
	case "byte":
		return addr.NewIPv4Hierarchy(addr.Byte), nil
	default:
		return addr.Hierarchy{}, fmt.Errorf("unknown granularity %q", s)
	}
}

func parseDurations(s string) ([]time.Duration, error) {
	var out []time.Duration
	for _, part := range strings.Split(s, ",") {
		d, err := time.ParseDuration(strings.TrimSpace(part))
		if err != nil {
			return nil, err
		}
		out = append(out, d)
	}
	return out, nil
}

func parseFloats(s string) ([]float64, error) {
	var out []float64
	for _, part := range strings.Split(s, ",") {
		var f float64
		if _, err := fmt.Sscanf(strings.TrimSpace(part), "%g", &f); err != nil {
			return nil, err
		}
		out = append(out, f)
	}
	return out, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "hiddenhhh:", err)
	os.Exit(1)
}
