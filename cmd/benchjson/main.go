// Command benchjson captures a benchmark snapshot as JSON, the format of
// the repository's BENCH_*.json performance-trajectory files.
//
// By default it runs the detector and sketch throughput benchmarks itself
// and writes the snapshot to stdout:
//
//	go run ./cmd/benchjson > BENCH_2.json
//
// With -stdin it instead parses `go test -bench` output piped into it,
// which is how CI or a developer can snapshot an arbitrary benchmark run:
//
//	go test -run '^$' -bench Detector -benchmem ./... | go run ./cmd/benchjson -stdin
//
// With -compare it additionally guards against performance regressions:
// benchmarks matching -compare-pattern are checked against the same
// entries in the baseline snapshot, and the process exits with status 2
// when any ns/op regresses by more than -max-regression×. The guard is
// deliberately loose (CI runners are noisy and short -benchtime runs
// noisier still) — it catches order-of-magnitude accidents, not
// percentage drift. Set BENCHJSON_SKIP_COMPARE=1 to skip the check while
// still emitting the snapshot:
//
//	go run ./cmd/benchjson -benchtime 10000x -compare BENCH_3.json > bench-ci.json
//
// Independently of -compare, the snapshot is checked for instrumentation
// overhead: every benchmark named <Base><suffix> for -overhead-suffix
// (default "Telemetry") is paired with its uninstrumented twin <Base>
// from the same run, and the process exits with status 2 when the
// instrumented ns/op exceeds the twin by more than -max-overhead×
// (default 1.05 — the repository's "telemetry costs under 5%" budget).
// Pairs are compared within one snapshot, so machine speed cancels out;
// repeated measurements from a `-count N` run collapse to the per-name
// minimum, so CI drives this guard with min-of-N pairing:
//
//	go test -run '^$' -bench 'Sharded(1|4)(Telemetry)?$' -benchtime 500000x -count 5 . |
//	  go run ./cmd/benchjson -stdin > /dev/null
//
// BENCHJSON_SKIP_COMPARE=1 skips this guard too.
//
// With -cpu the benchmarks run once per GOMAXPROCS value (`go test
// -cpu`), and benchmark names keep their -N procs suffix so a snapshot
// records the scaling trajectory: the suffix-free entries are the
// GOMAXPROCS=1 runs, which stay name-compatible with suffix-stripped
// single-setting snapshots (and therefore with the -compare guard):
//
//	go run ./cmd/benchjson -cpu 1,2,4,8 -bench '^BenchmarkDetectorSharded' > BENCH_6.json
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/exec"
	"regexp"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"time"
)

// Entry is one benchmark measurement.
type Entry struct {
	Name       string  `json:"name"`
	Iterations int64   `json:"iterations"`
	NsPerOp    float64 `json:"ns_per_op"`
	// OpsPerSec is 1e9/NsPerOp — packets/sec for the Detector benchmarks,
	// whose op is one packet.
	OpsPerSec   float64 `json:"ops_per_sec"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

// Snapshot is the BENCH_*.json document.
type Snapshot struct {
	GeneratedAt string `json:"generated_at"`
	GoVersion   string `json:"go_version"`
	GOOS        string `json:"goos"`
	GOARCH      string `json:"goarch"`
	Benchtime   string `json:"benchtime,omitempty"`
	// CPU is the `go test -cpu` list the snapshot was taken with; when
	// set, benchmark names keep their -N GOMAXPROCS suffix (absent on
	// the GOMAXPROCS=1 runs, per the testing package's convention).
	CPU        string  `json:"cpu,omitempty"`
	Note       string  `json:"note,omitempty"`
	Benchmarks []Entry `json:"benchmarks"`
}

func main() {
	stdin := flag.Bool("stdin", false, "parse `go test -bench` output from stdin instead of running benchmarks")
	// The pattern is anchored: an unanchored "Detector" would also match
	// BenchmarkE3Detectors, a whole-experiment benchmark whose per-op cost
	// makes fixed iteration counts run for hours.
	benchRE := flag.String("bench", "^BenchmarkDetector|^BenchmarkSlidingSharded|^BenchmarkContinuousSharded|^BenchmarkPerLevel|^BenchmarkSpaceSaving|^BenchmarkHeapSpaceSaving", "benchmark pattern to run (ignored with -stdin)")
	benchtime := flag.String("benchtime", "2000000x", "benchtime to run with (ignored with -stdin)")
	cpu := flag.String("cpu", "", "comma-separated `go test -cpu` list; when set, -N procs suffixes are kept in benchmark names")
	note := flag.String("note", "", "free-form note recorded in the snapshot")
	compare := flag.String("compare", "", "baseline BENCH_*.json; fail on ns/op regressions beyond -max-regression")
	comparePattern := flag.String("compare-pattern",
		"^BenchmarkDetectorSharded|^BenchmarkSlidingSharded|^BenchmarkContinuousSharded|^BenchmarkDetectorIPv6",
		"benchmarks the -compare guard checks (regexp on names, GOMAXPROCS suffix stripped)")
	maxRegression := flag.Float64("max-regression", 2.0, "ns/op ratio vs baseline that fails the -compare guard")
	overheadSuffix := flag.String("overhead-suffix", "Telemetry",
		"benchmark name suffix marking instrumented twins; empty disables the overhead guard")
	maxOverhead := flag.Float64("max-overhead", 1.05,
		"ns/op ratio of an instrumented twin over its base benchmark that fails the overhead guard")
	flag.Parse()

	var out bytes.Buffer
	usedBenchtime := *benchtime
	if *stdin {
		if _, err := io.Copy(&out, os.Stdin); err != nil {
			fatal(err)
		}
		usedBenchtime = ""
	} else {
		args := []string{"test", "-run", "^$",
			"-bench", *benchRE, "-benchmem", "-benchtime", *benchtime}
		if *cpu != "" {
			args = append(args, "-cpu", *cpu)
		}
		args = append(args, "./...")
		cmd := exec.Command("go", args...)
		cmd.Stderr = os.Stderr
		cmd.Stdout = &out
		if err := cmd.Run(); err != nil {
			fatal(fmt.Errorf("go test -bench: %w", err))
		}
	}

	snap := Snapshot{
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		GoVersion:   runtime.Version(),
		GOOS:        runtime.GOOS,
		GOARCH:      runtime.GOARCH,
		Benchtime:   usedBenchtime,
		CPU:         *cpu,
		Note:        *note,
		Benchmarks:  parseBench(out.Bytes(), *cpu != ""),
	}
	if len(snap.Benchmarks) == 0 {
		fatal(fmt.Errorf("no benchmark lines found"))
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(snap); err != nil {
		fatal(err)
	}
	if *compare != "" {
		if err := compareBaseline(&snap, *compare, *comparePattern, *maxRegression); err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(2)
		}
	}
	if *overheadSuffix != "" {
		if err := checkOverhead(&snap, *overheadSuffix, *maxOverhead); err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(2)
		}
	}
}

// checkOverhead pairs every <Base><suffix> benchmark in the snapshot
// with its <Base> twin from the same run and fails when the instrumented
// ns/op exceeds maxRatio× the twin's. Repeated measurements of the same
// benchmark (a `-count N` run) collapse to the per-name minimum — the
// standard noise-floor estimator — so a min-of-N pairing holds a tight
// budget even on runners where any single back-to-back pair can be
// skewed 10%+ by transient load. A suffix benchmark whose twin is
// missing fails loudly (a rename would otherwise disable the guard);
// a snapshot containing no suffix benchmarks passes silently, so -stdin
// runs over unrelated benchmark subsets stay usable.
func checkOverhead(snap *Snapshot, suffix string, maxRatio float64) error {
	if os.Getenv("BENCHJSON_SKIP_COMPARE") == "1" {
		return nil
	}
	best := make(map[string]float64, len(snap.Benchmarks))
	for _, e := range snap.Benchmarks {
		if v, ok := best[e.Name]; !ok || e.NsPerOp < v {
			best[e.Name] = e.NsPerOp
		}
	}
	var over []string
	checked := 0
	for instr, ns := range best {
		name, ok := strings.CutSuffix(instr, suffix)
		if !ok || name == instr || name == "" {
			continue
		}
		twin, ok := best[name]
		if !ok || twin <= 0 {
			return fmt.Errorf("overhead guard: %s has no %s twin in this run", instr, name)
		}
		checked++
		if ratio := ns / twin; ratio > maxRatio {
			over = append(over, fmt.Sprintf("%s: %.1f ns/op vs %s %.1f (%.3fx > %.2fx)",
				instr, ns, name, twin, ratio, maxRatio))
		}
	}
	if len(over) > 0 {
		sort.Strings(over)
		return fmt.Errorf("%d instrumented benchmarks exceed the %.0f%% overhead budget:\n  %s",
			len(over), (maxRatio-1)*100, strings.Join(over, "\n  "))
	}
	if checked > 0 {
		fmt.Fprintf(os.Stderr, "benchjson: %d instrumented twins within %.0f%% of baseline\n",
			checked, (maxRatio-1)*100)
	}
	return nil
}

// compareBaseline checks the snapshot's guarded benchmarks against the
// baseline file and returns an error describing every regression beyond
// maxRatio. Benchmarks present on only one side are skipped (renames and
// new benchmarks must not break the guard). BENCHJSON_SKIP_COMPARE=1
// skips the whole check.
func compareBaseline(snap *Snapshot, path, pattern string, maxRatio float64) error {
	if os.Getenv("BENCHJSON_SKIP_COMPARE") == "1" {
		fmt.Fprintln(os.Stderr, "benchjson: BENCHJSON_SKIP_COMPARE=1; skipping baseline comparison")
		return nil
	}
	re, err := regexp.Compile(pattern)
	if err != nil {
		return fmt.Errorf("bad -compare-pattern: %w", err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("reading baseline: %w", err)
	}
	var base Snapshot
	if err := json.Unmarshal(raw, &base); err != nil {
		return fmt.Errorf("parsing baseline %s: %w", path, err)
	}
	baseline := make(map[string]float64, len(base.Benchmarks))
	for _, e := range base.Benchmarks {
		baseline[e.Name] = e.NsPerOp
	}
	var regressions []string
	checked := 0
	for _, e := range snap.Benchmarks {
		if !re.MatchString(e.Name) {
			continue
		}
		old, ok := baseline[e.Name]
		if !ok || old <= 0 {
			continue
		}
		checked++
		if ratio := e.NsPerOp / old; ratio > maxRatio {
			regressions = append(regressions, fmt.Sprintf(
				"%s: %.1f ns/op vs baseline %.1f (%.2fx > %.2fx)",
				e.Name, e.NsPerOp, old, ratio, maxRatio))
		}
	}
	if checked == 0 {
		// A guard that matches nothing is a guard that is silently off —
		// most likely a benchmark rename or a -bench/-compare-pattern
		// drift. Fail loudly so CI surfaces it.
		return fmt.Errorf("no guarded benchmarks matched both %q and the baseline %s; "+
			"renamed benchmarks or a stale pattern have disabled the guard", pattern, path)
	}
	if len(regressions) > 0 {
		return fmt.Errorf("%d of %d guarded benchmarks regressed vs %s:\n  %s",
			len(regressions), checked, path, strings.Join(regressions, "\n  "))
	}
	fmt.Fprintf(os.Stderr, "benchjson: %d guarded benchmarks within %.1fx of %s\n",
		checked, maxRatio, path)
	return nil
}

// parseBench extracts Benchmark lines from `go test -bench -benchmem`
// output. Lines look like:
//
//	BenchmarkFoo-8   2000000   69.29 ns/op   0 B/op   0 allocs/op
//
// With keepSuffix the -GOMAXPROCS name suffix is preserved (multi-value
// -cpu runs would otherwise collapse into colliding names); without it
// the suffix is stripped so snapshots from differently-sized machines
// stay name-compatible.
func parseBench(out []byte, keepSuffix bool) []Entry {
	var entries []Entry
	sc := bufio.NewScanner(bytes.NewReader(out))
	for sc.Scan() {
		f := strings.Fields(sc.Text())
		if len(f) < 4 || !strings.HasPrefix(f[0], "Benchmark") || f[3] != "ns/op" {
			continue
		}
		name := f[0]
		if i := strings.LastIndexByte(name, '-'); i > 0 && !keepSuffix {
			name = name[:i] // strip -GOMAXPROCS suffix
		}
		iters, err1 := strconv.ParseInt(f[1], 10, 64)
		ns, err2 := strconv.ParseFloat(f[2], 64)
		if err1 != nil || err2 != nil || ns <= 0 {
			continue
		}
		e := Entry{Name: name, Iterations: iters, NsPerOp: ns, OpsPerSec: 1e9 / ns}
		for i := 4; i+1 < len(f); i += 2 {
			v, err := strconv.ParseInt(f[i], 10, 64)
			if err != nil {
				continue
			}
			switch f[i+1] {
			case "B/op":
				e.BytesPerOp = v
			case "allocs/op":
				e.AllocsPerOp = v
			}
		}
		entries = append(entries, e)
	}
	return entries
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchjson:", err)
	os.Exit(1)
}
