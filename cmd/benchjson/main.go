// Command benchjson captures a benchmark snapshot as JSON, the format of
// the repository's BENCH_*.json performance-trajectory files.
//
// By default it runs the detector and sketch throughput benchmarks itself
// and writes the snapshot to stdout:
//
//	go run ./cmd/benchjson > BENCH_2.json
//
// With -stdin it instead parses `go test -bench` output piped into it,
// which is how CI or a developer can snapshot an arbitrary benchmark run:
//
//	go test -run '^$' -bench Detector -benchmem ./... | go run ./cmd/benchjson -stdin
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/exec"
	"runtime"
	"strconv"
	"strings"
	"time"
)

// Entry is one benchmark measurement.
type Entry struct {
	Name       string  `json:"name"`
	Iterations int64   `json:"iterations"`
	NsPerOp    float64 `json:"ns_per_op"`
	// OpsPerSec is 1e9/NsPerOp — packets/sec for the Detector benchmarks,
	// whose op is one packet.
	OpsPerSec   float64 `json:"ops_per_sec"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

// Snapshot is the BENCH_*.json document.
type Snapshot struct {
	GeneratedAt string  `json:"generated_at"`
	GoVersion   string  `json:"go_version"`
	GOOS        string  `json:"goos"`
	GOARCH      string  `json:"goarch"`
	Benchtime   string  `json:"benchtime,omitempty"`
	Note        string  `json:"note,omitempty"`
	Benchmarks  []Entry `json:"benchmarks"`
}

func main() {
	stdin := flag.Bool("stdin", false, "parse `go test -bench` output from stdin instead of running benchmarks")
	// The pattern is anchored: an unanchored "Detector" would also match
	// BenchmarkE3Detectors, a whole-experiment benchmark whose per-op cost
	// makes fixed iteration counts run for hours.
	benchRE := flag.String("bench", "^BenchmarkDetector|^BenchmarkSlidingSharded|^BenchmarkContinuousSharded|^BenchmarkPerLevel|^BenchmarkSpaceSaving|^BenchmarkHeapSpaceSaving", "benchmark pattern to run (ignored with -stdin)")
	benchtime := flag.String("benchtime", "2000000x", "benchtime to run with (ignored with -stdin)")
	note := flag.String("note", "", "free-form note recorded in the snapshot")
	flag.Parse()

	var out bytes.Buffer
	usedBenchtime := *benchtime
	if *stdin {
		if _, err := io.Copy(&out, os.Stdin); err != nil {
			fatal(err)
		}
		usedBenchtime = ""
	} else {
		cmd := exec.Command("go", "test", "-run", "^$",
			"-bench", *benchRE, "-benchmem", "-benchtime", *benchtime, "./...")
		cmd.Stderr = os.Stderr
		cmd.Stdout = &out
		if err := cmd.Run(); err != nil {
			fatal(fmt.Errorf("go test -bench: %w", err))
		}
	}

	snap := Snapshot{
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		GoVersion:   runtime.Version(),
		GOOS:        runtime.GOOS,
		GOARCH:      runtime.GOARCH,
		Benchtime:   usedBenchtime,
		Note:        *note,
		Benchmarks:  parseBench(out.Bytes()),
	}
	if len(snap.Benchmarks) == 0 {
		fatal(fmt.Errorf("no benchmark lines found"))
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(snap); err != nil {
		fatal(err)
	}
}

// parseBench extracts Benchmark lines from `go test -bench -benchmem`
// output. Lines look like:
//
//	BenchmarkFoo-8   2000000   69.29 ns/op   0 B/op   0 allocs/op
func parseBench(out []byte) []Entry {
	var entries []Entry
	sc := bufio.NewScanner(bytes.NewReader(out))
	for sc.Scan() {
		f := strings.Fields(sc.Text())
		if len(f) < 4 || !strings.HasPrefix(f[0], "Benchmark") || f[3] != "ns/op" {
			continue
		}
		name := f[0]
		if i := strings.LastIndexByte(name, '-'); i > 0 {
			name = name[:i] // strip -GOMAXPROCS suffix
		}
		iters, err1 := strconv.ParseInt(f[1], 10, 64)
		ns, err2 := strconv.ParseFloat(f[2], 64)
		if err1 != nil || err2 != nil || ns <= 0 {
			continue
		}
		e := Entry{Name: name, Iterations: iters, NsPerOp: ns, OpsPerSec: 1e9 / ns}
		for i := 4; i+1 < len(f); i += 2 {
			v, err := strconv.ParseInt(f[i], 10, 64)
			if err != nil {
				continue
			}
			switch f[i+1] {
			case "B/op":
				e.BytesPerOp = v
			case "allocs/op":
				e.AllocsPerOp = v
			}
		}
		entries = append(entries, e)
	}
	return entries
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchjson:", err)
	os.Exit(1)
}
